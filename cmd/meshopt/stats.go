package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// runStats implements the `stats` subcommand: fetch a running
// `meshopt serve` instance's observability surfaces and print them to
// stdout. The default is the GET /v1/stats JSON snapshot; -metrics
// fetches the Prometheus text exposition instead, -path fetches an
// arbitrary GET path (e.g. /debug/pprof/), so scripts never need curl,
// and -watch polls /v1/stats and renders a one-line delta view per
// sample (jobs by state, queue depth, cache bytes).
// Exit codes: 0 ok, 1 server unreachable or non-200, 2 usage.
func runStats(args []string) int {
	fs := flag.NewFlagSet("meshopt stats", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL (scheme optional)")
	metrics := fs.Bool("metrics", false, "fetch /metrics (Prometheus text) instead of /v1/stats")
	path := fs.String("path", "", "fetch this GET path instead (e.g. /debug/pprof/)")
	watch := fs.Duration("watch", 0, "poll /v1/stats at this interval and print one delta line per sample (e.g. -watch 2s)")
	samples := fs.Int("samples", 0, "with -watch: stop after this many samples (0 = until interrupted)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt stats -addr http://host:port [-metrics | -path /some/path | -watch 2s [-samples n]]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		return 2
	}
	exclusive := 0
	for _, set := range []bool{*metrics, *path != "", *watch != 0} {
		if set {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(os.Stderr, "-metrics, -path and -watch are mutually exclusive")
		return 2
	}
	if *watch < 0 {
		fmt.Fprintln(os.Stderr, "-watch interval must be positive")
		return 2
	}
	if *samples < 0 {
		fmt.Fprintln(os.Stderr, "-samples must be non-negative")
		return 2
	}
	if *samples > 0 && *watch == 0 {
		fmt.Fprintln(os.Stderr, "-samples requires -watch")
		return 2
	}

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *watch != 0 {
		return watchStats(base, *watch, *samples)
	}

	p := "/v1/stats"
	switch {
	case *metrics:
		p = "/metrics"
	case *path != "":
		if !strings.HasPrefix(*path, "/") {
			fmt.Fprintf(os.Stderr, "-path must start with / (got %q)\n", *path)
			return 2
		}
		p = *path
	}
	body, err := fetch(base + p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	return 0
}

// fetch GETs a URL and returns its body, folding a non-200 status into
// the error.
func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// watchSample is the slice of /v1/stats the delta view renders. Extra
// fields in the snapshot (uptime, the metrics registry) are ignored, so
// the view survives schema growth.
type watchSample struct {
	Jobs         map[string]int `json:"jobs"`
	QueueDepth   int            `json:"queue_depth"`
	Running      int            `json:"running"`
	CacheEntries int            `json:"cache_entries"`
	CacheBytes   int64          `json:"cache_bytes"`
}

// watchStats polls /v1/stats at the given interval and prints one line
// per sample: absolute job counts and cache size plus the delta of
// completed jobs since the previous sample. The first sample prints
// immediately, so `-watch 1s -samples 1` is a cheap liveness probe.
func watchStats(base string, interval time.Duration, samples int) int {
	var prev watchSample
	havePrev := false
	for n := 0; ; n++ {
		if n > 0 {
			time.Sleep(interval)
		}
		body, err := fetch(base + "/v1/stats")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		var s watchSample
		if err := json.Unmarshal(body, &s); err != nil {
			fmt.Fprintf(os.Stderr, "bad /v1/stats payload: %v\n", err)
			return 1
		}
		delta := ""
		if havePrev {
			delta = fmt.Sprintf("  Δdone %+d Δfailed %+d",
				s.Jobs["done"]-prev.Jobs["done"], s.Jobs["failed"]-prev.Jobs["failed"])
		}
		fmt.Printf("%s jobs queued=%d running=%d done=%d failed=%d  queue %d  cache %d entries, %d B%s\n",
			time.Now().Format("15:04:05"),
			s.Jobs["queued"], s.Jobs["running"], s.Jobs["done"], s.Jobs["failed"],
			s.QueueDepth, s.CacheEntries, s.CacheBytes, delta)
		prev, havePrev = s, true
		if samples > 0 && n+1 >= samples {
			return 0
		}
	}
}
