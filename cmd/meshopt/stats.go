package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// runStats implements the `stats` subcommand: fetch a running
// `meshopt serve` instance's observability surfaces and print them to
// stdout. The default is the GET /v1/stats JSON snapshot; -metrics
// fetches the Prometheus text exposition instead, and -path fetches an
// arbitrary GET path (e.g. /debug/pprof/), so scripts never need curl.
// Exit codes: 0 ok, 1 server unreachable or non-200, 2 usage.
func runStats(args []string) int {
	fs := flag.NewFlagSet("meshopt stats", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL (scheme optional)")
	metrics := fs.Bool("metrics", false, "fetch /metrics (Prometheus text) instead of /v1/stats")
	path := fs.String("path", "", "fetch this GET path instead (e.g. /debug/pprof/)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt stats -addr http://host:port [-metrics | -path /some/path]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		return 2
	}
	if *metrics && *path != "" {
		fmt.Fprintln(os.Stderr, "-metrics and -path are mutually exclusive")
		return 2
	}
	p := "/v1/stats"
	switch {
	case *metrics:
		p = "/metrics"
	case *path != "":
		if !strings.HasPrefix(*path, "/") {
			fmt.Fprintf(os.Stderr, "-path must start with / (got %q)\n", *path)
			return 2
		}
		p = *path
	}

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "GET %s%s: %s: %s\n", base, p, resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	return 0
}
