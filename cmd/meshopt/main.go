// Command meshopt regenerates the paper's evaluation figures on the
// simulated mesh substrate.
//
// Usage:
//
//	meshopt -fig 3            # reproduce one figure (3..14)
//	meshopt -all              # reproduce every figure
//	meshopt -fig 13 -scale paper -seed 7
//	meshopt -all -workers 8   # pin the experiment worker pool
//
// Figures 7, 8 and 12 share one network-validation run and are printed
// together when any of them is requested.
//
// Experiments fan independent simulation cells out across a worker pool
// (GOMAXPROCS workers by default; see internal/experiments/runner). The
// output is bit-identical for any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (3..14); 0 with -all for everything")
	all := flag.Bool("all", false, "reproduce every figure")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	flag.Parse()

	runner.SetWorkers(*workers)

	var sc experiments.Scale
	switch *scaleName {
	case "quick":
		sc = experiments.Quick()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleName)
		os.Exit(2)
	}

	if !*all && (*fig < 3 || *fig > 14) {
		flag.Usage()
		os.Exit(2)
	}

	want := func(n int) bool { return *all || *fig == n }
	start := time.Now()

	if want(3) || want(6) {
		res3 := experiments.RunFig3(*seed, sc)
		if want(3) {
			res3.Print(os.Stdout)
			fmt.Println()
		}
		if want(6) {
			lirs := append(append([]float64(nil), res3.LIR1...), res3.LIR11...)
			experiments.RunFig6(lirs).Print(os.Stdout)
			fmt.Println()
		}
	}
	if want(4) {
		experiments.RunFig4(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(5) {
		experiments.RunFig5(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(7) || want(8) || want(12) {
		experiments.RunNetValidation(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(9) {
		experiments.RunFig9(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(10) {
		experiments.RunFig10(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(11) {
		experiments.RunFig11(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(13) {
		experiments.RunFig13(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(14) {
		experiments.RunFig14(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
