// Command meshopt regenerates the paper's evaluation figures on the
// simulated mesh substrate and runs declarative scenarios.
//
// Usage:
//
//	meshopt -fig 3                  # reproduce one figure (3..14)
//	meshopt -all                    # reproduce every figure
//	meshopt -fig 13 -scale paper -seed 7
//	meshopt -all -workers 8         # pin the experiment worker pool
//	meshopt run quickstart          # run a registered scenario
//	meshopt run spec.json -o out.jsonl -format jsonl
//	meshopt list                    # enumerate figures and scenarios
//
// Figures 7, 8 and 12 share one network-validation run and are printed
// together when any of them is requested.
//
// `run` executes a scenario — a registered name or a JSON spec file
// (see internal/scenario) — streaming per-cell result records as JSONL
// (or CSV) while a human-readable summary goes to the other stream:
// records to stdout and summary to stderr by default, records to the
// -o file and summary to stdout when -o is given.
//
// Experiments fan independent simulation cells out across a worker pool
// (GOMAXPROCS workers by default; see internal/experiments/runner). The
// output — streamed records included — is bit-identical for any
// -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// figDescriptions names every reproducible figure for `list`.
var figDescriptions = []struct {
	fig  int
	desc string
}{
	{3, "pairwise LIR distributions at 1 and 11 Mb/s (bimodality of interference)"},
	{4, "binary interference classifier false positives/negatives per class"},
	{5, "three-point feasibility check on CS/IA/NF rate regions"},
	{6, "LIR threshold sensitivity over the measured LIR population"},
	{7, "network validation: over-estimation of the feasible rate region"},
	{8, "network validation: under-estimation and scaled-gain variants"},
	{9, "channel-loss estimator cases (sliding-minimum curve and knee)"},
	{10, "channel-loss estimation accuracy: error CDF and RMSE vs window"},
	{11, "online capacity estimation vs Ad Hoc Probe on sampled links"},
	{12, "two-hop conflict model vs measured LIR conflicts"},
	{13, "two-flow upstream TCP starvation and rate-control regimes"},
	{14, "multi-config TCP suite: throughput ratio, fairness, feasibility, stability"},
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(runScenario(os.Args[2:]))
		case "list":
			list(os.Stdout)
			return
		}
	}
	legacyFigures()
}

// list enumerates figures and registered scenarios with one-line
// descriptions.
func list(w io.Writer) {
	fmt.Fprintln(w, "Figures (meshopt -fig N):")
	for _, f := range figDescriptions {
		fmt.Fprintf(w, "  %2d  %s\n", f.fig, f.desc)
	}
	fmt.Fprintln(w, "\nScenarios (meshopt run NAME):")
	names := scenario.Names()
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-11s %s\n", n, scenario.Describe(n))
	}
	fmt.Fprintln(w, "\nA JSON spec file also works: meshopt run path/to/spec.json")
}

// runScenario implements the `run` subcommand. Exit codes: 0 ok, 1
// runtime failure, 2 usage or unknown scenario.
func runScenario(args []string) int {
	fs := flag.NewFlagSet("meshopt run", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario's base seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	workers := fs.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	out := fs.String("o", "", "write result records to this file (default: stdout)")
	format := fs.String("format", "jsonl", "record format: jsonl or csv")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt run <scenario.json|name> [flags]")
		fs.PrintDefaults()
	}
	// Accept the target either before or after the flags.
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		fs.Usage()
		return 2
	}

	runner.SetWorkers(*workers)
	opts := scenario.Options{}
	switch *scaleName {
	case "quick":
		opts.Scale = experiments.Quick()
		opts.Quick = true
	case "paper":
		opts.Scale = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleName)
		return 2
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet {
		opts.SeedOverride = seed
	}

	spec, ok := scenario.Lookup(target)
	if !ok {
		data, err := os.ReadFile(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (not a registered name or readable spec file)\n", target)
			fmt.Fprintf(os.Stderr, "registered: %v\n", scenario.Names())
			return 2
		}
		spec, err = scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	if *format != "jsonl" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want jsonl or csv)\n", *format)
		return 2 // before os.Create: a usage error must not truncate -o
	}
	// Records and summary share stdout/stderr without interleaving:
	// records go to stdout (summary to stderr) unless -o routes them to
	// a file (summary to stdout).
	recordW := io.Writer(os.Stdout)
	opts.Log = os.Stderr
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		recordW = f
		opts.Log = os.Stdout
	}
	if *format == "csv" {
		opts.Sink = sink.NewCSV(recordW)
	} else {
		opts.Sink = sink.NewJSONL(recordW)
	}

	start := time.Now()
	err := scenario.Run(spec, opts)
	if cerr := opts.Sink.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(opts.Log, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// legacyFigures is the original flag-driven figure reproduction mode.
func legacyFigures() {
	fig := flag.Int("fig", 0, "figure number to reproduce (3..14); 0 with -all for everything")
	all := flag.Bool("all", false, "reproduce every figure")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	doList := flag.Bool("list", false, "list figures and registered scenarios, then exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt [-fig N | -all | -list] [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt run <scenario.json|name> [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt list")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *doList {
		list(os.Stdout)
		return
	}

	runner.SetWorkers(*workers)

	var sc experiments.Scale
	switch *scaleName {
	case "quick":
		sc = experiments.Quick()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleName)
		os.Exit(2)
	}

	if !*all && (*fig < 3 || *fig > 14) {
		flag.Usage()
		os.Exit(2)
	}

	want := func(n int) bool { return *all || *fig == n }
	start := time.Now()

	if want(3) || want(6) {
		res3 := experiments.RunFig3(*seed, sc)
		if want(3) {
			res3.Print(os.Stdout)
			fmt.Println()
		}
		if want(6) {
			lirs := append(append([]float64(nil), res3.LIR1...), res3.LIR11...)
			experiments.RunFig6(lirs).Print(os.Stdout)
			fmt.Println()
		}
	}
	if want(4) {
		experiments.RunFig4(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(5) {
		experiments.RunFig5(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(7) || want(8) || want(12) {
		experiments.RunNetValidation(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(9) {
		experiments.RunFig9(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(10) {
		experiments.RunFig10(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(11) {
		experiments.RunFig11(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(13) {
		experiments.RunFig13(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}
	if want(14) {
		experiments.RunFig14(*seed, sc).Print(os.Stdout)
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
