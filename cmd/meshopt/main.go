// Command meshopt regenerates the paper's evaluation figures on the
// simulated mesh substrate and runs declarative scenarios, all through
// one experiment registry.
//
// Usage:
//
//	meshopt fig 10                      # run one figure suite (3..14, or a name)
//	meshopt fig netvalid -scale paper
//	meshopt fig 10 -shard 0/2 -o s0.jsonl   # one residue class of the cells
//	meshopt merge -o full.jsonl s0.jsonl s1.jsonl
//	meshopt coord 10 -shards 4 -workers 4 -dir run/  # dispatch + live merge + checkpoint
//	meshopt serve -addr :8080 -cache cache/          # HTTP experiment service
//	meshopt submit 10 -addr http://host:8080         # run (or fetch) a job remotely
//	meshopt watch 10 -addr http://host:8080          # live progress off the frontier
//	meshopt stats -addr http://host:8080             # /v1/stats snapshot (-metrics: Prometheus text)
//	meshopt fig 10 -trace spans.json                 # capture an execution span tree
//	meshopt report spans.json                        # critical path + slot/retry/steal decomposition
//	meshopt run quickstart              # run a registered scenario
//	meshopt run spec.json -o out.jsonl -format jsonl
//	meshopt fig broadcast               # broadcast dissemination sweep
//	meshopt run examples/broadcast.json # ...or as a "broadcast" spec kind
//	meshopt list                        # figures and scenarios in one table
//
// Every figure suite is an experiment: a deterministic cell enumeration
// streamed as one record per cell (JSONL or CSV) plus a reduced summary.
// Records go to stdout (summary to stderr) by default, or to the -o file
// (summary to stdout). Swept scenarios are experiments too: `run`,
// `fig`, `coord` and `-shard` all drive the same engine and accept a
// registered scenario name or a spec file wherever they accept a
// figure. That includes the broadcast family: the registered
// `broadcast` experiment sweeps (root × relay policy × repetition)
// dissemination cells, and a spec with a `"broadcast"` block (see
// examples/broadcast.json) runs the same engine over any declared
// topology.
//
// Sharding: `-shard i/k` runs the cells whose index ≡ i (mod k) and
// streams their records; `meshopt merge` recombines shard files into a
// stream byte-identical to an unsharded run — for any -workers value on
// any shard — and prints the same reduced summary. Shard streams must be
// JSONL. A merge whose inputs miss whole residue classes exits 2 and
// names the missing shards.
//
// Coordinator: `meshopt coord <fig|scenario> -shards k -workers <n|cmd>
// -dir run/` dispatches the k residue classes over a pool of workers —
// `-workers 4` spawns four local `meshopt work` subprocesses, while
// `-workers 'ssh mesh{slot} meshopt work'` (with `-slots n`) fans out
// over any transport whose command speaks the `meshopt work` stdio
// protocol. Workers are long-lived — one process serves many shard
// requests, amortizing startup and warm caches across dispatches. Shard
// streams are merged live in cell order; completed shards checkpoint
// into the run directory, failed workers are retried with bounded,
// jittered backoff (`-backoff`, `-backoff-cap`, `-jitter`), a stalled
// shard can be stolen to a free slot (`-steal-after`), Ctrl-C stops the
// run at the next cell boundary, and re-running the same command
// resumes the run, re-dispatching only missing or invalid shards.
// run/merged.jsonl (and -o) is byte-identical to the unsharded
// `meshopt fig` stream.
//
//	meshopt coord 10 -shards 6 -workers 3 -dir run/   # quickstart
//	meshopt coord 10 -shards 6 -workers 3 -dir run/   # ...resume after a crash
//	meshopt merge -o full.jsonl run/shard_*.jsonl     # offline re-merge also works
//
// Service: `meshopt serve -addr :8080 -cache dir/` is the HTTP control
// plane over the same engine: submitted jobs (any figure or scenario,
// optionally sharded over the coordinator) stream NDJSON records as
// cells complete — byte-identical to the corresponding `meshopt fig`
// output — into a content-addressed result cache; identical concurrent
// submissions coalesce onto one execution, and a restarted server
// resumes checkpointed jobs instead of recomputing. `meshopt submit`
// and `meshopt watch` are the matching clients.
//
// The flag-driven figure mode (`meshopt -fig N`, `-all`) remains as a
// deprecated alias over the same registry; `-all` now spans the whole
// registry — netvalid and the exhaustive comparison included — not just
// the numbered figures.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/experiments/exp"
	"repro/internal/experiments/runner"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "fig":
			os.Exit(runFig(os.Args[2:]))
		case "merge":
			os.Exit(runMerge(os.Args[2:]))
		case "coord":
			os.Exit(runCoord(os.Args[2:]))
		case "work":
			os.Exit(runWork(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "watch":
			os.Exit(runWatch(os.Args[2:]))
		case "stats":
			os.Exit(runStats(os.Args[2:]))
		case "run":
			os.Exit(runScenario(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		case "report":
			os.Exit(runReport(os.Args[2:]))
		case "list":
			list(os.Stdout)
			return
		}
	}
	legacyFigures()
}

// list enumerates figure experiments and registered scenarios in one
// table.
func list(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-9s %s\n", "NAME", "KIND", "DESCRIPTION")
	for _, name := range exp.Names() {
		e, _ := exp.Find(name)
		fmt.Fprintf(w, "%-12s %-9s %s\n", name, "figure", e.Describe())
	}
	names := scenario.Names()
	sort.Strings(names)
	for _, n := range names {
		if spec, ok := scenario.Lookup(n); ok && spec.Figure != 0 {
			continue // figure delegates already listed above
		}
		fmt.Fprintf(w, "%-12s %-9s %s\n", n, "scenario", scenario.Describe(n))
	}
	aliases := exp.Aliases()
	var as []string
	for a := range aliases {
		as = append(as, a)
	}
	sort.Strings(as)
	for _, a := range as {
		fmt.Fprintf(w, "%-12s %-9s alias of %s\n", a, "figure", aliases[a])
	}
	fmt.Fprintln(w, "\nRun figures with `meshopt fig <n|name>`, scenarios with `meshopt run <name|spec.json>`.")
}

// resolveExperiment maps a CLI target — a figure number or a registry
// name/alias — to its experiment.
func resolveExperiment(target string) (exp.Experiment, bool) {
	if n, err := strconv.Atoi(target); err == nil {
		return exp.Find(fmt.Sprintf("fig%d", n))
	}
	return exp.Find(target)
}

// shardTarget is a resolved shardable target: any experiment the fig
// and coord subcommands accept.
type shardTarget struct {
	name string          // canonical name a fresh worker process can resolve
	e    exp.Experiment  // the experiment itself
	spec json.RawMessage // inline scenario spec when the target was a file
	seed int64           // default seed (the scenario's own, or 1 for figures)
}

// resolveShardable maps a CLI target to its experiment: a figure number,
// a registry name/alias, a registered scenario name, or a scenario spec
// file. Scenario targets resolve through the scenario→experiment adapter
// so sweeps shard like figures do.
func resolveShardable(target string) (*shardTarget, error) {
	if e, ok := resolveExperiment(target); ok {
		return &shardTarget{name: e.Name(), e: e, seed: 1}, nil
	}
	if spec, ok := scenario.Lookup(target); ok {
		e, err := scenario.Experiment(spec)
		if err != nil {
			return nil, err
		}
		return &shardTarget{name: target, e: e, seed: spec.Seed}, nil
	}
	if data, err := os.ReadFile(target); err == nil {
		spec, err := scenario.Parse(data)
		if err != nil {
			return nil, err
		}
		e, err := scenario.Experiment(spec)
		if err != nil {
			return nil, err
		}
		return &shardTarget{name: spec.Name, e: e, spec: data, seed: spec.Seed}, nil
	}
	return nil, fmt.Errorf("unknown target %q (not a figure, registered experiment, scenario name or readable spec file)\nregistered experiments: %v\nregistered scenarios: %v",
		target, exp.Names(), scenario.Names())
}

// seedOrDefault resolves the effective seed: the -seed flag when the
// user set it, else the target's own default (a scenario's spec seed).
func seedOrDefault(fs *flag.FlagSet, flagSeed int64, def int64) int64 {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	if set {
		return flagSeed
	}
	return def
}

// parseScale resolves the -scale flag through the same name table the
// worker protocol uses (exp.NamedScale), so the CLI and remote workers
// can never diverge on what a scale name means.
func parseScale(name string) (experiments.Scale, error) {
	if sc, ok := exp.NamedScale(name); ok {
		return sc, nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick or paper)", name)
}

// openRecords routes the record stream and the human-readable summary:
// records to stdout (summary to stderr) unless -o sends records to a
// file (summary to stdout). The returned closer finalizes the -o file.
func openRecords(out string) (recordW io.Writer, logW io.Writer, closer func() error, err error) {
	if out == "" {
		return os.Stdout, os.Stderr, func() error { return nil }, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, os.Stdout, f.Close, nil
}

// runFig implements the `fig` subcommand. Exit codes: 0 ok, 1 runtime
// failure, 2 usage or unknown figure.
func runFig(args []string) int {
	fs := flag.NewFlagSet("meshopt fig", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	workers := fs.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	shardSpec := fs.String("shard", "", "run one residue class of cells (i/k, e.g. 0/2); requires -format jsonl")
	out := fs.String("o", "", "write result records to this file (default: stdout)")
	format := fs.String("format", "jsonl", "record format: jsonl or csv")
	pprofCPU := fs.String("pprof-cpu", "", "write a CPU profile of the run to this file")
	pprofMem := fs.String("pprof-mem", "", "write a heap profile (taken after the run, post-GC) to this file")
	tracePath := fs.String("trace", "", "write an execution span capture to this file (.json = Chrome trace-event, .jsonl = span log; see `meshopt report`)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt fig <n|name> [flags]")
		fs.PrintDefaults()
	}
	// Accept the target either before or after the flags.
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		fs.Usage()
		return 2
	}
	ti, err := resolveShardable(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	e := ti.e
	sc, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var shard exp.Shard
	if *shardSpec != "" {
		if shard, err = exp.ParseShard(*shardSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if *format != "jsonl" {
			fmt.Fprintln(os.Stderr, "-shard requires -format jsonl (shard streams are merged line-wise)")
			return 2
		}
	}
	if *format != "jsonl" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want jsonl or csv)\n", *format)
		return 2 // before os.Create: a usage error must not truncate -o
	}

	runner.SetWorkers(*workers)
	recordW, logW, closeOut, err := openRecords(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var snk sink.Sink
	if *format == "csv" {
		snk = sink.NewCSV(recordW)
	} else {
		snk = sink.NewJSONL(recordW)
	}

	stopProfiles, err := startProfiles(*pprofCPU, *pprofMem)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	effSeed := seedOrDefault(fs, *seed, ti.seed)
	opts := exp.Options{Sink: snk, Shard: shard}
	var trace *span.Recorder
	var figSpan *span.Span
	if *tracePath != "" {
		trace = span.NewRecorder()
		figSpan = trace.Root("fig",
			span.Str("experiment", e.Name()),
			span.I64("seed", effSeed),
			span.Str("scale", *scaleName),
			span.Str("shard", shard.String()))
		opts.Context = span.NewContext(context.Background(), figSpan)
	}

	start := time.Now()
	res, err := exp.Run(e, effSeed, sc, opts)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if cerr := snk.Close(); err == nil {
		err = cerr
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if trace != nil {
		figSpan.End()
		if werr := span.WriteFile(*tracePath, trace.Snapshot()); err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if shard.Enabled() {
		fmt.Fprintf(logW, "%s shard %s streamed in %v (merge shards with `meshopt merge` for the reduction)\n",
			e.Name(), shard, time.Since(start).Round(time.Millisecond))
		return 0
	}
	res.Print(logW)
	fmt.Fprintf(logW, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runMerge implements the `merge` subcommand: recombine shard JSONL
// files into the unsharded stream and print its reduction.
func runMerge(args []string) int {
	fs := flag.NewFlagSet("meshopt merge", flag.ExitOnError)
	out := fs.String("o", "", "write the merged records to this file (default: stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt merge [-o merged.jsonl] shard0.jsonl shard1.jsonl ...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	var ins []io.Reader
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		ins = append(ins, f)
	}
	recordW, logW, closeOut, err := openRecords(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := exp.Merge(ins, recordW)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		// An incomplete input set (missing shard streams) is a usage
		// error — the fix is passing the named shards — not a runtime
		// failure.
		var gap *exp.GapError
		if errors.As(err, &gap) {
			return 2
		}
		return 1
	}
	if res != nil {
		res.Print(logW)
	}
	return 0
}

// runWork implements the `work` subcommand: a long-lived worker serving
// shard dispatches on stdin/stdout for a `meshopt coord` coordinator
// (local subprocess, ssh, k8s exec, ...) until stdin closes. The record
// protocol owns stdout, so the event log goes to stderr and metrics are
// only reachable through the -metrics-addr sidecar.
func runWork(args []string) int {
	fs := flag.NewFlagSet("meshopt work", flag.ExitOnError)
	of := addObsFlags(fs, "warn")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/* on this sidecar address (host:port; empty = off)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt work [flags]   (stdio worker protocol; spawned by coord)")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	logger, err := of.logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	stopSidecar, err := startSidecar(*metricsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopSidecar()
	if err := dist.ServeWorkLogged(os.Stdin, os.Stdout, logger); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// runCoord implements the `coord` subcommand. Exit codes: 0 ok, 1
// runtime failure (incomplete run — rerun the same command to resume),
// 2 usage.
func runCoord(args []string) int {
	fs := flag.NewFlagSet("meshopt coord", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	shards := fs.Int("shards", 0, "number of shards (residue classes) to dispatch")
	workers := fs.String("workers", "", "worker pool: a count of local `meshopt work` subprocesses, or a command template speaking the work protocol ('ssh mesh{slot} meshopt work')")
	slots := fs.Int("slots", 0, "concurrent worker slots for a template pool (default: min(shards, GOMAXPROCS))")
	dir := fs.String("dir", "", "run directory for checkpoints and the merged output (required)")
	retries := fs.Int("retries", 3, "dispatch attempts per shard before the run gives up (>= 1)")
	timeout := fs.Duration("timeout", 0, "per-attempt timeout (0 = none); set for remote pools where a wedged transport would hold its slot forever")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "base retry delay; attempt n waits n×backoff")
	backoffCap := fs.Duration("backoff-cap", 0, "maximum retry delay (0 = 5×backoff)")
	jitter := fs.Float64("jitter", 0, "randomize each retry delay downward by up to this fraction (0..1, deterministic per job seed)")
	stealAfter := fs.Duration("steal-after", 0, "work stealing: kill and re-dispatch the shard gating the merge frontier after it stalls this long with a free slot available (0 = off)")
	out := fs.String("o", "", "also copy the merged records to this file")
	tracePath := fs.String("trace", "", "write an execution span capture to this file (.json = Chrome trace-event, .jsonl = span log; see `meshopt report`)")
	watch := fs.Bool("watch", false, "render a live progress line (cells merged, shards done) on stderr instead of the shard log")
	of := addObsFlags(fs, "info")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/* on this sidecar address (host:port; empty = off)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt coord <n|name|scenario|spec.json> -shards k -workers <n|cmd-template> -dir rundir [flags]")
		fs.PrintDefaults()
	}
	// Accept the target either before or after the flags.
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" || *dir == "" {
		fs.Usage()
		return 2
	}
	ti, err := resolveShardable(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if _, err := parseScale(*scaleName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "-shards must be at least 1")
		return 2
	}
	if *retries < 1 {
		fmt.Fprintln(os.Stderr, "-retries must be at least 1 (it counts dispatch attempts; 1 means no retry)")
		return 2
	}
	logger, err := of.logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	stopSidecar, err := startSidecar(*metricsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopSidecar()

	o := dist.Options{
		MaxAttempts:    *retries,
		AttemptTimeout: *timeout,
		Backoff:        *backoff,
		BackoffCap:     *backoffCap,
		Jitter:         *jitter,
		StealAfter:     *stealAfter,
		Logger:         logger,
	}
	if n, err := strconv.Atoi(*workers); err == nil && *workers != "" {
		o.Slots = n
	} else if *workers != "" {
		o.Spawner = dist.TemplateSpawner(*workers, os.Stderr)
		o.Slots = *slots
	}
	if *watch {
		// The progress line replaces the shard log (both write stderr;
		// interleaving them would shred the \r rendering). Progress is
		// called under the merge lock, so rendering is throttled.
		o.Logger = obs.Discard()
		var lastRender time.Time
		o.Progress = func(p dist.Progress) {
			if time.Since(lastRender) < 100*time.Millisecond && p.MergedCells < p.Cells {
				return
			}
			lastRender = time.Now()
			fmt.Fprintf(os.Stderr, "\rcoord: merged %d/%d cells, shards %d/%d done ",
				p.MergedCells, p.Cells, p.ShardsDone, p.Shards)
		}
	}

	job := dist.Job{
		Experiment: ti.name,
		Spec:       ti.spec,
		Seed:       seedOrDefault(fs, *seed, ti.seed),
		Scale:      *scaleName,
		Shards:     *shards,
	}
	// SIGINT/SIGTERM cancels the run: in-flight workers are killed at
	// the next cell boundary and completed shards stay checkpointed, so
	// rerunning the same command resumes. A second signal kills hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var trace *span.Recorder
	var coordSpan *span.Span
	if *tracePath != "" {
		trace = span.NewRecorder()
		coordSpan = trace.Root("coord",
			span.Str("experiment", ti.name),
			span.I64("seed", job.Seed),
			span.Str("scale", *scaleName),
			span.Int("shards", *shards))
		ctx = span.NewContext(ctx, coordSpan)
	}
	start := time.Now()
	rep, err := dist.Run(ctx, job, *dir, o)
	if *watch {
		fmt.Fprintln(os.Stderr)
	}
	if trace != nil {
		coordSpan.End()
		if werr := span.WriteFile(*tracePath, trace.Snapshot()); err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *out != "" {
		if err := copyFile(*dir+"/merged.jsonl", *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "coord: %d cells over %d shards (%d reused, %d dispatched) in %v\n",
		rep.Cells, job.Shards, len(rep.Reused), len(rep.Ran), time.Since(start).Round(time.Millisecond))
	if rep.Result != nil {
		rep.Result.Print(os.Stdout)
	}
	return 0
}

// copyFile copies src to dst (create/truncate).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	outF, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(outF, in); err != nil {
		outF.Close()
		return err
	}
	return outF.Close()
}

// runScenario implements the `run` subcommand: scenarios resolve
// through the scenario→experiment adapter and run on the same exp
// engine as `fig` — the stream differs from `fig <scenario>` only in
// that this path prints the reduction after the records. Exit codes:
// 0 ok, 1 runtime failure, 2 usage or unknown scenario.
func runScenario(args []string) int {
	fs := flag.NewFlagSet("meshopt run", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario's base seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	workers := fs.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	out := fs.String("o", "", "write result records to this file (default: stdout)")
	format := fs.String("format", "jsonl", "record format: jsonl or csv")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt run <scenario.json|name> [flags]")
		fs.PrintDefaults()
	}
	// Accept the target either before or after the flags.
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		fs.Usage()
		return 2
	}

	runner.SetWorkers(*workers)
	sc, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	spec, ok := scenario.Lookup(target)
	if !ok {
		data, err := os.ReadFile(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (not a registered name or readable spec file)\n", target)
			fmt.Fprintf(os.Stderr, "registered: %v\n", scenario.Names())
			return 2
		}
		spec, err = scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	e, err := scenario.Experiment(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *format != "jsonl" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want jsonl or csv)\n", *format)
		return 2 // before os.Create: a usage error must not truncate -o
	}
	recordW, logW, closeOut, err := openRecords(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var snk sink.Sink
	if *format == "csv" {
		snk = sink.NewCSV(recordW)
	} else {
		snk = sink.NewJSONL(recordW)
	}

	start := time.Now()
	res, err := exp.Run(e, seedOrDefault(fs, *seed, spec.Seed), sc, exp.Options{Sink: snk})
	if cerr := snk.Close(); err == nil {
		err = cerr
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res.Print(logW)
	fmt.Fprintf(logW, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// legacyFigures is the original flag-driven figure mode, kept as a
// deprecated alias over the experiment registry.
func legacyFigures() {
	fig := flag.Int("fig", 0, "deprecated: use `meshopt fig N`")
	all := flag.Bool("all", false, "run every registered figure experiment")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	doList := flag.Bool("list", false, "list figures and registered scenarios, then exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt fig <n|name|scenario> [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt merge [-o merged.jsonl] shard.jsonl ...")
		fmt.Fprintln(os.Stderr, "       meshopt coord <n|name|scenario> -shards k -workers <n|cmd> -dir rundir [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt work   (stdio worker protocol; spawned by coord)")
		fmt.Fprintln(os.Stderr, "       meshopt serve -cache dir [-addr :8080]   (HTTP experiment service)")
		fmt.Fprintln(os.Stderr, "       meshopt submit <n|name|scenario> -addr http://host:port [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt watch <job-id|target> -addr http://host:port")
		fmt.Fprintln(os.Stderr, "       meshopt stats -addr http://host:port [-metrics|-path /p]   (server observability)")
		fmt.Fprintln(os.Stderr, "       meshopt report <spans.json|spans.jsonl>   (decompose a -trace capture)")
		fmt.Fprintln(os.Stderr, "       meshopt run <scenario.json|name> [flags]")
		fmt.Fprintln(os.Stderr, "       meshopt list")
		fmt.Fprintln(os.Stderr, "legacy flags (deprecated aliases over the same registry):")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *doList {
		list(os.Stdout)
		return
	}

	runner.SetWorkers(*workers)
	sc, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*all && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var targets []string
	if *all {
		targets = exp.Names()
	} else {
		fmt.Fprintf(os.Stderr, "note: -fig is deprecated; use `meshopt fig %d`\n", *fig)
		name := fmt.Sprintf("fig%d", *fig)
		if _, ok := exp.Find(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", *fig)
			os.Exit(2)
		}
		targets = []string{name}
	}

	start := time.Now()
	// fig6 reduces the same cells fig3 measures; when -all runs both,
	// capture fig3's record stream and replay it through fig6's
	// reduction instead of paying the pairwise sweep twice.
	var fig3Records []sink.Record
	for _, name := range targets {
		e, _ := exp.Find(name)
		var res exp.Result
		var err error
		switch {
		case *all && name == "fig3":
			mem := sink.NewMemory()
			res, err = exp.Run(e, *seed, sc, exp.Options{Sink: mem})
			fig3Records = mem.Records()
		case *all && name == "fig6" && fig3Records != nil:
			res = replay(e, fig3Records)
		default:
			res, err = exp.Run(e, *seed, sc, exp.Options{})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// replay feeds an already-gathered record stream to an experiment's
// reduction. Capture ("trace") records ride the stream but are never
// part of a reduction's input.
func replay(e exp.Experiment, recs []sink.Record) exp.Result {
	ch := make(chan sink.Record, len(recs))
	for _, rec := range recs {
		if rec.Series == "trace" {
			continue
		}
		ch <- rec
	}
	close(ch)
	return e.Reduce(ch)
}
