package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// obsFlags carries the shared observability flags (-log-level,
// -log-format) a server-side subcommand registers on its flag set.
type obsFlags struct {
	level  *string
	format *string
}

// addObsFlags registers the logging flags on fs. defLevel is the
// subcommand's default level — info for servers and coordinators, warn
// for workers (whose stderr rides the coordinator's, so per-request
// events are opt-in there).
func addObsFlags(fs *flag.FlagSet, defLevel string) *obsFlags {
	return &obsFlags{
		level:  fs.String("log-level", defLevel, "event log level: debug, info, warn or error"),
		format: fs.String("log-format", "text", "event log format: text or json"),
	}
}

// logger resolves the flags into a structured logger writing to w. A
// bad level or format name is a usage error.
func (f *obsFlags) logger(w io.Writer) (*slog.Logger, error) {
	lvl, err := obs.ParseLevel(*f.level)
	if err != nil {
		return nil, err
	}
	format, err := obs.ParseFormat(*f.format)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, lvl, format), nil
}

// startSidecar starts the -metrics-addr observability sidecar (GET
// /metrics + /debug/pprof/*) when addr is nonempty, announcing the
// bound address on stderr. The returned func shuts it down; it is a
// no-op when addr was empty.
func startSidecar(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	bound, shutdown, err := obs.Sidecar(addr, obs.Default)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "metrics: listening on http://%s/metrics\n", bound)
	return shutdown, nil
}

// startProfiles starts the -pprof-cpu / -pprof-mem file profiles. The
// returned stop func ends the CPU profile and writes the heap profile
// (after a final GC, so live bytes reflect retained state, not
// garbage); call it exactly once when the measured work is done.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			firstErr = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
