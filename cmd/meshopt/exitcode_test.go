package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExitCodeConventions pins the CLI's exit-code contract across
// every subcommand: 0 ok, 1 runtime failure, 2 bad usage or an unknown
// name. The table calls the subcommand entry points directly (the same
// functions main dispatches to), so the convention cannot drift per
// subcommand without failing here.
func TestExitCodeConventions(t *testing.T) {
	tmp := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(tmp, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Shard streams of an unregistered scenario: merge validates cell
	// coverage without needing a reduction.
	s0 := write("s0.jsonl", `{"scenario":"x","series":"cell","cell":0,"v":1}`+"\n")
	s1 := write("s1.jsonl", `{"scenario":"x","series":"cell","cell":1,"v":2}`+"\n")
	gap := write("gap.jsonl", `{"scenario":"x","series":"cell","cell":0,"v":1}`+"\n"+
		`{"scenario":"x","series":"cell","cell":2,"v":3}`+"\n")
	inTheWay := write("file-not-dir", "plain file\n")
	badTrace := write("bad.trace", "not a span capture\n")
	goodTrace := write("good.jsonl",
		`{"id":1,"parent":0,"name":"job","start_ns":0,"dur_ns":1000000,"attrs":[]}`+"\n")

	cases := []struct {
		name string
		run  func() int
		want int
	}{
		{"fig ok", func() int { return runFig([]string{"5", "-scale", "quick", "-o", filepath.Join(tmp, "fig5.jsonl")}) }, 0},
		{"fig no target", func() int { return runFig(nil) }, 2},
		{"fig unknown figure", func() int { return runFig([]string{"nosuchfig"}) }, 2},
		{"fig unknown scale", func() int { return runFig([]string{"5", "-scale", "huge"}) }, 2},
		{"fig bad shard spec", func() int { return runFig([]string{"5", "-shard", "5/2"}) }, 2},
		{"fig shard needs jsonl", func() int { return runFig([]string{"5", "-shard", "0/2", "-format", "csv"}) }, 2},
		{"fig bad format", func() int { return runFig([]string{"5", "-format", "xml"}) }, 2},

		{"merge ok", func() int { return runMerge([]string{"-o", filepath.Join(tmp, "merged.jsonl"), s0, s1}) }, 0},
		{"merge no inputs", func() int { return runMerge(nil) }, 2},
		{"merge missing input", func() int { return runMerge([]string{filepath.Join(tmp, "absent.jsonl")}) }, 2},
		{"merge gap", func() int { return runMerge([]string{"-o", filepath.Join(tmp, "g.jsonl"), gap}) }, 2},

		{"coord no dir", func() int { return runCoord([]string{"5", "-shards", "2"}) }, 2},
		{"coord unknown target", func() int { return runCoord([]string{"nosuch", "-shards", "2", "-dir", tmp + "/r"}) }, 2},
		{"coord bad shards", func() int { return runCoord([]string{"5", "-shards", "0", "-dir", tmp + "/r"}) }, 2},
		{"coord bad retries", func() int { return runCoord([]string{"5", "-shards", "2", "-retries", "0", "-dir", tmp + "/r"}) }, 2},
		{"coord unknown scale", func() int { return runCoord([]string{"5", "-shards", "2", "-scale", "huge", "-dir", tmp + "/r"}) }, 2},

		{"run unknown scenario", func() int { return runScenario([]string{"nosuchscenario"}) }, 2},
		{"run no target", func() int { return runScenario(nil) }, 2},
		{"run unknown scale", func() int { return runScenario([]string{"quickstart", "-scale", "huge"}) }, 2},
		{"run bad format", func() int { return runScenario([]string{"quickstart", "-format", "xml"}) }, 2},

		{"serve no cache", func() int { return runServe(nil) }, 2},
		{"serve cache is a file", func() int {
			return runServe([]string{"-cache", filepath.Join(inTheWay, "sub"), "-addr", "127.0.0.1:0"})
		}, 1},

		{"submit no target", func() int { return runSubmit(nil) }, 2},
		{"submit unknown target", func() int { return runSubmit([]string{"nosuchtarget"}) }, 2},
		{"submit unknown scale", func() int { return runSubmit([]string{"5", "-scale", "huge"}) }, 2},
		{"submit no server", func() int { return runSubmit([]string{"5", "-addr", "http://127.0.0.1:1"}) }, 1},

		{"watch no target", func() int { return runWatch(nil) }, 2},
		{"watch unknown target", func() int { return runWatch([]string{"nosuchtarget"}) }, 2},
		{"watch no server", func() int { return runWatch([]string{"5", "-addr", "http://127.0.0.1:1"}) }, 1},

		{"report no file", func() int { return runReport(nil) }, 2},
		{"report two files", func() int { return runReport([]string{s0, s1}) }, 2},
		{"report missing file", func() int { return runReport([]string{filepath.Join(tmp, "absent.json")}) }, 2},
		{"report unparseable capture", func() int { return runReport([]string{badTrace}) }, 1},
		{"report ok", func() int { return runReport([]string{goodTrace}) }, 0},

		{"fig trace ok", func() int {
			return runFig([]string{"5", "-o", filepath.Join(tmp, "fig5t.jsonl"),
				"-trace", filepath.Join(tmp, "fig5t.trace.json")})
		}, 0},
		{"fig trace unwritable", func() int {
			return runFig([]string{"5", "-o", filepath.Join(tmp, "fig5u.jsonl"),
				"-trace", filepath.Join(inTheWay, "sub", "t.json")})
		}, 1},

		{"stats stray arg", func() int { return runStats([]string{"extra"}) }, 2},
		{"stats watch and metrics", func() int { return runStats([]string{"-metrics", "-watch", "1s"}) }, 2},
		{"stats samples without watch", func() int { return runStats([]string{"-samples", "2"}) }, 2},
		{"stats metrics and path", func() int { return runStats([]string{"-metrics", "-path", "/v1/stats"}) }, 2},
		{"stats bad path", func() int { return runStats([]string{"-path", "no-slash"}) }, 2},
		{"stats no server", func() int { return runStats([]string{"-addr", "http://127.0.0.1:1"}) }, 1},

		{"coord bad log level", func() int {
			return runCoord([]string{"5", "-shards", "2", "-dir", tmp + "/r2", "-log-level", "loud"})
		}, 2},
		{"serve bad log format", func() int {
			return runServe([]string{"-cache", tmp + "/c", "-log-format", "yaml"})
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(); got != tc.want {
				t.Fatalf("exit code %d, want %d", got, tc.want)
			}
		})
	}
}
