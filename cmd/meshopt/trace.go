package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments/exp"
	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
	"repro/internal/trace"
)

// runTrace implements the `trace` subcommand family: `record` runs any
// registered experiment/scenario with per-link delivery capture on,
// `replay` re-runs a workload against a recorded trace and asserts the
// delivery decisions are identical, and `diff` compares two recorded
// streams link by link. Exit codes: 0 ok (replay/diff: identical),
// 1 runtime failure or divergence, 2 usage.
func runTrace(args []string) int {
	if len(args) > 0 {
		switch args[0] {
		case "record":
			return runTraceRecord(args[1:])
		case "replay":
			return runTraceReplay(args[1:])
		case "diff":
			return runTraceDiff(args[1:])
		}
	}
	fmt.Fprintln(os.Stderr, "usage: meshopt trace record <n|name|scenario|spec.json> [flags]")
	fmt.Fprintln(os.Stderr, "       meshopt trace replay <n|name|scenario|spec.json> -trace recorded.jsonl [flags]")
	fmt.Fprintln(os.Stderr, "       meshopt trace diff a.jsonl b.jsonl")
	return 2
}

// traceTarget parses the target-before-or-after-flags convention the
// other subcommands use.
func traceTarget(fs *flag.FlagSet, args []string) string {
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	return target
}

// runTraceRecord runs a target with capture enabled: the output stream
// is the ordinary run's stream (byte-identical in its non-trace lines)
// plus the "trace"-series records each cell captured.
func runTraceRecord(args []string) int {
	fs := flag.NewFlagSet("meshopt trace record", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	workers := fs.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	out := fs.String("o", "", "write the recorded stream to this file (default: stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt trace record <n|name|scenario|spec.json> [flags]")
		fs.PrintDefaults()
	}
	target := traceTarget(fs, args)
	if target == "" {
		fs.Usage()
		return 2
	}
	ti, err := resolveShardable(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	runner.SetWorkers(*workers)
	recordW, logW, closeOut, err := openRecords(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	snk := sink.NewJSONL(recordW)

	start := time.Now()
	res, err := exp.Run(ti.e, seedOrDefault(fs, *seed, ti.seed), sc, exp.Options{
		Sink:    snk,
		Capture: func(exp.Cell) exp.Capture { return trace.NewCellCapture() },
	})
	if cerr := snk.Close(); err == nil {
		err = cerr
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res.Print(logW)
	fmt.Fprintf(logW, "recorded in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runTraceReplay re-runs a target against a recorded trace: each cell
// gets a replay channel built from its recorded events plus a fresh
// capture, and the re-captured decisions are diffed against the
// recording. Exit 0 iff every delivery decision matched.
func runTraceReplay(args []string) int {
	fs := flag.NewFlagSet("meshopt trace replay", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed (must match the recording)")
	scaleName := fs.String("scale", "quick", "experiment scale (must match the recording)")
	workers := fs.Int("workers", 0, "experiment worker pool size; 0 = GOMAXPROCS")
	traceFile := fs.String("trace", "", "recorded stream to replay against (required)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt trace replay <n|name|scenario|spec.json> -trace recorded.jsonl [flags]")
		fs.PrintDefaults()
	}
	target := traceTarget(fs, args)
	if target == "" || *traceFile == "" {
		fs.Usage()
		return 2
	}
	ti, err := resolveShardable(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	recorded, err := loadTrace(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	runner.SetWorkers(*workers)
	set := trace.NewCaptureSet()
	start := time.Now()
	_, err = exp.Run(ti.e, seedOrDefault(fs, *seed, ti.seed), sc, exp.Options{
		Sink: sink.Discard,
		Capture: func(c exp.Cell) exp.Capture {
			return set.Add(c.Index, trace.NewCellCaptureReplay(trace.NewReplay(recorded[c.Index])))
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	replayed := trace.Trace{}
	for cell, c := range set.Captures() {
		replayed[cell] = c.Collector()
	}
	rep := trace.Diff(recorded, replayed)
	rep.Print(os.Stdout)
	diverged := !rep.Identical()
	for _, cell := range trace.Trace(replayed).Cells() {
		if r := set.Captures()[cell].Replay(); r != nil {
			if rerr := r.Err(); rerr != nil {
				fmt.Fprintf(os.Stderr, "cell %d: %v\n", cell, rerr)
				diverged = true
			}
		}
	}
	fmt.Fprintf(os.Stderr, "replayed in %v\n", time.Since(start).Round(time.Millisecond))
	if diverged {
		return 1
	}
	return 0
}

// runTraceDiff compares two recorded streams link by link. Exit 0 iff
// identical.
func runTraceDiff(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: meshopt trace diff a.jsonl b.jsonl")
		return 2
	}
	a, err := loadTrace(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := loadTrace(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep := trace.Diff(a, b)
	rep.Print(os.Stdout)
	if !rep.Identical() {
		return 1
	}
	return 0
}

// loadTrace decodes the "trace"-series records of a recorded JSONL
// stream.
func loadTrace(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := sink.DecodeJSONLStream(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	tr, err := trace.Decode(recs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("%s: no trace records (was the stream recorded with `meshopt trace record`?)", path)
	}
	return tr, nil
}
