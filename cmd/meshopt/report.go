package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/span"
)

// runReport implements the `report` subcommand: read a span capture
// (Chrome trace-event JSON or JSONL, as written by -trace or the serve
// trace endpoint) and print the run decomposition — critical path,
// per-slot utilization, retry/steal cost accounting, cell latency
// quantiles. Exit codes: 0 ok, 1 unparseable capture, 2 usage or
// unreadable file.
func runReport(args []string) int {
	fs := flag.NewFlagSet("meshopt report", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt report <spans.json|spans.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()
	spans, err := span.Parse(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	span.Build(spans).Format(os.Stdout)
	return 0
}
