package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments/runner"
	"repro/internal/serve"
)

// runServe implements the `serve` subcommand: the HTTP experiment
// service. Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage.
func runServe(args []string) int {
	fs := flag.NewFlagSet("meshopt serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory (required)")
	jobs := fs.Int("jobs", 2, "max concurrently executing jobs; further submissions queue FIFO")
	workers := fs.Int("workers", 0, "in-process worker pool size; 0 = GOMAXPROCS")
	slots := fs.Int("slots", 0, "worker slots for sharded (shards>1) jobs; 0 = coordinator default")
	jobTTL := fs.Duration("job-ttl", 0, "evict terminal jobs from the in-memory table after this long (their cache entries keep serving resubmissions); 0 = never")
	cacheMax := fs.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries once their summed size passes this; 0 = unbounded")
	imports := fs.String("import", "", "comma-separated coordinator run directories to import as cache entries at startup")
	of := addObsFlags(fs, "info")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt serve -cache dir [-addr :8080] [-jobs n] [-workers n]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *cacheDir == "" {
		fs.Usage()
		return 2
	}
	logger, err := of.logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	runner.SetWorkers(*workers)
	s, err := serve.New(serve.Options{
		CacheDir:      *cacheDir,
		MaxJobs:       *jobs,
		Slots:         *slots,
		JobTTL:        *jobTTL,
		CacheMaxBytes: *cacheMax,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, dir := range strings.Split(*imports, ",") {
		if dir = strings.TrimSpace(dir); dir == "" {
			continue
		}
		key, err := s.Cache().ImportRunDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "serve: imported %s as %.12s\n", dir, key)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("meshopt serve: listening on http://%s (cache %s)\n", ln.Addr(), *cacheDir)
	os.Stdout.Sync()

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-sig:
		fmt.Fprintln(os.Stderr, "meshopt serve: shutting down (checkpointing in-flight jobs)")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "meshopt serve: shutdown: %v\n", err)
		}
		hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
		defer hcancel()
		hs.Shutdown(hctx)
		hs.Close()
		return 0
	}
}

// submitBody builds the POST /v1/jobs payload for a resolved target.
func submitBody(ti *shardTarget, seed int64, scale string, shards int) ([]byte, error) {
	req := map[string]any{
		"experiment": ti.name,
		"seed":       seed,
		"scale":      scale,
		"shards":     shards,
	}
	if len(ti.spec) > 0 {
		req["spec"] = json.RawMessage(ti.spec)
	}
	return json.Marshal(req)
}

// decodeResponse reads an API response and decodes its JSON body into
// out, returning the HTTP status code; a non-200 status becomes an
// error carrying the server's message.
func decodeResponse(resp *http.Response, out any) (int, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return resp.StatusCode, json.Unmarshal(data, out)
}

// postJSON posts body and decodes the JSON response into out,
// returning the HTTP status code.
func postJSON(url string, body []byte, out any) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	return decodeResponse(resp, out)
}

// serverStatus mirrors the serve layer's GET /v1/jobs/{id} body.
type serverStatus struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	Cells        int    `json:"cells"`
	CellsDone    int    `json:"cells_done"`
	Records      int    `json:"records"`
	CacheHit     bool   `json:"cache_hit"`
	ResumedCells int    `json:"resumed_cells"`
	ReusedShards int    `json:"reused_shards"`
	Error        string `json:"error"`
	Summary      string `json:"summary"`
}

// runSubmit implements the `submit` subcommand: post a job to a
// `meshopt serve` instance and stream its records to stdout (or -o),
// byte-identical to running the same job locally with `meshopt fig`.
// Exit codes: 0 ok, 1 runtime/server failure, 2 usage or unknown name.
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("meshopt submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	seed := fs.Int64("seed", 1, "experiment seed")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	shards := fs.Int("shards", 0, "dispatch over k shards via the server's coordinator (0/1 = in-process)")
	from := fs.Int("from", 0, "stream records starting at this cell index")
	out := fs.String("o", "", "write records to this file (default: stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt submit <n|name|scenario|spec.json> -addr http://host:port [flags]")
		fs.PrintDefaults()
	}
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		fs.Usage()
		return 2
	}
	ti, err := resolveShardable(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if _, err := parseScale(*scaleName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *from < 0 {
		fmt.Fprintln(os.Stderr, "-from must be >= 0")
		return 2
	}

	body, err := submitBody(ti, seedOrDefault(fs, *seed, ti.seed), *scaleName, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	base := strings.TrimRight(*addr, "/")
	var sub struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Cells   int    `json:"cells"`
		Created bool   `json:"created"`
	}
	status, err := postJSON(base+"/v1/jobs", body, &sub)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if status == http.StatusBadRequest {
			return 2 // the server rejected the job itself: a usage error
		}
		return 1
	}
	how := "submitted"
	switch {
	case !sub.Created && sub.State == "done":
		how = "cache: hit"
	case !sub.Created:
		how = "cache: attached to in-flight job"
	}
	fmt.Fprintf(os.Stderr, "job %.12s: %s (%d cells, state %s)\n", sub.ID, how, sub.Cells, sub.State)

	recordW, logW, closeOut, err := openRecords(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	url := base + "/v1/jobs/" + sub.ID + "/records"
	if *from > 0 {
		url += fmt.Sprintf("?from=%d", *from)
	}
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		// An error body must never reach the records destination: it
		// would corrupt a piped NDJSON consumer or the -o file.
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		closeOut()
		fmt.Fprintf(os.Stderr, "records: %s: %s\n", resp.Status, strings.TrimSpace(string(msg)))
		return 1
	}
	_, copyErr := io.Copy(recordW, resp.Body)
	resp.Body.Close()
	if cerr := closeOut(); copyErr == nil {
		copyErr = cerr
	}
	if copyErr != nil {
		fmt.Fprintln(os.Stderr, copyErr)
		return 1
	}

	// The stream ends when the job reaches a terminal state; report it.
	var st serverStatus
	if _, err := getJSON(base+"/v1/jobs/"+sub.ID, &st); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if st.State != "done" {
		fmt.Fprintf(os.Stderr, "job %.12s: %s: %s\n", sub.ID, st.State, st.Error)
		return 1
	}
	if st.Summary != "" {
		fmt.Fprint(logW, st.Summary)
	}
	return 0
}

// getJSON fetches url and decodes the JSON response into out.
func getJSON(url string, out any) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return decodeResponse(resp, out)
}

var jobIDPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// runWatch implements the `watch` subcommand: poll a job's status and
// render a live progress line off the server's merge frontier. The
// argument is either a job id (as printed by submit) or the same
// target submit takes (the id is then derived from the content hash).
// Exit codes: 0 job done, 1 job failed or server unreachable, 2 usage
// or unknown name/job.
func runWatch(args []string) int {
	fs := flag.NewFlagSet("meshopt watch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	seed := fs.Int64("seed", 1, "experiment seed (when the argument is a target, not a job id)")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or paper")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll interval")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: meshopt watch <job-id|n|name|scenario|spec.json> -addr http://host:port [flags]")
		fs.PrintDefaults()
	}
	var target string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		target, args = args[0], args[1:]
	}
	fs.Parse(args)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		fs.Usage()
		return 2
	}
	id := target
	if !jobIDPattern.MatchString(target) {
		ti, err := resolveShardable(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if _, err := parseScale(*scaleName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if id, err = serve.JobKey(dist.Job{
			Experiment: ti.name,
			Spec:       ti.spec,
			Seed:       seedOrDefault(fs, *seed, ti.seed),
			Scale:      *scaleName,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	base := strings.TrimRight(*addr, "/")
	for {
		var st serverStatus
		status, err := getJSON(base+"/v1/jobs/"+id, &st)
		if status == http.StatusNotFound {
			fmt.Fprintf(os.Stderr, "\nno such job %.12s on %s (submit it first)\n", id, base)
			return 2
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "\rwatch %.12s: %-8s cells %d/%d, %d records ",
			st.ID, st.State, st.CellsDone, st.Cells, st.Records)
		switch st.State {
		case "done":
			fmt.Fprintln(os.Stderr)
			if st.Summary != "" {
				fmt.Print(st.Summary)
			}
			return 0
		case "failed":
			fmt.Fprintf(os.Stderr, "\n%s\n", st.Error)
			return 1
		}
		time.Sleep(*interval)
	}
}
