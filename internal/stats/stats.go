// Package stats provides the small statistical toolkit used by the
// experiment harness: empirical CDFs, RMSE, Jain's fairness index,
// summary aggregates matching the metrics reported in the paper's
// evaluation figures, and streamable record series (CDF points,
// quantiles) that reductions can emit alongside their scalar results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/scenario/sink"
)

// CDF is an empirical cumulative distribution over observed samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF (the input is not modified).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (x, F(x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		out = append(out, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// Format renders the CDF as "x f(x)" lines for terminal output.
func (c *CDF) Format(n int) string {
	var b strings.Builder
	for _, p := range c.Points(n) {
		fmt.Fprintf(&b, "%12.4f %6.3f\n", p[0], p[1])
	}
	return b.String()
}

// Series renders the CDF as up to n streamable records — one (x, p)
// point per record, cell-indexed in ascending x — under the given
// scenario and series names. Reductions emit these so a distribution
// rides the same record pipeline (JSONL/CSV sinks, the serve layer's
// streams) as per-cell results instead of living only in printed
// summaries.
func (c *CDF) Series(scenario, series string, n int) []sink.Record {
	pts := c.Points(n)
	recs := make([]sink.Record, 0, len(pts))
	for i, p := range pts {
		recs = append(recs, sink.Record{
			Scenario: scenario,
			Series:   series,
			Cell:     i,
			Fields:   []sink.Field{sink.F("x", p[0]), sink.F("p", p[1])},
		})
	}
	return recs
}

// QuantileSeries renders the named quantiles of the CDF as streamable
// records: one record per q with fields q and v = Quantile(q), in the
// order given.
func (c *CDF) QuantileSeries(scenario, series string, qs []float64) []sink.Record {
	recs := make([]sink.Record, 0, len(qs))
	for i, q := range qs {
		recs = append(recs, sink.Record{
			Scenario: scenario,
			Series:   series,
			Cell:     i,
			Fields:   []sink.Field{sink.F("q", q), sink.F("v", c.Quantile(q))},
		})
	}
	return recs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var se float64
	for i := range pred {
		d := pred[i] - truth[i]
		se += d * d
	}
	return math.Sqrt(se / float64(len(pred)))
}

// JainIndex is Jain's fairness index: (sum x)^2 / (n * sum x^2). It is 1
// for a perfectly even allocation and 1/n for a single-winner allocation.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s, s2 float64
	for _, v := range x {
		s += v
		s2 += v * v
	}
	if s2 == 0 {
		return 0
	}
	return s * s / (float64(len(x)) * s2)
}

// Summary aggregates min/mean/max of a sample set.
type Summary struct {
	Min, Mean, Max float64
	N              int
}

// Summarize computes a Summary.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{Min: x[0], Max: x[0], N: len(x)}
	var total float64
	for _, v := range x {
		total += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = total / float64(len(x))
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4f min=%.4f max=%.4f n=%d", s.Mean, s.Min, s.Max, s.N)
}

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var t float64
	for _, v := range x {
		t += v
	}
	return t / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var se float64
	for _, v := range x {
		se += (v - m) * (v - m)
	}
	return math.Sqrt(se / float64(len(x)))
}
