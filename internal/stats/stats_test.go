package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, cs := range cases {
		if got := c.At(cs.x); math.Abs(got-cs.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	pts := c.Points(5)
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
}

func TestPropertyCDFAtIsMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("zero-error RMSE = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocation JFI = %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single-winner JFI = %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate JFI")
	}
}

func TestPropertyJainBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			// Map into a physically meaningful throughput range to
			// avoid float overflow in sum-of-squares.
			xs[i] = math.Mod(math.Abs(v), 1e9)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		j := JainIndex(xs)
		if len(xs) == 0 {
			return j == 0
		}
		return j >= 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Min != 2 || s.Max != 6 || math.Abs(s.Mean-4) > 1e-12 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestCDFSeriesRecords(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	recs := c.Series("exp", "err_cdf", 4)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantX := []float64{1, 2, 3, 4}
	wantP := []float64{0.25, 0.5, 0.75, 1}
	for i, r := range recs {
		if r.Scenario != "exp" || r.Series != "err_cdf" || r.Cell != i {
			t.Fatalf("record %d not normalized: %+v", i, r)
		}
		if r.Float("x") != wantX[i] || r.Float("p") != wantP[i] {
			t.Fatalf("record %d = (%v, %v), want (%v, %v)", i, r.Float("x"), r.Float("p"), wantX[i], wantP[i])
		}
	}
	if got := NewCDF(nil).Series("exp", "s", 4); len(got) != 0 {
		t.Fatalf("empty CDF emitted %d records", len(got))
	}
}

func TestQuantileSeriesRecords(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	recs := c.QuantileSeries("exp", "err_q", []float64{0.5, 0.9})
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Float("q") != 0.5 || recs[0].Float("v") != c.Quantile(0.5) {
		t.Fatalf("q50 record: %+v", recs[0])
	}
	if recs[1].Float("q") != 0.9 || recs[1].Float("v") != c.Quantile(0.9) || recs[1].Cell != 1 {
		t.Fatalf("q90 record: %+v", recs[1])
	}
}
