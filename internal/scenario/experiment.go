package scenario

import (
	"fmt"
	"io"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
	"repro/internal/trace"
)

// Experiment adapts a declarative Spec to the exp.Experiment interface,
// which is what lets a swept scenario ride the whole shard machinery:
// `meshopt fig <scenario> -shard i/k`, `meshopt merge`, and the
// `meshopt coord` distributed coordinator all accept scenario names
// because of this adapter. A spec that delegates to a figure
// (`"figure": N`) resolves straight to the registered figure experiment.
//
// The adapter enumerates one cell per sweep point (the same row-major,
// last-axis-fastest expansion the scenario engine uses) and emits every
// record a cell produces plus one trailing "summary" record carrying
// the cell's one-line human summary. The summary record also guarantees
// the ≥1-record-per-cell contract the shard/merge validation relies on
// (see exp.RecordStreamer). Note the stream therefore differs from
// `meshopt run <name>` output exactly by those summary records.
func Experiment(spec *Spec) (exp.Experiment, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Figure != 0 {
		e, ok := exp.Find(fmt.Sprintf("fig%d", spec.Figure))
		if !ok {
			return nil, fmt.Errorf("scenario %q: figure %d has no registered experiment", spec.Name, spec.Figure)
		}
		return e, nil
	}
	if spec.Broadcast != nil {
		return broadcastExperiment(spec)
	}
	return specExperiment{spec: spec}, nil
}

// broadcastExperiment adapts a "broadcast" spec kind to the
// dissemination workload: the spec's topology (frozen at the
// experiment seed via buildTopology) becomes the relay graph, and the
// spec's policy set, roots, repetitions and adversary knobs become the
// workload axes. The returned Workload is a full exp.Experiment, so
// broadcast specs shard, coordinate and cache like any figure.
func broadcastExperiment(spec *Spec) (exp.Experiment, error) {
	b := spec.Broadcast
	policies := make([]broadcast.Relay, len(b.Policies))
	for i, name := range b.Policies {
		p, err := broadcast.ParsePolicy(name, b.GossipP, b.K)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %v", spec.Name, err)
		}
		policies[i] = p
	}
	rate, err := parseRate(spec.Topology.Rate)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %v", spec.Name, err)
	}
	payload := b.PayloadBytes
	if payload <= 0 {
		payload = 1024
	}
	adv := broadcast.AdversaryConfig{MaliciousFraction: b.MaliciousFraction}
	if c := b.Churn; c != nil {
		adv.ChurnFraction = c.Fraction
		adv.ChurnStartMaxSec = c.StartMaxSec
		adv.AbsentMinSec = c.AbsentMinSec
		adv.AbsentMaxSec = c.AbsentMaxSec
	}
	n := spec.Topology.NodeCount()
	roots := b.Roots
	if len(roots) == 0 {
		roots = []int{0, n / 3, 2 * n / 3}
	}
	return &broadcast.Workload{
		Label: spec.Name,
		Desc:  spec.Description,
		Build: func(seed int64, _ int) (*broadcast.Net, error) {
			nw, err := buildTopology(spec, seed)
			if err != nil {
				return nil, err
			}
			return broadcast.NewNet(nw, rate, payload), nil
		},
		Nodes: func(exp.Scale) int { return n },
		Roots: func(int) []int { return roots },
		Reps: func(sc exp.Scale) int {
			if b.Repetitions > 0 {
				return b.Repetitions
			}
			return sc.Iterations
		},
		Policies:  policies,
		Adversary: adv,
		Trace:     spec.Trace,
	}, nil
}

type specExperiment struct{ spec *Spec }

// specCell is the per-cell payload: the sweep point plus the quick flag
// (derived from the Scale, so every process sharding the same run caps
// durations identically).
type specCell struct {
	pt    sweepPoint
	quick bool
}

func (s specExperiment) Name() string     { return s.spec.Name }
func (s specExperiment) Describe() string { return s.spec.Description }

// Cells enumerates the sweep cross product. The base seed is the
// engine's seed argument (the CLI defaults it to the spec's own seed);
// a "seed" sweep axis still overrides it per cell inside runCell.
func (s specExperiment) Cells(seed int64, sc exp.Scale) []exp.Cell {
	pts := sweepPoints(s.spec)
	quick := sc == exp.Quick()
	cells := make([]exp.Cell, len(pts))
	for i := range cells {
		cells[i] = exp.Cell{Seed: seed, Data: specCell{pt: pts[i], quick: quick}}
	}
	return cells
}

// RunCellRecords executes one sweep point and returns its records: the
// cell's link/plan/flow/probe rows, any "trace" records the spec's
// Trace flag captured, and one trailing "summary" record. An
// engine-provided capture (c.Capture, from exp.Options.Capture) takes
// precedence over the spec flag; the engine then appends the trace
// records itself.
func (s specExperiment) RunCellRecords(c exp.Cell) []sink.Record {
	d := c.Data.(specCell)
	cc, _ := c.Capture.(*trace.CellCapture)
	selfTrace := cc == nil && s.spec.Trace
	if selfTrace {
		cc = trace.NewCellCapture()
	}
	res := runCell(s.spec, Options{Quick: d.quick, Capture: cc}, c.Seed, c.Index, d.pt)
	recs := res.records
	if selfTrace {
		recs = append(recs, cc.Records()...)
	}
	return append(recs, sink.Record{
		Series: "summary",
		Fields: []sink.Field{sink.F("text", res.summary)},
	})
}

// RunCell satisfies exp.Experiment; the engine prefers RunCellRecords
// (RecordStreamer) and never calls this. It returns the cell's summary
// record.
func (s specExperiment) RunCell(c exp.Cell) sink.Record {
	recs := s.RunCellRecords(c)
	return recs[len(recs)-1]
}

// SweepResult is the reduction of a scenario sweep: row counts plus the
// per-cell one-line summaries, rebuilt identically from in-process
// records or from a merged shard stream.
type SweepResult struct {
	Scenario string
	Cells    int
	Records  int // result rows, summary records excluded
	Errors   int
	Lines    []string
}

// Print writes the per-cell summaries the scenario engine would log.
func (r *SweepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: %d cell(s), %d record(s)", r.Scenario, r.Cells, r.Records)
	if r.Errors > 0 {
		fmt.Fprintf(w, ", %d error(s)", r.Errors)
	}
	fmt.Fprintln(w)
	for _, l := range r.Lines {
		fmt.Fprintf(w, "  %s\n", l)
	}
}

// Reduce folds the ordered record stream into a SweepResult.
func (s specExperiment) Reduce(recs <-chan sink.Record) exp.Result {
	res := &SweepResult{Scenario: s.spec.Name}
	for rec := range recs {
		switch rec.Series {
		case "summary":
			res.Cells++
			res.Lines = append(res.Lines, fmt.Sprintf("cell %d: %s", rec.Cell, rec.Text("text")))
		case "error":
			res.Errors++
			res.Records++
		case "trace":
			// Capture output rides the stream but is not a result row.
		default:
			res.Records++
		}
	}
	return res
}
