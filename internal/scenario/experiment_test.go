package scenario

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/experiments/exp"
	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
)

// renderSpecJSONL streams the fairness sweep through the experiment
// adapter under a pinned worker count.
func renderSpecJSONL(t *testing.T, e exp.Experiment, shard exp.Shard, workers int) ([]byte, exp.Result) {
	t.Helper()
	prev := runner.SetWorkers(workers)
	defer runner.SetWorkers(prev)
	var buf bytes.Buffer
	s := sink.NewJSONL(&buf)
	res, err := exp.Run(e, 11, exp.Quick(), exp.Options{Sink: s, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func fairnessExperiment(t *testing.T) exp.Experiment {
	t.Helper()
	spec, ok := Lookup("fairness")
	if !ok {
		t.Fatal("fairness not registered")
	}
	e, err := Experiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScenarioExperimentEnumeratesSweep(t *testing.T) {
	e := fairnessExperiment(t)
	if e.Name() != "fairness" {
		t.Fatalf("name = %q", e.Name())
	}
	cells := e.Cells(11, exp.Quick())
	if len(cells) != 6 { // the alpha axis has 6 values
		t.Fatalf("enumerated %d cells, want 6", len(cells))
	}
}

func TestScenarioExperimentShardMergeByteIdentical(t *testing.T) {
	e := fairnessExperiment(t)
	full, fullRes := renderSpecJSONL(t, e, exp.Shard{}, 2)
	if len(full) == 0 {
		t.Fatal("no records streamed")
	}
	s0, _ := renderSpecJSONL(t, e, exp.Shard{Index: 0, Count: 2}, 1)
	s1, _ := renderSpecJSONL(t, e, exp.Shard{Index: 1, Count: 2}, 2)

	// Whole-file merge: bytes identical (no reduction — scenario specs
	// are not in the experiment registry).
	var merged bytes.Buffer
	if _, err := exp.Merge([]io.Reader{bytes.NewReader(s0), bytes.NewReader(s1)}, &merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatalf("merged sweep differs from the unsharded stream:\nmerged:\n%s\nfull:\n%s", merged.Bytes(), full)
	}

	// Incremental merge with the adapter supplied explicitly: bytes and
	// reduction both identical.
	var live bytes.Buffer
	m := exp.NewMerger(&live, 2, e)
	for shard, stream := range [][]byte{s0, s1} {
		for _, line := range bytes.Split(stream, []byte{'\n'}) {
			if err := m.Push(shard, line); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.CloseShard(shard); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Finish(6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), full) {
		t.Fatalf("live-merged sweep differs from the unsharded stream")
	}
	if !reflect.DeepEqual(res, fullRes) {
		t.Fatalf("live-merged reduction differs:\n%+v\nvs\n%+v", res, fullRes)
	}
	sr, ok := res.(*SweepResult)
	if !ok || sr.Cells != 6 || len(sr.Lines) != 6 {
		t.Fatalf("sweep result %+v", res)
	}
}

func TestScenarioExperimentFigureDelegate(t *testing.T) {
	spec, ok := Lookup("fig10")
	if !ok {
		t.Fatal("fig10 scenario not registered")
	}
	e, err := Experiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "fig10" {
		t.Fatalf("figure delegate resolved to %q, want the registered fig10 experiment", e.Name())
	}
}
