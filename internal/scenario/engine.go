package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core/capacity"
	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// Options tunes cell execution. Scenarios run through the experiment
// adapter (Experiment) and the exp engine — the legacy in-package run
// loop is gone — but cell bodies still need the quick-scale knob.
type Options struct {
	// Quick caps declarative durations and probe windows for smoke
	// runs; the experiment adapter derives it from the run scale.
	Quick bool
	// Capture, when set, is installed on the cell's medium right after
	// topology construction: the tracer records every delivery
	// decision, and a carried replay channel overrides the stochastic
	// channel (see internal/trace).
	Capture *trace.CellCapture
}

// sweepPoint is one cell's coordinates in the sweep cross product.
type sweepPoint struct {
	names  []string
	values []float64
}

func (p sweepPoint) label() string {
	if len(p.names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" [")
	for i, n := range p.names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%g", n, p.values[i])
	}
	b.WriteString("]")
	return b.String()
}

// sweepPoints expands the sweep axes row-major, last axis fastest.
func sweepPoints(spec *Spec) []sweepPoint {
	points := []sweepPoint{{}}
	for _, ax := range spec.Sweep {
		var next []sweepPoint
		for _, pt := range points {
			for _, v := range ax.Values {
				next = append(next, sweepPoint{
					names:  append(append([]string(nil), pt.names...), ax.Name),
					values: append(append([]float64(nil), pt.values...), v),
				})
			}
		}
		points = next
	}
	return points
}

// cellResult is one cell's streamed records plus a one-line summary.
type cellResult struct {
	records []sink.Record
	summary string
}

// cellParams is the spec resolved at one sweep point.
type cellParams struct {
	seed   int64
	alpha  *float64 // overrides the controller objective
	regime int      // 0 noRC, 1 RC max, 2 RC prop; -1 = no regime axis
}

// durations derived from the spec, with the Quick caps applied.
func (o Options) trafficDur(sec float64) sim.Time {
	if o.Quick && sec > 5 {
		sec = 5
	}
	return sim.Time(sec * float64(sim.Second))
}

func (o Options) probeWindow(w int) int {
	if w <= 0 {
		w = 200
	}
	if o.Quick && w > 200 {
		w = 200
	}
	return w
}

// runCell executes one simulation cell. Cells are fully independent:
// each builds its own simulator, medium and node stack from the cell
// seed, per the runner's determinism contract.
func runCell(spec *Spec, o Options, baseSeed int64, idx int, pt sweepPoint) cellResult {
	p := cellParams{seed: baseSeed, regime: -1}
	for i, name := range pt.names {
		v := pt.values[i]
		switch name {
		case "seed":
			p.seed = int64(v)
		case "alpha":
			a := v
			p.alpha = &a
		case "regime":
			p.regime = int(v)
		}
	}

	axisFields := make([]sink.Field, 0, len(pt.names)+1)
	axisFields = append(axisFields, sink.F("seed", p.seed))
	for i, name := range pt.names {
		if name != "seed" {
			axisFields = append(axisFields, sink.F(name, pt.values[i]))
		}
	}
	var res cellResult
	emit := func(series string, fields ...sink.Field) {
		res.records = append(res.records, sink.Record{
			Scenario: spec.Name,
			Series:   series,
			Cell:     idx,
			Fields:   append(append([]sink.Field(nil), axisFields...), fields...),
		})
	}

	nw, err := buildTopology(spec, p.seed)
	if err != nil {
		emit("error", sink.F("error", err.Error()))
		res.summary = "error: " + err.Error()
		return res
	}
	if o.Capture != nil {
		o.Capture.Install(nw.Medium)
	}
	rate, _ := parseRate(spec.Topology.Rate)
	payload := traffic.DefaultPayload

	// Ground-truth phase: solo maxUDP on the probed link, before any
	// traffic or probing disturbs the medium.
	var truthBps float64
	ps := spec.Measure.Probe
	if ps != nil && ps.MeasureTruth {
		dur := o.trafficDur(10)
		truth := measure.MaxUDP(nw, topology.Link{Src: ps.Src, Dst: ps.Dst}, payload, dur)
		truthBps = truth.ThroughputBps
	}

	// Controller phase: probe, estimate, model, optimize.
	var plan *controller.Plan
	var ctrl *controller.Controller
	var managed []controller.Flow
	if cs := spec.Controller; cs != nil {
		cfg := controller.DefaultConfig(rate)
		cfg.Objective = objectiveFor(cs, p)
		if cs.ProbePeriodMs > 0 {
			cfg.ProbePeriod = sim.Time(cs.ProbePeriodMs * float64(sim.Millisecond))
		}
		cfg.ProbeWindow = o.probeWindow(cs.ProbeWindow)
		for _, f := range spec.Traffic {
			managed = append(managed, controller.Flow{Src: f.Src, Dst: f.Dst})
		}
		ctrl = controller.New(nw, managed, cfg)
		ctrl.ProbeFullWindow()
		plan, err = ctrl.Compute()
		if err != nil {
			emit("error", sink.F("error", err.Error()))
			res.summary = "plan failed: " + err.Error()
			return res
		}
		for i, l := range plan.Links {
			emit("link",
				sink.F("link", l.String()),
				sink.F("capacity_bps", plan.Capacities[i]),
				sink.F("loss", plan.LossRates[i]))
		}
		for s := range managed {
			emit("plan",
				sink.F("flow", s),
				sink.F("src", managed[s].Src),
				sink.F("dst", managed[s].Dst),
				sink.F("hops", len(plan.FlowPaths[s])-1),
				sink.F("output_bps", plan.OutputRates[s]),
				sink.F("input_bps", plan.InputRates[s]))
		}
		res.summary = fmt.Sprintf("plan: %d links, %d flows", len(plan.Links), len(managed))
	}

	dur := o.trafficDur(spec.Measure.DurationSec)
	if dur == 0 && ps == nil {
		if res.summary == "" {
			res.summary = "no measurement phase"
		}
		return res // plan-only
	}

	// Traffic phase.
	stop, goodput := startTraffic(spec, nw, ctrl, plan, p, payload)

	// Probe phase: online estimation on one link while traffic runs.
	var rec *probe.Recorder
	var adhoc *probe.AdHocProbe
	var probeRun sim.Time
	if ps != nil {
		period := probePeriod(ps)
		window := o.probeWindow(ps.Window)
		rec = probe.NewRecorder(nw.Node(ps.Dst))
		pr := probe.NewProber(nw.Sim, nw.Node(ps.Src), rate, payload)
		pr.SetPeriod(period)
		pr.Start()
		defer pr.Stop()
		if ps.AdHoc {
			adhoc = probe.NewAdHocProbe(nw.Sim, nw.Node(ps.Src), ps.Dst, payload, 200, 4*period)
			adhoc.Start(nw.Node(ps.Dst))
			defer adhoc.Stop()
		}
		probeRun = sim.Time(window+10) * period
	}

	run := dur
	if probeRun > run {
		run = probeRun
	}
	nw.Sim.Run(nw.Sim.Now() + run)
	flows := stop()

	// Results: per-flow achieved goodput...
	for s, g := range flows {
		f := spec.Traffic[s]
		fields := []sink.Field{
			sink.F("flow", s),
			sink.F("src", f.Src),
			sink.F("dst", f.Dst),
			sink.F("transport", f.Transport),
			sink.F("goodput_bps", g),
		}
		if plan != nil && s < len(plan.OutputRates) && plan.OutputRates[s] > 0 && goodput {
			fields = append(fields, sink.F("of_plan", g/plan.OutputRates[s]))
		}
		emit("flow", fields...)
	}
	if goodput && len(flows) > 0 {
		// cbr background flows report NaN (unmeasured) and stay out of
		// the aggregate.
		var agg float64
		measured := 0
		for _, g := range flows {
			if !math.IsNaN(g) {
				agg += g
				measured++
			}
		}
		res.summary = fmt.Sprintf("aggregate %.2f Mb/s over %d flow(s)", agg/1e6, measured)
	}

	// ... and the probe-phase estimates.
	if ps != nil {
		window := o.probeWindow(ps.Window)
		fields := []sink.Field{sink.F("link", fmt.Sprintf("%d->%d", ps.Src, ps.Dst))}
		if est, ok := rec.Estimate(ps.Src, window); ok {
			raw := rec.Trace(ps.Src, probe.ClassData, window).MeasuredLoss()
			eq6 := capacity.MaxUDP(est.Pl, rate, payload)
			fields = append(fields,
				sink.F("raw_loss", raw),
				sink.F("est_channel_loss", est.PData),
				sink.F("eq6_bps", eq6),
				sink.F("nominal_bps", capacity.NominalGoodput(rate, payload)))
			res.summary = fmt.Sprintf("est channel loss %.3f, Eq.6 %.2f Mb/s", est.PData, eq6/1e6)
		} else {
			fields = append(fields, sink.F("usable", false))
			res.summary = "probe link unusable"
		}
		if ps.MeasureTruth {
			fields = append(fields, sink.F("maxudp_bps", truthBps))
		}
		if adhoc != nil {
			fields = append(fields, sink.F("adhoc_bps", adhoc.EstimateBps()))
		}
		emit("probe", fields...)
	}
	return res
}

// objectiveFor resolves the cell's utility objective.
func objectiveFor(cs *ControllerSpec, p cellParams) optimize.Objective {
	switch p.regime {
	case 1:
		return optimize.MaxThroughput
	case 2:
		return optimize.ProportionalFair
	}
	if p.alpha != nil {
		return optimize.Objective{Alpha: *p.alpha}
	}
	switch cs.Objective {
	case "max":
		return optimize.MaxThroughput
	case "maxmin":
		return optimize.MaxMin
	default:
		return optimize.ProportionalFair
	}
}

func probePeriod(ps *ProbeSpec) sim.Time {
	if ps.PeriodMs > 0 {
		return sim.Time(ps.PeriodMs * float64(sim.Millisecond))
	}
	return 100 * sim.Millisecond
}

// startTraffic wires the traffic matrix up and returns a stop function
// that halts every source and reports per-flow goodput (bps, indexed
// like spec.Traffic), plus whether those goodputs are meaningful (false
// when no measured flows ran).
func startTraffic(spec *Spec, nw *topology.Network, ctrl *controller.Controller, plan *controller.Plan, p cellParams, payload int) (stop func() []float64, goodput bool) {
	shaped := spec.Controller != nil && spec.Controller.ApplyRC
	if p.regime == 0 {
		shaped = false
	} else if p.regime > 0 {
		shaped = true
	}

	var stops []func()
	flows := make([]float64, len(spec.Traffic))
	collectors := make([]func() float64, len(spec.Traffic))

	if ctrl != nil && shaped {
		// The plan's rate limits applied to every managed flow.
		if spec.Traffic[0].Transport == "udp" {
			sources, sinks := ctrl.ApplyUDP(plan)
			for s := range sources {
				s := s
				stops = append(stops, sources[s].Stop)
				collectors[s] = func() float64 { return sinks[s].ThroughputBps(s) }
			}
		} else {
			tcp, _ := ctrl.ApplyTCP(plan)
			for s := range tcp {
				s := s
				stops = append(stops, tcp[s].Stop)
				collectors[s] = tcp[s].GoodputBps
			}
		}
		goodput = true
	} else {
		for s, f := range spec.Traffic {
			s, f := s, f
			switch f.Transport {
			case "tcp":
				fl := transport.NewFlow(nw.Sim, nw.Nodes[f.Src], nw.Nodes[f.Dst], s)
				fl.Start()
				stops = append(stops, fl.Stop)
				collectors[s] = fl.GoodputBps
				goodput = true
			case "udp":
				snk := traffic.NewSink(nw.Sim, nw.Nodes[f.Dst])
				if f.RateBps > 0 {
					src := traffic.NewCBR(nw.Sim, nw.Nodes[f.Src], s, f.Dst, payload, f.RateBps)
					src.Start()
					stops = append(stops, src.Stop)
				} else {
					src := traffic.NewBacklogged(nw.Sim, nw.Nodes[f.Src], s, f.Dst, payload)
					src.Start()
					stops = append(stops, src.Stop)
				}
				collectors[s] = func() float64 { return snk.ThroughputBps(s) }
				goodput = true
			case "cbr":
				src := traffic.NewCBR(nw.Sim, nw.Nodes[f.Src], s, f.Dst, payload, f.RateBps)
				if f.BurstOnSec > 0 {
					startBurstCycle(nw.Sim, src,
						sim.Time(f.BurstOnSec*float64(sim.Second)),
						sim.Time(f.BurstOffSec*float64(sim.Second)))
				} else {
					src.Start()
				}
				stops = append(stops, src.Stop)
				collectors[s] = func() float64 { return math.NaN() } // background, unmeasured
			}
		}
	}

	return func() []float64 {
		for _, st := range stops {
			st()
		}
		for s, c := range collectors {
			if c != nil {
				flows[s] = c()
			}
		}
		return flows
	}, goodput
}

// startBurstCycle toggles a CBR source on/off forever (the simulation's
// end bounds it).
func startBurstCycle(s *sim.Sim, src *traffic.CBR, on, off sim.Time) {
	var cycle func()
	running := false
	cycle = func() {
		if running {
			src.Stop()
			s.After(off, cycle)
		} else {
			src.Start()
			s.After(on, cycle)
		}
		running = !running
	}
	cycle()
}

// buildTopology constructs the cell's network.
func buildTopology(spec *Spec, seed int64) (*topology.Network, error) {
	t := &spec.Topology
	rate, err := parseRate(t.Rate)
	if err != nil {
		return nil, err
	}
	layoutSeed := t.LayoutSeed
	if layoutSeed == 0 {
		layoutSeed = seed
	}
	var nw *topology.Network
	switch t.Kind {
	case "chain":
		nw = topology.Chain(seed, t.Nodes, t.SpacingM, rate)
	case "mesh18":
		nw = topology.Mesh18Seeded(layoutSeed, seed)
		for _, n := range nw.Nodes {
			n.SetDefaultRate(rate)
		}
	case "twolink":
		var class topology.Class
		switch t.Class {
		case "CS":
			class = topology.CS
		case "IA":
			class = topology.IA
		case "NF":
			class = topology.NF
		}
		nw = topology.TwoLink(seed, class, rate, rate).Network
	case "gateway":
		nw = topology.GatewayScenario(seed, rate)
	case "grid":
		nw = positionNetwork(spec, seed, gridPositions(t.Nodes, t.SpacingM), rate)
	case "random":
		rng := rand.New(rand.NewSource(layoutSeed))
		pos := make([]phy.Position, t.Nodes)
		for i := range pos {
			pos[i] = phy.Position{X: rng.Float64() * t.SizeM, Y: rng.Float64() * t.SizeM}
		}
		nw = positionNetwork(spec, seed, pos, rate)
	case "explicit":
		pos := make([]phy.Position, len(t.Positions))
		for i, p := range t.Positions {
			pos[i] = phy.Position{X: p.X, Y: p.Y}
		}
		nw = positionNetwork(spec, seed, pos, rate)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", t.Kind)
	}
	for _, b := range t.BER {
		nw.Medium.SetBER(b.Src, b.Dst, b.BER)
	}
	return nw, nil
}

// positionNetwork builds a network straight from positions (with PHY
// overrides applied) and installs min-hop routes between every pair so
// unmanaged traffic can flow before any controller computes ETT routes.
func positionNetwork(spec *Spec, seed int64, pos []phy.Position, rate phy.Rate) *topology.Network {
	cfg := phy.DefaultConfig()
	if p := spec.PHY; p != nil {
		if p.TxPowerDBm != nil {
			cfg.TxPowerDBm = *p.TxPowerDBm
		}
		if p.FadeSigmaDB != nil {
			cfg.FadeSigmaDB = *p.FadeSigmaDB
		}
		if p.NoiseDBm != nil {
			cfg.NoiseDBm = *p.NoiseDBm
		}
	}
	nw := topology.New(seed, cfg, pos, rate)
	installMinHopRoutes(nw, rate)
	return nw
}

// gridPositions lays n nodes on a near-square grid with the given
// spacing.
func gridPositions(n int, spacing float64) []phy.Position {
	cols := 1
	for cols*cols < n {
		cols++
	}
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{
			X: float64(i%cols) * spacing,
			Y: float64(i/cols) * spacing,
		}
	}
	return pos
}

// installMinHopRoutes wires BFS shortest-hop next-hop routes over the
// links decodable at rate between every connected pair.
func installMinHopRoutes(nw *topology.Network, rate phy.Rate) {
	n := len(nw.Nodes)
	adj := make([][]int, n)
	for _, l := range nw.Links(rate) {
		adj[l.Src] = append(adj[l.Src], l.Dst)
	}
	for src := 0; src < n; src++ {
		// BFS from src; parent chain yields the first hop toward each
		// destination.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if parent[v] == -1 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src || parent[dst] == -1 {
				continue
			}
			// Walk back from dst to the neighbour of src.
			hop := dst
			for parent[hop] != src {
				hop = parent[hop]
			}
			nw.Nodes[src].SetRoute(dst, hop)
		}
	}
}
