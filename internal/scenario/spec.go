// Package scenario is the declarative workload engine: a JSON scenario
// spec describes a topology, PHY tweaks, a traffic matrix, controller
// settings, a measurement phase and sweep axes; the engine expands the
// sweep into independent simulation cells, fans them over the parallel
// experiment runner, and streams per-cell records into a result sink in
// deterministic cell order (bit-identical output for any worker count).
//
// A registry of named built-in scenarios reproduces the examples/
// programs as data, and the fig10/fig14 entries drive the ported figure
// suites through the same spec + sink plumbing (see cmd/meshopt's `run`
// and `list` subcommands).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
	"repro/internal/phy"
)

// Spec is one declarative scenario. The zero value is invalid; specs
// come from Parse, the registry, or literal construction followed by
// Validate.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the base simulation seed; a "seed" sweep axis overrides it
	// per cell.
	Seed     int64        `json:"seed,omitempty"`
	Topology TopologySpec `json:"topology"`
	PHY      *PHYSpec     `json:"phy,omitempty"`
	// Traffic is the traffic matrix; entry order assigns flow ids.
	Traffic    []FlowSpec      `json:"traffic,omitempty"`
	Controller *ControllerSpec `json:"controller,omitempty"`
	Measure    MeasureSpec     `json:"measure"`
	// Sweep axes expand into the cross product of their values, one
	// simulation cell per point, last axis fastest.
	Sweep []Axis `json:"sweep,omitempty"`
	// Figure delegates the run to the figure suite registered as
	// "fig<n>" in the experiment registry instead of the declarative
	// engine; the other workload fields are ignored.
	Figure int `json:"figure,omitempty"`
	// Broadcast switches the workload to the event-driven
	// dissemination engine: the topology is built as usual, then swept
	// as (root × relay policy × repetition) cells. Traffic, controller,
	// measure and sweep fields must be absent.
	Broadcast *BroadcastSpec `json:"broadcast,omitempty"`
	// Trace turns on per-link delivery capture: every cell records its
	// channel decisions and appends them as "trace"-series records
	// after its result rows (see internal/trace). Figure-delegating
	// specs reject it; use `meshopt trace record fig<n>` instead.
	Trace bool `json:"trace,omitempty"`
}

// BroadcastSpec parameterizes a broadcast dissemination sweep (spec
// kind "broadcast"); see internal/broadcast for the engine.
type BroadcastSpec struct {
	// Policies lists relay policies by name: "flood", "tree",
	// "gossip" / "gossip(p)", "krandom" / "krandom(k)".
	Policies []string `json:"policies"`
	// GossipP and K supply the parameters for the bare "gossip" and
	// "krandom" forms (defaults 0.5 and 2).
	GossipP float64 `json:"gossip_p,omitempty"`
	K       int     `json:"k,omitempty"`
	// Roots lists the injection nodes; empty picks {0, n/3, 2n/3}.
	Roots []int `json:"roots,omitempty"`
	// Repetitions is the per-(root,policy) repeat count; 0 uses the
	// run scale's iteration count.
	Repetitions int `json:"repetitions,omitempty"`
	// PayloadBytes sizes the broadcast message (default 1024).
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// MaliciousFraction of nodes receive the message but never relay.
	MaliciousFraction float64 `json:"malicious_fraction,omitempty"`
	// Churn schedules seeded absence windows on a node fraction.
	Churn *ChurnSpec `json:"churn,omitempty"`
}

// ChurnSpec schedules churned nodes: each selected node is absent —
// missing frames entirely — for one uniform interval per run. Times
// are simulated seconds; zero timing fields take the engine defaults.
type ChurnSpec struct {
	Fraction     float64 `json:"fraction"`
	StartMaxSec  float64 `json:"start_max_sec,omitempty"`
	AbsentMinSec float64 `json:"absent_min_sec,omitempty"`
	AbsentMaxSec float64 `json:"absent_max_sec,omitempty"`
}

// TopologySpec selects and parameterizes the mesh under test.
type TopologySpec struct {
	// Kind is one of chain, grid, random, mesh18, twolink, gateway,
	// explicit.
	Kind string `json:"kind"`
	// Nodes is the node count for chain/grid/random.
	Nodes int `json:"nodes,omitempty"`
	// SpacingM is the chain/grid node spacing in metres.
	SpacingM float64 `json:"spacing_m,omitempty"`
	// SizeM is the side of the square the random layout draws from.
	SizeM float64 `json:"size_m,omitempty"`
	// Positions lists explicit node coordinates (kind "explicit").
	Positions []Position `json:"positions,omitempty"`
	// Class is the twolink interference class: CS, IA or NF.
	Class string `json:"class,omitempty"`
	// Rate is the default modulation, by name ("1Mbps", "11Mbps", ...).
	Rate string `json:"rate"`
	// LayoutSeed separates layout randomness (mesh18/random placement)
	// from the simulation seed; 0 means use the cell's seed.
	LayoutSeed int64 `json:"layout_seed,omitempty"`
	// BER pins per-directed-link channel bit error rates.
	BER []BERSpec `json:"ber,omitempty"`
}

// Position is a node coordinate in metres.
type Position struct {
	X float64 `json:"x"`
	Y float64 `json:"y,omitempty"`
}

// BERSpec is one directed link's channel bit error rate.
type BERSpec struct {
	Src int     `json:"src"`
	Dst int     `json:"dst"`
	BER float64 `json:"ber"`
}

// PHYSpec overrides radio parameters. Only topologies built directly
// from positions (grid, random, explicit) accept overrides; the packaged
// geometries (chain, mesh18, twolink, gateway) are calibrated against
// the default config and reject them.
type PHYSpec struct {
	TxPowerDBm  *float64 `json:"tx_power_dbm,omitempty"`
	FadeSigmaDB *float64 `json:"fade_sigma_db,omitempty"`
	NoiseDBm    *float64 `json:"noise_dbm,omitempty"`
}

// FlowSpec is one traffic-matrix entry.
type FlowSpec struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Transport is tcp, udp or cbr. tcp/udp flows are managed by the
	// controller when one is configured; cbr flows are unmanaged
	// background traffic at RateBps.
	Transport string `json:"transport"`
	// RateBps is the cbr offered rate (and the udp rate when no
	// controller plans one; 0 means backlogged).
	RateBps float64 `json:"rate_bps,omitempty"`
	// BurstOnSec/BurstOffSec cycle a cbr source on and off, modelling
	// bursty interferers; both zero means always on.
	BurstOnSec  float64 `json:"burst_on_sec,omitempty"`
	BurstOffSec float64 `json:"burst_off_sec,omitempty"`
}

// ControllerSpec runs the paper's online optimization loop before
// traffic starts: probe, estimate, model, optimize, and (optionally)
// apply the computed rate limits.
type ControllerSpec struct {
	// Objective is max, prop or maxmin (default prop); Alpha overrides
	// it with an explicit alpha-fair parameter.
	Objective string   `json:"objective,omitempty"`
	Alpha     *float64 `json:"alpha,omitempty"`
	// ProbePeriodMs overrides the probing period (default 500 ms).
	ProbePeriodMs float64 `json:"probe_period_ms,omitempty"`
	// ProbeWindow overrides the estimator window S in probes.
	ProbeWindow int `json:"probe_window,omitempty"`
	// ApplyRC applies the plan's rate limits to the traffic; false runs
	// the plan's routes with unshaped sources (the noRC baselines).
	ApplyRC bool `json:"apply_rc"`
}

// ProbeSpec adds an online estimation phase on one link during the
// measurement run.
type ProbeSpec struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// PeriodMs is the probing period (default 100 ms).
	PeriodMs float64 `json:"period_ms,omitempty"`
	// Window is the estimator window S in probes (default 200).
	Window int `json:"window,omitempty"`
	// MeasureTruth measures ground-truth maxUDP on the link (solo,
	// before traffic starts) for comparison.
	MeasureTruth bool `json:"measure_truth,omitempty"`
	// AdHoc runs an Ad Hoc Probe packet-pair estimator alongside.
	AdHoc bool `json:"adhoc,omitempty"`
}

// MeasureSpec is the measurement phase.
type MeasureSpec struct {
	// DurationSec runs traffic for this long; 0 is plan-only (the
	// controller's output is the result).
	DurationSec float64    `json:"duration_sec"`
	Probe       *ProbeSpec `json:"probe,omitempty"`
}

// Axis is one sweep dimension. Supported names: "seed" (overrides the
// cell seed), "alpha" (overrides the controller objective), "regime"
// (0 = noRC unshaped, 1 = RC max-throughput, 2 = RC proportional-fair).
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Parse decodes and validates a JSON scenario spec. Unknown fields are
// rejected so schema drift fails loudly rather than silently ignoring a
// misspelled knob.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal renders the spec as indented JSON, the round-trip inverse of
// Parse.
func Marshal(s *Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// topologyKinds enumerates the known topology families and whether they
// accept PHY overrides (position-built ones do).
var topologyKinds = map[string]bool{
	"chain":    false,
	"grid":     true,
	"random":   true,
	"mesh18":   false,
	"twolink":  false,
	"gateway":  false,
	"explicit": true,
}

// NodeCount returns the number of nodes the topology will have.
func (t *TopologySpec) NodeCount() int {
	switch t.Kind {
	case "mesh18":
		return 18
	case "twolink":
		return 4
	case "gateway":
		return 3
	case "explicit":
		return len(t.Positions)
	default:
		return t.Nodes
	}
}

// parseRate resolves a modulation by its String() name.
func parseRate(name string) (phy.Rate, error) {
	for r := phy.Rate(0); ; r++ {
		if !r.Valid() {
			return 0, fmt.Errorf("unknown rate %q", name)
		}
		if r.String() == name {
			return r, nil
		}
	}
}

// Validate checks the spec against the schema rules the engine assumes.
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: "+format, append([]any{s.Name}, args...)...)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if s.Figure != 0 {
		if _, ok := exp.Find(fmt.Sprintf("fig%d", s.Figure)); !ok {
			return fail("figure %d has no registered experiment", s.Figure)
		}
		if s.Trace {
			return fail("trace is not supported on figure-delegating specs; use `meshopt trace record fig%d`", s.Figure)
		}
		return nil
	}

	t := &s.Topology
	phyOK, known := topologyKinds[t.Kind]
	if !known {
		return fail("unknown topology kind %q", t.Kind)
	}
	if _, err := parseRate(t.Rate); err != nil {
		return fail("topology: %v", err)
	}
	switch t.Kind {
	case "chain", "grid":
		if t.Nodes < 2 {
			return fail("topology %s needs nodes >= 2", t.Kind)
		}
		if t.SpacingM <= 0 {
			return fail("topology %s needs spacing_m > 0", t.Kind)
		}
	case "random":
		if t.Nodes < 2 || t.SizeM <= 0 {
			return fail("topology random needs nodes >= 2 and size_m > 0")
		}
	case "twolink":
		switch t.Class {
		case "CS", "IA", "NF":
		default:
			return fail("topology twolink needs class CS, IA or NF (got %q)", t.Class)
		}
	case "explicit":
		if len(t.Positions) < 2 {
			return fail("topology explicit needs >= 2 positions")
		}
	}
	n := t.NodeCount()
	for _, b := range t.BER {
		if b.Src < 0 || b.Src >= n || b.Dst < 0 || b.Dst >= n || b.Src == b.Dst {
			return fail("ber entry %d->%d out of range for %d nodes", b.Src, b.Dst, n)
		}
		if b.BER < 0 || b.BER >= 1 {
			return fail("ber %g on %d->%d out of [0,1)", b.BER, b.Src, b.Dst)
		}
	}
	if s.PHY != nil && !phyOK {
		return fail("phy overrides are only supported on position-built topologies (grid, random, explicit), not %q", t.Kind)
	}

	if b := s.Broadcast; b != nil {
		if len(s.Traffic) > 0 || s.Controller != nil || s.Measure != (MeasureSpec{}) || len(s.Sweep) > 0 {
			return fail("broadcast cannot be combined with traffic, controller, measure or sweep fields")
		}
		if len(b.Policies) == 0 {
			return fail("broadcast needs at least one relay policy")
		}
		if b.GossipP < 0 || b.GossipP > 1 {
			return fail("broadcast gossip_p %g out of [0,1]", b.GossipP)
		}
		if b.K < 0 {
			return fail("broadcast k must be non-negative")
		}
		for _, name := range b.Policies {
			if _, err := broadcast.ParsePolicy(name, b.GossipP, b.K); err != nil {
				return fail("broadcast: %v", err)
			}
		}
		for _, r := range b.Roots {
			if r < 0 || r >= n {
				return fail("broadcast root %d out of range for %d nodes", r, n)
			}
		}
		if b.Repetitions < 0 {
			return fail("broadcast repetitions must be non-negative")
		}
		if b.PayloadBytes < 0 {
			return fail("broadcast payload_bytes must be non-negative")
		}
		if b.MaliciousFraction < 0 || b.MaliciousFraction > 1 {
			return fail("broadcast malicious_fraction %g out of [0,1]", b.MaliciousFraction)
		}
		if c := b.Churn; c != nil {
			if c.Fraction < 0 || c.Fraction > 1 {
				return fail("broadcast churn fraction %g out of [0,1]", c.Fraction)
			}
			if c.StartMaxSec < 0 || c.AbsentMinSec < 0 || c.AbsentMaxSec < 0 {
				return fail("broadcast churn times must be non-negative")
			}
			if c.AbsentMaxSec > 0 && c.AbsentMaxSec < c.AbsentMinSec {
				return fail("broadcast churn absent_max_sec below absent_min_sec")
			}
		}
		return nil
	}

	managed := 0
	for i, f := range s.Traffic {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n || f.Src == f.Dst {
			return fail("traffic[%d] %d->%d out of range for %d nodes", i, f.Src, f.Dst, n)
		}
		switch f.Transport {
		case "tcp", "udp":
			managed++
		case "cbr":
			if f.RateBps <= 0 {
				return fail("traffic[%d]: cbr needs rate_bps > 0", i)
			}
		default:
			return fail("traffic[%d]: unknown transport %q", i, f.Transport)
		}
		if f.BurstOnSec < 0 || f.BurstOffSec < 0 {
			return fail("traffic[%d]: negative burst durations", i)
		}
		if (f.BurstOnSec > 0) != (f.BurstOffSec > 0) {
			return fail("traffic[%d]: burst_on_sec and burst_off_sec must be set together", i)
		}
	}

	if c := s.Controller; c != nil {
		if managed == 0 {
			return fail("controller configured but no tcp/udp flows to manage")
		}
		tr := s.Traffic[0].Transport
		for i, f := range s.Traffic {
			if f.Transport == "cbr" {
				return fail("traffic[%d]: cbr background traffic cannot be mixed with a controller", i)
			}
			if f.Transport != tr {
				return fail("controller-managed flows must share one transport (got %s and %s)", tr, f.Transport)
			}
		}
		switch c.Objective {
		case "", "max", "prop", "maxmin":
		default:
			return fail("controller objective %q (want max, prop or maxmin)", c.Objective)
		}
		if c.Alpha != nil && (*c.Alpha < 0 || math.IsNaN(*c.Alpha)) {
			return fail("controller alpha %g out of range", *c.Alpha)
		}
		if c.ProbePeriodMs < 0 || c.ProbeWindow < 0 {
			return fail("controller probe settings must be non-negative")
		}
	}

	if s.Measure.DurationSec < 0 {
		return fail("measure duration_sec must be non-negative")
	}
	if p := s.Measure.Probe; p != nil {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n || p.Src == p.Dst {
			return fail("probe link %d->%d out of range for %d nodes", p.Src, p.Dst, n)
		}
		if p.PeriodMs < 0 || p.Window < 0 {
			return fail("probe settings must be non-negative")
		}
	}
	if s.Measure.DurationSec == 0 && s.Measure.Probe == nil && s.Controller == nil {
		return fail("nothing to do: no measurement duration, probe phase or controller")
	}

	for _, ax := range s.Sweep {
		if len(ax.Values) == 0 {
			return fail("sweep axis %q has no values", ax.Name)
		}
		switch ax.Name {
		case "seed":
		case "alpha":
			if s.Controller == nil {
				return fail("alpha sweep needs a controller")
			}
		case "regime":
			if s.Controller == nil {
				return fail("regime sweep needs a controller")
			}
			for _, v := range ax.Values {
				if v != 0 && v != 1 && v != 2 {
					return fail("regime values must be 0 (noRC), 1 (max) or 2 (prop); got %g", v)
				}
			}
		default:
			return fail("unknown sweep axis %q (want seed, alpha or regime)", ax.Name)
		}
	}
	return nil
}

// Cells returns the sweep size (1 when no sweep is declared).
func (s *Spec) Cells() int {
	n := 1
	for _, ax := range s.Sweep {
		n *= len(ax.Values)
	}
	return n
}
