package scenario

import (
	"fmt"
	"sort"

	// The fig10/fig14 builtins validate against the experiment
	// registry at init, so the figure suites must be registered before
	// this package initializes (engine.go used to pull experiments in
	// for its Scale type; the run port removed that dependency).
	_ "repro/internal/experiments"
)

// builtins reproduce the examples/ programs as data, plus fig10/fig14
// entries that delegate to the experiment registry. Each is a plain
// Spec literal; `meshopt run <name>` executes it and `meshopt list`
// enumerates the non-delegate ones (figures are listed from the
// experiment registry directly).
var builtins = []*Spec{
	{
		Name:        "quickstart",
		Description: "4-node chain with a lossy middle link: probe, model, optimize, then verify the prop-fair plan with shaped UDP (examples/quickstart as data)",
		Seed:        42,
		Topology: TopologySpec{
			Kind:     "chain",
			Nodes:    4,
			SpacingM: 70,
			Rate:     "11Mbps",
			BER:      []BERSpec{{Src: 1, Dst: 2, BER: 6e-6}},
		},
		Traffic: []FlowSpec{
			{Src: 3, Dst: 0, Transport: "udp"},
			{Src: 1, Dst: 0, Transport: "udp"},
		},
		Controller: &ControllerSpec{
			Objective:     "prop",
			ProbePeriodMs: 100,
			ApplyRC:       true,
		},
		Measure: MeasureSpec{DurationSec: 10},
	},
	{
		Name:        "capacity",
		Description: "online Eq.6 capacity estimation on a lossy IA link under a bursty hidden interferer, vs ground-truth maxUDP and Ad Hoc Probe (examples/capacity as data)",
		Seed:        3,
		Topology: TopologySpec{
			Kind:  "twolink",
			Class: "IA",
			Rate:  "11Mbps",
			BER:   []BERSpec{{Src: 0, Dst: 1, BER: 8e-6}},
		},
		Traffic: []FlowSpec{
			{Src: 2, Dst: 3, Transport: "cbr", RateBps: 4e6, BurstOnSec: 0.3, BurstOffSec: 2.7},
		},
		Measure: MeasureSpec{
			DurationSec: 140,
			Probe: &ProbeSpec{
				Src: 0, Dst: 1,
				PeriodMs:     100,
				Window:       1280,
				MeasureTruth: true,
				AdHoc:        true,
			},
		},
	},
	{
		Name:        "fairness",
		Description: "alpha-fair utility sweep on a 5-node chain: throughput/fairness trade-off of the planned rates (examples/fairness as data)",
		Seed:        11,
		Topology: TopologySpec{
			Kind:     "chain",
			Nodes:    5,
			SpacingM: 70,
			Rate:     "11Mbps",
		},
		Traffic: []FlowSpec{
			{Src: 1, Dst: 0, Transport: "udp"},
			{Src: 2, Dst: 0, Transport: "udp"},
			{Src: 4, Dst: 0, Transport: "udp"},
		},
		Controller: &ControllerSpec{
			ProbePeriodMs: 100,
			ApplyRC:       false,
		},
		Measure: MeasureSpec{DurationSec: 0}, // plan-only
		Sweep: []Axis{
			{Name: "alpha", Values: []float64{0, 0.5, 1, 2, 4, 16}},
		},
	},
	{
		Name:        "starvation",
		Description: "Fig. 13 gateway scenario: 1-hop and 2-hop upstream TCP under noRC/max/prop regimes; prop-fair rate control revives the starved flow (examples/starvation as data)",
		Seed:        7,
		Topology: TopologySpec{
			Kind: "gateway",
			Rate: "1Mbps",
		},
		Traffic: []FlowSpec{
			{Src: 1, Dst: 0, Transport: "tcp"},
			{Src: 2, Dst: 0, Transport: "tcp"},
		},
		Controller: &ControllerSpec{
			Objective: "prop",
			ApplyRC:   true,
		},
		Measure: MeasureSpec{DurationSec: 30},
		Sweep: []Axis{
			{Name: "regime", Values: []float64{0, 1, 2}},
		},
	},
	{
		Name:        "fig10",
		Description: "Fig. 10 channel-loss estimator accuracy suite, delegated to the experiment registry (error CDF + RMSE vs probing window)",
		Seed:        1,
		Figure:      10,
	},
	{
		Name:        "fig14",
		Description: "Fig. 14 multi-config TCP suite, delegated to the experiment registry (throughput ratios, fairness, feasibility, stability)",
		Seed:        1,
		Figure:      14,
	},
}

// Lookup returns the built-in scenario registered under name.
func Lookup(name string) (*Spec, bool) {
	for _, s := range builtins {
		if s.Name == name {
			copy := *s
			return &copy, true
		}
	}
	return nil, false
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(builtins))
	for i, s := range builtins {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a registered scenario.
func Describe(name string) string {
	if s, ok := Lookup(name); ok {
		return s.Description
	}
	return ""
}

func init() {
	// A registry entry that fails its own schema is a programming error;
	// catch it at process start rather than on first use.
	for _, s := range builtins {
		if err := s.Validate(); err != nil {
			panic(fmt.Sprintf("scenario: invalid builtin: %v", err))
		}
	}
}
