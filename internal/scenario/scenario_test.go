package scenario

import (
	"bytes"
	"io"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiments/exp"
	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
)

// runSpec drives a spec through the experiment adapter and engine —
// the only run path since the legacy in-package stream loop was
// removed. The seed defaults to the spec's own, mirroring the CLI.
func runSpec(spec *Spec, snk sink.Sink, seed int64, logW io.Writer) error {
	e, err := Experiment(spec)
	if err != nil {
		return err
	}
	res, err := exp.Run(e, seed, exp.Quick(), exp.Options{Sink: snk})
	if err != nil {
		return err
	}
	if logW != nil {
		res.Print(logW)
	}
	return nil
}

// TestGoldenQuickstartRoundTrip pins the JSON schema: the built-in
// quickstart spec must marshal byte-for-byte to the checked-in golden
// file, and parsing the golden file must reproduce the spec. Any schema
// drift (renamed field, changed default, new required knob) fails here.
func TestGoldenQuickstartRoundTrip(t *testing.T) {
	want, err := os.ReadFile("testdata/quickstart.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart not registered")
	}
	got, err := Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("quickstart spec drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	parsed, err := Parse(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, spec) {
		t.Fatalf("parse(golden) != spec:\nparsed: %+v\nspec:   %+v", parsed, spec)
	}
}

// TestBuiltinsMarshalParseRoundTrip round-trips every registered
// scenario through Marshal/Parse.
func TestBuiltinsMarshalParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Lookup(name)
		b, err := Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		parsed, err := Parse(b)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if !reflect.DeepEqual(parsed, spec) {
			t.Fatalf("%s: round trip drifted:\nparsed: %+v\nspec:   %+v", name, parsed, spec)
		}
	}
}

// TestRunQuickstartEndToEnd executes the quickstart scenario and checks
// the streamed records carry a plan and positive achieved goodput.
func TestRunQuickstartEndToEnd(t *testing.T) {
	spec, _ := Lookup("quickstart")
	mem := sink.NewMemory()
	if err := runSpec(spec, mem, spec.Seed, nil); err != nil {
		t.Fatal(err)
	}
	series := map[string]int{}
	var goodput float64
	for _, rec := range mem.Records() {
		series[rec.Series]++
		if rec.Series == "flow" {
			for _, f := range rec.Fields {
				if f.Key == "goodput_bps" {
					goodput += f.Value.(float64)
				}
			}
		}
	}
	if series["plan"] != 2 || series["flow"] != 2 || series["link"] == 0 {
		t.Fatalf("unexpected series counts: %v", series)
	}
	if goodput <= 0 {
		t.Fatalf("no goodput achieved: %v", goodput)
	}
}

// TestRunUserAuthoredSpec is the end-to-end acceptance path: a spec
// authored as JSON (not from the registry) parses, builds its topology,
// runs traffic and streams results.
func TestRunUserAuthoredSpec(t *testing.T) {
	src := `{
  "name": "user-grid",
  "seed": 5,
  "topology": {"kind": "grid", "nodes": 4, "spacing_m": 80, "rate": "11Mbps"},
  "traffic": [
    {"src": 3, "dst": 0, "transport": "tcp"},
    {"src": 1, "dst": 2, "transport": "cbr", "rate_bps": 300000}
  ],
  "measure": {"duration_sec": 3}
}`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jl := sink.NewJSONL(&buf)
	if err := runSpec(spec, jl, spec.Seed, nil); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"series":"flow"`) || !strings.Contains(out, `"transport":"tcp"`) {
		t.Fatalf("missing flow records in stream:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, `{"scenario":"user-grid"`) {
			t.Fatalf("malformed record line: %s", line)
		}
	}
}

// TestRunSweepJSONLByteIdenticalAcrossWorkerCounts: a swept scenario's
// record stream must not depend on the worker pool size.
func TestRunSweepJSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	spec, _ := Lookup("fairness") // 6 plan-only cells over the alpha axis
	render := func(workers int) []byte {
		old := runner.SetWorkers(workers)
		defer runner.SetWorkers(old)
		var buf bytes.Buffer
		jl := sink.NewJSONL(&buf)
		if err := runSpec(spec, jl, spec.Seed, nil); err != nil {
			t.Fatal(err)
		}
		jl.Close()
		return buf.Bytes()
	}
	seq := render(1)
	par := render(max(2, runtime.GOMAXPROCS(0)))
	if len(seq) == 0 {
		t.Fatal("no records streamed")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("sweep stream differs across worker counts:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestRunFairnessSweep checks the alpha sweep produces the expected
// fairness trend: alpha=0 starves the long flow, large alpha feeds it.
func TestRunFairnessSweep(t *testing.T) {
	spec, _ := Lookup("fairness")
	mem := sink.NewMemory()
	if err := runSpec(spec, mem, spec.Seed, nil); err != nil {
		t.Fatal(err)
	}
	// plan records carry output_bps per flow; find flow 2 (the 4-hop
	// flow) at alpha=0 and alpha=16.
	rate := map[float64]float64{}
	for _, rec := range mem.Records() {
		if rec.Series != "plan" {
			continue
		}
		var alpha, out float64
		var flow int
		for _, f := range rec.Fields {
			switch f.Key {
			case "alpha":
				alpha = f.Value.(float64)
			case "flow":
				flow = f.Value.(int)
			case "output_bps":
				out = f.Value.(float64)
			}
		}
		if flow == 2 {
			rate[alpha] = out
		}
	}
	if len(rate) != 6 {
		t.Fatalf("expected 6 alpha points for flow 2, got %v", rate)
	}
	if !(rate[16] > rate[0]) {
		t.Fatalf("4-hop flow should gain with alpha: alpha=0 %.0f, alpha=16 %.0f", rate[0], rate[16])
	}
}

// TestRunFigureSpec drives the fig10 registry entry through the engine.
func TestRunFigureSpec(t *testing.T) {
	spec, _ := Lookup("fig10")
	mem := sink.NewMemory()
	var log bytes.Buffer
	if err := runSpec(spec, mem, 4, &log); err != nil {
		t.Fatal(err)
	}
	if len(mem.Records()) == 0 {
		t.Fatal("fig10 streamed no records")
	}
	if !strings.Contains(log.String(), "Figure 10") {
		t.Fatalf("fig10 summary missing: %s", log.String())
	}
}

// TestValidateRejects covers the schema guard rails.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown field", `{"name":"x","topology":{"kind":"chain","nodes":3,"spacing_m":70,"rate":"11Mbps"},"measure":{"duration_sec":1},"bogus":1}`, "bogus"},
		{"unknown kind", `{"name":"x","topology":{"kind":"torus","rate":"11Mbps"},"measure":{"duration_sec":1}}`, "topology kind"},
		{"bad rate", `{"name":"x","topology":{"kind":"chain","nodes":3,"spacing_m":70,"rate":"3Mbps"},"measure":{"duration_sec":1}}`, "rate"},
		{"flow out of range", `{"name":"x","topology":{"kind":"chain","nodes":3,"spacing_m":70,"rate":"11Mbps"},"traffic":[{"src":0,"dst":9,"transport":"tcp"}],"measure":{"duration_sec":1}}`, "out of range"},
		{"bad axis", `{"name":"x","topology":{"kind":"chain","nodes":3,"spacing_m":70,"rate":"11Mbps"},"traffic":[{"src":0,"dst":1,"transport":"tcp"}],"measure":{"duration_sec":1},"sweep":[{"name":"phase","values":[1]}]}`, "sweep axis"},
		{"unregistered figure", `{"name":"x","figure":99}`, "no registered experiment"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestNaNGoodputSerializes: cbr background flows report NaN goodput,
// which the JSONL sink must encode as null rather than erroring.
func TestNaNGoodputSerializes(t *testing.T) {
	var buf bytes.Buffer
	jl := sink.NewJSONL(&buf)
	if err := jl.Write(sink.Record{Scenario: "x", Series: "flow", Fields: []sink.Field{
		sink.F("goodput_bps", math.NaN()),
	}}); err != nil {
		t.Fatal(err)
	}
	jl.Close()
	if !strings.Contains(buf.String(), `"goodput_bps":null`) {
		t.Fatalf("NaN not encoded as null: %s", buf.String())
	}
}

// TestLookupAndNames covers the registry surface.
func TestLookupAndNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"quickstart", "capacity", "fairness", "starvation", "fig10", "fig14"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) failed", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}
