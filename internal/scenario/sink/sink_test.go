package sink

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
)

func rec(series string, cell int, fields ...Field) Record {
	return Record{Scenario: "test", Series: series, Cell: cell, Fields: fields}
}

func TestJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	if err := s.Write(rec("a", 0, F("x", 1.5), F("name", "hi"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rec("a", 1, F("x", math.NaN()))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"scenario":"test","series":"a","cell":0,"x":1.5,"name":"hi"}
{"scenario":"test","series":"a","cell":1,"x":null}
`
	if buf.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		s := NewJSONL(&buf)
		for i := 0; i < 10; i++ {
			s.Write(rec("s", i, F("v", float64(i)/3), F("flag", i%2 == 0)))
		}
		s.Close()
		return buf.String()
	}
	if render() != render() {
		t.Fatal("JSONL output is not deterministic")
	}
}

func TestCSVHeaderPerSeries(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	s.Write(rec("a", 0, F("x", 1.25)))
	s.Write(rec("a", 1, F("x", 2.5)))
	s.Write(rec("b", 0, F("y", "z")))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"scenario,series,cell,x",
		"test,a,0,1.25",
		"test,a,1,2.5",
		"scenario,series,cell,y",
		"test,b,0,z",
	}
	if len(lines) != len(want) {
		t.Fatalf("CSV lines: %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("CSV line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestCSVHeaderOnSchemaChange: records in one series with different
// field sets (e.g. a skipped fig14 config's short record) must get a
// fresh header so values never land under the wrong columns.
func TestCSVHeaderOnSchemaChange(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	s.Write(rec("config", 0, F("skipped", false), F("ratio", 1.25)))
	s.Write(rec("config", 1, F("skipped", true)))
	s.Write(rec("config", 2, F("skipped", false), F("ratio", 0.5)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"scenario,series,cell,skipped,ratio",
		"test,config,0,false,1.25",
		"scenario,series,cell,skipped",
		"test,config,1,true",
		"scenario,series,cell,skipped,ratio",
		"test,config,2,false,0.5",
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("CSV lines: %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("CSV line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestCSVQuoting: field values containing commas, quotes or newlines
// must be quoted/escaped per RFC 4180 so a row always parses back to the
// values that were written.
func TestCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	awkward := []string{
		`plain`,
		`comma, separated`,
		`has "quotes" inside`,
		`mixed, "both", of them`,
		"embedded\nnewline",
		`trailing space `,
	}
	for i, v := range awkward {
		if err := s.Write(rec("quoting", i, F("value", v), F("x", 1.5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Raw bytes: the comma-bearing value must have been quoted, and the
	// inner quotes doubled.
	out := buf.String()
	if !strings.Contains(out, `"comma, separated"`) {
		t.Fatalf("comma value not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has ""quotes"" inside"`) {
		t.Fatalf("quotes not escaped:\n%s", out)
	}
	// Round trip: a standard CSV reader recovers every value exactly.
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not re-parse: %v\n%s", err, out)
	}
	if len(rows) != 1+len(awkward) {
		t.Fatalf("got %d rows, want header + %d", len(rows), len(awkward))
	}
	for i, v := range awkward {
		if got := rows[1+i][3]; got != v {
			t.Errorf("row %d value = %q, want %q", i, got, v)
		}
	}
}

// TestJSONLStringEscaping covers the JSONL side of the same concern.
func TestJSONLStringEscaping(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	v := "line\nbreak, \"quoted\" and unicode ✓"
	if err := s.Write(rec("esc", 0, F("value", v))); err != nil {
		t.Fatal(err)
	}
	s.Close()
	recs, err := DecodeJSONLStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Text("value") != v {
		t.Fatalf("escaped string did not round trip: %+v", recs)
	}
}

// TestDecodeJSONLRoundTrip pins the wire-format inverse the shard/merge
// machinery relies on: a record written as JSONL decodes back with the
// header, field order, and values intact (numerics as float64).
func TestDecodeJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	orig := Record{Scenario: "rt", Series: "cell", Cell: 5, Fields: []Field{
		F("f", 0.1),
		F("neg", -3.25e-9),
		F("i", 42),
		F("b", true),
		F("s", "hi, \"there\""),
		F("arr", []float64{1, 0.5, -2}),
		F("empty", []float64{}),
		F("nan", math.NaN()),
		// Payload may legally reuse header names.
		F("cell", 99),
	}}
	if err := s.Write(orig); err != nil {
		t.Fatal(err)
	}
	s.Close()
	line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	got, err := DecodeJSONL(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != "rt" || got.Series != "cell" || got.Cell != 5 {
		t.Fatalf("header drifted: %+v", got)
	}
	wantKeys := []string{"f", "neg", "i", "b", "s", "arr", "empty", "nan", "cell"}
	if len(got.Fields) != len(wantKeys) {
		t.Fatalf("got %d fields, want %d: %+v", len(got.Fields), len(wantKeys), got.Fields)
	}
	for i, k := range wantKeys {
		if got.Fields[i].Key != k {
			t.Fatalf("field %d key %q, want %q (order must be preserved)", i, got.Fields[i].Key, k)
		}
	}
	// Accessor-level equivalence between the in-process and decoded
	// views — the property reductions depend on.
	for _, key := range []string{"f", "neg", "i", "cell"} {
		if a, b := orig.Float(key), got.Float(key); a != b {
			t.Errorf("Float(%q): %v != %v", key, a, b)
		}
	}
	if !got.Bool("b") || got.Text("s") != `hi, "there"` {
		t.Errorf("bool/string drifted: %+v", got)
	}
	if !reflect.DeepEqual(got.Floats("arr"), []float64{1, 0.5, -2}) {
		t.Errorf("Floats(arr) = %v", got.Floats("arr"))
	}
	if f := got.Floats("empty"); f == nil || len(f) != 0 {
		t.Errorf("Floats(empty) = %#v, want empty non-nil", f)
	}
	if !math.IsNaN(got.Float("nan")) {
		t.Errorf("NaN did not round trip via null: %v", got.Float("nan"))
	}
	// Re-encoding the decoded record must reproduce the original line —
	// merge relies on verbatim lines, but this pins that a re-serialize
	// path would agree too.
	var buf2 bytes.Buffer
	s2 := NewJSONL(&buf2)
	if err := s2.Write(got); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if got, want := buf2.String(), buf.String(); got != want {
		t.Fatalf("re-encoded line differs:\ngot:  %swant: %s", got, want)
	}
}

func TestDecodeJSONLRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`[1,2]`,
		`{"series":"x","scenario":"y","cell":0}`, // header order is the wire format
		`{"scenario":"x","series":"y","cell":"z"}`,
		`not json`,
	} {
		if _, err := DecodeJSONL([]byte(bad)); err == nil {
			t.Errorf("DecodeJSONL(%q) accepted", bad)
		}
	}
}

func TestMemoryCollects(t *testing.T) {
	m := NewMemory()
	m.Write(rec("a", 0, F("x", 1)))
	m.Write(rec("a", 1, F("x", 2)))
	if got := m.Records(); len(got) != 2 || got[1].Cell != 1 {
		t.Fatalf("memory records: %+v", got)
	}
	if err := Discard.Write(rec("a", 0)); err != nil {
		t.Fatal(err)
	}
}
