package sink

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func rec(series string, cell int, fields ...Field) Record {
	return Record{Scenario: "test", Series: series, Cell: cell, Fields: fields}
}

func TestJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	if err := s.Write(rec("a", 0, F("x", 1.5), F("name", "hi"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rec("a", 1, F("x", math.NaN()))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"scenario":"test","series":"a","cell":0,"x":1.5,"name":"hi"}
{"scenario":"test","series":"a","cell":1,"x":null}
`
	if buf.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		s := NewJSONL(&buf)
		for i := 0; i < 10; i++ {
			s.Write(rec("s", i, F("v", float64(i)/3), F("flag", i%2 == 0)))
		}
		s.Close()
		return buf.String()
	}
	if render() != render() {
		t.Fatal("JSONL output is not deterministic")
	}
}

func TestCSVHeaderPerSeries(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	s.Write(rec("a", 0, F("x", 1.25)))
	s.Write(rec("a", 1, F("x", 2.5)))
	s.Write(rec("b", 0, F("y", "z")))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"scenario,series,cell,x",
		"test,a,0,1.25",
		"test,a,1,2.5",
		"scenario,series,cell,y",
		"test,b,0,z",
	}
	if len(lines) != len(want) {
		t.Fatalf("CSV lines: %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("CSV line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestCSVHeaderOnSchemaChange: records in one series with different
// field sets (e.g. a skipped fig14 config's short record) must get a
// fresh header so values never land under the wrong columns.
func TestCSVHeaderOnSchemaChange(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	s.Write(rec("config", 0, F("skipped", false), F("ratio", 1.25)))
	s.Write(rec("config", 1, F("skipped", true)))
	s.Write(rec("config", 2, F("skipped", false), F("ratio", 0.5)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"scenario,series,cell,skipped,ratio",
		"test,config,0,false,1.25",
		"scenario,series,cell,skipped",
		"test,config,1,true",
		"scenario,series,cell,skipped,ratio",
		"test,config,2,false,0.5",
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("CSV lines: %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("CSV line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestMemoryCollects(t *testing.T) {
	m := NewMemory()
	m.Write(rec("a", 0, F("x", 1)))
	m.Write(rec("a", 1, F("x", 2)))
	if got := m.Records(); len(got) != 2 || got[1].Cell != 1 {
		t.Fatalf("memory records: %+v", got)
	}
	if err := Discard.Write(rec("a", 0)); err != nil {
		t.Fatal(err)
	}
}
