package sink

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// DecodeJSONL parses one line produced by a JSONL sink back into a
// Record, preserving field order. It is the wire-format inverse the
// shard/merge machinery relies on: numbers decode as float64 (JSON's
// shortest representation round-trips float64 exactly), null as nil,
// booleans and strings as themselves, and arrays as []any. Nested
// objects decode as []Field in key order.
func DecodeJSONL(line []byte) (Record, error) {
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return rec, fmt.Errorf("sink: decode: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return rec, fmt.Errorf("sink: decode: record line must be a JSON object")
	}
	// The writer emits scenario, series, cell as the first three keys;
	// everything after is payload (which may itself reuse those names).
	pos := 0
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return rec, fmt.Errorf("sink: decode: %w", err)
		}
		key := keyTok.(string)
		val, err := decodeValue(dec)
		if err != nil {
			return rec, err
		}
		switch pos {
		case 0, 1:
			want := [...]string{"scenario", "series"}[pos]
			s, isStr := val.(string)
			if key != want || !isStr {
				return rec, fmt.Errorf("sink: decode: key %d is %q, want %q", pos, key, want)
			}
			if pos == 0 {
				rec.Scenario = s
			} else {
				rec.Series = s
			}
		case 2:
			f, isNum := val.(float64)
			if key != "cell" || !isNum {
				return rec, fmt.Errorf("sink: decode: key 2 is %q, want \"cell\"", key)
			}
			rec.Cell = int(f)
		default:
			rec.Fields = append(rec.Fields, Field{Key: key, Value: val})
		}
		pos++
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return rec, fmt.Errorf("sink: decode: %w", err)
	}
	return rec, nil
}

// decodeValue reads one JSON value from dec.
func decodeValue(dec *json.Decoder) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("sink: decode: %w", err)
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '[':
			arr := []any{}
			for dec.More() {
				v, err := decodeValue(dec)
				if err != nil {
					return nil, err
				}
				arr = append(arr, v)
			}
			if _, err := dec.Token(); err != nil { // ']'
				return nil, fmt.Errorf("sink: decode: %w", err)
			}
			return arr, nil
		case '{':
			var fields []Field
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("sink: decode: %w", err)
				}
				v, err := decodeValue(dec)
				if err != nil {
					return nil, err
				}
				fields = append(fields, Field{Key: keyTok.(string), Value: v})
			}
			if _, err := dec.Token(); err != nil { // '}'
				return nil, fmt.Errorf("sink: decode: %w", err)
			}
			return fields, nil
		}
		return nil, fmt.Errorf("sink: decode: unexpected delimiter %v", t)
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return nil, fmt.Errorf("sink: decode: number %q: %w", t, err)
		}
		return f, nil
	default:
		// string, bool, or nil (JSON null).
		return t, nil
	}
}

// NewLineScanner returns a line scanner sized for record lines (large
// array payloads can exceed bufio's default token limit).
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	return sc
}

// DecodeJSONLStream decodes every record line from r, in order.
func DecodeJSONLStream(r io.Reader) ([]Record, error) {
	sc := NewLineScanner(r)
	var out []Record
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := DecodeJSONL(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// --- Field access ------------------------------------------------------
//
// Reductions read records through these accessors so one implementation
// serves both record provenances: in-process values (typed ints, bools,
// float slices) and values re-decoded from a shard's JSONL stream
// (everything numeric is float64). The coercions below are exactly the
// ones that make those two views identical.

// Field returns the first field stored under key.
func (r Record) Field(key string) (any, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// Float returns the field as a float64: NaN when the field is absent,
// null, or not numeric (NaN itself encodes as null, so the two are one
// value on the wire).
func (r Record) Float(key string) float64 {
	v, ok := r.Field(key)
	if !ok {
		return math.NaN()
	}
	f, ok := toFloat(v)
	if !ok {
		return math.NaN()
	}
	return f
}

// Int returns the field truncated to int (0 when absent or non-numeric).
func (r Record) Int(key string) int {
	f := r.Float(key)
	if math.IsNaN(f) {
		return 0
	}
	return int(f)
}

// Bool returns the field as a bool (false when absent or not a bool).
func (r Record) Bool(key string) bool {
	v, _ := r.Field(key)
	b, _ := v.(bool)
	return b
}

// Text returns the field as a string ("" when absent or not a string).
func (r Record) Text(key string) string {
	v, _ := r.Field(key)
	s, _ := v.(string)
	return s
}

// Floats returns the field as a float slice: []float64 values are
// returned directly, decoded []any arrays are coerced element-wise, and
// anything else (including null) is nil.
func (r Record) Floats(key string) []float64 {
	v, ok := r.Field(key)
	if !ok {
		return nil
	}
	switch x := v.(type) {
	case []float64:
		return x
	case []any:
		out := make([]float64, len(x))
		for i, e := range x {
			f, ok := toFloat(e)
			if !ok {
				f = math.NaN()
			}
			out[i] = f
		}
		return out
	}
	return nil
}

// toFloat coerces the numeric types records carry in-process.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case nil:
		// JSON null: the encoding of NaN/Inf.
		return math.NaN(), true
	}
	return 0, false
}
