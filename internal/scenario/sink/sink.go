// Package sink provides streaming per-cell result sinks for experiment
// and scenario runs. A runner streams one Record per completed cell (in
// deterministic cell order — see runner.Stream) into a Sink instead of
// gathering every result in memory and reducing afterwards, which bounds
// a run's memory by the record size rather than the sweep size.
//
// Sinks are fed serially from a single goroutine; implementations do not
// need to be safe for concurrent Write calls. Field order in a Record is
// preserved by every writer, so two runs that stream the same records
// produce byte-identical output.
package sink

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Field is one ordered key/value pair in a record.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Record is one streamed result row: a cell's outcome within a named
// series of a scenario or figure run.
type Record struct {
	Scenario string  // scenario or figure name
	Series   string  // logical series within the run (e.g. "sample", "config")
	Cell     int     // cell index within the series
	Fields   []Field // ordered payload
}

// Sink consumes streamed records. Write is called serially, in
// deterministic record order; Close flushes any buffering.
type Sink interface {
	Write(rec Record) error
	Close() error
}

// --- JSONL ------------------------------------------------------------

// JSONL writes one JSON object per record per line. Field order follows
// the record, so output is byte-identical across runs that stream the
// same records.
type JSONL struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONL wraps w in a line-buffered JSONL sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Write emits rec as one JSON line.
func (j *JSONL) Write(rec Record) error {
	b := j.buf[:0]
	b = append(b, `{"scenario":`...)
	b = appendJSONValue(b, rec.Scenario)
	b = append(b, `,"series":`...)
	b = appendJSONValue(b, rec.Series)
	b = append(b, `,"cell":`...)
	b = strconv.AppendInt(b, int64(rec.Cell), 10)
	for _, f := range rec.Fields {
		b = append(b, ',')
		b = appendJSONValue(b, f.Key)
		b = append(b, ':')
		b = appendJSONValue(b, f.Value)
	}
	b = append(b, '}', '\n')
	j.buf = b
	_, err := j.w.Write(b)
	return err
}

// Close flushes the buffered output.
func (j *JSONL) Close() error { return j.w.Flush() }

// Flush forces buffered lines to the underlying writer without closing
// the sink. Live consumers (a serving layer tailing the stream, a
// checkpoint that must survive a crash) flush per record so the bytes
// on disk always end at a record boundary.
func (j *JSONL) Flush() error { return j.w.Flush() }

// appendJSONValue marshals v onto b. Non-finite floats, which
// encoding/json rejects, are written as null so a degenerate cell cannot
// abort a whole stream.
func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return append(b, "null"...)
		}
	case float32:
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return append(b, "null"...)
		}
	}
	enc, err := json.Marshal(v)
	if err != nil {
		return append(b, "null"...)
	}
	return append(b, enc...)
}

// --- CSV --------------------------------------------------------------

// CSV writes records as comma-separated rows. A header row (scenario,
// series, cell, then the field keys) is emitted whenever the series or
// the field schema changes, so rows always align with the header above
// them even when records in one series carry different field sets (e.g.
// a skipped config's short record).
type CSV struct {
	w        *csv.Writer
	lastKeys []string // series + field keys of the current header
	started  bool
}

// NewCSV wraps w in a CSV sink.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: csv.NewWriter(w)}
}

// headerMatches reports whether rec's schema matches the current header.
func (c *CSV) headerMatches(rec Record) bool {
	if !c.started || len(c.lastKeys) != 1+len(rec.Fields) || c.lastKeys[0] != rec.Series {
		return false
	}
	for i, f := range rec.Fields {
		if c.lastKeys[1+i] != f.Key {
			return false
		}
	}
	return true
}

// Write emits rec as one CSV row, preceded by a header row when the
// series or field schema changes.
func (c *CSV) Write(rec Record) error {
	if !c.headerMatches(rec) {
		header := make([]string, 0, 3+len(rec.Fields))
		header = append(header, "scenario", "series", "cell")
		c.lastKeys = append(c.lastKeys[:0], rec.Series)
		for _, f := range rec.Fields {
			header = append(header, f.Key)
			c.lastKeys = append(c.lastKeys, f.Key)
		}
		if err := c.w.Write(header); err != nil {
			return err
		}
		c.started = true
	}
	row := make([]string, 0, 3+len(rec.Fields))
	row = append(row, rec.Scenario, rec.Series, strconv.Itoa(rec.Cell))
	for _, f := range rec.Fields {
		row = append(row, formatValue(f.Value))
	}
	if err := c.w.Write(row); err != nil {
		return err
	}
	return nil
}

// Close flushes the buffered output.
func (c *CSV) Close() error {
	c.w.Flush()
	return c.w.Error()
}

// formatValue renders a field value for CSV deterministically.
func formatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// --- Memory -----------------------------------------------------------

// Memory collects records in order; the sink tests and assertions use it.
type Memory struct {
	records []Record
}

// NewMemory returns an empty in-memory sink.
func NewMemory() *Memory { return &Memory{} }

// Write appends rec.
func (m *Memory) Write(rec Record) error {
	m.records = append(m.records, rec)
	return nil
}

// Close is a no-op.
func (m *Memory) Close() error { return nil }

// Records returns the collected records in write order.
func (m *Memory) Records() []Record { return m.records }

// --- Discard ----------------------------------------------------------

// Discard drops every record; runs that only want the reduced result use
// it.
var Discard Sink = discard{}

type discard struct{}

func (discard) Write(Record) error { return nil }
func (discard) Close() error       { return nil }
