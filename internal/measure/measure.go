// Package measure runs controlled measurement phases on a simulated mesh:
// solo backlogged activation (maxUDP throughput, the paper's primary
// extreme points), simultaneous activations (secondary/LIR points), and
// controlled input-rate injection (feasibility sampling). These are the
// "offline" measurements of §4, used to validate the model; the online
// substitutes live in internal/probe and internal/core/capacity.
package measure

import (
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// LinkResult is the outcome of activating one link or path.
type LinkResult struct {
	Link          topology.Link
	ThroughputBps float64 // goodput at the receiver
	LossRate      float64 // network-layer packet loss (post-MAC-retry)
	SentPackets   int64
	RecvPackets   int64
}

// settle lets MAC queues drain between phases.
const settle = 100 * sim.Millisecond

// saveHooks snapshots the delivery hooks that measurement phases overwrite.
func saveHooks(nodes []*node.Node) []func(p *node.Packet) {
	out := make([]func(p *node.Packet), len(nodes))
	for i, n := range nodes {
		out[i] = n.Deliver
	}
	return out
}

func restoreHooks(nodes []*node.Node, hooks []func(p *node.Packet)) {
	for i, n := range nodes {
		n.Deliver = hooks[i]
		n.OnSent = nil
	}
}

// MaxUDP measures the saturation UDP throughput and loss rate of a single
// link transmitting alone in backlogged mode for dur — the definition of a
// primary extreme point c_ll (§3.2).
func MaxUDP(nw *topology.Network, l topology.Link, payload int, dur sim.Time) LinkResult {
	res := Simultaneous(nw, []topology.Link{l}, payload, dur)
	return res[0]
}

// Simultaneous activates all listed links backlogged at once for dur and
// returns per-link results. Combinations of links produce the measured
// secondary extreme points used by the offline three-point model.
func Simultaneous(nw *topology.Network, links []topology.Link, payload int, dur sim.Time) []LinkResult {
	hooks := saveHooks(nw.Nodes)
	defer restoreHooks(nw.Nodes, hooks)

	sinks := make([]*traffic.Sink, len(links))
	sources := make([]*traffic.Backlogged, len(links))
	startDrops := make([]int64, len(links))
	startSucc := make([]int64, len(links))
	for i, l := range links {
		nw.InstallDirectRoute(l)
		nw.Nodes[l.Src].OnSent = nil
		sinks[i] = traffic.NewSink(nw.Sim, nw.Nodes[l.Dst])
		sources[i] = traffic.NewBacklogged(nw.Sim, nw.Nodes[l.Src], i, l.Dst, payload)
		st := nw.Nodes[l.Src].MAC().Stats
		startDrops[i], startSucc[i] = st.Drops, st.Successes
	}
	for _, s := range sources {
		s.Start()
	}
	end := nw.Sim.Now() + dur
	nw.Sim.Run(end)
	for _, s := range sources {
		s.Stop()
	}
	out := make([]LinkResult, len(links))
	for i, l := range links {
		st := nw.Nodes[l.Src].MAC().Stats
		drops := st.Drops - startDrops[i]
		succ := st.Successes - startSucc[i]
		var loss float64
		if drops+succ > 0 {
			loss = float64(drops) / float64(drops+succ)
		}
		out[i] = LinkResult{
			Link:          l,
			ThroughputBps: float64(sinks[i].Bytes(i)) * 8 / dur.Seconds(),
			LossRate:      loss,
			SentPackets:   sources[i].SentPackets(),
			RecvPackets:   sinks[i].Packets(i),
		}
	}
	nw.Sim.Run(nw.Sim.Now() + settle)
	return out
}

// LIRResult holds the four throughputs defining a pair's Link Interference
// Ratio (Eq. 5).
type LIRResult struct {
	C11, C22 float64 // solo throughputs (primary extreme points)
	C31, C32 float64 // simultaneous throughputs (the LIR point)
}

// LIR returns (c31+c32)/(c11+c22); 1 means no interference.
func (r LIRResult) LIR() float64 {
	if r.C11+r.C22 == 0 {
		return 0
	}
	return (r.C31 + r.C32) / (r.C11 + r.C22)
}

// MeasureLIR runs the three activation phases (solo, solo, simultaneous)
// of the paper's LIR measurement on a link pair.
func MeasureLIR(nw *topology.Network, l1, l2 topology.Link, payload int, dur sim.Time) LIRResult {
	a := MaxUDP(nw, l1, payload, dur)
	b := MaxUDP(nw, l2, payload, dur)
	both := Simultaneous(nw, []topology.Link{l1, l2}, payload, dur)
	return LIRResult{
		C11: a.ThroughputBps,
		C22: b.ThroughputBps,
		C31: both[0].ThroughputBps,
		C32: both[1].ThroughputBps,
	}
}

// InjectionResult reports one controlled-rate injection.
type InjectionResult struct {
	InputBps  float64
	OutputBps float64
	LossRate  float64 // network-layer loss during the injection
}

// InjectRates drives each flow (src->dst over installed routes) at the
// given input rates for dur and reports achieved outputs. This is the
// mechanism used to sample the feasibility region (§4.3.1) and to apply
// optimized rates (§6).
func InjectRates(nw *topology.Network, flows []Flow, rates []float64, payload int, dur sim.Time) []InjectionResult {
	if len(flows) != len(rates) {
		panic("measure: flows/rates length mismatch")
	}
	hooks := saveHooks(nw.Nodes)
	defer restoreHooks(nw.Nodes, hooks)

	sinks := make([]*traffic.Sink, len(flows))
	sources := make([]*traffic.CBR, len(flows))
	for i, f := range flows {
		sinks[i] = traffic.NewSink(nw.Sim, nw.Nodes[f.Dst])
		sources[i] = traffic.NewCBR(nw.Sim, nw.Nodes[f.Src], i, f.Dst, payload, rates[i])
		sources[i].Start()
	}
	nw.Sim.Run(nw.Sim.Now() + dur)
	out := make([]InjectionResult, len(flows))
	for i := range flows {
		sources[i].Stop()
		sent := sources[i].SentPackets()
		recv := sinks[i].Packets(i)
		var loss float64
		if sent > 0 {
			loss = 1 - float64(recv)/float64(sent)
			if loss < 0 {
				loss = 0
			}
		}
		out[i] = InjectionResult{
			InputBps:  rates[i],
			OutputBps: sinks[i].ThroughputBps(i),
			LossRate:  loss,
		}
	}
	nw.Sim.Run(nw.Sim.Now() + settle)
	return out
}

// Flow is an end-to-end source/destination pair using installed routes.
type Flow struct {
	Src, Dst int
}
