package measure

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

const testDur = 4 * sim.Second

func TestMaxUDPCleanLink(t *testing.T) {
	nw := topology.TwoLink(1, topology.CS, phy.Rate11, phy.Rate11)
	r := MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, testDur)
	if r.ThroughputBps < 5.6e6 || r.ThroughputBps > 6.4e6 {
		t.Fatalf("maxUDP = %.2f Mb/s, want ~6.0", r.ThroughputBps/1e6)
	}
	if r.LossRate > 0.01 {
		t.Fatalf("loss = %v on clean link", r.LossRate)
	}
}

func TestMaxUDPLossyLink(t *testing.T) {
	nw := topology.TwoLink(1, topology.CS, phy.Rate11, phy.Rate11)
	nw.Medium.SetBER(0, 1, 8e-5) // ~62% frame loss at 1498 bytes
	r := MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, testDur)
	clean := 6.0e6
	if r.ThroughputBps > 0.75*clean {
		t.Fatalf("lossy link throughput %.2f Mb/s did not degrade", r.ThroughputBps/1e6)
	}
	if r.LossRate == 0 {
		t.Fatal("expected residual network-layer loss on a very lossy link")
	}
}

// CS pairs must time-share: normalized throughputs sum to ~1.
func TestCSPairTimeShares(t *testing.T) {
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		nw := topology.TwoLink(2, topology.CS, rate, rate)
		res := MeasureLIR(nw.Network, nw.Link1, nw.Link2, traffic.DefaultPayload, testDur)
		sum := res.C31/res.C11 + res.C32/res.C22
		if sum < 0.85 || sum > 1.15 {
			t.Errorf("%v CS normalized sum = %.2f, want ~1", rate, sum)
		}
		lir := res.LIR()
		if lir < 0.4 || lir > 0.75 {
			t.Errorf("%v CS LIR = %.2f, want mid-range (interfering)", rate, lir)
		}
	}
}

// IA at 1 Mb/s: capture lets the exposed link survive, so the pair rises
// well above time sharing (the Fig. 5 phenomenon).
func TestIACaptureAt1Mbps(t *testing.T) {
	nw := topology.TwoLink(3, topology.IA, phy.Rate1, phy.Rate1)
	res := MeasureLIR(nw.Network, nw.Link1, nw.Link2, traffic.DefaultPayload, testDur)
	sum := res.C31/res.C11 + res.C32/res.C22
	if sum < 1.3 {
		t.Fatalf("IA@1Mbps normalized sum = %.2f, want >1.3 (capture)", sum)
	}
}

// IA at 11 Mb/s: the exposed link cannot capture (needs 12 dB SINR) and
// degrades when the hidden transmitter is active.
func TestIAExposedLinkSuffersAt11Mbps(t *testing.T) {
	nw := topology.TwoLink(3, topology.IA, phy.Rate11, phy.Rate11)
	res := MeasureLIR(nw.Network, nw.Link1, nw.Link2, traffic.DefaultPayload, testDur)
	if res.C31 > 0.5*res.C11 {
		t.Fatalf("exposed link kept %.0f%% of solo throughput, want <50%%",
			100*res.C31/res.C11)
	}
	if res.C32 < 0.8*res.C22 {
		t.Fatalf("clear link dropped to %.0f%% of solo", 100*res.C32/res.C22)
	}
}

// NF at 11 Mb/s: the near link captures, the far link starves.
func TestNFAsymmetryAt11Mbps(t *testing.T) {
	nw := topology.TwoLink(4, topology.NF, phy.Rate11, phy.Rate11)
	res := MeasureLIR(nw.Network, nw.Link1, nw.Link2, traffic.DefaultPayload, testDur)
	near := res.C31 / res.C11
	far := res.C32 / res.C22
	if near < 0.7 {
		t.Fatalf("near link kept only %.0f%% of solo", 100*near)
	}
	if far > 0.6*near {
		t.Fatalf("far/near = %.2f/%.2f: expected starvation asymmetry", far, near)
	}
}

func TestInjectRatesFeasiblePoint(t *testing.T) {
	nw := topology.TwoLink(5, topology.CS, phy.Rate11, phy.Rate11)
	flows := []Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	// Well inside the time-sharing region: 2 + 2 of ~6 Mb/s each.
	res := InjectRates(nw.Network, flows, []float64{2e6, 2e6}, traffic.DefaultPayload, testDur)
	for i, r := range res {
		if r.OutputBps < 0.95*r.InputBps {
			t.Fatalf("flow %d: output %.2f Mb/s for input %.2f", i, r.OutputBps/1e6, r.InputBps/1e6)
		}
	}
}

func TestInjectRatesInfeasiblePoint(t *testing.T) {
	nw := topology.TwoLink(5, topology.CS, phy.Rate11, phy.Rate11)
	flows := []Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	// Far outside: 5 + 5 over a ~6 Mb/s shared channel.
	res := InjectRates(nw.Network, flows, []float64{5e6, 5e6}, traffic.DefaultPayload, testDur)
	total := res[0].OutputBps + res[1].OutputBps
	if total > 6.8e6 {
		t.Fatalf("total output %.2f Mb/s exceeds channel capacity", total/1e6)
	}
	if res[0].OutputBps > 0.95*5e6 && res[1].OutputBps > 0.95*5e6 {
		t.Fatal("infeasible input rates were both achieved")
	}
}

func TestSequentialPhasesIndependent(t *testing.T) {
	nw := topology.TwoLink(6, topology.CS, phy.Rate11, phy.Rate11)
	a := MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, testDur)
	b := MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, testDur)
	diff := (a.ThroughputBps - b.ThroughputBps) / a.ThroughputBps
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("repeat maxUDP differs by %.1f%%", 100*diff)
	}
}

func TestMultiHopChainThroughput(t *testing.T) {
	nw := topology.Chain(7, 3, 70, phy.Rate11)
	hooks := 0
	_ = hooks
	sink := traffic.NewSink(nw.Sim, nw.Nodes[2])
	src := traffic.NewBacklogged(nw.Sim, nw.Nodes[0], 0, 2, traffic.DefaultPayload)
	src.Start()
	nw.Sim.Run(nw.Sim.Now() + 4*sim.Second)
	src.Stop()
	bps := sink.ThroughputBps(0)
	// Two hops share one collision domain: roughly half the one-hop rate.
	if bps < 2.0e6 || bps > 3.6e6 {
		t.Fatalf("2-hop chain throughput = %.2f Mb/s, want ~3", bps/1e6)
	}
}

func TestMesh18HasRichLinkSet(t *testing.T) {
	nw := topology.Mesh18(1)
	links := nw.Links(phy.Rate11)
	if len(links) < 40 {
		t.Fatalf("mesh has only %d 11Mbps links", len(links))
	}
	l1 := nw.Links(phy.Rate1)
	if len(l1) <= len(links) {
		t.Fatal("1 Mb/s should reach at least as many links as 11 Mb/s")
	}
}
