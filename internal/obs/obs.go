// Package obs is the fleet observability layer: a dependency-free
// metrics registry (counters, gauges, histograms) plus structured event
// logging on log/slog, exposed as Prometheus text, a JSON snapshot, and
// pprof handlers.
//
// The one hard invariant every consumer relies on: observability is
// strictly out-of-band. Metrics and log events ride side channels (an
// in-memory registry scraped over HTTP, a logger writing to stderr) and
// never touch a record stream, so the byte-identity contract — the
// record bytes of a run are a pure function of (experiment, seed,
// scale), for any worker count, shard split or resume point — holds
// bit-for-bit whether observability is enabled, disabled, or scraped
// mid-run. Tests race exactly that.
//
// Determinism of the registry itself: a Snapshot orders metric families
// by name and series by label values, and a histogram's bucket counts
// are a pure function of the multiset of observed values (bucket bounds
// are fixed at registration; assignment is value <= bound). Only a
// histogram's Sum is subject to float addition order across concurrent
// observers — bucket counts and Count never are.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. The zero value is not usable;
// create with NewRegistry. Default is the process-wide registry every
// instrumented package registers into.
type Registry struct {
	enabled atomic.Bool // collection switch; exposure is the caller's concern

	mu    sync.Mutex
	fams  map[string]*family
	hooks []func() // run before every Snapshot (scrape-time refreshers)

	procOnce sync.Once // RegisterProcessMetrics guard
}

// Default is the process-wide registry. Instrumented packages register
// their metrics here at init; the serve layer and the -metrics-addr
// sidecars expose it.
var Default = NewRegistry()

// NewRegistry creates an empty registry with collection enabled.
func NewRegistry() *Registry {
	r := &Registry{fams: map[string]*family{}}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips metric collection. Disabled, every Add/Set/Observe
// is a single atomic load and a branch — the transparency benchmarkable
// "off" state. Exposure handlers still serve whatever was collected.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether collection is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// family is one named metric family: a type, a help string, a label
// schema, and the series instantiated under it.
type family struct {
	reg     *Registry
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, no +Inf

	mu     sync.Mutex
	series map[string]any // label-value key -> *Counter/*Gauge/*Histogram
	order  []string       // insertion-ordered keys (sorted at snapshot)
}

// getFamily registers (or finds) a family, panicking on a schema
// conflict: two packages disagreeing on what a metric name means is a
// programming error worth failing loudly over.
func (r *Registry) getFamily(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		reg: r, name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		series: map[string]any{},
	}
	if typ == "histogram" {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.fams[name] = f
	return f
}

// labelKey joins label values into the series map key. \xff cannot
// appear in a sane label value; collisions would only merge series.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// --- counter ----------------------------------------------------------

// Counter is a monotonically increasing float64 (Prometheus counter
// semantics). Safe for concurrent use.
type Counter struct {
	reg  *Registry
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 || !c.reg.enabled.Load() {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a counter family with the given label
// schema; With instantiates one series.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.getFamily(name, help, "counter", labels, nil)}
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use. Hold the returned handle on hot paths — With costs a map
// lookup under the family lock.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{reg: v.f.reg} }).(*Counter)
}

// --- gauge ------------------------------------------------------------

// Gauge is a float64 that can go up and down. Safe for concurrent use.
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if !g.reg.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	if !g.reg.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a gauge family with the given label
// schema.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.getFamily(name, help, "gauge", labels, nil)}
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{reg: v.f.reg} }).(*Gauge)
}

// --- histogram --------------------------------------------------------

// Histogram counts observations into fixed buckets (value <= bound).
// Bucket counts and Count are a deterministic function of the observed
// multiset; Sum is subject to float addition order under concurrency.
// Safe for concurrent use.
type Histogram struct {
	reg     *Registry
	bounds  []float64 // sorted upper bounds; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !h.reg.enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram registers (or finds) an unlabelled histogram over the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a histogram family with the given
// label schema.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.getFamily(name, help, "histogram", labels, buckets)}
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any {
		return &Histogram{
			reg:    v.f.reg,
			bounds: v.f.buckets,
			counts: make([]atomic.Uint64, len(v.f.buckets)+1),
		}
	}).(*Histogram)
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start with the given factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// TimeBuckets is the default wall-time bucket layout (seconds): 100µs to
// ~100s, quarter-decade steps.
func TimeBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100}
}

// --- snapshot ---------------------------------------------------------

// Snapshot is a point-in-time view of a registry, deterministically
// ordered: families sorted by name, series by label values. It is the
// payload of both the Prometheus text endpoint and the JSON stats
// endpoint.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family in a Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one series of a family: Value for counters and
// gauges; Count/Sum/Buckets for histograms.
type SeriesSnapshot struct {
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Label is one name=value label pair, in schema order.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of observations
// <= LE. The +Inf bucket is implicit (it equals Count).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot captures the registry. Concurrent with observers it is a
// consistent-enough view (each series read atomically, monotonic
// counters may be mid-update across series); quiescent it is exact and
// deterministic.
// AddSnapshotHook registers fn to run at the start of every Snapshot
// (and therefore every Prometheus scrape), before the registry lock is
// taken — the place to refresh gauges whose value is a function of
// scrape time, like process uptime.
func (r *Registry) AddSnapshotHook(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		snap.Families = append(snap.Families, f.snapshot())
	}
	return snap
}

func (f *family) snapshot() FamilySnapshot {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	sort.Sort(&keyedSeries{keys: keys, series: series})

	fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
	for i, k := range keys {
		var labels []Label
		if len(f.labels) > 0 {
			values := strings.Split(k, "\xff")
			labels = make([]Label, len(f.labels))
			for j, name := range f.labels {
				labels[j] = Label{Name: name, Value: values[j]}
			}
		}
		ss := SeriesSnapshot{Labels: labels}
		switch m := series[i].(type) {
		case *Counter:
			ss.Value = m.Value()
		case *Gauge:
			ss.Value = m.Value()
		case *Histogram:
			ss.Count = m.count.Load()
			ss.Sum = math.Float64frombits(m.sumBits.Load())
			var cum uint64
			ss.Buckets = make([]Bucket, len(m.bounds))
			for j, le := range m.bounds {
				cum += m.counts[j].Load()
				ss.Buckets[j] = Bucket{LE: le, Count: cum}
			}
		}
		fs.Series = append(fs.Series, ss)
	}
	return fs
}

// keyedSeries sorts series parallel to their label keys.
type keyedSeries struct {
	keys   []string
	series []any
}

func (s *keyedSeries) Len() int           { return len(s.keys) }
func (s *keyedSeries) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedSeries) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.series[i], s.series[j] = s.series[j], s.series[i]
}

// --- Prometheus text exposition ---------------------------------------

// WritePrometheus renders the registry in the Prometheus text format
// (version 0.0.4): # HELP/# TYPE headers, one line per series, families
// and series deterministically ordered.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			switch f.Type {
			case "histogram":
				var cum uint64
				for _, b := range s.Buckets {
					cum = b.Count
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(s.Labels, "le", formatFloat(b.LE)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(s.Labels, "le", "+Inf"), s.Count)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, promLabels(s.Labels), formatFloat(s.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.Name, promLabels(s.Labels), s.Count)
			default:
				fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(s.Labels), formatFloat(s.Value))
			}
		}
	}
}

// promLabels renders a label set (plus an optional extra pair, for the
// histogram le label) as {a="x",b="y"}, or "" when empty.
func promLabels(labels []Label, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	write := func(name, value string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(value))
		b.WriteString(`"`)
	}
	for _, l := range labels {
		write(l.Name, l.Value)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		write(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
