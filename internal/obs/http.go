package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// MetricsHandler serves a registry in the Prometheus text exposition
// format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		reg.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// Mount attaches GET /metrics and GET /debug/pprof/* to a mux. The
// pprof handlers are wired explicitly rather than through
// net/http/pprof's DefaultServeMux side effects, so importing obs never
// pollutes a server that chose not to Mount.
func Mount(mux *http.ServeMux, reg *Registry) {
	RegisterProcessMetrics(reg) // every scrape surface self-describes
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Sidecar starts a metrics+pprof listener on addr (host:port, port 0
// OK) for processes that have no HTTP surface of their own — coord and
// work. It returns the bound address and a shutdown func.
func Sidecar(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	Mount(mux, reg)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
