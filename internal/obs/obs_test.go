package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "labelled", "shard")
	a1 := v.With("0")
	a2 := v.With("0")
	b := v.With("1")
	if a1 != a2 {
		t.Fatal("same label values must return the same series")
	}
	if a1 == b {
		t.Fatal("different label values must return distinct series")
	}
	// Re-registering the same family returns the same series handles.
	if r.CounterVec("v_total", "labelled", "shard").With("0") != a1 {
		t.Fatal("re-registration must find the existing family")
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	for _, f := range []func(){
		func() { r.Gauge("m", "h") },
		func() { r.CounterVec("m", "h", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("schema conflict must panic")
				}
			}()
			f()
		}()
	}
}

func TestDisabledRegistryIsInert(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10})
	r.SetEnabled(false)
	c.Inc()
	g.Set(5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.count.Load() != 0 {
		t.Fatal("disabled registry must drop all observations")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry must collect again")
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 5, 7, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Families[0].Series[0]
	// le=1: {0.5, 1}; le=5: +{1.5, 5}; le=10: +{7}; +Inf: 100 only in Count.
	want := []Bucket{{LE: 1, Count: 2}, {LE: 5, Count: 4}, {LE: 10, Count: 5}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 115 {
		t.Fatalf("sum = %v, want 115", s.Sum)
	}
}

// TestHistogramSnapshotDeterminism drives the same multiset of
// observations through a histogram in shuffled order and concurrently,
// and requires identical snapshots every time: bucket counts, Count and
// (for these exactly-representable values) Sum are order-independent.
func TestHistogramSnapshotDeterminism(t *testing.T) {
	values := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		values = append(values, float64(i%37)*0.25)
	}
	var want Snapshot
	for trial := 0; trial < 5; trial++ {
		r := NewRegistry()
		h := r.HistogramVec("cell_seconds", "", ExpBuckets(0.125, 2, 8), "exp")
		rng := rand.New(rand.NewSource(int64(trial)))
		shuffled := append([]float64(nil), values...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		var wg sync.WaitGroup
		workers := 1 + trial%4
		chunk := (len(shuffled) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(shuffled))
			wg.Add(1)
			go func(vals []float64) {
				defer wg.Done()
				s := h.With("fig10")
				for _, v := range vals {
					s.Observe(v)
				}
			}(shuffled[lo:hi])
		}
		wg.Wait()

		got := r.Snapshot()
		if trial == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: snapshot diverged:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestSnapshotOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	v := r.CounterVec("aaa_total", "", "shard")
	v.With("2").Inc()
	v.With("0").Inc()
	v.With("1").Inc()
	snap := r.Snapshot()
	if snap.Families[0].Name != "aaa_total" || snap.Families[1].Name != "zzz_total" {
		t.Fatalf("families not sorted by name: %+v", snap.Families)
	}
	var got []string
	for _, s := range snap.Families[0].Series {
		got = append(got, s.Labels[0].Value)
	}
	if !reflect.DeepEqual(got, []string{"0", "1", "2"}) {
		t.Fatalf("series not sorted by label values: %v", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(4)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Families[0].Series[0].Value != 4 {
		t.Fatalf("round trip lost value: %s", b)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("meshopt_cache_hits_total", "Cache lookups served from the cache.").Add(3)
	r.GaugeVec("meshopt_jobs", "Jobs by state.", "state").With("running").Set(2)
	h := r.Histogram("meshopt_cell_seconds", "Cell wall time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP meshopt_cache_hits_total Cache lookups served from the cache.\n",
		"# TYPE meshopt_cache_hits_total counter\n",
		"meshopt_cache_hits_total 3\n",
		"# TYPE meshopt_jobs gauge\n",
		`meshopt_jobs{state="running"} 2` + "\n",
		"# TYPE meshopt_cell_seconds histogram\n",
		`meshopt_cell_seconds_bucket{le="0.1"} 1` + "\n",
		`meshopt_cell_seconds_bucket{le="1"} 2` + "\n",
		`meshopt_cell_seconds_bucket{le="+Inf"} 3` + "\n",
		"meshopt_cell_seconds_sum 5.55\n",
		"meshopt_cell_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "", "key").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `key="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.CounterVec("ops_total", "", "worker")
			g := r.Gauge("depth", "")
			h := r.Histogram("lat", "", TimeBuckets())
			for i := 0; i < 500; i++ {
				c.With(fmt.Sprint(w % 3)).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total float64
	for _, f := range snap.Families {
		if f.Name != "ops_total" {
			continue
		}
		for _, s := range f.Series {
			total += s.Value
		}
	}
	if total != 8*500 {
		t.Fatalf("ops_total = %v, want %d", total, 8*500)
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]string{"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR"} {
		lvl, err := ParseLevel(in)
		if err != nil || lvl.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, lvl, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
	if f, err := ParseFormat("json"); err != nil || f != "json" {
		t.Fatalf("ParseFormat(json) = %q, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat must reject unknown formats")
	}
}

func TestLoggerFormats(t *testing.T) {
	var buf strings.Builder
	NewLogger(&buf, 0, "json").Info("evicted", "key", "abc", "bytes", 42)
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("json log line not JSON: %v: %s", err, buf.String())
	}
	if rec["msg"] != "evicted" || rec["bytes"] != float64(42) {
		t.Fatalf("json log fields wrong: %s", buf.String())
	}
	buf.Reset()
	NewLogger(&buf, 0, "text").Info("dispatch", "shard", 1)
	if !strings.Contains(buf.String(), "msg=dispatch") || !strings.Contains(buf.String(), "shard=1") {
		t.Fatalf("text log fields wrong: %s", buf.String())
	}
	// nil and io.Discard writers must be safe no-ops.
	NewLogger(nil, 0, "text").Info("dropped")
	NewLogger(io.Discard, 0, "json").Info("dropped")
	Discard().Error("dropped")
}

func TestSidecarServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("meshopt_test_total", "").Add(7)
	addr, shutdown, err := Sidecar("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "meshopt_test_total 7") {
		t.Fatal("sidecar /metrics missing counter")
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("sidecar pprof index not served")
	}
}
