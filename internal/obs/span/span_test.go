package span

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// --- recorder semantics ------------------------------------------------

func TestNilSafety(t *testing.T) {
	var r *Recorder
	s := r.Root("x")
	if s != nil {
		t.Fatalf("nil recorder Root = %v, want nil", s)
	}
	// Every method on a nil span must no-op.
	s.End()
	s.SetAttr("k", "v")
	if c := s.Child("y"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	if c := s.ChildAt(time.Now(), "y"); c != nil {
		t.Fatalf("nil span ChildAt = %v, want nil", c)
	}
	if s.ID() != 0 {
		t.Fatalf("nil span ID = %d, want 0", s.ID())
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", got)
	}
	r.Drop(nil)
}

func TestRecorderTreeAndSnapshot(t *testing.T) {
	r := NewRecorder()
	root := r.Root("job", Str("experiment", "fig10"))
	child := root.Child("run", Int("shards", 2))
	leaf := child.Child("cell", Int("cell", 3))
	leaf.End()
	leaf.End() // idempotent
	child.SetAttr("status", "done")
	child.SetAttr("status", "really-done") // overwrite, not append
	child.End()

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(snap))
	}
	if snap[0].Name != "job" || snap[0].Parent != 0 {
		t.Fatalf("root = %+v", snap[0])
	}
	if snap[1].Parent != snap[0].ID || snap[2].Parent != snap[1].ID {
		t.Fatalf("parent links wrong: %+v", snap)
	}
	if got := snap[1].Attr("status"); got != "really-done" {
		t.Fatalf("SetAttr overwrite: got %q", got)
	}
	// Root is still open: snapshot must report a live duration.
	if snap[0].Dur <= 0 {
		t.Fatalf("open span duration = %v, want > 0", snap[0].Dur)
	}

	// Subtree from child keeps child+leaf only.
	sub := Subtree(snap, snap[1].ID)
	if len(sub) != 2 || sub[0].Name != "run" || sub[1].Name != "cell" {
		t.Fatalf("Subtree = %+v", sub)
	}

	// Drop removes the whole tree.
	other := r.Root("other")
	r.Drop(root)
	snap = r.Snapshot()
	if len(snap) != 1 || snap[0].ID != other.ID() {
		t.Fatalf("after Drop: %+v", snap)
	}
}

func TestChildAtBackdates(t *testing.T) {
	r := NewRecorder()
	root := r.Root("job")
	past := time.Now().Add(-time.Hour)
	s := root.ChildAt(past, "stall")
	s.End()
	snap := r.Snapshot()
	if snap[1].Start >= 0 || snap[1].Dur < time.Hour {
		t.Fatalf("backdated span = start %v dur %v", snap[1].Start, snap[1].Dur)
	}
}

func TestContext(t *testing.T) {
	r := NewRecorder()
	s := r.Root("job")
	ctx := NewContext(t.Context(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want %v", got, s)
	}
	if got := FromContext(t.Context()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", got)
	}
}

// --- exporter goldens (satellite: fixed tree, byte-stable output) ------

// fixture is a synthetic coord-style run with hand-picked microsecond-
// aligned times: a job with a cache lookup, a queued interval, and a run
// fanning out to two slots, where shard 1's first attempt dies, backs
// off, and is re-dispatched as a steal with a suffix-verify replay.
func fixture() []SpanData {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []SpanData{
		{ID: 1, Parent: 0, Name: "job", Start: ms(0), Dur: ms(100),
			Attrs: []Attr{Str("experiment", "fig10"), Str("seed", "1")}},
		{ID: 2, Parent: 1, Name: "cache.lookup", Start: ms(0), Dur: ms(2)},
		{ID: 3, Parent: 1, Name: "queued", Start: ms(2), Dur: ms(3)},
		{ID: 4, Parent: 1, Name: "run", Start: ms(5), Dur: ms(95)},
		{ID: 5, Parent: 4, Name: "dispatch", Start: ms(5), Dur: ms(90),
			Attrs: []Attr{Int("shard", 0), Int("slot", 0), Int("attempt", 1), Int("from_cell", 0)}},
		{ID: 6, Parent: 5, Name: "spawn", Start: ms(5), Dur: ms(1)},
		{ID: 7, Parent: 5, Name: "ready.wait", Start: ms(6), Dur: ms(2)},
		{ID: 8, Parent: 5, Name: "stream", Start: ms(8), Dur: ms(87)},
		{ID: 9, Parent: 4, Name: "dispatch", Start: ms(5), Dur: ms(20),
			Attrs: []Attr{Int("shard", 1), Int("slot", 1), Int("attempt", 1), Int("from_cell", 0)}},
		{ID: 10, Parent: 9, Name: "stream", Start: ms(6), Dur: ms(19)},
		{ID: 11, Parent: 4, Name: "backoff", Start: ms(25), Dur: ms(10),
			Attrs: []Attr{Int("shard", 1), Int("attempt", 2)}},
		{ID: 12, Parent: 4, Name: "stall", Start: ms(25), Dur: ms(15),
			Attrs: []Attr{Int("shard", 1), Int("cell", 3)}},
		{ID: 13, Parent: 4, Name: "dispatch", Start: ms(40), Dur: ms(30),
			Attrs: []Attr{Int("shard", 1), Int("slot", 1), Int("attempt", 2), Int("from_cell", 3)}},
		{ID: 14, Parent: 13, Name: "verify", Start: ms(41), Dur: ms(4),
			Attrs: []Attr{Int("lines", 3), Str("suffix", "true")}},
		{ID: 15, Parent: 13, Name: "stream", Start: ms(45), Dur: ms(25)},
		{ID: 16, Parent: 8, Name: "cell", Start: ms(10), Dur: ms(40), Attrs: []Attr{Int("cell", 0)}},
		{ID: 17, Parent: 8, Name: "cell", Start: ms(50), Dur: ms(44), Attrs: []Attr{Int("cell", 1)}},
		{ID: 18, Parent: 15, Name: "cell", Start: ms(46), Dur: ms(20), Attrs: []Attr{Int("cell", 3)}},
	}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	// Shift the whole fixture by an arbitrary origin: normalization must
	// cancel it, so the bytes are identical to the unshifted export.
	shifted := fixture()
	for i := range shifted {
		shifted[i].Start += 17 * time.Second
	}
	if err := WriteChrome(&buf, shifted); err != nil {
		t.Fatal(err)
	}
	want := `[
{"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"main"}},
{"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"slot 0"}},
{"ph":"M","name":"process_name","pid":2,"tid":0,"args":{"name":"slot 1"}},
{"name":"job","cat":"meshopt","ph":"X","ts":0,"dur":100000,"pid":0,"tid":0,"args":{"id":1,"parent":0,"experiment":"fig10","seed":"1"}},
{"name":"cache.lookup","cat":"meshopt","ph":"X","ts":0,"dur":2000,"pid":0,"tid":1,"args":{"id":2,"parent":1}},
{"name":"queued","cat":"meshopt","ph":"X","ts":2000,"dur":3000,"pid":0,"tid":1,"args":{"id":3,"parent":1}},
{"name":"run","cat":"meshopt","ph":"X","ts":5000,"dur":95000,"pid":0,"tid":1,"args":{"id":4,"parent":1}},
{"name":"dispatch","cat":"meshopt","ph":"X","ts":5000,"dur":90000,"pid":1,"tid":0,"args":{"id":5,"parent":4,"shard":"0","slot":"0","attempt":"1","from_cell":"0"}},
{"name":"spawn","cat":"meshopt","ph":"X","ts":5000,"dur":1000,"pid":1,"tid":1,"args":{"id":6,"parent":5}},
{"name":"dispatch","cat":"meshopt","ph":"X","ts":5000,"dur":20000,"pid":2,"tid":0,"args":{"id":9,"parent":4,"shard":"1","slot":"1","attempt":"1","from_cell":"0"}},
{"name":"ready.wait","cat":"meshopt","ph":"X","ts":6000,"dur":2000,"pid":1,"tid":1,"args":{"id":7,"parent":5}},
{"name":"stream","cat":"meshopt","ph":"X","ts":6000,"dur":19000,"pid":2,"tid":1,"args":{"id":10,"parent":9}},
{"name":"stream","cat":"meshopt","ph":"X","ts":8000,"dur":87000,"pid":1,"tid":1,"args":{"id":8,"parent":5}},
{"name":"cell","cat":"meshopt","ph":"X","ts":10000,"dur":40000,"pid":1,"tid":2,"args":{"id":16,"parent":8,"cell":"0"}},
{"name":"backoff","cat":"meshopt","ph":"X","ts":25000,"dur":10000,"pid":0,"tid":2,"args":{"id":11,"parent":4,"shard":"1","attempt":"2"}},
{"name":"stall","cat":"meshopt","ph":"X","ts":25000,"dur":15000,"pid":0,"tid":3,"args":{"id":12,"parent":4,"shard":"1","cell":"3"}},
{"name":"dispatch","cat":"meshopt","ph":"X","ts":40000,"dur":30000,"pid":2,"tid":0,"args":{"id":13,"parent":4,"shard":"1","slot":"1","attempt":"2","from_cell":"3"}},
{"name":"verify","cat":"meshopt","ph":"X","ts":41000,"dur":4000,"pid":2,"tid":1,"args":{"id":14,"parent":13,"lines":"3","suffix":"true"}},
{"name":"stream","cat":"meshopt","ph":"X","ts":45000,"dur":25000,"pid":2,"tid":1,"args":{"id":15,"parent":13}},
{"name":"cell","cat":"meshopt","ph":"X","ts":46000,"dur":20000,"pid":2,"tid":2,"args":{"id":18,"parent":15,"cell":"3"}},
{"name":"cell","cat":"meshopt","ph":"X","ts":50000,"dur":44000,"pid":1,"tid":2,"args":{"id":17,"parent":8,"cell":"1"}}
]
`
	if got := buf.String(); got != want {
		t.Errorf("Chrome export drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixture()); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	got, err := Parse(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	// Parse must recover every field exactly, modulo the canonical
	// (start, id) export order.
	want := normalize(fixture())
	if len(got) != len(want) {
		t.Fatalf("round trip: %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Name != w.Name ||
			g.Start != w.Start || g.Dur != w.Dur || attrKey(g.Attrs) != attrKey(w.Attrs) {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
	}

	// Re-serializing the parse result must reproduce the bytes.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Errorf("JSONL not byte-stable across a round trip.\nfirst:\n%s\nsecond:\n%s", first, buf2.String())
	}
}

func TestChromeParseRecoversStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fixture()); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Chrome ts/dur are microsecond-truncated, so only structure is
	// guaranteed — which is exactly what Tree canonicalizes.
	if gotTree, wantTree := Tree(got), Tree(fixture()); gotTree != wantTree {
		t.Errorf("structure lost through Chrome round trip.\ngot:\n%s\nwant:\n%s", gotTree, wantTree)
	}
}

func TestTreeCanonical(t *testing.T) {
	// Same logical tree, different ids and insertion order, must render
	// identically: this is the property the cross-worker-count span
	// determinism tests rely on.
	a := []SpanData{
		{ID: 1, Parent: 0, Name: "run"},
		{ID: 2, Parent: 1, Name: "dispatch", Attrs: []Attr{Int("shard", 0)}},
		{ID: 3, Parent: 1, Name: "dispatch", Attrs: []Attr{Int("shard", 1)}},
		{ID: 4, Parent: 2, Name: "cell", Attrs: []Attr{Int("cell", 0)}},
	}
	b := []SpanData{
		{ID: 7, Parent: 0, Name: "run"},
		{ID: 9, Parent: 7, Name: "dispatch", Attrs: []Attr{Int("shard", 1)}},
		{ID: 8, Parent: 7, Name: "dispatch", Attrs: []Attr{Int("shard", 0)}},
		{ID: 11, Parent: 8, Name: "cell", Attrs: []Attr{Int("cell", 0)}},
	}
	if Tree(a) != Tree(b) {
		t.Errorf("Tree not canonical:\n%s\nvs\n%s", Tree(a), Tree(b))
	}
	want := "run\n" +
		"  dispatch{shard=0}\n" +
		"    cell{cell=0}\n" +
		"  dispatch{shard=1}\n"
	if got := Tree(a); got != want {
		t.Errorf("Tree = \n%s\nwant\n%s", got, want)
	}
}

// --- report golden (satellite: pinned `meshopt report` output) ---------

func TestReportGolden(t *testing.T) {
	r := Build(fixture())
	var buf bytes.Buffer
	r.Format(&buf)
	want := `spans: 18 (1 roots), wall 100ms
critical path (100ms):
  job{experiment=fig10,seed=1}                    100ms  self 5ms
  run                                              95ms  self 5ms
  dispatch{shard=0,slot=0,attempt=1,from_cell=0}         90ms  self 3ms
  stream                                           87ms  self 43ms
  cell{cell=1}                                     44ms  self 44ms
slots: 2
  slot 0: 1 dispatches, busy 90ms (90.0%), idle 10ms
  slot 1: 2 dispatches, busy 50ms (50.0%), idle 50ms
retries: 1 re-dispatches
retry backoff: 1 waits, 10ms total
steals: 1 suffix re-dispatches
frontier stalls: 1, 15ms total
steal suffix-verify: 1 replays, 4ms total
worker spawns: 1, 1ms total
cells: 3, p50 40ms, p90 44ms, p99 44ms, max 44ms
cache lookups: 1, 2ms total
queue wait: 1 jobs, 3ms total
`
	if got := buf.String(); got != want {
		t.Errorf("report drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	Build(nil).Format(&buf)
	if got := buf.String(); !strings.HasPrefix(got, "spans: 0") {
		t.Errorf("empty report = %q", got)
	}
}
