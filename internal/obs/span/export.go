package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// Export formats. Both normalize timestamps to a 0-origin (the earliest
// span starts at t=0), so two exports of the same structure differ only
// in durations — and a fixed synthetic tree serializes byte-stably.
//
//   - Chrome trace-event JSON (WriteChrome): loadable in Perfetto /
//     chrome://tracing. One pid per worker slot (pid 0 is the
//     coordinating process; a span inherits the nearest ancestor's
//     "slot" attr), one tid per concurrency lane (greedy interval
//     assignment, so overlapping spans occupy separate rows).
//   - JSONL span log (WriteJSONL): one span per line with exact
//     nanosecond offsets; the round-trippable archival form.
//
// Parse reads either format back (sniffing the leading '[' of a Chrome
// array), so `meshopt report` works on whatever file a run produced.

// WriteChrome writes spans as a Chrome trace-event JSON array.
// Timestamps are microseconds from the earliest span. Span id/parent
// ride in args so the tree survives the format.
func WriteChrome(w io.Writer, spans []SpanData) error {
	spans = normalize(spans)
	pids := assignPids(spans)
	tids := assignLanes(spans, pids)

	// Name the process rows so Perfetto shows "slot N" instead of bare
	// pid numbers.
	seen := map[int]bool{}
	var pidList []int
	for _, d := range spans {
		if p := pids[d.ID]; !seen[p] {
			seen[p] = true
			pidList = append(pidList, p)
		}
	}
	sort.Ints(pidList)

	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for _, p := range pidList {
		name := "main"
		if p > 0 {
			name = "slot " + strconv.Itoa(p-1)
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, p, name))
	}
	for _, d := range spans {
		var args []byte
		args = append(args, fmt.Sprintf(`{"id":%d,"parent":%d`, d.ID, d.Parent)...)
		for _, a := range d.Attrs {
			args = append(args, ',')
			args = appendJSONString(args, a.Key)
			args = append(args, ':')
			args = appendJSONString(args, a.Value)
		}
		args = append(args, '}')
		emit(fmt.Sprintf(`{"name":%q,"cat":"meshopt","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":%s}`,
			d.Name, d.Start.Microseconds(), d.Dur.Microseconds(), pids[d.ID], tids[d.ID], args))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteJSONL writes the compact span log: one JSON object per span per
// line, nanosecond offsets, attrs as ordered [key,value] pairs.
func WriteJSONL(w io.Writer, spans []SpanData) error {
	spans = normalize(spans)
	bw := bufio.NewWriter(w)
	for _, d := range spans {
		var b []byte
		b = append(b, fmt.Sprintf(`{"id":%d,"parent":%d,"name":`, d.ID, d.Parent)...)
		b = appendJSONString(b, d.Name)
		b = append(b, fmt.Sprintf(`,"start_ns":%d,"dur_ns":%d`, d.Start.Nanoseconds(), d.Dur.Nanoseconds())...)
		if len(d.Attrs) > 0 {
			b = append(b, `,"attrs":[`...)
			for i, a := range d.Attrs {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, '[')
				b = appendJSONString(b, a.Key)
				b = append(b, ',')
				b = appendJSONString(b, a.Value)
				b = append(b, ']')
			}
			b = append(b, ']')
		}
		b = append(b, '}', '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile exports spans to path, choosing the format by extension:
// ".jsonl" writes the span log, anything else Chrome trace-event JSON.
func WriteFile(path string, spans []SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if len(path) > 6 && path[len(path)-6:] == ".jsonl" {
		err = WriteJSONL(f, spans)
	} else {
		err = WriteChrome(f, spans)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Parse reads spans from either export format: a Chrome trace-event
// array (leading '[') or the JSONL span log.
func Parse(r io.Reader) ([]SpanData, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("span: empty input: %w", err)
		}
		if b[0] == ' ' || b[0] == '\n' || b[0] == '\t' || b[0] == '\r' {
			br.ReadByte()
			continue
		}
		if b[0] == '[' {
			return parseChrome(br)
		}
		return parseJSONL(br)
	}
}

type jsonlSpan struct {
	ID      int         `json:"id"`
	Parent  int         `json:"parent"`
	Name    string      `json:"name"`
	StartNs int64       `json:"start_ns"`
	DurNs   int64       `json:"dur_ns"`
	Attrs   [][2]string `json:"attrs"`
}

func parseJSONL(r io.Reader) ([]SpanData, error) {
	var out []SpanData
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var js jsonlSpan
		if err := json.Unmarshal(line, &js); err != nil {
			return nil, fmt.Errorf("span: bad span line: %w", err)
		}
		d := SpanData{ID: js.ID, Parent: js.Parent, Name: js.Name,
			Start: time.Duration(js.StartNs), Dur: time.Duration(js.DurNs)}
		for _, kv := range js.Attrs {
			d.Attrs = append(d.Attrs, Attr{Key: kv[0], Value: kv[1]})
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func parseChrome(r io.Reader) ([]SpanData, error) {
	var events []chromeEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("span: bad trace-event JSON: %w", err)
	}
	var out []SpanData
	for _, ev := range events {
		if ev.Ph != "X" {
			continue // metadata and instant events carry no interval
		}
		d := SpanData{
			Name:  ev.Name,
			Start: time.Duration(ev.Ts * float64(time.Microsecond)),
			Dur:   time.Duration(ev.Dur * float64(time.Microsecond)),
		}
		if len(ev.Args) > 0 {
			// Args keys decode unordered; id/parent are lifted out and the
			// rest become attrs (sorted by key for determinism).
			var kv map[string]json.RawMessage
			if err := json.Unmarshal(ev.Args, &kv); err != nil {
				return nil, fmt.Errorf("span: bad args on %q: %w", ev.Name, err)
			}
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				switch k {
				case "id":
					json.Unmarshal(kv[k], &d.ID)
				case "parent":
					json.Unmarshal(kv[k], &d.Parent)
				default:
					var v string
					if err := json.Unmarshal(kv[k], &v); err != nil {
						continue // non-string arg from a foreign trace; skip
					}
					d.Attrs = append(d.Attrs, Attr{Key: k, Value: v})
				}
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// normalize shifts spans to a 0-origin and orders them by (start, id) —
// the canonical export order.
func normalize(spans []SpanData) []SpanData {
	if len(spans) == 0 {
		return nil
	}
	min := spans[0].Start
	for _, d := range spans {
		if d.Start < min {
			min = d.Start
		}
	}
	out := append([]SpanData(nil), spans...)
	for i := range out {
		out[i].Start -= min
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// assignPids maps each span to its Chrome pid: 1+slot from the nearest
// ancestor (or self) carrying a "slot" attr, else 0 (the coordinating
// process).
func assignPids(spans []SpanData) map[int]int {
	byID := map[int]SpanData{}
	for _, d := range spans {
		byID[d.ID] = d
	}
	pids := map[int]int{}
	var pidOf func(d SpanData) int
	pidOf = func(d SpanData) int {
		if p, ok := pids[d.ID]; ok {
			return p
		}
		p := 0
		if s := d.Attr("slot"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				p = n + 1
			}
		} else if parent, ok := byID[d.Parent]; ok {
			p = pidOf(parent)
		}
		pids[d.ID] = p
		return p
	}
	for _, d := range spans {
		pidOf(d)
	}
	return pids
}

// assignLanes greedily packs each pid's spans into tids: a span takes
// the lowest lane free at its start, so concurrent intervals land on
// separate rows. Spans must be in (start, id) order.
func assignLanes(spans []SpanData, pids map[int]int) map[int]int {
	type lanes struct{ ends []time.Duration }
	perPid := map[int]*lanes{}
	tids := map[int]int{}
	for _, d := range spans {
		l := perPid[pids[d.ID]]
		if l == nil {
			l = &lanes{}
			perPid[pids[d.ID]] = l
		}
		tid := -1
		for i, end := range l.ends {
			if end <= d.Start {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(l.ends)
			l.ends = append(l.ends, 0)
		}
		l.ends[tid] = d.End()
		tids[d.ID] = tid
	}
	return tids
}

func appendJSONString(b []byte, s string) []byte {
	j, _ := json.Marshal(s)
	return append(b, j...)
}
