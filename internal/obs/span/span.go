// Package span is the execution-tracing half of the observability
// layer: a dependency-free, allocation-light span recorder that
// assembles the timeline of one run — serve job, coordinator dispatch,
// worker stream, engine fan-out, per-cell execution — as a tree of
// named, attributed intervals.
//
// Spans ride the same hard out-of-band contract as the metrics
// registry (internal/obs): a recorder collects intervals on a side
// channel and never touches a record stream, so record bytes are
// byte-identical with tracing on or off. Determinism splits in two:
// span *structure* — tree shape, names, attrs, counts — is a pure
// function of (experiment, seed, scale) and is pinned by tests, while
// timestamps and durations are wall-clock and free.
//
// The off state is a nil *Span: every method is nil-receiver safe and
// instrumentation sites thread the current span through a context, so
// code without a recorder in its context pays one ctx.Value lookup per
// wrap site and nothing per cell.
package span

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value span attribute. Values are strings so span
// files are schema-free; use the Str/Int/I64 constructors.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// I64 builds an int64 attribute.
func I64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Recorder collects spans for one traced run. Safe for concurrent use;
// a nil *Recorder records nothing.
type Recorder struct {
	mu     sync.Mutex
	base   time.Time // monotonic origin; offsets are time.Since(base)
	nextID int
	spans  []*Span
}

// NewRecorder creates an empty recorder whose time origin is now.
func NewRecorder() *Recorder { return &Recorder{base: time.Now()} }

// Span is one recorded interval. A nil *Span is the disabled state:
// every method no-ops, so call sites need no enabled checks beyond
// skipping attr construction.
type Span struct {
	r      *Recorder
	id     int
	parent int // 0 = root
	name   string
	start  time.Duration // offset from the recorder's base
	dur    time.Duration
	ended  bool
	attrs  []Attr
}

// start appends a new span; at is its wall start time. Caller-side nil
// checks are done by the exported wrappers.
func (r *Recorder) startSpan(parent int, at time.Time, name string, attrs []Attr) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s := &Span{r: r, id: r.nextID, parent: parent, name: name, start: at.Sub(r.base), attrs: attrs}
	r.spans = append(r.spans, s)
	return s
}

// Root starts a root span (no parent). Nil-recorder safe.
func (r *Recorder) Root(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	return r.startSpan(0, time.Now(), name, attrs)
}

// Child starts a child of s. Nil-safe: a nil span's child is nil, so a
// whole untraced call tree costs nothing past the first check.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(s.id, time.Now(), name, attrs)
}

// ChildAt starts a child whose start time is backdated to at — for
// intervals whose beginning is only known in hindsight, like a merge
// frontier stall measured from the last advance.
func (s *Span) ChildAt(at time.Time, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(s.id, at, name, attrs)
}

// End closes the span. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.r.base) - s.start
	}
	s.r.mu.Unlock()
}

// SetAttr appends (or overwrites) an attribute after the span started —
// outcomes, counts only known at the end. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == k {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
}

// ID returns the span's recorder-unique id (0 for nil).
func (s *Span) ID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// SpanData is one immutable exported span; the unit both exporters and
// the report operate on.
type SpanData struct {
	ID     int
	Parent int // 0 = root
	Name   string
	Start  time.Duration // offset from the recorder's (or file's) origin
	Dur    time.Duration
	Attrs  []Attr
}

// Attr returns the value of the named attribute ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// End returns the span's end offset.
func (d SpanData) End() time.Duration { return d.Start + d.Dur }

// Snapshot copies the recorder's spans, in start order. Spans still
// open are reported with their duration so far — a live snapshot (the
// serve trace endpoint mid-job) shows honest partial intervals.
func (r *Recorder) Snapshot() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Since(r.base)
	out := make([]SpanData, len(r.spans))
	for i, s := range r.spans {
		d := SpanData{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: s.dur}
		if !s.ended {
			d.Dur = now - s.start
		}
		if len(s.attrs) > 0 {
			d.Attrs = append([]Attr(nil), s.attrs...)
		}
		out[i] = d
	}
	return out
}

// Subtree returns the spans reachable from root (inclusive), preserving
// snapshot order — the per-job view the serve trace endpoint exports
// out of a server-wide recorder.
func Subtree(spans []SpanData, root int) []SpanData {
	in := map[int]bool{root: true}
	var out []SpanData
	for _, d := range spans {
		if d.ID == root || in[d.Parent] {
			in[d.ID] = true
			out = append(out, d)
		}
	}
	return out
}

// Drop removes root's subtree from the recorder — the serve layer's
// trace GC when a job is swept. Nil-safe.
func (r *Recorder) Drop(root *Span) {
	if r == nil || root == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gone := map[int]bool{root.id: true}
	kept := r.spans[:0]
	for _, s := range r.spans {
		if gone[s.id] || gone[s.parent] {
			gone[s.id] = true
			continue
		}
		kept = append(kept, s)
	}
	r.spans = kept
}

// --- context plumbing --------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying s as the current span; children
// started via FromContext(...).Child nest under it.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the context is
// untraced — the single check instrumentation sites gate on.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// --- canonical structure ----------------------------------------------

// Tree renders spans as a canonical indented tree: children sorted by
// (name, attrs), attrs sorted by key, timestamps and durations omitted.
// Two runs of the same job must render identical trees regardless of
// worker count, timing or scheduling — the span-structure determinism
// tests compare exactly this. Attr-key sorting also makes the rendering
// stable across export formats (Chrome parse returns attrs key-sorted).
func Tree(spans []SpanData) string {
	children := map[int][]SpanData{}
	for _, d := range spans {
		children[d.Parent] = append(children[d.Parent], d)
	}
	var b strings.Builder
	var walk func(parent int, depth int)
	walk = func(parent, depth int) {
		kids := children[parent]
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Name != kids[j].Name {
				return kids[i].Name < kids[j].Name
			}
			return canonAttrKey(kids[i].Attrs) < canonAttrKey(kids[j].Attrs)
		})
		for _, d := range kids {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(d.Name)
			if len(d.Attrs) > 0 {
				b.WriteByte('{')
				b.WriteString(canonAttrKey(d.Attrs))
				b.WriteByte('}')
			}
			b.WriteByte('\n')
			walk(d.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// canonAttrKey renders attrs sorted by key — the order-insensitive form
// Tree uses.
func canonAttrKey(attrs []Attr) string {
	if len(attrs) > 1 {
		sorted := append([]Attr(nil), attrs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		attrs = sorted
	}
	return attrKey(attrs)
}

func attrKey(attrs []Attr) string {
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}
