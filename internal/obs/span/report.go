package span

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
)

// Report is the post-processed view of one span file: where the
// wall-clock went (critical path), how busy each worker slot was and
// what the rest of its time is attributable to (backoff, stalls), what
// retries and steals cost, cache latencies, and the per-cell wall-time
// distribution. Build computes it; Format renders the stable text form
// `meshopt report` prints.
type Report struct {
	Spans int
	Roots int
	Wall  time.Duration // latest end − earliest start

	Critical []PathStep

	Slots []SlotUtil

	Backoff      Agg // retry backoff sleeps
	Stalls       Agg // merge-frontier stall intervals that triggered a steal
	SuffixVerify Agg // steal suffix-dispatch prefix replays
	RetryVerify  Agg // full-redispatch prefix replays
	Spawns       Agg
	Steals       int // dispatches that resumed at a stolen frontier
	Retries      int // dispatches with attempt > 1

	CellDurs []time.Duration

	CacheLookup   Agg
	CacheValidate Agg
	CacheEvict    Agg
	QueueWait     Agg
}

// PathStep is one span along the critical path.
type PathStep struct {
	Name  string
	Attrs string
	Dur   time.Duration
	Self  time.Duration // Dur minus the next step's Dur (exclusive time)
}

// SlotUtil is one worker slot's accounting, from its dispatch spans.
type SlotUtil struct {
	Slot       int
	Dispatches int
	Busy       time.Duration
}

// Agg is a count + summed duration of one span kind.
type Agg struct {
	N     int
	Total time.Duration
}

func (a *Agg) add(d time.Duration) { a.N++; a.Total += d }

// Build computes a Report from parsed spans.
func Build(spans []SpanData) *Report {
	r := &Report{Spans: len(spans)}
	if len(spans) == 0 {
		return r
	}
	minStart, maxEnd := spans[0].Start, spans[0].End()
	slots := map[int]*SlotUtil{}
	for _, d := range spans {
		if d.Start < minStart {
			minStart = d.Start
		}
		if d.End() > maxEnd {
			maxEnd = d.End()
		}
		if d.Parent == 0 {
			r.Roots++
		}
		switch d.Name {
		case "cell":
			r.CellDurs = append(r.CellDurs, d.Dur)
		case "backoff":
			r.Backoff.add(d.Dur)
		case "stall":
			r.Stalls.add(d.Dur)
		case "verify":
			if d.Attr("suffix") == "true" {
				r.SuffixVerify.add(d.Dur)
			} else {
				r.RetryVerify.add(d.Dur)
			}
		case "spawn":
			r.Spawns.add(d.Dur)
		case "cache.lookup":
			r.CacheLookup.add(d.Dur)
		case "cache.validate":
			r.CacheValidate.add(d.Dur)
		case "cache.evict":
			r.CacheEvict.add(d.Dur)
		case "queued":
			r.QueueWait.add(d.Dur)
		case "dispatch":
			if n, err := strconv.Atoi(d.Attr("slot")); err == nil {
				su := slots[n]
				if su == nil {
					su = &SlotUtil{Slot: n}
					slots[n] = su
				}
				su.Dispatches++
				su.Busy += d.Dur
			}
			if v, err := strconv.Atoi(d.Attr("from_cell")); err == nil && v > 0 {
				r.Steals++
			}
			if v, err := strconv.Atoi(d.Attr("attempt")); err == nil && v > 1 {
				r.Retries++
			}
		}
	}
	r.Wall = maxEnd - minStart
	for _, su := range slots {
		r.Slots = append(r.Slots, *su)
	}
	sort.Slice(r.Slots, func(i, j int) bool { return r.Slots[i].Slot < r.Slots[j].Slot })
	r.Critical = criticalPath(spans)
	return r
}

// criticalPath walks from the longest root down, at each level taking
// the child whose interval ends last — the chain that determined the
// run's wall-clock. Self is each step's exclusive share.
func criticalPath(spans []SpanData) []PathStep {
	children := map[int][]SpanData{}
	var root SpanData
	haveRoot := false
	for _, d := range spans {
		children[d.Parent] = append(children[d.Parent], d)
		if d.Parent == 0 && (!haveRoot || d.End() > root.End()) {
			root, haveRoot = d, true
		}
	}
	if !haveRoot {
		return nil
	}
	var path []PathStep
	cur := root
	for {
		step := PathStep{Name: cur.Name, Attrs: attrKey(cur.Attrs), Dur: cur.Dur, Self: cur.Dur}
		kids := children[cur.ID]
		if len(kids) == 0 {
			path = append(path, step)
			return path
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.End() > next.End() || (k.End() == next.End() && k.ID < next.ID) {
				next = k
			}
		}
		step.Self = cur.Dur - next.Dur
		if step.Self < 0 {
			step.Self = 0
		}
		path = append(path, step)
		cur = next
	}
}

// Format renders the report. The layout is pinned by a golden test:
// stable field order, durations via time.Duration's String.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "spans: %d (%d roots), wall %s\n", r.Spans, r.Roots, r.Wall)
	if len(r.Critical) > 0 {
		fmt.Fprintf(w, "critical path (%s):\n", r.Critical[0].Dur)
		for _, s := range r.Critical {
			name := s.Name
			if s.Attrs != "" {
				name += "{" + s.Attrs + "}"
			}
			fmt.Fprintf(w, "  %-40s %12s  self %s\n", name, s.Dur, s.Self)
		}
	}
	if len(r.Slots) > 0 {
		fmt.Fprintf(w, "slots: %d\n", len(r.Slots))
		for _, su := range r.Slots {
			util := 0.0
			if r.Wall > 0 {
				util = 100 * float64(su.Busy) / float64(r.Wall)
			}
			fmt.Fprintf(w, "  slot %d: %d dispatches, busy %s (%.1f%%), idle %s\n",
				su.Slot, su.Dispatches, su.Busy, util, r.Wall-su.Busy)
		}
	}
	if r.Retries > 0 || r.Backoff.N > 0 {
		fmt.Fprintf(w, "retries: %d re-dispatches\n", r.Retries)
		fmt.Fprintf(w, "retry backoff: %d waits, %s total\n", r.Backoff.N, r.Backoff.Total)
	}
	if r.Steals > 0 || r.Stalls.N > 0 || r.SuffixVerify.N > 0 {
		fmt.Fprintf(w, "steals: %d suffix re-dispatches\n", r.Steals)
		fmt.Fprintf(w, "frontier stalls: %d, %s total\n", r.Stalls.N, r.Stalls.Total)
		fmt.Fprintf(w, "steal suffix-verify: %d replays, %s total\n", r.SuffixVerify.N, r.SuffixVerify.Total)
	}
	if r.RetryVerify.N > 0 {
		fmt.Fprintf(w, "retry prefix-verify: %d replays, %s total\n", r.RetryVerify.N, r.RetryVerify.Total)
	}
	if r.Spawns.N > 0 {
		fmt.Fprintf(w, "worker spawns: %d, %s total\n", r.Spawns.N, r.Spawns.Total)
	}
	if n := len(r.CellDurs); n > 0 {
		samples := make([]float64, n)
		for i, d := range r.CellDurs {
			samples[i] = d.Seconds()
		}
		cdf := stats.NewCDF(samples)
		q := func(p float64) time.Duration {
			return time.Duration(cdf.Quantile(p) * float64(time.Second))
		}
		fmt.Fprintf(w, "cells: %d, p50 %s, p90 %s, p99 %s, max %s\n",
			n, q(0.50), q(0.90), q(0.99), q(1))
	}
	if r.CacheLookup.N > 0 {
		fmt.Fprintf(w, "cache lookups: %d, %s total\n", r.CacheLookup.N, r.CacheLookup.Total)
	}
	if r.CacheValidate.N > 0 {
		fmt.Fprintf(w, "cache validations: %d, %s total\n", r.CacheValidate.N, r.CacheValidate.Total)
	}
	if r.CacheEvict.N > 0 {
		fmt.Fprintf(w, "cache evictions: %d, %s total\n", r.CacheEvict.N, r.CacheEvict.Total)
	}
	if r.QueueWait.N > 0 {
		fmt.Fprintf(w, "queue wait: %d jobs, %s total\n", r.QueueWait.N, r.QueueWait.Total)
	}
}
