package obs

import (
	"runtime"
	"strconv"
	"time"
)

// processStart anchors the uptime gauge. Set at package init, which is
// close enough to process start for an observability readout.
var processStart = time.Now()

// RegisterProcessMetrics adds the self-describing process metrics to
// the registry: a meshopt_build_info gauge whose labels carry the Go
// version, OS/arch and GOMAXPROCS (value fixed at 1, the Prometheus
// convention for info metrics), and a process-uptime gauge refreshed on
// every scrape via a snapshot hook. Idempotent — every exposure surface
// (serve, the sidecars) calls it without coordination.
func RegisterProcessMetrics(r *Registry) {
	r.procOnce.Do(func() {
		r.GaugeVec("meshopt_build_info",
			"Build and runtime info; the value is always 1.",
			"go_version", "goos", "goarch", "gomaxprocs").
			With(runtime.Version(), runtime.GOOS, runtime.GOARCH,
				strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)
		uptime := r.Gauge("meshopt_process_uptime_seconds",
			"Seconds since the process started.")
		r.AddSnapshotHook(func() {
			uptime.Set(time.Since(processStart).Seconds())
		})
	})
}
