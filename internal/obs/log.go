package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a leveled slog.Logger writing to w in the given
// format ("text" or "json"). A nil writer yields a discard logger.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	if w == nil || w == io.Discard {
		return Discard()
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts))
	default:
		return slog.New(slog.NewTextHandler(w, opts))
	}
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// ParseFormat validates a -log-format flag value.
func ParseFormat(s string) (string, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return "text", nil
	case "json":
		return "json", nil
	}
	return "", fmt.Errorf("unknown log format %q (want text|json)", s)
}

// TextLogger wraps an io.Writer (possibly nil) in an info-level text
// logger — the back-compat bridge for code paths that still configure a
// plain Log writer instead of a *slog.Logger.
func TextLogger(w io.Writer) *slog.Logger {
	return NewLogger(w, slog.LevelInfo, "text")
}

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
