package mac

import (
	"repro/internal/phy"
)

// RateAdapter selects the modulation for outgoing unicast data frames and
// learns from per-attempt outcomes. It is the hook for 802.11 rate
// adaptation, which the paper's testbed disables (§4.1) and names as the
// main open problem for online capacity estimation (§7).
type RateAdapter interface {
	// RateFor returns the modulation to use toward dst. configured is
	// the rate the network layer asked for (the adapter may ignore it).
	RateFor(dst int, configured phy.Rate) phy.Rate
	// OnResult reports one transmission attempt toward dst: ok means
	// the frame was acknowledged.
	OnResult(dst int, ok bool)
}

// SetRateAdapter attaches a rate adapter to the MAC (nil disables
// adaptation, restoring fixed per-link rates).
func (m *MAC) SetRateAdapter(a RateAdapter) { m.adapter = a }

// arfLadder is the DSSS/CCK rate ladder ARF climbs.
var arfLadder = []phy.Rate{phy.Rate1, phy.Rate2, phy.Rate5_5, phy.Rate11}

// ARF implements Auto Rate Fallback (Kamerman & Monteban): step the rate
// up after a run of consecutive successes, step down after two consecutive
// failures, and fall straight back down if the first frame after an
// upgrade (the probe frame) fails.
type ARF struct {
	// UpAfter is the consecutive-success run that triggers an upgrade
	// (10 in classic ARF).
	UpAfter int

	startIdx int
	state    map[int]*arfState
}

type arfState struct {
	idx       int // index into arfLadder
	successes int
	failures  int
	probing   bool // first frame after an upgrade
}

// NewARF returns an ARF adapter starting every neighbour at startRate.
func NewARF(startRate phy.Rate) *ARF {
	idx := ladderIndex(startRate)
	a := &ARF{UpAfter: 10, state: make(map[int]*arfState)}
	a.startIdx = idx
	return a
}

// ladderIndex maps a rate to its position on the ARF ladder (the highest
// rung for rates outside the DSSS/CCK set).
func ladderIndex(r phy.Rate) int {
	for i, v := range arfLadder {
		if v == r {
			return i
		}
	}
	return len(arfLadder) - 1
}

func (a *ARF) get(dst int) *arfState {
	s := a.state[dst]
	if s == nil {
		s = &arfState{idx: a.startIdx}
		a.state[dst] = s
	}
	return s
}

// RateFor implements RateAdapter.
func (a *ARF) RateFor(dst int, _ phy.Rate) phy.Rate {
	return arfLadder[a.get(dst).idx]
}

// CurrentRate exposes the adapter's rate toward dst (for tests and
// experiments).
func (a *ARF) CurrentRate(dst int) phy.Rate { return a.RateFor(dst, phy.Rate1) }

// OnResult implements RateAdapter.
func (a *ARF) OnResult(dst int, ok bool) {
	s := a.get(dst)
	if ok {
		s.successes++
		s.failures = 0
		s.probing = false
		if s.successes >= a.UpAfter && s.idx < len(arfLadder)-1 {
			s.idx++
			s.successes = 0
			s.probing = true
		}
		return
	}
	s.failures++
	s.successes = 0
	if (s.probing || s.failures >= 2) && s.idx > 0 {
		s.idx--
		s.failures = 0
	}
	s.probing = false
}
