package mac

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

type upper struct {
	received []*phy.Frame
	sentOK   []*phy.Frame
	sentFail []*phy.Frame
}

func (u *upper) callbacks() Callbacks {
	return Callbacks{
		Receive: func(f *phy.Frame) { u.received = append(u.received, f) },
		Sent: func(f *phy.Frame, ok bool) {
			if ok {
				u.sentOK = append(u.sentOK, f)
			} else {
				u.sentFail = append(u.sentFail, f)
			}
		},
	}
}

func pair(t *testing.T, d float64) (*sim.Sim, *phy.Medium, *MAC, *MAC, *upper, *upper) {
	t.Helper()
	s := sim.New(11)
	med := phy.NewMedium(s, phy.DefaultConfig())
	ra := med.AddRadio(phy.Position{})
	rb := med.AddRadio(phy.Position{X: d})
	ua, ub := &upper{}, &upper{}
	return s, med, New(med, ra, ua.callbacks()), New(med, rb, ub.callbacks()), ua, ub
}

func data(dst, bytes int, r phy.Rate) *phy.Frame {
	return &phy.Frame{Dst: dst, Kind: phy.KindData, Bytes: bytes, Rate: r}
}

func TestUnicastDeliveryAndAck(t *testing.T) {
	s, _, ma, _, ua, ub := pair(t, 50)
	ma.Enqueue(data(1, 500, phy.Rate11))
	s.Run(sim.Second)
	if len(ub.received) != 1 {
		t.Fatalf("received %d frames, want 1", len(ub.received))
	}
	if len(ua.sentOK) != 1 || len(ua.sentFail) != 0 {
		t.Fatalf("sender reports ok=%d fail=%d", len(ua.sentOK), len(ua.sentFail))
	}
	if ma.Stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (clean channel)", ma.Stats.Attempts)
	}
}

func TestBroadcastNoAckNoRetry(t *testing.T) {
	s, _, ma, mb, _, ub := pair(t, 50)
	_ = mb
	f := &phy.Frame{Dst: phy.Broadcast, Kind: phy.KindProbe, Bytes: 100, Rate: phy.Rate1}
	ma.Enqueue(f)
	s.Run(sim.Second)
	if len(ub.received) != 1 {
		t.Fatal("broadcast not delivered")
	}
	if mb.Stats.AcksSent != 0 {
		t.Fatal("broadcast must not be acknowledged")
	}
	if ma.Stats.Attempts != 1 {
		t.Fatalf("attempts = %d", ma.Stats.Attempts)
	}
}

func TestRetryUnderTotalLossThenDrop(t *testing.T) {
	s, med, ma, _, ua, _ := pair(t, 50)
	med.SetBER(0, 1, 1) // every frame destroyed
	ma.Enqueue(data(1, 500, phy.Rate11))
	s.Run(10 * sim.Second)
	if len(ua.sentFail) != 1 {
		t.Fatalf("want 1 failed frame, got ok=%d fail=%d", len(ua.sentOK), len(ua.sentFail))
	}
	if got := ma.Stats.Attempts; got != int64(ma.RetryLimit)+1 {
		t.Fatalf("attempts = %d, want %d", got, ma.RetryLimit+1)
	}
}

func TestRetransmissionRecoversModerateLoss(t *testing.T) {
	s, med, ma, _, ua, ub := pair(t, 50)
	med.SetBER(0, 1, 2e-5) // ~8% frame loss at 528 bytes
	ma.QueueCap = 256
	for i := 0; i < 200; i++ {
		ma.Enqueue(data(1, 500, phy.Rate11))
	}
	s.Run(20 * sim.Second)
	if len(ua.sentOK) != 200 {
		t.Fatalf("sentOK = %d, want all 200 recovered by retries", len(ua.sentOK))
	}
	if len(ub.received) != 200 {
		t.Fatalf("received = %d (after dedup), want 200", len(ub.received))
	}
	if ma.Stats.Attempts <= 200 {
		t.Fatal("expected some retransmissions")
	}
}

func TestDuplicateSuppressionOnAckLoss(t *testing.T) {
	s, med, ma, mb, _, ub := pair(t, 50)
	med.SetBER(1, 0, 3e-3) // reverse path lossy: ACKs die often
	for i := 0; i < 50; i++ {
		ma.Enqueue(data(1, 500, phy.Rate11))
	}
	s.Run(30 * sim.Second)
	if mb.Stats.DupsRx == 0 {
		t.Fatal("expected duplicates from lost ACKs")
	}
	// Every delivered frame must be unique.
	seen := map[int64]bool{}
	for _, f := range ub.received {
		if seen[f.Seq] {
			t.Fatalf("duplicate seq %d delivered", f.Seq)
		}
		seen[f.Seq] = true
	}
}

func TestQueueCapEnforced(t *testing.T) {
	_, _, ma, _, _, _ := pair(t, 50)
	ma.QueueCap = 4
	accepted := 0
	for i := 0; i < 10; i++ {
		if ma.Enqueue(data(1, 100, phy.Rate11)) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4", accepted)
	}
	if ma.Stats.QueueDrops != 6 {
		t.Fatalf("queue drops = %d, want 6", ma.Stats.QueueDrops)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	s, _, ma, _, _, ub := pair(t, 50)
	for i := 0; i < 20; i++ {
		ma.Enqueue(data(1, 200, phy.Rate11))
	}
	s.Run(5 * sim.Second)
	if len(ub.received) != 20 {
		t.Fatalf("received %d", len(ub.received))
	}
	for i := 1; i < len(ub.received); i++ {
		if ub.received[i].Seq <= ub.received[i-1].Seq {
			t.Fatal("frames delivered out of order")
		}
	}
}

// Two stations within CS range sending to a common receiver must not
// collide (beyond rare slot ties): carrier sense serializes them.
func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	s := sim.New(3)
	med := phy.NewMedium(s, phy.DefaultConfig())
	r0 := med.AddRadio(phy.Position{X: -40})
	r1 := med.AddRadio(phy.Position{})
	r2 := med.AddRadio(phy.Position{X: 40})
	u0, u1, u2 := &upper{}, &upper{}, &upper{}
	m0 := New(med, r0, u0.callbacks())
	New(med, r1, u1.callbacks())
	m2 := New(med, r2, u2.callbacks())
	m0.QueueCap, m2.QueueCap = 256, 256
	const n = 150
	for i := 0; i < n; i++ {
		m0.Enqueue(data(1, 700, phy.Rate11))
		m2.Enqueue(data(1, 700, phy.Rate11))
	}
	s.Run(10 * sim.Second)
	total := m0.Stats.Attempts + m2.Stats.Attempts
	// Retries indicate collisions; with CS they must be a small fraction.
	retries := total - 2*n
	if float64(retries) > 0.15*float64(total) {
		t.Fatalf("retry fraction %.2f too high for CS neighbors", float64(retries)/float64(total))
	}
	if len(u1.received) != 2*n {
		t.Fatalf("receiver got %d/%d frames", len(u1.received), 2*n)
	}
}

// Saturation throughput of a clean 11 Mb/s link must approach the
// well-known analytic DCF limit (~6 Mb/s with 1470-byte UDP payload and
// long preamble).
func TestSaturationThroughput11Mbps(t *testing.T) {
	s, _, ma, _, ua, ub := pair(t, 50)
	stop := false
	fill := func() {
		for ma.QueueLen() < 3 && !stop {
			ma.Enqueue(data(1, 1470, phy.Rate11))
		}
	}
	ma.SetCallbacks(Callbacks{
		Receive: func(f *phy.Frame) { ub.received = append(ub.received, f) },
		Sent:    func(f *phy.Frame, ok bool) { fill() },
	})
	fill()
	const dur = 5 * sim.Second
	s.Run(dur)
	stop = true
	_ = ua
	bps := float64(len(ub.received)) * 1470 * 8 / dur.Seconds()
	// Analytic: cycle = DIFS + E[backoff]*slot + preamble + (1470+28)*8/11 us
	//                 + SIFS + ACK(304us) ~ 1955 us -> ~6.01 Mb/s.
	if bps < 5.6e6 || bps > 6.4e6 {
		t.Fatalf("saturation throughput = %.2f Mb/s, want ~6.0", bps/1e6)
	}
}

func TestSaturationThroughput1Mbps(t *testing.T) {
	s, _, ma, _, _, ub := pair(t, 50)
	fill := func() {
		for ma.QueueLen() < 3 {
			ma.Enqueue(data(1, 1470, phy.Rate1))
		}
	}
	ma.SetCallbacks(Callbacks{
		Receive: func(f *phy.Frame) {},
		Sent:    func(f *phy.Frame, ok bool) { fill() },
	})
	mb := ub // receiver records via its own callbacks already set
	_ = mb
	// Re-wire receiver side: recreate recording.
	fill()
	const dur = 5 * sim.Second
	s.Run(dur)
	// Count via MAC stats instead of upper hook (simpler here).
	bps := float64(ma.Stats.Successes) * 1470 * 8 / dur.Seconds()
	// Analytic cycle ~ 12850 us -> ~0.915 Mb/s.
	if bps < 0.85e6 || bps > 0.97e6 {
		t.Fatalf("saturation throughput = %.3f Mb/s, want ~0.915", bps/1e6)
	}
}
