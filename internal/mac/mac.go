// Package mac implements the 802.11 Distributed Coordination Function
// (DCF): carrier sensing with DIFS deferral, slotted binary exponential
// backoff, unicast DATA/ACK exchange with a retry limit, and unacknowledged
// broadcast frames (used by the paper's network-layer probing system).
//
// Modelling notes, relative to the full standard:
//   - RTS/CTS is not implemented; the paper's testbed disables it.
//   - Every frame transmission is preceded by DIFS plus a random backoff
//     drawn from the current contention window (the Bianchi saturation
//     behaviour). The standard's "transmit immediately if idle for DIFS"
//     shortcut only matters at light load, where it merely removes a small
//     constant access delay.
//   - EIFS after corrupted receptions is not modelled.
package mac

import (
	"math/rand"

	"repro/internal/phy"
	"repro/internal/sim"
)

// DefaultRetryLimit is the 802.11 long retry limit.
const DefaultRetryLimit = 7

// DefaultQueueCap is the interface queue depth.
const DefaultQueueCap = 64

// ackTimeoutMargin pads the ACK timeout beyond SIFS + ACK airtime.
const ackTimeoutMargin = phy.SlotTime

// Callbacks connect the MAC to the layer above it.
type Callbacks struct {
	// Receive delivers frames addressed to this station or broadcast,
	// with MAC-level retransmission duplicates already filtered.
	Receive func(f *phy.Frame)
	// Sent fires when a frame leaves the MAC: acknowledged (ok=true),
	// dropped after the retry limit (ok=false), or, for broadcast
	// frames, transmitted (ok=true).
	Sent func(f *phy.Frame, ok bool)
}

// Stats counts MAC-level events for one station.
type Stats struct {
	Attempts   int64 // data transmissions put on the air (incl. retries)
	Successes  int64 // frames acknowledged or broadcast completed
	Drops      int64 // frames dropped at the retry limit
	QueueDrops int64 // frames rejected by a full interface queue
	AcksSent   int64
	DupsRx     int64 // duplicate data frames suppressed
}

type state int

const (
	stIdle state = iota
	stWaitIdle
	stDIFS
	stBackoff
	stTx
	stWaitAck
)

// MAC is one station's DCF instance, attached to a PHY radio.
type MAC struct {
	s     *sim.Sim
	med   *phy.Medium
	radio *phy.Radio
	rng   *rand.Rand
	cb    Callbacks

	// Tunables, set before traffic starts.
	RetryLimit int
	QueueCap   int

	queue []*phy.Frame
	txSeq int64

	state      state
	cur        *phy.Frame
	stage      int
	retries    int
	backoff    int
	difs       *sim.Timer
	slot       *sim.Timer
	ackTimeout *sim.Timer

	sendingAck bool
	ackQueued  bool

	adapter RateAdapter // optional rate adaptation (nil = fixed rates)

	lastSeq map[int]int64 // per-source dedup of immediate retransmissions

	Stats Stats
}

// New attaches a DCF MAC to radio on med.
func New(med *phy.Medium, radio *phy.Radio, cb Callbacks) *MAC {
	m := &MAC{
		s:          med.Sim(),
		med:        med,
		radio:      radio,
		rng:        med.Sim().NewStream(),
		cb:         cb,
		RetryLimit: DefaultRetryLimit,
		QueueCap:   DefaultQueueCap,
		lastSeq:    make(map[int]int64),
	}
	radio.SetListener(m)
	return m
}

// ID returns the station id (the radio id).
func (m *MAC) ID() int { return m.radio.ID() }

// QueueLen returns the number of frames waiting in the interface queue,
// including the frame currently being served.
func (m *MAC) QueueLen() int { return len(m.queue) }

// SetCallbacks replaces the upper-layer callbacks (used when a node stack
// is assembled in stages).
func (m *MAC) SetCallbacks(cb Callbacks) { m.cb = cb }

// Enqueue adds a frame to the interface queue. It reports false and drops
// the frame when the queue is full. The MAC stamps the sequence number.
func (m *MAC) Enqueue(f *phy.Frame) bool {
	if len(m.queue) >= m.QueueCap {
		m.Stats.QueueDrops++
		return false
	}
	m.txSeq++
	f.Seq = m.txSeq
	f.Src = m.ID()
	m.queue = append(m.queue, f)
	if m.state == stIdle {
		m.serveNext()
	}
	return true
}

func (m *MAC) serveNext() {
	if len(m.queue) == 0 {
		m.state = stIdle
		m.cur = nil
		return
	}
	m.cur = m.queue[0]
	m.stage = 0
	m.retries = 0
	m.drawBackoff()
	m.startAccess()
}

func (m *MAC) cw() int {
	cw := (phy.CWMin+1)<<m.stage - 1
	if cw > phy.CWMax {
		cw = phy.CWMax
	}
	return cw
}

func (m *MAC) drawBackoff() { m.backoff = m.rng.Intn(m.cw() + 1) }

func (m *MAC) startAccess() {
	if m.radio.CSBusy() {
		m.state = stWaitIdle
		return
	}
	m.beginDIFS()
}

func (m *MAC) beginDIFS() {
	m.state = stDIFS
	m.difs = m.s.After(phy.DIFS, m.onDIFSDone)
}

func (m *MAC) onDIFSDone() {
	m.state = stBackoff
	if m.backoff == 0 {
		m.attemptTx()
		return
	}
	m.slot = m.s.After(phy.SlotTime, m.onSlot)
}

func (m *MAC) onSlot() {
	m.backoff--
	if m.backoff == 0 {
		m.attemptTx()
		return
	}
	m.slot = m.s.After(phy.SlotTime, m.onSlot)
}

func (m *MAC) attemptTx() {
	if m.sendingAck || m.ackQueued || m.radio.Transmitting() {
		// The SIFS-priority ACK response owns the radio. Park in
		// stWaitIdle: the ACK's own transmission drives a busy->idle
		// carrier-sense transition that resumes channel access.
		m.state = stWaitIdle
		return
	}
	if m.adapter != nil && !m.cur.Broadcast() && m.cur.Kind == phy.KindData {
		m.cur.Rate = m.adapter.RateFor(m.cur.Dst, m.cur.Rate)
	}
	m.state = stTx
	m.Stats.Attempts++
	m.med.Transmit(m.radio, m.cur)
}

// CarrierSense implements phy.Listener.
func (m *MAC) CarrierSense(busy bool) {
	if busy {
		switch m.state {
		case stDIFS:
			m.difs.Stop()
			m.state = stWaitIdle
		case stBackoff:
			if m.slot != nil {
				m.slot.Stop()
			}
			m.state = stWaitIdle
		}
		return
	}
	if m.state == stWaitIdle {
		m.beginDIFS()
	}
}

// TxDone implements phy.Listener.
func (m *MAC) TxDone(f *phy.Frame) {
	if f.Kind == phy.KindAck {
		m.sendingAck = false
		return
	}
	if f != m.cur || m.state != stTx {
		return
	}
	if f.Broadcast() {
		m.Stats.Successes++
		m.finish(true)
		return
	}
	ackDur := phy.ControlAirtime(phy.ControlRate(f.Rate), phy.ACKBytes)
	m.state = stWaitAck
	m.ackTimeout = m.s.After(phy.SIFS+ackDur+ackTimeoutMargin, m.onAckTimeout)
}

func (m *MAC) onAckTimeout() {
	if m.adapter != nil && m.cur != nil {
		m.adapter.OnResult(m.cur.Dst, false)
	}
	m.retries++
	if m.retries > m.RetryLimit {
		m.Stats.Drops++
		m.finish(false)
		return
	}
	m.stage++ // cw() clamps the window at CWMax
	m.drawBackoff()
	m.startAccess()
}

func (m *MAC) finish(ok bool) {
	f := m.cur
	m.queue = m.queue[1:]
	m.cur = nil
	if m.cb.Sent != nil {
		m.cb.Sent(f, ok)
	}
	// The upper layer may have refilled the queue inside Sent; serve
	// whatever is at the head now.
	m.serveNext()
}

// Receive implements phy.Listener.
func (m *MAC) Receive(f *phy.Frame) {
	switch {
	case f.Kind == phy.KindAck:
		if f.Dst != m.ID() {
			return
		}
		if m.state == stWaitAck && m.cur != nil && f.Src == m.cur.Dst && f.Seq == m.cur.Seq {
			m.ackTimeout.Stop()
			m.Stats.Successes++
			if m.adapter != nil {
				m.adapter.OnResult(m.cur.Dst, true)
			}
			m.finish(true)
		}
	case f.Broadcast():
		if m.cb.Receive != nil {
			m.cb.Receive(f)
		}
	case f.Dst == m.ID():
		m.scheduleAck(f)
		if m.lastSeq[f.Src] == f.Seq {
			m.Stats.DupsRx++
			return
		}
		m.lastSeq[f.Src] = f.Seq
		if m.cb.Receive != nil {
			m.cb.Receive(f)
		}
	}
}

func (m *MAC) scheduleAck(data *phy.Frame) {
	if m.ackQueued || m.sendingAck {
		return // one SIFS response at a time; the sender will retry
	}
	m.ackQueued = true
	ack := &phy.Frame{
		Src:   m.ID(),
		Dst:   data.Src,
		Kind:  phy.KindAck,
		Bytes: phy.ACKBytes,
		Rate:  phy.ControlRate(data.Rate),
		Seq:   data.Seq,
	}
	m.s.After(phy.SIFS, func() {
		m.ackQueued = false
		if m.radio.Transmitting() {
			return
		}
		m.sendingAck = true
		m.Stats.AcksSent++
		m.med.Transmit(m.radio, ack)
	})
}
