package mac

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func TestARFUpgradeAfterSuccessRun(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 9; i++ {
		a.OnResult(1, true)
	}
	if a.CurrentRate(1) != phy.Rate1 {
		t.Fatal("upgraded too early")
	}
	a.OnResult(1, true)
	if a.CurrentRate(1) != phy.Rate2 {
		t.Fatalf("rate after 10 successes = %v", a.CurrentRate(1))
	}
}

func TestARFDowngradeAfterTwoFailures(t *testing.T) {
	a := NewARF(phy.Rate11)
	a.OnResult(1, false)
	if a.CurrentRate(1) != phy.Rate11 {
		t.Fatal("downgraded after a single failure")
	}
	a.OnResult(1, false)
	if a.CurrentRate(1) != phy.Rate5_5 {
		t.Fatalf("rate after 2 failures = %v", a.CurrentRate(1))
	}
}

func TestARFProbeFrameFallsStraightBack(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 10; i++ {
		a.OnResult(1, true)
	}
	// First frame at the new rate fails: immediate fallback.
	a.OnResult(1, false)
	if a.CurrentRate(1) != phy.Rate1 {
		t.Fatalf("probe failure did not fall back: %v", a.CurrentRate(1))
	}
}

func TestARFPerDestinationState(t *testing.T) {
	a := NewARF(phy.Rate11)
	a.OnResult(1, false)
	a.OnResult(1, false)
	if a.CurrentRate(2) != phy.Rate11 {
		t.Fatal("failures on dst 1 affected dst 2")
	}
}

func TestARFBoundsAtLadderEnds(t *testing.T) {
	a := NewARF(phy.Rate1)
	a.OnResult(1, false)
	a.OnResult(1, false)
	if a.CurrentRate(1) != phy.Rate1 {
		t.Fatal("fell below the ladder")
	}
	b := NewARF(phy.Rate11)
	for i := 0; i < 30; i++ {
		b.OnResult(1, true)
	}
	if b.CurrentRate(1) != phy.Rate11 {
		t.Fatal("climbed past the ladder")
	}
}

// On a link whose SNR only supports 5.5 Mb/s, an ARF MAC must settle there
// and deliver far more than a fixed-11 Mb/s MAC (which loses every frame).
func TestARFSettlesAtSustainableRate(t *testing.T) {
	run := func(useARF bool) (int64, phy.Rate) {
		s := sim.New(21)
		med := phy.NewMedium(s, phy.DefaultConfig())
		a := med.AddRadio(phy.Position{})
		// ~129 m: SNR ~10.7 dB -> decodes 5.5 (9 dB) but not 11 (12 dB).
		b := med.AddRadio(phy.Position{X: 129})
		u, ub := &upper{}, &upper{}
		New(med, b, ub.callbacks()) // receiver MAC answers with ACKs
		m := New(med, a, u.callbacks())
		m.QueueCap = 512
		arf := NewARF(phy.Rate11)
		if useARF {
			m.SetRateAdapter(arf)
		}
		// Keep the sender backlogged so the comparison is a sustained
		// throughput, not a fixed transfer both variants can finish.
		fill := func() {
			for m.QueueLen() < 4 {
				m.Enqueue(data(1, 1000, phy.Rate11))
			}
		}
		m.cb.Sent = func(f *phy.Frame, ok bool) { fill() }
		fill()
		s.Run(10 * sim.Second)
		return m.Stats.Successes, arf.CurrentRate(1)
	}
	fixed, _ := run(false)
	adaptive, settled := run(true)
	if adaptive < 3*fixed/2 {
		t.Fatalf("ARF delivered %d vs fixed %d: adaptation ineffective", adaptive, fixed)
	}
	if settled == phy.Rate11 {
		t.Fatal("ARF stuck at an unsustainable rate")
	}
}
