package node

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func threeNodeLine(t *testing.T) (*sim.Sim, *phy.Medium, []*Node) {
	t.Helper()
	s := sim.New(9)
	med := phy.NewMedium(s, phy.DefaultConfig())
	var nodes []*Node
	for i := 0; i < 3; i++ {
		r := med.AddRadio(phy.Position{X: float64(i) * 60})
		nodes = append(nodes, New(med, r, phy.Rate11))
	}
	return s, med, nodes
}

func TestLocalDelivery(t *testing.T) {
	s, _, nodes := threeNodeLine(t)
	var got *Packet
	nodes[0].Deliver = func(p *Packet) { got = p }
	p := &Packet{FlowID: 1, Src: 0, Dst: 0, Bytes: 100}
	if !nodes[0].Send(p) {
		t.Fatal("send failed")
	}
	s.Run(sim.Second)
	if got != p {
		t.Fatal("packet for self not delivered locally")
	}
}

func TestSingleHopForwarding(t *testing.T) {
	s, _, nodes := threeNodeLine(t)
	var got *Packet
	nodes[1].Deliver = func(p *Packet) { got = p }
	nodes[0].SetRoute(1, 1)
	nodes[0].Send(&Packet{FlowID: 1, Src: 0, Dst: 1, Bytes: 500})
	s.Run(sim.Second)
	if got == nil {
		t.Fatal("packet not delivered over one hop")
	}
}

func TestMultiHopRelay(t *testing.T) {
	s, _, nodes := threeNodeLine(t)
	var got *Packet
	nodes[2].Deliver = func(p *Packet) { got = p }
	nodes[0].SetRoute(2, 1)
	nodes[1].SetRoute(2, 2)
	nodes[0].Send(&Packet{FlowID: 1, Src: 0, Dst: 2, Bytes: 500})
	s.Run(sim.Second)
	if got == nil {
		t.Fatal("packet not relayed over two hops")
	}
}

func TestNoRouteDropsAndCounts(t *testing.T) {
	_, _, nodes := threeNodeLine(t)
	if nodes[0].Send(&Packet{FlowID: 1, Src: 0, Dst: 2, Bytes: 100}) {
		t.Fatal("send without route succeeded")
	}
	if nodes[0].ForwardDrops != 1 {
		t.Fatalf("ForwardDrops = %d", nodes[0].ForwardDrops)
	}
}

func TestNextHopAndClearRoutes(t *testing.T) {
	_, _, nodes := threeNodeLine(t)
	nodes[0].SetRoute(2, 1)
	if nodes[0].NextHop(2) != 1 {
		t.Fatal("NextHop wrong")
	}
	nodes[0].ClearRoutes()
	if nodes[0].NextHop(2) != -1 {
		t.Fatal("routes not cleared")
	}
}

func TestLinkRateSelection(t *testing.T) {
	_, _, nodes := threeNodeLine(t)
	if nodes[0].LinkRate(1) != phy.Rate11 {
		t.Fatal("default rate not used")
	}
	nodes[0].SetLinkRate(1, phy.Rate1)
	if nodes[0].LinkRate(1) != phy.Rate1 {
		t.Fatal("explicit link rate ignored")
	}
	nodes[0].SetDefaultRate(phy.Rate5_5)
	if nodes[0].LinkRate(2) != phy.Rate5_5 {
		t.Fatal("default rate change ignored")
	}
}

func TestOnSentFiresWithOutcome(t *testing.T) {
	s, med, nodes := threeNodeLine(t)
	med.SetBER(0, 1, 1) // kill the link
	nodes[0].SetRoute(1, 1)
	outcomes := map[bool]int{}
	nodes[0].OnSent = func(p *Packet, ok bool) { outcomes[ok]++ }
	nodes[0].Send(&Packet{FlowID: 1, Src: 0, Dst: 1, Bytes: 100})
	s.Run(5 * sim.Second)
	if outcomes[false] != 1 {
		t.Fatalf("outcomes = %v, want one failure", outcomes)
	}
}

func TestProbeDelivery(t *testing.T) {
	s, _, nodes := threeNodeLine(t)
	heard := 0
	nodes[1].OnProbe = func(f *phy.Frame) { heard++ }
	if !nodes[0].SendProbe(200, phy.Rate1, "payload") {
		t.Fatal("probe rejected")
	}
	s.Run(sim.Second)
	if heard != 1 {
		t.Fatalf("probe heard %d times", heard)
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, _, nodes := threeNodeLine(t)
	nodes[0].SetRoute(1, 1)
	nodes[0].MAC().QueueCap = 2
	sent := 0
	for i := 0; i < 5; i++ {
		if nodes[0].Send(&Packet{FlowID: 1, Src: 0, Dst: 1, Bytes: 100}) {
			sent++
		}
	}
	if sent != 2 {
		t.Fatalf("accepted %d, want 2", sent)
	}
}
