// Package node provides the network layer of the mesh: per-node forwarding
// over the DCF MAC, end-to-end packets, and local delivery. It is the layer
// at which the paper's solution operates — rate limiting and probing happen
// here, with no MAC or transport modifications.
package node

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Packet is an end-to-end network-layer datagram.
type Packet struct {
	FlowID int
	Src    int // originating node
	Dst    int // final destination node
	Bytes  int // payload size
	Seq    int64
	SentAt sim.Time
	// Payload carries transport-layer state (e.g. TCP segments).
	Payload any
}

// Node is one mesh router: a MAC plus a forwarding table.
type Node struct {
	id  int
	mac *mac.MAC

	routes   map[int]int      // destination node -> next hop
	linkRate map[int]phy.Rate // next hop -> modulation rate
	defRate  phy.Rate

	// Deliver receives packets whose final destination is this node.
	Deliver func(p *Packet)
	// OnSent fires when a frame carrying p left the MAC (acked or
	// dropped); backlogged sources use it to keep the queue full.
	OnSent func(p *Packet, ok bool)
	// OnProbe receives broadcast probe frames (the probing subsystem
	// attaches here).
	OnProbe func(f *phy.Frame)

	// ForwardDrops counts packets dropped for lack of a route or a full
	// MAC queue while relaying.
	ForwardDrops int64
}

// New builds a node with an attached DCF MAC on radio.
func New(med *phy.Medium, radio *phy.Radio, defaultRate phy.Rate) *Node {
	n := &Node{
		id:       radio.ID(),
		routes:   make(map[int]int),
		linkRate: make(map[int]phy.Rate),
		defRate:  defaultRate,
	}
	n.mac = mac.New(med, radio, mac.Callbacks{
		Receive: n.receive,
		Sent:    n.sent,
	})
	return n
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// MAC exposes the underlying MAC (for stats and probing).
func (n *Node) MAC() *mac.MAC { return n.mac }

// SetRoute installs dst -> nextHop in the forwarding table.
func (n *Node) SetRoute(dst, nextHop int) { n.routes[dst] = nextHop }

// ClearRoutes empties the forwarding table.
func (n *Node) ClearRoutes() { n.routes = make(map[int]int) }

// NextHop returns the configured next hop toward dst, or -1.
func (n *Node) NextHop(dst int) int {
	if nh, ok := n.routes[dst]; ok {
		return nh
	}
	return -1
}

// SetLinkRate fixes the modulation used toward a next hop. The testbed
// disables rate adaptation and pins 1 or 11 Mb/s per configuration.
func (n *Node) SetLinkRate(nextHop int, r phy.Rate) { n.linkRate[nextHop] = r }

// SetDefaultRate changes the modulation used toward next hops without an
// explicit SetLinkRate entry.
func (n *Node) SetDefaultRate(r phy.Rate) { n.defRate = r }

// LinkRate returns the modulation used toward nextHop.
func (n *Node) LinkRate(nextHop int) phy.Rate {
	if r, ok := n.linkRate[nextHop]; ok {
		return r
	}
	return n.defRate
}

// Send routes p toward its destination. It reports false if the packet was
// dropped locally (no route / full queue).
func (n *Node) Send(p *Packet) bool {
	if p.Dst == n.id {
		if n.Deliver != nil {
			n.Deliver(p)
		}
		return true
	}
	nh, ok := n.routes[p.Dst]
	if !ok {
		n.ForwardDrops++
		return false
	}
	f := &phy.Frame{
		Dst:     nh,
		Kind:    phy.KindData,
		Bytes:   p.Bytes,
		Rate:    n.LinkRate(nh),
		Payload: p,
	}
	return n.mac.Enqueue(f)
}

// SendProbe broadcasts a probe frame of the given size at the given rate.
// kind distinguishes DATA-emulating from ACK-emulating probes via Payload.
func (n *Node) SendProbe(bytes int, r phy.Rate, payload any) bool {
	f := &phy.Frame{
		Dst:     phy.Broadcast,
		Kind:    phy.KindProbe,
		Bytes:   bytes,
		Rate:    r,
		Payload: payload,
	}
	return n.mac.Enqueue(f)
}

func (n *Node) receive(f *phy.Frame) {
	if f.Kind == phy.KindProbe {
		if n.OnProbe != nil {
			n.OnProbe(f)
		}
		return
	}
	p, ok := f.Payload.(*Packet)
	if !ok {
		panic(fmt.Sprintf("node %d: data frame without packet payload", n.id))
	}
	if p.Dst == n.id {
		if n.Deliver != nil {
			n.Deliver(p)
		}
		return
	}
	if !n.Send(p) {
		// Relay drop already counted by Send.
		_ = p
	}
}

func (n *Node) sent(f *phy.Frame, ok bool) {
	if n.OnSent == nil {
		return
	}
	if p, isPkt := f.Payload.(*Packet); isPkt {
		n.OnSent(p, ok)
	}
}
