// Package traffic provides UDP-like traffic sources and sinks: backlogged
// (iperf-style saturation) sources used to measure maxUDP throughput, CBR
// sources used to inject controlled input rates, and sinks that account
// per-flow goodput and loss.
package traffic

import (
	"repro/internal/node"
	"repro/internal/sim"
)

// DefaultPayload is the UDP payload size used throughout the experiments,
// matching iperf's default datagram size.
const DefaultPayload = 1470

// Sink accumulates per-flow reception statistics at a destination node.
type Sink struct {
	s *sim.Sim

	bytes   map[int]int64 // flow -> payload bytes received
	packets map[int]int64
	first   map[int]sim.Time
	last    map[int]sim.Time
	started sim.Time
}

// NewSink attaches a sink to n's local delivery. Multiple flows may share
// one sink.
func NewSink(s *sim.Sim, n *node.Node) *Sink {
	k := &Sink{
		s:       s,
		bytes:   make(map[int]int64),
		packets: make(map[int]int64),
		first:   make(map[int]sim.Time),
		last:    make(map[int]sim.Time),
		started: s.Now(),
	}
	prev := n.Deliver
	n.Deliver = func(p *node.Packet) {
		if prev != nil {
			prev(p)
		}
		k.account(p)
	}
	return k
}

func (k *Sink) account(p *node.Packet) {
	if _, ok := k.first[p.FlowID]; !ok {
		k.first[p.FlowID] = k.s.Now()
	}
	k.last[p.FlowID] = k.s.Now()
	k.bytes[p.FlowID] += int64(p.Bytes)
	k.packets[p.FlowID]++
}

// Reset zeroes all counters and restarts the measurement window.
func (k *Sink) Reset() {
	k.bytes = make(map[int]int64)
	k.packets = make(map[int]int64)
	k.first = make(map[int]sim.Time)
	k.last = make(map[int]sim.Time)
	k.started = k.s.Now()
}

// Bytes returns payload bytes received for a flow.
func (k *Sink) Bytes(flow int) int64 { return k.bytes[flow] }

// Packets returns packets received for a flow.
func (k *Sink) Packets(flow int) int64 { return k.packets[flow] }

// ThroughputBps returns the flow's goodput in bits/s over the window from
// the last Reset (or sink creation) to now.
func (k *Sink) ThroughputBps(flow int) float64 {
	dur := (k.s.Now() - k.started).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(k.bytes[flow]) * 8 / dur
}

// Source is the common interface of traffic generators.
type Source interface {
	// Start begins generation; Stop halts it.
	Start()
	Stop()
	// SentPackets returns packets handed to the network layer.
	SentPackets() int64
}

// Backlogged keeps the sender's MAC queue non-empty, measuring the
// saturation (maxUDP) throughput of a path. It mirrors iperf with an
// unconstrained offered load.
type Backlogged struct {
	s     *sim.Sim
	n     *node.Node
	flow  int
	dst   int
	bytes int
	depth int // frames to keep in flight at the MAC

	running bool
	seq     int64
	sent    int64
}

// NewBacklogged creates a saturation source on n toward dst.
func NewBacklogged(s *sim.Sim, n *node.Node, flow, dst, payloadBytes int) *Backlogged {
	b := &Backlogged{s: s, n: n, flow: flow, dst: dst, bytes: payloadBytes, depth: 3}
	prev := n.OnSent
	n.OnSent = func(p *node.Packet, ok bool) {
		if prev != nil {
			prev(p, ok)
		}
		if b.running && p.FlowID == b.flow {
			b.fill()
		}
	}
	return b
}

// Start implements Source.
func (b *Backlogged) Start() {
	b.running = true
	b.fill()
}

// Stop implements Source.
func (b *Backlogged) Stop() { b.running = false }

// SentPackets implements Source.
func (b *Backlogged) SentPackets() int64 { return b.sent }

func (b *Backlogged) fill() {
	for b.n.MAC().QueueLen() < b.depth {
		b.seq++
		p := &node.Packet{
			FlowID: b.flow,
			Src:    b.n.ID(),
			Dst:    b.dst,
			Bytes:  b.bytes,
			Seq:    b.seq,
			SentAt: b.s.Now(),
		}
		if !b.n.Send(p) {
			return
		}
		b.sent++
	}
}

// CBR emits packets at a constant bit rate, the mechanism used to apply
// test input rates x_l inside the estimated feasibility region.
type CBR struct {
	s     *sim.Sim
	n     *node.Node
	flow  int
	dst   int
	bytes int
	rate  float64 // bits per second

	running bool
	timer   *sim.Timer
	seq     int64
	sent    int64
	dropped int64
}

// NewCBR creates a constant-bit-rate source. rateBps counts payload bits.
func NewCBR(s *sim.Sim, n *node.Node, flow, dst, payloadBytes int, rateBps float64) *CBR {
	return &CBR{s: s, n: n, flow: flow, dst: dst, bytes: payloadBytes, rate: rateBps}
}

// SetRate retunes the source, taking effect from the next packet.
func (c *CBR) SetRate(rateBps float64) { c.rate = rateBps }

// Rate returns the configured rate in bits/s.
func (c *CBR) Rate() float64 { return c.rate }

// Start implements Source.
func (c *CBR) Start() {
	if c.running {
		return
	}
	c.running = true
	c.emit()
}

// Stop implements Source.
func (c *CBR) Stop() {
	c.running = false
	if c.timer != nil {
		c.timer.Stop()
	}
}

// SentPackets implements Source.
func (c *CBR) SentPackets() int64 { return c.sent }

// Dropped returns packets rejected by the local queue.
func (c *CBR) Dropped() int64 { return c.dropped }

func (c *CBR) emit() {
	if !c.running {
		return
	}
	if c.rate <= 0 {
		// Re-check periodically so SetRate can revive the flow.
		c.timer = c.s.After(100*sim.Millisecond, c.emit)
		return
	}
	c.seq++
	p := &node.Packet{
		FlowID: c.flow,
		Src:    c.n.ID(),
		Dst:    c.dst,
		Bytes:  c.bytes,
		Seq:    c.seq,
		SentAt: c.s.Now(),
	}
	if c.n.Send(p) {
		c.sent++
	} else {
		c.dropped++
	}
	interval := sim.Time(float64(8*c.bytes) / c.rate * 1e9)
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	c.timer = c.s.After(interval, c.emit)
}
