package traffic

import (
	"math"
	"testing"

	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/sim"
)

func pair(t *testing.T) (*sim.Sim, []*node.Node) {
	t.Helper()
	s := sim.New(4)
	med := phy.NewMedium(s, phy.DefaultConfig())
	var nodes []*node.Node
	for i := 0; i < 2; i++ {
		r := med.AddRadio(phy.Position{X: float64(i) * 50})
		nodes = append(nodes, node.New(med, r, phy.Rate11))
	}
	nodes[0].SetRoute(1, 1)
	nodes[1].SetRoute(0, 0)
	return s, nodes
}

func TestCBRRateAccuracy(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewCBR(s, nodes[0], 0, 1, 1000, 2e6)
	src.Start()
	s.Run(5 * sim.Second)
	src.Stop()
	got := sink.ThroughputBps(0)
	if math.Abs(got-2e6)/2e6 > 0.05 {
		t.Fatalf("CBR throughput %.2f Mb/s, want 2", got/1e6)
	}
}

func TestCBRSetRateDynamic(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewCBR(s, nodes[0], 0, 1, 1000, 1e6)
	src.Start()
	s.At(2*sim.Second, func() {
		sink.Reset()
		src.SetRate(3e6)
	})
	s.Run(5 * sim.Second)
	src.Stop()
	got := sink.ThroughputBps(0)
	if math.Abs(got-3e6)/3e6 > 0.08 {
		t.Fatalf("retuned CBR throughput %.2f Mb/s, want 3", got/1e6)
	}
	if src.Rate() != 3e6 {
		t.Fatal("Rate() not updated")
	}
}

func TestCBRZeroRateIdlesAndRevives(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewCBR(s, nodes[0], 0, 1, 1000, 0)
	src.Start()
	s.Run(sim.Second)
	if sink.Packets(0) != 0 {
		t.Fatal("zero-rate CBR emitted packets")
	}
	src.SetRate(1e6)
	s.Run(s.Now() + 2*sim.Second)
	src.Stop()
	if sink.Packets(0) == 0 {
		t.Fatal("CBR did not revive after SetRate")
	}
}

func TestBackloggedSaturates(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewBacklogged(s, nodes[0], 0, 1, DefaultPayload)
	src.Start()
	s.Run(4 * sim.Second)
	src.Stop()
	got := sink.ThroughputBps(0)
	if got < 5.5e6 {
		t.Fatalf("backlogged source reached only %.2f Mb/s", got/1e6)
	}
}

func TestBackloggedStops(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewBacklogged(s, nodes[0], 0, 1, DefaultPayload)
	src.Start()
	s.Run(sim.Second)
	src.Stop()
	s.Run(s.Now() + 200*sim.Millisecond) // drain queue
	before := sink.Packets(0)
	s.Run(s.Now() + sim.Second)
	if sink.Packets(0) > before+1 {
		t.Fatal("backlogged source kept sending after Stop")
	}
}

func TestSinkPerFlowAccounting(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	a := NewCBR(s, nodes[0], 1, 1, 500, 0.5e6)
	b := NewCBR(s, nodes[0], 2, 1, 1000, 1e6)
	a.Start()
	b.Start()
	s.Run(3 * sim.Second)
	a.Stop()
	b.Stop()
	if sink.Packets(1) == 0 || sink.Packets(2) == 0 {
		t.Fatal("flow accounting missing")
	}
	if sink.Bytes(2) <= sink.Bytes(1) {
		t.Fatal("per-flow byte accounting mixed up")
	}
}

func TestSinkReset(t *testing.T) {
	s, nodes := pair(t)
	sink := NewSink(s, nodes[1])
	src := NewCBR(s, nodes[0], 0, 1, 1000, 1e6)
	src.Start()
	s.Run(2 * sim.Second)
	sink.Reset()
	if sink.Packets(0) != 0 || sink.Bytes(0) != 0 {
		t.Fatal("Reset did not clear counters")
	}
	s.Run(s.Now() + sim.Second)
	src.Stop()
	if sink.Packets(0) == 0 {
		t.Fatal("sink stopped accounting after Reset")
	}
}

func TestCBRCountsDrops(t *testing.T) {
	s, nodes := pair(t)
	nodes[0].MAC().QueueCap = 2
	src := NewCBR(s, nodes[0], 0, 1, DefaultPayload, 50e6) // far over capacity
	src.Start()
	s.Run(sim.Second)
	src.Stop()
	if src.Dropped() == 0 {
		t.Fatal("oversubscribed CBR recorded no drops")
	}
	if src.SentPackets() == 0 {
		t.Fatal("no packets sent at all")
	}
}
