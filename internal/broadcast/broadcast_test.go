package broadcast

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// lineNet hand-builds a loss-free n-node bidirectional chain with unit
// hop delay and gains that decay away from node 0, so the gain forest
// is exactly the 0→1→…→n-1 path.
func lineNet(n int) *Net {
	net := &Net{
		N:         n,
		Neighbors: make([][]int, n),
		BestIn:    make([]int, n),
		loss:      make([]float64, n*n),
		delay:     make([]sim.Time, n*n),
		gain:      make([]float64, n*n),
	}
	for i := range net.BestIn {
		net.BestIn[i] = -1
	}
	link := func(a, b int, g float64) {
		net.Neighbors[a] = append(net.Neighbors[a], b)
		net.delay[a*n+b] = sim.Millisecond
		net.gain[a*n+b] = g
	}
	for i := 0; i+1 < n; i++ {
		link(i, i+1, 2) // downstream link is the stronger one
		link(i+1, i, 1)
		net.BestIn[i+1] = i
	}
	return net
}

// starNet hand-builds a loss-free star: hub 0 linked to n-1 leaves.
func starNet(n int) *Net {
	net := &Net{
		N:         n,
		Neighbors: make([][]int, n),
		BestIn:    make([]int, n),
		loss:      make([]float64, n*n),
		delay:     make([]sim.Time, n*n),
		gain:      make([]float64, n*n),
	}
	for w := 1; w < n; w++ {
		net.Neighbors[0] = append(net.Neighbors[0], w)
		net.Neighbors[w] = []int{0}
		net.delay[w] = sim.Millisecond
		net.delay[w*n] = sim.Millisecond
		net.gain[w] = 1
		net.gain[w*n] = 1
		net.BestIn[w] = 0
	}
	net.BestIn[0] = 1
	return net
}

func TestFloodCoversLosslessLine(t *testing.T) {
	m := Run(lineNet(5), 0, Flood{}, nil, 1)
	if m.Reached != 5 || m.Coverage != 1 {
		t.Fatalf("flood on a lossless line should reach all 5 nodes, got %+v", m)
	}
	if m.Depth != 4 {
		t.Fatalf("line depth should be 4, got %d", m.Depth)
	}
	if m.Duplicates != 0 {
		// On a line, excluding the sender leaves exactly one forward
		// target per hop: no duplicates.
		t.Fatalf("flood on a line should be duplicate-free, got %d", m.Duplicates)
	}
	if len(m.Latencies) != 4 {
		t.Fatalf("want 4 non-root latencies, got %d", len(m.Latencies))
	}
}

func TestTreeFollowsGainForest(t *testing.T) {
	m := Run(lineNet(5), 0, Tree{}, nil, 1)
	if m.Reached != 5 {
		t.Fatalf("tree rooted at the forest root should reach all nodes, got %+v", m)
	}
	if m.Duplicates != 0 {
		t.Fatalf("forest relay from node 0 should be duplicate-free, got %d", m.Duplicates)
	}
	// From mid-chain, the root seed-floods both directions but forest
	// edges only point downstream: upstream stops after one hop.
	m = Run(lineNet(5), 2, Tree{}, nil, 1)
	if m.Reached != 4 {
		t.Fatalf("tree from node 2 should reach {1,2,3,4}, got %+v", m)
	}
}

func TestKRandomBoundsFanOut(t *testing.T) {
	m := Run(starNet(6), 0, KRandom{K: 2}, nil, 1)
	if m.Reached != 3 {
		t.Fatalf("krandom(2) from the hub should reach the hub plus 2 leaves, got %+v", m)
	}
}

func TestGossipZeroOneBehaviour(t *testing.T) {
	if m := Run(lineNet(5), 0, Gossip{P: 1}, nil, 1); m.Reached != 5 {
		t.Fatalf("gossip(1) should behave like flood, got %+v", m)
	}
}

func TestMaliciousNodeReceivesButDrops(t *testing.T) {
	flags := &Flags{
		Malicious:   make([]bool, 5),
		AbsentFrom:  make([]sim.Time, 5),
		AbsentUntil: make([]sim.Time, 5),
	}
	flags.Malicious[2] = true
	m := Run(lineNet(5), 0, Flood{}, flags, 1)
	if m.Reached != 3 {
		t.Fatalf("a malicious node 2 should cut the line at {0,1,2}, got %+v", m)
	}
}

func TestAbsentNodeMissesFrames(t *testing.T) {
	flags := &Flags{
		Malicious:   make([]bool, 5),
		AbsentFrom:  make([]sim.Time, 5),
		AbsentUntil: make([]sim.Time, 5),
	}
	flags.AbsentUntil[1] = 10 * sim.Second // absent for the whole run
	m := Run(lineNet(5), 0, Flood{}, flags, 1)
	if m.Reached != 1 {
		t.Fatalf("an absent node 1 should isolate the root, got %+v", m)
	}
	// The root itself is exempt from its own flags.
	flags = &Flags{
		Malicious:   []bool{true, false, false, false, false},
		AbsentFrom:  make([]sim.Time, 5),
		AbsentUntil: make([]sim.Time, 5),
	}
	if m := Run(lineNet(5), 0, Flood{}, flags, 1); m.Reached != 5 {
		t.Fatalf("root flags must be ignored, got %+v", m)
	}
}

func TestRunDeterministic(t *testing.T) {
	net := randomNet(7, 24)
	flags := DeriveFlags(42, net.N, AdversaryConfig{MaliciousFraction: 0.1, ChurnFraction: 0.1})
	a := Run(net, 3, Gossip{P: 0.7}, flags, 42)
	b := Run(net, 3, Gossip{P: 0.7}, flags, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestDeriveFlagsDeterministic(t *testing.T) {
	cfg := AdversaryConfig{MaliciousFraction: 0.1, ChurnFraction: 0.1}
	a := DeriveFlags(9, 20, cfg)
	b := DeriveFlags(9, 20, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different flags:\n%+v\n%+v", a, b)
	}
	c := DeriveFlags(10, 20, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should derive different flags")
	}
	var nm, nc, both int
	for w := 0; w < 20; w++ {
		churned := a.AbsentUntil[w] > a.AbsentFrom[w]
		if a.Malicious[w] {
			nm++
		}
		if churned {
			nc++
		}
		if a.Malicious[w] && churned {
			both++
		}
	}
	if nm != 2 || nc != 2 || both != 0 {
		t.Fatalf("want exactly 2 malicious + 2 churned, disjoint; got %d/%d/%d overlap", nm, nc, both)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"flood", "flood"},
		{"tree", "tree"},
		{"gossip", "gossip(0.5)"},
		{"gossip(0.7)", "gossip(0.7)"},
		{"krandom", "krandom(2)"},
		{"krandom(4)", "krandom(4)"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in, 0, 0)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.in, err)
		}
		if p.Name() != c.want {
			t.Fatalf("ParsePolicy(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
	// Spec-level defaults apply to the bare forms only.
	if p, _ := ParsePolicy("gossip", 0.9, 5); p.Name() != "gossip(0.9)" {
		t.Fatalf("bare gossip should take the supplied default, got %s", p.Name())
	}
	if p, _ := ParsePolicy("gossip(0.7)", 0.9, 5); p.Name() != "gossip(0.7)" {
		t.Fatalf("explicit parameter must win, got %s", p.Name())
	}
	for _, bad := range []string{"", "kadcast", "gossip(2)", "gossip(x)", "krandom(0)", "flood(1)", "gossip(0.7"} {
		if _, err := ParsePolicy(bad, 0, 0); err == nil {
			t.Fatalf("ParsePolicy(%q) should fail", bad)
		}
	}
}
