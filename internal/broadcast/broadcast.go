// Package broadcast is a deterministic event-driven broadcast
// dissemination engine built on the repo's sim/phy stack: the second
// workload class next to the paper's capacity/fairness sweeps.
//
// A dissemination run injects one message at a root node and lets a
// pluggable Relay policy (flood, probabilistic gossip, k-random
// subset, gain-tree) decide which neighbors each node forwards to.
// Transfers ride a frozen Net extracted from a simulated network:
// per-link frame loss probabilities, airtime-derived hop delays and
// channel gains for every link decodable at the chosen rate. Nodes can
// carry adversarial flags — malicious (receive but never relay) or
// churned (absent for a seeded interval, missing frames entirely).
//
// Determinism is the whole point: every run is a pure function of
// (Net, root, policy, flags, seed). All timing flows through one
// sim.Sim event heap, which fires same-instant events in FIFO order
// (see sim's seq tie-break), and all randomness — per-hop loss coins,
// forwarding jitter, policy sampling — is drawn from that simulator's
// single seeded stream in event order. Two runs with equal inputs
// therefore produce identical Metrics, which is what lets the
// broadcast experiment inherit the engine's byte-identity contract
// across worker counts, shards, steals and resumes.
package broadcast

import (
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Forwarding timing: a node that decides to relay spends a fixed
// processing delay plus a small uniform jitter before each transmit.
// The jitter keeps sibling transmissions from landing at identical
// instants, so relay-order effects are exercised rather than hidden
// behind FIFO ties.
const (
	procDelay = 200 * sim.Microsecond
	maxJitter = 100 * sim.Microsecond
)

// horizon bounds a run; dissemination drains the event heap long
// before this (nodes only relay on first receipt), so it is purely a
// safety net against a policy that schedules unboundedly.
const horizon = 60 * sim.Second

// Net is a frozen dissemination graph: the decodable directed links of
// a simulated network at one rate, with per-link loss probability,
// hop delay and channel gain. Freezing the graph keeps the event loop
// allocation-free and makes runs independent of the originating
// Network's mutable state.
type Net struct {
	// N is the node count.
	N int
	// Neighbors[v] lists v's out-neighbors in ascending node order
	// (the enumeration order of topology.Network.Links).
	Neighbors [][]int
	// BestIn[w] is the in-neighbor of w with the strongest channel
	// gain (lowest id on ties), or -1 if w has no in-links. It is the
	// parent relation of the gain forest the Tree policy relays on.
	BestIn []int
	// Rate and Payload are the transmit rate and message size the
	// graph was frozen at; dissemination traces record them per hop.
	Rate    phy.Rate
	Payload int

	loss  []float64  // [src*N+dst] frame loss probability
	delay []sim.Time // [src*N+dst] transfer delay (airtime)
	gain  []float64  // [src*N+dst] channel gain, mW per mW sent
}

// Loss returns the frame loss probability of the directed link v->w.
func (n *Net) Loss(v, w int) float64 { return n.loss[v*n.N+w] }

// Delay returns the transfer delay of the directed link v->w.
func (n *Net) Delay(v, w int) sim.Time { return n.delay[v*n.N+w] }

// Gain returns the channel gain of the directed link v->w.
func (n *Net) Gain(v, w int) float64 { return n.gain[v*n.N+w] }

// NewNet freezes the dissemination graph of nw at rate r for messages
// of payloadBytes: every directed link decodable at r becomes an edge
// carrying the medium's frame loss probability, the frame airtime as
// its delay, and the channel gain.
func NewNet(nw *topology.Network, r phy.Rate, payloadBytes int) *Net {
	n := len(nw.Nodes)
	net := &Net{
		N:         n,
		Neighbors: make([][]int, n),
		BestIn:    make([]int, n),
		Rate:      r,
		Payload:   payloadBytes,
		loss:      make([]float64, n*n),
		delay:     make([]sim.Time, n*n),
		gain:      make([]float64, n*n),
	}
	for i := range net.BestIn {
		net.BestIn[i] = -1
	}
	air := phy.Airtime(r, payloadBytes)
	for _, l := range nw.Links(r) {
		k := l.Src*n + l.Dst
		net.Neighbors[l.Src] = append(net.Neighbors[l.Src], l.Dst)
		net.loss[k] = nw.Medium.FrameLossProb(l.Src, l.Dst, r, payloadBytes)
		net.delay[k] = air
		net.gain[k] = nw.Medium.GainMW(l.Src, l.Dst)
		if best := net.BestIn[l.Dst]; best < 0 || net.gain[k] > net.Gain(best, l.Dst) {
			net.BestIn[l.Dst] = l.Src
		}
	}
	return net
}

// Metrics summarizes one dissemination run.
type Metrics struct {
	// Nodes is the network size, Reached the number of nodes that
	// received the message at least once (the root counts).
	Nodes, Reached int
	// Coverage is Reached/Nodes.
	Coverage float64
	// Deliveries counts every frame accepted by a present node,
	// duplicates included; Duplicates counts repeat receipts and
	// DupRate is Duplicates/Deliveries.
	Deliveries, Duplicates int
	DupRate                float64
	// Depth is the maximum relay-tree depth over first receipts.
	Depth int
	// Latencies holds the first-receipt latency in seconds of every
	// reached non-root node, in receipt order.
	Latencies []float64
}

// Channel overrides the per-hop loss decision: coin is the relay
// loop's own Bernoulli draw (always performed, keeping the rng stream
// identical with or without an override) and the return value decides
// whether the frame is lost. *trace.Replay satisfies this, which is
// how a dissemination run replays a recorded trace.
type Channel interface {
	Outcome(src, dst int, seq int64, kind int, coin bool) bool
}

// Run executes one dissemination from root under policy and the given
// adversarial flags (nil means no adversaries). The run is a pure
// function of its arguments; see the package comment for why.
func Run(net *Net, root int, policy Relay, flags *Flags, seed int64) Metrics {
	return RunTraced(net, root, policy, flags, seed, nil, nil)
}

// RunTraced is Run with optional capture and replay: every per-hop
// channel decision is reported to tap (when non-nil) as a
// phy.Decision, and decided by channel (when non-nil) instead of the
// relay loop's own coin. Passing nil for both is exactly Run; the rng
// draw sequence is identical in all cases.
func RunTraced(net *Net, root int, policy Relay, flags *Flags, seed int64, tap phy.Tracer, channel Channel) Metrics {
	s := sim.New(seed)
	rng := s.Rand()
	recv := make([]bool, net.N)
	m := Metrics{Nodes: net.N}
	var seq int64

	var relay func(v, from, d int)
	receive := func(w, from, d int) {
		if flags != nil && w != root && flags.Absent(w, s.Now()) {
			return // churned out: the frame is simply missed
		}
		m.Deliveries++
		if recv[w] {
			m.Duplicates++
			return
		}
		recv[w] = true
		m.Reached++
		if d > m.Depth {
			m.Depth = d
		}
		if w != root {
			m.Latencies = append(m.Latencies, s.Now().Seconds())
		}
		if flags != nil && w != root && flags.Malicious[w] {
			return // receive-but-drop
		}
		relay(w, from, d)
	}
	relay = func(v, from, d int) {
		for _, w := range policy.Targets(net, v, from, rng) {
			coin := rng.Float64() < net.Loss(v, w)
			lost := coin
			hop := seq
			seq++
			if channel != nil {
				lost = channel.Outcome(v, w, hop, int(phy.KindData), coin)
			}
			if tap != nil {
				cause := phy.CauseNone
				if lost {
					cause = phy.CauseChannel
				}
				tap.Decide(phy.Decision{
					T: s.Now(), Src: v, Dst: w, Seq: hop,
					Kind: phy.KindData, Rate: net.Rate, Bytes: net.Payload,
					Delivered: !lost, Cause: cause,
				})
			}
			if lost {
				continue // frame lost on the channel
			}
			delay := net.Delay(v, w) + procDelay + sim.Time(rng.Int63n(int64(maxJitter)))
			s.After(delay, func() { receive(w, v, d+1) })
		}
	}

	receive(root, -1, 0)
	s.Run(horizon)

	m.Coverage = float64(m.Reached) / float64(m.Nodes)
	if m.Deliveries > 0 {
		m.DupRate = float64(m.Duplicates) / float64(m.Deliveries)
	}
	return m
}
