package broadcast

import (
	"math/rand"

	"repro/internal/sim"
)

// AdversaryConfig selects which fraction of a network misbehaves.
// Malicious nodes receive but never relay; churned nodes are absent —
// missing frames entirely — for one seeded interval per run. The
// timing fields are in simulated seconds; zero values take the
// defaults below, chosen to overlap a dissemination that completes in
// tens of milliseconds.
type AdversaryConfig struct {
	MaliciousFraction float64
	ChurnFraction     float64
	// ChurnStartMaxSec bounds the uniform start of the absence window.
	ChurnStartMaxSec float64
	// AbsentMinSec/AbsentMaxSec bound its uniform duration.
	AbsentMinSec float64
	AbsentMaxSec float64
}

// Default churn timing (simulated seconds).
const (
	defaultChurnStartMax = 0.02
	defaultAbsentMin     = 0.005
	defaultAbsentMax     = 0.05
)

func (c AdversaryConfig) withDefaults() AdversaryConfig {
	if c.ChurnStartMaxSec <= 0 {
		c.ChurnStartMaxSec = defaultChurnStartMax
	}
	if c.AbsentMinSec <= 0 {
		c.AbsentMinSec = defaultAbsentMin
	}
	if c.AbsentMaxSec < c.AbsentMinSec {
		c.AbsentMaxSec = defaultAbsentMax
	}
	if c.AbsentMaxSec < c.AbsentMinSec {
		c.AbsentMaxSec = c.AbsentMinSec
	}
	return c
}

// Flags carries the per-node adversarial state of one run. A node w
// is absent during [AbsentFrom[w], AbsentUntil[w]); non-churned nodes
// have an empty interval. The root's flags are ignored at runtime
// (the engine exempts it), so flag derivation is root-independent.
type Flags struct {
	Malicious   []bool
	AbsentFrom  []sim.Time
	AbsentUntil []sim.Time
}

// Absent reports whether node w is churned out at instant t.
func (f *Flags) Absent(w int, t sim.Time) bool {
	return t >= f.AbsentFrom[w] && t < f.AbsentUntil[w]
}

// DeriveFlags assigns adversarial roles for an n-node run: a pure
// function of (seed, n, cfg) with its own rand stream, so every
// process sharding a sweep derives identical flags for a cell. Roles
// are exact counts (round(fraction*n)) drawn disjointly from a seeded
// permutation — malicious first, churned next — so a node is never
// both.
func DeriveFlags(seed int64, n int, cfg AdversaryConfig) *Flags {
	cfg = cfg.withDefaults()
	f := &Flags{
		Malicious:   make([]bool, n),
		AbsentFrom:  make([]sim.Time, n),
		AbsentUntil: make([]sim.Time, n),
	}
	rng := rand.New(rand.NewSource(mix(seed, 0x6164760a)))
	perm := rng.Perm(n)
	nm := int(cfg.MaliciousFraction*float64(n) + 0.5)
	nc := int(cfg.ChurnFraction*float64(n) + 0.5)
	if nm > n {
		nm = n
	}
	if nm+nc > n {
		nc = n - nm
	}
	for _, w := range perm[:nm] {
		f.Malicious[w] = true
	}
	for _, w := range perm[nm : nm+nc] {
		start := rng.Float64() * cfg.ChurnStartMaxSec
		dur := cfg.AbsentMinSec + rng.Float64()*(cfg.AbsentMaxSec-cfg.AbsentMinSec)
		f.AbsentFrom[w] = sim.Time(start * float64(sim.Second))
		f.AbsentUntil[w] = f.AbsentFrom[w] + sim.Time(dur*float64(sim.Second))
	}
	return f
}

// mix folds values into a well-spread 64-bit seed (splitmix64 steps),
// used to decorrelate the flag stream and per-cell seeds from the
// base experiment seed.
func mix(vals ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= uint64(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h >> 1) // keep it non-negative for rand.NewSource hygiene
}
