package broadcast

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Relay is a forwarding policy: given the node about to relay and the
// neighbor it received the message from (-1 at the root), it returns
// the node ids to forward to. Policies must be deterministic given the
// rng (draw from it in a fixed order, never iterate a map) and must
// not retain the returned slice's backing array across calls into
// engine state — the engine consumes it before the next Targets call.
type Relay interface {
	Name() string
	Targets(net *Net, node, from int, rng *rand.Rand) []int
}

// Flood forwards to every neighbor except the one the message came
// from: maximal coverage, maximal duplicates.
type Flood struct{}

// Name implements Relay.
func (Flood) Name() string { return "flood" }

// Targets implements Relay.
func (Flood) Targets(net *Net, node, from int, rng *rand.Rand) []int {
	out := make([]int, 0, len(net.Neighbors[node]))
	for _, w := range net.Neighbors[node] {
		if w != from {
			out = append(out, w)
		}
	}
	return out
}

// Gossip forwards to each neighbor (except the sender) independently
// with probability P.
type Gossip struct{ P float64 }

// Name implements Relay.
func (g Gossip) Name() string { return fmt.Sprintf("gossip(%g)", g.P) }

// Targets implements Relay.
func (g Gossip) Targets(net *Net, node, from int, rng *rand.Rand) []int {
	var out []int
	for _, w := range net.Neighbors[node] {
		if w == from {
			continue
		}
		if rng.Float64() < g.P {
			out = append(out, w)
		}
	}
	return out
}

// KRandom forwards to a uniform K-subset of the neighbors (except the
// sender); nodes with fewer than K eligible neighbors forward to all
// of them.
type KRandom struct{ K int }

// Name implements Relay.
func (k KRandom) Name() string { return fmt.Sprintf("krandom(%d)", k.K) }

// Targets implements Relay.
func (k KRandom) Targets(net *Net, node, from int, rng *rand.Rand) []int {
	out := make([]int, 0, len(net.Neighbors[node]))
	for _, w := range net.Neighbors[node] {
		if w != from {
			out = append(out, w)
		}
	}
	if len(out) <= k.K {
		return out
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[:k.K]
}

// Tree forwards along the channel-gain forest: node v relays to
// exactly the neighbors whose strongest in-link comes from v
// (net.BestIn[w] == v). The forest is a pure function of the frozen
// link gains and is not rooted at the broadcast root, so the root
// itself floods its neighborhood to seed every reachable subtree;
// after that each message travels parent-to-child only. The policy
// draws no randomness — channel losses are its only stochastic
// element — and duplicates arise only where the root's seed flood
// overlaps a forest edge.
type Tree struct{}

// Name implements Relay.
func (Tree) Name() string { return "tree" }

// Targets implements Relay.
func (Tree) Targets(net *Net, node, from int, rng *rand.Rand) []int {
	if from < 0 {
		return net.Neighbors[node]
	}
	var out []int
	for _, w := range net.Neighbors[node] {
		if w != from && net.BestIn[w] == node {
			out = append(out, w)
		}
	}
	return out
}

// Default policy parameters for bare "gossip"/"krandom" names.
const (
	defaultGossipP = 0.5
	defaultK       = 2
)

// ParsePolicy resolves a policy name: "flood", "tree", "gossip" or
// "gossip(P)", "krandom" or "krandom(K)". gossipP and k supply the
// defaults for the bare forms; pass 0 to use the package defaults.
func ParsePolicy(s string, gossipP float64, k int) (Relay, error) {
	if gossipP <= 0 {
		gossipP = defaultGossipP
	}
	if k <= 0 {
		k = defaultK
	}
	name, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("policy %q: missing closing parenthesis", s)
		}
		name, arg = s[:i], s[i+1:len(s)-1]
	}
	switch name {
	case "flood":
		if arg != "" {
			return nil, fmt.Errorf("policy %q: flood takes no parameter", s)
		}
		return Flood{}, nil
	case "tree":
		if arg != "" {
			return nil, fmt.Errorf("policy %q: tree takes no parameter", s)
		}
		return Tree{}, nil
	case "gossip":
		p := gossipP
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("policy %q: bad probability: %v", s, err)
			}
			p = v
		}
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("policy %q: probability must be in (0,1]", s)
		}
		return Gossip{P: p}, nil
	case "krandom":
		n := k
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("policy %q: bad fan-out: %v", s, err)
			}
			n = v
		}
		if n < 1 {
			return nil, fmt.Errorf("policy %q: fan-out must be >= 1", s)
		}
		return KRandom{K: n}, nil
	}
	return nil, fmt.Errorf("unknown relay policy %q (want flood, gossip[(p)], krandom[(k)], tree)", s)
}
