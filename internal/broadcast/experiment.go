package broadcast

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/experiments/exp"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// defaultPayload is the broadcast message size in bytes.
const defaultPayload = 1024

// latencyQuantiles are the per-cell first-receipt latency quantiles
// emitted as "lat" records.
var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// Workload adapts a broadcast dissemination sweep to exp.Experiment:
// one cell per (root × policy × repetition) tuple, so the family
// inherits the engine's parallel fan-out, sharding, coordination and
// caching without any broadcast-specific distribution code. Both the
// registered "broadcast" experiment (Default) and the scenario
// adapter's "broadcast" spec kind construct one of these.
type Workload struct {
	// Label is the experiment name; Desc its one-line description.
	Label string
	Desc  string
	// Build constructs the frozen dissemination graph for the
	// experiment seed; it must be a pure function of its arguments.
	Build func(seed int64, n int) (*Net, error)
	// Nodes sizes the network at a given scale; Roots picks the
	// injection points for an n-node network; Reps is the
	// per-(root,policy) repetition count.
	Nodes func(sc exp.Scale) int
	Roots func(n int) []int
	Reps  func(sc exp.Scale) int
	// Policies is the relay policy set swept per root.
	Policies []Relay
	// Adversary selects the misbehaving fraction of each run.
	Adversary AdversaryConfig
	// Trace turns on per-hop delivery capture for every cell when the
	// engine supplies no capture of its own (the scenario spec's
	// "trace" flag); trace records are appended after the cell's rows.
	Trace bool
}

// bcCell is the per-cell payload: indices into the sweep axes plus the
// node count (frozen at enumeration so RunCell needs no Scale).
type bcCell struct {
	root   int
	policy int // index into Policies
	rep    int
	nodes  int
}

// Name implements exp.Experiment.
func (w *Workload) Name() string { return w.Label }

// Describe implements exp.Experiment.
func (w *Workload) Describe() string { return w.Desc }

// Cells enumerates the (root × policy × rep) cross product, roots
// outermost and repetitions fastest. It is a pure function of
// (seed, sc), as the shard contract requires.
func (w *Workload) Cells(seed int64, sc exp.Scale) []exp.Cell {
	n := w.Nodes(sc)
	roots := w.Roots(n)
	reps := w.Reps(sc)
	cells := make([]exp.Cell, 0, len(roots)*len(w.Policies)*reps)
	for _, root := range roots {
		for p := range w.Policies {
			for rep := 0; rep < reps; rep++ {
				cells = append(cells, exp.Cell{
					Seed: seed,
					Data: bcCell{root: root, policy: p, rep: rep, nodes: n},
				})
			}
		}
	}
	return cells
}

// RunCellRecords executes one dissemination and returns its records:
// one "run" record with the cell's metrics, then the first-receipt
// latency quantiles as "lat" records. The run record guarantees the
// ≥1-record-per-cell contract.
func (w *Workload) RunCellRecords(c exp.Cell) []sink.Record {
	bc := c.Data.(bcCell)
	pol := w.Policies[bc.policy]
	net, err := w.Build(c.Seed, bc.nodes)
	if err != nil {
		return []sink.Record{{
			Series: "error",
			Fields: []sink.Field{sink.F("error", err.Error())},
		}}
	}
	// The run seed decorrelates the axes: every (root, policy, rep)
	// tuple rolls private loss coins, jitter and adversary flags.
	cs := mix(c.Seed, int64(bc.root), int64(bc.policy), int64(bc.rep))
	flags := DeriveFlags(cs, net.N, w.Adversary)
	cc, _ := c.Capture.(*trace.CellCapture)
	selfTrace := cc == nil && w.Trace
	if selfTrace {
		cc = trace.NewCellCapture()
	}
	var tap phy.Tracer
	var ch Channel
	if cc != nil {
		tap = cc
		if r := cc.Replay(); r != nil {
			ch = r
		}
	}
	m := RunTraced(net, bc.root, pol, flags, cs, tap, ch)
	recs := []sink.Record{{
		Series: "run",
		Fields: []sink.Field{
			sink.F("root", bc.root),
			sink.F("policy", pol.Name()),
			sink.F("rep", bc.rep),
			sink.F("nodes", m.Nodes),
			sink.F("reached", m.Reached),
			sink.F("coverage", m.Coverage),
			sink.F("deliveries", m.Deliveries),
			sink.F("dup_rate", m.DupRate),
			sink.F("depth", m.Depth),
		},
	}}
	if len(m.Latencies) > 0 {
		cdf := stats.NewCDF(m.Latencies)
		recs = append(recs, cdf.QuantileSeries(w.Label, "lat", latencyQuantiles)...)
	}
	if selfTrace {
		recs = append(recs, cc.Records()...)
	}
	return recs
}

// RunCell satisfies exp.Experiment; the engine prefers RunCellRecords
// and never calls this.
func (w *Workload) RunCell(c exp.Cell) sink.Record {
	return w.RunCellRecords(c)[0]
}

// PolicySummary aggregates the runs of one relay policy.
type PolicySummary struct {
	Policy         string
	Runs           int
	MeanCoverage   float64
	MeanDupRate    float64
	MeanDeliveries float64
	MaxDepth       int
}

// Summary is the reduction of a broadcast sweep: per-policy aggregates
// in first-appearance (cell) order.
type Summary struct {
	Scenario string
	Cells    int
	Errors   int
	ByPolicy []PolicySummary
}

// Print implements exp.Result.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "broadcast %s: %d cell(s)", s.Scenario, s.Cells)
	if s.Errors > 0 {
		fmt.Fprintf(w, ", %d error(s)", s.Errors)
	}
	fmt.Fprintln(w)
	for _, p := range s.ByPolicy {
		fmt.Fprintf(w, "  %-14s coverage %.3f  dup-rate %.3f  deliveries %.1f  max depth %d  (%d run(s))\n",
			p.Policy, p.MeanCoverage, p.MeanDupRate, p.MeanDeliveries, p.MaxDepth, p.Runs)
	}
}

// Reduce folds the ordered record stream into per-policy means. The
// stream arrives in cell order, so first-appearance policy order is
// deterministic (no map iteration in the output path).
func (w *Workload) Reduce(recs <-chan sink.Record) exp.Result {
	res := &Summary{Scenario: w.Label}
	idx := map[string]int{}
	for rec := range recs {
		switch rec.Series {
		case "run":
			res.Cells++
			name := rec.Text("policy")
			i, ok := idx[name]
			if !ok {
				i = len(res.ByPolicy)
				idx[name] = i
				res.ByPolicy = append(res.ByPolicy, PolicySummary{Policy: name})
			}
			p := &res.ByPolicy[i]
			p.Runs++
			p.MeanCoverage += rec.Float("coverage")
			p.MeanDupRate += rec.Float("dup_rate")
			p.MeanDeliveries += rec.Float("deliveries")
			if d := rec.Int("depth"); d > p.MaxDepth {
				p.MaxDepth = d
			}
		case "error":
			res.Cells++
			res.Errors++
		}
	}
	for i := range res.ByPolicy {
		p := &res.ByPolicy[i]
		if p.Runs > 0 {
			p.MeanCoverage /= float64(p.Runs)
			p.MeanDupRate /= float64(p.Runs)
			p.MeanDeliveries /= float64(p.Runs)
		}
	}
	return res
}

// Default is the registered "broadcast" experiment: a random layout
// sized by the scale's iteration count, three spread roots, the four
// built-in policies, and a 10%/10% malicious/churn adversary mix.
func Default() *Workload {
	return &Workload{
		Label: "broadcast",
		Desc:  "broadcast dissemination: (root x relay policy x rep) cells over a random layout with malicious and churning nodes",
		Build: func(seed int64, n int) (*Net, error) { return randomNet(seed, n), nil },
		Nodes: func(sc exp.Scale) int { return 8*sc.Iterations + 8 },
		Roots: func(n int) []int { return []int{0, n / 3, 2 * n / 3} },
		Reps:  func(sc exp.Scale) int { return sc.Iterations },
		Policies: []Relay{
			Flood{},
			Gossip{P: 0.7},
			KRandom{K: 3},
			Tree{},
		},
		Adversary: AdversaryConfig{MaliciousFraction: 0.1, ChurnFraction: 0.1},
	}
}

// randomNet freezes the dissemination graph of an n-node uniform
// random layout whose side scales with sqrt(n), keeping node density
// (hence typical degree) roughly constant across scales.
func randomNet(seed int64, n int) *Net {
	rng := rand.New(rand.NewSource(mix(seed, 0x6c61796f7574)))
	side := math.Sqrt(float64(n)) * 60
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	nw := topology.New(seed, phy.DefaultConfig(), pos, phy.Rate11)
	return NewNet(nw, phy.Rate11, defaultPayload)
}
