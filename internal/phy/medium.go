package phy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Broadcast is the destination id used by broadcast frames (probes).
const Broadcast = -1

// Kind labels the role of a frame on the air.
type Kind int

// Frame kinds.
const (
	KindData Kind = iota
	KindAck
	KindProbe // network-layer broadcast probe
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindProbe:
		return "probe"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Frame is a unit of transmission on the medium. Bytes counts MAC payload
// for data/probe frames and the whole frame for control frames.
type Frame struct {
	Src, Dst int
	Kind     Kind
	Bytes    int
	Rate     Rate
	Seq      int64
	Payload  any
}

// Broadcast reports whether the frame is addressed to all stations.
func (f *Frame) Broadcast() bool { return f.Dst == Broadcast }

// Airtime returns the on-air duration of the frame.
func (f *Frame) Airtime() sim.Time {
	if f.Kind == KindAck {
		return ControlAirtime(f.Rate, f.Bytes)
	}
	return Airtime(f.Rate, f.Bytes)
}

// Listener receives PHY indications. The MAC implements this.
type Listener interface {
	// CarrierSense reports medium busy/idle transitions as seen by this
	// radio's energy detector (own transmissions count as busy).
	CarrierSense(busy bool)
	// Receive delivers a successfully decoded frame. Frames addressed to
	// other stations are delivered too; the MAC filters.
	Receive(f *Frame)
	// TxDone fires when this radio's transmission leaves the air.
	TxDone(f *Frame)
}

// LossCause labels why a frame was not delivered in a Decision.
type LossCause int

// Loss causes, in Decision order. CauseNone marks a delivered frame.
const (
	CauseNone     LossCause = iota // delivered
	CauseSINR                      // interference/fading below decode threshold
	CauseChannel                   // Bernoulli channel-error process
	CauseUnlocked                  // receiver never locked (busy, transmitting, weak)
)

func (c LossCause) String() string {
	switch c {
	case CauseNone:
		return "delivered"
	case CauseSINR:
		return "sinr"
	case CauseChannel:
		return "channel"
	case CauseUnlocked:
		return "unlocked"
	}
	return fmt.Sprintf("LossCause(%d)", int(c))
}

// Decision is one per-link delivery decision: the outcome of a frame at
// one receiving radio. Unicast frames decide at their intended
// destination; broadcast frames decide once per radio that locked onto
// them (Dst is the observer's id). Overheard unicast frames — decodable
// at a third party — are not decisions: the link src->dst is the unit
// the paper's model predicts.
type Decision struct {
	T         sim.Time
	Src, Dst  int
	Seq       int64
	Kind      Kind
	Rate      Rate
	Bytes     int
	Delivered bool
	Cause     LossCause // CauseNone iff Delivered
}

// Tracer observes every per-link delivery decision the medium makes.
// Decide is called from the simulator's event loop in deterministic
// order (arrival-end processing iterates radios in id order), so an
// append-only tracer records the same sequence on every run of the same
// seed.
type Tracer interface {
	Decide(d Decision)
}

// Channel is the loss-decision interface behind the Bernoulli
// channel-error draw. The default stochastic channel consumes exactly
// one rng draw iff p > 0; any replacement must mirror that contract —
// the same rng stream feeds the fade draws, so an unmirrored draw
// shifts every later reception. p is the channel loss probability the
// medium computed for this frame on src->dst.
type Channel interface {
	Lost(f *Frame, dst int, p float64, rng *rand.Rand) bool
}

// LinkCounters tallies per-directed-link PHY outcomes, used by tests and
// by experiments that need ground-truth loss breakdowns.
type LinkCounters struct {
	Sent        int64 // frames transmitted toward this destination
	Received    int64 // frames decoded by the destination
	SINRDrop    int64 // frames lost to interference (collisions/capture failure)
	ChannelDrop int64 // frames lost to the Bernoulli channel-error process
	Unlocked    int64 // frames that never locked (receiver busy or too weak)
}

// Config bundles the radio parameters shared by every node in a network.
type Config struct {
	TxPowerDBm  float64 // transmit power (the testbed fixes 19 dBm)
	NoiseDBm    float64 // thermal noise floor
	CSThreshDBm float64 // energy-detection carrier-sense threshold
	LockSensDBm float64 // minimum power to lock onto a frame
	CaptureDB   float64 // preamble-capture margin for re-locking
	// FadeSigmaDB adds zero-mean Gaussian fading (in dB) to the SINR of
	// each reception. Fast fading is what turns marginal capture into
	// the *partial* interference the paper measures (LIRs between 0.5
	// and 1); zero disables it.
	FadeSigmaDB float64
	Prop        Propagation
}

// DefaultConfig mirrors the testbed's fixed 19 dBm transmit power with
// typical Atheros-era receiver characteristics.
func DefaultConfig() Config {
	return Config{
		TxPowerDBm:  19,
		NoiseDBm:    -95,
		CSThreshDBm: -92, // preamble-detection CS: sense range covers decode range
		LockSensDBm: -92,
		CaptureDB:   5, // message-in-message relock margin
		FadeSigmaDB: 2,
		Prop:        DefaultPropagation(),
	}
}

// Medium is the shared wireless channel. It owns every radio, computes
// pairwise gains from the propagation model plus per-pair shadowing, and
// implements the SINR reception model with physical-layer capture.
//
// Propagation delay is ignored (sub-microsecond at mesh scale) and frames
// arrive at all radios at the instant transmission starts.
//
// Per-directed-link state consulted on the per-frame receive path (link
// counters, channel error rates) lives in dense slices indexed by radio
// id once the medium freezes; the map forms exist only for staging before
// the radio count is known.
type Medium struct {
	sim     *sim.Sim
	cfg     Config
	noiseMW float64
	capture float64 // linear capture factor
	lockMW  float64 // linear lock sensitivity
	csMW    float64 // linear carrier-sense threshold
	rng     *rand.Rand

	radios []*Radio
	shadow map[[2]int]float64 // symmetric per-pair shadowing, dB; cold (gain build only)
	ber    map[[2]int]float64 // staging for per-directed-link bit error rates
	gain   [][]float64        // cached rx power in mW; built lazily
	table  *GainTable         // frozen gain table backing gain (possibly shared)

	// Dense [src*n+dst] mirrors, built when the medium freezes.
	ln1mBER  []float64 // log1p(-ber); 0 means a clean link
	counters []LinkCounters

	tracer  Tracer  // optional per-link decision hook; nil = off
	channel Channel // optional loss-decision override; nil = stochastic
}

// NewMedium creates an empty medium on the given simulator.
func NewMedium(s *sim.Sim, cfg Config) *Medium {
	return &Medium{
		sim:     s,
		cfg:     cfg,
		noiseMW: DBmToMW(cfg.NoiseDBm),
		capture: DBmToMW(cfg.CaptureDB), // dB ratio -> linear
		lockMW:  DBmToMW(cfg.LockSensDBm),
		csMW:    DBmToMW(cfg.CSThreshDBm),
		rng:     s.NewStream(),
		shadow:  make(map[[2]int]float64),
		ber:     make(map[[2]int]float64),
	}
}

// Sim returns the simulator driving this medium.
func (m *Medium) Sim() *sim.Sim { return m.sim }

// SetTracer installs (or, with nil, removes) the per-link decision hook.
// Capture is free when off: the receive path pays one nil check.
func (m *Medium) SetTracer(t Tracer) { m.tracer = t }

// SetChannel replaces the stochastic Bernoulli channel-error process
// with c (nil restores the default). Replay media install their
// recorded trace here.
func (m *Medium) SetChannel(c Channel) { m.channel = c }

// Config returns the radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// AddRadio creates a radio at pos. All radios must be added before the
// first transmission; the gain matrix is frozen on first use.
func (m *Medium) AddRadio(pos Position) *Radio {
	if m.gain != nil {
		panic("phy: AddRadio after medium in use")
	}
	r := &Radio{
		id:  len(m.radios),
		pos: pos,
		m:   m,
	}
	m.radios = append(m.radios, r)
	return r
}

// Radios returns the radios on this medium in id order.
func (m *Medium) Radios() []*Radio { return m.radios }

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SetShadow fixes the symmetric shadowing offset (dB, positive = extra
// loss) between two radios. Topologies use this to carve walls and floors.
func (m *Medium) SetShadow(a, b int, db float64) {
	if m.gain != nil {
		panic("phy: SetShadow after medium in use")
	}
	m.shadow[pairKey(a, b)] = db
}

// SetBER sets the channel bit error rate on the directed link a->b.
// Frame loss from channel errors is 1-(1-ber)^bits, so longer frames
// (DATA) suffer more than short ones (ACK), as in real links.
func (m *Medium) SetBER(a, b int, ber float64) {
	m.ber[[2]int{a, b}] = ber
	if m.ln1mBER != nil {
		m.ln1mBER[a*len(m.radios)+b] = math.Log1p(-ber)
	}
}

// BER returns the channel bit error rate on the directed link a->b.
func (m *Medium) BER(a, b int) float64 { return m.ber[[2]int{a, b}] }

// ChannelLossProb returns the probability that a frame of frameBytes total
// bytes is lost to channel errors on a->b. This is the simulator's ground
// truth against which the paper's channel-loss estimator is scored.
func (m *Medium) ChannelLossProb(a, b int, frameBytes int) float64 {
	var ln float64
	if m.ln1mBER != nil {
		ln = m.ln1mBER[a*len(m.radios)+b]
	} else if ber := m.ber[[2]int{a, b}]; ber > 0 {
		ln = math.Log1p(-ber)
	}
	if ln == 0 {
		return 0
	}
	// 1-(1-ber)^bits computed through Expm1 to spare a Pow per frame.
	return -math.Expm1(float64(8*frameBytes) * ln)
}

// FadeLossProb returns the probability that a frame at rate r on a->b is
// lost to fading alone (clean channel, no interference): the chance the
// per-reception Gaussian fade pushes the SNR below the decode threshold.
func (m *Medium) FadeLossProb(a, b int, r Rate) float64 {
	snr := m.RxPowerDBm(a, b) - m.cfg.NoiseDBm
	margin := snr - r.MinSINRdB()
	if m.cfg.FadeSigmaDB <= 0 {
		if margin >= 0 {
			return 0
		}
		return 1
	}
	// P(N(0,sigma) < -margin) via the complementary error function.
	return 0.5 * math.Erfc(margin/(m.cfg.FadeSigmaDB*math.Sqrt2))
}

// FrameLossProb combines the Bernoulli channel-error process and fading
// into the total clean-channel frame loss on a->b — the ground truth the
// paper's channel-loss estimator is trying to recover.
func (m *Medium) FrameLossProb(a, b int, r Rate, frameBytes int) float64 {
	pBits := m.ChannelLossProb(a, b, frameBytes)
	pFade := m.FadeLossProb(a, b, r)
	return 1 - (1-pBits)*(1-pFade)
}

// GainMW returns the received power at radio b when radio a transmits.
func (m *Medium) GainMW(a, b int) float64 {
	m.freeze()
	return m.gain[a][b]
}

// RxPowerDBm returns the received power in dBm at b when a transmits.
func (m *Medium) RxPowerDBm(a, b int) float64 { return MWToDBm(m.GainMW(a, b)) }

// SetGainTable installs a precomputed gain table, sparing the O(n²)
// path-loss rebuild when many simulations share one mesh layout. It must
// be called before the medium freezes, and the table must have been
// built for the same radio count, positions, shadowing and config the
// medium would otherwise compute from — the topology cache guarantees
// this by keying tables on the layout inputs.
func (m *Medium) SetGainTable(t *GainTable) {
	if m.gain != nil {
		panic("phy: SetGainTable after medium in use")
	}
	m.table = t
}

// GainTable returns the medium's frozen gain table, freezing the medium
// if needed. The table is immutable and safe to share across media.
func (m *Medium) GainTable() *GainTable {
	m.freeze()
	return m.table
}

// freeze builds the gain matrix and the dense per-link mirrors; radios
// can no longer be added afterwards.
func (m *Medium) freeze() {
	if m.gain != nil {
		return
	}
	n := len(m.radios)
	if m.table == nil {
		pos := make([]Position, n)
		for i, r := range m.radios {
			pos[i] = r.pos
		}
		m.table = BuildGainTable(m.cfg, pos, m.shadow)
	} else {
		if m.table.n != n {
			panic(fmt.Sprintf("phy: gain table built for %d radios, medium has %d", m.table.n, n))
		}
		if len(m.shadow) > 0 {
			// Shadows staged via SetShadow would be silently ignored in
			// favour of the preset table — the builder must fold them
			// into BuildGainTable instead.
			panic("phy: SetShadow combined with SetGainTable; bake shadowing into the table")
		}
	}
	m.gain = make([][]float64, n) // non-nil marks the medium frozen
	for i := range m.gain {
		m.gain[i] = m.table.mw[i*n : (i+1)*n]
	}
	m.ln1mBER = make([]float64, n*n)
	for k, ber := range m.ber {
		if ber > 0 {
			m.ln1mBER[k[0]*n+k[1]] = math.Log1p(-ber)
		}
	}
	m.counters = make([]LinkCounters, n*n)
}

// Counters returns the counter block for a->b. Calling it freezes the
// medium (radios must all have been added).
func (m *Medium) Counters(a, b int) *LinkCounters {
	m.freeze()
	return &m.counters[a*len(m.radios)+b]
}

// ResetCounters clears all link counters (e.g. between experiment phases).
func (m *Medium) ResetCounters() {
	for i := range m.counters {
		m.counters[i] = LinkCounters{}
	}
}

// transmission is a frame in flight.
type transmission struct {
	frame *Frame
	src   *Radio
	end   sim.Time
}

// Transmit puts f on the air from radio r. The MAC must ensure r is not
// already transmitting. TxDone fires on r's listener when the frame ends.
func (m *Medium) Transmit(r *Radio, f *Frame) {
	if r.transmitting {
		panic("phy: Transmit while already transmitting")
	}
	m.freeze()
	dur := f.Airtime()
	tx := &transmission{frame: f, src: r, end: m.sim.Now() + dur}
	r.transmitting = true
	r.updateCS()
	if !f.Broadcast() {
		m.Counters(f.Src, f.Dst).Sent++
	}
	// A radio cannot receive while transmitting: abort any lock in progress.
	if r.lock.tx != nil {
		r.lock = reception{}
	}
	for _, o := range m.radios {
		if o == r {
			continue
		}
		p := m.gain[r.id][o.id]
		if p < m.noiseMW/100 {
			continue // far below noise: no observable effect
		}
		o.arrivalStart(tx, p)
	}
	m.sim.Schedule(tx.end, func() {
		for _, o := range m.radios {
			if o == r {
				continue
			}
			o.arrivalEnd(tx)
		}
		r.transmitting = false
		r.updateCS()
		if r.listener != nil {
			r.listener.TxDone(f)
		}
	})
}

// channelLost decides the channel-error outcome for a decoded frame on
// src->dst: the installed Channel if any, else one Bernoulli draw
// (consumed iff p > 0 — replacements must mirror this, see Channel).
func (m *Medium) channelLost(f *Frame, dst int) bool {
	bytes := f.Bytes
	if f.Kind != KindAck {
		bytes += MACHeaderBytes
	}
	p := m.ChannelLossProb(f.Src, dst, bytes)
	if m.channel != nil {
		return m.channel.Lost(f, dst, p, m.rng)
	}
	return p > 0 && m.rng.Float64() < p
}

// arrival is one frame currently on the air as seen by a radio.
type arrival struct {
	tx *transmission
	p  float64 // received power, mW
}

// Radio is one station's PHY. All state transitions are driven by the
// medium; the MAC interacts through Transmit, CSBusy and the Listener.
type Radio struct {
	id  int
	pos Position
	m   *Medium

	listener Listener

	transmitting bool
	busy         bool // last CS indication

	sensedMW float64
	// arrivals holds the frames currently on the air at this radio. A
	// small slice beats a map here: the receive path scans it per frame,
	// and a slice also gives interference sums a deterministic order
	// (map iteration would randomize float rounding run to run).
	arrivals []arrival

	lock reception
}

// reception tracks the frame a radio is locked onto and the worst
// interference it experienced. A zero tx means no lock.
type reception struct {
	tx          *transmission
	powerMW     float64
	maxInterfMW float64
}

// ID returns the radio's id (index on the medium).
func (r *Radio) ID() int { return r.id }

// Pos returns the radio's position.
func (r *Radio) Pos() Position { return r.pos }

// SetListener attaches the MAC.
func (r *Radio) SetListener(l Listener) { r.listener = l }

// CSBusy reports whether the energy detector currently senses the medium
// busy (own transmissions included).
func (r *Radio) CSBusy() bool { return r.transmitting || r.sensedMW >= r.m.csMW }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.transmitting }

func (r *Radio) updateCS() {
	now := r.CSBusy()
	if now != r.busy {
		r.busy = now
		if r.listener != nil {
			r.listener.CarrierSense(now)
		}
	}
}

func (r *Radio) interference(except *transmission) float64 {
	var sum float64
	for i := range r.arrivals {
		if r.arrivals[i].tx != except {
			sum += r.arrivals[i].p
		}
	}
	return sum
}

func (r *Radio) arrivalStart(tx *transmission, p float64) {
	r.arrivals = append(r.arrivals, arrival{tx: tx, p: p})
	r.sensedMW += p
	lockSens := r.m.lockMW
	switch {
	case r.transmitting:
		// Half-duplex: the frame is interference for later, nothing to do.
	case r.lock.tx == nil && p >= lockSens:
		r.lock = reception{tx: tx, powerMW: p, maxInterfMW: r.interference(tx)}
	case r.lock.tx != nil && p >= lockSens && p >= r.lock.powerMW*r.m.capture:
		// Preamble capture: a much stronger late arrival steals the
		// receiver. The previous frame is lost.
		r.countLoss(r.lock.tx, lossSINR)
		r.trace(r.lock.tx, false, CauseSINR)
		r.lock = reception{tx: tx, powerMW: p, maxInterfMW: r.interference(tx)}
	case r.lock.tx != nil:
		if i := r.interference(r.lock.tx); i > r.lock.maxInterfMW {
			r.lock.maxInterfMW = i
		}
	default:
		// Too weak to lock: pure interference.
	}
	r.updateCS()
}

type lossKind int

const (
	lossSINR lossKind = iota
	lossChannel
	lossUnlocked
)

func (r *Radio) countLoss(tx *transmission, k lossKind) {
	f := tx.frame
	if f.Broadcast() || f.Dst != r.id {
		return
	}
	c := r.m.Counters(f.Src, f.Dst)
	switch k {
	case lossSINR:
		c.SINRDrop++
	case lossChannel:
		c.ChannelDrop++
	case lossUnlocked:
		c.Unlocked++
	}
}

// trace reports one delivery decision for tx at this radio to the
// installed tracer. Unicast frames trace only at their intended
// destination; broadcast frames trace at every radio that locked onto
// them (Dst is the observer). With no tracer installed the cost is one
// nil check.
func (r *Radio) trace(tx *transmission, delivered bool, cause LossCause) {
	t := r.m.tracer
	if t == nil {
		return
	}
	f := tx.frame
	if !f.Broadcast() && f.Dst != r.id {
		return // overheard unicast: not a per-link decision
	}
	t.Decide(Decision{
		T:         r.m.sim.Now(),
		Src:       f.Src,
		Dst:       r.id,
		Seq:       f.Seq,
		Kind:      f.Kind,
		Rate:      f.Rate,
		Bytes:     f.Bytes,
		Delivered: delivered,
		Cause:     cause,
	})
}

func (r *Radio) arrivalEnd(tx *transmission) {
	idx := -1
	for i := range r.arrivals {
		if r.arrivals[i].tx == tx {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	p := r.arrivals[idx].p
	last := len(r.arrivals) - 1
	r.arrivals[idx] = r.arrivals[last]
	r.arrivals[last] = arrival{}
	r.arrivals = r.arrivals[:last]
	r.sensedMW -= p
	if r.sensedMW < 0 {
		r.sensedMW = 0
	}
	if r.lock.tx == tx {
		r.finishReception()
	} else if r.lock.tx == nil && (tx.frame.Dst == r.id) {
		// The intended receiver never locked (busy, transmitting, or
		// the signal was too weak).
		r.countLoss(tx, lossUnlocked)
		r.trace(tx, false, CauseUnlocked)
	}
	r.updateCS()
}

func (r *Radio) finishReception() {
	rec := r.lock
	r.lock = reception{}
	f := rec.tx.frame
	sinrDB := MWToDBm(rec.powerMW / (r.m.noiseMW + rec.maxInterfMW))
	if sigma := r.m.cfg.FadeSigmaDB; sigma > 0 {
		sinrDB += r.m.rng.NormFloat64() * sigma
	}
	if sinrDB < f.Rate.MinSINRdB() {
		r.countLoss(rec.tx, lossSINR)
		r.trace(rec.tx, false, CauseSINR)
		return
	}
	if r.m.channelLost(f, r.id) {
		r.countLoss(rec.tx, lossChannel)
		r.trace(rec.tx, false, CauseChannel)
		return
	}
	if !f.Broadcast() && f.Dst == r.id {
		r.m.Counters(f.Src, f.Dst).Received++
	}
	r.trace(rec.tx, true, CauseNone)
	if r.listener != nil {
		r.listener.Receive(f)
	}
}
