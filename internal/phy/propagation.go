package phy

import (
	"math"
)

// Position is a node location in metres. Z can encode floor separation in
// indoor deployments.
type Position struct {
	X, Y, Z float64
}

// Distance returns the Euclidean distance between two positions in metres.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Propagation is a log-distance path-loss model with optional per-pair
// shadowing: PL(d) = PL0 + 10 n log10(d) + X_{ab}, where X is a fixed
// (symmetric) offset per node pair supplied by the topology. A fixed
// offset, rather than a random draw per packet, matches the quasi-static
// link qualities that the paper's minutes-timescale estimation assumes.
type Propagation struct {
	// PL0dB is the path loss at 1 metre.
	PL0dB float64
	// Exponent is the path-loss exponent n.
	Exponent float64
}

// DefaultPropagation reflects an obstructed urban/indoor environment like
// the paper's office-building testbed.
func DefaultPropagation() Propagation {
	return Propagation{PL0dB: 40, Exponent: 3.0}
}

// PathLossDB returns the path loss in dB over distance d metres with an
// extra shadowing term shadowDB. Distances under 1 m clamp to 1 m.
func (p Propagation) PathLossDB(d, shadowDB float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.PL0dB + 10*p.Exponent*math.Log10(d) + shadowDB
}

// RangeFor inverts the model: the distance at which a transmitter at
// txPowerDBm is received at exactly rxDBm (zero shadowing). Useful for
// constructing CS/IA/NF geometries.
func (p Propagation) RangeFor(txPowerDBm, rxDBm float64) float64 {
	return math.Pow(10, (txPowerDBm-rxDBm-p.PL0dB)/(10*p.Exponent))
}

// DBmToMW converts dBm to milliwatts.
func DBmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MWToDBm converts milliwatts to dBm. Zero or negative power maps to
// -infinity-ish (-300 dBm) to keep arithmetic finite.
func MWToDBm(mw float64) float64 {
	if mw <= 0 {
		return -300
	}
	return 10 * math.Log10(mw)
}
