package phy

import (
	"testing"

	"repro/internal/sim"
)

func TestAirtimeKnownValues(t *testing.T) {
	// 1470-byte payload at 1 Mb/s: preamble 192us + (1470+28)*8 us.
	got := Airtime(Rate1, 1470)
	want := 192*sim.Microsecond + sim.Time((1470+28)*8)*sim.Microsecond
	if got != want {
		t.Fatalf("Airtime(1Mbps,1470) = %v, want %v", got, want)
	}
}

func TestAirtimeScalesInverselyWithRate(t *testing.T) {
	a1 := Airtime(Rate1, 1000) - 192*sim.Microsecond
	a11 := Airtime(Rate11, 1000) - 192*sim.Microsecond
	ratio := float64(a1) / float64(a11)
	if ratio < 10.9 || ratio > 11.1 {
		t.Fatalf("payload airtime ratio 1/11 Mbps = %v, want ~11", ratio)
	}
}

func TestControlAirtimeACK(t *testing.T) {
	// ACK (14 bytes) at 1 Mb/s: 192us PLCP + 112us payload.
	got := ControlAirtime(Rate1, ACKBytes)
	if got != 304*sim.Microsecond {
		t.Fatalf("ACK airtime = %v, want 304us", got)
	}
}

func TestOFDMUsesShortPreamble(t *testing.T) {
	if Airtime(Rate54, 0) >= Airtime(Rate1, 0) {
		t.Fatal("OFDM frame with no payload should be shorter than DSSS")
	}
}

func TestMinSINRMonotoneInRate(t *testing.T) {
	dsss := []Rate{Rate1, Rate2, Rate5_5, Rate11}
	for i := 1; i < len(dsss); i++ {
		if dsss[i].MinSINRdB() <= dsss[i-1].MinSINRdB() {
			t.Fatalf("SINR threshold not increasing: %v vs %v", dsss[i-1], dsss[i])
		}
	}
}

func TestControlRate(t *testing.T) {
	if ControlRate(Rate11) != Rate1 {
		t.Fatal("CCK frames must be ACKed at 1 Mb/s")
	}
	if ControlRate(Rate54) != Rate6 {
		t.Fatal("OFDM frames must be ACKed at 6 Mb/s")
	}
}

func TestRateString(t *testing.T) {
	if Rate11.String() != "11Mbps" {
		t.Fatalf("String = %q", Rate11.String())
	}
	if Rate(99).String() != "Rate(99)" {
		t.Fatalf("out-of-range String = %q", Rate(99).String())
	}
}

func TestDIFSRelation(t *testing.T) {
	if DIFS != SIFS+2*SlotTime {
		t.Fatal("DIFS must equal SIFS + 2 slots")
	}
}
