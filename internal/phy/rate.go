// Package phy models the 802.11b/g physical layer: modulation rates and
// their airtime cost, log-distance radio propagation with shadowing, and a
// shared medium that delivers frames between radios using an SINR reception
// model with physical-layer capture.
//
// The paper's evaluation runs 802.11g hardware at the 1 Mb/s and 11 Mb/s
// DSSS/CCK modulations with RTS/CTS disabled; this package reproduces those
// timings (long-preamble DSSS PLCP, 20 us slots) and adds the ERP-OFDM
// rates for completeness.
package phy

import (
	"fmt"

	"repro/internal/sim"
)

// Rate identifies an 802.11 modulation data rate.
type Rate int

// Supported modulation rates. Rate1 and Rate11 are the ones exercised by
// the paper's evaluation.
const (
	Rate1   Rate = iota // 1 Mb/s DSSS (DBPSK)
	Rate2               // 2 Mb/s DSSS (DQPSK)
	Rate5_5             // 5.5 Mb/s CCK
	Rate11              // 11 Mb/s CCK
	Rate6               // 6 Mb/s ERP-OFDM
	Rate12              // 12 Mb/s ERP-OFDM
	Rate24              // 24 Mb/s ERP-OFDM
	Rate54              // 54 Mb/s ERP-OFDM
	numRates
)

// rateInfo captures the per-rate constants used by the airtime and
// reception models.
type rateInfo struct {
	name    string
	bps     float64 // payload bits per second
	minSINR float64 // dB required to decode
	ofdm    bool
}

var rates = [numRates]rateInfo{
	Rate1:   {"1Mbps", 1e6, 4.0, false},
	Rate2:   {"2Mbps", 2e6, 7.0, false},
	Rate5_5: {"5.5Mbps", 5.5e6, 9.0, false},
	Rate11:  {"11Mbps", 11e6, 12.0, false},
	Rate6:   {"6Mbps", 6e6, 8.0, true},
	Rate12:  {"12Mbps", 12e6, 11.0, true},
	Rate24:  {"24Mbps", 24e6, 16.0, true},
	Rate54:  {"54Mbps", 54e6, 25.0, true},
}

// String implements fmt.Stringer.
func (r Rate) String() string {
	if r < 0 || r >= numRates {
		return fmt.Sprintf("Rate(%d)", int(r))
	}
	return rates[r].name
}

// BitsPerSecond returns the nominal modulation rate in bits per second.
func (r Rate) BitsPerSecond() float64 { return rates[r].bps }

// MinSINRdB returns the SINR, in dB, required to decode a frame sent at r.
// Higher modulations need cleaner channels, which is what makes capture
// stronger at 1 Mb/s than at 11 Mb/s in the paper's IA/NF topologies.
func (r Rate) MinSINRdB() float64 { return rates[r].minSINR }

// Valid reports whether r names a supported rate.
func (r Rate) Valid() bool { return r >= 0 && r < numRates }

// 802.11b/g MAC/PHY timing constants (long-slot compatibility mode, long
// DSSS preamble), matching the Bianchi-style analyses the paper builds on.
const (
	SlotTime     = 20 * sim.Microsecond
	SIFS         = 10 * sim.Microsecond
	DIFS         = SIFS + 2*SlotTime // 50 us
	PLCPPreamble = 144 * sim.Microsecond
	PLCPHeader   = 48 * sim.Microsecond
	// OFDM frames use a much shorter preamble.
	OFDMPreamble = 20 * sim.Microsecond

	// CWMin and CWMax are the 802.11b contention window bounds; the
	// backoff stage m at which the window stops doubling follows from
	// them (CWMax = 2^m * (CWMin+1) - 1 with m = 5).
	CWMin = 31
	CWMax = 1023

	// MACHeaderBytes is the size of an 802.11 data header plus FCS.
	MACHeaderBytes = 28
	// ACKBytes is the size of an 802.11 ACK control frame.
	ACKBytes = 14
)

// Airtime returns the time occupied on the medium by a frame carrying
// payloadBytes of MAC payload (the MAC header and FCS are added here) at
// rate r, including the PLCP preamble and header.
func Airtime(r Rate, payloadBytes int) sim.Time {
	bits := float64(8 * (payloadBytes + MACHeaderBytes))
	return plcp(r) + sim.Time(bits/rates[r].bps*1e9)
}

// ControlAirtime returns the airtime of a control frame (e.g. an ACK) of
// frameBytes total bytes at rate r. Control frames carry no MAC data
// header beyond their own fixed format.
func ControlAirtime(r Rate, frameBytes int) sim.Time {
	bits := float64(8 * frameBytes)
	return plcp(r) + sim.Time(bits/rates[r].bps*1e9)
}

func plcp(r Rate) sim.Time {
	if rates[r].ofdm {
		return OFDMPreamble
	}
	return PLCPPreamble + PLCPHeader
}

// ControlRate returns the basic rate used to answer a frame received at r:
// DSSS/CCK frames are acknowledged at 1 Mb/s, OFDM frames at 6 Mb/s. The
// paper's probing system mirrors this by sending ACK-emulating broadcast
// probes at 1 Mb/s.
func ControlRate(r Rate) Rate {
	if rates[r].ofdm {
		return Rate6
	}
	return Rate1
}
