package phy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// recorder is a test Listener that records PHY indications.
type recorder struct {
	received []*Frame
	txDone   int
	busyLog  []bool
}

func (r *recorder) CarrierSense(b bool) { r.busyLog = append(r.busyLog, b) }
func (r *recorder) Receive(f *Frame)    { r.received = append(r.received, f) }
func (r *recorder) TxDone(*Frame)       { r.txDone++ }

func twoRadios(t *testing.T, d float64) (*sim.Sim, *Medium, *Radio, *Radio, *recorder, *recorder) {
	t.Helper()
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	a := m.AddRadio(Position{})
	b := m.AddRadio(Position{X: d})
	ra, rb := &recorder{}, &recorder{}
	a.SetListener(ra)
	b.SetListener(rb)
	return s, m, a, b, ra, rb
}

func TestCleanDelivery(t *testing.T) {
	s, m, a, _, ra, rb := twoRadios(t, 50)
	f := &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate11}
	m.Transmit(a, f)
	s.Run(sim.Second)
	if len(rb.received) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(rb.received))
	}
	if ra.txDone != 1 {
		t.Fatalf("sender TxDone fired %d times, want 1", ra.txDone)
	}
	c := m.Counters(0, 1)
	if c.Sent != 1 || c.Received != 1 {
		t.Fatalf("counters = %+v", *c)
	}
}

func TestOutOfRangeNoDelivery(t *testing.T) {
	s, m, a, _, _, rb := twoRadios(t, 5000)
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate1})
	s.Run(sim.Second)
	if len(rb.received) != 0 {
		t.Fatal("frame delivered far beyond radio range")
	}
}

func TestCarrierSenseTransitions(t *testing.T) {
	s, m, a, _, _, rb := twoRadios(t, 50)
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate11})
	s.Run(sim.Second)
	if len(rb.busyLog) != 2 || !rb.busyLog[0] || rb.busyLog[1] {
		t.Fatalf("busy transitions = %v, want [true false]", rb.busyLog)
	}
}

func TestSenderSensesOwnTransmission(t *testing.T) {
	s, m, a, _, ra, _ := twoRadios(t, 50)
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate11})
	if !a.CSBusy() {
		t.Fatal("transmitter does not sense itself busy")
	}
	s.Run(sim.Second)
	if a.CSBusy() {
		t.Fatal("still busy after transmission ended")
	}
	if len(ra.busyLog) != 2 {
		t.Fatalf("sender busy transitions = %v", ra.busyLog)
	}
}

// Two equal-power transmitters colliding at a middle receiver must destroy
// both frames (no capture margin).
func TestCollisionAtEqualPower(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	a := m.AddRadio(Position{X: -50})
	c := m.AddRadio(Position{})
	b := m.AddRadio(Position{X: 50})
	rc := &recorder{}
	c.SetListener(rc)
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate11})
	m.Transmit(b, &Frame{Src: 2, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate11})
	s.Run(sim.Second)
	if len(rc.received) != 0 {
		t.Fatalf("receiver decoded %d frames from an equal-power collision", len(rc.received))
	}
	if m.Counters(0, 1).SINRDrop != 1 {
		t.Fatalf("collision not recorded: %+v", *m.Counters(0, 1))
	}
}

// A strong local frame must survive a weak distant interferer (capture).
func TestCaptureStrongFrameSurvives(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	a := m.AddRadio(Position{})               // sender
	b := m.AddRadio(Position{X: 20})          // receiver, very close
	i := m.AddRadio(Position{X: 20, Y: 1000}) // distant interferer
	rb := &recorder{}
	b.SetListener(rb)
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1000, Rate: Rate1})
	m.Transmit(i, &Frame{Src: 2, Dst: Broadcast, Kind: KindData, Bytes: 1000, Rate: Rate1})
	s.Run(sim.Second)
	if len(rb.received) != 1 {
		t.Fatal("strong frame did not capture over weak interferer")
	}
}

// Preamble capture: a much stronger frame arriving later steals the receiver.
func TestPreambleCaptureRelock(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	far := m.AddRadio(Position{X: 120})
	rx := m.AddRadio(Position{})
	near := m.AddRadio(Position{X: 10})
	rr := &recorder{}
	rx.SetListener(rr)
	// Weak frame starts first, strong frame arrives mid-reception.
	m.Transmit(far, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 1400, Rate: Rate1})
	s.After(sim.Millisecond, func() {
		m.Transmit(near, &Frame{Src: 2, Dst: 1, Kind: KindData, Bytes: 200, Rate: Rate1})
	})
	s.Run(sim.Second)
	if len(rr.received) != 1 || rr.received[0].Src != 2 {
		t.Fatalf("received = %v, want only the strong frame from src 2", rr.received)
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	s, m, a, b, _, rb := twoRadios(t, 50)
	m.Transmit(b, &Frame{Src: 1, Dst: Broadcast, Kind: KindProbe, Bytes: 1400, Rate: Rate1})
	m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: 100, Rate: Rate11})
	s.Run(sim.Second)
	if len(rb.received) != 0 {
		t.Fatal("radio decoded a frame while transmitting")
	}
	if m.Counters(0, 1).Unlocked != 1 {
		t.Fatalf("unlocked loss not counted: %+v", *m.Counters(0, 1))
	}
}

func TestChannelErrorLossRateMatchesBER(t *testing.T) {
	s := sim.New(42)
	m := NewMedium(s, DefaultConfig())
	a := m.AddRadio(Position{})
	b := m.AddRadio(Position{X: 40})
	rb := &recorder{}
	b.SetListener(rb)
	const bytes = 1000
	ber := 2e-5
	m.SetBER(0, 1, ber)
	const n = 2000
	for k := 0; k < n; k++ {
		k := k
		s.At(sim.Time(k)*20*sim.Millisecond, func() {
			m.Transmit(a, &Frame{Src: 0, Dst: 1, Kind: KindData, Bytes: bytes, Rate: Rate11, Seq: int64(k)})
		})
	}
	s.Run(sim.Time(n+1) * 20 * sim.Millisecond)
	want := m.ChannelLossProb(0, 1, bytes+MACHeaderBytes)
	got := 1 - float64(len(rb.received))/n
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical loss %v, analytic %v", got, want)
	}
}

func TestChannelLossProbMonotoneInLength(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	m.AddRadio(Position{})
	m.AddRadio(Position{X: 10})
	m.SetBER(0, 1, 1e-5)
	if m.ChannelLossProb(0, 1, 100) >= m.ChannelLossProb(0, 1, 1400) {
		t.Fatal("longer frames must be lossier")
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	a := m.AddRadio(Position{})
	recs := make([]*recorder, 4)
	for k := 0; k < 4; k++ {
		r := m.AddRadio(Position{X: 30 * float64(k+1)})
		recs[k] = &recorder{}
		r.SetListener(recs[k])
	}
	m.Transmit(a, &Frame{Src: 0, Dst: Broadcast, Kind: KindProbe, Bytes: 500, Rate: Rate1})
	s.Run(sim.Second)
	for k, r := range recs {
		if len(r.received) != 1 {
			t.Fatalf("radio %d received %d broadcasts, want 1", k+1, len(r.received))
		}
	}
}

func TestRxPowerDecreasesWithDistance(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	m.AddRadio(Position{})
	m.AddRadio(Position{X: 10})
	m.AddRadio(Position{X: 100})
	if m.RxPowerDBm(0, 1) <= m.RxPowerDBm(0, 2) {
		t.Fatal("closer radio must receive more power")
	}
}

func TestShadowReducesPower(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultConfig())
	m.AddRadio(Position{})
	m.AddRadio(Position{X: 50})
	m.AddRadio(Position{X: -50})
	m.SetShadow(0, 2, 20)
	if math.Abs(m.RxPowerDBm(0, 1)-m.RxPowerDBm(0, 2)-20) > 1e-9 {
		t.Fatal("20 dB shadow not applied symmetrically")
	}
}

func TestPropertyDBmMWRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		dbm := math.Mod(math.Abs(x), 120) - 100 // [-100, 20)
		return math.Abs(MWToDBm(DBmToMW(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationRangeForInverts(t *testing.T) {
	p := DefaultPropagation()
	for _, rx := range []float64{-60, -75, -85, -92} {
		d := p.RangeFor(19, rx)
		got := 19 - p.PathLossDB(d, 0)
		if math.Abs(got-rx) > 1e-9 {
			t.Fatalf("RangeFor(-, %v) gives %v dBm back", rx, got)
		}
	}
}
