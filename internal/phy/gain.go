package phy

// GainTable is a frozen matrix of pairwise received powers in mW,
// indexed [src*n+dst]. A table is immutable once built — the medium only
// reads it — so one table can back any number of concurrently running
// simulations that share a mesh layout (see internal/topology/cache).
type GainTable struct {
	n  int
	mw []float64
}

// N returns the radio count the table was built for.
func (t *GainTable) N() int { return t.n }

// MW returns the received power in mW at radio b when radio a transmits.
func (t *GainTable) MW(a, b int) float64 { return t.mw[a*t.n+b] }

// BuildGainTable computes the pairwise-gain table for radios at the
// given positions under cfg. shadowDB maps unordered node pairs (lower
// id first) to a symmetric extra loss in dB; nil means no shadowing.
// The result is a pure function of its arguments, which is what makes
// cached tables interchangeable with cold builds.
func BuildGainTable(cfg Config, pos []Position, shadowDB map[[2]int]float64) *GainTable {
	n := len(pos)
	t := &GainTable{n: n, mw: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := pos[i].Distance(pos[j])
			pl := cfg.Prop.PathLossDB(d, shadowDB[pairKey(i, j)])
			t.mw[i*n+j] = DBmToMW(cfg.TxPowerDBm - pl)
		}
	}
	return t
}
