// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the 802.11 PHY/MAC simulator runs.
// It keeps a virtual clock and an event heap; events scheduled for the same
// instant fire in FIFO order, which makes runs fully reproducible for a
// given seed.
//
// Scheduling is allocation-light: heap entries are recycled through a free
// list (generation-counted so stale Timer handles cannot touch a reused
// entry), and cancelled entries are purged in bulk once they outnumber the
// live ones instead of being carried to their fire time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a simulated instant measured in nanoseconds since the start of
// the run. It is a distinct type so that wall-clock durations and simulated
// durations cannot be mixed up accidentally.
type Time int64

// Common duration helpers expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to simulated time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds renders t as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String implements fmt.Stringer with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a callback scheduled to run at a simulated instant.
type Event func()

// scheduled is an entry in the event heap. Entries are pooled: after an
// event fires (or a cancelled entry is dropped) the entry returns to the
// simulator's free list with its generation bumped, so a Timer that still
// points at it can tell the entry no longer belongs to it.
type scheduled struct {
	at   Time
	seq  uint64 // tie-break for deterministic FIFO order at equal times
	fn   Event
	sim  *Sim
	gen  uint32 // bumped on recycle; Timers holding the old gen are stale
	dead bool   // cancelled
	idx  int    // heap index, maintained by eventHeap
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	s   *scheduled
	gen uint32
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.s == nil || t.s.gen != t.gen || t.s.dead {
		return false
	}
	s := t.s
	s.dead = true
	if s.idx >= 0 {
		sm := s.sim
		sm.dead++
		// Long-running probers schedule and cancel constantly; without a
		// purge every cancelled entry rides the heap to its fire time and
		// the heap grows without bound. Sweep once the dead outnumber the
		// live entries.
		if sm.dead >= purgeMin && 2*sm.dead > len(sm.events) {
			sm.purge()
		}
	}
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.s != nil && t.s.gen == t.gen && !t.s.dead && t.s.idx >= 0
}

// When returns the instant the timer fires (meaningless after Stop or
// after the event has fired).
func (t *Timer) When() Time { return t.s.at }

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	s.idx = len(*h)
	*h = append(*h, s)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.idx = -1
	*h = old[:n-1]
	return s
}

// purgeMin is the minimum number of cancelled entries before a purge pass
// is worth its O(n) sweep.
const purgeMin = 64

// Sim is a discrete-event simulator instance. The zero value is not usable;
// construct with New.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	free   []*scheduled // recycled heap entries
	dead   int          // cancelled entries still in the heap
	rng    *rand.Rand
	halted bool
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's random source. All stochastic components
// must draw from this (or a stream derived from it) so runs reproduce.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// NewStream derives an independent deterministic random stream. Components
// that interleave draws in data-dependent order should each own a stream so
// that unrelated changes do not perturb their randomness.
func (s *Sim) NewStream() *rand.Rand { return rand.New(rand.NewSource(s.rng.Int63())) }

// At schedules fn to run at the absolute instant at. Scheduling in the past
// panics: it always indicates a logic error in the caller.
func (s *Sim) At(at Time, fn Event) *Timer {
	sc := s.schedule(at, fn)
	return &Timer{s: sc, gen: sc.gen}
}

// Schedule is At for events that are never cancelled: it skips the Timer
// handle, saving an allocation on hot paths (the PHY schedules one
// uncancellable end-of-transmission event per frame).
func (s *Sim) Schedule(at Time, fn Event) { s.schedule(at, fn) }

func (s *Sim) schedule(at Time, fn Event) *scheduled {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var sc *scheduled
	if n := len(s.free); n > 0 {
		sc = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		sc = &scheduled{sim: s}
	}
	sc.at, sc.seq, sc.fn = at, s.seq, fn
	s.seq++
	heap.Push(&s.events, sc)
	return sc
}

// recycle returns a popped entry to the free list. Clearing fn makes the
// completed closure (and whatever it captured) collectable; bumping gen
// invalidates any Timer still holding the entry.
func (s *Sim) recycle(e *scheduled) {
	e.fn = nil
	e.dead = false
	e.gen++
	e.idx = -1
	s.free = append(s.free, e)
}

// purge drops every cancelled entry from the heap in one sweep and
// restores the heap invariant.
func (s *Sim) purge() {
	live := s.events[:0]
	for _, e := range s.events {
		if e.dead {
			s.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	for i, e := range s.events {
		e.idx = i
	}
	heap.Init(&s.events)
	s.dead = 0
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn Event) *Timer { return s.At(s.now+d, fn) }

// Halt stops the run loop after the current event returns.
func (s *Sim) Halt() { s.halted = true }

// Run executes events until the queue drains, until Halt is called, or
// until the clock passes end. It returns the final simulated time.
func (s *Sim) Run(end Time) Time {
	s.halted = false
	for len(s.events) > 0 && !s.halted {
		next := s.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&s.events)
		if next.dead {
			s.dead--
			s.recycle(next)
			continue
		}
		s.now = next.at
		next.fn()
		s.recycle(next)
	}
	if s.now < end {
		s.now = end
	}
	return s.now
}

// Pending returns the number of live events in the queue.
func (s *Sim) Pending() int { return len(s.events) - s.dead }

// queueLen reports the raw heap length including cancelled entries; the
// timer-leak regression test asserts it stays bounded under churn.
func (s *Sim) queueLen() int { return len(s.events) }
