package sim

import (
	"testing"
	"testing/quick"
)

func TestRunOrdersEventsByTime(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Microsecond, func() { order = append(order, 3) })
	s.At(10*Microsecond, func() { order = append(order, 1) })
	s.At(20*Microsecond, func() { order = append(order, 2) })
	s.Run(Second)
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("events at the same instant ran out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired Time
	s.At(5*Millisecond, func() {
		s.After(2*Millisecond, func() { fired = s.Now() })
	})
	s.Run(Second)
	if fired != 7*Millisecond {
		t.Fatalf("nested After fired at %v, want 7ms", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.At(Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run(Second)
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestTimerPending(t *testing.T) {
	s := New(1)
	tm := s.At(Millisecond, func() {})
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	s.Run(Second)
	if tm.Pending() {
		t.Fatal("timer should not be pending after firing")
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run(Second)
	if count != 3 {
		t.Fatalf("ran %d events after Halt, want 3", count)
	}
}

func TestRunAdvancesClockToEnd(t *testing.T) {
	s := New(1)
	end := s.Run(42 * Millisecond)
	if end != 42*Millisecond {
		t.Fatalf("Run returned %v, want 42ms", end)
	}
	if s.Now() != 42*Millisecond {
		t.Fatalf("Now() = %v, want 42ms", s.Now())
	}
}

func TestRunStopsAtEndWithEventsBeyond(t *testing.T) {
	s := New(1)
	ran := false
	s.At(2*Second, func() { ran = true })
	s.Run(Second)
	if ran {
		t.Fatal("event beyond the horizon ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*Millisecond, func() {})
	})
	s.Run(Second)
}

func TestDeterministicStreams(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.NewStream(), b.NewStream()
	for i := 0; i < 100; i++ {
		if sa.Int63() != sb.Int63() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestPropertyEventsFireInNondecreasingTimeOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(3)
		var fired []Time
		for _, d := range delays {
			s.At(Time(d)*Microsecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run(Second)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStopPreventsExactlyThatEvent(t *testing.T) {
	f := func(n uint8, cancel uint8) bool {
		count := int(n%20) + 2
		c := int(cancel) % count
		s := New(5)
		fired := make([]bool, count)
		timers := make([]*Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = s.At(Time(i+1)*Millisecond, func() { fired[i] = true })
		}
		timers[c].Stop()
		s.Run(Second)
		for i := 0; i < count; i++ {
			if fired[i] == (i == c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String = %q", got)
	}
}

func TestTimerChurnKeepsHeapBounded(t *testing.T) {
	// A long-running prober that schedules a timeout and cancels it every
	// period used to leave every cancelled entry in the heap until its
	// far-future fire time; the purge must keep the heap near the live
	// event count instead.
	s := New(9)
	var churn func()
	rounds := 0
	churn = func() {
		rounds++
		if rounds >= 50000 {
			return
		}
		timeout := s.At(s.Now()+Second, func() {})
		s.At(s.Now()+Microsecond, func() {
			timeout.Stop()
			churn()
		})
	}
	churn()
	s.Run(Second / 2)
	if n := s.queueLen(); n > 2*purgeMin {
		t.Fatalf("heap holds %d entries after churn; cancelled timers are leaking", n)
	}
	if live := s.Pending(); live > 2 {
		t.Fatalf("%d live events remain, want <= 2", live)
	}
}

func TestStoppedTimerHandleStaysStale(t *testing.T) {
	// Once an event fires, its heap entry is recycled; the old handle
	// must keep reporting not-pending and Stop must keep returning false
	// even after the entry is reused by a later schedule.
	s := New(3)
	fired := 0
	tm := s.At(Microsecond, func() { fired++ })
	s.Run(Millisecond)
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop succeeded on a fired timer")
	}
	// Reuse the recycled entry and make sure the stale handle cannot
	// cancel the new event.
	s.At(2*Millisecond, func() { fired++ })
	if tm.Stop() {
		t.Fatal("stale handle cancelled a recycled entry")
	}
	s.Run(Second)
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
}
