// Package probe implements the paper's network-layer probing system
// (§5.2, §6.1): every node periodically broadcasts two probe classes —
// one emulating DATA frames (data rate, data size) and one emulating ACK
// frames (1 Mb/s, ACK size). Receivers record per-sender reception traces
// from which the channel-loss estimator recovers pDATA and pACK.
//
// The package also implements Ad Hoc Probe (Chen et al.), the packet-pair
// path-capacity baseline the paper compares against in Fig. 11.
package probe

import (
	"math/rand"

	"repro/internal/core/capacity"
	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Class distinguishes the two probe kinds.
type Class int

// Probe classes.
const (
	// ClassData emulates DATA packets: sent at the link data rate with
	// the data payload size.
	ClassData Class = iota
	// ClassAck emulates ACK packets: sent at 1 Mb/s with the ACK size.
	ClassAck
	numClasses
)

// Payload is the probe frame payload. Sent carries the transmission
// timestamp so receivers can detect stale traces (a link whose probes all
// die leaves no loss marks — only its silence gives it away).
type Payload struct {
	Class Class
	Seq   int64
	Sent  sim.Time
}

// DefaultPeriod is the probing period (0.5 s in the paper's system).
const DefaultPeriod = 500 * sim.Millisecond

// Prober periodically broadcasts both probe classes from one node. Probe
// timers are jittered (uniformly within ±25% of the period) so that
// probers on hidden nodes do not synchronize and systematically collide.
type Prober struct {
	s      *sim.Sim
	n      *node.Node
	period sim.Time
	rng    *rand.Rand

	dataRate  phy.Rate
	dataBytes int

	running bool
	timer   *sim.Timer
	seq     [numClasses]int64
	sent    [numClasses]int64
}

// NewProber creates a prober for n. dataRate and dataBytes configure the
// DATA-emulating class.
func NewProber(s *sim.Sim, n *node.Node, dataRate phy.Rate, dataBytes int) *Prober {
	return &Prober{
		s: s, n: n,
		period:    DefaultPeriod,
		rng:       s.NewStream(),
		dataRate:  dataRate,
		dataBytes: dataBytes,
	}
}

// SetPeriod changes the probing period (before Start).
func (p *Prober) SetPeriod(d sim.Time) { p.period = d }

// Start begins periodic probing.
func (p *Prober) Start() {
	if p.running {
		return
	}
	p.running = true
	p.tick()
}

// Stop halts probing.
func (p *Prober) Stop() {
	p.running = false
	if p.timer != nil {
		p.timer.Stop()
	}
}

// Sent returns the number of probes of class c sent so far.
func (p *Prober) Sent(c Class) int64 { return p.sent[c] }

func (p *Prober) tick() {
	if !p.running {
		return
	}
	now := p.s.Now()
	p.seq[ClassData]++
	if p.n.SendProbe(p.dataBytes, p.dataRate, &Payload{Class: ClassData, Seq: p.seq[ClassData], Sent: now}) {
		p.sent[ClassData]++
	}
	p.seq[ClassAck]++
	if p.n.SendProbe(phy.ACKBytes, phy.Rate1, &Payload{Class: ClassAck, Seq: p.seq[ClassAck], Sent: now}) {
		p.sent[ClassAck]++
	}
	jitter := 0.75 + 0.5*p.rng.Float64()
	p.timer = p.s.After(sim.Time(float64(p.period)*jitter), p.tick)
}

// traceBufCap bounds how much reception history a recorder keeps per
// sender and class.
const traceBufCap = 4096

// seqTrace records which probe sequence numbers arrived.
type seqTrace struct {
	max       int64          // highest seq observed
	seen      map[int64]bool // received seqs within the retained window
	lastHeard sim.Time       // send timestamp of the newest probe heard
}

func (t *seqTrace) mark(seq int64, at sim.Time) {
	if t.seen == nil {
		t.seen = make(map[int64]bool)
	}
	t.seen[seq] = true
	if at > t.lastHeard {
		t.lastHeard = at
	}
	if seq > t.max {
		t.max = seq
	}
	if old := t.max - traceBufCap; old > 0 {
		delete(t.seen, old)
	}
}

// trace materializes the last s positions ending at the highest observed
// seq: true = lost.
func (t *seqTrace) trace(s int) capacity.LossTrace {
	if t.max == 0 {
		return nil
	}
	start := t.max - int64(s) + 1
	if start < 1 {
		start = 1
	}
	out := make(capacity.LossTrace, 0, t.max-start+1)
	for q := start; q <= t.max; q++ {
		out = append(out, !t.seen[q])
	}
	return out
}

// Recorder collects probe receptions at one node.
type Recorder struct {
	node   *node.Node
	traces map[int]*[numClasses]seqTrace // sender -> per-class trace
}

// NewRecorder attaches a recorder to n's probe delivery.
func NewRecorder(n *node.Node) *Recorder {
	r := &Recorder{node: n, traces: make(map[int]*[numClasses]seqTrace)}
	prev := n.OnProbe
	n.OnProbe = func(f *phy.Frame) {
		if prev != nil {
			prev(f)
		}
		pl, ok := f.Payload.(*Payload)
		if !ok {
			return
		}
		tr := r.traces[f.Src]
		if tr == nil {
			tr = &[numClasses]seqTrace{}
			r.traces[f.Src] = tr
		}
		tr[pl.Class].mark(pl.Seq, pl.Sent)
	}
	return r
}

// Senders lists the node ids this recorder has heard probes from — the
// neighbour set used by the two-hop interference model and routing.
func (r *Recorder) Senders() []int {
	out := make([]int, 0, len(r.traces))
	for id := range r.traces {
		out = append(out, id)
	}
	return out
}

// Trace returns the last s probe outcomes from sender for class c.
func (r *Recorder) Trace(sender int, c Class, s int) capacity.LossTrace {
	tr := r.traces[sender]
	if tr == nil {
		return nil
	}
	return tr[c].trace(s)
}

// LinkEstimate runs the channel-loss estimator on both probe classes of
// the link sender->this node and combines them into the Eq. 6 inputs.
type LinkEstimate struct {
	PData, PAck float64 // estimated channel loss rates per class
	Pl          float64 // combined per-attempt loss (Eq. 6 input)
}

// minTraceSpan is the minimum per-class trace length for a usable link
// estimate. A link whose DATA-emulating probes never decode (for example
// one that only carries the more robust 1 Mb/s ACK probes) produces an
// empty DATA trace and must be rejected rather than read as lossless.
const minTraceSpan = 2 * capacity.DefaultWmin

// LastHeard returns the send timestamp of the newest probe heard from
// sender on class c (zero if never).
func (r *Recorder) LastHeard(sender int, c Class) sim.Time {
	tr := r.traces[sender]
	if tr == nil {
		return 0
	}
	return tr[c].lastHeard
}

// EstimateFresh is Estimate with a staleness guard: a link whose newest
// DATA probe is older than maxAge is reported unusable. A completely dead
// link produces no loss marks at all — its trace looks clean while its
// silence grows — so freshness, not loss rate, is what reveals it.
func (r *Recorder) EstimateFresh(sender, s int, now, maxAge sim.Time) (LinkEstimate, bool) {
	if maxAge > 0 && now-r.LastHeard(sender, ClassData) > maxAge {
		return LinkEstimate{}, false
	}
	return r.Estimate(sender, s)
}

// Estimate produces the link estimate over a probing window of s probes.
// ok is false when too few probes of either class were heard from sender
// for the link to be considered usable at its data rate.
func (r *Recorder) Estimate(sender int, s int) (LinkEstimate, bool) {
	tr := r.traces[sender]
	if tr == nil {
		return LinkEstimate{}, false
	}
	dataTrace := tr[ClassData].trace(s)
	ackTrace := tr[ClassAck].trace(s)
	if len(dataTrace) < minTraceSpan || len(ackTrace) < minTraceSpan {
		return LinkEstimate{}, false
	}
	data := capacity.EstimateChannelLoss(dataTrace, capacity.DefaultWmin)
	ack := capacity.EstimateChannelLoss(ackTrace, capacity.DefaultWmin)
	return LinkEstimate{
		PData: data.Pch,
		PAck:  ack.Pch,
		Pl:    capacity.CombineLossRates(data.Pch, ack.Pch),
	}, true
}
