package probe

import (
	"math"

	"repro/internal/node"
	"repro/internal/sim"
)

// AdHocProbe is the packet-pair capacity estimator of Chen et al. used as
// the baseline in Fig. 11: the sender emits back-to-back unicast packet
// pairs; the receiver measures the dispersion (arrival spacing) of each
// complete pair and estimates path capacity as packet size over the
// minimum observed dispersion. The minimum-filter removes queueing and
// contention delay but, as the paper shows, it also removes the cost of
// channel-loss retransmissions — so it tracks nominal rather than maxUDP
// throughput.
type AdHocProbe struct {
	s     *sim.Sim
	src   *node.Node
	dst   int
	bytes int

	pairs   int
	period  sim.Time
	sent    int
	running bool
	timer   *sim.Timer

	firstArrival map[int64]sim.Time
	minDisp      sim.Time
	samples      int
}

// pairPayload marks Ad Hoc Probe packets. Pair is the pair id; Index is 0
// or 1 within the pair.
type pairPayload struct {
	Pair  int64
	Index int
}

// NewAdHocProbe prepares a packet-pair run of `pairs` pairs of
// payloadBytes packets from src to dst, one pair per period.
func NewAdHocProbe(s *sim.Sim, src *node.Node, dst, payloadBytes, pairs int, period sim.Time) *AdHocProbe {
	return &AdHocProbe{
		s: s, src: src, dst: dst, bytes: payloadBytes,
		pairs: pairs, period: period,
		firstArrival: make(map[int64]sim.Time),
		minDisp:      math.MaxInt64,
	}
}

// Start begins emitting pairs and recording dispersions at the receiver
// node (which must be reachable via the source's routing table).
func (a *AdHocProbe) Start(receiver *node.Node) {
	prev := receiver.Deliver
	receiver.Deliver = func(p *node.Packet) {
		if pp, ok := p.Payload.(*pairPayload); ok {
			a.onArrival(pp)
			return
		}
		if prev != nil {
			prev(p)
		}
	}
	a.running = true
	a.emit()
}

// Stop halts emission.
func (a *AdHocProbe) Stop() { a.running = false }

func (a *AdHocProbe) emit() {
	if !a.running || a.sent >= a.pairs {
		a.running = false
		return
	}
	a.sent++
	id := int64(a.sent)
	for idx := 0; idx < 2; idx++ {
		a.src.Send(&node.Packet{
			FlowID:  -1,
			Src:     a.src.ID(),
			Dst:     a.dst,
			Bytes:   a.bytes,
			Payload: &pairPayload{Pair: id, Index: idx},
		})
	}
	a.timer = a.s.After(a.period, a.emit)
}

func (a *AdHocProbe) onArrival(pp *pairPayload) {
	switch pp.Index {
	case 0:
		a.firstArrival[pp.Pair] = a.s.Now()
	case 1:
		t0, ok := a.firstArrival[pp.Pair]
		if !ok {
			return // first packet lost: incomplete pair
		}
		disp := a.s.Now() - t0
		if disp > 0 && disp < a.minDisp {
			a.minDisp = disp
		}
		a.samples++
		delete(a.firstArrival, pp.Pair)
	}
}

// Samples returns the number of complete pairs observed.
func (a *AdHocProbe) Samples() int { return a.samples }

// EstimateBps returns the Ad Hoc Probe capacity estimate: packet bits over
// minimum dispersion. Returns 0 before any complete pair arrives.
func (a *AdHocProbe) EstimateBps() float64 {
	if a.samples == 0 || a.minDisp <= 0 {
		return 0
	}
	return float64(8*a.bytes) / a.minDisp.Seconds()
}
