package probe

import (
	"math"
	"testing"

	"repro/internal/core/capacity"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestProberSendsBothClasses(t *testing.T) {
	nw := topology.TwoLink(1, topology.CS, phy.Rate11, phy.Rate11)
	rec := NewRecorder(nw.Node(1))
	p := NewProber(nw.Sim, nw.Node(0), phy.Rate11, traffic.DefaultPayload)
	p.SetPeriod(100 * sim.Millisecond)
	p.Start()
	nw.Sim.Run(10 * sim.Second)
	p.Stop()
	if p.Sent(ClassData) < 95 || p.Sent(ClassAck) < 95 {
		t.Fatalf("sent %d/%d probes", p.Sent(ClassData), p.Sent(ClassAck))
	}
	for _, c := range []Class{ClassData, ClassAck} {
		tr := rec.Trace(0, c, 100)
		if tr.MeasuredLoss() > 0.02 {
			t.Fatalf("class %d loss %v on clean link", c, tr.MeasuredLoss())
		}
	}
}

func TestRecorderMeasuresChannelLoss(t *testing.T) {
	nw := topology.TwoLink(2, topology.CS, phy.Rate11, phy.Rate11)
	ber := 1e-5
	nw.Medium.SetBER(0, 1, ber)
	rec := NewRecorder(nw.Node(1))
	p := NewProber(nw.Sim, nw.Node(0), phy.Rate11, traffic.DefaultPayload)
	p.SetPeriod(20 * sim.Millisecond)
	p.Start()
	nw.Sim.Run(40 * sim.Second) // ~2000 probes
	p.Stop()

	wantData := nw.Medium.ChannelLossProb(0, 1, traffic.DefaultPayload+phy.MACHeaderBytes)
	gotData := rec.Trace(0, ClassData, 1280).MeasuredLoss()
	if math.Abs(gotData-wantData) > 0.05 {
		t.Fatalf("DATA probe loss %v, channel ground truth %v", gotData, wantData)
	}
	// ACK probes are short: far lower loss.
	gotAck := rec.Trace(0, ClassAck, 1280).MeasuredLoss()
	if gotAck >= gotData {
		t.Fatalf("ACK loss %v not below DATA loss %v", gotAck, gotData)
	}
}

func TestEstimateSeparatesCollisionsFromChannelLoss(t *testing.T) {
	// Probing during heavy interference from a hidden transmitter: the
	// measured loss is inflated by collisions; the estimator should
	// recover something near the channel-only loss.
	nw := topology.TwoLink(3, topology.IA, phy.Rate11, phy.Rate11)
	ber := 6e-6
	nw.Medium.SetBER(0, 1, ber)
	rec := NewRecorder(nw.Node(1))
	p := NewProber(nw.Sim, nw.Node(0), phy.Rate11, traffic.DefaultPayload)
	p.SetPeriod(20 * sim.Millisecond)
	p.Start()

	// Hidden interferer (node 2) transmits in occasional bursts (on
	// 400 ms, off 4 s): collision losses are bursty and sparse relative
	// to the estimator's window, as the paper's loss studies observe.
	burst := traffic.NewCBR(nw.Sim, nw.Node(2), 9, 3, traffic.DefaultPayload, 5e6)
	var cycle func()
	on := false
	cycle = func() {
		if on {
			burst.Stop()
			nw.Sim.After(4*sim.Second, cycle)
		} else {
			burst.Start()
			nw.Sim.After(400*sim.Millisecond, cycle)
		}
		on = !on
	}
	cycle()

	nw.Sim.Run(40 * sim.Second)
	p.Stop()
	burst.Stop()

	est, ok := rec.Estimate(0, 1280)
	if !ok {
		t.Fatal("no estimate")
	}
	raw := rec.Trace(0, ClassData, 1280).MeasuredLoss()
	truth := nw.Medium.ChannelLossProb(0, 1, traffic.DefaultPayload+phy.MACHeaderBytes)
	if raw < truth+0.04 {
		t.Fatalf("setup: interference added only %v loss over %v", raw, truth)
	}
	if math.Abs(est.PData-truth) > 0.10 {
		t.Fatalf("estimated channel loss %v, truth %v (raw %v)", est.PData, truth, raw)
	}
}

func TestSendersNeighbourDiscovery(t *testing.T) {
	nw := topology.Chain(4, 4, 80, phy.Rate11)
	recs := make([]*Recorder, 4)
	for i := range recs {
		recs[i] = NewRecorder(nw.Node(i))
	}
	for i := 0; i < 4; i++ {
		p := NewProber(nw.Sim, nw.Node(i), phy.Rate11, 200)
		p.SetPeriod(100 * sim.Millisecond)
		p.Start()
	}
	nw.Sim.Run(3 * sim.Second)
	// Node 0 must hear at least node 1; broadcast probes at 11 Mb/s
	// reach only decodable neighbours.
	heard := recs[0].Senders()
	found := false
	for _, id := range heard {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 0 heard %v, expected neighbour 1", heard)
	}
}

func TestTraceWindowBounded(t *testing.T) {
	var tr seqTrace
	for q := int64(1); q <= 10000; q++ {
		tr.mark(q, sim.Time(q)*sim.Millisecond)
	}
	got := tr.trace(500)
	if len(got) != 500 {
		t.Fatalf("trace len = %d", len(got))
	}
	if got.MeasuredLoss() != 0 {
		t.Fatal("all-received trace shows loss")
	}
}

func TestTraceMarksGapsAsLost(t *testing.T) {
	var tr seqTrace
	for q := int64(1); q <= 100; q++ {
		if q%4 != 0 {
			tr.mark(q, sim.Time(q)*sim.Millisecond)
		}
	}
	// Highest observed is 99 (100 lost, unseen at the tail).
	got := tr.trace(99)
	if math.Abs(got.MeasuredLoss()-0.242) > 0.01 {
		t.Fatalf("loss = %v", got.MeasuredLoss())
	}
}

func TestAdHocProbeTracksNominalOnCleanLink(t *testing.T) {
	nw := topology.TwoLink(5, topology.CS, phy.Rate11, phy.Rate11)
	nw.InstallDirectRoute(nw.Link1)
	a := NewAdHocProbe(nw.Sim, nw.Node(0), 1, traffic.DefaultPayload, 200, 50*sim.Millisecond)
	a.Start(nw.Node(1))
	nw.Sim.Run(15 * sim.Second)
	a.Stop()
	if a.Samples() < 150 {
		t.Fatalf("only %d complete pairs", a.Samples())
	}
	est := a.EstimateBps()
	// Min dispersion excludes the mean backoff: estimate sits at or
	// above the nominal saturation goodput.
	nom := capacity.NominalGoodput(phy.Rate11, traffic.DefaultPayload)
	if est < 0.95*nom || est > 1.5*nom {
		t.Fatalf("AdHoc estimate %.2f Mb/s vs nominal %.2f", est/1e6, nom/1e6)
	}
}

func TestAdHocProbeIgnoresChannelLoss(t *testing.T) {
	// The paper's Fig. 11 point: on a lossy link Ad Hoc Probe still
	// reports near-nominal capacity while true maxUDP collapses.
	nw := topology.TwoLink(6, topology.CS, phy.Rate11, phy.Rate11)
	nw.Medium.SetBER(0, 1, 5e-5) // heavy loss
	nw.InstallDirectRoute(nw.Link1)
	a := NewAdHocProbe(nw.Sim, nw.Node(0), 1, traffic.DefaultPayload, 300, 50*sim.Millisecond)
	a.Start(nw.Node(1))
	nw.Sim.Run(20 * sim.Second)
	a.Stop()
	est := a.EstimateBps()
	nom := capacity.NominalGoodput(phy.Rate11, traffic.DefaultPayload)
	if est < 0.9*nom {
		t.Fatalf("AdHoc estimate %.2f Mb/s should stay near nominal %.2f on lossy link",
			est/1e6, nom/1e6)
	}
}
