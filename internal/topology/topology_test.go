package topology

import (
	"testing"

	"repro/internal/phy"
)

func TestTwoLinkClassRelations(t *testing.T) {
	cfg := phy.DefaultConfig()
	cs := phy.DBmToMW(cfg.CSThreshDBm)
	for _, tc := range []struct {
		class      Class
		txSense    bool // transmitters sense each other
		rx1Exposed bool // rx1 hears tx2 above CS
		rx2Exposed bool // rx2 hears tx1 above CS
	}{
		// In the CS class everyone is inside everyone's sense range;
		// only the transmitter relation is definitional.
		{CS, true, true, true},
		{IA, false, true, false},
		{NF, false, true, true},
	} {
		nw := TwoLink(1, tc.class, phy.Rate11, phy.Rate11)
		m := nw.Medium
		if got := m.GainMW(0, 2) >= cs; got != tc.txSense {
			t.Errorf("%v: tx mutual sensing = %v, want %v", tc.class, got, tc.txSense)
		}
		if got := m.GainMW(2, 1) >= cs; got != tc.rx1Exposed {
			t.Errorf("%v: rx1 exposure = %v, want %v", tc.class, got, tc.rx1Exposed)
		}
		if got := m.GainMW(0, 3) >= cs; got != tc.rx2Exposed {
			t.Errorf("%v: rx2 exposure = %v, want %v", tc.class, got, tc.rx2Exposed)
		}
	}
}

func TestTwoLinkLinksDecodable(t *testing.T) {
	for _, class := range []Class{CS, IA, NF} {
		nw := TwoLink(1, class, phy.Rate1, phy.Rate1)
		if !nw.Decodable(nw.Link1, phy.Rate1) || !nw.Decodable(nw.Link2, phy.Rate1) {
			t.Errorf("%v: links not decodable at 1 Mb/s", class)
		}
	}
}

func TestChainRoutesBothDirections(t *testing.T) {
	nw := Chain(1, 5, 70, phy.Rate11)
	if nw.Node(0).NextHop(4) != 1 {
		t.Fatal("forward route wrong")
	}
	if nw.Node(4).NextHop(0) != 3 {
		t.Fatal("reverse route wrong")
	}
	if nw.Node(2).NextHop(0) != 1 || nw.Node(2).NextHop(4) != 3 {
		t.Fatal("middle routes wrong")
	}
}

func TestChainAdjacentDecodable(t *testing.T) {
	nw := Chain(1, 5, 70, phy.Rate11)
	for i := 0; i < 4; i++ {
		if !nw.Decodable(Link{Src: i, Dst: i + 1}, phy.Rate11) {
			t.Fatalf("hop %d-%d not decodable", i, i+1)
		}
	}
}

func TestMesh18Deterministic(t *testing.T) {
	a, b := Mesh18(5), Mesh18(5)
	for i := range a.Nodes {
		ra := a.Medium.Radios()[i].Pos()
		rb := b.Medium.Radios()[i].Pos()
		if ra != rb {
			t.Fatal("Mesh18 layout not deterministic")
		}
	}
	if Mesh18(5).Medium.BER(0, 1) != Mesh18(5).Medium.BER(0, 1) {
		t.Fatal("BER assignment not deterministic")
	}
}

func TestMesh18SeededSeparatesLayoutFromSim(t *testing.T) {
	a := Mesh18Seeded(5, 100)
	b := Mesh18Seeded(5, 200)
	for i := range a.Nodes {
		if a.Medium.Radios()[i].Pos() != b.Medium.Radios()[i].Pos() {
			t.Fatal("layout changed with sim seed")
		}
	}
}

func TestMesh18Has18Nodes(t *testing.T) {
	nw := Mesh18(1)
	if len(nw.Nodes) != 18 {
		t.Fatalf("%d nodes", len(nw.Nodes))
	}
}

func TestMesh18LinkQualityDiversity(t *testing.T) {
	nw := Mesh18(1)
	var clean, lossy int
	for i := 0; i < 18; i++ {
		for j := 0; j < 18; j++ {
			if i == j {
				continue
			}
			switch ber := nw.Medium.BER(i, j); {
			case ber < 1e-6:
				clean++
			case ber > 1e-5:
				lossy++
			}
		}
	}
	if clean == 0 || lossy == 0 {
		t.Fatalf("no diversity: clean=%d lossy=%d", clean, lossy)
	}
}

func TestGatewayScenarioHiddenness(t *testing.T) {
	nw := GatewayScenario(1, phy.Rate1)
	cs := phy.DBmToMW(phy.DefaultConfig().CSThreshDBm)
	if nw.Medium.GainMW(2, 0) >= cs {
		t.Fatal("node 2 must be hidden from the gateway")
	}
	if nw.Medium.GainMW(1, 0) < cs || nw.Medium.GainMW(2, 1) < cs {
		t.Fatal("adjacent nodes must sense each other")
	}
	// The capture asymmetry: gateway stronger at the relay than node 2.
	if nw.Medium.GainMW(0, 1) <= nw.Medium.GainMW(2, 1) {
		t.Fatal("gateway must out-power node 2 at the relay")
	}
	if nw.Node(2).NextHop(0) != 1 {
		t.Fatal("2-hop route not installed")
	}
}

func TestSNRdBAndLinks(t *testing.T) {
	nw := Chain(1, 3, 70, phy.Rate11)
	snr := nw.SNRdB(Link{Src: 0, Dst: 1})
	if snr < phy.Rate11.MinSINRdB() {
		t.Fatalf("adjacent SNR %v below decode threshold", snr)
	}
	links := nw.Links(phy.Rate11)
	if len(links) < 4 {
		t.Fatalf("chain links = %v", links)
	}
}

func TestTwoLinkUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown class")
		}
	}()
	TwoLink(1, Class(99), phy.Rate1, phy.Rate1)
}

func TestClassString(t *testing.T) {
	if CS.String() != "CS" || IA.String() != "IA" || NF.String() != "NF" {
		t.Fatal("class names wrong")
	}
}
