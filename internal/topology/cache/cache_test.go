package cache_test

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/topology"
	"repro/internal/topology/cache"
)

// TestPoolGetBuildsOncePerKey checks the miss/hit accounting and that
// the build function runs at most once per key.
func TestPoolGetBuildsOncePerKey(t *testing.T) {
	p := cache.New()
	builds := 0
	build := func() *phy.GainTable {
		builds++
		return phy.BuildGainTable(phy.DefaultConfig(),
			[]phy.Position{{X: 0}, {X: 50}}, nil)
	}
	k := cache.Key{Kind: "test", Seed: 1, N: 2}
	first := p.Get(k, build)
	second := p.Get(k, build)
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if first != second {
		t.Fatal("hit returned a different table than the miss")
	}
	if hits, misses := p.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	p.Get(cache.Key{Kind: "test", Seed: 2, N: 2}, build)
	if builds != 2 || p.Len() != 2 {
		t.Fatalf("second key: builds=%d len=%d", builds, p.Len())
	}
}

// TestMesh18CacheHitIdenticalToColdBuild is the determinism contract: a
// mesh built from a pooled (cached) gain table reports exactly the same
// pairwise gains as the cold build that populated the pool.
func TestMesh18CacheHitIdenticalToColdBuild(t *testing.T) {
	cache.Shared.Reset()
	defer cache.Shared.Reset()

	const layoutSeed = 5
	cold := topology.Mesh18Seeded(layoutSeed, 100) // miss: builds the table
	if _, misses := cache.Shared.Stats(); misses != 1 {
		t.Fatalf("expected 1 miss after the cold build, stats=%v", misses)
	}
	warm := topology.Mesh18Seeded(layoutSeed, 200) // hit: reuses it
	hits, _ := cache.Shared.Stats()
	if hits != 1 {
		t.Fatalf("expected 1 hit after the warm build, got %d", hits)
	}

	n := len(cold.Nodes)
	if len(warm.Nodes) != n {
		t.Fatalf("node counts differ: %d vs %d", n, len(warm.Nodes))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if c, w := cold.Medium.GainMW(i, j), warm.Medium.GainMW(i, j); c != w {
				t.Fatalf("gain(%d,%d) differs: cold %v, cached %v", i, j, c, w)
			}
		}
	}

	// A different layout seed must not alias the cached table.
	other := topology.Mesh18Seeded(layoutSeed+1, 100)
	same := true
	for i := 0; i < n && same; i++ {
		for j := 0; j < n; j++ {
			if i != j && other.Medium.GainMW(i, j) != cold.Medium.GainMW(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different layout seeds produced identical gain tables")
	}
}

// TestSharedTableIsolation: two simulations sharing one cached table run
// independently (the table is read-only; sim state never crosses).
func TestSharedTableIsolation(t *testing.T) {
	cache.Shared.Reset()
	defer cache.Shared.Reset()
	a := topology.GatewayScenario(1, phy.Rate1)
	b := topology.GatewayScenario(2, phy.Rate1)
	if a.Medium.GainTable() != b.Medium.GainTable() {
		t.Fatal("gateway scenarios did not share the pooled table")
	}
	if a.Medium.GainMW(0, 1) != b.Medium.GainMW(0, 1) {
		t.Fatal("shared table reports different gains")
	}
}
