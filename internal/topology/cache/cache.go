// Package cache pools frozen gain tables across simulation cells.
//
// Every cell of a parallel experiment builds a private simulator and
// medium, but cells sweeping iterations, regimes or probe windows over
// the same mesh layout all recompute an identical O(n²) gain matrix:
// the table is a pure function of the layout inputs (topology kind,
// layout seed, node count, geometry parameter) under the default radio
// config. The pool keys tables on exactly those inputs, so the first
// cell to need a layout builds its table and every later cell — on any
// worker, in any order — reuses the frozen copy.
//
// Determinism contract: a cached table is bit-identical to a cold build
// because the build function passed to Get must be a pure function of
// the key. Whichever cell populates an entry first, every reader sees
// the same floats a sequential cold run would compute, so experiment
// output stays bit-identical for any worker count. phy.GainTable values
// are immutable after construction, which is what makes one table safe
// to share across concurrently running media.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/phy"
)

// Key identifies a frozen mesh layout.
type Key struct {
	// Kind is the topology family ("mesh18", "chain", "twolink-IA", ...).
	Kind string
	// Seed is the layout seed for randomized families; 0 for fixed ones.
	Seed int64
	// N is the node count.
	N int
	// Param disambiguates fixed-geometry variants (e.g. chain hop metres).
	Param float64
}

// Pool is a keyed gain-table pool, safe for concurrent use by experiment
// cells.
type Pool struct {
	mu           sync.Mutex
	tables       map[Key]*phy.GainTable
	hits, misses atomic.Int64
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{tables: make(map[Key]*phy.GainTable)}
}

// Shared is the process-wide pool the topology builders use.
var Shared = New()

// Get returns the table for k, building it with build on the first
// request. build must be a pure function of k (same key, same floats);
// it runs under the pool lock, so at most one build per key ever runs.
func (p *Pool) Get(k Key, build func() *phy.GainTable) *phy.GainTable {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.tables[k]; ok {
		p.hits.Add(1)
		return t
	}
	p.misses.Add(1)
	t := build()
	p.tables[k] = t
	return t
}

// Stats reports cache hits and misses since the last Reset.
func (p *Pool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// Len returns the number of cached layouts.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tables)
}

// Reset drops every cached table and zeroes the counters.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tables = make(map[Key]*phy.GainTable)
	p.hits.Store(0)
	p.misses.Store(0)
}
