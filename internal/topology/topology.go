// Package topology constructs simulated mesh networks: the embedded
// two-link interference classes used by the paper's pairwise validation
// (Carrier Sense, Information Asymmetry, Near-Far, after Garetto et al.),
// multi-hop chains, and an 18-node analogue of the paper's office-building
// testbed with indoor/outdoor shadowing variety and per-link channel error.
package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology/cache"
)

// Link is a directed transmitter->receiver pair.
type Link struct {
	Src, Dst int
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.Src, l.Dst) }

// Network bundles a simulator, a medium and the node stack built on it.
type Network struct {
	Sim    *sim.Sim
	Medium *phy.Medium
	Nodes  []*node.Node
}

// New builds a network of nodes at the given positions, all using
// defaultRate for data frames.
func New(seed int64, cfg phy.Config, positions []phy.Position, defaultRate phy.Rate) *Network {
	s := sim.New(seed)
	med := phy.NewMedium(s, cfg)
	n := &Network{Sim: s, Medium: med}
	for _, p := range positions {
		r := med.AddRadio(p)
		n.Nodes = append(n.Nodes, node.New(med, r, defaultRate))
	}
	return n
}

// pooledNew is New with the gain table drawn from the shared layout
// pool: cells sharing a layout key reuse one frozen table instead of
// recomputing the O(n²) path-loss matrix per simulation. The builders
// below all use phy.DefaultConfig, which the pool keys assume.
func pooledNew(simSeed int64, key cache.Key, pos []phy.Position, shadow map[[2]int]float64, defaultRate phy.Rate) *Network {
	cfg := phy.DefaultConfig()
	s := sim.New(simSeed)
	med := phy.NewMedium(s, cfg)
	med.SetGainTable(cache.Shared.Get(key, func() *phy.GainTable {
		return phy.BuildGainTable(cfg, pos, shadow)
	}))
	n := &Network{Sim: s, Medium: med}
	for _, p := range pos {
		r := med.AddRadio(p)
		n.Nodes = append(n.Nodes, node.New(med, r, defaultRate))
	}
	return n
}

// Node returns node i.
func (n *Network) Node(i int) *node.Node { return n.Nodes[i] }

// SetRate pins the modulation on the directed link l.
func (n *Network) SetRate(l Link, r phy.Rate) { n.Nodes[l.Src].SetLinkRate(l.Dst, r) }

// InstallDirectRoute makes l.Src deliver straight to l.Dst.
func (n *Network) InstallDirectRoute(l Link) { n.Nodes[l.Src].SetRoute(l.Dst, l.Dst) }

// SNRdB returns the interference-free SNR of the directed link.
func (n *Network) SNRdB(l Link) float64 {
	return n.Medium.RxPowerDBm(l.Src, l.Dst) - n.Medium.Config().NoiseDBm
}

// Decodable reports whether l can carry rate r in the absence of
// interference (SNR above the modulation threshold and lockable power).
func (n *Network) Decodable(l Link, r phy.Rate) bool {
	rx := n.Medium.RxPowerDBm(l.Src, l.Dst)
	return rx >= n.Medium.Config().LockSensDBm && n.SNRdB(l) >= r.MinSINRdB()
}

// Links enumerates all directed links decodable at rate r.
func (n *Network) Links(r phy.Rate) []Link {
	var out []Link
	for i := range n.Nodes {
		for j := range n.Nodes {
			if i == j {
				continue
			}
			if l := (Link{i, j}); n.Decodable(l, r) {
				out = append(out, l)
			}
		}
	}
	return out
}

// Class names an embedded two-link interference topology class.
type Class int

// The three classes from the paper's pairwise validation (§4.3.1).
const (
	// CS: the two transmitters sense each other and coordinate; the
	// pair operates near the time-sharing boundary.
	CS Class = iota
	// IA: transmitters cannot sense each other; one receiver is exposed
	// to the other link's transmitter (hidden terminal with capture).
	IA
	// NF: transmitters cannot sense each other; both receivers are
	// exposed to the opposite transmitter, with a near/far asymmetry.
	NF
)

func (c Class) String() string {
	switch c {
	case CS:
		return "CS"
	case IA:
		return "IA"
	case NF:
		return "NF"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// TwoLinkResult is a constructed two-link scenario. Link1 is 0->1 and
// Link2 is 2->3.
type TwoLinkResult struct {
	*Network
	Link1, Link2 Link
}

// TwoLink constructs a canonical instance of the requested class with the
// default PHY config. The geometries are chosen so that, with 19 dBm
// transmit power and the default propagation, the carrier-sense and
// interference relations defining each class hold.
func TwoLink(seed int64, class Class, rate1, rate2 phy.Rate) *TwoLinkResult {
	var pos []phy.Position
	switch class {
	case CS:
		// Transmitters 150 m apart: well inside mutual CS range.
		pos = []phy.Position{{X: 0}, {X: 60}, {X: 150}, {X: 210}}
	case IA:
		// Transmitters 240 m apart (beyond CS range ~232 m); rx1 is
		// exposed to tx2 at 150 m (SINR margin ~2 dB at 1 Mb/s, so
		// capture is partial under fading), rx2 is clear of tx1.
		pos = []phy.Position{{X: 0}, {X: 90}, {X: 240}, {X: 320}}
	case NF:
		// Transmitters 270 m apart; both receivers exposed to the
		// opposite transmitter, link1 nearer its receiver than link2.
		pos = []phy.Position{{X: 0}, {X: 60}, {X: 270}, {X: 190}}
	default:
		panic("topology: unknown class")
	}
	nw := pooledNew(seed, cache.Key{Kind: "twolink-" + class.String(), N: len(pos)}, pos, nil, rate1)
	res := &TwoLinkResult{Network: nw, Link1: Link{0, 1}, Link2: Link{2, 3}}
	nw.SetRate(res.Link1, rate1)
	nw.SetRate(res.Link2, rate2)
	nw.InstallDirectRoute(res.Link1)
	nw.InstallDirectRoute(res.Link2)
	return res
}

// Chain builds an n-node linear chain with the given hop length in metres
// and installs shortest-hop routes in both directions between every pair.
func Chain(seed int64, n int, hopMetres float64, rate phy.Rate) *Network {
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: float64(i) * hopMetres}
	}
	nw := pooledNew(seed, cache.Key{Kind: "chain", N: n, Param: hopMetres}, pos, nil, rate)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			nh := i + 1
			if j < i {
				nh = i - 1
			}
			nw.Nodes[i].SetRoute(j, nh)
		}
	}
	return nw
}

// Mesh18 builds the 18-node testbed analogue: three "building" clusters
// and an outdoor "parking lot" strip, with extra wall/floor shadowing
// between clusters and a seeded spread of per-link channel error rates.
// It mirrors the paper's testbed in scale and link-quality diversity, not
// in exact floor plan.
func Mesh18(seed int64) *Network {
	return Mesh18Seeded(seed, seed)
}

// Mesh18Seeded separates the layout seed (node placement, shadowing,
// channel error) from the simulation seed (MAC backoffs, loss draws), so
// repeated runs on an identical topology see fresh randomness — the
// simulator's equivalent of re-running an experiment on the testbed.
func Mesh18Seeded(layoutSeed, simSeed int64) *Network {
	rng := rand.New(rand.NewSource(layoutSeed))
	var pos []phy.Position
	cluster := func(cx, cy float64, n int, spread float64) {
		for i := 0; i < n; i++ {
			pos = append(pos, phy.Position{
				X: cx + rng.Float64()*spread - spread/2,
				Y: cy + rng.Float64()*spread - spread/2,
			})
		}
	}
	cluster(0, 0, 5, 60)     // building A
	cluster(160, 40, 5, 60)  // building B
	cluster(320, 0, 4, 60)   // building C
	cluster(160, 160, 4, 90) // parking lot strip

	// Wall/floor attenuation between different clusters. Shadows feed the
	// gain-table build (via the layout pool) rather than the medium: the
	// table is a pure function of (layoutSeed), so cells sharing a layout
	// reuse one frozen table.
	shadow := make(map[[2]int]float64)
	setShadow := func(i, j int, db float64) {
		if i > j {
			i, j = j, i
		}
		shadow[[2]int{i, j}] = db
	}
	clusterOf := func(i int) int {
		switch {
		case i < 5:
			return 0
		case i < 10:
			return 1
		case i < 14:
			return 2
		default:
			return 3
		}
	}
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			ci, cj := clusterOf(i), clusterOf(j)
			if ci == cj {
				if rng.Float64() < 0.3 { // interior walls
					setShadow(i, j, 3+rng.Float64()*5)
				}
				continue
			}
			if ci == 3 || cj == 3 { // outdoor path: mild
				setShadow(i, j, rng.Float64()*6)
			} else { // building to building
				setShadow(i, j, 6+rng.Float64()*12)
			}
		}
	}
	nw := pooledNew(simSeed, cache.Key{Kind: "mesh18", Seed: layoutSeed, N: len(pos)}, pos, shadow, phy.Rate11)

	// Channel error diversity: most links clean, a fifth moderate, a
	// tenth poor — matching the testbed's mix of good and marginal links.
	for i := 0; i < len(pos); i++ {
		for j := 0; j < len(pos); j++ {
			if i == j {
				continue
			}
			u := rng.Float64()
			var ber float64
			switch {
			case u < 0.70:
				ber = rng.Float64() * 2e-7
			case u < 0.90:
				ber = 2e-6 + rng.Float64()*8e-6
			default:
				ber = 1e-5 + rng.Float64()*2e-5
			}
			nw.Medium.SetBER(i, j, ber)
		}
	}
	return nw
}

// GatewayScenario builds the Fig. 13 starvation topology: gateway node 0,
// node 1 sending a 1-hop flow, and node 2 sending a 2-hop flow relayed by
// node 1. Node 2 sits outside the gateway's carrier-sense range (total
// span 240 m), so the gateway's transmissions collide at node 1 with node
// 2's upstream data — the starvation mechanism of Shi et al. that Fig. 13
// demonstrates. The spacing is asymmetric (90 m + 150 m): the gateway's
// ACKs arrive at the relay with a capture margin over node 2's data, so
// the 1-hop flow thrives while the hidden 2-hop flow's data bears the
// collision losses; with symmetric spacing the collision is mutual
// annihilation and not even rate control can revive the 2-hop flow.
func GatewayScenario(seed int64, rate phy.Rate) *Network {
	pos := []phy.Position{{X: 0}, {X: 90}, {X: 240}}
	nw := pooledNew(seed, cache.Key{Kind: "gateway", N: len(pos)}, pos, nil, rate)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			nh := i + 1
			if j < i {
				nh = i - 1
			}
			nw.Nodes[i].SetRoute(j, nh)
		}
	}
	return nw
}
