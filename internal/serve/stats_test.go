package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestMetricsEndpointSchema: after a compute and a repeat (cache-hit)
// submission, GET /metrics serves Prometheus text with nonzero cache
// and job counters, and the pprof index is reachable.
func TestMetricsEndpointSchema(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})

	first := postJob(t, ts, `{"experiment":"servetoy","seed":61}`)
	getRecords(t, ts, first.ID, "") // wait for completion
	second := postJob(t, ts, `{"experiment":"servetoy","seed":61}`)
	if second.Created {
		t.Fatal("repeat submission should have been a cache hit")
	}

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE meshopt_cache_hits_total counter\n",
		"# TYPE meshopt_serve_submissions_total counter\n",
		"# TYPE meshopt_serve_jobs_done_total counter\n",
		"# TYPE meshopt_runner_cell_seconds histogram\n",
		"# TYPE meshopt_queue_wait_seconds histogram\n",
		"# TYPE meshopt_build_info gauge\n",
		"# TYPE meshopt_process_uptime_seconds gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The registry is process-global and other tests run first, so assert
	// nonzero rather than exact counts.
	for _, name := range []string{"meshopt_cache_hits_total", "meshopt_serve_submissions_total"} {
		nonzero := false
		for _, line := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok && v != "0" {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("/metrics: %s is zero after a cache-hit resubmission", name)
		}
	}

	// The computed submission went queued -> running, so the queue-wait
	// histogram must hold at least one observation.
	queueWaited := false
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "meshopt_queue_wait_seconds_count "); ok && v != "0" {
			queueWaited = true
		}
	}
	if !queueWaited {
		t.Error("/metrics: meshopt_queue_wait_seconds_count is zero after a computed job")
	}

	if code, body := get(t, ts, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "pprof") {
		t.Fatalf("GET /debug/pprof/: status %d", code)
	}
}

// TestStatsEndpointSchema: GET /v1/stats is a JSON snapshot with the
// documented keys, consistent with the job table.
func TestStatsEndpointSchema(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	first := postJob(t, ts, `{"experiment":"servetoy","seed":62}`)
	getRecords(t, ts, first.ID, "")

	code, body := get(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/v1/stats not valid JSON: %v\n%s", err, body)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.Jobs["done"] < 1 {
		t.Errorf("jobs.done = %d, want >= 1 (body: %s)", stats.Jobs["done"], body)
	}
	if stats.CacheEntries < 1 || stats.CacheBytes <= 0 {
		t.Errorf("cache footprint empty: entries=%d bytes=%d", stats.CacheEntries, stats.CacheBytes)
	}
	if len(stats.Metrics.Families) == 0 {
		t.Error("metrics snapshot empty")
	}
	// The embedded snapshot must be deterministically ordered by name.
	for i := 1; i < len(stats.Metrics.Families); i++ {
		if stats.Metrics.Families[i-1].Name >= stats.Metrics.Families[i].Name {
			t.Fatalf("metrics families not sorted: %q >= %q",
				stats.Metrics.Families[i-1].Name, stats.Metrics.Families[i].Name)
		}
	}
}

// TestEvictionEmitsEventAndCounter: the quota janitor's evictions are
// observable — a structured log event per evicted entry (key, bytes,
// last-validated age) and matching counters.
func TestEvictionEmitsEventAndCounter(t *testing.T) {
	dir := t.TempDir()
	var log strings.Builder
	s, ts := newTestServer(t, dir, Options{Log: &log, CacheMaxBytes: 1})

	before := evictionsValue()
	first := postJob(t, ts, `{"experiment":"servetoy","seed":63}`)
	getRecords(t, ts, first.ID, "")

	// The only entry is pinned while its job is resident; drop the job
	// from the table so the janitor may evict, then enforce directly.
	s.mu.Lock()
	delete(s.jobs, first.ID)
	s.mu.Unlock()
	s.enforceQuota()

	if got := evictionsValue(); got <= before {
		t.Fatalf("meshopt_cache_evictions_total did not advance (%v -> %v)", before, got)
	}
	if !strings.Contains(log.String(), `msg="cache entry evicted"`) ||
		!strings.Contains(log.String(), "last_validated_age=") ||
		!strings.Contains(log.String(), "key="+first.ID) {
		t.Fatalf("eviction event missing or lacks key/bytes/age fields:\n%s", log.String())
	}
}

func evictionsValue() float64 {
	for _, f := range obs.Default.Snapshot().Families {
		if f.Name == "meshopt_cache_evictions_total" {
			return f.Series[0].Value
		}
	}
	return 0
}
