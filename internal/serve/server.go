// Package serve is the experiment service: an HTTP control plane over
// the experiment engine with a content-addressed result cache, live
// NDJSON record streaming, and single-flight request coalescing.
//
// The engine's determinism contract — a job's record stream is a pure
// function of (experiment, seed, scale), bit-identical for any worker
// count, shard split or resume point — is what makes a serving layer
// sound. A job's output is addressed by the SHA-256 of its canonical
// form, so caching is not best-effort memoization but exact: a cache
// hit streams the same bytes a fresh run would produce, coalesced
// submissions can all attach to one execution because every client
// would receive identical bytes anyway, and a restart resumes from a
// checkpointed prefix because the recomputed suffix is guaranteed to
// continue it bit-for-bit.
//
// API surface (all JSON unless noted):
//
//	POST /v1/jobs                submit {experiment|spec, seed, scale, shards};
//	                             coalesces onto a running/cached job by content hash
//	GET  /v1/jobs/{id}           status: state, cells done (frontier), records, cache/resume info
//	GET  /v1/jobs/{id}/records   NDJSON record stream, live as cells complete;
//	                             ?from=N resumes at cell N
//	GET  /v1/experiments         the experiment + scenario registry
//
// Jobs with shards > 1 are handed to the internal/dist coordinator
// (shard-checkpointed in the cache's runs/ directory); everything else
// runs on the in-process engine. Admission is a bounded set of
// concurrently executing jobs with a FIFO queue behind it.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments/exp"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// Options configures a Server.
type Options struct {
	// CacheDir is the content-addressed result store (required).
	CacheDir string
	// MaxJobs bounds concurrently executing jobs; further submissions
	// queue FIFO. Default 2.
	MaxJobs int
	// Slots is the worker-slot count for sharded (shards > 1) jobs; 0
	// uses the coordinator default.
	Slots int
	// Spawner launches workers for sharded jobs; nil spawns local
	// `meshopt work` subprocesses of this binary.
	Spawner dist.Spawner
	// JobTTL bounds how long a terminal job stays in the in-memory job
	// table after it settles. A done job is evicted only once its cache
	// entry revalidates — eviction must never cost a recomputation; a
	// resubmission of an evicted job is a pure cache hit under the same
	// ID. Failed jobs are evicted unconditionally (they hold no result
	// state; resubmitting one re-executes either way). 0 disables GC:
	// the table grows with the number of distinct jobs ever submitted.
	JobTTL time.Duration
	// CacheMaxBytes bounds the summed size of sealed cache entries; the
	// janitor evicts least-recently-validated entries past the quota,
	// revalidating each candidate first and never touching entries whose
	// key is live in the job table. 0 disables the quota.
	CacheMaxBytes int64
	// Logger receives structured server events (job lifecycle, sweeps,
	// evictions), with job/state/cell fields. Nil derives an info-level
	// text logger from Log — or a discard logger when Log is nil too.
	Logger *slog.Logger
	// Log is the legacy progress writer; it only matters when Logger is
	// nil (see above). Nil discards.
	Log io.Writer
}

// Server is the experiment service. Create with New, mount Handler on
// any http.Server, stop with Shutdown.
type Server struct {
	o      Options
	cache  *Cache
	mux    *http.ServeMux
	ctx    context.Context // canceled at Shutdown; bounds coordinator runs
	cancel context.CancelFunc
	closed atomic.Bool

	// trace is the server-wide span recorder: every job's execution
	// timeline roots here and GET /v1/jobs/{id}/trace exports the job's
	// subtree. Spans of swept jobs are dropped with them, so the
	// recorder's footprint tracks the job table's.
	trace *span.Recorder

	start time.Time

	mu      sync.Mutex // guards jobs/queue/running; never taken inside a job's lock
	jobs    map[string]*job
	queue   []*job
	running int
	wg      sync.WaitGroup // running executions
}

// New creates a server over the given cache directory.
func New(o Options) (*Server, error) {
	if o.MaxJobs <= 0 {
		o.MaxJobs = 2
	}
	if o.Logger == nil {
		o.Logger = obs.TextLogger(o.Log)
	}
	cache, err := NewCache(o.CacheDir)
	if err != nil {
		return nil, err
	}
	cache.SetLogger(o.Logger)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		o:      o,
		cache:  cache,
		mux:    http.NewServeMux(),
		ctx:    ctx,
		cancel: cancel,
		trace:  span.NewRecorder(),
		start:  time.Now(),
		jobs:   map[string]*job{},
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	obs.Mount(s.mux, obs.Default)
	if o.JobTTL > 0 || o.CacheMaxBytes > 0 {
		go s.janitor(o.JobTTL)
	}
	return s, nil
}

// janitor periodically sweeps expired terminal jobs out of the job
// table and enforces the cache byte quota until the server shuts down.
func (s *Server) janitor(ttl time.Duration) {
	period := ttl / 4
	if period <= 0 {
		period = 200 * time.Millisecond // quota-only janitor
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-t.C:
			if ttl > 0 {
				s.sweepJobs(now)
			}
			s.enforceQuota()
		}
	}
}

// enforceQuota brings the cache under CacheMaxBytes, pinning every key
// present in the job table: a resident done job's entry backs its live
// record stream, and evicting it would turn a warm ID into a broken
// stream. Unpinned entries (jobs GC'd by TTL, or imported runs never
// submitted this process) are fair game, least recently validated
// first.
func (s *Server) enforceQuota() {
	quota := s.o.CacheMaxBytes
	if quota <= 0 {
		return
	}
	s.mu.Lock()
	pinned := make(map[string]bool, len(s.jobs))
	for key := range s.jobs {
		pinned[key] = true
	}
	s.mu.Unlock()
	// Opened speculatively and dropped when nothing was evicted: the
	// janitor ticks frequently and a span per no-op tick would grow the
	// recorder forever.
	sp := s.trace.Root("cache.evict")
	n, freed := s.cache.EvictOver(quota, pinned)
	sp.End()
	if n == 0 {
		s.trace.Drop(sp)
		return
	}
	sp.SetAttr("evicted", strconv.Itoa(n))
	s.o.Logger.Info("cache quota enforced", "evicted", n, "freed_bytes", freed, "quota_bytes", quota)
}

// sweepJobs evicts jobs that have been terminal for at least JobTTL,
// returning how many were removed. Done jobs are evicted only when
// their cache entry revalidates — the entry is what makes eviction
// free (a resubmission hits the cache); an entry that has gone missing
// or corrupt keeps the job resident rather than silently turning a
// warm ID into a 404-plus-recompute. The revalidation (a full rehash)
// runs with the server lock released.
func (s *Server) sweepJobs(now time.Time) int {
	ttl := s.o.JobTTL
	s.mu.Lock()
	var expired []*job
	for _, j := range s.jobs {
		v := j.snapshot()
		if terminal(v.state) && !v.finished.IsZero() && now.Sub(v.finished) >= ttl {
			expired = append(expired, j)
		}
	}
	s.mu.Unlock()

	evicted := 0
	for _, j := range expired {
		if j.snapshot().state == stateDone {
			// Revalidate, not Lookup: eviction relies on the entry being
			// genuinely servable, so the index fast path is not enough —
			// a stale fingerprint match must not free a job whose entry
			// rotted on disk.
			vsp := j.span.Child("cache.validate")
			_, _, _, ok := s.cache.Revalidate(j.key)
			vsp.End()
			if !ok {
				continue // entry invalid: eviction would cost a recompute
			}
		}
		s.mu.Lock()
		// Re-check under the lock: a resubmission may have replaced the
		// expired job with a fresh (non-terminal) one in the meantime.
		if cur := s.jobs[j.key]; cur == j && terminal(cur.snapshot().state) {
			delete(s.jobs, j.key)
			s.trace.Drop(j.span)
			evicted++
		}
		s.mu.Unlock()
	}
	if evicted > 0 {
		metJobsSwept.Add(float64(evicted))
		s.o.Logger.Info("expired jobs swept from table", "evicted", evicted)
	}
	return evicted
}

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the underlying content-addressed store (startup imports
// of coordinator run directories go through it).
func (s *Server) Cache() *Cache { return s.cache }

// Shutdown stops the server gracefully: no new submissions or
// executions, queued jobs failed, streaming clients woken, in-flight
// executions cancelled at their next cell boundary and checkpointed
// (each part file a valid resumable prefix). It waits for executions
// to settle until ctx expires — cancelling the server context stops
// both the in-process engine (exp.Options.Context) and coordinator
// runs (dist.Run kills its workers), so settlement is bounded by one
// cell's runtime, not the remaining sweep. On return it reports, per
// interrupted job, how many cells completed (checkpointed, never
// recomputed) and how many were abandoned to the next resume.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.cancel()
	s.mu.Lock()
	queued := s.queue
	s.queue = nil
	var inflight []*job
	for _, j := range s.jobs {
		if j.snapshot().state == stateRunning {
			inflight = append(inflight, j)
		}
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.publish(func(j *job) {
			j.state = stateFailed
			j.errMsg = errShutdown.Error()
		})
	}
	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	err := error(nil)
	select {
	case <-settled:
	case <-ctx.Done():
		err = ctx.Err()
	}
	completed, abandoned := 0, 0
	for _, j := range inflight {
		v := j.snapshot()
		completed += v.cellsDone
		abandoned += j.cells - v.cellsDone
	}
	if len(inflight) > 0 {
		s.o.Logger.Info("shutdown interrupted in-flight jobs",
			"jobs", len(inflight), "cells_completed", completed, "cells_abandoned", abandoned)
	}
	return err
}

// admit starts queued jobs while execution slots are free. Caller holds
// s.mu.
func (s *Server) admit() {
	for s.running < s.o.MaxJobs && len(s.queue) > 0 && !s.closed.Load() {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.running++
		s.wg.Add(1)
		go s.execute(j)
	}
	metJobsRunning.Set(float64(s.running))
	metQueueDepth.Set(float64(len(s.queue)))
}

// execute runs one job to a terminal state and frees its slot.
func (s *Server) execute(j *job) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.admit()
		s.mu.Unlock()
		s.wg.Done()
	}()
	j.queuedSpan.End()
	metQueueWait.Observe(time.Since(j.queuedAt).Seconds())
	j.publish(func(j *job) { j.state = stateRunning })
	s.o.Logger.Info("job running",
		"job", j.key[:12], "experiment", j.req.Experiment, "seed", j.req.Seed,
		"scale", j.req.Scale, "shards", j.req.Shards, "cells", j.cells)
	runSpan := j.span.Child("run")
	ctx := span.NewContext(s.ctx, runSpan)
	var err error
	if j.req.Shards > 1 {
		err = s.runDist(ctx, j)
	} else {
		err = s.runLocal(ctx, j)
	}
	runSpan.End()
	defer j.span.End()
	if err != nil {
		metJobsFailed.Inc()
		j.span.SetAttr("state", stateFailed)
		s.o.Logger.Warn("job failed", "job", j.key[:12], "err", err)
		j.publish(func(j *job) {
			j.state = stateFailed
			j.errMsg = err.Error()
		})
		return
	}
	j.span.SetAttr("state", stateDone)
	metJobsDone.Inc()
	s.o.Logger.Info("job done", "job", j.key[:12], "records", j.snapshot().records)
	// A fresh entry just landed; trim the cache if it pushed past quota.
	s.enforceQuota()
}

// submitRequest is the POST /v1/jobs body. Exactly one of Experiment
// (a registered figure/scenario name or alias) or Spec (an inline
// scenario spec) names the work.
type submitRequest struct {
	Experiment string          `json:"experiment,omitempty"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Seed       int64           `json:"seed"`
	Scale      string          `json:"scale,omitempty"` // default "quick"
	Shards     int             `json:"shards,omitempty"`
}

// submitResponse answers a submission: Created reports whether this
// submission started (or queued) a new execution — false means the
// client attached to a cache entry or an already-in-flight identical
// job.
type submitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cells   int    `json:"cells"`
	Created bool   `json:"created"`
}

// submit coalesces a request onto its job, creating and enqueueing one
// only when no valid cache entry or live identical job exists. The
// entry validation — a full rehash of the file — runs before the
// server lock is taken, so warm submissions of large entries do not
// convoy the whole API behind disk I/O; the map check under the lock
// then decides what the validation outcome means.
func (s *Server) submit(req dist.Job) (*job, bool, error) {
	metSubmissions.Inc()
	key, err := JobKey(req)
	if err != nil {
		return nil, false, err
	}
	e, sc, err := req.Resolve()
	if err != nil {
		return nil, false, err
	}
	// The root span is opened speculatively: if this submission ends up
	// coalescing onto an existing job, the tree is dropped again. The
	// cache lookup (and a hit's reduction replay) happen before the job
	// exists, so they could not otherwise nest under it.
	jobSpan := s.trace.Root("job",
		span.Str("experiment", e.Name()), span.I64("seed", req.Seed),
		span.Str("scale", req.Scale), span.Int("shards", req.Shards))
	lookupSpan := jobSpan.Child("cache.lookup")
	path, records, dataBytes, entryOK := s.cache.Lookup(key)
	lookupSpan.End()
	// A cache-hit-born job never runs a reduction, so its summary is
	// recomputed by replaying the entry's records through Reduce —
	// GET /v1/jobs/{id} then shows the same summary a computed job
	// would. Like the entry validation, this runs before the lock.
	summary := ""
	if entryOK {
		jobSpan.SetAttr("cache", "hit")
		reduceSpan := jobSpan.Child("reduce")
		if res, rerr := reduceEntry(e, path); rerr == nil && res != nil {
			var b strings.Builder
			res.Print(&b)
			summary = b.String()
		}
		reduceSpan.End()
	}
	// Built speculatively before the lock: the cell enumeration of a
	// large sweep is not free, and holding s.mu through it would convoy
	// the whole API the same way the entry rehash above would.
	fresh := newJob(key, req, e, sc)
	fresh.span = jobSpan

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		s.trace.Drop(jobSpan)
		return nil, false, errShutdown
	}
	if j := s.jobs[key]; j != nil {
		st := j.snapshot().state
		switch {
		case !terminal(st):
			metCoalesced.Inc()
			j.span.Child("coalesced").End()
			s.trace.Drop(jobSpan)
			return j, false, nil // single-flight: attach to the in-flight job
		case st == stateDone:
			// The entry re-validated on this attach: a corrupted or
			// evicted file must trigger recomputation, never be served.
			if entryOK {
				metCoalesced.Inc()
				j.span.Child("coalesced").End()
				s.trace.Drop(jobSpan)
				return j, false, nil
			}
			// The job may have finished — renaming its entry into
			// place — after the pre-lock validation ran; re-check
			// before declaring the entry corrupt (rare path, so the
			// rehash under the lock is acceptable here).
			if _, _, _, ok := s.cache.Lookup(key); ok {
				metCoalesced.Inc()
				j.span.Child("coalesced").End()
				s.trace.Drop(jobSpan)
				return j, false, nil
			}
		}
		// Failed, or done with an invalid entry: fall through and
		// replace, retiring the replaced job's trace with it.
		s.trace.Drop(j.span)
	}
	j := fresh
	if entryOK {
		j.state = stateDone
		j.finished = time.Now()
		j.cacheHit = true
		j.cellsDone = j.cells
		j.records = records
		j.bytes = dataBytes
		j.path = path
		j.summary = summary
		j.span.End()
		s.jobs[key] = j // fully initialized before it becomes reachable
		metCoalesced.Inc()
		s.o.Logger.Info("job served from cache", "job", key[:12], "records", records)
		return j, false, nil
	}
	j.span.SetAttr("cache", "miss")
	j.queuedSpan = j.span.Child("queued")
	j.queuedAt = time.Now()
	s.jobs[key] = j
	s.queue = append(s.queue, j)
	s.admit()
	return j, true, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Scale == "" {
		req.Scale = "quick"
	}
	if req.Shards < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("shards must be >= 0"))
		return
	}
	shards := req.Shards
	if shards == 0 {
		shards = 1
	}
	j, created, err := s.submit(dist.Job{
		Experiment: req.Experiment,
		Spec:       req.Spec,
		Seed:       req.Seed,
		Scale:      req.Scale,
		Shards:     shards,
	})
	if err != nil {
		status := http.StatusBadRequest
		if err == errShutdown {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, submitResponse{ID: j.key, State: j.snapshot().state, Cells: j.cells, Created: created})
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	ID           string `json:"id"`
	Experiment   string `json:"experiment"`
	Seed         int64  `json:"seed"`
	Scale        string `json:"scale"`
	Shards       int    `json:"shards"`
	State        string `json:"state"`
	Cells        int    `json:"cells"`
	CellsDone    int    `json:"cells_done"`
	Records      int    `json:"records"`
	Bytes        int64  `json:"bytes"`
	CacheHit     bool   `json:"cache_hit"`
	ResumedCells int    `json:"resumed_cells,omitempty"`
	ReusedShards int    `json:"reused_shards,omitempty"`
	Error        string `json:"error,omitempty"`
	Summary      string `json:"summary,omitempty"`
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	v := j.snapshot()
	writeJSON(w, jobStatus{
		ID:           j.key,
		Experiment:   j.e.Name(),
		Seed:         j.req.Seed,
		Scale:        j.req.Scale,
		Shards:       j.req.Shards,
		State:        v.state,
		Cells:        j.cells,
		CellsDone:    v.cellsDone,
		Records:      v.records,
		Bytes:        v.bytes,
		CacheHit:     v.cacheHit,
		ResumedCells: v.resumedCells,
		ReusedShards: v.reusedShards,
		Error:        v.errMsg,
		Summary:      v.summary,
	})
}

// handleTrace exports a job's span subtree from the server-wide
// recorder: Chrome trace-event JSON by default (load it in Perfetto or
// chrome://tracing), the compact JSONL span log with ?format=jsonl. A
// still-running job exports honest partial intervals — open spans carry
// their duration so far — so the timeline is inspectable mid-run.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	spans := span.Subtree(s.trace.Snapshot(), j.span.ID())
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		span.WriteChrome(w, spans)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		span.WriteJSONL(w, spans)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad format=%q (want chrome or jsonl)", r.URL.Query().Get("format")))
	}
}

// handleRecords streams a job's records as NDJSON, live: published
// bytes are copied as they appear and the handler waits on the job's
// update channel between chunks, so clients receive cells as the
// engine (or the coordinator's merge frontier) completes them. The
// bytes are exactly what `meshopt fig`/`meshopt run` would write to
// stdout for the same job — the completion marker lives beyond the
// published byte range and is never sent. ?from=N skips records of
// cells below N (a client-side resume offset).
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q (want a non-negative cell index)", q))
			return
		}
		from = n
	}
	v := j.snapshot()
	if v.state == stateFailed {
		// A failed job's stream is incomplete by definition; refuse it
		// up front rather than serving a prefix that looks whole.
		httpError(w, http.StatusConflict, fmt.Errorf("job failed: %s", v.errMsg))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	cacheState := "miss"
	if v.cacheHit {
		cacheState = "hit"
	}
	w.Header().Set("X-Meshopt-Cache", cacheState)
	flusher, _ := w.(http.Flusher)
	metSubscribers.Inc()
	defer metSubscribers.Dec()

	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var off int64
	skipping := from > 0
	for {
		v := j.snapshot()
		if f == nil && v.path != "" {
			var err error
			// Held open across the part→entry rename: the fd follows
			// the inode, and published offsets are stable across it.
			if f, err = os.Open(v.path); err != nil {
				return
			}
		}
		if f != nil && off < v.bytes {
			n, err := copyRecords(w, f, off, v.bytes, from, &skipping)
			if err != nil {
				return // client gone
			}
			off = n
			if flusher != nil {
				flusher.Flush()
			}
		}
		if v.state == stateFailed {
			// The job failed mid-stream: abort the connection instead
			// of ending the chunked response cleanly, so a plain HTTP
			// client sees an unexpected EOF rather than a truncated
			// stream that looks complete.
			panic(http.ErrAbortHandler)
		}
		if v.state == stateDone {
			return
		}
		select {
		case <-v.update:
		case <-r.Context().Done():
			return
		}
	}
}

// copyRecords copies the published byte range [off, size) — always
// whole record lines — to w. While skipping, lines are decoded until
// one reaches cell `from`; everything from that line on is copied
// verbatim, so the suffix is byte-identical to the corresponding tail
// of the full stream.
func copyRecords(w io.Writer, f *os.File, off, size int64, from int, skipping *bool) (int64, error) {
	if !*skipping {
		_, err := io.Copy(w, io.NewSectionReader(f, off, size-off))
		return size, err
	}
	buf := make([]byte, size-off)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, size-off), buf); err != nil {
		return off, err
	}
	rest := buf
	for len(rest) > 0 {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			return off, fmt.Errorf("serve: published byte range ends mid-line")
		}
		rec, err := sink.DecodeJSONL(rest[:i])
		if err != nil {
			return off, err
		}
		if rec.Cell >= from {
			*skipping = false
			_, err := w.Write(rest)
			return size, err
		}
		rest = rest[i+1:]
	}
	return size, nil
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"` // "figure", "scenario" or "alias"
	Description string `json:"description"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var out []experimentInfo
	for _, name := range exp.Names() {
		e, _ := exp.Find(name)
		out = append(out, experimentInfo{Name: name, Kind: "figure", Description: e.Describe()})
	}
	names := scenario.Names()
	sort.Strings(names)
	for _, n := range names {
		if spec, ok := scenario.Lookup(n); ok && spec.Figure != 0 {
			continue // figure delegates already listed
		}
		out = append(out, experimentInfo{Name: n, Kind: "scenario", Description: scenario.Describe(n)})
	}
	aliases := exp.Aliases()
	var as []string
	for a := range aliases {
		as = append(as, a)
	}
	sort.Strings(as)
	for _, a := range as {
		out = append(out, experimentInfo{Name: a, Kind: "alias", Description: "alias of " + aliases[a]})
	}
	writeJSON(w, out)
}

// statsResponse is the GET /v1/stats body: a JSON introspection
// snapshot — job table by state, admission state, cache footprint, and
// the full metrics registry snapshot (the same data /metrics exposes as
// Prometheus text).
type statsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Jobs          map[string]int `json:"jobs"`
	QueueDepth    int            `json:"queue_depth"`
	Running       int            `json:"running"`
	CacheEntries  int            `json:"cache_entries"`
	CacheBytes    int64          `json:"cache_bytes"`
	Metrics       obs.Snapshot   `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := map[string]int{}
	for _, j := range s.jobs {
		jobs[j.snapshot().state]++
	}
	queued, running := len(s.queue), s.running
	s.mu.Unlock()
	writeJSON(w, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs:          jobs,
		QueueDepth:    queued,
		Running:       running,
		CacheEntries:  s.cache.Entries(),
		CacheBytes:    s.cache.Size(),
		Metrics:       obs.Default.Snapshot(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
