package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// keyVersion guards the canonical-form layout: bumping it invalidates
// every cached entry (old keys simply never match again).
const keyVersion = 1

// canonicalJob is the hashed canonical form of a job. Only fields that
// determine the output bytes participate: the experiment identity, the
// seed and the scale. Execution details (shard count, worker pool) are
// deliberately excluded — the determinism contract makes the record
// stream a pure function of this struct, which is exactly what lets one
// cache entry serve every execution plan.
type canonicalJob struct {
	Version int             `json:"v"`
	Kind    string          `json:"kind"` // "experiment" or "scenario"
	Name    string          `json:"name,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Seed    int64           `json:"seed"`
	Scale   string          `json:"scale"`
}

// JobKey derives the content-address of a job's result: the SHA-256 of
// its canonical form. Spellings that produce identical bytes map to one
// key — an alias and its canonical experiment name, a registered
// scenario name and the identical inline spec — so the cache, the
// single-flight table and the job API all coalesce them.
func JobKey(job dist.Job) (string, error) {
	if _, ok := exp.NamedScale(job.Scale); !ok {
		return "", fmt.Errorf("serve: unknown scale %q (want quick or paper)", job.Scale)
	}
	canon := canonicalJob{Version: keyVersion, Seed: job.Seed, Scale: job.Scale}
	switch {
	case len(job.Spec) > 0:
		spec, err := scenario.Parse(job.Spec)
		if err != nil {
			return "", err
		}
		canon.Kind, canon.Spec = "scenario", mustCompactSpec(spec)
	default:
		if e, ok := exp.Find(job.Experiment); ok {
			canon.Kind, canon.Name = "experiment", e.Name()
			break
		}
		if spec, ok := scenario.Lookup(job.Experiment); ok {
			canon.Kind, canon.Spec = "scenario", mustCompactSpec(spec)
			break
		}
		return "", fmt.Errorf("serve: %q is neither a registered experiment nor a scenario", job.Experiment)
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// mustCompactSpec renders a parsed spec in its canonical (compact,
// field-ordered) byte form. Specs marshal by construction, so a failure
// here is a programming error.
func mustCompactSpec(spec *scenario.Spec) json.RawMessage {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("serve: canonicalizing spec: %v", err))
	}
	return b
}

// Cache is the content-addressed on-disk result store: one
// `<key>.jsonl` per finished job, holding the job's record stream
// terminated by the same self-validating `#done records=N sha256=H`
// marker the distributed coordinator stamps on shard checkpoints. An
// in-flight job accumulates in `<key>.jsonl.part` (flushed at record
// granularity) and is renamed into place only once the marker is
// written, so a crash at any point leaves either a valid entry or a
// resumable prefix — never a corrupt entry that Lookup would serve.
//
// Alongside the entries the cache keeps an advisory index
// (`index.json`) of validated metadata — record count, stream SHA-256,
// record-region length, plus a (size, mtime) fingerprint — so repeated
// Lookups of an entry this process has already validated cost a stat
// instead of a full rehash. The index never substitutes for
// validation: the first Lookup of a key in a process always rehashes
// the entry (catching offline corruption the fingerprint can't), and
// any fingerprint mismatch falls back to the same full validation.
type Cache struct {
	dir string
	log *slog.Logger

	mu        sync.Mutex
	index     map[string]indexEntry
	validated map[string]bool // keys fully validated by this process
}

// indexEntry is one validated entry's metadata in index.json.
type indexEntry struct {
	Records   int    `json:"records"`
	SHA256    string `json:"sha256"`
	Length    int64  `json:"length"` // record-region bytes (marker excluded)
	Size      int64  `json:"size"`   // whole-file fingerprint
	ModTimeNS int64  `json:"mtime_ns"`
	// LastValidated orders entries for quota eviction: it is refreshed
	// every time the entry seals or a lookup serves it, so the eviction
	// janitor drops the least-recently-used entries first.
	LastValidated int64 `json:"last_validated_ns,omitempty"`
}

// NewCache opens (creating if needed) the cache directory. A readable
// index.json is loaded; a missing or corrupt one is ignored — the index
// is advisory and rebuilds itself as entries are validated.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, log: obs.Discard(), index: map[string]indexEntry{}, validated: map[string]bool{}}
	if b, err := os.ReadFile(c.indexPath()); err == nil {
		var idx map[string]indexEntry
		if json.Unmarshal(b, &idx) == nil && idx != nil {
			c.index = idx
		}
	}
	c.mu.Lock()
	c.updateGaugesLocked()
	c.mu.Unlock()
	return c, nil
}

// SetLogger installs the structured event logger (eviction events and
// the like). Nil discards. Call before the cache is shared.
func (c *Cache) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Discard()
	}
	c.log = l
}

// updateGaugesLocked refreshes the cache size gauges from the index.
// Called with c.mu held.
func (c *Cache) updateGaugesLocked() {
	var total int64
	for _, ent := range c.index {
		total += ent.Size
	}
	metCacheBytes.Set(float64(total))
	metCacheEntries.Set(float64(len(c.index)))
}

func (c *Cache) indexPath() string { return filepath.Join(c.dir, "index.json") }

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// EntryPath is the finished entry for a key.
func (c *Cache) EntryPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl")
}

// PartPath is the in-flight checkpoint for a key.
func (c *Cache) PartPath(key string) string {
	return c.EntryPath(key) + ".part"
}

// RunDir is the coordinator run directory a sharded execution of key
// uses for its shard checkpoints.
func (c *Cache) RunDir(key string) string {
	return filepath.Join(c.dir, "runs", key)
}

// Lookup validates the entry for key against its completion marker and
// returns its path, record count and record-region byte length. A
// missing, truncated, bit-flipped or marker-less entry reports ok false
// — it is never served, the job is recomputed.
//
// An entry this process has already fully validated is served from the
// index when its (size, mtime) fingerprint still matches — a stat
// instead of a rehash, which is what keeps warm resubmissions of large
// entries cheap. Any other state takes the full validation path.
func (c *Cache) Lookup(key string) (path string, records int, dataBytes int64, ok bool) {
	path = c.EntryPath(key)
	c.mu.Lock()
	ent, have := c.index[key]
	valid := c.validated[key]
	c.mu.Unlock()
	if have && valid {
		if fi, err := os.Stat(path); err == nil && fi.Size() == ent.Size && fi.ModTime().UnixNano() == ent.ModTimeNS {
			c.touch(key)
			metCacheHits.Inc()
			return path, ent.Records, ent.Length, true
		}
	}
	path, records, dataBytes, ok = c.Revalidate(key)
	if ok {
		metCacheHits.Inc()
	} else {
		metCacheMisses.Inc()
	}
	return path, records, dataBytes, ok
}

// Revalidate is Lookup without the index fast path: a full rehash of
// the entry against its completion marker, refreshing (or dropping)
// the index entry with the outcome. Callers for whom a false positive
// is costlier than the rehash — the job-table janitor, whose eviction
// must never turn a warm key into a recomputation — use it directly.
func (c *Cache) Revalidate(key string) (path string, records int, dataBytes int64, ok bool) {
	path = c.EntryPath(key)
	metCacheRevalidations.Inc()
	records, dataBytes, sum, ok := dist.ValidateRecordsFileSum(path)
	if !ok {
		c.mu.Lock()
		if _, had := c.index[key]; had {
			delete(c.index, key)
			c.persistLocked()
			c.updateGaugesLocked()
		}
		delete(c.validated, key)
		c.mu.Unlock()
		return "", 0, 0, false
	}
	c.seal(key, records, dataBytes, sum)
	return path, records, dataBytes, true
}

// Seal records a just-finished entry in the index. The writer that
// produced the entry already holds its record count, record-region
// length and stream hash — the values the completion marker was built
// from — so sealing costs one stat, never a rehash.
func (c *Cache) Seal(key string, records int, dataBytes int64, sum []byte) {
	c.seal(key, records, dataBytes, hex.EncodeToString(sum))
}

func (c *Cache) seal(key string, records int, dataBytes int64, sum string) {
	fi, err := os.Stat(c.EntryPath(key))
	if err != nil {
		return
	}
	c.mu.Lock()
	c.index[key] = indexEntry{
		Records:       records,
		SHA256:        sum,
		Length:        dataBytes,
		Size:          fi.Size(),
		ModTimeNS:     fi.ModTime().UnixNano(),
		LastValidated: time.Now().UnixNano(),
	}
	c.validated[key] = true
	c.persistLocked()
	c.updateGaugesLocked()
	c.mu.Unlock()
}

// touch refreshes a key's eviction timestamp after an index-fast-path
// lookup served it.
func (c *Cache) touch(key string) {
	c.mu.Lock()
	if ent, ok := c.index[key]; ok {
		ent.LastValidated = time.Now().UnixNano()
		c.index[key] = ent
		c.persistLocked()
	}
	c.mu.Unlock()
}

// Entries returns how many entries the index currently holds.
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Size returns the summed on-disk size of the indexed entries.
func (c *Cache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, ent := range c.index {
		total += ent.Size
	}
	return total
}

// EvictOver brings the cache under quota bytes by deleting entries in
// least-recently-validated order, skipping pinned keys (live jobs whose
// entry is still being served). Each candidate is revalidated before
// its file is deleted: an entry that fails validation drops out of the
// index without a delete (Revalidate already pruned it), so the index
// stays consistent with the directory either way. Returns how many
// entries were deleted and how many bytes they freed.
func (c *Cache) EvictOver(quota int64, pinned map[string]bool) (evicted int, freed int64) {
	if quota <= 0 {
		return 0, 0
	}
	type cand struct {
		key  string
		size int64
		last int64
	}
	c.mu.Lock()
	var total int64
	cands := make([]cand, 0, len(c.index))
	for k, ent := range c.index {
		total += ent.Size
		cands = append(cands, cand{key: k, size: ent.Size, last: ent.LastValidated})
	}
	c.mu.Unlock()
	if total <= quota {
		return 0, 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].last != cands[j].last {
			return cands[i].last < cands[j].last
		}
		return cands[i].key < cands[j].key
	})
	for _, cd := range cands {
		if total <= quota {
			break
		}
		if pinned[cd.key] {
			continue
		}
		if _, _, _, ok := c.Revalidate(cd.key); !ok {
			// Already invalid: Revalidate dropped it from the index, so
			// its bytes no longer count against the quota.
			total -= cd.size
			continue
		}
		if err := os.Remove(c.EntryPath(cd.key)); err != nil {
			continue
		}
		c.mu.Lock()
		delete(c.index, cd.key)
		delete(c.validated, cd.key)
		c.persistLocked()
		c.updateGaugesLocked()
		c.mu.Unlock()
		total -= cd.size
		freed += cd.size
		evicted++
		metCacheEvictions.Inc()
		metCacheEvictedBytes.Add(float64(cd.size))
		c.log.Info("cache entry evicted",
			"key", cd.key, "bytes", cd.size,
			"last_validated_age", time.Since(time.Unix(0, cd.last)).Round(time.Millisecond))
	}
	return evicted, freed
}

// persistLocked writes index.json atomically (tmp + rename). Failures
// are ignored: the index is advisory, and the worst a lost write costs
// is one rehash in a future process. Called with c.mu held.
func (c *Cache) persistLocked() {
	b, err := json.MarshalIndent(c.index, "", "  ")
	if err != nil {
		return
	}
	tmp := c.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return
	}
	os.Rename(tmp, c.indexPath())
}

// ImportRunDir converts a finished coordinator run directory into a
// cache entry: the manifest names the job (and therefore the key), and
// merged.jsonl — byte-identical to the unsharded stream by the
// coordinator's contract — becomes the entry's record region, with the
// completion marker recomputed during the copy. Importing an
// already-cached job is a no-op.
func (c *Cache) ImportRunDir(dir string) (key string, err error) {
	job, _, err := dist.ReadRunManifest(dir)
	if err != nil {
		return "", err
	}
	key, err = JobKey(job)
	if err != nil {
		return "", err
	}
	if _, _, _, ok := c.Lookup(key); ok {
		return key, nil
	}
	merged, err := os.Open(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		return "", fmt.Errorf("serve: import %s: no merged stream (is the run complete?): %w", dir, err)
	}
	defer merged.Close()

	part := c.PartPath(key)
	f, err := os.Create(part)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	n := 0
	var dataBytes int64
	sc := sink.NewLineScanner(merged)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			return "", err
		}
		h.Write(line)
		h.Write([]byte{'\n'})
		n++
		dataBytes += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(f, "%s\n", dist.DoneMarker(n, h.Sum(nil))); err != nil {
		return "", err
	}
	if err := f.Sync(); err != nil {
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(part, c.EntryPath(key)); err != nil {
		return "", err
	}
	c.Seal(key, n, dataBytes, h.Sum(nil))
	return key, nil
}
