package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/experiments/exp"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// keyVersion guards the canonical-form layout: bumping it invalidates
// every cached entry (old keys simply never match again).
const keyVersion = 1

// canonicalJob is the hashed canonical form of a job. Only fields that
// determine the output bytes participate: the experiment identity, the
// seed and the scale. Execution details (shard count, worker pool) are
// deliberately excluded — the determinism contract makes the record
// stream a pure function of this struct, which is exactly what lets one
// cache entry serve every execution plan.
type canonicalJob struct {
	Version int             `json:"v"`
	Kind    string          `json:"kind"` // "experiment" or "scenario"
	Name    string          `json:"name,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Seed    int64           `json:"seed"`
	Scale   string          `json:"scale"`
}

// JobKey derives the content-address of a job's result: the SHA-256 of
// its canonical form. Spellings that produce identical bytes map to one
// key — an alias and its canonical experiment name, a registered
// scenario name and the identical inline spec — so the cache, the
// single-flight table and the job API all coalesce them.
func JobKey(job dist.Job) (string, error) {
	if _, ok := exp.NamedScale(job.Scale); !ok {
		return "", fmt.Errorf("serve: unknown scale %q (want quick or paper)", job.Scale)
	}
	canon := canonicalJob{Version: keyVersion, Seed: job.Seed, Scale: job.Scale}
	switch {
	case len(job.Spec) > 0:
		spec, err := scenario.Parse(job.Spec)
		if err != nil {
			return "", err
		}
		canon.Kind, canon.Spec = "scenario", mustCompactSpec(spec)
	default:
		if e, ok := exp.Find(job.Experiment); ok {
			canon.Kind, canon.Name = "experiment", e.Name()
			break
		}
		if spec, ok := scenario.Lookup(job.Experiment); ok {
			canon.Kind, canon.Spec = "scenario", mustCompactSpec(spec)
			break
		}
		return "", fmt.Errorf("serve: %q is neither a registered experiment nor a scenario", job.Experiment)
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// mustCompactSpec renders a parsed spec in its canonical (compact,
// field-ordered) byte form. Specs marshal by construction, so a failure
// here is a programming error.
func mustCompactSpec(spec *scenario.Spec) json.RawMessage {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("serve: canonicalizing spec: %v", err))
	}
	return b
}

// Cache is the content-addressed on-disk result store: one
// `<key>.jsonl` per finished job, holding the job's record stream
// terminated by the same self-validating `#done records=N sha256=H`
// marker the distributed coordinator stamps on shard checkpoints. An
// in-flight job accumulates in `<key>.jsonl.part` (flushed at record
// granularity) and is renamed into place only once the marker is
// written, so a crash at any point leaves either a valid entry or a
// resumable prefix — never a corrupt entry that Lookup would serve.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) the cache directory.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// EntryPath is the finished entry for a key.
func (c *Cache) EntryPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl")
}

// PartPath is the in-flight checkpoint for a key.
func (c *Cache) PartPath(key string) string {
	return c.EntryPath(key) + ".part"
}

// RunDir is the coordinator run directory a sharded execution of key
// uses for its shard checkpoints.
func (c *Cache) RunDir(key string) string {
	return filepath.Join(c.dir, "runs", key)
}

// Lookup validates the entry for key against its completion marker and
// returns its path, record count and record-region byte length. A
// missing, truncated, bit-flipped or marker-less entry reports ok false
// — it is never served, the job is recomputed.
func (c *Cache) Lookup(key string) (path string, records int, dataBytes int64, ok bool) {
	path = c.EntryPath(key)
	records, dataBytes, ok = dist.ValidateRecordsFile(path)
	if !ok {
		return "", 0, 0, false
	}
	return path, records, dataBytes, true
}

// ImportRunDir converts a finished coordinator run directory into a
// cache entry: the manifest names the job (and therefore the key), and
// merged.jsonl — byte-identical to the unsharded stream by the
// coordinator's contract — becomes the entry's record region, with the
// completion marker recomputed during the copy. Importing an
// already-cached job is a no-op.
func (c *Cache) ImportRunDir(dir string) (key string, err error) {
	job, _, err := dist.ReadRunManifest(dir)
	if err != nil {
		return "", err
	}
	key, err = JobKey(job)
	if err != nil {
		return "", err
	}
	if _, _, _, ok := c.Lookup(key); ok {
		return key, nil
	}
	merged, err := os.Open(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		return "", fmt.Errorf("serve: import %s: no merged stream (is the run complete?): %w", dir, err)
	}
	defer merged.Close()

	part := c.PartPath(key)
	f, err := os.Create(part)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	n := 0
	sc := sink.NewLineScanner(merged)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			return "", err
		}
		h.Write(line)
		h.Write([]byte{'\n'})
		n++
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(f, "%s\n", dist.DoneMarker(n, h.Sum(nil))); err != nil {
		return "", err
	}
	if err := f.Sync(); err != nil {
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return key, os.Rename(part, c.EntryPath(key))
}
