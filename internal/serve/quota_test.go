package serve

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// sealEntry plants a valid entry and seals it into the index with a
// pinned eviction timestamp.
func sealEntry(t *testing.T, c *Cache, key string, last int64) int64 {
	t.Helper()
	writeValidEntry(t, c, key, `{"scenario":"x","series":"cell","cell":0}`)
	if _, _, _, ok := c.Lookup(key); !ok {
		t.Fatalf("planted entry %s does not validate", key)
	}
	c.mu.Lock()
	ent := c.index[key]
	ent.LastValidated = last
	c.index[key] = ent
	size := ent.Size
	c.mu.Unlock()
	return size
}

func TestCacheQuotaEvictsLeastRecentlyValidated(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{
		sealEntry(t, c, "aaaa", 1),
		sealEntry(t, c, "bbbb", 2),
		sealEntry(t, c, "cccc", 3),
	}
	one := sizes[0]
	if c.Size() != 3*one {
		t.Fatalf("cache size %d, want %d", c.Size(), 3*one)
	}

	// Under quota: nothing to do.
	if n, _ := c.EvictOver(3*one, nil); n != 0 {
		t.Fatalf("under-quota eviction removed %d entries", n)
	}
	// Over quota by one entry: the least-recently-validated goes.
	n, freed := c.EvictOver(2*one, nil)
	if n != 1 || freed != one {
		t.Fatalf("evicted %d entries (%d bytes), want 1 (%d)", n, freed, one)
	}
	if _, err := os.Stat(c.EntryPath("aaaa")); !os.IsNotExist(err) {
		t.Fatal("oldest entry file survived eviction")
	}
	if _, _, _, ok := c.Lookup("aaaa"); ok {
		t.Fatal("evicted entry still served")
	}
	for _, key := range []string{"bbbb", "cccc"} {
		if _, _, _, ok := c.Lookup(key); !ok {
			t.Fatalf("entry %s lost collaterally", key)
		}
	}
	// The persisted index must agree with the directory.
	idx, err := os.ReadFile(c.indexPath())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(idx, []byte("aaaa")) {
		t.Fatalf("evicted key still indexed:\n%s", idx)
	}

	// Pinned keys are skipped even when they are the oldest.
	n, _ = c.EvictOver(one, map[string]bool{"bbbb": true})
	if n != 1 {
		t.Fatalf("pinned eviction removed %d entries, want 1", n)
	}
	if _, _, _, ok := c.Lookup("bbbb"); !ok {
		t.Fatal("pinned entry evicted")
	}
	if _, _, _, ok := c.Lookup("cccc"); ok {
		t.Fatal("unpinned entry survived over the pinned one")
	}
}

// TestCacheQuotaRevalidatesBeforeEvicting: a candidate that fails
// revalidation drops out of the index (Revalidate already pruned it)
// without counting as an eviction, and healthy entries are preserved
// when the rot alone brings the total under quota.
func TestCacheQuotaRevalidatesBeforeEvicting(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	one := sealEntry(t, c, "aaaa", 1)
	sealEntry(t, c, "bbbb", 2)

	// Corrupt the oldest entry (size-changing, so any path catches it).
	if err := os.Truncate(c.EntryPath("aaaa"), one-3); err != nil {
		t.Fatal(err)
	}
	n, freed := c.EvictOver(one, nil)
	if n != 0 || freed != 0 {
		t.Fatalf("rotted candidate counted as eviction: n=%d freed=%d", n, freed)
	}
	if _, _, _, ok := c.Lookup("bbbb"); !ok {
		t.Fatal("healthy entry evicted despite the rotted one covering the quota")
	}
	idx, err := os.ReadFile(c.indexPath())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(idx, []byte("aaaa")) {
		t.Fatalf("rotted key still indexed:\n%s", idx)
	}
}

// TestServerQuotaPinsLiveJobs: enforceQuota must never evict an entry
// whose job is resident — it backs the job's live record stream — while
// a fresh server (empty job table) trims the same cache to quota.
func TestServerQuotaPinsLiveJobs(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir, Options{CacheMaxBytes: 1})
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":51}`)
	want, _ := getRecords(t, ts, sr.ID, "")

	s.enforceQuota()
	if _, _, _, ok := s.cache.Lookup(sr.ID); !ok {
		t.Fatal("quota evicted a resident job's entry")
	}
	if got, _ := getRecords(t, ts, sr.ID, ""); !bytes.Equal(got, want) {
		t.Fatal("stream changed after enforceQuota")
	}

	// A fresh server over the same cache holds no jobs: the quota now
	// applies and the entry goes.
	s2, _ := newTestServer(t, dir, Options{CacheMaxBytes: 1})
	s2.enforceQuota()
	if _, _, _, ok := s2.cache.Lookup(sr.ID); ok {
		t.Fatal("unpinned entry survived a 1-byte quota")
	}
}

// TestServerQuotaJanitorRuns: CacheMaxBytes alone (no JobTTL) must
// start the janitor and bring an over-quota cache down without any
// explicit enforceQuota call.
func TestServerQuotaJanitorRuns(t *testing.T) {
	dir := t.TempDir()
	// Seed the cache with an entry from a first server, then shut it
	// down so nothing pins the key.
	s, ts := newTestServer(t, dir, Options{})
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":53}`)
	getRecords(t, ts, sr.ID, "")
	_ = s

	s2, _ := newTestServer(t, dir, Options{CacheMaxBytes: 1})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, _, ok := s2.cache.Lookup(sr.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never enforced the cache quota")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheHitJobHasSummary: a job born from a cache hit never ran a
// reduction, but its status must show the same summary a computed job
// reports — replayed from the entry's records.
func TestCacheHitJobHasSummary(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, Options{})
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":57}`)
	getRecords(t, ts, sr.ID, "")
	computed := getStatus(t, ts, sr.ID).Summary
	if !strings.Contains(computed, "servetoy: sum=") {
		t.Fatalf("computed summary missing: %q", computed)
	}

	// A fresh server over the same cache: the submission is a pure hit.
	_, ts2 := newTestServer(t, dir, Options{})
	sr2 := postJob(t, ts2, `{"experiment":"servetoy","seed":57}`)
	if sr2.Created || sr2.State != stateDone {
		t.Fatalf("restart missed the cache: %+v", sr2)
	}
	st := getStatus(t, ts2, sr2.ID)
	if !st.CacheHit {
		t.Fatalf("not a cache hit: %+v", st)
	}
	if st.Summary != computed {
		t.Fatalf("cache-hit summary %q differs from computed %q", st.Summary, computed)
	}
}
