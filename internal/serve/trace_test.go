package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs/span"
)

// TestTraceEndpoint: a completed job exports its span subtree as
// Chrome trace-event JSON (the default) and as the JSONL span log; both
// parse back to the same canonical tree, which carries the serve-side
// lifecycle (cache lookup, queue wait, run) down to the engine's
// per-cell spans. A cache-hit resubmission gets its own trace whose
// tree records the hit instead of a run.
func TestTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{})

	first := postJob(t, ts, `{"experiment":"servetoy","seed":71}`)
	getRecords(t, ts, first.ID, "") // wait for completion

	code, body := get(t, ts, "/v1/jobs/"+first.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d\n%s", code, body)
	}
	chromeSpans, err := span.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("trace not parseable Chrome JSON: %v\n%s", err, body)
	}
	tree := span.Tree(chromeSpans)
	for _, want := range []string{"job{", "cache.lookup", "queued", "run", "exp.run{", "cell{", "reduce"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace tree missing %q:\n%s", want, tree)
		}
	}
	if !strings.Contains(tree, "cache=miss") {
		t.Fatalf("computed job's root span not marked cache=miss:\n%s", tree)
	}

	code, jsonl := get(t, ts, "/v1/jobs/"+first.ID+"/trace?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("GET trace?format=jsonl: status %d", code)
	}
	jsonlSpans, err := span.Parse(strings.NewReader(jsonl))
	if err != nil {
		t.Fatalf("jsonl trace not parseable: %v\n%s", err, jsonl)
	}
	if got := span.Tree(jsonlSpans); got != tree {
		t.Fatalf("jsonl and chrome exports disagree:\njsonl:\n%s\nchrome:\n%s", got, tree)
	}

	if code, _ := get(t, ts, "/v1/jobs/"+first.ID+"/trace?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("bad format: status %d, want 400", code)
	}

	// A resubmission while the job is resident coalesces onto it: the
	// same trace, now with a coalesced marker.
	second := postJob(t, ts, `{"experiment":"servetoy","seed":71}`)
	if second.Created || second.ID != first.ID {
		t.Fatalf("repeat submission did not coalesce: %+v", second)
	}
	if _, body := get(t, ts, "/v1/jobs/"+first.ID+"/trace"); !strings.Contains(body, "coalesced") {
		t.Fatalf("coalesced resubmission left no span:\n%s", body)
	}

	// Drop the job from the table (keeping its cache entry) and resubmit:
	// the job is reborn from the cache, and its fresh trace records the
	// hit — lookup plus the replayed reduction, no run.
	s.mu.Lock()
	delete(s.jobs, first.ID)
	s.mu.Unlock()
	third := postJob(t, ts, `{"experiment":"servetoy","seed":71}`)
	if third.Created {
		t.Fatal("post-eviction resubmission should have been a cache hit")
	}
	code, hitBody := get(t, ts, "/v1/jobs/"+third.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET cache-hit trace: status %d", code)
	}
	hitSpans, err := span.Parse(strings.NewReader(hitBody))
	if err != nil {
		t.Fatalf("cache-hit trace not parseable: %v", err)
	}
	hitTree := span.Tree(hitSpans)
	if !strings.Contains(hitTree, "cache=hit") || !strings.Contains(hitTree, "cache.lookup") {
		t.Fatalf("cache-hit trace not marked as a hit:\n%s", hitTree)
	}
	if strings.Contains(hitTree, "exp.run{") {
		t.Fatalf("cache-hit trace contains a run:\n%s", hitTree)
	}
}
