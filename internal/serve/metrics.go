package serve

import "repro/internal/obs"

// Serve-layer metrics, registered in the process-wide registry. All
// out-of-band: job lifecycle, admission and cache bookkeeping are
// counted, the record bytes themselves never touched.
var (
	metSubmissions = obs.Default.Counter("meshopt_serve_submissions_total",
		"Job submissions received (POST /v1/jobs).")
	metCoalesced = obs.Default.Counter("meshopt_serve_coalesced_total",
		"Submissions coalesced onto an existing job or cache entry instead of executing.")
	metJobsRunning = obs.Default.Gauge("meshopt_serve_jobs_running",
		"Jobs currently executing.")
	metQueueDepth = obs.Default.Gauge("meshopt_serve_queue_depth",
		"Jobs queued behind the admission limit.")
	metJobsDone = obs.Default.Counter("meshopt_serve_jobs_done_total",
		"Jobs that reached the done state by executing.")
	metJobsFailed = obs.Default.Counter("meshopt_serve_jobs_failed_total",
		"Jobs that reached the failed state.")
	metJobsSwept = obs.Default.Counter("meshopt_serve_jobs_swept_total",
		"Terminal jobs GC'd from the job table by the TTL janitor.")
	metQueueWait = obs.Default.Histogram("meshopt_queue_wait_seconds",
		"Time a job spent queued before it started running.", obs.TimeBuckets())
	metSubscribers = obs.Default.Gauge("meshopt_serve_stream_subscribers",
		"Live GET /v1/jobs/{id}/records streams.")

	metCacheHits = obs.Default.Counter("meshopt_cache_hits_total",
		"Cache lookups that served a valid entry.")
	metCacheMisses = obs.Default.Counter("meshopt_cache_misses_total",
		"Cache lookups that found no valid entry.")
	metCacheRevalidations = obs.Default.Counter("meshopt_cache_revalidations_total",
		"Full entry rehashes (index fast path not taken).")
	metCacheEvictions = obs.Default.Counter("meshopt_cache_evictions_total",
		"Entries deleted by the quota janitor.")
	metCacheEvictedBytes = obs.Default.Counter("meshopt_cache_evicted_bytes_total",
		"Bytes freed by quota evictions.")
	metCacheBytes = obs.Default.Gauge("meshopt_cache_bytes",
		"Summed on-disk size of indexed cache entries.")
	metCacheEntries = obs.Default.Gauge("meshopt_cache_entries",
		"Indexed cache entries.")
)
