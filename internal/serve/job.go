package serve

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"context"

	"repro/internal/dist"
	"repro/internal/experiments/exp"
	"repro/internal/obs/span"
	"repro/internal/scenario/sink"
)

// Job states. A job moves queued → running → done|failed; a cache hit
// is born done.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// errShutdown aborts in-flight record writes when the server is
// stopping; the checkpointed prefix stays on disk for the resume.
var errShutdown = errors.New("serve: server shutting down")

// job is one coalesced unit of work: every submission whose canonical
// form hashes to the same key attaches to the same job, and every
// attached client streams the same bytes. Mutable state is guarded by
// mu; update is closed-and-replaced on every publish so streaming
// readers can wait for changes without polling.
type job struct {
	key   string
	req   dist.Job
	e     exp.Experiment
	sc    exp.Scale
	multi bool // the experiment's cells may emit several records
	cells int

	// Trace state, set once in submit before the job becomes reachable
	// (so reads need no lock): the job's root span in the server-wide
	// recorder, the open "queued" child, and when the job was enqueued.
	span       *span.Span
	queuedSpan *span.Span
	queuedAt   time.Time

	mu           sync.Mutex
	state        string
	cacheHit     bool // satisfied from a validated cache entry, no execution
	resumedCells int  // cells restored from a part checkpoint before execution
	reusedShards int  // shard checkpoints a coordinator execution replayed
	cellsDone    int
	records      int
	bytes        int64  // published record bytes in path (always a line boundary)
	path         string // part file while running, entry once done
	errMsg       string
	summary      string
	finished     time.Time // when the job reached a terminal state
	update       chan struct{}
}

func newJob(key string, req dist.Job, e exp.Experiment, sc exp.Scale) *job {
	_, multi := e.(exp.RecordStreamer)
	return &job{
		key:    key,
		req:    req,
		e:      e,
		sc:     sc,
		multi:  multi,
		cells:  len(e.Cells(req.Seed, sc)),
		state:  stateQueued,
		update: make(chan struct{}),
	}
}

// publish applies f under the job lock and wakes every waiter. The
// terminal timestamp is stamped here so every path into done/failed —
// execution, cache hit, shutdown — feeds the TTL sweep consistently.
func (j *job) publish(f func(*job)) {
	j.mu.Lock()
	f(j)
	if terminal(j.state) && j.finished.IsZero() {
		j.finished = time.Now()
	}
	close(j.update)
	j.update = make(chan struct{})
	j.mu.Unlock()
}

// view is an immutable snapshot of the job's mutable state.
type view struct {
	state        string
	cacheHit     bool
	resumedCells int
	reusedShards int
	cellsDone    int
	records      int
	bytes        int64
	path         string
	errMsg       string
	summary      string
	finished     time.Time
	update       chan struct{}
}

func (j *job) snapshot() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	return view{
		state:        j.state,
		cacheHit:     j.cacheHit,
		resumedCells: j.resumedCells,
		reusedShards: j.reusedShards,
		cellsDone:    j.cellsDone,
		records:      j.records,
		bytes:        j.bytes,
		path:         j.path,
		errMsg:       j.errMsg,
		summary:      j.summary,
		finished:     j.finished,
		update:       j.update,
	}
}

// terminal reports whether a state is final.
func terminal(state string) bool { return state == stateDone || state == stateFailed }

// --- in-process execution ---------------------------------------------

// countWriter counts bytes on their way to the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// jobSink streams one job's records to its checkpoint file, flushing
// per record so the bytes on disk always end at a record boundary, and
// publishes the new high-water mark after every record so tailing
// clients wake immediately.
type jobSink struct {
	s       *Server
	j       *job
	enc     *sink.JSONL
	cw      *countWriter
	base    int // records in the resumed prefix
	written int
}

func (ws *jobSink) Write(rec sink.Record) error {
	if ws.s.closed.Load() {
		return errShutdown
	}
	if err := ws.enc.Write(rec); err != nil {
		return err
	}
	if err := ws.enc.Flush(); err != nil {
		return err
	}
	ws.written++
	records, bytes := ws.base+ws.written, ws.cw.n
	ws.j.publish(func(j *job) {
		j.records = records
		j.bytes = bytes
	})
	return nil
}

func (ws *jobSink) Close() error { return ws.enc.Flush() }

// partInfo describes the complete-cell prefix of a checkpointed part
// file.
type partInfo struct {
	cells   int
	records int
	bytes   int64
}

// validatePart scans an interrupted job's part checkpoint and returns
// the prefix of complete cells worth keeping: records must be
// newline-terminated (a final line cut before its '\n' is a torn
// write, not a record), must decode, cells must be gapless from 0, and
// — for experiments whose cells emit several records — the final cell
// is dropped, since its completeness is unknowable without the next
// cell's first record. Any undecodable or out-of-order line ends the
// valid prefix (a torn write, a flipped byte): everything from it on
// is discarded and recomputed, which determinism makes byte-identical
// to what was lost.
func validatePart(path string, multi bool, totalCells int) (partInfo, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return partInfo{}, false
	}
	var keep partInfo
	cur := -1
	records := 0
	var off int64
scan:
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final write: no trailing newline, not a record
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) == 0 || line[0] == '#' {
			break // parts never hold markers or blanks; treat as damage
		}
		rec, err := sink.DecodeJSONL(line)
		if err != nil {
			break
		}
		switch {
		case rec.Cell == cur && multi:
			// another record of the current cell
		case rec.Cell == cur+1:
			// cell boundary: everything before this line is complete
			keep = partInfo{cells: rec.Cell, records: records, bytes: off}
			cur = rec.Cell
		default:
			break scan
		}
		records++
		off += int64(nl) + 1
		if !multi {
			keep = partInfo{cells: cur + 1, records: records, bytes: off}
		}
	}
	if keep.cells > totalCells {
		return partInfo{}, false // a stale part from a different enumeration
	}
	return keep, keep.cells > 0
}

// hashPrefix feeds the first n bytes of path into h.
func hashPrefix(path string, n int64, h hash.Hash) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.CopyN(h, f, n)
	return err
}

// runLocal executes a job on the in-process engine, checkpointing the
// record stream to the cache part file as cells complete. A valid part
// prefix left by an interrupted run is kept: the engine resumes at the
// first missing cell (exp.Options.FromCell) and the recomputed suffix
// continues the stream bit-for-bit — the determinism contract is what
// makes "resume" and "recompute" indistinguishable in the output.
func (s *Server) runLocal(ctx context.Context, j *job) error {
	part := s.cache.PartPath(j.key)
	pre, resuming := validatePart(part, j.multi, j.cells)
	if !resuming {
		pre = partInfo{}
	}
	h := sha256.New()
	var f *os.File
	var err error
	if resuming {
		if err := os.Truncate(part, pre.bytes); err != nil {
			return err
		}
		if err := hashPrefix(part, pre.bytes, h); err != nil {
			return err
		}
		if f, err = os.OpenFile(part, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			return err
		}
		s.o.Logger.Info("job resuming from checkpoint",
			"job", j.key[:12], "resumed_cells", pre.cells, "cells", j.cells)
	} else if f, err = os.Create(part); err != nil {
		return err
	}
	defer f.Close()

	cw := &countWriter{w: f, n: pre.bytes}
	ws := &jobSink{s: s, j: j, enc: sink.NewJSONL(io.MultiWriter(cw, h)), cw: cw, base: pre.records}
	j.publish(func(j *job) {
		j.resumedCells = pre.cells
		j.cellsDone = pre.cells
		j.records = pre.records
		j.bytes = pre.bytes
		j.path = part
	})

	// The server context makes Shutdown a real cancellation: the engine
	// stops claiming cells at the next boundary instead of computing the
	// rest of the sweep into a sink that refuses every write.
	res, err := exp.Run(j.e, j.req.Seed, j.sc, exp.Options{
		Sink:     ws,
		FromCell: pre.cells,
		Context:  ctx,
		Progress: func(done, _ int) {
			j.publish(func(j *job) { j.cellsDone = pre.cells + done })
		},
	})
	if err != nil {
		return err // the part keeps its valid prefix for the next resume
	}
	if _, err := fmt.Fprintf(f, "%s\n", dist.DoneMarker(pre.records+ws.written, h.Sum(nil))); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(part, s.cache.EntryPath(j.key)); err != nil {
		return err
	}
	s.cache.Seal(j.key, pre.records+ws.written, cw.n, h.Sum(nil))
	if res == nil {
		// A resumed run (FromCell > 0) skips the engine's reduction —
		// its stream lacks the prefix. The finished entry holds the
		// whole stream, so replay it: the job's summary must not
		// depend on whether a restart happened along the way.
		if res, err = reduceEntry(j.e, s.cache.EntryPath(j.key)); err != nil {
			return err
		}
	}
	summary := ""
	if res != nil {
		var b strings.Builder
		res.Print(&b)
		summary = b.String()
	}
	j.publish(func(j *job) {
		j.state = stateDone
		j.path = s.cache.EntryPath(j.key)
		j.summary = summary
	})
	return nil
}

// reduceEntry replays a finished entry's record stream through the
// experiment's reduction.
func reduceEntry(e exp.Experiment, path string) (exp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ch := make(chan sink.Record, 64)
	done := make(chan exp.Result, 1)
	go func() { done <- e.Reduce(ch) }()
	sc := sink.NewLineScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		rec, err := sink.DecodeJSONL(line)
		if err != nil {
			close(ch)
			<-done
			return nil, err
		}
		if rec.Series == "trace" {
			continue // capture records ride the stream, never the reduction
		}
		ch <- rec
	}
	close(ch)
	res := <-done
	return res, sc.Err()
}

// --- coordinator execution --------------------------------------------

// lineTee receives the live merged stream of a coordinator run: bytes
// go to the part checkpoint and the running hash, but only whole lines
// are published — a consumer never observes a torn record even when the
// merger's buffer flushes mid-line.
type lineTee struct {
	s         *Server
	j         *job
	f         io.Writer
	h         hash.Hash
	n         int64 // bytes written
	published int64 // bytes up to the last newline
	lines     int
}

func (t *lineTee) Write(p []byte) (int, error) {
	if t.s.closed.Load() {
		return 0, errShutdown
	}
	if _, err := t.f.Write(p); err != nil {
		return 0, err
	}
	t.h.Write(p)
	t.n += int64(len(p))
	t.lines += bytes.Count(p, []byte{'\n'})
	if i := bytes.LastIndexByte(p, '\n'); i >= 0 {
		t.published = t.n - int64(len(p)-i-1)
		records, published := t.lines, t.published
		t.j.publish(func(j *job) {
			j.records = records
			j.bytes = published
		})
	}
	return len(p), nil
}

// runDist executes a wide job (shards > 1) through the distributed
// coordinator. The coordinator owns checkpoint/resume at shard
// granularity in the job's run directory; the part file is rebuilt each
// attempt from the live merged stream (replayed shards arrive instantly
// from their checkpoints, so nothing completed is recomputed).
func (s *Server) runDist(ctx context.Context, j *job) error {
	part := s.cache.PartPath(j.key)
	f, err := os.Create(part)
	if err != nil {
		return err
	}
	defer f.Close()
	tee := &lineTee{s: s, j: j, f: f, h: sha256.New()}
	j.publish(func(j *job) { j.path = part })

	rep, err := dist.Run(ctx, j.req, s.cache.RunDir(j.key), dist.Options{
		Slots:   s.o.Slots,
		Spawner: s.o.Spawner,
		Logger:  s.o.Logger.With("job", j.key[:12]),
		Stream:  tee,
		Progress: func(p dist.Progress) {
			j.publish(func(j *job) { j.cellsDone = p.MergedCells })
		},
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%s\n", dist.DoneMarker(tee.lines, tee.h.Sum(nil))); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(part, s.cache.EntryPath(j.key)); err != nil {
		return err
	}
	s.cache.Seal(j.key, tee.lines, tee.n, tee.h.Sum(nil))
	summary := ""
	if rep.Result != nil {
		var b strings.Builder
		rep.Result.Print(&b)
		summary = b.String()
	}
	reused := len(rep.Reused)
	j.publish(func(j *job) {
		j.state = stateDone
		j.path = s.cache.EntryPath(j.key)
		j.reusedShards = reused
		j.summary = summary
	})
	return nil
}
