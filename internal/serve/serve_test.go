package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	_ "repro/internal/experiments" // register the figure suites
	"repro/internal/experiments/exp"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// toyServe is a deterministic single-record experiment instrumented for
// serve tests: a global counter observes every cell execution (the
// single-flight and resume assertions), and an optional per-cell delay
// keeps a run in flight long enough to race submissions against it.
type toyServe struct{ n int }

var (
	toyCells int64 // RunCell invocations, across all servers in the process
	toyDelay int64 // per-cell sleep in ms
)

func (toyServe) Name() string     { return "servetoy" }
func (toyServe) Describe() string { return "serve test experiment" }

func (t toyServe) Cells(seed int64, sc exp.Scale) []exp.Cell {
	cells := make([]exp.Cell, t.n)
	for i := range cells {
		cells[i] = exp.Cell{Seed: seed, Data: i}
	}
	return cells
}

func (toyServe) RunCell(c exp.Cell) sink.Record {
	atomic.AddInt64(&toyCells, 1)
	if d := atomic.LoadInt64(&toyDelay); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	i := c.Data.(int)
	return sink.Record{Fields: []sink.Field{
		sink.F("v", float64(c.Seed)*1000+float64(i)),
		sink.F("sq", float64(i*i)),
	}}
}

type toyServeResult struct{ Sum float64 }

func (r toyServeResult) Print(w io.Writer) { fmt.Fprintf(w, "servetoy: sum=%g\n", r.Sum) }

func (toyServe) Reduce(recs <-chan sink.Record) exp.Result {
	var res toyServeResult
	for rec := range recs {
		res.Sum += rec.Float("v")
	}
	return res
}

const toyN = 8

func init() { exp.Register(toyServe{n: toyN}) }

// refStream renders the experiment's unsharded JSONL stream — the bytes
// `meshopt fig <name>` would write to stdout.
func refStream(t *testing.T, name string, seed int64) []byte {
	t.Helper()
	e, ok := exp.Find(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	var buf bytes.Buffer
	s := sink.NewJSONL(&buf)
	if _, err := exp.Run(e, seed, exp.Quick(), exp.Options{Sink: s}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, dir string, o Options) (*Server, *httptest.Server) {
	t.Helper()
	o.CacheDir = dir
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs: %s: %s", resp.Status, msg)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func getRecords(t *testing.T, ts *httptest.Server, id, query string) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/records" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET records: %s: %s", resp.Status, body)
	}
	return body, resp.Header
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJobKeyCanonicalization(t *testing.T) {
	key := func(j dist.Job) string {
		t.Helper()
		k, err := JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := dist.Job{Experiment: "servetoy", Seed: 3, Scale: "quick", Shards: 1}
	wide := base
	wide.Shards = 16
	if key(base) != key(wide) {
		t.Error("shard count leaked into the content address")
	}
	alias := dist.Job{Experiment: "fig7", Seed: 1, Scale: "quick"}
	canon := dist.Job{Experiment: "netvalid", Seed: 1, Scale: "quick"}
	if key(alias) != key(canon) {
		t.Error("alias and canonical name map to different keys")
	}
	if spec, ok := scenario.Lookup("quickstart"); ok {
		raw, err := scenario.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		named := dist.Job{Experiment: "quickstart", Seed: 1, Scale: "quick"}
		inline := dist.Job{Spec: raw, Seed: 1, Scale: "quick"}
		if key(named) != key(inline) {
			t.Error("registered scenario and identical inline spec map to different keys")
		}
	}
	other := base
	other.Seed = 4
	if key(base) == key(other) {
		t.Error("seed did not change the key")
	}
	if _, err := JobKey(dist.Job{Experiment: "nope", Seed: 1, Scale: "quick"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := JobKey(dist.Job{Experiment: "servetoy", Seed: 1, Scale: "huge"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSubmitStreamsAndCaches(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	want := refStream(t, "servetoy", 3)

	before := atomic.LoadInt64(&toyCells)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":3,"scale":"quick"}`)
	if !sr.Created || sr.Cells != toyN {
		t.Fatalf("cold submit: %+v", sr)
	}
	body, hdr := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(body, want) {
		t.Fatalf("cold stream differs from `meshopt fig` bytes:\ngot:\n%s\nwant:\n%s", body, want)
	}
	if hdr.Get("X-Meshopt-Cache") != "miss" {
		t.Fatalf("cold stream header %q", hdr.Get("X-Meshopt-Cache"))
	}
	if ran := atomic.LoadInt64(&toyCells) - before; ran != toyN {
		t.Fatalf("cold run executed %d cells, want %d", ran, toyN)
	}
	st := getStatus(t, ts, sr.ID)
	if st.State != stateDone || st.CellsDone != toyN || st.Records != toyN || st.CacheHit {
		t.Fatalf("cold status: %+v", st)
	}
	if !strings.Contains(st.Summary, "servetoy: sum=") {
		t.Fatalf("summary missing: %+v", st)
	}

	// Warm path: same submission is a cache hit — no execution, same bytes.
	before = atomic.LoadInt64(&toyCells)
	sr2 := postJob(t, ts, `{"experiment":"servetoy","seed":3}`)
	if sr2.Created || sr2.ID != sr.ID || sr2.State != stateDone {
		t.Fatalf("warm submit: %+v", sr2)
	}
	body2, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(body2, want) {
		t.Fatal("warm stream differs")
	}
	if ran := atomic.LoadInt64(&toyCells) - before; ran != 0 {
		t.Fatalf("warm hit executed %d cells", ran)
	}
}

func TestFig10ByteIdentityColdAndWarm(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, Options{})
	want := refStream(t, "fig10", 4)
	sr := postJob(t, ts, `{"experiment":"fig10","seed":4,"scale":"quick"}`)
	cold, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(cold, want) {
		t.Fatal("cold fig10 stream differs from `meshopt fig 10` bytes")
	}
	sr2 := postJob(t, ts, `{"experiment":"fig10","seed":4,"scale":"quick"}`)
	if sr2.Created {
		t.Fatalf("second fig10 submission recomputed: %+v", sr2)
	}
	warm, _ := getRecords(t, ts, sr2.ID, "")
	if !bytes.Equal(warm, want) {
		t.Fatal("warm fig10 stream differs")
	}
	// A fresh server over the same cache directory serves the entry as
	// a pure cache hit — the cache outlives the process.
	_, ts2 := newTestServer(t, dir, Options{})
	sr3 := postJob(t, ts2, `{"experiment":"fig10","seed":4,"scale":"quick"}`)
	if sr3.Created || sr3.State != stateDone {
		t.Fatalf("restarted server missed the cache: %+v", sr3)
	}
	hit, hdr := getRecords(t, ts2, sr3.ID, "")
	if !bytes.Equal(hit, want) {
		t.Fatal("cache-hit fig10 stream differs")
	}
	if hdr.Get("X-Meshopt-Cache") != "hit" {
		t.Fatalf("cache-hit header %q", hdr.Get("X-Meshopt-Cache"))
	}
	if st := getStatus(t, ts2, sr3.ID); !st.CacheHit {
		t.Fatalf("cache-hit status: %+v", st)
	}
}

func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	atomic.StoreInt64(&toyDelay, 15)
	defer atomic.StoreInt64(&toyDelay, 0)
	want := refStream(t, "servetoy", 7)

	before := atomic.LoadInt64(&toyCells)
	const clients = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(`{"experiment":"servetoy","seed":7,"scale":"quick"}`))
			if err != nil {
				errs[i] = err
				return
			}
			var sr submitResponse
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			rr, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], errs[i] = io.ReadAll(rr.Body)
			rr.Body.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("client %d streamed different bytes:\ngot:\n%s\nwant:\n%s", i, bodies[i], want)
		}
	}
	// Single-flight: the cells ran exactly once no matter how many
	// clients raced the submission (delta covers the reference run too
	// if the cache was cold — it is not: refStream ran before).
	if ran := atomic.LoadInt64(&toyCells) - before; ran != toyN {
		t.Fatalf("%d concurrent submissions executed %d cells, want %d", clients, ran, toyN)
	}
}

func TestRecordsFromOffset(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	want := refStream(t, "servetoy", 9)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":9}`)
	getRecords(t, ts, sr.ID, "") // drain once so the job is done
	lines := bytes.SplitAfter(want, []byte("\n"))
	for _, from := range []int{0, 1, 5, toyN} {
		got, _ := getRecords(t, ts, sr.ID, fmt.Sprintf("?from=%d", from))
		wantTail := bytes.Join(lines[from:], nil)
		if !bytes.Equal(got, wantTail) {
			t.Fatalf("from=%d: got\n%s\nwant\n%s", from, got, wantTail)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-1 accepted: %s", resp.Status)
	}
}

func TestCorruptedCacheEntryIsRecomputed(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			// The rewrite keeps the size; make the mtime change explicit
			// rather than relying on clock granularity, so the cache's
			// (size, mtime) fingerprint check is exercised
			// deterministically.
			now := time.Now().Add(2 * time.Second)
			if err := os.Chtimes(path, now, now); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing-marker", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.LastIndex(data[:len(data)-1], []byte("\n"))
			if err := os.WriteFile(path, data[:i+1], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, t.TempDir(), Options{})
			want := refStream(t, "servetoy", 11)
			sr := postJob(t, ts, `{"experiment":"servetoy","seed":11}`)
			if first, _ := getRecords(t, ts, sr.ID, ""); !bytes.Equal(first, want) {
				t.Fatal("cold stream differs")
			}
			tc.corrupt(t, s.Cache().EntryPath(sr.ID))

			before := atomic.LoadInt64(&toyCells)
			sr2 := postJob(t, ts, `{"experiment":"servetoy","seed":11}`)
			if !sr2.Created {
				t.Fatal("corrupted entry was served instead of recomputed")
			}
			got, _ := getRecords(t, ts, sr2.ID, "")
			if !bytes.Equal(got, want) {
				t.Fatalf("recomputed stream differs:\ngot:\n%s\nwant:\n%s", got, want)
			}
			if ran := atomic.LoadInt64(&toyCells) - before; ran != toyN {
				t.Fatalf("recompute executed %d cells, want %d", ran, toyN)
			}
			if st := getStatus(t, ts, sr2.ID); st.CacheHit {
				t.Fatalf("recomputed job claims a cache hit: %+v", st)
			}
		})
	}
}

func TestResumeFromPartCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := refStream(t, "servetoy", 13)
	lines := bytes.SplitAfter(want, []byte("\n"))
	const keep = 5
	key, err := JobKey(dist.Job{Experiment: "servetoy", Seed: 13, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	// A killed server leaves <key>.jsonl.part holding a prefix of the
	// stream — plus, here, a torn final line that must be discarded.
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	part := bytes.Join(lines[:keep], nil)
	part = append(part, lines[keep][:len(lines[keep])/2]...)
	if err := os.WriteFile(cache.PartPath(key), part, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, dir, Options{})
	before := atomic.LoadInt64(&toyCells)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":13}`)
	if sr.ID != key {
		t.Fatalf("job id %s, want %s", sr.ID, key)
	}
	got, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if ran := atomic.LoadInt64(&toyCells) - before; ran != toyN-keep {
		t.Fatalf("resume executed %d cells, want %d (checkpointed prefix must not recompute)", ran, toyN-keep)
	}
	if st := getStatus(t, ts, sr.ID); st.ResumedCells != keep {
		t.Fatalf("status resumed_cells=%d, want %d", st.ResumedCells, keep)
	}
}

func TestShutdownCheckpointsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	want := refStream(t, "servetoy", 17)
	atomic.StoreInt64(&toyDelay, 20)
	s, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":17}`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := getStatus(t, ts, sr.ID); st.CellsDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	atomic.StoreInt64(&toyDelay, 0)

	// The part checkpoint must hold a valid prefix of complete cells.
	pre, ok := validatePart(s.cache.PartPath(sr.ID), false, toyN)
	if !ok || pre.cells < 2 || pre.cells >= toyN {
		t.Fatalf("part checkpoint after shutdown: %+v ok=%v", pre, ok)
	}

	// A restarted server over the same cache dir resumes, not recomputes.
	before := atomic.LoadInt64(&toyCells)
	_, ts2 := newTestServer(t, dir, Options{})
	sr2 := postJob(t, ts2, `{"experiment":"servetoy","seed":17}`)
	got, _ := getRecords(t, ts2, sr2.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart stream differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	ran := atomic.LoadInt64(&toyCells) - before
	if ran != int64(toyN-pre.cells) {
		t.Fatalf("restart executed %d cells, want %d (resume from %d checkpointed)", ran, toyN-pre.cells, pre.cells)
	}
	st := getStatus(t, ts2, sr2.ID)
	if st.ResumedCells != pre.cells {
		t.Fatalf("status resumed_cells=%d, want %d", st.ResumedCells, pre.cells)
	}
	// A resumed job replays its finished entry through the reduction:
	// the summary must not depend on whether a restart happened.
	if !strings.Contains(st.Summary, "servetoy: sum=") {
		t.Fatalf("resumed job lost its summary: %+v", st)
	}
}

// failSpawner refuses to launch workers, so sharded jobs fail after
// the coordinator's retries.
type failSpawner struct{}

func (failSpawner) Spawn(context.Context, int) (*dist.Worker, error) {
	return nil, fmt.Errorf("no workers available")
}

func TestFailedJobRecordsAreRefused(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Spawner: failSpawner{}})
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":31,"shards":2}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getStatus(t, ts, sr.ID); st.State == stateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not fail")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed job records: %s, want 409", resp.Status)
	}
	// Resubmitting replaces the failed job and re-executes.
	sr2 := postJob(t, ts, `{"experiment":"servetoy","seed":31,"shards":2}`)
	if !sr2.Created {
		t.Fatalf("resubmit after failure did not re-execute: %+v", sr2)
	}
}

// pipeSpawner serves long-lived dist workers in-process over pipes, so
// sharded jobs run without spawning the test binary.
type pipeSpawner struct{}

func (pipeSpawner) Spawn(ctx context.Context, slot int) (*dist.Worker, error) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := dist.ServeWork(inR, outW)
		if err != nil {
			outW.CloseWithError(err)
		} else {
			outW.Close()
		}
		done <- err
	}()
	var once sync.Once
	kill := func() {
		once.Do(func() {
			inR.CloseWithError(io.ErrClosedPipe)
			outW.CloseWithError(io.ErrClosedPipe)
		})
	}
	return &dist.Worker{In: inW, Out: outR, Kill: kill, Wait: func() error { return <-done }}, nil
}

func TestShardedJobRunsThroughCoordinator(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Spawner: pipeSpawner{}})
	want := refStream(t, "servetoy", 19)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":19,"shards":3}`)
	if !sr.Created {
		t.Fatalf("cold sharded submit: %+v", sr)
	}
	got, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded stream differs from unsharded bytes:\ngot:\n%s\nwant:\n%s", got, want)
	}
	st := getStatus(t, ts, sr.ID)
	if st.State != stateDone || st.CellsDone != toyN {
		t.Fatalf("sharded status: %+v", st)
	}
	if !strings.Contains(st.Summary, "servetoy") {
		t.Fatalf("sharded summary missing: %+v", st)
	}
	// Warm: the sharded run's entry serves unsharded submissions too —
	// the content address ignores the execution plan.
	sr2 := postJob(t, ts, `{"experiment":"servetoy","seed":19}`)
	if sr2.Created || sr2.ID != sr.ID {
		t.Fatalf("unsharded resubmit missed the sharded entry: %+v", sr2)
	}
}

func TestImportRunDirServesAsCacheEntry(t *testing.T) {
	dir := t.TempDir()
	rundir := dir + "/rundir"
	job := dist.Job{Experiment: "servetoy", Seed: 23, Scale: "quick", Shards: 2}
	if _, err := dist.Run(context.Background(), job, rundir, dist.Options{Spawner: pipeSpawner{}}); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, dir+"/cache", Options{})
	key, err := s.Cache().ImportRunDir(rundir)
	if err != nil {
		t.Fatal(err)
	}
	want := refStream(t, "servetoy", 23)
	before := atomic.LoadInt64(&toyCells)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":23}`)
	if sr.Created || sr.ID != key {
		t.Fatalf("imported rundir not served from cache: %+v (key %s)", sr, key)
	}
	got, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatal("imported stream differs from unsharded bytes")
	}
	if ran := atomic.LoadInt64(&toyCells) - before; ran != 0 {
		t.Fatalf("imported entry still executed %d cells", ran)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []experimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, e := range list {
		kinds[e.Name] = e.Kind
	}
	if kinds["fig10"] != "figure" || kinds["servetoy"] != "figure" {
		t.Fatalf("registry listing incomplete: %v", kinds)
	}
}

func TestSubmitRejectsUnknownWork(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	for _, body := range []string{
		`{"experiment":"nosuch","seed":1}`,
		`{"experiment":"servetoy","seed":1,"scale":"huge"}`,
		`{not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %s: status %s, want 400", body, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job id: %s, want 404", resp.Status)
	}
}

func TestValidatePartPrefixes(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		path := dir + "/part.jsonl.part"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	line := func(cell int) string {
		return fmt.Sprintf(`{"scenario":"t","series":"cell","cell":%d,"v":1}`+"\n", cell)
	}
	// Single-record: every complete line is a complete cell.
	p := write(line(0) + line(1) + line(2))
	if pre, ok := validatePart(p, false, 10); !ok || pre.cells != 3 || pre.records != 3 {
		t.Fatalf("single-record prefix: %+v ok=%v", pre, ok)
	}
	// Torn tail: the half-written line is dropped.
	p = write(line(0) + line(1) + `{"scenario":"t","ser`)
	if pre, ok := validatePart(p, false, 10); !ok || pre.cells != 2 {
		t.Fatalf("torn tail: %+v ok=%v", pre, ok)
	}
	// A final line that parses but lost its newline is still a torn
	// write: counting it would make the kept byte range overrun the
	// file and corrupt the resumed stream.
	full := line(0) + line(1) + line(2)
	p = write(full[:len(full)-1])
	if pre, ok := validatePart(p, false, 10); !ok || pre.cells != 2 || pre.bytes != int64(len(line(0)+line(1))) {
		t.Fatalf("newline-less tail: %+v ok=%v", pre, ok)
	}
	// Multi-record: the final cell is dropped (completeness unknowable).
	p = write(line(0) + line(0) + line(1) + line(1))
	if pre, ok := validatePart(p, true, 10); !ok || pre.cells != 1 || pre.records != 2 {
		t.Fatalf("multi-record prefix: %+v ok=%v", pre, ok)
	}
	// A gap invalidates everything after it.
	p = write(line(0) + line(3))
	if pre, ok := validatePart(p, false, 10); !ok || pre.cells != 1 {
		t.Fatalf("gapped part: %+v ok=%v", pre, ok)
	}
	// Does not start at cell 0: nothing to keep.
	p = write(line(2))
	if _, ok := validatePart(p, false, 10); ok {
		t.Fatal("prefix not starting at cell 0 accepted")
	}
	// More cells than the enumeration: stale, discard.
	p = write(line(0) + line(1) + line(2))
	if _, ok := validatePart(p, false, 2); ok {
		t.Fatal("oversized part accepted")
	}
}

// drainLines consumes a streaming response until n lines arrived,
// proving records stream live (before the job completes).
func TestRecordsStreamLiveWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{})
	atomic.StoreInt64(&toyDelay, 25)
	defer atomic.StoreInt64(&toyDelay, 0)
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":29}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	// At least one record arrived; the job cannot be done yet.
	if st := getStatus(t, ts, sr.ID); terminal(st.State) {
		t.Skipf("job finished before the first read; cannot assert liveness (state %s)", st.State)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := 1 + bytes.Count(rest, []byte("\n")); got != toyN {
		t.Fatalf("streamed %d records, want %d", got, toyN)
	}
}

// TestShutdownStopsComputation: Shutdown must actually cancel the
// in-process engine — not just refuse sink writes while the sweep burns
// CPU to completion. After Shutdown returns, the cell counter must stay
// flat.
func TestShutdownStopsComputation(t *testing.T) {
	dir := t.TempDir()
	atomic.StoreInt64(&toyDelay, 20)
	defer atomic.StoreInt64(&toyDelay, 0)
	var log bytes.Buffer
	s, err := New(Options{CacheDir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":37}`)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, sr.ID).CellsDone < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not settle within its deadline: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shutdown took %v", d)
	}
	after := atomic.LoadInt64(&toyCells)
	time.Sleep(100 * time.Millisecond)
	if later := atomic.LoadInt64(&toyCells); later != after {
		t.Fatalf("cells kept executing after Shutdown returned: %d -> %d", after, later)
	}
	if !strings.Contains(log.String(), `msg="shutdown interrupted in-flight jobs" jobs=1 cells_completed=`) {
		t.Fatalf("shutdown log lacks the cell accounting:\n%s", log.String())
	}
}

// TestJobTTLEvictsTerminalJobs: a done job expires out of the job table
// once its TTL passes — but only when its cache entry revalidates — and
// a resubmission of the evicted ID is a pure cache hit.
func TestJobTTLEvictsTerminalJobs(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{JobTTL: time.Hour})
	sr := postJob(t, ts, `{"experiment":"servetoy","seed":41}`)
	want, _ := getRecords(t, ts, sr.ID, "")

	// Not yet expired: nothing to evict.
	if n := s.sweepJobs(time.Now()); n != 0 {
		t.Fatalf("sweep before TTL evicted %d jobs", n)
	}
	// Expired with a valid entry: evicted; the ID 404s.
	if n := s.sweepJobs(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("sweep after TTL evicted %d jobs, want 1", n)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job status: %s, want 404", resp.Status)
	}
	// Resubmission: cache hit, no recompute, same bytes.
	before := atomic.LoadInt64(&toyCells)
	sr2 := postJob(t, ts, `{"experiment":"servetoy","seed":41}`)
	if sr2.Created || sr2.State != stateDone || sr2.ID != sr.ID {
		t.Fatalf("resubmit after eviction: %+v", sr2)
	}
	got, _ := getRecords(t, ts, sr2.ID, "")
	if !bytes.Equal(got, want) {
		t.Fatal("post-eviction stream differs")
	}
	if ran := atomic.LoadInt64(&toyCells) - before; ran != 0 {
		t.Fatalf("post-eviction resubmit executed %d cells", ran)
	}

	// A done job whose entry is corrupt must NOT be evicted.
	data, err := os.ReadFile(s.Cache().EntryPath(sr.ID))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(s.Cache().EntryPath(sr.ID), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := s.sweepJobs(time.Now().Add(4 * time.Hour)); n != 0 {
		t.Fatalf("sweep evicted a done job with a corrupt entry (%d)", n)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job with corrupt entry gone from the table: %s", resp.Status)
		}
	}
}

// writeValidEntry plants a hand-built, marker-terminated cache entry.
func writeValidEntry(t *testing.T, c *Cache, key, line string) {
	t.Helper()
	h := sha256.New()
	h.Write([]byte(line))
	h.Write([]byte{'\n'})
	content := line + "\n" + dist.DoneMarker(1, h.Sum(nil)) + "\n"
	if err := os.WriteFile(c.EntryPath(key), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCacheIndexFastPathAndSelfValidation(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "deadbeef"
	line := `{"scenario":"x","series":"cell","cell":0}`
	writeValidEntry(t, c, key, line)

	// First Lookup in a process always rehashes, then seals the index.
	_, records, dataBytes, ok := c.Lookup(key)
	if !ok || records != 1 || dataBytes != int64(len(line)+1) {
		t.Fatalf("lookup: records=%d bytes=%d ok=%v", records, dataBytes, ok)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatalf("index.json not persisted: %v", err)
	}
	wantN, wantB, wantSum, wantOK := dist.ValidateRecordsFileSum(c.EntryPath(key))
	if !wantOK {
		t.Fatal("planted entry does not validate")
	}
	for _, frag := range []string{
		fmt.Sprintf(`"records": %d`, wantN),
		fmt.Sprintf(`"length": %d`, wantB),
		fmt.Sprintf(`"sha256": %q`, wantSum),
	} {
		if !strings.Contains(string(idx), frag) {
			t.Fatalf("index.json missing %s:\n%s", frag, idx)
		}
	}

	// Prove the warm path is a stat, not a rehash: corrupt the entry
	// while preserving its (size, mtime) fingerprint. The same-process
	// Lookup serves the stale index entry — and that is fine, because
	// nothing mutates sealed entries in-place in real operation...
	fi, err := os.Stat(c.EntryPath(key))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(c.EntryPath(key))
	data[len(line)/2] ^= 0x20
	if err := os.WriteFile(c.EntryPath(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(c.EntryPath(key), fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := c.Lookup(key); !ok {
		t.Fatal("fingerprint-preserving corruption changed the fast path (did Lookup rehash?)")
	}
	// ...while Revalidate bypasses the index and catches it, dropping
	// the index entry with it.
	if _, _, _, ok := c.Revalidate(key); ok {
		t.Fatal("Revalidate served a corrupt entry")
	}
	if idx, _ := os.ReadFile(filepath.Join(dir, "index.json")); strings.Contains(string(idx), key) {
		t.Fatalf("invalidated key still indexed:\n%s", idx)
	}

	// A fresh process over the same directory must also catch it: the
	// persisted index is advisory, never a substitute for the first
	// validation.
	writeValidEntry(t, c, key, line)
	c.Lookup(key) // re-seal so the fresh process starts with an index entry
	data, _ = os.ReadFile(c.EntryPath(key))
	fi, _ = os.Stat(c.EntryPath(key))
	data[len(line)/2] ^= 0x20
	os.WriteFile(c.EntryPath(key), data, 0o644)
	os.Chtimes(c.EntryPath(key), fi.ModTime(), fi.ModTime())
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := c2.Lookup(key); ok {
		t.Fatal("fresh cache trusted the persisted index over a full validation")
	}
}

// TestBroadcastRepeatSubmitIsPureCacheHit is the serving-layer
// acceptance case for the dissemination family: a broadcast job's
// stream must match `meshopt fig broadcast` byte for byte, and the
// repeat submission must be a pure cache hit — no cell re-executed,
// served straight from the sealed entry.
func TestBroadcastRepeatSubmitIsPureCacheHit(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, Options{})
	want := refStream(t, "broadcast", 4)
	sr := postJob(t, ts, `{"experiment":"broadcast","seed":4,"scale":"quick"}`)
	if !sr.Created {
		t.Fatalf("cold submit: %+v", sr)
	}
	cold, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(cold, want) {
		t.Fatal("cold broadcast stream differs from `meshopt fig broadcast` bytes")
	}
	sr2 := postJob(t, ts, `{"experiment":"broadcast","seed":4}`)
	if sr2.Created || sr2.ID != sr.ID || sr2.State != stateDone {
		t.Fatalf("repeat submit recomputed: %+v", sr2)
	}
	warm, _ := getRecords(t, ts, sr.ID, "")
	if !bytes.Equal(warm, want) {
		t.Fatal("warm broadcast stream differs")
	}
	// A fresh server over the same cache: still a hit, still the bytes.
	_, ts2 := newTestServer(t, dir, Options{})
	sr3 := postJob(t, ts2, `{"experiment":"broadcast","seed":4,"scale":"quick"}`)
	if sr3.Created || sr3.State != stateDone {
		t.Fatalf("restarted server missed the cache: %+v", sr3)
	}
	hit, hdr := getRecords(t, ts2, sr3.ID, "")
	if !bytes.Equal(hit, want) {
		t.Fatal("cache-hit broadcast stream differs")
	}
	if hdr.Get("X-Meshopt-Cache") != "hit" {
		t.Fatalf("cache-hit header %q", hdr.Get("X-Meshopt-Cache"))
	}
}
