// Package feasibility implements the paper's convex feasibility-region
// model (§3): the region of simultaneously sustainable link output rates
// is approximated by the downward closure of the convex hull of a set of
// extreme points. Primary extreme points are per-link maxUDP capacities;
// secondary extreme points are maximal independent sets of a binary
// pairwise conflict graph scaled by those capacities (Eq. 4).
//
// The package also provides the two-link geometric error analysis of §4.4
// (Fig. 6), which quantifies the false-positive/false-negative area errors
// committed by the binary LIR classifier at a given threshold.
package feasibility

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core/conflict"
	"repro/internal/lp"
)

// Region is the estimated feasibility region: any output-rate vector y
// with y <= sum_k alpha_k * Points[k] for a convex combination alpha is
// deemed feasible (Eqs. 1-3, downward closed).
//
// Membership and boundary queries are answered by small LPs whose
// constraint matrix depends only on the extreme points, not on the query
// vector, so the region lazily builds each LP once and re-aims it per
// query (grid samplers issue thousands of queries against one region).
// Points and Capacities must not be mutated after the first query. The
// query cache is mutex-guarded, so a frozen region may be shared by
// concurrent experiment cells.
type Region struct {
	// Points holds the K extreme points, each of length L (links).
	Points [][]float64
	// Capacities are the primary extreme point magnitudes c_ll.
	Capacities []float64

	mu         sync.Mutex
	containsLP *lp.Problem // K vars; rhs re-aimed per query
	scaleLP    *lp.Problem // K+1 vars; y column re-aimed per query
	ws         lp.Workspace
}

// L returns the number of links.
func (r *Region) L() int { return len(r.Capacities) }

// K returns the number of extreme points.
func (r *Region) K() int { return len(r.Points) }

// Build constructs the region from per-link capacities and a conflict
// graph, following §3.2: each maximal independent set m maps to the
// extreme point C^(1) v[m] — the capacities of exactly the links in m.
// Primary extreme points are dominated by these (every link belongs to at
// least one maximal independent set), so the MIS points alone define the
// region.
func Build(capacities []float64, g *conflict.Graph) *Region {
	if g.N() != len(capacities) {
		panic(fmt.Sprintf("feasibility: %d capacities for %d-link graph", len(capacities), g.N()))
	}
	mis := g.MaximalIndependentSets()
	pts := make([][]float64, 0, len(mis))
	for _, set := range mis {
		p := make([]float64, len(capacities))
		for _, l := range set {
			p[l] = capacities[l]
		}
		pts = append(pts, p)
	}
	return &Region{Points: pts, Capacities: append([]float64(nil), capacities...)}
}

// Contains reports whether the output-rate vector y lies in the region:
// exists alpha >= 0, sum alpha = 1, with y <= sum alpha_k c[k]. Decided by
// a small feasibility LP against the region's cached constraint matrix.
func (r *Region) Contains(y []float64) bool {
	if len(y) != r.L() {
		panic("feasibility: dimension mismatch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.containsLP == nil {
		k := r.K()
		p := lp.NewProblem(k, nil) // any feasible alpha will do
		row := make([]float64, k)
		for l := 0; l < r.L(); l++ {
			for j := 0; j < k; j++ {
				row[j] = r.Points[j][l]
			}
			p.AddConstraint(row, lp.GE, 0)
		}
		for j := range row {
			row[j] = 1
		}
		p.AddConstraint(row, lp.EQ, 1)
		r.containsLP = p
	}
	for l, v := range y {
		r.containsLP.SetRHS(l, v)
	}
	_, _, err := r.containsLP.SolveWS(&r.ws)
	return err == nil
}

// Scale returns the largest s such that s*y remains in the region (the
// boundary distance along ray y). Returns +Inf for y = 0. The dimension
// check matters doubly here: an oversized y would otherwise overwrite
// the cached LP's convexity row and corrupt every later query.
func (r *Region) Scale(y []float64) float64 {
	allZero := true
	for _, v := range y {
		if v > 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return math.Inf(1)
	}
	if len(y) != r.L() {
		panic("feasibility: dimension mismatch")
	}
	// Variables: alpha (K) and s; maximize s subject to
	// s*y_l - sum_j alpha_j c_jl <= 0, sum alpha = 1. Only the s column
	// depends on y, so the cached problem just rewrites that column.
	k := r.K()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.scaleLP == nil {
		obj := make([]float64, k+1)
		obj[k] = 1
		p := lp.NewProblem(k+1, obj)
		row := make([]float64, k+1)
		for l := 0; l < r.L(); l++ {
			for j := 0; j < k; j++ {
				row[j] = -r.Points[j][l]
			}
			row[k] = 0
			p.AddConstraint(row, lp.LE, 0)
		}
		for j := 0; j < k; j++ {
			row[j] = 1
		}
		row[k] = 0
		p.AddConstraint(row, lp.EQ, 1)
		r.scaleLP = p
	}
	for l, v := range y {
		r.scaleLP.SetCoef(l, k, v)
	}
	_, s, err := r.scaleLP.SolveWS(&r.ws)
	if err != nil {
		return 0
	}
	return s
}

// TwoLinkModel is the pairwise model of Fig. 1/Fig. 6: primary extreme
// points (c11,0) and (0,c22), optionally extended with the measured
// simultaneous point (c31,c32) (the three-point model of §4.3.2).
type TwoLinkModel struct {
	C11, C22 float64
	// ThreePoint adds (C31,C32) as a secondary extreme point.
	ThreePoint bool
	C31, C32   float64
	// Independent selects the rectangular independent region instead of
	// the time-sharing region (the binary classifier's "no conflict").
	Independent bool
}

// Feasible reports whether (y1, y2) is inside the modelled region.
func (m TwoLinkModel) Feasible(y1, y2 float64) bool {
	if y1 < 0 || y2 < 0 || m.C11 <= 0 || m.C22 <= 0 {
		return false
	}
	if y1 > m.C11 || y2 > m.C22 {
		return false
	}
	if m.Independent {
		return true
	}
	n1, n2 := y1/m.C11, y2/m.C22
	if m.ThreePoint && m.C31+m.C32 > 0 {
		// Region is the downward closure of the hull of (C11,0),
		// (0,C22), (C31,C32): feasible if below either hull edge.
		if pointBelowSegment(y1, y2, m.C11, 0, m.C31, m.C32) ||
			pointBelowSegment(y1, y2, m.C31, m.C32, 0, m.C22) {
			return true
		}
	}
	return n1+n2 <= 1+1e-12
}

// pointBelowSegment reports whether (x,y) is dominated by some point on
// the segment (x1,y1)-(x2,y2): there is a segment point (px,py) with
// px >= x and py >= y.
func pointBelowSegment(x, y, x1, y1, x2, y2 float64) bool {
	if x1 > x2 {
		x1, y1, x2, y2 = x2, y2, x1, y1
	}
	if x > x2 {
		return false
	}
	lo := math.Max(x, x1)
	t := 0.0
	if x2 > x1 {
		t = (lo - x1) / (x2 - x1)
	}
	yLo := y1 + t*(y2-y1)
	return y <= math.Max(yLo, y2)+1e-12
}

// PairErrors is the outcome of the Fig. 6 area computation for one pair.
type PairErrors struct {
	FN float64 // missed fraction of the true region (underestimate)
	FP float64 // claimed-but-infeasible fraction relative to true region
}

// LIRAreaErrors computes the FN and FP errors of the binary LIR model with
// the given threshold, taking the three-point region through (c31,c32) as
// the true feasibility region (§4.4):
//
//   - classified interfering (LIR < threshold): region = time sharing A1,
//     FN = A2/(A1+A2), FP = 0;
//   - classified independent: region = rectangle, FP = (c11·c22 −
//     (A1+A2))/(A1+A2), FN = 0.
func LIRAreaErrors(c11, c22, c31, c32, threshold float64) PairErrors {
	lir := (c31 + c32) / (c11 + c22)
	a1 := c11 * c22 / 2
	a12 := threePointArea(c11, c22, c31, c32)
	if a12 < a1 {
		a12 = a1
	}
	if lir < threshold {
		return PairErrors{FN: (a12 - a1) / a12}
	}
	return PairErrors{FP: (c11*c22 - a12) / a12}
}

// threePointArea is the area of the downward-closed hull region of
// (c11,0),(0,c22),(c31,c32) — the polygon (0,0),(c11,0),(c31,c32),(0,c22)
// when the LIR point lies above the time-sharing line.
func threePointArea(c11, c22, c31, c32 float64) float64 {
	if c31/c11+c32/c22 <= 1 {
		return c11 * c22 / 2
	}
	// Shoelace over (0,0),(c11,0),(c31,c32),(0,c22).
	xs := []float64{0, c11, c31, 0}
	ys := []float64{0, 0, c32, c22}
	area := 0.0
	for i := 0; i < len(xs); i++ {
		j := (i + 1) % len(xs)
		area += xs[i]*ys[j] - xs[j]*ys[i]
	}
	return math.Abs(area) / 2
}

// ExpectedLIRErrors averages the Fig. 6 error areas over an observed LIR
// distribution, using the proportional realization c3 = LIR·(c11,c22)
// with unit capacities — the paper notes that with c11 = c22 every
// realization of a given LIR yields the same areas.
func ExpectedLIRErrors(lirs []float64, threshold float64) PairErrors {
	if len(lirs) == 0 {
		return PairErrors{}
	}
	var sum PairErrors
	for _, lir := range lirs {
		e := LIRAreaErrors(1, 1, lir, lir, threshold)
		sum.FN += e.FN
		sum.FP += e.FP
	}
	return PairErrors{FN: sum.FN / float64(len(lirs)), FP: sum.FP / float64(len(lirs))}
}
