package feasibility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core/conflict"
)

func TestBuildTwoInterferingLinks(t *testing.T) {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	r := Build([]float64{1e6, 2e6}, g)
	if r.K() != 2 {
		t.Fatalf("K = %d, want 2 (the primaries)", r.K())
	}
	if !r.Contains([]float64{0.5e6, 1e6}) {
		t.Fatal("midpoint of time-sharing line must be feasible")
	}
	if r.Contains([]float64{0.8e6, 1.2e6}) {
		t.Fatal("point above time-sharing line must be infeasible")
	}
}

func TestBuildTwoIndependentLinks(t *testing.T) {
	g := conflict.NewGraph(2)
	r := Build([]float64{1e6, 2e6}, g)
	if r.K() != 1 {
		t.Fatalf("K = %d, want 1 (the joint MIS)", r.K())
	}
	if !r.Contains([]float64{1e6, 2e6}) {
		t.Fatal("corner of independent region must be feasible")
	}
	if r.Contains([]float64{1.01e6, 0}) {
		t.Fatal("beyond capacity must be infeasible")
	}
}

func TestBuildThreeLinkChainConflicts(t *testing.T) {
	// Links 0-1 and 1-2 conflict; 0-2 independent.
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := Build([]float64{1, 1, 1}, g)
	// MIS: {0,2} and {1}.
	if r.K() != 2 {
		t.Fatalf("K = %d, want 2", r.K())
	}
	if !r.Contains([]float64{1, 0, 1}) {
		t.Fatal("{0,2} simultaneously at capacity must be feasible")
	}
	if r.Contains([]float64{1, 0.5, 1}) {
		t.Fatal("cannot add link 1 on top of saturated {0,2}")
	}
	if !r.Contains([]float64{0.5, 0.5, 0.5}) {
		t.Fatal("half-half mixture must be feasible")
	}
}

func TestContainsOrigin(t *testing.T) {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	r := Build([]float64{1, 1}, g)
	if !r.Contains([]float64{0, 0}) {
		t.Fatal("origin must always be feasible (downward closure)")
	}
}

func TestScaleOnBoundary(t *testing.T) {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	r := Build([]float64{1, 1}, g)
	s := r.Scale([]float64{0.25, 0.25})
	if math.Abs(s-2) > 1e-6 {
		t.Fatalf("Scale = %v, want 2 (boundary at 0.5+0.5)", s)
	}
	if got := r.Scale([]float64{0, 0}); !math.IsInf(got, 1) {
		t.Fatalf("Scale(origin) = %v, want +Inf", got)
	}
}

func TestPropertyScaleTimesYOnBoundary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		g := conflict.NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 0.5 + rng.Float64()
		}
		r := Build(caps, g)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.Float64() * caps[i] * 0.3
		}
		s := r.Scale(y)
		if math.IsInf(s, 1) {
			return true
		}
		scaled := make([]float64, n)
		shrunk := make([]float64, n)
		grown := make([]float64, n)
		for i := range y {
			scaled[i] = y[i] * s
			shrunk[i] = y[i] * s * 0.99
			grown[i] = y[i] * s * 1.01
		}
		return r.Contains(shrunk) && !r.Contains(grown)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLinkModelTimeSharing(t *testing.T) {
	m := TwoLinkModel{C11: 1, C22: 1}
	if !m.Feasible(0.5, 0.5) {
		t.Fatal("TS boundary point must be feasible")
	}
	if m.Feasible(0.6, 0.5) {
		t.Fatal("above TS must be infeasible")
	}
}

func TestTwoLinkModelIndependent(t *testing.T) {
	m := TwoLinkModel{C11: 1, C22: 2, Independent: true}
	if !m.Feasible(1, 2) {
		t.Fatal("corner must be feasible")
	}
	if m.Feasible(1.01, 2) {
		t.Fatal("beyond per-link capacity must be infeasible")
	}
}

func TestTwoLinkModelThreePoint(t *testing.T) {
	m := TwoLinkModel{C11: 1, C22: 1, ThreePoint: true, C31: 0.8, C32: 0.8}
	cases := []struct {
		y1, y2 float64
		want   bool
	}{
		{0.8, 0.8, true},   // the LIR point itself
		{0.85, 0.3, true},  // below the (1,0)-(.8,.8) edge
		{0.9, 0.5, false},  // above that edge
		{0.5, 0.87, true},  // below the (.8,.8)-(0,1) edge
		{0.5, 0.9, false},  // above it
		{0.5, 0.5, true},   // inside TS
		{1.0, 0.0, true},   // primary point
		{1.0, 0.01, false}, // beyond the hull corner
		{0.0, 1.0, true},   // other primary
	}
	for _, c := range cases {
		if got := m.Feasible(c.y1, c.y2); got != c.want {
			t.Errorf("Feasible(%v,%v) = %v, want %v", c.y1, c.y2, got, c.want)
		}
	}
}

func TestThreePointDominatesTwoPoint(t *testing.T) {
	two := TwoLinkModel{C11: 1, C22: 1}
	three := TwoLinkModel{C11: 1, C22: 1, ThreePoint: true, C31: 0.7, C32: 0.7}
	for y1 := 0.0; y1 <= 1; y1 += 0.05 {
		for y2 := 0.0; y2 <= 1; y2 += 0.05 {
			if two.Feasible(y1, y2) && !three.Feasible(y1, y2) {
				t.Fatalf("three-point model lost TS point (%v,%v)", y1, y2)
			}
		}
	}
}

func TestLIRAreaErrorsInterferingSide(t *testing.T) {
	// LIR point on the TS line: no extra area, no FN.
	e := LIRAreaErrors(1, 1, 0.25, 0.25, 0.95)
	if e.FN != 0 || e.FP != 0 {
		t.Fatalf("on-line point: %+v", e)
	}
	// LIR = 0.8 < threshold: FN = (0.8-0.5)/0.8.
	e = LIRAreaErrors(1, 1, 0.8, 0.8, 0.95)
	if math.Abs(e.FN-0.375) > 1e-9 || e.FP != 0 {
		t.Fatalf("FN = %v, want 0.375", e.FN)
	}
}

func TestLIRAreaErrorsIndependentSide(t *testing.T) {
	// LIR = 0.96 >= threshold: classified independent.
	// A1+A2 = 0.96, FP = (1-0.96)/0.96.
	e := LIRAreaErrors(1, 1, 0.96, 0.96, 0.95)
	if math.Abs(e.FP-0.04/0.96) > 1e-9 || e.FN != 0 {
		t.Fatalf("FP = %v, want %v", e.FP, 0.04/0.96)
	}
}

func TestExpectedLIRErrorsTradeoff(t *testing.T) {
	// A bimodal LIR population like Fig. 3.
	var lirs []float64
	for i := 0; i < 50; i++ {
		lirs = append(lirs, 0.45+0.005*float64(i%10)) // interfering mass
	}
	for i := 0; i < 50; i++ {
		lirs = append(lirs, 0.96+0.0004*float64(i%10)) // independent mass
	}
	low := ExpectedLIRErrors(lirs, 0.5)
	high := ExpectedLIRErrors(lirs, 0.99)
	// Raising the threshold converts FPs into FNs.
	if high.FN <= low.FN {
		t.Fatalf("FN must grow with threshold: low=%v high=%v", low.FN, high.FN)
	}
	if high.FP >= low.FP {
		t.Fatalf("FP must shrink with threshold: low=%v high=%v", low.FP, high.FP)
	}
}

func TestPropertyAreaErrorsBounded(t *testing.T) {
	f := func(a, b uint8) bool {
		lir := 0.3 + float64(a%70)/100 // [0.3, 1)
		th := 0.5 + float64(b%50)/100  // [0.5, 1)
		e := LIRAreaErrors(1, 1, lir, lir, th)
		if e.FN < 0 || e.FP < 0 {
			return false
		}
		// Only one error type is nonzero at a time.
		return e.FN == 0 || e.FP == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
