package feasibility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core/conflict"
)

// randRegion builds a region over a random conflict graph.
func randRegion(seed int64) (*Region, *conflict.Graph, []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5)
	g := conflict.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				g.AddEdge(i, j)
			}
		}
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.5 + 2*rng.Float64()
	}
	return Build(caps, g), g, caps
}

// Downward closure: shrinking any feasible point keeps it feasible.
func TestPropertyRegionDownwardClosed(t *testing.T) {
	f := func(seed int64, shrink uint8) bool {
		r, _, caps := randRegion(seed)
		rng := rand.New(rand.NewSource(seed + 1))
		y := make([]float64, len(caps))
		for i := range y {
			y[i] = rng.Float64() * caps[i]
		}
		// Scale onto/inside the boundary first.
		s := r.Scale(y)
		if s <= 0 {
			return true
		}
		factor := 0.1 + 0.8*float64(shrink)/255
		for i := range y {
			y[i] *= s * factor
		}
		return r.Contains(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Every extreme point of the region is itself feasible, and every link's
// full-capacity singleton is dominated by some extreme point.
func TestPropertyExtremePointsFeasibleAndCoverLinks(t *testing.T) {
	f := func(seed int64) bool {
		r, _, caps := randRegion(seed)
		for _, p := range r.Points {
			if !r.Contains(p) {
				return false
			}
		}
		for l := range caps {
			covered := false
			for _, p := range r.Points {
				if p[l] >= caps[l]-1e-12 {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Conflicting links can never simultaneously exceed the time-sharing
// bound inside the modelled region.
func TestPropertyConflictingPairsTimeShare(t *testing.T) {
	f := func(seed int64) bool {
		r, g, caps := randRegion(seed)
		rng := rand.New(rand.NewSource(seed + 2))
		y := make([]float64, len(caps))
		for i := range y {
			y[i] = rng.Float64() * caps[i]
		}
		if !r.Contains(y) {
			return true
		}
		for i := 0; i < len(caps); i++ {
			for j := i + 1; j < len(caps); j++ {
				if g.Interferes(i, j) && y[i]/caps[i]+y[j]/caps[j] > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// A denser conflict graph never enlarges the region.
func TestPropertyMoreConflictsShrinkRegion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		sparse := conflict.NewGraph(n)
		dense := conflict.NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				r := rng.Float64()
				if r < 0.3 {
					sparse.AddEdge(i, j)
					dense.AddEdge(i, j)
				} else if r < 0.6 {
					dense.AddEdge(i, j)
				}
			}
		}
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 1
		}
		rs := Build(caps, sparse)
		rd := Build(caps, dense)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.Float64()
		}
		// Anything feasible under dense conflicts is feasible under
		// sparse ones.
		if rd.Contains(y) && !rs.Contains(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
