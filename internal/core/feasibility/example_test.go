package feasibility_test

import (
	"fmt"

	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
)

// ExampleBuild models the paper's Fig. 1 two-link scenario: two
// interfering links produce the time-sharing region spanned by the two
// primary extreme points.
func ExampleBuild() {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1) // the links interfere

	region := feasibility.Build([]float64{1.0, 2.0}, g)
	fmt.Println("extreme points:", region.K())
	fmt.Println("half-half mixture feasible:", region.Contains([]float64{0.5, 1.0}))
	fmt.Println("above time sharing feasible:", region.Contains([]float64{0.8, 1.2}))
	// Output:
	// extreme points: 2
	// half-half mixture feasible: true
	// above time sharing feasible: false
}

// ExampleRegion_Scale finds how far a rate vector can grow before leaving
// the region — the §4.5 under-estimation probe.
func ExampleRegion_Scale() {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	region := feasibility.Build([]float64{1, 1}, g)
	fmt.Printf("scale to boundary: %.1f\n", region.Scale([]float64{0.25, 0.25}))
	// Output:
	// scale to boundary: 2.0
}

// ExampleLIRAreaErrors reproduces one point of the Fig. 6 analysis: the
// FN area error of classifying an LIR-0.8 pair as interfering.
func ExampleLIRAreaErrors() {
	e := feasibility.LIRAreaErrors(1, 1, 0.8, 0.8, 0.95)
	fmt.Printf("FN=%.3f FP=%.3f\n", e.FN, e.FP)
	// Output:
	// FN=0.375 FP=0.000
}
