package optimize_test

import (
	"fmt"

	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
	"repro/internal/core/optimize"
)

// ExampleSolve runs the paper's three objectives on a relay scenario: a
// 2-hop flow (consuming both links) and a 1-hop flow sharing the second
// link — the structure behind the Fig. 13 starvation results.
func ExampleSolve() {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	region := feasibility.Build([]float64{1, 1}, g)
	prob := &optimize.Problem{
		Region: region,
		Routes: [][]int{{0, 1}, {1}}, // flow 0 is 2-hop, flow 1 is 1-hop
	}

	yMax, _ := optimize.Solve(prob, optimize.MaxThroughput, optimize.Options{})
	yProp, _ := optimize.Solve(prob, optimize.ProportionalFair, optimize.Options{Iterations: 2000})
	fmt.Printf("max-throughput: 2-hop %.2f, 1-hop %.2f\n", yMax[0], yMax[1])
	fmt.Printf("prop-fair:      2-hop %.2f, 1-hop %.2f\n", yProp[0], yProp[1])
	// Output:
	// max-throughput: 2-hop 0.00, 1-hop 1.00
	// prop-fair:      2-hop 0.25, 1-hop 0.50
}

// ExampleSolveDistributed shows the decentralized solver agreeing with
// the centralized clique solution.
func ExampleSolveDistributed() {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	cp := optimize.NewCliqueProblem([]float64{1, 1}, g, [][]int{{0}, {1}})
	y, _ := optimize.SolveDistributed(cp, optimize.ProportionalFair,
		optimize.DistributedOptions{Iterations: 6000, Step: 0.5})
	fmt.Printf("%.2f %.2f\n", y[0], y[1])
	// Output:
	// 0.50 0.50
}
