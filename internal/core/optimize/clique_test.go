package optimize

import (
	"math"
	"testing"

	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
)

func twoLinkClique(c1, c2 float64) *CliqueProblem {
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	return NewCliqueProblem([]float64{c1, c2}, g, [][]int{{0}, {1}})
}

func TestMaximalCliquesOfTriangle(t *testing.T) {
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	cl := MaximalCliques(g)
	if len(cl) != 1 || len(cl[0]) != 3 {
		t.Fatalf("cliques = %v", cl)
	}
}

func TestSolveCliqueMatchesPolytopeOnPerfectGraph(t *testing.T) {
	// Two interfering links: both formulations are exact.
	cp := twoLinkClique(1, 3)
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	region := feasibility.Build([]float64{1, 3}, g)
	pp := &Problem{Region: region, Routes: [][]int{{0}, {1}}}
	for _, obj := range []Objective{MaxThroughput, ProportionalFair, MaxMin} {
		yc, err := SolveClique(cp, obj, Options{Iterations: 800})
		if err != nil {
			t.Fatal(err)
		}
		yp, err := Solve(pp, obj, Options{Iterations: 800})
		if err != nil {
			t.Fatal(err)
		}
		for i := range yc {
			if math.Abs(yc[i]-yp[i]) > 0.05*(yp[i]+0.1) {
				t.Fatalf("alpha=%v: clique %v vs polytope %v", obj.Alpha, yc, yp)
			}
		}
	}
}

// On an odd cycle (imperfect graph) the clique formulation is a strict
// outer bound: it admits more aggregate throughput than the MIS polytope.
func TestCliqueOuterBoundOnOddCycle(t *testing.T) {
	g := conflict.NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	caps := []float64{1, 1, 1, 1, 1}
	routes := [][]int{{0}, {1}, {2}, {3}, {4}}
	cp := NewCliqueProblem(caps, g, routes)
	yc, err := SolveClique(cp, MaxThroughput, Options{})
	if err != nil {
		t.Fatal(err)
	}
	region := feasibility.Build(caps, g)
	yp, err := Solve(&Problem{Region: region, Routes: routes}, MaxThroughput, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(v []float64) float64 {
		t := 0.0
		for _, x := range v {
			t += x
		}
		return t
	}
	// MIS polytope: independence number 2 -> aggregate 2.
	// Edge cliques: y_i + y_{i+1} <= 1 -> aggregate 2.5.
	if math.Abs(sum(yp)-2) > 1e-6 {
		t.Fatalf("polytope aggregate = %v, want 2", sum(yp))
	}
	if math.Abs(sum(yc)-2.5) > 1e-6 {
		t.Fatalf("clique aggregate = %v, want 2.5", sum(yc))
	}
}

func TestSolveCliqueMultiHopFlow(t *testing.T) {
	// Chain of two conflicting links, flow 0 uses both: its airtime
	// coefficient doubles, so prop-fair gives (1/4, 1/2) as in the
	// polytope case.
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	cp := NewCliqueProblem([]float64{1, 1}, g, [][]int{{0, 1}, {1}})
	y, err := SolveClique(cp, ProportionalFair, Options{Iterations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.25) > 0.02 || math.Abs(y[1]-0.5) > 0.03 {
		t.Fatalf("y = %v, want (0.25, 0.5)", y)
	}
}

func TestDistributedConvergesToCentralized(t *testing.T) {
	// Three mutually interfering links with distinct capacities.
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	cp := NewCliqueProblem([]float64{1e6, 2e6, 4e6}, g, [][]int{{0}, {1}, {2}})
	want, err := SolveClique(cp, ProportionalFair, Options{Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveDistributed(cp, ProportionalFair, DistributedOptions{Iterations: 8000, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.08*want[i] {
			t.Fatalf("distributed %v vs centralized %v", got, want)
		}
	}
}

func TestDistributedRespectsFeasibility(t *testing.T) {
	g := conflict.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	cp := NewCliqueProblem([]float64{1, 1.5, 0.7, 2}, g, [][]int{{0, 1}, {2}, {1, 2, 3}})
	y, err := SolveDistributed(cp, Objective{Alpha: 2}, DistributedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range cp.Cliques {
		occ := 0.0
		for s := range cp.Routes {
			occ += cp.coeff(q, s) * y[s]
		}
		if occ > 1+1e-6 {
			t.Fatalf("clique %d occupancy %v > 1 (y=%v)", qi, occ, y)
		}
	}
}

func TestDistributedRejectsBadAlpha(t *testing.T) {
	cp := twoLinkClique(1, 1)
	if _, err := SolveDistributed(cp, MaxThroughput, DistributedOptions{}); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := SolveDistributed(cp, MaxMin, DistributedOptions{}); err == nil {
		t.Fatal("alpha=inf accepted")
	}
}

func TestSolveCliqueNoFlows(t *testing.T) {
	g := conflict.NewGraph(1)
	cp := NewCliqueProblem([]float64{1}, g, nil)
	if _, err := SolveClique(cp, MaxThroughput, Options{}); err != ErrNoFlows {
		t.Fatalf("err = %v", err)
	}
}
