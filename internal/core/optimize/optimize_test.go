package optimize

import (
	"math"
	"testing"

	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
)

// twoLinkRegion builds a region for two links with given capacities,
// conflicting when interfere is true.
func twoLinkRegion(c1, c2 float64, interfere bool) *feasibility.Region {
	g := conflict.NewGraph(2)
	if interfere {
		g.AddEdge(0, 1)
	}
	return feasibility.Build([]float64{c1, c2}, g)
}

func oneHopProblem(r *feasibility.Region) *Problem {
	routes := make([][]int, r.L())
	for i := range routes {
		routes[i] = []int{i}
	}
	return &Problem{Region: r, Routes: routes}
}

func TestMaxThroughputPicksBestLink(t *testing.T) {
	p := oneHopProblem(twoLinkRegion(1, 3, true))
	y, err := Solve(p, MaxThroughput, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[1]-3) > 1e-6 || y[0] > 1e-6 {
		t.Fatalf("y = %v, want all airtime on the faster link", y)
	}
}

func TestMaxThroughputIndependentLinks(t *testing.T) {
	p := oneHopProblem(twoLinkRegion(1, 3, false))
	y, err := Solve(p, MaxThroughput, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]-3) > 1e-6 {
		t.Fatalf("y = %v, want both at capacity", y)
	}
}

func TestMaxMinEqualCapacities(t *testing.T) {
	p := oneHopProblem(twoLinkRegion(1, 1, true))
	y, err := Solve(p, MaxMin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 1e-6 || math.Abs(y[1]-0.5) > 1e-6 {
		t.Fatalf("y = %v, want (0.5, 0.5)", y)
	}
}

func TestMaxMinUnequalCapacities(t *testing.T) {
	// Time sharing between c1=1 and c2=3: y1/1 + y2/3 = 1 with y1=y2
	// gives y = 3/4.
	p := oneHopProblem(twoLinkRegion(1, 3, true))
	y, err := Solve(p, MaxMin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.75) > 1e-6 || math.Abs(y[1]-0.75) > 1e-6 {
		t.Fatalf("y = %v, want (0.75, 0.75)", y)
	}
}

// Proportional fairness on a shared channel with equal capacities is the
// equal split; with unequal capacities it equalizes airtime shares:
// maximizing log y1 + log y2 over y1/c1 + y2/c2 <= 1 gives y_i = c_i/2.
func TestProportionalFairAirtimeSplit(t *testing.T) {
	p := oneHopProblem(twoLinkRegion(1, 3, true))
	y, err := Solve(p, ProportionalFair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 0.02 || math.Abs(y[1]-1.5) > 0.05 {
		t.Fatalf("y = %v, want ~(0.5, 1.5)", y)
	}
}

func TestProportionalFairMatchesKKTThreeLinks(t *testing.T) {
	// Three mutually interfering links, capacities c: prop-fair gives
	// y_i = c_i / 3.
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	r := feasibility.Build([]float64{1, 2, 4}, g)
	p := oneHopProblem(r)
	y, err := Solve(p, ProportionalFair, Options{Iterations: 800})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 3, 2.0 / 3, 4.0 / 3}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 0.03*want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestMultiHopFlowConsumesBothLinks(t *testing.T) {
	// Two conflicting links; flow 0 crosses both (2-hop), flow 1 uses
	// link 1 only. Max throughput should starve the 2-hop flow (it costs
	// double airtime) — the Fig. 13 phenomenon.
	r := twoLinkRegion(1, 1, true)
	p := &Problem{Region: r, Routes: [][]int{{0, 1}, {1}}}
	y, err := Solve(p, MaxThroughput, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] > 1e-6 || math.Abs(y[1]-1) > 1e-6 {
		t.Fatalf("y = %v, want (0, 1)", y)
	}
	// Proportional fairness revives the 2-hop flow: maximize
	// log y0 + log y1 s.t. 2*y0 + y1 <= 1 -> y0 = 1/4, y1 = 1/2.
	y, err = Solve(p, ProportionalFair, Options{Iterations: 800})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.25) > 0.02 || math.Abs(y[1]-0.5) > 0.03 {
		t.Fatalf("prop-fair y = %v, want (0.25, 0.5)", y)
	}
}

func TestAlphaSweepMonotoneFairness(t *testing.T) {
	// As alpha grows, the minimum flow rate must not decrease.
	r := twoLinkRegion(1, 4, true)
	p := &Problem{Region: r, Routes: [][]int{{0}, {1}}}
	prevMin := -1.0
	for _, alpha := range []float64{0.5, 1, 2, 4} {
		y, err := Solve(p, Objective{Alpha: alpha}, Options{Iterations: 600})
		if err != nil {
			t.Fatal(err)
		}
		m := math.Min(y[0], y[1])
		if m < prevMin-0.02 {
			t.Fatalf("alpha=%v min=%v dropped below %v", alpha, m, prevMin)
		}
		prevMin = m
	}
}

func TestSolveRespectsFeasibility(t *testing.T) {
	// Whatever the objective, R y must stay inside the region.
	g := conflict.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	r := feasibility.Build([]float64{1, 2, 1.5, 0.8}, g)
	p := &Problem{Region: r, Routes: [][]int{{0, 1}, {2}, {1, 2, 3}}}
	for _, obj := range []Objective{MaxThroughput, ProportionalFair, MaxMin, {Alpha: 2}} {
		y, err := Solve(p, obj, Options{})
		if err != nil {
			t.Fatalf("alpha=%v: %v", obj.Alpha, err)
		}
		linkLoad := make([]float64, r.L())
		for s, links := range p.Routes {
			for _, l := range links {
				linkLoad[l] += y[s]
			}
		}
		// Allow tiny numerical slack.
		scaled := make([]float64, len(linkLoad))
		for i, v := range linkLoad {
			scaled[i] = v * 0.999
		}
		if !r.Contains(scaled) {
			t.Fatalf("alpha=%v: link load %v outside region", obj.Alpha, linkLoad)
		}
	}
}

func TestUtilityEvaluation(t *testing.T) {
	y := []float64{1, 2}
	if got := Utility(y, MaxThroughput); math.Abs(got-3) > 1e-9 {
		t.Fatalf("alpha=0 utility = %v", got)
	}
	if got := Utility(y, ProportionalFair); math.Abs(got-math.Log(2)) > 1e-9 {
		t.Fatalf("alpha=1 utility = %v", got)
	}
	if got := Utility(y, MaxMin); got != 1 {
		t.Fatalf("max-min 'utility' = %v", got)
	}
}

func TestTCPAckScale(t *testing.T) {
	s := TCPAckScale(52, 40, 1460)
	if s <= 0.9 || s >= 1 {
		t.Fatalf("scale = %v", s)
	}
}

func TestNoFlowsError(t *testing.T) {
	r := twoLinkRegion(1, 1, true)
	if _, err := Solve(&Problem{Region: r}, MaxThroughput, Options{}); err != ErrNoFlows {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeAlphaRejected(t *testing.T) {
	p := oneHopProblem(twoLinkRegion(1, 1, true))
	if _, err := Solve(p, Objective{Alpha: -1}, Options{}); err == nil {
		t.Fatal("negative alpha accepted")
	}
}
