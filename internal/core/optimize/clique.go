package optimize

import (
	"fmt"
	"math"

	"repro/internal/core/conflict"
	"repro/internal/lp"
)

// CliqueProblem is the alternative formulation of the feasibility region
// used by clique-based congestion control schemes (and the natural target
// for the decentralized mechanisms the paper's introduction motivates):
// one linear constraint per maximal clique Q of the conflict graph,
//
//	sum_{l in Q} (R y)_l / c_l <= 1.
//
// For perfect conflict graphs this coincides with the extreme-point
// polytope; for imperfect graphs (odd holes) it is a strict outer bound —
// optimistic where the MIS polytope is exact. Comparing the two is the
// formulation ablation in bench_test.go.
type CliqueProblem struct {
	Capacities []float64
	Cliques    [][]int // maximal cliques of the conflict graph
	Routes     [][]int // per-flow link indices
}

// MaximalCliques enumerates the maximal cliques of a conflict graph (the
// maximal independent sets of its complement).
func MaximalCliques(g *conflict.Graph) [][]int {
	return g.Complement().MaximalIndependentSets()
}

// NewCliqueProblem builds the clique formulation from the same inputs as
// the polytope one.
func NewCliqueProblem(capacities []float64, g *conflict.Graph, routes [][]int) *CliqueProblem {
	return &CliqueProblem{
		Capacities: capacities,
		Cliques:    MaximalCliques(g),
		Routes:     routes,
	}
}

// coeff returns a_{Q,s} = sum over links of flow s inside clique q of
// 1/c_l: the airtime fraction flow s consumes in Q per unit rate.
func (p *CliqueProblem) coeff(q []int, s int) float64 {
	inQ := map[int]bool{}
	for _, l := range q {
		inQ[l] = true
	}
	a := 0.0
	for _, l := range p.Routes[s] {
		if inQ[l] {
			a += 1 / p.Capacities[l]
		}
	}
	return a
}

// matrix materializes the full constraint matrix a[Q][s].
func (p *CliqueProblem) matrix() [][]float64 {
	a := make([][]float64, len(p.Cliques))
	for qi, q := range p.Cliques {
		a[qi] = make([]float64, len(p.Routes))
		for s := range p.Routes {
			a[qi][s] = p.coeff(q, s)
		}
	}
	return a
}

// SolveClique maximizes the alpha-fair utility over the clique polytope,
// using the same LP/Frank–Wolfe split as the extreme-point formulation.
func SolveClique(p *CliqueProblem, obj Objective, opts Options) ([]float64, error) {
	if len(p.Routes) == 0 {
		return nil, ErrNoFlows
	}
	if obj.Alpha < 0 {
		return nil, fmt.Errorf("optimize: negative alpha %v", obj.Alpha)
	}
	opts = opts.withDefaults()
	a := p.matrix()
	s := len(p.Routes)

	oracle := func(g []float64) ([]float64, error) {
		prob := lp.NewProblem(s, g)
		for _, row := range a {
			prob.AddConstraint(row, lp.LE, 1)
		}
		x, _, err := lp.Solve(prob)
		return x, err
	}
	maxmin := func() ([]float64, error) {
		objv := make([]float64, s+1)
		objv[s] = 1
		prob := lp.NewProblem(s+1, objv)
		for _, row := range a {
			r := append(append([]float64(nil), row...), 0)
			prob.AddConstraint(r, lp.LE, 1)
		}
		for si := 0; si < s; si++ {
			r := make([]float64, s+1)
			r[si] = 1
			r[s] = -1
			prob.AddConstraint(r, lp.GE, 0)
		}
		x, _, err := lp.Solve(prob)
		if err != nil {
			return nil, err
		}
		return x[:s], nil
	}

	switch {
	case math.IsInf(obj.Alpha, 1):
		return maxmin()
	case obj.Alpha == 0:
		return oracle(ones(s))
	}
	// Frank–Wolfe from the max-min interior point.
	y, err := maxmin()
	if err != nil {
		return nil, err
	}
	floor := opts.FloorFraction * minPositive(p.Capacities)
	g := make([]float64, s)
	for it := 0; it < opts.Iterations; it++ {
		gmax := 0.0
		for i := 0; i < s; i++ {
			v := y[i]
			if v < floor {
				v = floor
			}
			g[i] = math.Pow(v, -obj.Alpha)
			if g[i] > gmax {
				gmax = g[i]
			}
		}
		if gmax > 0 {
			for i := range g {
				g[i] /= gmax
			}
		}
		vertex, err := oracle(g)
		if err != nil {
			return nil, err
		}
		gamma := 2 / float64(it+2)
		for i := 0; i < s; i++ {
			y[i] += gamma * (vertex[i] - y[i])
		}
	}
	return y, nil
}

// DistributedOptions tunes the dual-decomposition solver.
type DistributedOptions struct {
	// Iterations of the price-update loop (default 2000).
	Iterations int
	// Step is the initial subgradient step size (default 0.1); the
	// effective step decays as Step/sqrt(t).
	Step float64
}

func (o DistributedOptions) withDefaults() DistributedOptions {
	if o.Iterations == 0 {
		o.Iterations = 2000
	}
	if o.Step == 0 {
		o.Step = 0.1
	}
	return o
}

// SolveDistributed runs the Kelly-style dual decomposition over the clique
// formulation: each clique maintains a congestion price updated from only
// its own airtime occupancy, and each source sets its rate from only the
// sum of prices along its route — the message pattern a real decentralized
// deployment would use. Requires alpha > 0 (strictly concave utilities).
func SolveDistributed(p *CliqueProblem, obj Objective, opts DistributedOptions) ([]float64, error) {
	if len(p.Routes) == 0 {
		return nil, ErrNoFlows
	}
	if obj.Alpha <= 0 || math.IsInf(obj.Alpha, 1) {
		return nil, fmt.Errorf("optimize: distributed solver needs finite alpha > 0, got %v", obj.Alpha)
	}
	opts = opts.withDefaults()
	a := p.matrix()
	nq, s := len(a), len(p.Routes)

	// Work in capacity-normalized rate units so prices are O(1).
	scale := minPositive(p.Capacities)

	// Each flow's rate is bounded by its route bottleneck regardless of
	// prices (the clique constraints imply it, but the dual iterates
	// need the explicit cap before prices converge).
	ymax := make([]float64, s)
	for si, route := range p.Routes {
		ymax[si] = math.Inf(1)
		for _, l := range route {
			if c := p.Capacities[l]; c < ymax[si] {
				ymax[si] = c
			}
		}
		ymax[si] /= scale
	}

	lambda := make([]float64, nq)
	for i := range lambda {
		lambda[i] = 1
	}
	y := make([]float64, s)
	for t := 1; t <= opts.Iterations; t++ {
		// Sources: y_s = (sum_Q lambda_Q a_{Q,s} * scale)^(-1/alpha),
		// in normalized units.
		for si := 0; si < s; si++ {
			price := 0.0
			for qi := 0; qi < nq; qi++ {
				price += lambda[qi] * a[qi][si] * scale
			}
			if price <= 0 {
				y[si] = ymax[si]
				continue
			}
			y[si] = math.Pow(price, -1/obj.Alpha)
			if y[si] > ymax[si] {
				y[si] = ymax[si]
			}
		}
		// Cliques: price ascent on occupancy violation.
		step := opts.Step / math.Sqrt(float64(t))
		for qi := 0; qi < nq; qi++ {
			occ := 0.0
			for si := 0; si < s; si++ {
				occ += a[qi][si] * y[si] * scale
			}
			lambda[qi] += step * (occ - 1)
			if lambda[qi] < 0 {
				lambda[qi] = 0
			}
		}
	}
	// Project the final iterate into the feasible set (subgradient
	// iterates can sit slightly outside).
	worst := 1.0
	for qi := 0; qi < nq; qi++ {
		occ := 0.0
		for si := 0; si < s; si++ {
			occ += a[qi][si] * y[si] * scale
		}
		if occ > worst {
			worst = occ
		}
	}
	out := make([]float64, s)
	for si := range y {
		out[si] = y[si] * scale / worst
	}
	return out, nil
}
