// Package optimize implements the paper's convex optimization framework
// (§6.1): maximize an alpha-fair utility of end-to-end flow rates subject
// to the routing matrix mapping flow rates onto links and the link rates
// lying inside the feasibility polytope:
//
//	maximize   sum_s U(y_s)
//	subject to R y <= C alpha,  1'alpha = 1,  alpha >= 0,
//
// where the columns of C are the extreme points. alpha = 0 (maximum
// aggregate throughput) and the max-min objective reduce to LPs; general
// alpha (including proportional fairness, alpha = 1) is solved by
// Frank–Wolfe with the LP as linear oracle — every iterate stays feasible
// and the method needs only the polytope's linear description, exactly the
// property the paper's model is designed to provide.
package optimize

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core/feasibility"
	"repro/internal/lp"
)

// Objective selects the utility U in the alpha-fair family:
// U(y) = y^(1-alpha)/(1-alpha) for alpha != 1, log y for alpha = 1.
type Objective struct {
	// Alpha is the fairness parameter: 0 maximizes aggregate
	// throughput, 1 is proportional fairness, larger values approach
	// max-min. math.Inf(1) selects the exact max-min LP.
	Alpha float64
}

// MaxThroughput, ProportionalFair and MaxMin are the objectives evaluated
// in the paper (TCP-Max and TCP-Prop in §6.3, max-min in §4.5 footnote).
var (
	MaxThroughput    = Objective{Alpha: 0}
	ProportionalFair = Objective{Alpha: 1}
	MaxMin           = Objective{Alpha: math.Inf(1)}
)

// Problem couples a feasibility region with a routing matrix.
type Problem struct {
	Region *feasibility.Region
	// Routes[s] lists the link indices used by flow s.
	Routes [][]int
}

// NumFlows returns S.
func (p *Problem) NumFlows() int { return len(p.Routes) }

// routingRow returns R_{l,·} as a dense row over flows.
func (p *Problem) routingRow(l int) []float64 {
	row := make([]float64, len(p.Routes))
	for s, links := range p.Routes {
		for _, ll := range links {
			if ll == l {
				row[s] = 1
			}
		}
	}
	return row
}

// Options tunes the Frank–Wolfe solver.
type Options struct {
	// Iterations bounds the Frank–Wolfe steps (default 400).
	Iterations int
	// FloorFraction sets the gradient clamp: rates below this fraction
	// of the smallest capacity are treated as the floor when computing
	// gradients of log-like utilities (default 1e-4).
	FloorFraction float64
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 400
	}
	if o.FloorFraction == 0 {
		o.FloorFraction = 1e-4
	}
	return o
}

// ErrNoFlows is returned for a problem with no flows.
var ErrNoFlows = errors.New("optimize: no flows")

// Solve returns the optimized end-to-end flow output rates y.
//
// The problem is solved in capacity-normalized units (rates divided by the
// largest extreme-point coordinate): every alpha-fair utility's argmax is
// invariant under that scaling, and it keeps the Frank–Wolfe gradients
// y^-alpha within floating-point range for bits-per-second rate scales.
func Solve(p *Problem, obj Objective, opts Options) ([]float64, error) {
	if p.NumFlows() == 0 {
		return nil, ErrNoFlows
	}
	opts = opts.withDefaults()
	if obj.Alpha < 0 {
		return nil, fmt.Errorf("optimize: negative alpha %v", obj.Alpha)
	}
	scale := maxCoord(p.Region)
	if scale <= 0 {
		return make([]float64, p.NumFlows()), nil
	}
	np := &Problem{Region: scaleRegion(p.Region, 1/scale), Routes: p.Routes}
	var y []float64
	var err error
	switch {
	case math.IsInf(obj.Alpha, 1):
		y, err = solveMaxMin(np)
	case obj.Alpha == 0:
		y, err = solveOracle(np, ones(np.NumFlows()))
	default:
		y, err = solveFrankWolfe(np, obj, opts)
	}
	if err != nil {
		return nil, err
	}
	for i := range y {
		y[i] *= scale
	}
	return y, nil
}

func maxCoord(r *feasibility.Region) float64 {
	m := 0.0
	for _, p := range r.Points {
		for _, v := range p {
			if v > m {
				m = v
			}
		}
	}
	return m
}

func scaleRegion(r *feasibility.Region, k float64) *feasibility.Region {
	pts := make([][]float64, len(r.Points))
	for i, p := range r.Points {
		pts[i] = make([]float64, len(p))
		for j, v := range p {
			pts[i][j] = v * k
		}
	}
	caps := make([]float64, len(r.Capacities))
	for i, v := range r.Capacities {
		caps[i] = v * k
	}
	return &feasibility.Region{Points: pts, Capacities: caps}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// buildLP constructs the polytope LP with variables [y (S), alpha (K)] and
// objective g over y.
func buildLP(p *Problem, g []float64) *lp.Problem {
	s := p.NumFlows()
	k := p.Region.K()
	l := p.Region.L()
	obj := make([]float64, s+k)
	copy(obj, g)
	prob := lp.NewProblem(s+k, obj)
	for li := 0; li < l; li++ {
		row := make([]float64, s+k)
		copy(row, p.routingRow(li))
		for j := 0; j < k; j++ {
			row[s+j] = -p.Region.Points[j][li]
		}
		prob.AddConstraint(row, lp.LE, 0)
	}
	simplexRow := make([]float64, s+k)
	for j := 0; j < k; j++ {
		simplexRow[s+j] = 1
	}
	prob.AddConstraint(simplexRow, lp.EQ, 1)
	return prob
}

// solveOracle maximizes the linear objective g'y over the polytope.
func solveOracle(p *Problem, g []float64) ([]float64, error) {
	x, _, err := lp.Solve(buildLP(p, g))
	if err != nil {
		return nil, err
	}
	return x[:p.NumFlows()], nil
}

// solveMaxMin maximizes the minimum flow rate (single-level max-min).
func solveMaxMin(p *Problem) ([]float64, error) {
	s := p.NumFlows()
	k := p.Region.K()
	l := p.Region.L()
	// Variables: y (S), alpha (K), t.
	obj := make([]float64, s+k+1)
	obj[s+k] = 1
	prob := lp.NewProblem(s+k+1, obj)
	for li := 0; li < l; li++ {
		row := make([]float64, s+k+1)
		copy(row, p.routingRow(li))
		for j := 0; j < k; j++ {
			row[s+j] = -p.Region.Points[j][li]
		}
		prob.AddConstraint(row, lp.LE, 0)
	}
	simplexRow := make([]float64, s+k+1)
	for j := 0; j < k; j++ {
		simplexRow[s+j] = 1
	}
	prob.AddConstraint(simplexRow, lp.EQ, 1)
	for si := 0; si < s; si++ {
		row := make([]float64, s+k+1)
		row[si] = 1
		row[s+k] = -1
		prob.AddConstraint(row, lp.GE, 0)
	}
	x, _, err := lp.Solve(prob)
	if err != nil {
		return nil, err
	}
	return x[:s], nil
}

// solveFrankWolfe runs the conditional-gradient method from the max-min
// point (strictly positive when the problem allows it).
func solveFrankWolfe(p *Problem, obj Objective, opts Options) ([]float64, error) {
	y, err := solveMaxMin(p)
	if err != nil {
		return nil, err
	}
	floor := opts.FloorFraction * minPositive(p.Region.Capacities)
	s := p.NumFlows()
	g := make([]float64, s)
	for it := 0; it < opts.Iterations; it++ {
		gmax := 0.0
		for i := 0; i < s; i++ {
			v := y[i]
			if v < floor {
				v = floor
			}
			g[i] = math.Pow(v, -obj.Alpha)
			if g[i] > gmax {
				gmax = g[i]
			}
		}
		// Normalize so the LP oracle's reduced costs stay well above
		// its epsilon regardless of alpha.
		if gmax > 0 {
			for i := range g {
				g[i] /= gmax
			}
		}
		vertex, err := solveOracle(p, g)
		if err != nil {
			return nil, err
		}
		gamma := 2 / float64(it+2)
		for i := 0; i < s; i++ {
			y[i] += gamma * (vertex[i] - y[i])
		}
	}
	return y, nil
}

func minPositive(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x > 0 && x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return 1
	}
	return m
}

// Utility evaluates the alpha-fair objective at y (useful in tests and
// ablations to compare solver variants).
func Utility(y []float64, obj Objective) float64 {
	total := 0.0
	for _, v := range y {
		switch {
		case math.IsInf(obj.Alpha, 1):
			// Max-min has no additive utility; return min.
			return minSlice(y)
		case obj.Alpha == 1:
			total += math.Log(v)
		default:
			total += math.Pow(v, 1-obj.Alpha) / (1 - obj.Alpha)
		}
	}
	return total
}

func minSlice(y []float64) float64 {
	m := math.Inf(1)
	for _, v := range y {
		if v < m {
			m = v
		}
	}
	return m
}

// TCPAckScale is the §6.2 factor that reserves air time for TCP ACKs in
// the reverse direction: (1 - (A+H)/(A+H+D)) with A and H the IP/TCP
// header and TCP ACK sizes and D the TCP payload size.
func TCPAckScale(hdrBytes, ackBytes, payloadBytes int) float64 {
	ah := float64(hdrBytes + ackBytes)
	return 1 - ah/(ah+float64(payloadBytes))
}
