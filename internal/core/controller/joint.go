package controller

import (
	"fmt"
	"math"

	"repro/internal/core/capacity"
	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
	"repro/internal/core/optimize"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/topology"
)

// maxRouteCombos bounds the exhaustive search over per-flow route
// alternatives.
const maxRouteCombos = 256

// ComputeJointRouting extends Compute with the paper's §7 future-work
// item: routing as part of the optimization. For every flow it enumerates
// up to kAlt candidate ETT paths, then exhaustively evaluates consistent
// route combinations — solving the utility maximization over each
// combination's feasibility region — and installs the best one.
//
// Combinations are "consistent" when they can be expressed in
// destination-based forwarding (no node needs two different next hops for
// the same destination).
func (c *Controller) ComputeJointRouting(kAlt int) (*Plan, error) {
	if kAlt < 1 {
		kAlt = 1
	}
	allLinks, allEst := c.linkEstimates()
	if len(allLinks) == 0 {
		return nil, fmt.Errorf("controller: no links observed; probe first")
	}
	estBy := make(map[topology.Link]probe.LinkEstimate, len(allLinks))
	metrics := make([]routing.LinkMetric, len(allLinks))
	for i, l := range allLinks {
		estBy[l] = allEst[i]
		metrics[i] = routing.LinkMetric{
			Link: l, PData: allEst[i].PData, PAck: allEst[i].PAck, Rate: c.rateFor(l),
		}
	}

	// Candidate paths per flow.
	candidates := make([][][]topology.Link, len(c.flows))
	total := 1
	for s, f := range c.flows {
		paths := routing.KPaths(len(c.nw.Nodes), metrics, c.cfg.PayloadBytes, f.Src, f.Dst, kAlt)
		if len(paths) == 0 {
			return nil, fmt.Errorf("controller: flow %d->%d unroutable", f.Src, f.Dst)
		}
		candidates[s] = paths
		total *= len(paths)
		if total > maxRouteCombos {
			return nil, fmt.Errorf("controller: %d route combinations exceed limit %d", total, maxRouteCombos)
		}
	}

	nb := c.neighbours(allLinks)
	var best *Plan
	bestU := math.Inf(-1)
	choice := make([]int, len(c.flows))
	var walk func(s int)
	walk = func(s int) {
		if s == len(c.flows) {
			plan, ok := c.evalCombo(candidates, choice, estBy, nb)
			if !ok {
				return
			}
			u := optimize.Utility(plan.OutputRates, c.cfg.Objective)
			if u > bestU {
				bestU = u
				best = plan
			}
			return
		}
		for i := range candidates[s] {
			choice[s] = i
			walk(s + 1)
		}
	}
	walk(0)
	if best == nil {
		return nil, fmt.Errorf("controller: no consistent route combination")
	}
	c.installPlanRoutes(best, metrics)
	return best, nil
}

// evalCombo builds and solves the model for one route combination.
func (c *Controller) evalCombo(candidates [][][]topology.Link, choice []int,
	estBy map[topology.Link]probe.LinkEstimate, nb map[int][]int) (*Plan, bool) {

	// Destination-based forwarding consistency.
	nextHop := map[[2]int]int{}
	for s, f := range c.flows {
		path := candidates[s][choice[s]]
		for _, l := range path {
			key := [2]int{l.Src, f.Dst}
			if nh, ok := nextHop[key]; ok && nh != l.Dst {
				return nil, false
			}
			nextHop[key] = l.Dst
		}
	}

	var links []topology.Link
	index := map[topology.Link]int{}
	routes := make([][]int, len(c.flows))
	paths := make([][]int, len(c.flows))
	for s := range c.flows {
		pl := candidates[s][choice[s]]
		paths[s] = []int{pl[0].Src}
		for _, l := range pl {
			paths[s] = append(paths[s], l.Dst)
			li, ok := index[l]
			if !ok {
				li = len(links)
				index[l] = li
				links = append(links, l)
			}
			routes[s] = append(routes[s], li)
		}
	}

	caps := make([]float64, len(links))
	loss := make([]float64, len(links))
	for i, l := range links {
		le, ok := estBy[l]
		if !ok {
			return nil, false
		}
		loss[i] = le.Pl
		caps[i] = capacity.MaxUDP(le.Pl, c.rateFor(l), c.cfg.PayloadBytes)
	}
	g := conflict.TwoHop(links, nb)
	region := feasibility.Build(caps, g)
	y, err := optimize.Solve(&optimize.Problem{Region: region, Routes: routes}, c.cfg.Objective, optimize.Options{})
	if err != nil {
		return nil, false
	}
	xs := make([]float64, len(c.flows))
	for s := range c.flows {
		good := 1.0
		for _, li := range routes[s] {
			good *= 1 - math.Pow(loss[li], float64(c.cfg.RetryLimit+1))
		}
		if good <= 0 {
			good = 1
		}
		xs[s] = y[s] / good
	}
	return &Plan{
		Links: links, Capacities: caps, LossRates: loss,
		Graph: g, Region: region,
		Routes: routes, FlowPaths: paths,
		OutputRates: y, InputRates: xs,
	}, true
}

// installPlanRoutes writes the chosen per-flow paths into the nodes on
// top of the default ETT table.
func (c *Controller) installPlanRoutes(plan *Plan, metrics []routing.LinkMetric) {
	table := routing.BuildTable(len(c.nw.Nodes), metrics, c.cfg.PayloadBytes)
	table.Install(c.nw.Nodes)
	for s, f := range c.flows {
		path := plan.FlowPaths[s]
		for i := 0; i+1 < len(path); i++ {
			c.nw.Nodes[path[i]].SetRoute(f.Dst, path[i+1])
		}
	}
}
