package controller

import (
	"testing"

	"repro/internal/core/optimize"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

func diamond(seed int64) *topology.Network {
	// Branch hops of ~89 m carry 11 Mb/s comfortably; the 140 m direct
	// path loses ~85% of frames and must be routed around.
	pos := []phy.Position{
		{X: 0, Y: 0}, {X: 70, Y: 55}, {X: 70, Y: -55}, {X: 140, Y: 0},
	}
	return topology.New(seed, phy.DefaultConfig(), pos, phy.Rate11)
}

func TestJointRoutingOnDiamond(t *testing.T) {
	nw := diamond(3)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 0, Dst: 3}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()

	plain, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	joint, err := c.ComputeJointRouting(3)
	if err != nil {
		t.Fatal(err)
	}
	// Joint routing can never do worse than the fixed ETT route.
	pu := optimize.Utility(plain.OutputRates, cfg.Objective)
	ju := optimize.Utility(joint.OutputRates, cfg.Objective)
	if ju < pu-1e-6 {
		t.Fatalf("joint utility %v below fixed-route %v", ju, pu)
	}
	if len(joint.FlowPaths[0]) != 3 {
		t.Fatalf("diamond path = %v, want 2 hops", joint.FlowPaths[0])
	}
}

func TestJointRoutingInstallsRoutes(t *testing.T) {
	nw := diamond(4)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 0, Dst: 3}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	joint, err := c.ComputeJointRouting(2)
	if err != nil {
		t.Fatal(err)
	}
	mid := joint.FlowPaths[0][1]
	if nw.Nodes[0].NextHop(3) != mid {
		t.Fatalf("installed next hop %d, plan path %v", nw.Nodes[0].NextHop(3), joint.FlowPaths[0])
	}
	// The plan must actually carry traffic.
	srcs, sinks := c.ApplyUDP(joint)
	nw.Sim.Run(nw.Sim.Now() + 5*sim.Second)
	for _, s := range srcs {
		s.Stop()
	}
	if got := sinks[0].ThroughputBps(0); got < 0.8*joint.OutputRates[0] {
		t.Fatalf("achieved %.2f of planned %.2f Mb/s", got/1e6, joint.OutputRates[0]/1e6)
	}
}

func TestJointRoutingMatchesComputeOnChain(t *testing.T) {
	// On a chain there are no alternatives; joint must agree with plain.
	nw := topology.Chain(5, 3, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 2, Dst: 0}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	plain, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	joint, err := c.ComputeJointRouting(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.FlowPaths[0]) != len(plain.FlowPaths[0]) {
		t.Fatalf("paths differ: %v vs %v", joint.FlowPaths[0], plain.FlowPaths[0])
	}
	rel := (joint.OutputRates[0] - plain.OutputRates[0]) / plain.OutputRates[0]
	if rel < -0.05 || rel > 0.05 {
		t.Fatalf("rates differ: %v vs %v", joint.OutputRates[0], plain.OutputRates[0])
	}
}

func TestJointRoutingUnroutable(t *testing.T) {
	nw := topology.New(7, phy.DefaultConfig(),
		[]phy.Position{{X: 0}, {X: 5000}}, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	c := New(nw, []Flow{{Src: 0, Dst: 1}}, cfg)
	c.Probe(3 * sim.Second)
	if _, err := c.ComputeJointRouting(2); err == nil {
		t.Fatal("unroutable flow accepted")
	}
}
