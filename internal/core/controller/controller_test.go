package controller

import (
	"testing"

	"repro/internal/core/optimize"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

func probeAndCompute(t *testing.T, nw *topology.Network, flows []Flow, cfg Config) *Plan {
	t.Helper()
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestComputeOnChain(t *testing.T) {
	nw := topology.Chain(1, 3, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 50 * sim.Millisecond // speed the test up
	plan := probeAndCompute(t, nw, []Flow{{Src: 2, Dst: 0}}, cfg)

	if len(plan.FlowPaths[0]) != 3 {
		t.Fatalf("path = %v, want 2 hops", plan.FlowPaths[0])
	}
	if len(plan.Links) != 2 {
		t.Fatalf("links = %v", plan.Links)
	}
	// Clean links: capacities near nominal ~6 Mb/s.
	for i, c := range plan.Capacities {
		if c < 5e6 || c > 6.5e6 {
			t.Fatalf("capacity[%d] = %.2f Mb/s", i, c/1e6)
		}
	}
	// Both chain links conflict (two-hop rule): flow rate ~ half link
	// capacity.
	y := plan.OutputRates[0]
	if y < 2.2e6 || y > 3.3e6 {
		t.Fatalf("optimized rate = %.2f Mb/s, want ~3", y/1e6)
	}
}

func TestComputeTwoFlowStarvationScenario(t *testing.T) {
	// 120 m hops only sustain 1 Mb/s, as in the paper's Fig. 13 runs.
	nw := topology.GatewayScenario(2, phy.Rate1)
	cfg := DefaultConfig(phy.Rate1)
	cfg.ProbePeriod = 50 * sim.Millisecond
	flows := []Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}

	// Proportional fairness: the 2-hop flow gets a meaningful share.
	plan := probeAndCompute(t, nw, flows, cfg)
	if plan.OutputRates[1] < 0.2*plan.OutputRates[0] {
		t.Fatalf("prop-fair rates %v starve the 2-hop flow", plan.OutputRates)
	}

	// Max throughput: all airtime goes to the 1-hop flow.
	cfg.Objective = optimize.MaxThroughput
	c2 := New(nw, flows, cfg)
	c2.ProbeFullWindow()
	plan2, err := c2.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.OutputRates[1] > 0.1*plan2.OutputRates[0] {
		t.Fatalf("max-throughput rates %v should starve the 2-hop flow", plan2.OutputRates)
	}
	if plan2.OutputRates[0] < plan.OutputRates[0] {
		t.Fatal("max-throughput gave the 1-hop flow less than prop-fair did")
	}
}

func TestLossyLinkReducesCapacityEstimate(t *testing.T) {
	nw := topology.Chain(3, 2, 70, phy.Rate11)
	nw.Medium.SetBER(0, 1, 2e-5)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 50 * sim.Millisecond
	plan := probeAndCompute(t, nw, []Flow{{Src: 0, Dst: 1}}, cfg)
	if plan.LossRates[0] < 0.02 {
		t.Fatalf("estimated loss %v on a lossy link", plan.LossRates[0])
	}
	// The sliding-minimum estimator is negatively biased on iid loss, so
	// the capacity only drops part of the way toward the Eq. 6 value.
	if plan.Capacities[0] > 5.85e6 {
		t.Fatalf("capacity %.2f Mb/s did not reflect loss", plan.Capacities[0]/1e6)
	}
	// Input rate must exceed output rate to compensate residual loss
	// only slightly (MAC retries mask most of it).
	if plan.InputRates[0] < plan.OutputRates[0] {
		t.Fatal("input rate below output rate")
	}
}

func TestApplyUDPAchievesPlannedRates(t *testing.T) {
	nw := topology.Chain(4, 3, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 50 * sim.Millisecond
	flows := []Flow{{Src: 0, Dst: 2}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	sources, sinks := c.ApplyUDP(plan)
	nw.Sim.Run(nw.Sim.Now() + 8*sim.Second)
	for _, s := range sources {
		s.Stop()
	}
	got := sinks[0].ThroughputBps(0)
	want := plan.OutputRates[0]
	if got < 0.85*want {
		t.Fatalf("achieved %.2f Mb/s of planned %.2f", got/1e6, want/1e6)
	}
}

func TestApplyTCPIsolatesFlows(t *testing.T) {
	nw := topology.GatewayScenario(5, phy.Rate1)
	cfg := DefaultConfig(phy.Rate1)
	cfg.ProbePeriod = 50 * sim.Millisecond
	flows := []Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	tcp, _ := c.ApplyTCP(plan)
	nw.Sim.Run(nw.Sim.Now() + 20*sim.Second)
	for _, f := range tcp {
		f.Stop()
	}
	// Under rate control the 2-hop flow must not starve.
	b1, b2 := tcp[0].GoodputBps(), tcp[1].GoodputBps()
	if b2 < 0.25*plan.OutputRates[1] {
		t.Fatalf("2-hop TCP got %.3f Mb/s of planned %.3f", b2/1e6, plan.OutputRates[1]/1e6)
	}
	if b1 == 0 {
		t.Fatal("1-hop flow dead")
	}
}

func TestComputeWithoutProbingFails(t *testing.T) {
	nw := topology.Chain(6, 2, 70, phy.Rate11)
	c := New(nw, []Flow{{Src: 0, Dst: 1}}, DefaultConfig(phy.Rate11))
	if _, err := c.Compute(); err == nil {
		t.Fatal("Compute without probing should fail")
	}
}

func TestUnroutableFlowFails(t *testing.T) {
	// Two disconnected pairs.
	nw := topology.New(7, phy.DefaultConfig(),
		[]phy.Position{{X: 0}, {X: 60}, {X: 5000}, {X: 5060}}, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 50 * sim.Millisecond
	c := New(nw, []Flow{{Src: 0, Dst: 3}}, cfg)
	c.ProbeFullWindow()
	if _, err := c.Compute(); err == nil {
		t.Fatal("unroutable flow should fail")
	}
}

func TestOneHopVsTwoHopConflictDensity(t *testing.T) {
	nw := topology.Chain(8, 5, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 50 * sim.Millisecond
	flows := []Flow{{Src: 0, Dst: 4}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	planTwo, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Conflicts = OneHopModel
	c2 := New(nw, flows, cfg)
	c2.ProbeFullWindow()
	planOne, err := c2.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if planOne.Graph.Edges() > planTwo.Graph.Edges() {
		t.Fatal("one-hop graph denser than two-hop")
	}
	// Fewer conflicts -> more optimistic rate.
	if planOne.OutputRates[0] < planTwo.OutputRates[0] {
		t.Fatal("one-hop model should predict at least the two-hop rate")
	}
}
