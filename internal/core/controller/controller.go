// Package controller implements the paper's online optimization loop
// (§6.1): it runs the network-layer probing system, estimates per-link
// channel loss rates and capacities (Eq. 6), derives the two-hop conflict
// graph from probe-based neighbour discovery, computes ETT routes, builds
// the feasibility region, solves the utility maximization, and converts
// optimal output rates into input rate limits. Everything it consumes is
// measurable online at the network layer — the defining property of the
// paper's approach.
package controller

import (
	"fmt"
	"math"

	"repro/internal/core/capacity"
	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
	"repro/internal/core/optimize"
	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/rate"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// Flow is an end-to-end demand.
type Flow struct {
	Src, Dst int
}

// ConflictModel selects how the controller classifies interference.
type ConflictModel int

// Conflict model choices (Fig. 12 compares TwoHop against measured LIR).
const (
	// TwoHopModel is the online model of §5.5 (default).
	TwoHopModel ConflictModel = iota
	// OneHopModel is the ablation that only conflicts adjacent links.
	OneHopModel
)

// Config tunes the controller.
type Config struct {
	DataRate     phy.Rate
	PayloadBytes int
	ProbePeriod  sim.Time
	ProbeWindow  int // S, in probes
	Objective    optimize.Objective
	Conflicts    ConflictModel
	// RetryLimit is the MAC retry limit used to turn channel loss into
	// residual network-layer loss for the x = y/(1-p) conversion.
	RetryLimit int
}

// DefaultConfig mirrors the paper's operating point: 0.5 s probing period,
// S = 200 probes (a ~100 s window), proportional fairness.
func DefaultConfig(rate phy.Rate) Config {
	return Config{
		DataRate:     rate,
		PayloadBytes: traffic.DefaultPayload,
		ProbePeriod:  probe.DefaultPeriod,
		ProbeWindow:  200,
		Objective:    optimize.ProportionalFair,
		Conflicts:    TwoHopModel,
		RetryLimit:   7,
	}
}

// Plan is the controller's output: the estimated model and the optimized
// rates.
type Plan struct {
	Links       []topology.Link
	Capacities  []float64 // Eq. 6 estimates per link (payload bits/s)
	LossRates   []float64 // combined channel loss per link
	Graph       *conflict.Graph
	Region      *feasibility.Region
	Routes      [][]int   // per-flow link indices
	FlowPaths   [][]int   // per-flow node paths
	OutputRates []float64 // optimized y_s
	InputRates  []float64 // x_s = y_s / (1 - p_s)
	PathLoss    []float64 // residual network-layer loss per flow
}

// Controller drives one optimization cycle over a simulated mesh.
type Controller struct {
	nw    *topology.Network
	flows []Flow
	cfg   Config

	probers   []*probe.Prober
	recorders []*probe.Recorder
}

// New prepares a controller; probers and recorders attach to every node.
func New(nw *topology.Network, flows []Flow, cfg Config) *Controller {
	c := &Controller{nw: nw, flows: flows, cfg: cfg}
	for _, n := range nw.Nodes {
		c.recorders = append(c.recorders, probe.NewRecorder(n))
		p := probe.NewProber(nw.Sim, n, cfg.DataRate, cfg.PayloadBytes)
		p.SetPeriod(cfg.ProbePeriod)
		c.probers = append(c.probers, p)
	}
	return c
}

// SetObjective retunes the utility objective for subsequent Compute
// calls; the probing state is reused (the model is objective-independent).
func (c *Controller) SetObjective(o optimize.Objective) { c.cfg.Objective = o }

// Probe runs the measurement phase for dur of simulated time.
func (c *Controller) Probe(dur sim.Time) {
	for _, p := range c.probers {
		p.Start()
	}
	c.nw.Sim.Run(c.nw.Sim.Now() + dur)
	for _, p := range c.probers {
		p.Stop()
	}
}

// ProbeFullWindow probes long enough to fill the configured window.
func (c *Controller) ProbeFullWindow() {
	c.Probe(sim.Time(c.cfg.ProbeWindow+5) * c.cfg.ProbePeriod)
}

// staleAfterPeriods is how many probing periods of silence mark a link
// dead for planning purposes.
const staleAfterPeriods = 20

// linkEstimates gathers per-link estimates from the probe recorders,
// discarding links whose probes have gone silent (dead links leave no
// loss marks, only silence).
func (c *Controller) linkEstimates() (links []topology.Link, est []probe.LinkEstimate) {
	now := c.nw.Sim.Now()
	maxAge := staleAfterPeriods * c.cfg.ProbePeriod
	for dst, rec := range c.recorders {
		for _, src := range rec.Senders() {
			le, ok := rec.EstimateFresh(src, c.cfg.ProbeWindow, now, maxAge)
			if !ok {
				continue
			}
			links = append(links, topology.Link{Src: src, Dst: dst})
			est = append(est, le)
		}
	}
	return links, est
}

// neighbours derives the node adjacency relation from probe reception.
func (c *Controller) neighbours(links []topology.Link) map[int][]int {
	nb := make(map[int][]int)
	seen := make(map[[2]int]bool)
	add := func(a, b int) {
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			nb[a] = append(nb[a], b)
		}
	}
	for _, l := range links {
		add(l.Src, l.Dst)
		add(l.Dst, l.Src)
	}
	return nb
}

// Compute runs estimation, routing, model construction and optimization.
// It installs the computed routes into the nodes.
func (c *Controller) Compute() (*Plan, error) {
	allLinks, allEst := c.linkEstimates()
	if len(allLinks) == 0 {
		return nil, fmt.Errorf("controller: no links observed; probe first")
	}

	// ETT routing over every observed link.
	metrics := make([]routing.LinkMetric, len(allLinks))
	for i, l := range allLinks {
		metrics[i] = routing.LinkMetric{
			Link:  l,
			PData: allEst[i].PData,
			PAck:  allEst[i].PAck,
			Rate:  c.rateFor(l),
		}
	}
	table := routing.BuildTable(len(c.nw.Nodes), metrics, c.cfg.PayloadBytes)
	table.Install(c.nw.Nodes)

	// Restrict the model to links actually used by the flows.
	estBy := make(map[topology.Link]probe.LinkEstimate, len(allLinks))
	for i, l := range allLinks {
		estBy[l] = allEst[i]
	}
	var links []topology.Link
	index := make(map[topology.Link]int)
	routes := make([][]int, len(c.flows))
	paths := make([][]int, len(c.flows))
	for s, f := range c.flows {
		pl := table.PathLinks(f.Src, f.Dst)
		if pl == nil {
			return nil, fmt.Errorf("controller: flow %d->%d unroutable", f.Src, f.Dst)
		}
		paths[s] = table.Path(f.Src, f.Dst)
		for _, l := range pl {
			li, ok := index[l]
			if !ok {
				li = len(links)
				index[l] = li
				links = append(links, l)
			}
			routes[s] = append(routes[s], li)
		}
	}

	// Capacities via Eq. 6 from estimated channel loss.
	caps := make([]float64, len(links))
	loss := make([]float64, len(links))
	for i, l := range links {
		le, ok := estBy[l]
		if !ok {
			return nil, fmt.Errorf("controller: no probe estimate for link %v", l)
		}
		loss[i] = le.Pl
		caps[i] = capacity.MaxUDP(le.Pl, c.rateFor(l), c.cfg.PayloadBytes)
	}

	// Conflict graph and region.
	var g *conflict.Graph
	switch c.cfg.Conflicts {
	case TwoHopModel:
		g = conflict.TwoHop(links, c.neighbours(allLinks))
	case OneHopModel:
		g = conflict.OneHop(links)
	default:
		return nil, fmt.Errorf("controller: unknown conflict model %d", c.cfg.Conflicts)
	}
	region := feasibility.Build(caps, g)

	// Optimize.
	y, err := optimize.Solve(&optimize.Problem{Region: region, Routes: routes}, c.cfg.Objective, optimize.Options{})
	if err != nil {
		return nil, fmt.Errorf("controller: optimize: %w", err)
	}

	// Input rates: x_s = y_s / (1 - p_s), with p_s the residual
	// network-layer path loss after MAC retries.
	xs := make([]float64, len(c.flows))
	ps := make([]float64, len(c.flows))
	for s := range c.flows {
		good := 1.0
		for _, li := range routes[s] {
			residual := math.Pow(loss[li], float64(c.cfg.RetryLimit+1))
			good *= 1 - residual
		}
		ps[s] = 1 - good
		if good <= 0 {
			xs[s] = y[s]
			continue
		}
		xs[s] = y[s] / good
	}

	return &Plan{
		Links:       links,
		Capacities:  caps,
		LossRates:   loss,
		Graph:       g,
		Region:      region,
		Routes:      routes,
		FlowPaths:   paths,
		OutputRates: y,
		InputRates:  xs,
	}, nil
}

func (c *Controller) rateFor(l topology.Link) phy.Rate {
	return c.nw.Nodes[l.Src].LinkRate(l.Dst)
}

// ApplyUDP starts CBR sources at the plan's input rates and returns them
// with a sink per flow.
func (c *Controller) ApplyUDP(plan *Plan) ([]*traffic.CBR, []*traffic.Sink) {
	sources := make([]*traffic.CBR, len(c.flows))
	sinks := make([]*traffic.Sink, len(c.flows))
	for s, f := range c.flows {
		sinks[s] = traffic.NewSink(c.nw.Sim, c.nw.Nodes[f.Dst])
		sources[s] = traffic.NewCBR(c.nw.Sim, c.nw.Nodes[f.Src], s, f.Dst,
			c.cfg.PayloadBytes, plan.InputRates[s])
		sources[s].Start()
	}
	return sources, sinks
}

// ApplyTCP starts TCP flows behind shapers at the plan's input rates,
// scaled down to leave air time for reverse ACKs (§6.2).
func (c *Controller) ApplyTCP(plan *Plan) ([]*transport.Flow, []*rate.Shaper) {
	scale := optimize.TCPAckScale(transport.HeaderBytes, transport.ACKBytes, transport.MSS)
	flows := make([]*transport.Flow, len(c.flows))
	shapers := make([]*rate.Shaper, len(c.flows))
	for s, f := range c.flows {
		sh := rate.NewShaper(c.nw.Sim, c.nw.Nodes[f.Src], plan.InputRates[s]*scale)
		fl := transport.NewFlow(c.nw.Sim, c.nw.Nodes[f.Src], c.nw.Nodes[f.Dst], s)
		fl.SetShaper(sh)
		flows[s] = fl
		shapers[s] = sh
		fl.Start()
	}
	return flows, shapers
}

// Nodes exposes the mesh nodes (for experiment wiring).
func (c *Controller) Nodes() []*node.Node { return c.nw.Nodes }
