package controller

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The paper's operating mode is periodic re-optimization at a
// few-minutes timescale. This test degrades a link between cycles and
// checks that the next cycle's plan reflects the new conditions.
func TestControllerAdaptsToLinkDegradation(t *testing.T) {
	nw := topology.Chain(13, 3, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 2, Dst: 0}}
	c := New(nw, flows, cfg)

	c.ProbeFullWindow()
	before, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}

	// The channel on hop 1->0 degrades badly.
	nw.Medium.SetBER(1, 0, 2.2e-5)

	// Next probing window sees the new conditions (the window spans
	// only fresh probes).
	c.ProbeFullWindow()
	after, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}

	var capBefore, capAfter float64
	for i, l := range before.Links {
		if l.Src == 1 && l.Dst == 0 {
			capBefore = before.Capacities[i]
		}
		_ = i
	}
	for i, l := range after.Links {
		if l.Src == 1 && l.Dst == 0 {
			capAfter = after.Capacities[i]
		}
	}
	if capBefore == 0 {
		t.Fatal("link 1->0 missing from first plan")
	}
	if capAfter == 0 {
		// Routing may have dodged the bad link entirely; the flow rate
		// must still have adapted downward (2 hops became worse either
		// way on a 3-node chain there is no detour, so this is a bug).
		t.Fatalf("link 1->0 missing from second plan: %v", after.Links)
	}
	if capAfter > 0.92*capBefore {
		t.Fatalf("capacity estimate did not degrade: %.2f -> %.2f Mb/s",
			capBefore/1e6, capAfter/1e6)
	}
	if after.OutputRates[0] >= before.OutputRates[0] {
		t.Fatalf("flow rate did not adapt: %.2f -> %.2f Mb/s",
			before.OutputRates[0]/1e6, after.OutputRates[0]/1e6)
	}
}

// A link that dies completely must drop out of the probe-derived link set
// and make dependent flows unroutable rather than silently planned.
func TestControllerLinkDeath(t *testing.T) {
	nw := topology.Chain(14, 2, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 0, Dst: 1}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	if _, err := c.Compute(); err != nil {
		t.Fatal(err)
	}
	nw.Medium.SetBER(0, 1, 1) // total loss both classes
	nw.Medium.SetBER(1, 0, 1)
	c.ProbeFullWindow()
	if _, err := c.Compute(); err == nil {
		t.Fatal("dead link still planned")
	}
}

// Two consecutive plans on stable conditions must agree closely — the
// stability the paper's Fig. 14(d) claims for the control loop itself.
func TestControllerPlanStability(t *testing.T) {
	nw := topology.Chain(15, 4, 70, phy.Rate11)
	cfg := DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 60 * sim.Millisecond
	flows := []Flow{{Src: 3, Dst: 0}, {Src: 1, Dst: 0}}
	c := New(nw, flows, cfg)
	c.ProbeFullWindow()
	a, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeFullWindow()
	b, err := c.Compute()
	if err != nil {
		t.Fatal(err)
	}
	for s := range flows {
		ra, rb := a.OutputRates[s], b.OutputRates[s]
		if rb < 0.9*ra || rb > 1.1*ra {
			t.Fatalf("flow %d plan unstable: %.2f vs %.2f Mb/s", s, ra/1e6, rb/1e6)
		}
	}
}
