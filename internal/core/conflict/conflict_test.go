package conflict

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func setsEqual(got [][]int, want [][]int) bool {
	norm := func(ss [][]int) []string {
		out := make([]string, len(ss))
		for i, s := range ss {
			sorted := append([]int(nil), s...)
			sort.Ints(sorted)
			b := make([]byte, 0, 16)
			for _, v := range sorted {
				b = append(b, byte('0'+v), ',')
			}
			out[i] = string(b)
		}
		sort.Strings(out)
		return out
	}
	g, w := norm(got), norm(want)
	if len(g) != len(w) {
		return false
	}
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

func TestMISEdgelessGraph(t *testing.T) {
	g := NewGraph(3)
	mis := g.MaximalIndependentSets()
	if !setsEqual(mis, [][]int{{0, 1, 2}}) {
		t.Fatalf("MIS of edgeless graph = %v", mis)
	}
}

func TestMISCompleteGraph(t *testing.T) {
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	mis := g.MaximalIndependentSets()
	if !setsEqual(mis, [][]int{{0}, {1}, {2}, {3}}) {
		t.Fatalf("MIS of K4 = %v", mis)
	}
}

func TestMISPathGraph(t *testing.T) {
	// Path 0-1-2-3: maximal independent sets {0,2},{0,3},{1,3}.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	mis := g.MaximalIndependentSets()
	if !setsEqual(mis, [][]int{{0, 2}, {0, 3}, {1, 3}}) {
		t.Fatalf("MIS of P4 = %v", mis)
	}
}

func TestMISCycle5(t *testing.T) {
	// C5 has exactly 5 maximal independent sets, each of size 2.
	g := NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	mis := g.MaximalIndependentSets()
	if len(mis) != 5 {
		t.Fatalf("C5 has %d MIS, want 5", len(mis))
	}
	for _, s := range mis {
		if len(s) != 2 {
			t.Fatalf("C5 MIS %v has wrong size", s)
		}
	}
}

// Every enumerated set must be independent and maximal; brute force agrees
// on small random graphs.
func TestPropertyMISCorrectOnRandomGraphs(t *testing.T) {
	f := func(seed int64, nRaw, density uint8) bool {
		n := int(nRaw%9) + 1
		rng := rand.New(rand.NewSource(seed))
		p := float64(density%90+5) / 100
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					g.AddEdge(i, j)
				}
			}
		}
		got := g.MaximalIndependentSets()
		want := bruteForceMIS(g)
		return setsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func bruteForceMIS(g *Graph) [][]int {
	n := g.N()
	independent := func(mask int) bool {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<j) != 0 && g.Interferes(i, j) {
					return false
				}
			}
		}
		return true
	}
	var out [][]int
	for mask := 1; mask < 1<<n; mask++ {
		if !independent(mask) {
			continue
		}
		maximal := true
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 && independent(mask|1<<v) {
				maximal = false
				break
			}
		}
		if maximal {
			var s []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					s = append(s, v)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

func TestFromLIRThreshold(t *testing.T) {
	lir := [][]float64{
		{1, 0.99, 0.50},
		{0.99, 1, 0.94},
		{0.50, 0.94, 1},
	}
	g := FromLIR(lir, 0.95)
	if g.Interferes(0, 1) {
		t.Fatal("LIR 0.99 must not conflict at threshold 0.95")
	}
	if !g.Interferes(0, 2) || !g.Interferes(1, 2) {
		t.Fatal("low-LIR pairs must conflict")
	}
}

func TestTwoHopSharedEndpoint(t *testing.T) {
	links := []topology.Link{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 5, Dst: 6}}
	nb := map[int][]int{0: {1}, 1: {0, 2}, 2: {1}, 5: {6}, 6: {5}}
	g := TwoHop(links, nb)
	if !g.Interferes(0, 1) {
		t.Fatal("links sharing node 1 must conflict")
	}
	if g.Interferes(0, 2) {
		t.Fatal("disjoint far links must not conflict")
	}
}

func TestTwoHopNeighbourOfNeighbour(t *testing.T) {
	// Chain 0-1-2-3-4: links (0,1) and (2,3). Node 2 is a neighbour of
	// link (0,1)'s endpoint 1, so they conflict under the two-hop rule.
	links := []topology.Link{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}}
	nb := map[int][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
	g := TwoHop(links, nb)
	if !g.Interferes(0, 1) {
		t.Fatal("(0,1) vs (2,3): two-hop rule must conflict")
	}
	if !g.Interferes(1, 2) {
		t.Fatal("adjacent links must conflict")
	}
	if g.Interferes(0, 2) {
		t.Fatal("(0,1) vs (3,4) are three hops apart: no conflict")
	}
}

func TestOneHopIsSubsetOfTwoHop(t *testing.T) {
	links := []topology.Link{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}}
	nb := map[int][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
	one := OneHop(links)
	two := TwoHop(links, nb)
	for i := 0; i < len(links); i++ {
		for j := 0; j < len(links); j++ {
			if one.Interferes(i, j) && !two.Interferes(i, j) {
				t.Fatalf("one-hop conflict (%d,%d) missing from two-hop", i, j)
			}
		}
	}
	if one.Edges() >= two.Edges() {
		t.Fatal("two-hop graph should be strictly denser on a chain")
	}
}

func TestComplementInvolution(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	cc := g.Complement().Complement()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if g.Interferes(i, j) != cc.Interferes(i, j) {
				t.Fatal("complement of complement differs")
			}
		}
	}
}

func TestLargeSparseGraphFast(t *testing.T) {
	// 60 links in 12 cliques of 5: MIS count is 5^12? No — cliques force
	// one vertex each: 5^12 would explode; use a chain of cliques fused
	// to keep it bounded. Here: independent cliques -> product. Keep it
	// small: 6 cliques of 4 -> 4^6 = 4096 sets, still fast.
	g := NewGraph(24)
	for c := 0; c < 6; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(4*c+i, 4*c+j)
			}
		}
	}
	mis := g.MaximalIndependentSets()
	if len(mis) != 4096 {
		t.Fatalf("got %d MIS, want 4^6", len(mis))
	}
}
