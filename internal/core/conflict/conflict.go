// Package conflict builds the binary pairwise interference structures of
// the paper: conflict graphs over unidirectional links, enumeration of
// their maximal independent sets (the basis of the secondary extreme
// points, §3.2), and the two interference classifiers — measured binary
// LIR (§4.2) and the online two-hop approximation (§5.5).
package conflict

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// Graph is a conflict graph: vertex i is link i, an edge means the two
// links interfere and must be scheduled mutually exclusively. Adjacency is
// kept as bitsets for fast set algebra during enumeration.
type Graph struct {
	n   int
	adj []bitset
}

// NewGraph returns an edgeless conflict graph over n links.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]bitset, n)}
	for i := range g.adj {
		g.adj[i] = newBitset(n)
	}
	return g
}

// N returns the number of links (vertices).
func (g *Graph) N() int { return g.n }

// AddEdge marks links i and j as interfering.
func (g *Graph) AddEdge(i, j int) {
	if i == j {
		return
	}
	g.adj[i].set(j)
	g.adj[j].set(i)
}

// Interferes reports whether links i and j conflict.
func (g *Graph) Interferes(i, j int) bool { return g.adj[i].has(j) }

// Degree returns the number of links conflicting with i.
func (g *Graph) Degree(i int) int { return g.adj[i].count() }

// Edges returns the number of undirected conflict edges.
func (g *Graph) Edges() int {
	total := 0
	for i := range g.adj {
		total += g.adj[i].count()
	}
	return total / 2
}

// Complement returns the graph whose edges are the non-conflicting pairs;
// cliques of the complement are independent sets of g, which is how the
// paper applies the Makino–Uno clique enumerator.
func (g *Graph) Complement() *Graph {
	c := NewGraph(g.n)
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if !g.adj[i].has(j) {
				c.AddEdge(i, j)
			}
		}
	}
	return c
}

// MaximalIndependentSets enumerates all maximal independent sets of g as
// sorted vertex lists. It runs Bron–Kerbosch with pivoting on the
// complement graph — the same cliques-of-the-complement device as the
// paper's Makino–Uno enumerator, chosen here for its compact
// implementation; the enumeration cost is output-sensitive in practice.
func (g *Graph) MaximalIndependentSets() [][]int {
	comp := g.Complement()
	var out [][]int
	r := newBitset(g.n)
	p := newBitset(g.n)
	x := newBitset(g.n)
	for i := 0; i < g.n; i++ {
		p.set(i)
	}
	comp.bronKerbosch(r, p, x, &out)
	return out
}

func (g *Graph) bronKerbosch(r, p, x bitset, out *[][]int) {
	if p.empty() && x.empty() {
		*out = append(*out, r.elements())
		return
	}
	// Pivot: vertex in P∪X with most neighbours in P.
	pivot, best := -1, -1
	pux := p.union(x)
	for _, u := range pux.elements() {
		if c := p.intersect(g.adj[u]).count(); c > best {
			best, pivot = c, u
		}
	}
	cand := p.minus(g.adj[pivot])
	for _, v := range cand.elements() {
		nr := r.clone()
		nr.set(v)
		g.bronKerbosch(nr, p.intersect(g.adj[v]), x.intersect(g.adj[v]), out)
		p.clear(v)
		x.set(v)
	}
}

// FromLIR classifies every link pair by a measured LIR value: pairs with
// LIR below threshold conflict. lir[i][j] must be symmetric; the paper's
// threshold is 0.95.
func FromLIR(lir [][]float64, threshold float64) *Graph {
	n := len(lir)
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if lir[i][j] < threshold {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TwoHop builds the online conflict graph of §5.5: a link conflicts with
// every link adjacent to its endpoints and with every link adjacent to
// their one-hop neighbours. neighbours is the node adjacency relation
// (from routing-layer topology dissemination).
func TwoHop(links []topology.Link, neighbours map[int][]int) *Graph {
	g := NewGraph(len(links))
	// hood[i] = endpoints of link i plus their one-hop neighbourhoods.
	hood := make([]map[int]bool, len(links))
	for i, l := range links {
		h := map[int]bool{l.Src: true, l.Dst: true}
		for _, nb := range neighbours[l.Src] {
			h[nb] = true
		}
		for _, nb := range neighbours[l.Dst] {
			h[nb] = true
		}
		hood[i] = h
	}
	touches := func(h map[int]bool, l topology.Link) bool {
		return h[l.Src] || h[l.Dst]
	}
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			if touches(hood[i], links[j]) || touches(hood[j], links[i]) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// OneHop is the ablation variant: links conflict only when they share an
// endpoint or touch each other's endpoints directly.
func OneHop(links []topology.Link) *Graph {
	g := NewGraph(len(links))
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			a, b := links[i], links[j]
			if a.Src == b.Src || a.Src == b.Dst || a.Dst == b.Src || a.Dst == b.Dst {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) union(o bitset) bitset {
	c := b.clone()
	for i := range c {
		c[i] |= o[i]
	}
	return c
}

func (b bitset) intersect(o bitset) bitset {
	c := b.clone()
	for i := range c {
		c[i] &= o[i]
	}
	return c
}

func (b bitset) minus(o bitset) bitset {
	c := b.clone()
	for i := range c {
		c[i] &^= o[i]
	}
	return c
}

func (b bitset) elements() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi*64+i)
			w &= w - 1
		}
	}
	return out
}

func (b bitset) String() string { return fmt.Sprint(b.elements()) }
