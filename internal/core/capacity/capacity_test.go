package capacity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phy"
)

func TestNominalGoodputMatchesKnownDCFNumbers(t *testing.T) {
	// Long-preamble 802.11b with 1470-byte UDP: ~0.915 Mb/s at 1 Mb/s
	// and ~6.0 Mb/s at 11 Mb/s (see mac package saturation tests).
	g1 := NominalGoodput(phy.Rate1, 1470)
	if g1 < 0.89e6 || g1 > 0.94e6 {
		t.Fatalf("1 Mb/s goodput = %.3f Mb/s", g1/1e6)
	}
	g11 := NominalGoodput(phy.Rate11, 1470)
	if g11 < 5.8e6 || g11 > 6.2e6 {
		t.Fatalf("11 Mb/s goodput = %.3f Mb/s", g11/1e6)
	}
}

func TestMaxUDPZeroLossEqualsNominalGoodput(t *testing.T) {
	for _, r := range []phy.Rate{phy.Rate1, phy.Rate11} {
		want := NominalGoodput(r, 1470)
		got := MaxUDP(0, r, 1470)
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("%v: MaxUDP(0) = %v, NominalGoodput = %v", r, got, want)
		}
	}
}

func TestMaxUDPMonotoneDecreasingInLoss(t *testing.T) {
	prev := math.Inf(1)
	for pl := 0.0; pl < 0.95; pl += 0.05 {
		v := MaxUDP(pl, phy.Rate11, 1470)
		if v > prev {
			t.Fatalf("MaxUDP not monotone at pl=%v: %v > %v", pl, v, prev)
		}
		prev = v
	}
}

func TestMaxUDPBoundaryCases(t *testing.T) {
	if MaxUDP(1, phy.Rate11, 1470) != 0 {
		t.Fatal("total loss must give zero capacity")
	}
	if MaxUDP(-0.1, phy.Rate11, 1470) != MaxUDP(0, phy.Rate11, 1470) {
		t.Fatal("negative loss must clamp to zero")
	}
}

func TestMaxUDPHalvesAroundHeavyLoss(t *testing.T) {
	// At 50% loss Eq. 6 predicts ~60% of nominal: ETX = 2 adds one
	// stage-1 backoff (630 us) and inflates ttx by 4/3.
	clean := MaxUDP(0, phy.Rate11, 1470)
	lossy := MaxUDP(0.5, phy.Rate11, 1470)
	if lossy > 0.65*clean {
		t.Fatalf("pl=0.5 keeps %.0f%% of capacity", 100*lossy/clean)
	}
	if lossy < 0.2*clean {
		t.Fatalf("pl=0.5 only %.0f%% of capacity (too pessimistic)", 100*lossy/clean)
	}
}

func TestCombineLossRates(t *testing.T) {
	if got := CombineLossRates(0.1, 0.2); math.Abs(got-0.28) > 1e-12 {
		t.Fatalf("combined = %v, want 0.28", got)
	}
	if CombineLossRates(0, 0) != 0 {
		t.Fatal("no loss must combine to no loss")
	}
	if CombineLossRates(1, 0) != 1 {
		t.Fatal("certain DATA loss must dominate")
	}
}

func TestMeasuredLoss(t *testing.T) {
	tr := LossTrace{false, true, false, true}
	if tr.MeasuredLoss() != 0.5 {
		t.Fatalf("loss = %v", tr.MeasuredLoss())
	}
	if (LossTrace{}).MeasuredLoss() != 0 {
		t.Fatal("empty trace must read 0")
	}
}

func mkTrace(rng *rand.Rand, s int, pch float64, bursts int, burstLen int) LossTrace {
	tr := make(LossTrace, s)
	for i := range tr {
		tr[i] = rng.Float64() < pch
	}
	for b := 0; b < bursts; b++ {
		start := rng.Intn(s - burstLen)
		for i := start; i < start+burstLen; i++ {
			tr[i] = true
		}
	}
	return tr
}

func TestEstimatorUniformLossesCase1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := mkTrace(rng, 1280, 0.10, 0, 0)
	est := EstimateChannelLoss(tr, DefaultWmin)
	if math.Abs(est.Pch-0.10) > 0.05 {
		t.Fatalf("uniform losses: pch = %v, want ~0.10", est.Pch)
	}
}

func TestEstimatorZeroLossTrace(t *testing.T) {
	tr := make(LossTrace, 1280)
	est := EstimateChannelLoss(tr, DefaultWmin)
	if est.Pch != 0 {
		t.Fatalf("clean trace: pch = %v", est.Pch)
	}
	if est.Case != CaseUniform {
		t.Fatalf("clean trace should satisfy the median criterion, got case %v", est.Case)
	}
}

func TestEstimatorFiltersCollisionBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// 5% channel loss plus heavy bursty collisions: measured p is much
	// higher; the estimator must recover something near 5%.
	tr := mkTrace(rng, 1280, 0.05, 12, 30)
	est := EstimateChannelLoss(tr, DefaultWmin)
	if est.P < 0.25 {
		t.Fatalf("test setup: measured loss %v too low to be interesting", est.P)
	}
	if est.Pch > 0.12 {
		t.Fatalf("estimator kept collision losses: pch = %v (p = %v)", est.Pch, est.P)
	}
	if est.Pch > est.P {
		t.Fatal("pch must never exceed p")
	}
}

func TestEstimatorShortTrace(t *testing.T) {
	tr := LossTrace{true, false, true}
	est := EstimateChannelLoss(tr, DefaultWmin)
	if est.Case != CaseShort {
		t.Fatalf("case = %v, want CaseShort", est.Case)
	}
}

func TestPropertyEstimatorBounds(t *testing.T) {
	f := func(seed int64, pRaw uint8, bursts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pch := float64(pRaw%60) / 100
		tr := mkTrace(rng, 640, pch, int(bursts%8), 20)
		est := EstimateChannelLoss(tr, DefaultWmin)
		return est.Pch >= 0 && est.Pch <= est.P+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorAccuracyAcrossWindowSizes(t *testing.T) {
	// RMSE should degrade gracefully as the window shrinks to 200
	// probes — the paper's Fig. 10(b) robustness claim. With iid
	// channel losses the sliding-minimum reader is negatively biased by
	// ~2 sigma of the W*-window mean, which sets these bounds.
	limits := map[int]float64{1280: 0.08, 640: 0.10, 320: 0.12, 200: 0.15}
	for _, s := range []int{1280, 640, 320, 200} {
		rng := rand.New(rand.NewSource(23))
		var se float64
		const runs = 40
		bursts := s / 300
		for i := 0; i < runs; i++ {
			pch := rng.Float64() * 0.3
			tr := mkTrace(rng, s, pch, bursts, 20)
			est := EstimateChannelLoss(tr, DefaultWmin)
			se += (est.Pch - pch) * (est.Pch - pch)
		}
		rmse := math.Sqrt(se / runs)
		if rmse > limits[s] {
			t.Fatalf("S=%d: RMSE %v too high", s, rmse)
		}
	}
}

func TestMaxCurvatureWindowInRange(t *testing.T) {
	for _, s := range []int{100, 200, 640, 1280, 5000} {
		w := maxCurvatureWindow(DefaultWmin, s)
		if w < DefaultWmin || w > s {
			t.Fatalf("S=%d: W* = %d out of range", s, w)
		}
		if w >= s/2 {
			t.Fatalf("S=%d: W* = %d should sit in the early rise", s, w)
		}
	}
}

func TestLogFitRecoversSlope(t *testing.T) {
	pchW := make([]float64, 1001)
	for w := 10; w <= 1000; w++ {
		pchW[w] = 0.03*math.Log(float64(w)) + 0.01
	}
	a, b := logFit(pchW, 10, 1000)
	if math.Abs(a-0.03) > 1e-9 || math.Abs(b-0.01) > 1e-9 {
		t.Fatalf("fit = (%v, %v)", a, b)
	}
}
