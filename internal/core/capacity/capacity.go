// Package capacity implements the paper's online capacity machinery (§5):
//
//   - the link capacity representation of Eq. 6, which expresses a link's
//     maxUDP throughput as a function of its channel loss rate through a
//     renewal model of DCF backoff and retransmission cost;
//   - the nominal (zero-loss) throughput computation after Jun et al.;
//   - the channel loss rate estimator of §5.3, which recovers the
//     channel-error component of a broadcast-probe loss trace by scanning
//     it with sliding-window minima (Eq. 7), a median criterion, and a
//     logarithmic-fit/maximum-curvature window selection rule.
package capacity

import (
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
)

// DCF backoff constants used by the Eq. 6 idle-time term, matching both
// the 802.11b specification and the simulator's MAC.
const (
	// W0 is the minimum contention window size in slots (CWmin+1).
	W0 = phy.CWMin + 1
	// Wm is the maximum contention window size in slots (CWmax+1).
	Wm = phy.CWMax + 1
	// MaxStage is the backoff stage m at which the window saturates.
	MaxStage = 5
)

// Nominal returns the zero-loss saturation UDP throughput, in bits/s of
// MAC frame content (payload+header), for a link at rate r carrying
// payloadBytes datagrams. It is the Tnom of Eq. 6, computed after Jun et
// al. as one full DCF cycle: DIFS + mean initial backoff + DATA airtime +
// SIFS + ACK airtime.
func Nominal(r phy.Rate, payloadBytes int) float64 {
	cycle := cycleTime(r, payloadBytes)
	frameBits := float64(8 * (payloadBytes + phy.MACHeaderBytes))
	return frameBits / cycle.Seconds()
}

// NominalGoodput is the payload-only counterpart of Nominal: the maxUDP
// throughput a backlogged link achieves on a clean channel.
func NominalGoodput(r phy.Rate, payloadBytes int) float64 {
	cycle := cycleTime(r, payloadBytes)
	return float64(8*payloadBytes) / cycle.Seconds()
}

func cycleTime(r phy.Rate, payloadBytes int) sim.Time {
	meanBackoff := sim.Time(float64(W0-1) / 2 * float64(phy.SlotTime))
	ack := phy.ControlAirtime(phy.ControlRate(r), phy.ACKBytes)
	return phy.DIFS + meanBackoff + phy.Airtime(r, payloadBytes) + phy.SIFS + ack
}

// MaxUDP evaluates Eq. 6: the predicted maxUDP throughput (payload bits/s)
// of a link with channel loss rate pl, at modulation r with payloadBytes
// datagrams. pl is the per-attempt frame loss probability from channel
// errors (DATA and ACK combined).
func MaxUDP(pl float64, r phy.Rate, payloadBytes int) float64 {
	if pl < 0 {
		pl = 0
	}
	if pl >= 1 {
		return 0
	}
	pBits := float64(8 * payloadBytes)
	hBits := float64(8 * phy.MACHeaderBytes)
	tnom := Nominal(r, payloadBytes)
	etx := 1 / (1 - pl)

	// ttx: transmission time inflated by the probability that all ETX
	// attempts fail (the paper's (1 - pl^ETX) factor).
	ttx := (pBits + hBits) / ((1 - math.Pow(pl, etx)) * tnom)

	// tidle: average backoff time accumulated over the retransmission
	// stages 1..floor(ETX)-1 (Eq. 6's F term), with the window frozen at
	// Wm beyond stage m.
	sigma := phy.SlotTime.Seconds()
	fsum := func(a, b int) float64 {
		total := 0.0
		for i := a; i <= b; i++ {
			w := float64(int(1)<<i) * W0
			if w > Wm {
				w = Wm
			}
			total += (w - 1) / 2
		}
		return sigma * total
	}
	var tidle float64
	fl := int(math.Floor(etx))
	if etx < MaxStage {
		tidle = fsum(1, fl-1)
	} else {
		tidle = fsum(1, MaxStage-1) + sigma*float64(fl-MaxStage)*float64(Wm-1)/2
	}

	return pBits / (tidle + ttx)
}

// CombineLossRates combines the DATA and ACK channel loss rates into the
// per-attempt loss probability of Eq. 6: pl = 1-(1-pDATA)(1-pACK).
func CombineLossRates(pData, pAck float64) float64 {
	return 1 - (1-clamp01(pData))*(1-clamp01(pAck))
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// LossTrace is a probe reception record: true marks a lost probe.
type LossTrace []bool

// MeasuredLoss returns the raw packet loss rate p over the trace,
// including both channel errors and collisions.
func (t LossTrace) MeasuredLoss() float64 {
	if len(t) == 0 {
		return 0
	}
	lost := 0
	for _, l := range t {
		if l {
			lost++
		}
	}
	return float64(lost) / float64(len(t))
}

// EstimateCase records which rule of §5.3 produced the estimate.
type EstimateCase int

// Estimator outcomes.
const (
	// CaseUniform: the sliding-minimum curve reached the measured loss
	// rate before S/2 — losses look uniform, pch = p (Fig. 9a).
	CaseUniform EstimateCase = iota
	// CaseKnee: the logarithmic-fit maximum-curvature window selected
	// the estimate (Fig. 9b).
	CaseKnee
	// CaseShort: the trace was shorter than 2*Wmin; pch = p trivially.
	CaseShort
)

// Estimate is the channel loss estimator's result.
type Estimate struct {
	Pch  float64 // estimated channel loss rate
	W    int     // window size that produced it
	Case EstimateCase
	P    float64 // measured loss rate (channel + collisions)
}

// DefaultWmin is the coarsest sliding window (10 samples, as in §5.3).
const DefaultWmin = 10

// SlidingMinCurve computes Eq. 7's p_ch^(W) for every window size W in
// [wmin, len(trace)]. The returned slice is indexed by W (entries below
// wmin are zero). Exposed for the Fig. 9 curve plots; EstimateChannelLoss
// computes the same curve internally.
func SlidingMinCurve(trace LossTrace, wmin int) []float64 {
	s := len(trace)
	if wmin < 2 {
		wmin = DefaultWmin
	}
	prefix := make([]int, s+1)
	for i, l := range trace {
		prefix[i+1] = prefix[i]
		if l {
			prefix[i+1]++
		}
	}
	pchW := make([]float64, s+1)
	for w := wmin; w <= s; w++ {
		minCount := math.MaxInt32
		for i := 0; i+w <= s; i++ {
			if c := prefix[i+w] - prefix[i]; c < minCount {
				minCount = c
			}
		}
		pchW[w] = float64(minCount) / float64(w)
	}
	return pchW
}

// EstimateChannelLoss runs the §5.3 estimator over a probe loss trace.
//
// For every window size W in [wmin, S] it computes Eq. 7's sliding-window
// minimum loss rate p_ch^(W). If the curve reaches 99% of the measured
// loss rate before W = S/2, losses are deemed uniform and pch = p.
// Otherwise the curve is fit with f(w) = a·ln(w) + b and read at the point
// of maximum curvature of the axis-normalized fit. (For a pure log curve
// that knee sits at a fixed fraction of the window — the fit's role is to
// smooth and to make the rule robust to the curve's actual shape.)
func EstimateChannelLoss(trace LossTrace, wmin int) Estimate {
	s := len(trace)
	p := trace.MeasuredLoss()
	if wmin < 2 {
		wmin = DefaultWmin
	}
	if s < 2*wmin {
		return Estimate{Pch: p, W: s, Case: CaseShort, P: p}
	}
	pchW := SlidingMinCurve(trace, wmin)

	// Case 1: median criterion.
	for w := wmin; w <= s/2; w++ {
		if pchW[w] >= 0.99*p {
			return Estimate{Pch: p, W: w, Case: CaseUniform, P: p}
		}
	}

	// Case 2: fit f(w) = a·ln(w) + b and read the measured curve at the
	// maximum-curvature window W* of the normalized fit. For an exact
	// log curve that knee is independent of the fitted slope (see
	// maxCurvatureWindow); the fit's slope still certifies that the
	// curve is log-shaped rather than flat.
	a, _ := logFit(pchW, wmin, s)
	wStar := maxCurvatureWindow(wmin, s)
	if a <= 0 {
		// Flat or decreasing curve: no knee; the coarse minimum is the
		// best burst-free segment available.
		wStar = s / 2
	}
	return Estimate{Pch: pchW[wStar], W: wStar, Case: CaseKnee, P: p}
}

// logFit least-squares fits y = a ln w + b over w in [wmin, s].
func logFit(pchW []float64, wmin, s int) (a, b float64) {
	var n, sx, sy, sxx, sxy float64
	for w := wmin; w <= s; w++ {
		x := math.Log(float64(w))
		y := pchW[w]
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	return a, b
}

// maxCurvatureWindow returns the window size w maximizing the curvature
// of the axis-normalized log curve over [wmin, s]. With x = (w-wmin)/L and
// y scaled to [0,1], the curvature of y ∝ ln(w) peaks at
// w = L/(√2·ln(s/wmin)) with L = s - wmin, independent of the fitted
// slope.
func maxCurvatureWindow(wmin, s int) int {
	l := float64(s - wmin)
	r := l / math.Log(float64(s)/float64(wmin))
	w := r / math.Sqrt2
	wi := int(w)
	if wi < wmin {
		wi = wmin
	}
	if wi > s {
		wi = s
	}
	return wi
}
