// Package core groups the paper's primary contribution, one subpackage
// per element of the technique:
//
//   - feasibility: the convex feasible-rates region model (§3)
//   - conflict:    binary pairwise interference structures (§3.2, §4.2, §5.5)
//   - capacity:    Eq. 6 link capacities and the channel-loss estimator (§5)
//   - optimize:    alpha-fair utility maximization over the region (§6.1)
//   - controller:  the online probe->estimate->model->optimize->shape loop (§6)
//
// The substrates these build on (PHY/MAC simulator, network layer,
// traffic, transport, routing, probing) live in the sibling packages
// under internal/.
package core
