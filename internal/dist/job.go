// Package dist is the distributed shard coordinator: it takes an
// experiment (or scenario sweep), a shard count and a pool of worker
// slots — local `meshopt work` subprocesses by default, or any command
// template (ssh, kubectl exec, ...) speaking the same stdio protocol —
// dispatches one residue class per slot, consumes each worker's shard
// JSONL as a live stream, and merges records in global cell order while
// late shards are still running (exp.Merger).
//
// Completed shards checkpoint to a run directory: a run.json manifest
// pins the job, and each shard_<i>.jsonl ends in a '#done' completion
// marker carrying the record count and a SHA-256 of the record bytes.
// On restart the coordinator validates existing shard files against
// their markers and re-dispatches only the missing or incomplete
// residue classes; a failed or killed worker is retried on another slot
// with bounded backoff. The merged output is byte-identical to an
// unsharded `meshopt fig` run for any slot count, shard count, failure
// schedule or resume point — the engine's determinism contract is what
// makes retry-and-resume sound: a re-run shard reproduces its stream
// bit for bit, so a retry's already-merged prefix is verified by hash
// and skipped rather than re-merged.
package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments/exp"
	"repro/internal/scenario"
)

// Job names one shardable run. Everything a worker needs to reproduce
// its residue class rides in the Job — names resolve against the
// registries compiled into the binary, and file-based scenario specs
// travel inline as Spec so a remote worker never needs the file.
type Job struct {
	// Experiment is the registry name (fig3..fig14, netvalid,
	// exhaustive, an alias) or a registered scenario name.
	Experiment string `json:"experiment"`
	// Spec is an inline scenario spec; when set it overrides the name
	// lookup (the name is then informational).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seed is the run seed.
	Seed int64 `json:"seed"`
	// Scale is the scale name ("quick" or "paper"); passing scales by
	// name keeps both sides of a dispatch constructing identical Scale
	// structs.
	Scale string `json:"scale"`
	// Shards is the residue-class count k.
	Shards int `json:"shards"`
}

// Resolve maps the job to its experiment and scale. Both the
// coordinator and every worker resolve the same Job, so the cell
// enumeration — a pure function of (seed, scale) — is identical on
// every process.
func (j Job) Resolve() (exp.Experiment, exp.Scale, error) {
	sc, ok := exp.NamedScale(j.Scale)
	if !ok {
		return nil, exp.Scale{}, fmt.Errorf("dist: unknown scale %q (want quick or paper)", j.Scale)
	}
	if len(j.Spec) > 0 {
		spec, err := scenario.Parse(j.Spec)
		if err != nil {
			return nil, exp.Scale{}, err
		}
		e, err := scenario.Experiment(spec)
		if err != nil {
			return nil, exp.Scale{}, err
		}
		return e, sc, nil
	}
	if e, ok := exp.Find(j.Experiment); ok {
		return e, sc, nil
	}
	if spec, ok := scenario.Lookup(j.Experiment); ok {
		e, err := scenario.Experiment(spec)
		if err != nil {
			return nil, exp.Scale{}, err
		}
		return e, sc, nil
	}
	return nil, exp.Scale{}, fmt.Errorf("dist: %q is neither a registered experiment nor a scenario", j.Experiment)
}

// manifestVersion guards run-directory layout changes.
const manifestVersion = 1

// manifest is the run.json file pinning a run directory to its job.
type manifest struct {
	Version int    `json:"version"`
	Job     Job    `json:"job"`
	Cells   int    `json:"cells"`
	Created string `json:"created,omitempty"`
}

// ReadRunManifest reads a run directory's run.json and returns the job
// it pins and its cell-enumeration size. It is how other subsystems
// identify a coordinator run directory's contents — e.g. the serve
// cache imports a finished rundir's merged.jsonl as a cache entry keyed
// by this job.
func ReadRunManifest(dir string) (Job, int, error) {
	path := filepath.Join(dir, "run.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return Job{}, 0, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Job{}, 0, fmt.Errorf("dist: %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return Job{}, 0, fmt.Errorf("dist: %s: manifest version %d, this binary reads %d", path, m.Version, manifestVersion)
	}
	return m.Job, m.Cells, nil
}

// loadOrWriteManifest validates the run directory against the job: a
// fresh directory gets a manifest, a resumed one must match it (a seed
// or scale mismatch would merge incompatible shard streams).
func loadOrWriteManifest(path string, job Job, cells int, created string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		m := manifest{Version: manifestVersion, Job: job, Cells: cells, Created: created}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var have manifest
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	if have.Version != manifestVersion {
		return fmt.Errorf("dist: %s: manifest version %d, this binary writes %d", path, have.Version, manifestVersion)
	}
	want := manifest{Version: manifestVersion, Job: job, Cells: cells}
	haveKey, _ := json.Marshal(manifest{Version: have.Version, Job: have.Job, Cells: have.Cells})
	wantKey, _ := json.Marshal(want)
	if string(haveKey) != string(wantKey) {
		return fmt.Errorf("dist: %s: run directory belongs to a different job\n  have: %s\n  want: %s",
			path, haveKey, wantKey)
	}
	return nil
}
