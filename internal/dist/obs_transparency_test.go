package dist

import (
	"bytes"
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestCoordMergedBytesUnchangedByObservability pins the out-of-band
// contract at the coordinator layer: a full dispatch/merge run with
// metrics enabled and a debug-level structured logger attached must
// produce merged.jsonl byte-identical to a run with metrics disabled
// and logging discarded.
func TestCoordMergedBytesUnchangedByObservability(t *testing.T) {
	t.Cleanup(func() { obs.Default.SetEnabled(true) })
	run := func(enable bool, logger *slog.Logger) []byte {
		t.Helper()
		obs.Default.SetEnabled(enable)
		dir := t.TempDir()
		o := Options{Slots: 2, Spawner: &testSpawner{}, Logger: logger}
		if _, err := Run(context.Background(), toyJob(3), dir, o); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var events bytes.Buffer
	on := run(true, obs.NewLogger(&events, slog.LevelDebug, "json"))
	off := run(false, obs.Discard())
	if len(on) == 0 {
		t.Fatal("coordinator merged no records")
	}
	if !bytes.Equal(on, off) {
		t.Fatalf("merged bytes differ between obs-on and obs-off runs:\non:\n%s\noff:\n%s", on, off)
	}
	// The on-arm must actually have observed something, or the test is
	// vacuous: debug level logs every dispatch.
	if !bytes.Contains(events.Bytes(), []byte(`"msg":"dispatch"`)) {
		t.Fatalf("debug logger captured no dispatch events:\n%s", events.Bytes())
	}
}
