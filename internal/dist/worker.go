package dist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"repro/internal/dist/fault"
	"repro/internal/experiments/exp"
	"repro/internal/obs"
	"repro/internal/scenario/sink"
)

// The stdio worker protocol. A worker is long-lived: one `meshopt work`
// process serves any number of shard requests over its lifetime, which
// amortizes per-process startup and lets package-level caches (topology
// construction, fig10's shared probe phase) warm once per worker instead
// of once per attempt.
//
// On startup — and again after completing each request — the worker
// writes the idle heartbeat line
//
//	#ready
//
// to stdout, telling the coordinator it may dispatch. The coordinator
// then writes one request line to stdin; the worker streams that shard's
// record lines to stdout — plain JSONL, byte-identical to a
// `meshopt fig -shard i/k` run — terminated by exactly one control line:
//
//	#done records=<n> sha256=<hex>     success: n record lines whose
//	                                   bytes (newlines included) hash
//	                                   to the given SHA-256
//	#error <message>                   failure (the stream before it is
//	                                   a valid, verifiable prefix)
//
// After #done the worker writes #ready and waits for the next request;
// EOF on stdin is the clean shutdown signal. Record lines are flushed
// per record, so the coordinator's merge frontier (and its stall
// detector, which drives work stealing) observes progress live.
//
// Control lines start with '#', which no record line can (records are
// JSON objects), so the framing never needs escaping. A stream that
// ends without a control line means the worker died; the coordinator
// treats it like #error. Per-attempt deadlines are enforced on the
// coordinator side by killing the worker process — a wedged worker is
// indistinguishable from a dead one, and both are retried the same way.

// workRequest is the one line the coordinator sends per dispatch.
type workRequest struct {
	Job   Job       `json:"job"`
	Shard exp.Shard `json:"shard"`
	// Attempt is the 1-based dispatch ordinal for this shard, carried so
	// fault schedules (x<attempts> limits, seed-derived cut points) see
	// the same attempt numbering the coordinator does.
	Attempt int `json:"attempt,omitempty"`
	// FromCell, when positive, restricts the shard to cells with
	// Index >= FromCell — the steal suffix-dispatch path: a thief
	// resumes a stolen shard at its merge frontier instead of
	// re-streaming the whole residue class from cell 0.
	FromCell int `json:"from_cell,omitempty"`
}

// ReadyMarker is the idle heartbeat a worker emits on startup and after
// every completed request: the coordinator's dispatch handshake.
const ReadyMarker = "#ready"

// DonePrefix starts the '#done records=N sha256=H' completion marker
// terminating every checkpointed record stream. The marker makes the
// artifact self-validating, so the format is shared beyond the worker
// protocol: coordinator shard checkpoints, serve cache entries, and any
// other subsystem that wants crash-safe record files all reuse it.
const DonePrefix = "#done "

const errorPrefix = "#error "

// DoneMarker formats the completion marker for a stream of `records`
// record lines whose bytes (newlines included) hash to sum.
func DoneMarker(records int, sum []byte) string {
	return fmt.Sprintf("%srecords=%d sha256=%x", DonePrefix, records, sum)
}

// ParseDoneMarker extracts (records, sha256) from a completion marker
// line.
func ParseDoneMarker(line string) (records int, sum string, err error) {
	rest := strings.TrimPrefix(line, DonePrefix)
	if _, err := fmt.Sscanf(rest, "records=%d sha256=%s", &records, &sum); err != nil {
		return 0, "", fmt.Errorf("dist: malformed completion marker %q", line)
	}
	return records, sum, nil
}

// shardSink streams records as hashed, counted JSONL lines, flushed per
// record so the coordinator observes progress live, applying any armed
// fault injector at each record boundary.
type shardSink struct {
	jsonl *sink.JSONL
	n     int
	inj   *fault.Injector
}

func (s *shardSink) Write(rec sink.Record) error {
	if err := s.inj.BeforeRecord(s.n); err != nil {
		// Flush the prefix so the coordinator sees a cleanly cut stream,
		// then die like a killed process would: no marker.
		s.jsonl.Close()
		return err
	}
	if err := s.jsonl.Write(rec); err != nil {
		return err
	}
	s.n++
	return s.jsonl.Flush()
}

func (s *shardSink) Close() error { return s.jsonl.Close() }

// corruptWriter flips the first byte of scheduled record lines on their
// way out — after hashing, so the stream's declared hash stays clean and
// the receiver must catch the damage (a flipped first byte breaks JSON
// decoding, which the coordinator treats as a failed attempt; the
// corrupted line is never merged or checkpointed).
type corruptWriter struct {
	w    io.Writer
	inj  *fault.Injector
	line int
	bol  bool // next byte starts a line
}

func (c *corruptWriter) Write(p []byte) (int, error) {
	buf := p
	copied := false
	for i := range p {
		if c.bol {
			if c.inj.Corrupts(c.line) {
				if !copied {
					buf = append([]byte(nil), p...)
					copied = true
				}
				buf[i] ^= 0x01
			}
			c.bol = false
		}
		if p[i] == '\n' {
			c.line++
			c.bol = true
		}
	}
	if _, err := c.w.Write(buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ServeWork runs the worker side of the stdio protocol on (in, out),
// serving shard requests until in reaches EOF. The fault schedule is
// read from the environment (MESHOPT_FAULT, or the legacy
// MESHOPT_WORK_FAIL kill hook). cmd/meshopt's `work` subcommand is a
// direct wrapper.
func ServeWork(in io.Reader, out io.Writer) error {
	return ServeWorkLogged(in, out, nil)
}

// ServeWorkLogged is ServeWork with a structured event logger (request
// received / request complete, with job/shard/attempt/cell fields).
// The logger must write somewhere other than out — protocol stream and
// log stream are strictly separate. Nil discards.
func ServeWorkLogged(in io.Reader, out io.Writer, logger *slog.Logger) error {
	sched, err := fault.FromEnv()
	if err != nil {
		return fmt.Errorf("dist: work: %w", err)
	}
	return serveWorkOn(in, out, sched, nil, logger)
}

// ServeWorkOn is ServeWork with an explicit fault schedule and hang
// release channel — the entry point for in-process workers (tests, the
// serve layer's pipe spawner). Closing release unblocks any hanging
// injected fault, standing in for the process kill a subprocess worker
// would receive.
func ServeWorkOn(in io.Reader, out io.Writer, sched *fault.Schedule, release <-chan struct{}) error {
	return serveWorkOn(in, out, sched, release, nil)
}

func serveWorkOn(in io.Reader, out io.Writer, sched *fault.Schedule, release <-chan struct{}, logger *slog.Logger) error {
	if logger == nil {
		logger = obs.Discard()
	}
	br := bufio.NewReader(in)
	if _, err := fmt.Fprintln(out, ReadyMarker); err != nil {
		return fmt.Errorf("dist: work: writing ready: %w", err)
	}
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) == 0 {
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil // clean shutdown: coordinator closed stdin
				}
				return fmt.Errorf("dist: work: reading request: %w", err)
			}
			continue
		}
		var req workRequest
		if err := json.Unmarshal(line, &req); err != nil {
			return fmt.Errorf("dist: work: bad request: %w", err)
		}
		logger.Info("shard request",
			"experiment", req.Job.Experiment, "seed", req.Job.Seed,
			"shard", req.Shard.Index, "shards", req.Shard.Count,
			"attempt", req.Attempt, "from_cell", req.FromCell)
		if err := serveShard(req, out, sched, release); err != nil {
			// Injected kills and I/O failures end the worker like a
			// crash would: the coordinator respawns a fresh process.
			logger.Error("shard request failed",
				"shard", req.Shard.Index, "shards", req.Shard.Count, "attempt", req.Attempt, "err", err)
			return err
		}
		logger.Info("shard request complete", "shard", req.Shard.Index, "shards", req.Shard.Count)
		if _, err := fmt.Fprintln(out, ReadyMarker); err != nil {
			return fmt.Errorf("dist: work: writing ready: %w", err)
		}
	}
}

func serveShard(req workRequest, out io.Writer, sched *fault.Schedule, release <-chan struct{}) error {
	fail := func(err error) error {
		fmt.Fprintf(out, "%s%v\n", errorPrefix, err)
		return err
	}
	e, sc, err := req.Job.Resolve()
	if err != nil {
		return fail(err)
	}
	if req.Shard.Count != req.Job.Shards || !req.Shard.Enabled() {
		return fail(fmt.Errorf("dist: work: shard %s does not match job shard count %d", req.Shard, req.Job.Shards))
	}
	attempt := req.Attempt
	if attempt < 1 {
		attempt = 1
	}
	inj := sched.For(req.Shard.Index, attempt, release)

	h := sha256.New()
	var lineW io.Writer = out
	if inj != nil {
		lineW = &corruptWriter{w: out, inj: inj, bol: true}
	}
	// The hash writer comes first so it always sees the clean bytes;
	// corruption (if scheduled) happens on the transport copy only.
	snk := &shardSink{jsonl: sink.NewJSONL(io.MultiWriter(h, lineW)), inj: inj}
	_, runErr := exp.Run(e, req.Job.Seed, sc, exp.Options{Sink: snk, Shard: req.Shard, FromCell: req.FromCell})
	if runErr == nil {
		runErr = snk.Close()
	}
	if errors.Is(runErr, fault.ErrInjected) {
		// A simulated kill: the stream is already cut; no marker at all.
		return runErr
	}
	if runErr != nil {
		return fail(runErr)
	}
	_, err = fmt.Fprintf(out, "%s\n", DoneMarker(snk.n, h.Sum(nil)))
	return err
}
