package dist

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
)

// The stdio worker protocol. The coordinator writes one request line to
// the worker's stdin; the worker streams its shard's record lines to
// stdout — plain JSONL, byte-identical to a `meshopt fig -shard i/k`
// run — terminated by exactly one control line:
//
//	#done records=<n> sha256=<hex>     success: n record lines whose
//	                                   bytes (newlines included) hash
//	                                   to the given SHA-256
//	#error <message>                   failure (the stream before it is
//	                                   a valid, verifiable prefix)
//
// Control lines start with '#', which no record line can (records are
// JSON objects), so the framing never needs escaping. A stream that
// ends without a control line means the worker died; the coordinator
// treats it like #error.

// workRequest is the one line the coordinator sends a worker.
type workRequest struct {
	Job   Job       `json:"job"`
	Shard exp.Shard `json:"shard"`
}

// DonePrefix starts the '#done records=N sha256=H' completion marker
// terminating every checkpointed record stream. The marker makes the
// artifact self-validating, so the format is shared beyond the worker
// protocol: coordinator shard checkpoints, serve cache entries, and any
// other subsystem that wants crash-safe record files all reuse it.
const DonePrefix = "#done "

const errorPrefix = "#error "

// DoneMarker formats the completion marker for a stream of `records`
// record lines whose bytes (newlines included) hash to sum.
func DoneMarker(records int, sum []byte) string {
	return fmt.Sprintf("%srecords=%d sha256=%x", DonePrefix, records, sum)
}

// ParseDoneMarker extracts (records, sha256) from a completion marker
// line.
func ParseDoneMarker(line string) (records int, sum string, err error) {
	rest := strings.TrimPrefix(line, DonePrefix)
	if _, err := fmt.Sscanf(rest, "records=%d sha256=%s", &records, &sum); err != nil {
		return 0, "", fmt.Errorf("dist: malformed completion marker %q", line)
	}
	return records, sum, nil
}

// faultSpec is the MESHOPT_WORK_FAIL test hook: "<shard>@<records>"
// makes a worker serving that shard die (stream cut, no marker, exit
// nonzero) after emitting that many records. It exists so CI and the
// fault tests can kill a worker mid-stream deterministically; it is not
// part of the protocol.
type faultSpec struct {
	shard, after int
}

func parseFault(env string) *faultSpec {
	parts := strings.SplitN(env, "@", 2)
	if len(parts) != 2 {
		return nil
	}
	shard, err1 := strconv.Atoi(parts[0])
	after, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return nil
	}
	return &faultSpec{shard: shard, after: after}
}

// errInjected marks a MESHOPT_WORK_FAIL kill.
var errInjected = errors.New("dist: injected worker fault (MESHOPT_WORK_FAIL)")

// shardSink streams records as hashed, counted JSONL lines, dying at
// the injected fault point if one is armed.
type shardSink struct {
	jsonl *sink.JSONL
	n     int
	fault *faultSpec
}

func (s *shardSink) Write(rec sink.Record) error {
	if s.fault != nil && s.n >= s.fault.after {
		// Flush the prefix so the coordinator sees a cleanly cut stream,
		// then die like a killed process would: no marker.
		s.jsonl.Close()
		return errInjected
	}
	if err := s.jsonl.Write(rec); err != nil {
		return err
	}
	s.n++
	return nil
}

func (s *shardSink) Close() error { return s.jsonl.Close() }

// ServeWork handles one shard dispatch on (in, out): read the request
// line, run the residue class, stream its records, emit the completion
// marker. cmd/meshopt's `work` subcommand is a direct wrapper; the
// in-process test spawner calls it over pipes.
func ServeWork(in io.Reader, out io.Writer) error {
	br := bufio.NewReader(in)
	line, err := br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return fmt.Errorf("dist: work: reading request: %w", err)
	}
	var req workRequest
	if err := json.Unmarshal(line, &req); err != nil {
		return fmt.Errorf("dist: work: bad request: %w", err)
	}
	return serveShard(req, out)
}

func serveShard(req workRequest, out io.Writer) error {
	bw := bufio.NewWriter(out)
	fail := func(err error) error {
		fmt.Fprintf(bw, "%s%v\n", errorPrefix, err)
		bw.Flush()
		return err
	}
	e, sc, err := req.Job.Resolve()
	if err != nil {
		return fail(err)
	}
	if req.Shard.Count != req.Job.Shards || !req.Shard.Enabled() {
		return fail(fmt.Errorf("dist: work: shard %s does not match job shard count %d", req.Shard, req.Job.Shards))
	}

	h := sha256.New()
	snk := &shardSink{jsonl: sink.NewJSONL(io.MultiWriter(bw, h))}
	if f := parseFault(os.Getenv("MESHOPT_WORK_FAIL")); f != nil && f.shard == req.Shard.Index {
		snk.fault = f
	}
	_, runErr := exp.Run(e, req.Job.Seed, sc, exp.Options{Sink: snk, Shard: req.Shard})
	if runErr == nil {
		runErr = snk.Close()
	}
	if errors.Is(runErr, errInjected) {
		// A simulated kill: the stream is already cut; no marker at all.
		bw.Flush()
		return runErr
	}
	if runErr != nil {
		return fail(runErr)
	}
	fmt.Fprintf(bw, "%s\n", DoneMarker(snk.n, h.Sum(nil)))
	return bw.Flush()
}
