package dist

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
)

// Options tunes a coordinator run.
type Options struct {
	// Slots is the number of concurrent workers; 0 means
	// min(shards, GOMAXPROCS).
	Slots int
	// MaxAttempts bounds how often one shard is dispatched before the
	// run gives up (default 3). Exhausting it fails the run but leaves
	// every completed shard checkpointed for a resume.
	MaxAttempts int
	// Backoff is the base retry delay (default 200ms); attempt n waits
	// n×Backoff, capped at 5×Backoff.
	Backoff time.Duration
	// AttemptTimeout bounds one shard dispatch; 0 means no bound. Set
	// it for remote pools where a wedged transport would otherwise hold
	// its slot forever (the hang is then killed and retried like any
	// other worker failure).
	AttemptTimeout time.Duration
	// Spawner launches workers; nil uses SelfSpawner (local `work`
	// subprocesses of this binary).
	Spawner Spawner
	// Log receives human-readable progress; nil discards it.
	Log io.Writer
	// Stream, when set, receives a live copy of the merged record stream
	// — the same bytes written to dir/merged.jsonl — flushed at cell
	// granularity so a consumer (the serve layer's record endpoint, a
	// progress UI) can tail the run while late shards are still working.
	Stream io.Writer
	// Progress, when set, observes merge progress after every record
	// push and shard completion. It is called under the coordinator's
	// merge lock: keep it fast and non-blocking (throttle on the caller
	// side if rendering is expensive).
	Progress func(Progress)

	// onShardDone, when set, observes each shard checkpoint as it is
	// finalized (fault tests use it to cancel mid-run).
	onShardDone func(shard int)
}

// Progress is one merge-progress observation: how far the global cell
// frontier has advanced (exp.Merger.Frontier) and how many shards have
// checkpointed, including shards reused from a previous run.
type Progress struct {
	MergedCells int // cells fully merged (the frontier)
	Cells       int // total cells in the enumeration
	ShardsDone  int // shards checkpointed (reused + completed this run)
	Shards      int // total shard count
}

// Report summarizes a coordinator run.
type Report struct {
	Cells    int   // cell-enumeration size
	Reused   []int // shards restored from valid checkpoints
	Ran      []int // shards dispatched this run
	Attempts []int // per-shard dispatch counts this run
	Result   exp.Result
}

// fatalError marks a failure no retry can fix (a determinism violation:
// a retried worker reproduced different bytes than its predecessor).
type fatalError struct{ error }

func (e fatalError) Unwrap() error { return e.error }

// Run executes (or resumes) a sharded experiment run in dir. It
// validates the manifest and any checkpointed shards, dispatches the
// missing residue classes over the worker slots, live-merges every
// shard stream in cell order into dir/merged.jsonl, and returns the
// reduction. The merged bytes are byte-identical to an unsharded run of
// the same job.
func Run(ctx context.Context, job Job, dir string, o Options) (*Report, error) {
	if job.Shards < 1 {
		return nil, fmt.Errorf("dist: need at least 1 shard (got %d)", job.Shards)
	}
	e, sc, err := job.Resolve()
	if err != nil {
		return nil, err
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.Slots <= 0 {
		o.Slots = min(job.Shards, runtime.GOMAXPROCS(0))
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	if o.Spawner == nil {
		if o.Spawner, err = SelfSpawner(os.Stderr); err != nil {
			return nil, err
		}
	}

	cells := len(e.Cells(job.Seed, sc))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	created := time.Now().UTC().Format(time.RFC3339)
	if err := loadOrWriteManifest(filepath.Join(dir, "run.json"), job, cells, created); err != nil {
		return nil, err
	}

	rep := &Report{Cells: cells, Attempts: make([]int, job.Shards)}
	var pending []int
	for i := 0; i < job.Shards; i++ {
		if n, _, ok := ValidateRecordsFile(shardPath(dir, i)); ok {
			fmt.Fprintf(o.Log, "shard %d/%d: reusing checkpoint (%d records)\n", i, job.Shards, n)
			rep.Reused = append(rep.Reused, i)
		} else {
			pending = append(pending, i)
		}
	}
	rep.Ran = append(rep.Ran, pending...)

	mergedPart := filepath.Join(dir, "merged.jsonl.part")
	mergedF, err := os.Create(mergedPart)
	if err != nil {
		return nil, err
	}
	defer mergedF.Close()

	var mergedOut io.Writer = mergedF
	if o.Stream != nil {
		mergedOut = io.MultiWriter(mergedF, o.Stream)
	}
	merger := exp.NewMerger(mergedOut, job.Shards, e)
	if o.Stream != nil {
		merger.AutoFlush(true)
	}
	r := &run{
		job:        job,
		dir:        dir,
		o:          o,
		cells:      cells,
		merger:     merger,
		states:     make([]*shardState, job.Shards),
		replays:    make(map[int]*replayCursor),
		shardsDone: len(rep.Reused),
	}
	for i := range r.states {
		r.states[i] = &shardState{h: sha256.New()}
	}
	defer r.merger.Abort() // no-op after a successful Finish
	defer r.closeReplays()

	// Checkpointed shards replay lazily: each file is opened as a
	// cursor and read only as the merge frontier demands its cells, so
	// a resume keeps checkpointed data on disk instead of buffering
	// whole shards in the merger's queues.
	for _, i := range rep.Reused {
		f, err := os.Open(shardPath(dir, i))
		if err != nil {
			return nil, err
		}
		r.replays[i] = &replayCursor{f: f, sc: sink.NewLineScanner(f)}
	}
	r.mu.Lock()
	err = r.pump()
	r.report()
	r.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("dist: replaying checkpointed shards: %w", err)
	}

	// Dispatch the missing shards over the worker slots; each shard's
	// goroutine owns all of that shard's attempts, so a shard's stream
	// state is never touched concurrently.
	slots := make(chan int, o.Slots)
	for s := 0; s < o.Slots; s++ {
		slots <- s
	}
	var (
		wg       sync.WaitGroup
		failMu   sync.Mutex
		failures []error
	)
	fail := func(err error) {
		failMu.Lock()
		failures = append(failures, err)
		failMu.Unlock()
	}
	for _, shard := range pending {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var lastErr error
			for attempt := 1; attempt <= o.MaxAttempts; attempt++ {
				var slot int
				select {
				case slot = <-slots:
				case <-ctx.Done():
					fail(fmt.Errorf("shard %d/%d: %w", shard, job.Shards, ctx.Err()))
					return
				}
				rep.Attempts[shard]++
				err := r.attempt(ctx, shard, slot)
				slots <- slot
				if err == nil {
					return
				}
				lastErr = err
				fmt.Fprintf(o.Log, "shard %d/%d attempt %d failed: %v\n", shard, job.Shards, attempt, err)
				var fe fatalError
				if ctx.Err() != nil || errors.As(err, &fe) {
					break
				}
				if attempt < o.MaxAttempts {
					d := min(time.Duration(attempt)*o.Backoff, 5*o.Backoff)
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
				}
			}
			fail(fmt.Errorf("shard %d/%d failed after %d attempt(s): %w", shard, job.Shards, rep.Attempts[shard], lastErr))
		}(shard)
	}
	wg.Wait()

	if len(failures) > 0 {
		return rep, fmt.Errorf("dist: run incomplete (completed shards stay checkpointed in %s; rerun with the same directory to resume): %w",
			dir, errors.Join(failures...))
	}

	res, err := r.finishMerge(cells)
	if err != nil {
		return rep, err
	}
	if err := mergedF.Sync(); err != nil {
		return rep, err
	}
	if err := os.Rename(mergedPart, filepath.Join(dir, "merged.jsonl")); err != nil {
		return rep, err
	}
	rep.Result = res
	return rep, nil
}

// run is the shared state of one coordinator invocation.
type run struct {
	job        Job
	dir        string
	o          Options
	cells      int
	mu         sync.Mutex // serializes merger + replay access across shard goroutines
	merger     *exp.Merger
	states     []*shardState
	replays    map[int]*replayCursor
	shardsDone int // checkpointed shards (reused + completed this run)
}

// report publishes a progress observation. Called with r.mu held.
func (r *run) report() {
	if r.o.Progress == nil {
		return
	}
	r.o.Progress(Progress{
		MergedCells: r.merger.Frontier(),
		Cells:       r.cells,
		ShardsDone:  r.shardsDone,
		Shards:      r.job.Shards,
	})
}

// replayCursor reads a checkpointed shard file on demand.
type replayCursor struct {
	f  *os.File
	sc *bufio.Scanner
}

// push forwards a live worker line, then feeds any checkpointed shards
// the frontier advanced into.
func (r *run) push(shard int, line []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.merger.Push(shard, line); err != nil {
		return err
	}
	err := r.pump()
	r.report()
	return err
}

// closeShard marks a live shard complete, then pumps the replays.
func (r *run) closeShard(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardsDone++
	if err := r.merger.CloseShard(shard); err != nil {
		return err
	}
	err := r.pump()
	r.report()
	return err
}

// pump feeds checkpointed shard files into the merger for as long as
// the frontier cell belongs to one of them: the cursor's next lines are
// exactly the frontier's records, so the merger queues stay near-empty
// for replayed shards. Called with r.mu held.
func (r *run) pump() error {
	for {
		j := r.merger.Frontier() % r.job.Shards
		cur, ok := r.replays[j]
		if !ok {
			return nil // frontier owned by a live (or finished) shard
		}
		if cur.sc.Scan() {
			if err := r.merger.Push(j, cur.sc.Bytes()); err != nil {
				return err
			}
			continue
		}
		err := cur.sc.Err()
		cur.f.Close()
		delete(r.replays, j)
		if err != nil {
			return err
		}
		if err := r.merger.CloseShard(j); err != nil {
			return err
		}
	}
}

func (r *run) closeReplays() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cur := range r.replays {
		cur.f.Close()
	}
	r.replays = nil
}

// shardState tracks how much of a shard's deterministic stream has been
// merged, across that shard's attempts: a retry re-produces the same
// bytes, so its first pushed lines are verified against the running
// hash and skipped instead of re-merged.
type shardState struct {
	pushed int
	h      hash.Hash // sha256 over the pushed lines ('\n' included)
}

func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%d.jsonl", shard))
}

// attempt runs one worker for one shard: stream its records into the
// checkpoint file and the live merger, verify the completion marker,
// and finalize the checkpoint atomically.
func (r *run) attempt(ctx context.Context, shard, slot int) error {
	if r.o.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.o.AttemptTimeout)
		defer cancel()
	}
	stdin, stdout, wait, err := r.o.Spawner.Spawn(ctx, slot)
	if err != nil {
		return err
	}
	req, err := json.Marshal(workRequest{Job: r.job, Shard: exp.Shard{Index: shard, Count: r.job.Shards}})
	if err != nil {
		return err
	}
	if _, err := stdin.Write(append(req, '\n')); err != nil {
		stdout.Close()
		wait()
		return fmt.Errorf("sending job: %w", err)
	}
	stdin.Close()

	part := shardPath(r.dir, shard) + ".part"
	pf, err := os.Create(part)
	if err != nil {
		stdout.Close()
		wait()
		return err
	}
	defer pf.Close()

	st := r.states[shard]
	prefix := st.pushed // lines a previous attempt already merged
	prefixSum := st.h.Sum(nil)
	vh := sha256.New() // re-hash of the replayed prefix
	var (
		seen    int
		done    bool
		doneN   int
		doneSum string
		workErr error
	)
	sc := sink.NewLineScanner(stdout)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			s := string(line)
			if strings.HasPrefix(s, DonePrefix) {
				n, sum, err := ParseDoneMarker(s)
				if err != nil {
					workErr = err
					break
				}
				done, doneN, doneSum = true, n, sum
				fmt.Fprintf(pf, "%s\n", s)
				break
			}
			workErr = fmt.Errorf("worker: %s", s)
			break
		}
		if _, err := pf.Write(append(line, '\n')); err != nil {
			workErr = err
			break
		}
		if seen < prefix {
			// Replaying the prefix a previous attempt merged: verify the
			// retry reproduces it bit for bit, don't re-merge it.
			vh.Write(line)
			vh.Write([]byte{'\n'})
			seen++
			if seen == prefix && !bytes.Equal(vh.Sum(nil), prefixSum) {
				workErr = fatalError{fmt.Errorf("retried shard %d reproduced different bytes than its merged prefix (%d lines) — determinism violation, not retryable", shard, prefix)}
				break
			}
			continue
		}
		if err := r.push(shard, line); err != nil {
			workErr = err
			break
		}
		st.h.Write(line)
		st.h.Write([]byte{'\n'})
		st.pushed++
		seen++
	}
	if workErr == nil {
		workErr = sc.Err()
	}
	if workErr == nil {
		// The stream is at EOF (or the marker); drain any trailing
		// bytes so the worker never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}
	// On a merge-side error the worker may be healthy and mid-shard:
	// closing its stdout kills it now instead of draining a whole
	// residue class before the retry.
	stdout.Close()
	waitErr := wait()

	switch {
	case workErr != nil:
		return workErr
	case !done:
		if waitErr != nil {
			return fmt.Errorf("worker died without completion marker: %w", waitErr)
		}
		return fmt.Errorf("worker stream ended without completion marker")
	case seen < prefix:
		return fatalError{fmt.Errorf("retried shard %d streamed %d lines, fewer than the %d already merged — determinism violation, not retryable", shard, seen, prefix)}
	case doneN != st.pushed || doneSum != hex.EncodeToString(st.h.Sum(nil)):
		return fmt.Errorf("completion marker mismatch: worker declared %d records (%s), coordinator merged %d (%s)",
			doneN, doneSum, st.pushed, hex.EncodeToString(st.h.Sum(nil)))
	}

	if err := pf.Sync(); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	if err := os.Rename(part, shardPath(r.dir, shard)); err != nil {
		return err
	}
	if err := r.closeShard(shard); err != nil {
		return fatalError{err}
	}
	fmt.Fprintf(r.o.Log, "shard %d/%d complete (%d records)\n", shard, r.job.Shards, st.pushed)
	if r.o.onShardDone != nil {
		r.o.onShardDone(shard)
	}
	return nil
}

func (r *run) finishMerge(cells int) (exp.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.pump(); err != nil { // normally a no-op: every close pumps
		return nil, err
	}
	res, err := r.merger.Finish(cells)
	if err == nil {
		r.report()
	}
	return res, err
}

// ValidateRecordsFile checks a '#done'-terminated records file — a
// coordinator shard checkpoint, a serve cache entry, or any other
// artifact using the self-validating marker format: every record line
// hashed (newlines included), terminated by a matching completion
// marker. dataBytes is the byte offset where the marker line starts,
// i.e. the length of the record region a consumer may stream verbatim.
// Anything else — truncation, a flipped byte, a missing marker —
// invalidates the file (ok false) and the artifact must be recomputed.
func ValidateRecordsFile(path string) (records int, dataBytes int64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false
	}
	defer f.Close()
	h := sha256.New()
	n := 0
	var off int64
	sawDone := false
	sc := sink.NewLineScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			off++ // a bare newline
			continue
		}
		if sawDone {
			return 0, 0, false // data after the completion marker
		}
		if line[0] == '#' {
			dn, sum, err := ParseDoneMarker(string(line))
			if err != nil || dn != n || sum != hex.EncodeToString(h.Sum(nil)) {
				return 0, 0, false
			}
			dataBytes = off
			sawDone = true
			continue
		}
		h.Write(line)
		h.Write([]byte{'\n'})
		n++
		off += int64(len(line)) + 1
	}
	if sc.Err() != nil || !sawDone {
		return 0, 0, false
	}
	return n, dataBytes, true
}
