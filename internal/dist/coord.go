package dist

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dist/fault"
	"repro/internal/experiments/exp"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scenario/sink"
)

// Options tunes a coordinator run.
type Options struct {
	// Slots is the number of concurrent workers; 0 means
	// min(shards, GOMAXPROCS).
	Slots int
	// MaxAttempts bounds how often one shard is dispatched before the
	// run gives up (default 3). Exhausting it fails the run but leaves
	// every completed shard checkpointed for a resume. Steal
	// re-dispatches do not count against it (they are bounded
	// separately, by the same number).
	MaxAttempts int
	// Backoff is the base retry delay (default 200ms); attempt n waits
	// n×Backoff, capped at BackoffCap.
	Backoff time.Duration
	// BackoffCap caps the retry delay; 0 means 5×Backoff.
	BackoffCap time.Duration
	// Jitter randomizes each retry delay downward by up to this
	// fraction (0..1), so a pool of shards that failed together does
	// not retry in lockstep. The jitter is a deterministic hash of
	// (job seed, shard, attempt): reproducible for a given job, spread
	// across shards.
	Jitter float64
	// AttemptTimeout bounds one shard dispatch; 0 means no bound. Set
	// it for remote pools where a wedged transport would otherwise hold
	// its slot forever (the hang is then killed and retried like any
	// other worker failure).
	AttemptTimeout time.Duration
	// StealAfter enables work stealing: when the merge frontier has not
	// advanced for this long and a worker slot is free, the attempt
	// serving the frontier's shard is killed and the whole residue
	// class re-dispatched. The thief re-streams the class from cell 0;
	// the prefix the victim already merged is verified against the
	// running hash and skipped, so a steal can never change the merged
	// bytes. 0 disables stealing.
	StealAfter time.Duration
	// Spawner launches workers; nil uses SelfSpawner (local `work`
	// subprocesses of this binary). Workers are long-lived: each slot's
	// worker is kept across dispatches and only respawned after a
	// failure, kill, or steal.
	Spawner Spawner
	// Logger receives structured coordinator events (dispatch, retry,
	// steal, spawn, divergence), with shard/slot/attempt/cell fields.
	// Nil derives an info-level text logger from Log — or a discard
	// logger when Log is nil too.
	Logger *slog.Logger
	// Log is the legacy progress writer; it only matters when Logger is
	// nil (see above). Nil discards.
	Log io.Writer
	// Stream, when set, receives a live copy of the merged record stream
	// — the same bytes written to dir/merged.jsonl — flushed at cell
	// granularity so a consumer (the serve layer's record endpoint, a
	// progress UI) can tail the run while late shards are still working.
	Stream io.Writer
	// Progress, when set, observes merge progress after every record
	// push and shard completion. It is called under the coordinator's
	// merge lock: keep it fast and non-blocking (throttle on the caller
	// side if rendering is expensive).
	Progress func(Progress)

	// onShardDone, when set, observes each shard checkpoint as it is
	// finalized (fault tests use it to cancel mid-run).
	onShardDone func(shard int)
}

// Progress is one merge-progress observation: how far the global cell
// frontier has advanced (exp.Merger.Frontier) and how many shards have
// checkpointed, including shards reused from a previous run.
type Progress struct {
	MergedCells int // cells fully merged (the frontier)
	Cells       int // total cells in the enumeration
	ShardsDone  int // shards checkpointed (reused + completed this run)
	Shards      int // total shard count
}

// Report summarizes a coordinator run.
type Report struct {
	Cells    int   // cell-enumeration size
	Reused   []int // shards restored from valid checkpoints
	Ran      []int // shards dispatched this run
	Attempts []int // per-shard dispatch counts this run (steals included)
	Steals   []int // per-shard steal re-dispatches this run
	Spawns   int   // worker processes spawned (long-lived: usually ≤ slots)
	Result   exp.Result
}

// fatalError marks a failure no retry can fix (a determinism violation:
// a retried worker reproduced different bytes than its predecessor).
type fatalError struct{ error }

func (e fatalError) Unwrap() error { return e.error }

// errStolen is the cancellation cause the steal monitor injects into a
// stalled attempt; the dispatch loop re-dispatches immediately (no
// backoff) instead of counting it as a failed attempt.
var errStolen = errors.New("dist: attempt stolen (merge frontier stalled)")

// retryDelay is the bounded, jittered retry schedule: attempt n waits
// n×base capped at cap, shortened by up to jitter×delay using a
// deterministic hash of (seed, shard, attempt) — reproducible, but
// decorrelated across shards.
func retryDelay(base, cap time.Duration, jitter float64, seed int64, shard, attempt int) time.Duration {
	if cap <= 0 {
		cap = 5 * base
	}
	d := time.Duration(attempt) * base
	if d > cap {
		d = cap
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		u := float64(fault.Mix64(uint64(seed), uint64(shard), uint64(attempt))>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - jitter*u))
	}
	return d
}

// Run executes (or resumes) a sharded experiment run in dir. It
// validates the manifest and any checkpointed shards, dispatches the
// missing residue classes over a pool of long-lived worker slots,
// live-merges every shard stream in cell order into dir/merged.jsonl,
// and returns the reduction. The merged bytes are byte-identical to an
// unsharded run of the same job — for any slot count, failure schedule,
// steal schedule, or resume point.
//
// Cancelling ctx stops the run promptly: in-flight workers are killed,
// no new attempts start, and every shard completed so far stays
// checkpointed, so rerunning with the same directory resumes.
func Run(ctx context.Context, job Job, dir string, o Options) (*Report, error) {
	if job.Shards < 1 {
		return nil, fmt.Errorf("dist: need at least 1 shard (got %d)", job.Shards)
	}
	e, sc, err := job.Resolve()
	if err != nil {
		return nil, err
	}
	if o.Logger == nil {
		o.Logger = obs.TextLogger(o.Log)
	}
	if o.Slots <= 0 {
		o.Slots = min(job.Shards, runtime.GOMAXPROCS(0))
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	if o.Spawner == nil {
		if o.Spawner, err = SelfSpawner(os.Stderr); err != nil {
			return nil, err
		}
	}

	cells := len(e.Cells(job.Seed, sc))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	created := time.Now().UTC().Format(time.RFC3339)
	if err := loadOrWriteManifest(filepath.Join(dir, "run.json"), job, cells, created); err != nil {
		return nil, err
	}

	rep := &Report{Cells: cells, Attempts: make([]int, job.Shards), Steals: make([]int, job.Shards)}
	var pending []int
	for i := 0; i < job.Shards; i++ {
		if n, _, ok := ValidateRecordsFile(shardPath(dir, i)); ok {
			o.Logger.Info("reusing checkpoint", "shard", i, "shards", job.Shards, "records", n)
			rep.Reused = append(rep.Reused, i)
		} else {
			pending = append(pending, i)
		}
	}
	rep.Ran = append(rep.Ran, pending...)

	mergedPart := filepath.Join(dir, "merged.jsonl.part")
	mergedF, err := os.Create(mergedPart)
	if err != nil {
		return nil, err
	}
	defer mergedF.Close()

	var mergedOut io.Writer = mergedF
	if o.Stream != nil {
		mergedOut = io.MultiWriter(mergedF, o.Stream)
	}
	merger := exp.NewMerger(mergedOut, job.Shards, e)
	if o.Stream != nil {
		merger.AutoFlush(true)
	}
	r := &run{
		job:        job,
		dir:        dir,
		o:          o,
		sp:         span.FromContext(ctx),
		cells:      cells,
		merger:     merger,
		states:     make([]*shardState, job.Shards),
		replays:    make(map[int]*replayCursor),
		cancels:    make([]context.CancelCauseFunc, job.Shards),
		shardsDone: len(rep.Reused),
		pool: &workerPool{
			ctx:     ctx,
			spawner: o.Spawner,
			log:     o.Logger,
			slots:   make([]*poolWorker, o.Slots),
		},
	}
	for i := range r.states {
		r.states[i] = newShardState()
	}
	defer r.merger.Abort() // no-op after a successful Finish
	defer r.closeReplays()
	defer r.pool.close()

	// Checkpointed shards replay lazily: each file is opened as a
	// cursor and read only as the merge frontier demands its cells, so
	// a resume keeps checkpointed data on disk instead of buffering
	// whole shards in the merger's queues.
	for _, i := range rep.Reused {
		f, err := os.Open(shardPath(dir, i))
		if err != nil {
			return nil, err
		}
		r.replays[i] = &replayCursor{f: f, sc: sink.NewLineScanner(f)}
	}
	r.mu.Lock()
	err = r.pump()
	r.report()
	r.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("dist: replaying checkpointed shards: %w", err)
	}

	// Dispatch the missing shards over the worker slots; each shard's
	// goroutine owns all of that shard's attempts, so a shard's stream
	// state is never touched concurrently.
	slots := make(chan int, o.Slots)
	for s := 0; s < o.Slots; s++ {
		slots <- s
	}
	if o.StealAfter > 0 && len(pending) > 0 {
		stopSteal := make(chan struct{})
		defer close(stopSteal)
		go r.stealLoop(stopSteal, slots)
	}
	var (
		wg       sync.WaitGroup
		failMu   sync.Mutex
		failures []error
	)
	fail := func(err error) {
		failMu.Lock()
		failures = append(failures, err)
		failMu.Unlock()
	}
	for _, shard := range pending {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var lastErr error
			attempt, steals := 1, 0
			fromCell := 0
			for attempt <= o.MaxAttempts {
				var slot int
				select {
				case slot = <-slots:
				case <-ctx.Done():
					fail(fmt.Errorf("shard %d/%d: %w", shard, job.Shards, ctx.Err()))
					return
				}
				rep.Attempts[shard]++
				err := r.attempt(ctx, shard, slot, rep.Attempts[shard], fromCell)
				slots <- slot
				if err == nil {
					return
				}
				lastErr = err
				fromCell = 0
				if errors.Is(err, errStolen) && steals < o.MaxAttempts {
					// A steal is not a worker failure: re-dispatch the
					// residue class immediately, without burning an
					// attempt or backing off. Bounded so a shard that
					// keeps stalling cannot steal forever. The thief is
					// suffix-dispatched from the victim's merge frontier
					// (this goroutine owns the shard's state between
					// attempts, so the read is race-free); the frontier
					// cell's merged lines are verified and skipped, the
					// earlier cells come from the checkpoint part file.
					steals++
					rep.Steals[shard]++
					metSteals.Inc()
					if st := r.states[shard]; st.curCell > 0 {
						fromCell = st.curCell
					}
					o.Logger.Info("stalled attempt killed, re-dispatching",
						"shard", shard, "shards", job.Shards, "from_cell", fromCell, "steal", steals)
					continue
				}
				o.Logger.Warn("attempt failed",
					"shard", shard, "shards", job.Shards, "attempt", attempt, "err", err)
				var fe fatalError
				if ctx.Err() != nil || errors.As(err, &fe) {
					break
				}
				attempt++
				metRetries.Inc()
				if attempt <= o.MaxAttempts {
					d := retryDelay(o.Backoff, o.BackoffCap, o.Jitter, job.Seed, shard, attempt-1)
					metBackoffWaits.Inc()
					metBackoffSeconds.Add(d.Seconds())
					o.Logger.Debug("retry backoff", "shard", shard, "attempt", attempt, "delay", d)
					bsp := r.sp.Child("backoff",
						span.Int("shard", shard), span.Int("attempt", attempt), span.Str("delay", d.String()))
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
					bsp.End()
				}
			}
			fail(fmt.Errorf("shard %d/%d failed after %d attempt(s): %w", shard, job.Shards, rep.Attempts[shard], lastErr))
		}(shard)
	}
	wg.Wait()
	rep.Spawns = r.pool.spawnCount()

	if len(failures) > 0 {
		return rep, fmt.Errorf("dist: run incomplete (completed shards stay checkpointed in %s; rerun with the same directory to resume): %w",
			dir, errors.Join(failures...))
	}

	reduceSpan := r.sp.Child("reduce")
	res, err := r.finishMerge(cells)
	reduceSpan.End()
	if err != nil {
		return rep, err
	}
	if err := mergedF.Sync(); err != nil {
		return rep, err
	}
	if err := os.Rename(mergedPart, filepath.Join(dir, "merged.jsonl")); err != nil {
		return rep, err
	}
	rep.Result = res
	return rep, nil
}

// run is the shared state of one coordinator invocation.
type run struct {
	job        Job
	dir        string
	o          Options
	sp         *span.Span // trace parent from Run's ctx; nil when untraced
	cells      int
	mu         sync.Mutex // serializes merger + replay access across shard goroutines
	merger     *exp.Merger
	states     []*shardState
	replays    map[int]*replayCursor
	shardsDone int // checkpointed shards (reused + completed this run)
	pool       *workerPool

	cancelMu sync.Mutex
	cancels  []context.CancelCauseFunc // live attempt cancel per shard (steal hook)
}

// poolWorker is one live worker bound to a slot, with its persistent
// line scanner (the scanner owns read buffering, so it must survive
// across the requests the worker serves).
type poolWorker struct {
	w  *Worker
	sc *bufio.Scanner
}

// workerPool keeps one long-lived worker per slot, spawned lazily and
// kept across dispatches. Any failure retires the slot's worker (kill +
// reap); the next dispatch on that slot spawns a fresh one.
type workerPool struct {
	ctx     context.Context
	spawner Spawner
	log     *slog.Logger
	mu      sync.Mutex
	slots   []*poolWorker
	spawns  int
}

// acquire returns the slot's live worker, spawning one if the slot is
// empty; spawned reports whether this call spawned (so the dispatch can
// attribute the spawn cost to a trace span). A freshly spawned worker's
// first output line is its #ready heartbeat; a pooled worker's stream is
// positioned just before the #ready it wrote after its previous request
// — either way the next line the caller reads is #ready.
func (p *workerPool) acquire(slot int) (pw *poolWorker, spawned bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pw := p.slots[slot]; pw != nil {
		return pw, false, nil
	}
	w, err := p.spawner.Spawn(p.ctx, slot)
	if err != nil {
		return nil, false, err
	}
	p.spawns++
	metSpawns.Inc()
	p.log.Info("spawned worker", "slot", slot, "spawns", p.spawns)
	pw = &poolWorker{w: w, sc: sink.NewLineScanner(w.Out)}
	p.slots[slot] = pw
	return pw, true, nil
}

// retire kills and reaps the slot's worker if it is still pw (idempotent
// per worker generation: watchdogs and error paths may race). It returns
// the reaped worker's exit error, or nil if pw was already retired.
func (p *workerPool) retire(slot int, pw *poolWorker) error {
	p.mu.Lock()
	if p.slots[slot] != pw {
		p.mu.Unlock()
		return nil
	}
	p.slots[slot] = nil
	p.mu.Unlock()
	pw.w.Kill()
	pw.w.In.Close()
	pw.w.Out.Close()
	return pw.w.Wait()
}

// close shuts the pool down: close every live worker's stdin (the clean
// shutdown signal), kill as a backstop, and reap.
func (p *workerPool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for slot, pw := range p.slots {
		if pw == nil {
			continue
		}
		p.slots[slot] = nil
		pw.w.In.Close()
		pw.w.Kill()
		pw.w.Out.Close()
		pw.w.Wait()
	}
}

func (p *workerPool) spawnCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawns
}

// setCancel publishes (or clears) the live attempt's cancel for a shard
// so the steal monitor can kill it.
func (r *run) setCancel(shard int, c context.CancelCauseFunc) {
	r.cancelMu.Lock()
	r.cancels[shard] = c
	r.cancelMu.Unlock()
}

func (r *run) getCancel(shard int) context.CancelCauseFunc {
	r.cancelMu.Lock()
	defer r.cancelMu.Unlock()
	return r.cancels[shard]
}

// liveAttempts counts attempts currently in flight.
func (r *run) liveAttempts() int {
	r.cancelMu.Lock()
	defer r.cancelMu.Unlock()
	n := 0
	for _, c := range r.cancels {
		if c != nil {
			n++
		}
	}
	return n
}

// stealLoop watches the merge frontier; when it has not advanced for
// StealAfter and a worker slot is free, the attempt serving the
// frontier's shard is cancelled with errStolen, which kills its worker
// and triggers an immediate re-dispatch of the residue class.
func (r *run) stealLoop(stop <-chan struct{}, slots chan int) {
	period := r.o.StealAfter / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last, lastAdvance := -1, time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		f := r.merger.Frontier()
		r.mu.Unlock()
		if f != last {
			last, lastAdvance = f, time.Now()
			continue
		}
		if f >= r.cells || time.Since(lastAdvance) < r.o.StealAfter {
			continue
		}
		if len(slots) == 0 && r.liveAttempts() > 1 {
			// No free slot and other shards are using them: a steal
			// would just queue behind healthy work. When the stalled
			// attempt is the only one left, its own slot frees the
			// moment it is killed, so stealing is always productive.
			continue
		}
		shard := f % r.job.Shards
		cancel := r.getCancel(shard)
		if cancel == nil {
			continue // frontier shard not dispatched right now
		}
		metStallSeconds.Add(time.Since(lastAdvance).Seconds())
		// The stall interval is only known in hindsight: backdate it to
		// the frontier's last advance.
		r.sp.ChildAt(lastAdvance, "stall", span.Int("shard", shard), span.Int("cell", f)).End()
		r.o.Logger.Info("frontier stalled, stealing",
			"shard", shard, "shards", r.job.Shards, "cell", f, "stalled_for", r.o.StealAfter)
		cancel(errStolen)
		lastAdvance = time.Now() // give the thief a full stall window
	}
}

// report publishes a progress observation. Called with r.mu held.
func (r *run) report() {
	metFrontier.Set(float64(r.merger.Frontier()))
	if r.o.Progress == nil {
		return
	}
	r.o.Progress(Progress{
		MergedCells: r.merger.Frontier(),
		Cells:       r.cells,
		ShardsDone:  r.shardsDone,
		Shards:      r.job.Shards,
	})
}

// replayCursor reads a checkpointed shard file on demand.
type replayCursor struct {
	f  *os.File
	sc *bufio.Scanner
}

// push forwards a live worker line, then feeds any checkpointed shards
// the frontier advanced into. It returns the cell the line belongs to,
// which the caller's shard state tracks for steal suffix-dispatch.
func (r *run) push(shard int, line []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.merger.Push(shard, line); err != nil {
		return 0, err
	}
	cell := r.merger.Last(shard)
	err := r.pump()
	r.report()
	return cell, err
}

// closeShard marks a live shard complete, then pumps the replays.
func (r *run) closeShard(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardsDone++
	if err := r.merger.CloseShard(shard); err != nil {
		return err
	}
	err := r.pump()
	r.report()
	return err
}

// pump feeds checkpointed shard files into the merger for as long as
// the frontier cell belongs to one of them: the cursor's next lines are
// exactly the frontier's records, so the merger queues stay near-empty
// for replayed shards. Called with r.mu held.
func (r *run) pump() error {
	for {
		j := r.merger.Frontier() % r.job.Shards
		cur, ok := r.replays[j]
		if !ok {
			return nil // frontier owned by a live (or finished) shard
		}
		if cur.sc.Scan() {
			if err := r.merger.Push(j, cur.sc.Bytes()); err != nil {
				return err
			}
			continue
		}
		err := cur.sc.Err()
		cur.f.Close()
		delete(r.replays, j)
		if err != nil {
			return err
		}
		if err := r.merger.CloseShard(j); err != nil {
			return err
		}
	}
}

func (r *run) closeReplays() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cur := range r.replays {
		cur.f.Close()
	}
	r.replays = nil
}

// shardState tracks how much of a shard's deterministic stream has been
// merged, across that shard's attempts: a retry (or a steal's thief)
// re-produces the same bytes, so its first pushed lines are verified
// against the running hash and skipped instead of re-merged.
//
// Beyond the whole-stream running hash, the state keeps a snapshot of
// where the current (possibly partially merged) cell begins — line
// count, byte offset and hash at that point, plus a hash over the
// cell's own lines. A steal's thief is suffix-dispatched from that
// cell: the coordinator reuses the part file's verified prefix for the
// earlier cells and only the frontier cell's lines are replayed.
type shardState struct {
	pushed int
	h      hash.Hash // sha256 over the pushed lines ('\n' included)
	bytes  int64     // bytes of the pushed lines ('\n' included)

	curCell        int       // cell of the last pushed line, -1 before the first
	cellStart      int       // pushed-line count where curCell begins
	cellStartBytes int64     // byte offset where curCell begins
	cellStartSum   []byte    // h's digest at cellStart
	cellH          hash.Hash // sha256 over curCell's pushed lines
}

func newShardState() *shardState {
	st := &shardState{h: sha256.New(), curCell: -1, cellH: sha256.New()}
	st.cellStartSum = st.h.Sum(nil)
	return st
}

func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%d.jsonl", shard))
}

// hashFilePrefix hashes the first n bytes of the file at path.
func hashFilePrefix(path string, n int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.CopyN(h, f, n); err != nil {
		return nil, err
	}
	return h.Sum(nil), nil
}

// attempt runs one dispatch for one shard on the slot's long-lived
// worker: consume the worker's #ready heartbeat, send the request,
// stream the shard's records into the checkpoint file and the live
// merger, verify the completion marker, and finalize the checkpoint
// atomically. On success the worker stays pooled for the next dispatch;
// on any failure — including a deadline kill or a steal — it is retired
// and the slot respawns lazily.
//
// fromCell > 0 requests a suffix dispatch (a steal's thief resuming at
// the stolen shard's merge frontier): the worker streams only cells
// with Index >= fromCell, the previous attempt's part file supplies the
// earlier cells verbatim (verified by byte length and prefix hash
// before reuse), and only the frontier cell's already-merged lines are
// replayed through the prefix check. If the part file cannot be
// verified the dispatch silently falls back to a full re-stream, which
// is always correct.
func (r *run) attempt(ctx context.Context, shard, slot, dispatch, fromCell int) error {
	metDispatches.Inc()
	r.o.Logger.Debug("dispatch",
		"shard", shard, "shards", r.job.Shards, "slot", slot, "attempt", dispatch, "from_cell", fromCell)
	dsp := r.sp.Child("dispatch", span.Int("shard", shard), span.Int("slot", slot),
		span.Int("attempt", dispatch), span.Int("from_cell", fromCell))
	defer dsp.End()
	shardCell := metShardCell.With(strconv.Itoa(shard))
	actx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	if r.o.AttemptTimeout > 0 {
		var tcancel context.CancelFunc
		actx, tcancel = context.WithTimeout(actx, r.o.AttemptTimeout)
		defer tcancel()
	}

	spawnAt := time.Now()
	pw, spawned, err := r.pool.acquire(slot)
	if err != nil {
		return err
	}
	if spawned {
		dsp.ChildAt(spawnAt, "spawn").End()
	}
	// The watchdog turns any cancellation — per-attempt deadline, a
	// steal, run cancellation — into a worker kill, which unblocks the
	// read loop below with EOF. Stopped on the success path before the
	// cancel is cleared, so a racing steal cannot kill a worker whose
	// shard already completed.
	stopWatch := context.AfterFunc(actx, func() { r.pool.retire(slot, pw) })
	defer stopWatch()
	r.setCancel(shard, cancel)
	defer r.setCancel(shard, nil)

	st := r.states[shard]
	part := shardPath(r.dir, shard) + ".part"

	// A suffix dispatch reuses the part file's prefix for the cells
	// before the frontier; the reuse is gated on the file still holding
	// those bytes verbatim (length + prefix hash), since the victim may
	// have died before flushing or left a torn tail.
	suffix := fromCell > 0
	if suffix {
		ok := false
		if fi, err := os.Stat(part); err == nil && fi.Size() >= st.cellStartBytes {
			if sum, err := hashFilePrefix(part, st.cellStartBytes); err == nil && bytes.Equal(sum, st.cellStartSum) {
				ok = true
			}
		}
		if !ok {
			r.o.Logger.Warn("part file unusable for suffix dispatch, re-streaming",
				"shard", shard, "shards", r.job.Shards, "from_cell", 0)
			suffix, fromCell = false, 0
		}
	}
	var pf *os.File
	if suffix {
		if err := os.Truncate(part, st.cellStartBytes); err != nil {
			r.pool.retire(slot, pw)
			return err
		}
		pf, err = os.OpenFile(part, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		pf, err = os.Create(part)
	}
	if err != nil {
		r.pool.retire(slot, pw)
		return err
	}
	defer pf.Close()

	req, err := json.Marshal(workRequest{
		Job:      r.job,
		Shard:    exp.Shard{Index: shard, Count: r.job.Shards},
		Attempt:  dispatch,
		FromCell: fromCell,
	})
	if err != nil {
		return err
	}

	// prefix: the already-merged lines this attempt will stream again
	// and must reproduce bit for bit. A full re-stream replays the whole
	// merged prefix; a suffix dispatch replays only the frontier cell's
	// lines (the earlier cells are not re-streamed at all).
	prefix := st.pushed
	prefixSum := st.h.Sum(nil)
	if suffix {
		prefix = st.pushed - st.cellStart
		prefixSum = st.cellH.Sum(nil)
	}
	vh := sha256.New() // re-hash of the replayed prefix
	ah := sha256.New() // hash of every record line this attempt streamed
	// ready.wait covers the gap until the worker's heartbeat is consumed
	// (the spawn cost on a fresh slot, zero-ish on a pooled one); stream
	// then runs from the request write to the end of the attempt, with
	// the prefix replay — a retry's whole merged prefix, or just the
	// frontier cell on a steal's suffix dispatch — as a verify child.
	readySp := dsp.Child("ready.wait")
	var streamSp, verifySp *span.Span
	defer func() { verifySp.End(); streamSp.End(); readySp.End() }()
	var (
		seen        int
		expectReady = true
		done        bool
		doneN       int
		doneSum     string
		workErr     error
	)
	for pw.sc.Scan() {
		line := pw.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if expectReady {
			// The idle heartbeat: present both on a fresh spawn and on
			// a pooled worker (written after its previous request). The
			// request is dispatched only once the heartbeat arrives —
			// the worker is then guaranteed to be blocked reading its
			// stdin, so the write cannot deadlock even over synchronous
			// in-process pipes.
			if string(line) == ReadyMarker {
				expectReady = false
				metHeartbeats.Inc()
				readySp.End()
				streamSp = dsp.Child("stream")
				if prefix > 0 {
					verifySp = streamSp.Child("verify",
						span.Int("lines", prefix), span.Str("suffix", strconv.FormatBool(suffix)))
				}
				if _, err := pw.w.In.Write(append(req, '\n')); err != nil {
					workErr = fmt.Errorf("sending job: %w", err)
					break
				}
				continue
			}
			workErr = fmt.Errorf("worker: expected %s heartbeat, got %q", ReadyMarker, line)
			break
		}
		if line[0] == '#' {
			s := string(line)
			if strings.HasPrefix(s, DonePrefix) {
				n, sum, err := ParseDoneMarker(s)
				if err != nil {
					workErr = err
					break
				}
				done, doneN, doneSum = true, n, sum
				break
			}
			workErr = fmt.Errorf("worker: %s", s)
			break
		}
		if _, err := pf.Write(append(line, '\n')); err != nil {
			workErr = err
			break
		}
		ah.Write(line)
		ah.Write([]byte{'\n'})
		if seen < prefix {
			// Replaying the prefix a previous attempt merged: verify the
			// retry reproduces it bit for bit, don't re-merge it.
			vh.Write(line)
			vh.Write([]byte{'\n'})
			seen++
			if seen == prefix {
				verifySp.End()
				if !bytes.Equal(vh.Sum(nil), prefixSum) {
					workErr = fatalError{fmt.Errorf("retried shard %d reproduced different bytes than its merged prefix (%d lines) — determinism violation, not retryable", shard, prefix)}
					break
				}
			}
			continue
		}
		cell, err := r.push(shard, line)
		if err != nil {
			workErr = err
			break
		}
		if cell != st.curCell {
			// First line of a new cell: snapshot the stream position so a
			// future steal can suffix-dispatch from this cell.
			st.cellStart = st.pushed
			st.cellStartBytes = st.bytes
			st.cellStartSum = st.h.Sum(nil)
			st.cellH = sha256.New()
			st.curCell = cell
			shardCell.Set(float64(cell))
		}
		st.h.Write(line)
		st.h.Write([]byte{'\n'})
		st.cellH.Write(line)
		st.cellH.Write([]byte{'\n'})
		st.pushed++
		st.bytes += int64(len(line)) + 1
		seen++
	}
	if workErr == nil {
		workErr = pw.sc.Err()
	}
	streamSp.SetAttr("lines", strconv.Itoa(seen))

	var attemptErr error
	switch {
	case workErr != nil:
		attemptErr = workErr
	case !done:
		attemptErr = fmt.Errorf("worker stream ended without completion marker")
	case seen < prefix:
		attemptErr = fatalError{fmt.Errorf("retried shard %d streamed %d lines, fewer than the %d its dispatch had to replay — determinism violation, not retryable", shard, seen, prefix)}
	case doneN != seen || doneSum != hex.EncodeToString(ah.Sum(nil)):
		attemptErr = fmt.Errorf("completion marker mismatch: worker declared %d records (%s), coordinator saw %d (%s)",
			doneN, doneSum, seen, hex.EncodeToString(ah.Sum(nil)))
	}
	if attemptErr != nil {
		// The worker may be dead (crash, kill) or healthy-but-unusable
		// (merge error mid-stream): either way its residual stream state
		// is unknown, so retire it and let the slot respawn.
		waitErr := r.pool.retire(slot, pw)
		var fe fatalError
		if errors.As(attemptErr, &fe) {
			r.o.Logger.Error("determinism violation",
				"shard", shard, "shards", r.job.Shards, "attempt", dispatch, "err", attemptErr)
			return attemptErr
		}
		if cause := context.Cause(actx); cause != nil {
			switch {
			case errors.Is(cause, errStolen):
				return fmt.Errorf("shard %d dispatch %d: %w", shard, dispatch, errStolen)
			case errors.Is(cause, context.DeadlineExceeded):
				return fmt.Errorf("attempt deadline (%s) exceeded, worker killed: %w", r.o.AttemptTimeout, cause)
			}
		}
		if !done && waitErr != nil {
			return fmt.Errorf("worker died without completion marker: %w (stream: %v)", waitErr, attemptErr)
		}
		return attemptErr
	}

	// Success: stop the watchdog and clear the steal hook before
	// touching shared completion state; the worker stays pooled.
	stopWatch()
	cancel(nil)

	// The checkpoint's completion marker is computed by the coordinator
	// over the whole merged stream — a suffix dispatch's worker only
	// declared the suffix — so every checkpoint stays self-validating no
	// matter how its bytes were assembled. On a full dispatch this is
	// byte-identical to the marker the worker sent.
	if _, err := fmt.Fprintf(pf, "%s\n", DoneMarker(st.pushed, st.h.Sum(nil))); err != nil {
		return err
	}
	if err := pf.Sync(); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	if err := os.Rename(part, shardPath(r.dir, shard)); err != nil {
		return err
	}
	if err := r.closeShard(shard); err != nil {
		return fatalError{err}
	}
	r.o.Logger.Info("shard complete", "shard", shard, "shards", r.job.Shards, "records", st.pushed)
	if r.o.onShardDone != nil {
		r.o.onShardDone(shard)
	}
	return nil
}

func (r *run) finishMerge(cells int) (exp.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.pump(); err != nil { // normally a no-op: every close pumps
		return nil, err
	}
	res, err := r.merger.Finish(cells)
	if err == nil {
		r.report()
	}
	return res, err
}

// ValidateRecordsFile checks a '#done'-terminated records file — a
// coordinator shard checkpoint, a serve cache entry, or any other
// artifact using the self-validating marker format: every record line
// hashed (newlines included), terminated by a matching completion
// marker. dataBytes is the byte offset where the marker line starts,
// i.e. the length of the record region a consumer may stream verbatim.
// Anything else — truncation, a flipped byte, a missing marker —
// invalidates the file (ok false) and the artifact must be recomputed.
func ValidateRecordsFile(path string) (records int, dataBytes int64, ok bool) {
	records, dataBytes, _, ok = ValidateRecordsFileSum(path)
	return records, dataBytes, ok
}

// ValidateRecordsFileSum is ValidateRecordsFile, additionally returning
// the verified stream's hex SHA-256, so a caller maintaining an index
// over validated artifacts (the serve layer's cache) gets the digest
// from the same pass instead of rehashing.
func ValidateRecordsFileSum(path string) (records int, dataBytes int64, sum string, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, "", false
	}
	defer f.Close()
	h := sha256.New()
	n := 0
	var off int64
	sawDone := false
	sc := sink.NewLineScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			off++ // a bare newline
			continue
		}
		if sawDone {
			return 0, 0, "", false // data after the completion marker
		}
		if line[0] == '#' {
			dn, dsum, err := ParseDoneMarker(string(line))
			if err != nil || dn != n || dsum != hex.EncodeToString(h.Sum(nil)) {
				return 0, 0, "", false
			}
			dataBytes = off
			sum = dsum
			sawDone = true
			continue
		}
		h.Write(line)
		h.Write([]byte{'\n'})
		n++
		off += int64(len(line)) + 1
	}
	if sc.Err() != nil || !sawDone {
		return 0, 0, "", false
	}
	return n, dataBytes, sum, true
}
