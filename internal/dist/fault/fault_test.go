package fault

import (
	"errors"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	s, err := Parse("seed=7, 1/kill@2x1, 2/slow=20ms, 0/stall@4=80ms, 1/corrupt@5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Fatalf("seed = %d, want 7", s.Seed)
	}
	want := []Fault{
		{Shard: 1, Kind: Kill, After: 2, Attempts: 1},
		{Shard: 2, Kind: Slow, After: -1, Delay: 20 * time.Millisecond},
		{Shard: 0, Kind: Stall, After: 4, Delay: 80 * time.Millisecond},
		{Shard: 1, Kind: Corrupt, After: 5},
	}
	if len(s.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d: %+v", len(s.Faults), len(want), s.Faults)
	}
	for i, f := range s.Faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"kill@2",          // no shard
		"1/fry@2",         // unknown kind
		"1/kill=5ms",      // duration on kill
		"1/slow",          // slow without duration
		"1/slow@3=5ms",    // slow with a cut point
		"1/stall@3",       // stall without duration
		"1/kill@-1",       // negative record count
		"1/kill@2x0",      // attempt limit below 1
		"-1/kill@2",       // negative shard
		"seed=abc",        // bad seed
		"1/kill@two",      // bad record count
		"1/stall@3=bogus", // bad duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		s, err := Parse(spec)
		if err != nil || len(s.Faults) != 0 {
			t.Errorf("Parse(%q) = %+v, %v; want empty schedule", spec, s, err)
		}
	}
}

func TestLegacyEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	t.Setenv(LegacyEnvVar, "1@2")
	s, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 1 || s.Faults[0] != (Fault{Shard: 1, Kind: Kill, After: 2}) {
		t.Fatalf("legacy env parsed as %+v", s.Faults)
	}
	// MESHOPT_FAULT wins over the legacy hook.
	t.Setenv(EnvVar, "2/kill@0")
	s, err = FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 1 || s.Faults[0].Shard != 2 {
		t.Fatalf("env precedence broken: %+v", s.Faults)
	}
}

func TestForFiltersShardAndAttempt(t *testing.T) {
	s, err := Parse("1/kill@2x1,2/slow=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if inj := s.For(0, 1, nil); inj != nil {
		t.Errorf("shard 0 got an injector: %+v", inj.faults)
	}
	if inj := s.For(1, 1, nil); inj == nil {
		t.Error("shard 1 attempt 1 should be injected")
	}
	if inj := s.For(1, 2, nil); inj != nil {
		t.Errorf("shard 1 attempt 2 should be clean (x1): %+v", inj.faults)
	}
	if inj := s.For(2, 99, nil); inj == nil {
		t.Error("slow fault with no attempt limit should fire on every attempt")
	}
}

func TestKillFiresAtCutPoint(t *testing.T) {
	s, _ := Parse("0/kill@2")
	inj := s.For(0, 1, nil)
	for n := 0; n < 2; n++ {
		if err := inj.BeforeRecord(n); err != nil {
			t.Fatalf("record %d: unexpected %v", n, err)
		}
	}
	err := inj.BeforeRecord(2)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("record 2: got %v, want ErrInjected", err)
	}
}

func TestHangReleases(t *testing.T) {
	s, _ := Parse("0/hang@0")
	release := make(chan struct{})
	inj := s.For(0, 1, release)
	got := make(chan error, 1)
	go func() { got <- inj.BeforeRecord(0) }()
	select {
	case err := <-got:
		t.Fatalf("hang returned %v before release", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-got:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang returned %v, want ErrInjected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not release")
	}
}

func TestSeedDerivedCutPointIsReproducible(t *testing.T) {
	s, _ := Parse("seed=3,0/kill")
	a := s.For(0, 1, nil)
	b := s.For(0, 1, nil)
	if a.faults[0].After != b.faults[0].After {
		t.Fatalf("cut point not reproducible: %d vs %d", a.faults[0].After, b.faults[0].After)
	}
	if a.faults[0].After < 0 {
		t.Fatalf("cut point not resolved: %d", a.faults[0].After)
	}
	// A different attempt explores a different (but reproducible) point
	// for at least some (seed, shard); just assert determinism here.
	c := s.For(0, 2, nil)
	d := s.For(0, 2, nil)
	if c.faults[0].After != d.faults[0].After {
		t.Fatalf("attempt-2 cut point not reproducible: %d vs %d", c.faults[0].After, d.faults[0].After)
	}
}

func TestCorrupts(t *testing.T) {
	s, _ := Parse("0/corrupt@3")
	inj := s.For(0, 1, nil)
	if inj.Corrupts(2) || !inj.Corrupts(3) || inj.Corrupts(4) {
		t.Fatal("Corrupts should fire exactly on line 3")
	}
	if err := inj.BeforeRecord(3); err != nil {
		t.Fatalf("corrupt must not kill the worker: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Schedule
	if inj := s.For(0, 1, nil); inj != nil {
		t.Fatal("nil schedule should yield nil injector")
	}
	var inj *Injector
	if err := inj.BeforeRecord(0); err != nil {
		t.Fatal(err)
	}
	if inj.Corrupts(0) {
		t.Fatal("nil injector corrupts nothing")
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(1, 2, 3) != Mix64(1, 2, 3) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(1, 2, 3) == Mix64(1, 2, 4) {
		t.Fatal("Mix64 collides on adjacent inputs (suspicious)")
	}
}
