// Package fault is the seedable fault-injection harness for the
// distributed execution stack. A Schedule describes, per shard, when a
// worker should die, hang, crawl, stall, or corrupt its stream; the
// worker protocol (dist.ServeWork) consults the schedule on every record
// so the dist/serve test suites and the CI chaos smoke can replay the
// exact same failure sequence against a real coordinator run and assert
// byte-identity of the merged output.
//
// Schedules are parsed from a comma-separated spec, normally carried in
// the MESHOPT_FAULT environment variable:
//
//	<shard>/<kind>[@<records>][=<duration>][x<attempts>]
//
//	1/kill@2        shard 1's worker dies (stream cut, no marker)
//	                after emitting 2 records, on every attempt
//	1/kill@2x1      same, but only on attempt 1 — the retry succeeds
//	0/hang@3        shard 0's worker emits 3 records then wedges until
//	                killed (exercises the per-attempt deadline)
//	2/slow=20ms     shard 2's worker sleeps 20ms before every record
//	                (exercises frontier-stall work stealing)
//	1/stall@4=80ms  shard 1 pauses once, before record 4, then recovers
//	1/corrupt@5x1   the first byte of shard 1's record line 5 is flipped
//	                in transit (after hashing, so the corruption is
//	                detectable downstream), on attempt 1 only
//	seed=7          seeds the schedule: faults written without an
//	                explicit @<records> derive their cut point from
//	                (seed, shard, attempt), so chaos runs explore
//	                different cut points while staying reproducible
//
// The legacy MESHOPT_WORK_FAIL=<shard>@<records> hook parses as
// <shard>/kill@<records>.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Kind is one injected failure mode.
type Kind string

const (
	// Kill cuts the stream after After records: no completion marker,
	// nonzero worker exit — indistinguishable from a crashed process.
	Kill Kind = "kill"
	// Hang emits After records then blocks until released (in-process
	// workers) or the process is killed (subprocess workers).
	Hang Kind = "hang"
	// Slow sleeps Delay before every record for the whole request.
	Slow Kind = "slow"
	// Stall sleeps Delay once, before record After, then recovers.
	Stall Kind = "stall"
	// Corrupt flips the first byte of record line After in transit. The
	// flip happens after hashing, modelling transport corruption: the
	// worker's declared hash is clean, the delivered bytes are not, so
	// the receiver must detect the mismatch rather than checkpoint it.
	Corrupt Kind = "corrupt"
)

// Fault is one scheduled failure affecting every request for one shard.
type Fault struct {
	Shard    int
	Kind     Kind
	After    int           // records before the fault acts; -1 = seed-derived
	Delay    time.Duration // Slow: per record; Stall: once
	Attempts int           // fire on attempts 1..Attempts; 0 = every attempt
}

// Schedule is a parsed fault schedule. The zero value (or nil) injects
// nothing.
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// ErrInjected marks an injected worker death (Kill, or a released Hang).
var ErrInjected = errors.New("fault: injected worker fault")

// Parse parses a schedule spec. Empty means no faults.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			s.Seed = seed
			continue
		}
		f, err := parseFault(clause)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

func parseFault(clause string) (Fault, error) {
	bad := func(why string) (Fault, error) {
		return Fault{}, fmt.Errorf("fault: clause %q: %s (want <shard>/<kind>[@<records>][=<dur>][x<attempts>])", clause, why)
	}
	shardStr, rest, ok := strings.Cut(clause, "/")
	if !ok {
		return bad("missing '/'")
	}
	shard, err := strconv.Atoi(shardStr)
	if err != nil || shard < 0 {
		return bad("bad shard index")
	}
	f := Fault{Shard: shard, After: -1}
	// Suffixes in fixed order: kind, then @records, =dur, xattempts.
	if i := strings.IndexByte(rest, 'x'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 1 {
			return bad("bad attempt limit")
		}
		f.Attempts = n
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '='); i >= 0 {
		d, err := time.ParseDuration(rest[i+1:])
		if err != nil || d < 0 {
			return bad("bad duration")
		}
		f.Delay = d
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 0 {
			return bad("bad record count")
		}
		f.After = n
		rest = rest[:i]
	}
	f.Kind = Kind(rest)
	switch f.Kind {
	case Kill, Hang, Corrupt:
		if f.Delay != 0 {
			return bad("duration is only valid for slow/stall")
		}
	case Stall:
		if f.Delay == 0 {
			return bad("stall needs =<duration>")
		}
	case Slow:
		if f.Delay == 0 {
			return bad("slow needs =<duration>")
		}
		if f.After >= 0 {
			return bad("slow applies to every record; drop @<records>")
		}
	default:
		return bad("unknown kind")
	}
	return f, nil
}

// EnvVar is the environment variable carrying a schedule spec across a
// process boundary; LegacyEnvVar is the old kill-only hook it subsumes.
const (
	EnvVar       = "MESHOPT_FAULT"
	LegacyEnvVar = "MESHOPT_WORK_FAIL"
)

// FromEnv parses the schedule from MESHOPT_FAULT, falling back to the
// legacy MESHOPT_WORK_FAIL=<shard>@<records> kill hook. An unset (or
// malformed legacy) environment yields an empty schedule.
func FromEnv() (*Schedule, error) {
	if spec := os.Getenv(EnvVar); spec != "" {
		return Parse(spec)
	}
	if legacy := os.Getenv(LegacyEnvVar); legacy != "" {
		shardStr, afterStr, ok := strings.Cut(legacy, "@")
		shard, err1 := strconv.Atoi(shardStr)
		after, err2 := strconv.Atoi(afterStr)
		if ok && err1 == nil && err2 == nil {
			return &Schedule{Faults: []Fault{{Shard: shard, Kind: Kill, After: after}}}, nil
		}
	}
	return &Schedule{}, nil
}

// For returns the injector for one request (shard, attempt), or nil if
// no fault in the schedule applies to it. attempt counts from 1. The
// release channel (may be nil) unblocks Hang faults — in-process
// spawners wire it to their kill signal; subprocess workers leave it nil
// and rely on the real kill.
func (s *Schedule) For(shard, attempt int, release <-chan struct{}) *Injector {
	if s == nil {
		return nil
	}
	var active []Fault
	for _, f := range s.Faults {
		if f.Shard != shard {
			continue
		}
		if f.Attempts > 0 && attempt > f.Attempts {
			continue
		}
		if f.After < 0 && f.Kind != Slow {
			// Seed-derived cut point: reproducible for the same
			// (seed, shard, attempt), different across them.
			f.After = int(Mix64(uint64(s.Seed), uint64(shard), uint64(attempt)) % 8)
		}
		active = append(active, f)
	}
	if len(active) == 0 {
		return nil
	}
	return &Injector{faults: active, release: release}
}

// Injector applies one request's active faults. The worker's record
// sink calls BeforeRecord(n) before emitting record n (0-based) and
// Corrupts(n) when writing line n; both are cheap no-ops for fault-free
// records.
type Injector struct {
	faults  []Fault
	release <-chan struct{}
}

// BeforeRecord enforces kill/hang/slow/stall faults before record n is
// emitted. It returns ErrInjected when the worker should die (Kill, or
// a Hang that was released), after sleeping any slow/stall delays.
func (i *Injector) BeforeRecord(n int) error {
	if i == nil {
		return nil
	}
	for _, f := range i.faults {
		switch f.Kind {
		case Slow:
			time.Sleep(f.Delay)
		case Stall:
			if n == f.After {
				time.Sleep(f.Delay)
			}
		case Kill:
			if n >= f.After {
				return fmt.Errorf("%w: kill before record %d", ErrInjected, n)
			}
		case Hang:
			if n >= f.After {
				if i.release == nil {
					select {} // wedged until the process is killed
				}
				<-i.release
				return fmt.Errorf("%w: hang released before record %d", ErrInjected, n)
			}
		}
	}
	return nil
}

// Corrupts reports whether record line n should be corrupted in transit.
func (i *Injector) Corrupts(n int) bool {
	if i == nil {
		return false
	}
	for _, f := range i.faults {
		if f.Kind == Corrupt && f.After == n {
			return true
		}
	}
	return false
}

// Mix64 hashes its arguments with the splitmix64 finalizer — the shared
// deterministic mixer behind seed-derived cut points and the
// coordinator's reproducible retry jitter.
func Mix64(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}
