package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// A Spawner launches one worker per shard attempt. The returned pipes
// speak the stdio worker protocol; wait reaps the worker after its
// stream is consumed (cancelling ctx must kill it). Implementations:
// ExecSpawner for real processes, and the in-process pipe spawner the
// fault tests use.
type Spawner interface {
	Spawn(ctx context.Context, slot int) (stdin io.WriteCloser, stdout io.ReadCloser, wait func() error, err error)
}

// ExecSpawner spawns workers as subprocesses. Argv maps a slot index to
// the command line, so one spawner covers both local pools (every slot
// runs `<self> work`) and remote templates (slot-specific ssh targets).
type ExecSpawner struct {
	Argv   func(slot int) []string
	Stderr io.Writer // worker stderr passthrough; nil discards
}

func (s *ExecSpawner) Spawn(ctx context.Context, slot int) (io.WriteCloser, io.ReadCloser, func() error, error) {
	argv := s.Argv(slot)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stderr = s.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, nil, err
	}
	return stdin, stdout, cmd.Wait, nil
}

// SelfSpawner returns an ExecSpawner that runs this binary's `work`
// subcommand — the local worker pool `meshopt coord -workers <n>` uses.
func SelfSpawner(stderr io.Writer) (*ExecSpawner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locating own binary: %w", err)
	}
	return &ExecSpawner{
		Argv:   func(int) []string { return []string{exe, "work"} },
		Stderr: stderr,
	}, nil
}

// TemplateSpawner returns an ExecSpawner running a shell command
// template per slot — `{slot}` expands to the slot index, so templates
// like "ssh mesh{slot} meshopt work" fan out across hosts. The command
// must speak the stdio worker protocol (i.e. end in `meshopt work`).
func TemplateSpawner(template string, stderr io.Writer) *ExecSpawner {
	return &ExecSpawner{
		Argv: func(slot int) []string {
			cmd := strings.ReplaceAll(template, "{slot}", strconv.Itoa(slot))
			return []string{"/bin/sh", "-c", cmd}
		},
		Stderr: stderr,
	}
}
