package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// A Worker is one live worker process (or in-process equivalent)
// attached to a slot, speaking the long-lived stdio protocol: requests
// go down In, record/control lines come back on Out.
type Worker struct {
	In  io.WriteCloser
	Out io.ReadCloser
	// Kill hard-kills the worker: Out reaches EOF (or an error)
	// promptly, unblocking any pending read. It must be idempotent and
	// safe to call concurrently with reads and with Wait — the
	// coordinator uses it for per-attempt deadlines, work stealing, and
	// run cancellation.
	Kill func()
	// Wait reaps the worker after Kill or after In is closed; call it
	// exactly once.
	Wait func() error
}

// A Spawner launches long-lived workers, one per pool slot. Workers
// serve many shard requests over their lifetime; the coordinator spawns
// lazily, keeps healthy workers across requests, and respawns after a
// kill or failure. Implementations: ExecSpawner for real processes, and
// the in-process pipe spawners the fault tests and the serve layer use.
type Spawner interface {
	Spawn(ctx context.Context, slot int) (*Worker, error)
}

// ExecSpawner spawns workers as subprocesses. Argv maps a slot index to
// the command line, so one spawner covers both local pools (every slot
// runs `<self> work`) and remote templates (slot-specific ssh targets).
type ExecSpawner struct {
	Argv   func(slot int) []string
	Stderr io.Writer // worker stderr passthrough; nil discards
}

func (s *ExecSpawner) Spawn(ctx context.Context, slot int) (*Worker, error) {
	argv := s.Argv(slot)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stderr = s.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &Worker{
		In:  stdin,
		Out: stdout,
		// Process.Kill is idempotent enough for our purposes: after the
		// process is reaped it returns ErrProcessDone, which we drop.
		Kill: func() { _ = cmd.Process.Kill() },
		Wait: cmd.Wait,
	}, nil
}

// SelfSpawner returns an ExecSpawner that runs this binary's `work`
// subcommand — the local worker pool `meshopt coord -workers <n>` uses.
func SelfSpawner(stderr io.Writer) (*ExecSpawner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locating own binary: %w", err)
	}
	return &ExecSpawner{
		Argv:   func(int) []string { return []string{exe, "work"} },
		Stderr: stderr,
	}, nil
}

// TemplateSpawner returns an ExecSpawner running a shell command
// template per slot — `{slot}` expands to the slot index, so templates
// like "ssh mesh{slot} meshopt work" fan out across hosts. The command
// must speak the stdio worker protocol (i.e. end in `meshopt work`).
func TemplateSpawner(template string, stderr io.Writer) *ExecSpawner {
	return &ExecSpawner{
		Argv: func(slot int) []string {
			cmd := strings.ReplaceAll(template, "{slot}", strconv.Itoa(slot))
			return []string{"/bin/sh", "-c", cmd}
		},
		Stderr: stderr,
	}
}
