package dist

import "repro/internal/obs"

// Coordinator metrics, registered in the process-wide registry. All
// out-of-band: they count dispatch-loop events and observe merge
// progress, never the record bytes, so the merged stream is identical
// with the registry on or off.
var (
	metDispatches = obs.Default.Counter("meshopt_coord_dispatches_total",
		"Shard dispatches sent to workers (retries and steals included).")
	metRetries = obs.Default.Counter("meshopt_coord_retries_total",
		"Failed attempts that were retried.")
	metSteals = obs.Default.Counter("meshopt_coord_steals_total",
		"Stalled attempts killed and re-dispatched by the steal monitor.")
	metBackoffWaits = obs.Default.Counter("meshopt_coord_backoff_waits_total",
		"Retry backoff sleeps.")
	metBackoffSeconds = obs.Default.Counter("meshopt_coord_backoff_seconds_total",
		"Time spent in retry backoff sleeps.")
	metSpawns = obs.Default.Counter("meshopt_coord_worker_spawns_total",
		"Worker processes spawned (long-lived: usually one per slot).")
	metHeartbeats = obs.Default.Counter("meshopt_coord_heartbeats_total",
		"#ready heartbeats consumed from workers.")
	metFrontier = obs.Default.Gauge("meshopt_coord_frontier_cells",
		"Global merge frontier (cells fully merged).")
	metShardCell = obs.Default.GaugeVec("meshopt_coord_shard_frontier_cell",
		"Last cell merged per shard — the gap to meshopt_coord_frontier_cells is that shard's lag.", "shard")
	metStallSeconds = obs.Default.Counter("meshopt_coord_frontier_stall_seconds_total",
		"Frontier stall time observed by the steal monitor before each steal.")
)
