package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	_ "repro/internal/experiments" // register the figure suites
	"repro/internal/experiments/exp"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// toyDist is a fast single-record experiment for coordinator fault
// tests.
type toyDist struct{ n int }

func (toyDist) Name() string     { return "disttoy" }
func (toyDist) Describe() string { return "coordinator test experiment" }

func (t toyDist) Cells(seed int64, sc exp.Scale) []exp.Cell {
	cells := make([]exp.Cell, t.n)
	for i := range cells {
		cells[i] = exp.Cell{Seed: seed, Data: i}
	}
	return cells
}

func (toyDist) RunCell(c exp.Cell) sink.Record {
	i := c.Data.(int)
	return sink.Record{Fields: []sink.Field{sink.F("v", float64(c.Seed)*1000+float64(i))}}
}

type toySum struct {
	Sum   float64
	Cells int
}

func (r toySum) Print(w io.Writer) {}

func (toyDist) Reduce(recs <-chan sink.Record) exp.Result {
	var res toySum
	for rec := range recs {
		res.Sum += rec.Float("v")
		res.Cells++
	}
	return res
}

func init() { exp.Register(toyDist{n: 10}) }

// fault is one injected worker behavior for a single attempt.
type fault struct {
	cutAfter int  // emit this many record lines, then cut the stream (no marker)
	hang     bool // emit nothing and block until the context is cancelled
}

// testSpawner serves workers in-process over pipes, consuming one
// injected fault per attempt per shard (head-first), then behaving.
type testSpawner struct {
	mu     sync.Mutex
	faults map[int][]fault
}

func (s *testSpawner) takeFault(shard int) *fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.faults[shard]
	if len(fs) == 0 {
		return nil
	}
	f := fs[0]
	s.faults[shard] = fs[1:]
	return &f
}

func (s *testSpawner) Spawn(ctx context.Context, slot int) (io.WriteCloser, io.ReadCloser, func() error, error) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer outW.Close()
		br := bufio.NewReader(inR)
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			done <- err
			return
		}
		var req workRequest
		if err := json.Unmarshal(line, &req); err != nil {
			done <- err
			return
		}
		f := s.takeFault(req.Shard.Index)
		if f != nil && f.hang {
			<-ctx.Done()
			done <- ctx.Err()
			return
		}
		if f != nil {
			// Serve the shard fully, then forward only a prefix: the
			// stream a killed worker would have left behind.
			var buf bytes.Buffer
			if err := serveShard(req, &buf); err != nil {
				done <- err
				return
			}
			n := 0
			for _, l := range bytes.SplitAfter(buf.Bytes(), []byte{'\n'}) {
				if n >= f.cutAfter || len(l) == 0 || l[0] == '#' {
					break
				}
				outW.Write(l)
				n++
			}
			done <- errors.New("injected worker kill")
			return
		}
		done <- serveShard(req, outW)
	}()
	wait := func() error { inR.Close(); return <-done }
	return inW, outR, wait, nil
}

// unsharded renders the job's byte stream and reduction in-process.
func unsharded(t *testing.T, job Job) ([]byte, exp.Result) {
	t.Helper()
	e, sc, err := job.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := sink.NewJSONL(&buf)
	res, err := exp.Run(e, job.Seed, sc, exp.Options{Sink: s})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	return buf.Bytes(), res
}

// checkRun runs the coordinator and asserts the merged bytes and the
// reduction match the unsharded run.
func checkRun(t *testing.T, job Job, dir string, o Options) *Report {
	t.Helper()
	rep, err := Run(context.Background(), job, dir, o)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, wantRes := unsharded(t, job)
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("merged bytes differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s", got, wantBytes)
	}
	if !reflect.DeepEqual(rep.Result, wantRes) {
		t.Fatalf("reduction differs: %+v vs %+v", rep.Result, wantRes)
	}
	return rep
}

func toyJob(shards int) Job {
	return Job{Experiment: "disttoy", Seed: 5, Scale: "quick", Shards: shards}
}

func TestCoordByteIdenticalAcrossSlotCounts(t *testing.T) {
	for _, slots := range []int{1, 2, 4} {
		rep := checkRun(t, toyJob(3), t.TempDir(), Options{Slots: slots, Spawner: &testSpawner{}})
		if len(rep.Ran) != 3 || len(rep.Reused) != 0 {
			t.Fatalf("slots=%d: ran %v reused %v", slots, rep.Ran, rep.Reused)
		}
	}
}

func TestCoordRetriesFlakyWorker(t *testing.T) {
	// Shard 1's worker is killed after 2 records on its first two
	// attempts; the third succeeds. The retried stream's already-merged
	// prefix is verified and skipped, and the final bytes are identical.
	sp := &testSpawner{faults: map[int][]fault{1: {{cutAfter: 2}, {cutAfter: 2}}}}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{Slots: 2, Spawner: sp, Backoff: 1})
	if rep.Attempts[1] != 3 {
		t.Fatalf("shard 1 took %d attempts, want 3", rep.Attempts[1])
	}
}

func TestCoordGivesUpAfterMaxAttempts(t *testing.T) {
	dir := t.TempDir()
	sp := &testSpawner{faults: map[int][]fault{1: {{cutAfter: 1}, {cutAfter: 1}}}}
	_, err := Run(context.Background(), toyJob(3), dir, Options{Slots: 3, Spawner: sp, MaxAttempts: 2, Backoff: 1})
	if err == nil || !strings.Contains(err.Error(), "shard 1/3 failed after 2 attempt(s)") {
		t.Fatalf("err = %v", err)
	}
	// The healthy shards must have checkpointed for the resume.
	for _, i := range []int{0, 2} {
		if _, _, ok := ValidateRecordsFile(shardPath(dir, i)); !ok {
			t.Fatalf("shard %d not checkpointed after the run failed", i)
		}
	}
	if _, _, ok := ValidateRecordsFile(shardPath(dir, 1)); ok {
		t.Fatal("failed shard 1 validated as complete")
	}
	// Resume without faults: only shard 1 is re-dispatched.
	rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0, 2}) || !reflect.DeepEqual(rep.Ran, []int{1}) {
		t.Fatalf("resume reused %v ran %v", rep.Reused, rep.Ran)
	}
}

func TestCoordAttemptTimeoutUnwedgesHungWorker(t *testing.T) {
	// Shard 1's first worker hangs (stream open, no records). With an
	// AttemptTimeout the hang is killed like any other failure and the
	// retry completes the run.
	sp := &testSpawner{faults: map[int][]fault{1: {{hang: true}}}}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{
		Slots:          2,
		Spawner:        sp,
		Backoff:        1,
		AttemptTimeout: 50 * time.Millisecond,
	})
	if rep.Attempts[1] != 2 {
		t.Fatalf("shard 1 took %d attempts, want 2", rep.Attempts[1])
	}
}

func TestCoordKillAndResume(t *testing.T) {
	// Simulated coordinator death: shards 1 and 2 hang until the
	// context is cancelled — which happens the moment shard 0's
	// checkpoint lands — so the run dies with exactly one shard done.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := &testSpawner{faults: map[int][]fault{1: {{hang: true}}, 2: {{hang: true}}}}
	_, err := Run(ctx, toyJob(3), dir, Options{
		Slots:   3,
		Spawner: sp,
		onShardDone: func(shard int) {
			if shard == 0 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	// The fresh coordinator re-runs only the missing residue classes.
	rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0}) || !reflect.DeepEqual(rep.Ran, []int{1, 2}) {
		t.Fatalf("resume reused %v ran %v", rep.Reused, rep.Ran)
	}
}

func TestCoordDetectsCorruptedShardFile(t *testing.T) {
	dir := t.TempDir()
	checkRun(t, toyJob(3), dir, Options{Slots: 3, Spawner: &testSpawner{}})

	corrupt := func(mutate func([]byte) []byte) {
		t.Helper()
		path := shardPath(dir, 1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
		if !reflect.DeepEqual(rep.Reused, []int{0, 2}) || !reflect.DeepEqual(rep.Ran, []int{1}) {
			t.Fatalf("after corruption: reused %v ran %v", rep.Reused, rep.Ran)
		}
	}
	// A flipped byte inside a record: the marker's hash no longer
	// matches.
	corrupt(func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[bytes.IndexByte(c, ':')+1] ^= 1
		return c
	})
	// The completion marker stripped: an interrupted write.
	corrupt(func(b []byte) []byte {
		return b[:bytes.LastIndex(b, []byte("#done"))]
	})
}

func TestCoordRejectsForeignRunDirectory(t *testing.T) {
	dir := t.TempDir()
	checkRun(t, toyJob(2), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	other := toyJob(2)
	other.Seed = 6
	if _, err := Run(context.Background(), other, dir, Options{Slots: 2, Spawner: &testSpawner{}}); err == nil ||
		!strings.Contains(err.Error(), "different job") {
		t.Fatalf("err = %v, want manifest mismatch", err)
	}
}

func TestCoordScenarioSweepByName(t *testing.T) {
	job := Job{Experiment: "fairness", Scale: "quick", Shards: 3}
	spec, _ := scenario.Lookup("fairness")
	job.Seed = spec.Seed
	rep := checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: &testSpawner{}})
	if rep.Cells != 6 {
		t.Fatalf("fairness sweep has %d cells, want 6", rep.Cells)
	}
	if _, ok := rep.Result.(*scenario.SweepResult); !ok {
		t.Fatalf("result is %T, want *scenario.SweepResult", rep.Result)
	}
}

func TestCoordInlineSpecJob(t *testing.T) {
	spec, _ := scenario.Lookup("fairness")
	raw, err := scenario.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Experiment: spec.Name, Spec: raw, Seed: spec.Seed, Scale: "quick", Shards: 2}
	checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: &testSpawner{}})
}

// The acceptance gate on real figure suites: byte identity under an
// injected worker failure (fig10) and under a mid-run kill + resume
// (fig14).
func TestCoordFig10SurvivesWorkerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig10 suite several times")
	}
	job := Job{Experiment: "fig10", Seed: 4, Scale: "quick", Shards: 3}
	sp := &testSpawner{faults: map[int][]fault{1: {{cutAfter: 2}}}}
	rep := checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: sp, Backoff: 1})
	if rep.Attempts[1] != 2 {
		t.Fatalf("shard 1 took %d attempts, want 2", rep.Attempts[1])
	}
}

func TestCoordFig14KillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig14 suite several times")
	}
	dir := t.TempDir()
	job := Job{Experiment: "fig14", Seed: 9, Scale: "quick", Shards: 3}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := &testSpawner{faults: map[int][]fault{1: {{hang: true}}, 2: {{hang: true}}}}
	_, err := Run(ctx, job, dir, Options{
		Slots:   3,
		Spawner: sp,
		onShardDone: func(shard int) {
			if shard == 0 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	rep := checkRun(t, job, dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0}) {
		t.Fatalf("resume reused %v, want [0]", rep.Reused)
	}
}

func TestValidateShardFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard_0.jsonl")
	for name, content := range map[string]string{
		"empty":        "",
		"no marker":    `{"scenario":"x","series":"cell","cell":0}` + "\n",
		"bad count":    `{"scenario":"x","series":"cell","cell":0}` + "\n#done records=2 sha256=00\n",
		"data after":   "#done records=0 sha256=e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n" + `{"scenario":"x","series":"cell","cell":0}` + "\n",
		"marker alone": "#done records=1 sha256=deadbeef\n",
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := ValidateRecordsFile(path); ok {
			t.Fatalf("%s: validated", name)
		}
	}
}
