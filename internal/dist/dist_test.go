package dist

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist/fault"
	_ "repro/internal/experiments" // register the figure suites
	"repro/internal/experiments/exp"
	"repro/internal/scenario"
	"repro/internal/scenario/sink"
)

// toyDist is a fast single-record experiment for coordinator fault
// tests.
type toyDist struct{ n int }

func (toyDist) Name() string     { return "disttoy" }
func (toyDist) Describe() string { return "coordinator test experiment" }

func (t toyDist) Cells(seed int64, sc exp.Scale) []exp.Cell {
	cells := make([]exp.Cell, t.n)
	for i := range cells {
		cells[i] = exp.Cell{Seed: seed, Data: i}
	}
	return cells
}

func (toyDist) RunCell(c exp.Cell) sink.Record {
	i := c.Data.(int)
	return sink.Record{Fields: []sink.Field{sink.F("v", float64(c.Seed)*1000+float64(i))}}
}

type toySum struct {
	Sum   float64
	Cells int
}

func (r toySum) Print(w io.Writer) {}

func (toyDist) Reduce(recs <-chan sink.Record) exp.Result {
	var res toySum
	for rec := range recs {
		res.Sum += rec.Float("v")
		res.Cells++
	}
	return res
}

func init() { exp.Register(toyDist{n: 10}) }

// testSpawner serves long-lived workers in-process over pipes, driving
// ServeWorkOn under an explicit fault schedule — the same injector the
// subprocess path reads from MESHOPT_FAULT.
type testSpawner struct {
	sched  *fault.Schedule
	mu     sync.Mutex
	spawns int
}

// mustSchedule parses a fault spec or dies.
func mustSchedule(t *testing.T, spec string) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (s *testSpawner) spawnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawns
}

func (s *testSpawner) Spawn(ctx context.Context, slot int) (*Worker, error) {
	s.mu.Lock()
	s.spawns++
	s.mu.Unlock()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	release := make(chan struct{})
	var once sync.Once
	kill := func() {
		once.Do(func() {
			// An in-process "SIGKILL": release any hanging injected
			// fault and poison both pipes so worker-side reads and
			// writes fail, which aborts its exp.Run at the next cell
			// boundary via the sink-error cancellation path.
			close(release)
			inR.CloseWithError(io.ErrClosedPipe)
			outW.CloseWithError(io.ErrClosedPipe)
		})
	}
	done := make(chan error, 1)
	go func() {
		err := ServeWorkOn(inR, outW, s.sched, release)
		if err != nil {
			outW.CloseWithError(err)
		} else {
			outW.Close()
		}
		done <- err
	}()
	return &Worker{In: inW, Out: outR, Kill: kill, Wait: func() error { return <-done }}, nil
}

// unsharded renders the job's byte stream and reduction in-process.
func unsharded(t *testing.T, job Job) ([]byte, exp.Result) {
	t.Helper()
	e, sc, err := job.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := sink.NewJSONL(&buf)
	res, err := exp.Run(e, job.Seed, sc, exp.Options{Sink: s})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	return buf.Bytes(), res
}

// checkRun runs the coordinator and asserts the merged bytes and the
// reduction match the unsharded run.
func checkRun(t *testing.T, job Job, dir string, o Options) *Report {
	t.Helper()
	rep, err := Run(context.Background(), job, dir, o)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, wantRes := unsharded(t, job)
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("merged bytes differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s", got, wantBytes)
	}
	if !reflect.DeepEqual(rep.Result, wantRes) {
		t.Fatalf("reduction differs: %+v vs %+v", rep.Result, wantRes)
	}
	return rep
}

func toyJob(shards int) Job {
	return Job{Experiment: "disttoy", Seed: 5, Scale: "quick", Shards: shards}
}

func TestCoordByteIdenticalAcrossSlotCounts(t *testing.T) {
	for _, slots := range []int{1, 2, 4} {
		rep := checkRun(t, toyJob(3), t.TempDir(), Options{Slots: slots, Spawner: &testSpawner{}})
		if len(rep.Ran) != 3 || len(rep.Reused) != 0 {
			t.Fatalf("slots=%d: ran %v reused %v", slots, rep.Ran, rep.Reused)
		}
	}
}

func TestCoordLongLivedWorkerServesManyShards(t *testing.T) {
	// One slot, three shards: the long-lived protocol must serve all
	// three requests over a single spawned worker (the point of the
	// refactor: per-process startup — and warm in-process caches like
	// fig10's probe phase — paid once per worker, not per shard).
	sp := &testSpawner{}
	rep := checkRun(t, toyJob(3), t.TempDir(), Options{Slots: 1, Spawner: sp})
	if sp.spawnCount() != 1 {
		t.Fatalf("3 shards over 1 slot spawned %d workers, want 1", sp.spawnCount())
	}
	if rep.Spawns != 1 {
		t.Fatalf("report says %d spawns, want 1", rep.Spawns)
	}
}

func TestCoordRetriesFlakyWorker(t *testing.T) {
	// Shard 1's worker is killed after 2 records on its first two
	// attempts; the third succeeds. The retried stream's already-merged
	// prefix is verified and skipped, and the final bytes are identical.
	sp := &testSpawner{sched: mustSchedule(t, "1/kill@2x2")}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{Slots: 2, Spawner: sp, Backoff: 1})
	if rep.Attempts[1] != 3 {
		t.Fatalf("shard 1 took %d attempts, want 3", rep.Attempts[1])
	}
	// Every kill retires the slot's worker, so the pool respawned.
	if sp.spawnCount() < 3 {
		t.Fatalf("expected at least 3 spawns (2 killed + respawn), got %d", sp.spawnCount())
	}
}

func TestCoordGivesUpAfterMaxAttempts(t *testing.T) {
	dir := t.TempDir()
	sp := &testSpawner{sched: mustSchedule(t, "1/kill@1x2")}
	_, err := Run(context.Background(), toyJob(3), dir, Options{Slots: 3, Spawner: sp, MaxAttempts: 2, Backoff: 1})
	if err == nil || !strings.Contains(err.Error(), "shard 1/3 failed after 2 attempt(s)") {
		t.Fatalf("err = %v", err)
	}
	// The healthy shards must have checkpointed for the resume.
	for _, i := range []int{0, 2} {
		if _, _, ok := ValidateRecordsFile(shardPath(dir, i)); !ok {
			t.Fatalf("shard %d not checkpointed after the run failed", i)
		}
	}
	if _, _, ok := ValidateRecordsFile(shardPath(dir, 1)); ok {
		t.Fatal("failed shard 1 validated as complete")
	}
	// Resume without faults: only shard 1 is re-dispatched.
	rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0, 2}) || !reflect.DeepEqual(rep.Ran, []int{1}) {
		t.Fatalf("resume reused %v ran %v", rep.Reused, rep.Ran)
	}
}

func TestCoordAttemptTimeoutUnwedgesHungWorker(t *testing.T) {
	// Shard 1's first worker hangs (stream open, no records). With an
	// AttemptTimeout the hang is killed like any other failure and the
	// retry completes the run.
	sp := &testSpawner{sched: mustSchedule(t, "1/hang@0x1")}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{
		Slots:          2,
		Spawner:        sp,
		Backoff:        1,
		AttemptTimeout: 50 * time.Millisecond,
	})
	if rep.Attempts[1] != 2 {
		t.Fatalf("shard 1 took %d attempts, want 2", rep.Attempts[1])
	}
}

func TestCoordStealUnwedgesHungWorkerMidShard(t *testing.T) {
	// Shard 1's first worker emits 2 of its 4 records (cells 1, 4 of 10
	// over 3 shards... cells 1,4,7 for shard 1 of toyDist n=10), then
	// wedges — with NO attempt timeout. The frontier stalls at the
	// wedged shard's next cell; after StealAfter the steal monitor
	// kills the attempt and re-dispatches the residue class. The
	// thief's stream replays the 2 already-merged records, which are
	// verified against the running SHA-256 and skipped, and the merged
	// bytes stay identical to the unsharded run.
	sp := &testSpawner{sched: mustSchedule(t, "1/hang@2x1")}
	rep := checkRun(t, toyJob(3), t.TempDir(), Options{
		Slots:      3,
		Spawner:    sp,
		Backoff:    1,
		StealAfter: 50 * time.Millisecond,
	})
	if rep.Steals[1] == 0 {
		t.Fatalf("shard 1 was never stolen (attempts %v, steals %v)", rep.Attempts, rep.Steals)
	}
	if rep.Attempts[1] < 2 {
		t.Fatalf("shard 1 took %d dispatches, want >= 2", rep.Attempts[1])
	}
}

// syncBuf is a goroutine-safe Options.Log sink (shard goroutines log
// concurrently).
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestCoordStealSuffixDispatchResumesAtFrontier(t *testing.T) {
	// Shard 1 (cells 1, 4, 7 of toyDist's 10) wedges after pushing cells
	// 1 and 4. The steal's thief must be suffix-dispatched from cell 4 —
	// the stolen shard's merge frontier — rather than re-streaming the
	// residue class from cell 0: the part file supplies cell 1 verbatim
	// (verified by prefix hash) and only cell 4's line is replayed.
	// checkRun pins the merged bytes to the unsharded stream, so the
	// reused prefix is covered by the byte-identity contract too.
	var log syncBuf
	dir := t.TempDir()
	sp := &testSpawner{sched: mustSchedule(t, "1/hang@2x1")}
	rep := checkRun(t, toyJob(3), dir, Options{
		Slots:      3,
		Spawner:    sp,
		Backoff:    1,
		StealAfter: 50 * time.Millisecond,
		Log:        &log,
	})
	if rep.Steals[1] == 0 {
		t.Fatalf("shard 1 was never stolen (attempts %v, steals %v)", rep.Attempts, rep.Steals)
	}
	if !strings.Contains(log.String(), `msg="stalled attempt killed, re-dispatching" shard=1 shards=3 from_cell=4`) {
		t.Fatalf("thief was not suffix-dispatched from the frontier cell:\n%s", log.String())
	}
	// A checkpoint assembled from a reused prefix plus the thief's
	// suffix must still be a valid, self-validating artifact (the
	// coordinator writes the whole-stream marker itself).
	if n, _, ok := ValidateRecordsFile(shardPath(dir, 1)); !ok || n != 3 {
		t.Fatalf("suffix-assembled checkpoint invalid: records=%d ok=%v", n, ok)
	}
}

func TestCoordBroadcastChaosKillAndStealByteIdentical(t *testing.T) {
	// The fault-injection acceptance case for the dissemination family:
	// a 3-shard broadcast job where shard 1's worker is killed mid-cell
	// and shard 2's worker wedges mid-cell (6 records = one full cell
	// plus a partial one), forcing a steal whose thief resumes at the
	// frontier cell. The merged bytes must still be identical to the
	// unsharded `meshopt fig broadcast` stream.
	if testing.Short() {
		t.Skip("runs the broadcast suite several times")
	}
	var log syncBuf
	job := Job{Experiment: "broadcast", Seed: 4, Scale: "quick", Shards: 3}
	sp := &testSpawner{sched: mustSchedule(t, "1/kill@2x1,2/hang@6x1")}
	rep := checkRun(t, job, t.TempDir(), Options{
		Slots:      3,
		Spawner:    sp,
		Backoff:    1,
		StealAfter: 50 * time.Millisecond,
		Log:        &log,
	})
	if rep.Attempts[1] != 2 {
		t.Fatalf("killed shard 1 took %d attempts, want 2", rep.Attempts[1])
	}
	if rep.Steals[2] == 0 {
		t.Fatalf("hung shard 2 was never stolen (attempts %v, steals %v)", rep.Attempts, rep.Steals)
	}
	if !regexp.MustCompile(`msg="stalled attempt killed, re-dispatching" shard=\d+ shards=3 from_cell=[1-9]`).MatchString(log.String()) {
		t.Fatalf("stolen shard was not suffix-dispatched:\n%s", log.String())
	}
}

func TestCoordCorruptStreamIsRetriedNotMerged(t *testing.T) {
	// Shard 1's first attempt has record line 1 corrupted in transit
	// (first byte flipped, after hashing). The line fails to decode, so
	// it is never merged or checkpointed; the attempt fails and the
	// clean retry produces identical bytes.
	sp := &testSpawner{sched: mustSchedule(t, "1/corrupt@1x1")}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{Slots: 2, Spawner: sp, Backoff: 1})
	if rep.Attempts[1] != 2 {
		t.Fatalf("shard 1 took %d attempts, want 2 (corrupt line must fail the attempt)", rep.Attempts[1])
	}
}

func TestCoordStallThenRecoverNeedsNoRetry(t *testing.T) {
	// A stall shorter than any deadline is just latency: the worker
	// recovers and the run completes on first attempts.
	sp := &testSpawner{sched: mustSchedule(t, "1/stall@1=30ms")}
	rep := checkRun(t, toyJob(2), t.TempDir(), Options{Slots: 2, Spawner: sp})
	if rep.Attempts[1] != 1 {
		t.Fatalf("shard 1 took %d attempts, want 1", rep.Attempts[1])
	}
}

func TestCoordCancelReturnsPromptly(t *testing.T) {
	// Every shard hangs; cancelling the run context must kill the
	// in-flight workers and return well within the ~2s budget instead
	// of waiting out the fan-out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := &testSpawner{sched: mustSchedule(t, "0/hang@0,1/hang@0,2/hang@0")}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, toyJob(3), t.TempDir(), Options{Slots: 3, Spawner: sp})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled run took %v to return, want < 2s", d)
	}
}

func TestCoordKillAndResume(t *testing.T) {
	// Simulated coordinator death: shards 1 and 2 hang until the
	// context is cancelled — which happens the moment shard 0's
	// checkpoint lands — so the run dies with exactly one shard done.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := &testSpawner{sched: mustSchedule(t, "1/hang@0,2/hang@0")}
	_, err := Run(ctx, toyJob(3), dir, Options{
		Slots:   3,
		Spawner: sp,
		onShardDone: func(shard int) {
			if shard == 0 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	// The fresh coordinator re-runs only the missing residue classes.
	rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0}) || !reflect.DeepEqual(rep.Ran, []int{1, 2}) {
		t.Fatalf("resume reused %v ran %v", rep.Reused, rep.Ran)
	}
}

func TestCoordDetectsCorruptedShardFile(t *testing.T) {
	dir := t.TempDir()
	checkRun(t, toyJob(3), dir, Options{Slots: 3, Spawner: &testSpawner{}})

	corrupt := func(mutate func([]byte) []byte) {
		t.Helper()
		path := shardPath(dir, 1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		rep := checkRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
		if !reflect.DeepEqual(rep.Reused, []int{0, 2}) || !reflect.DeepEqual(rep.Ran, []int{1}) {
			t.Fatalf("after corruption: reused %v ran %v", rep.Reused, rep.Ran)
		}
	}
	// A flipped byte inside a record: the marker's hash no longer
	// matches.
	corrupt(func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[bytes.IndexByte(c, ':')+1] ^= 1
		return c
	})
	// The completion marker stripped: an interrupted write.
	corrupt(func(b []byte) []byte {
		return b[:bytes.LastIndex(b, []byte("#done"))]
	})
}

func TestCoordRejectsForeignRunDirectory(t *testing.T) {
	dir := t.TempDir()
	checkRun(t, toyJob(2), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	other := toyJob(2)
	other.Seed = 6
	if _, err := Run(context.Background(), other, dir, Options{Slots: 2, Spawner: &testSpawner{}}); err == nil ||
		!strings.Contains(err.Error(), "different job") {
		t.Fatalf("err = %v, want manifest mismatch", err)
	}
}

func TestCoordScenarioSweepByName(t *testing.T) {
	job := Job{Experiment: "fairness", Scale: "quick", Shards: 3}
	spec, _ := scenario.Lookup("fairness")
	job.Seed = spec.Seed
	rep := checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: &testSpawner{}})
	if rep.Cells != 6 {
		t.Fatalf("fairness sweep has %d cells, want 6", rep.Cells)
	}
	if _, ok := rep.Result.(*scenario.SweepResult); !ok {
		t.Fatalf("result is %T, want *scenario.SweepResult", rep.Result)
	}
}

func TestCoordInlineSpecJob(t *testing.T) {
	spec, _ := scenario.Lookup("fairness")
	raw, err := scenario.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Experiment: spec.Name, Spec: raw, Seed: spec.Seed, Scale: "quick", Shards: 2}
	checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: &testSpawner{}})
}

func TestRetryDelaySchedule(t *testing.T) {
	base := 100 * time.Millisecond
	// Without jitter the schedule is exactly n×base capped at 5×base.
	for n, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		3: 300 * time.Millisecond,
		5: 500 * time.Millisecond,
		9: 500 * time.Millisecond,
	} {
		if got := retryDelay(base, 0, 0, 5, 1, n); got != want {
			t.Errorf("attempt %d: delay %v, want %v", n, got, want)
		}
	}
	// An explicit cap overrides the 5×base default.
	if got := retryDelay(base, 250*time.Millisecond, 0, 5, 1, 9); got != 250*time.Millisecond {
		t.Errorf("capped delay = %v, want 250ms", got)
	}
	// Jitter shortens deterministically: same inputs, same delay; the
	// result stays within [d×(1-jitter), d] and differs across shards.
	d1 := retryDelay(base, 0, 0.5, 5, 1, 2)
	d2 := retryDelay(base, 0, 0.5, 5, 1, 2)
	if d1 != d2 {
		t.Fatalf("jittered delay not deterministic: %v vs %v", d1, d2)
	}
	if d1 < 100*time.Millisecond || d1 > 200*time.Millisecond {
		t.Fatalf("jittered delay %v outside [100ms, 200ms]", d1)
	}
	distinct := map[time.Duration]bool{}
	for shard := 0; shard < 8; shard++ {
		distinct[retryDelay(base, 0, 0.5, 5, shard, 2)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("jitter does not decorrelate shards")
	}
}

// The acceptance gate on real figure suites: byte identity under an
// injected worker failure (fig10) and under a mid-run kill + resume
// (fig14).
func TestCoordFig10SurvivesWorkerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig10 suite several times")
	}
	job := Job{Experiment: "fig10", Seed: 4, Scale: "quick", Shards: 3}
	sp := &testSpawner{sched: mustSchedule(t, "1/kill@2x1")}
	rep := checkRun(t, job, t.TempDir(), Options{Slots: 2, Spawner: sp, Backoff: 1})
	if rep.Attempts[1] != 2 {
		t.Fatalf("shard 1 took %d attempts, want 2", rep.Attempts[1])
	}
}

func TestCoordFig14KillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig14 suite several times")
	}
	dir := t.TempDir()
	job := Job{Experiment: "fig14", Seed: 9, Scale: "quick", Shards: 3}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := &testSpawner{sched: mustSchedule(t, "1/hang@0,2/hang@0")}
	_, err := Run(ctx, job, dir, Options{
		Slots:   3,
		Spawner: sp,
		onShardDone: func(shard int) {
			if shard == 0 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	rep := checkRun(t, job, dir, Options{Slots: 2, Spawner: &testSpawner{}})
	if !reflect.DeepEqual(rep.Reused, []int{0}) {
		t.Fatalf("resume reused %v, want [0]", rep.Reused)
	}
}

func TestValidateShardFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard_0.jsonl")
	for name, content := range map[string]string{
		"empty":        "",
		"no marker":    `{"scenario":"x","series":"cell","cell":0}` + "\n",
		"bad count":    `{"scenario":"x","series":"cell","cell":0}` + "\n#done records=2 sha256=00\n",
		"data after":   "#done records=0 sha256=e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n" + `{"scenario":"x","series":"cell","cell":0}` + "\n",
		"marker alone": "#done records=1 sha256=deadbeef\n",
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := ValidateRecordsFile(path); ok {
			t.Fatalf("%s: validated", name)
		}
	}
}
