package dist

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/span"
)

// tracedRun runs the coordinator with a span recorder threaded through
// the context and returns the report plus the captured spans.
func tracedRun(t *testing.T, job Job, dir string, o Options) (*Report, []span.SpanData) {
	t.Helper()
	rec := span.NewRecorder()
	root := rec.Root("coord")
	rep, err := Run(span.NewContext(context.Background(), root), job, dir, o)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec.Snapshot()
}

// TestCoordTracedByteIdenticalToUnsharded pins the out-of-band contract
// at the coordinator layer: a traced coord run's merged bytes and
// reduction are identical to the unsharded in-process run, and the
// capture holds one dispatch span per shard under the root.
func TestCoordTracedByteIdenticalToUnsharded(t *testing.T) {
	dir := t.TempDir()
	rep, spans := tracedRun(t, toyJob(3), dir, Options{Slots: 2, Spawner: &testSpawner{}})
	wantBytes, wantRes := unsharded(t, toyJob(3))
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("traced merged bytes differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s", got, wantBytes)
	}
	if !reflect.DeepEqual(rep.Result, wantRes) {
		t.Fatalf("traced reduction differs: %+v vs %+v", rep.Result, wantRes)
	}
	tree := span.Tree(spans)
	if n := strings.Count(tree, "dispatch{"); n != 3 {
		t.Fatalf("capture has %d dispatch spans, want 3:\n%s", n, tree)
	}
	for _, want := range []string{"reduce", "stream", "spawn"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("capture has no %q span:\n%s", want, tree)
		}
	}
}

// TestCoordChaosReportAttributesRetryAndSteal is the chaos acceptance
// case for the report: shard 1's worker is killed mid-stream (forcing a
// backoff + full re-dispatch whose prefix replay verifies) and shard
// 2's worker wedges (forcing a steal whose thief suffix-dispatches from
// the frontier). `meshopt report` over the capture must attribute the
// two recovery mechanisms on distinct lines — retry backoff vs steal
// suffix-verify — with the matching dispatch counts.
func TestCoordChaosReportAttributesRetryAndSteal(t *testing.T) {
	dir := t.TempDir()
	sp := &testSpawner{sched: mustSchedule(t, "1/kill@1x1,2/hang@2x1")}
	rep, spans := tracedRun(t, toyJob(3), dir, Options{
		Slots:      3,
		Spawner:    sp,
		Backoff:    1,
		StealAfter: 50 * time.Millisecond,
	})
	if rep.Attempts[1] < 2 {
		t.Fatalf("killed shard 1 took %d dispatches, want >= 2", rep.Attempts[1])
	}
	if rep.Steals[2] == 0 {
		t.Fatalf("hung shard 2 was never stolen (attempts %v, steals %v)", rep.Attempts, rep.Steals)
	}

	report := span.Build(spans)
	if report.Retries == 0 {
		t.Fatalf("report counts no retried dispatches: %+v", report)
	}
	if report.Steals == 0 {
		t.Fatalf("report counts no steal suffix-dispatches: %+v", report)
	}
	if report.Backoff.N == 0 {
		t.Fatalf("report attributes no retry backoff time: %+v", report)
	}
	if report.SuffixVerify.N == 0 {
		t.Fatalf("report attributes no steal suffix-verify time: %+v", report)
	}
	if report.Stalls.N == 0 {
		t.Fatalf("report attributes no frontier stall time: %+v", report)
	}

	var out bytes.Buffer
	report.Format(&out)
	text := out.String()
	for _, want := range []string{"retry backoff:", "steal suffix-verify:", "frontier stalls:", "critical path"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report output missing %q:\n%s", want, text)
		}
	}
}
