package trace

import (
	"fmt"
	"io"
	"sort"
)

// Divergence is one point where two traces disagree.
type Divergence struct {
	Cell   int
	Link   Link
	Index  int    // event index within the link series (-1 for count/link-set mismatches)
	Detail string // human-readable description
}

// Report is the outcome of diffing two traces, link by link.
type Report struct {
	Cells       int // cells compared (union)
	Links       int // links compared (union, across cells)
	Events      int // events compared
	Divergences []Divergence
}

// Identical reports whether the two traces agreed everywhere.
func (r Report) Identical() bool { return len(r.Divergences) == 0 }

// Print renders the report; one line per divergence, capped summary
// line last.
func (r Report) Print(w io.Writer) {
	const maxLines = 20
	for i, d := range r.Divergences {
		if i == maxLines {
			fmt.Fprintf(w, "... and %d more divergence(s)\n", len(r.Divergences)-maxLines)
			break
		}
		fmt.Fprintf(w, "cell %d link %s: %s\n", d.Cell, d.Link, d.Detail)
	}
	if r.Identical() {
		fmt.Fprintf(w, "traces identical: %d cell(s), %d link(s), %d event(s)\n", r.Cells, r.Links, r.Events)
	} else {
		fmt.Fprintf(w, "traces diverge: %d divergence(s) across %d cell(s), %d link(s), %d event(s)\n",
			len(r.Divergences), r.Cells, r.Links, r.Events)
	}
}

// Diff compares two traces link by link: link sets per cell, event
// counts per link, and every event field in order. The first differing
// event on a link is reported (one divergence per link keeps the
// report readable; the counts capture the rest).
func Diff(a, b Trace) Report {
	var rep Report
	cells := map[int]bool{}
	for c := range a {
		cells[c] = true
	}
	for c := range b {
		cells[c] = true
	}
	order := make([]int, 0, len(cells))
	for c := range cells {
		order = append(order, c)
	}
	sort.Ints(order)
	rep.Cells = len(order)

	for _, cell := range order {
		ca, cb := a[cell], b[cell]
		if ca == nil {
			ca = NewCollector()
		}
		if cb == nil {
			cb = NewCollector()
		}
		links := map[Link]bool{}
		var linkOrder []Link
		for _, l := range ca.order {
			if !links[l] {
				links[l] = true
				linkOrder = append(linkOrder, l)
			}
		}
		for _, l := range cb.order {
			if !links[l] {
				links[l] = true
				linkOrder = append(linkOrder, l)
			}
		}
		rep.Links += len(linkOrder)
		for _, l := range linkOrder {
			ea, eb := ca.byLink[l], cb.byLink[l]
			n := len(ea)
			if len(eb) > n {
				n = len(eb)
			}
			rep.Events += n
			if d, ok := diffLink(cell, l, ea, eb); ok {
				rep.Divergences = append(rep.Divergences, d)
			}
		}
	}
	return rep
}

// diffLink finds the first divergence on one link's event series.
func diffLink(cell int, l Link, a, b []Event) (Divergence, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return Divergence{
				Cell: cell, Link: l, Index: i,
				Detail: fmt.Sprintf("event %d: %s != %s", i, fmtEvent(a[i]), fmtEvent(b[i])),
			}, true
		}
	}
	if len(a) != len(b) {
		return Divergence{
			Cell: cell, Link: l, Index: -1,
			Detail: fmt.Sprintf("event count %d != %d", len(a), len(b)),
		}, true
	}
	return Divergence{}, false
}

func fmtEvent(e Event) string {
	return fmt.Sprintf("{seq %d t %d out %s}", e.Seq, int64(e.T), outName(e.Out))
}
