package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/phy"
	"repro/internal/scenario/sink"
)

// TestRecordsDecodeRoundTrip pins the wire format: a collected trace
// rendered as "trace" records, streamed through the JSONL sink and
// decoded back, must reproduce every link and event exactly.
func TestRecordsDecodeRoundTrip(t *testing.T) {
	cc := NewCellCapture()
	cc.Decide(phy.Decision{T: 10, Src: 1, Dst: 2, Seq: 0, Kind: phy.KindData,
		Rate: phy.Rate11, Bytes: 1500, Delivered: false, Cause: phy.CauseChannel})
	cc.Decide(phy.Decision{T: 20, Src: 1, Dst: 2, Seq: 1, Kind: phy.KindData,
		Rate: phy.Rate11, Bytes: 1500, Delivered: true})
	cc.Decide(phy.Decision{T: 30, Src: 2, Dst: 3, Seq: 5, Kind: phy.KindAck,
		Rate: phy.Rate1, Bytes: 14, Delivered: false, Cause: phy.CauseSINR})

	recs := cc.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d trace records, want 2 (one per link)", len(recs))
	}
	for i := range recs {
		recs[i].Cell = 7
	}
	var buf bytes.Buffer
	s := sink.NewJSONL(&buf)
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	decoded, err := sink.DecodeJSONLStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(Trace{7: cc.Collector()}, tr)
	if !rep.Identical() {
		var b bytes.Buffer
		rep.Print(&b)
		t.Fatalf("round-tripped trace differs:\n%s", b.String())
	}
	if rep.Events != 3 || rep.Links != 2 || rep.Cells != 1 {
		t.Fatalf("report counts: %+v", rep)
	}
}

// TestDecodeRejectsLengthMismatch: a trace record whose arrays disagree
// with its n field is corrupt and must error, not truncate silently.
func TestDecodeRejectsLengthMismatch(t *testing.T) {
	rec := sink.Record{Series: Series, Fields: []sink.Field{
		sink.F("src", 1), sink.F("dst", 2), sink.F("n", 2),
		sink.F("seq", []float64{0}), sink.F("t", []float64{0, 1}),
		sink.F("kind", []float64{0, 0}), sink.F("rate", []float64{1, 1}),
		sink.F("bytes", []float64{9, 9}), sink.F("out", []float64{0, 0}),
	}}
	if _, err := Decode([]sink.Record{rec}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestReplayCursorSemantics pins the replay protocol: recorded
// channel/delivered outcomes answer the query, frames the trace never
// saw fall back to the caller's coin, pre-channel drops (SINR,
// unlocked) are skipped by seq — and a frame reaching the channel
// decision that the recording says never did is a divergence.
func TestReplayCursorSemantics(t *testing.T) {
	ct := NewCollector()
	l := Link{Src: 1, Dst: 2}
	ct.Add(l, Event{Seq: 0, Kind: int(phy.KindData), Out: OutChannel})
	ct.Add(l, Event{Seq: 2, Kind: int(phy.KindData), Out: OutDelivered})
	ct.Add(l, Event{Seq: 3, Kind: int(phy.KindData), Out: OutSINR})
	r := NewReplay(ct)

	if !r.Outcome(1, 2, 0, int(phy.KindData), false) {
		t.Error("recorded channel loss replayed as delivery")
	}
	// Seq 1 is not in the trace: the caller's coin decides.
	if !r.Outcome(1, 2, 1, int(phy.KindData), true) {
		t.Error("untraced frame ignored the fallback coin")
	}
	if r.Outcome(1, 2, 2, int(phy.KindData), true) {
		t.Error("recorded delivery replayed as loss")
	}
	if r.Err() != nil {
		t.Fatalf("premature divergence: %v", r.Err())
	}
	// Seq 3 was recorded as dropped by SINR — it never reached the
	// channel decision. Reaching it now is a divergence (coin decides).
	if !r.Outcome(1, 2, 3, int(phy.KindData), true) {
		t.Error("diverged frame ignored the fallback coin")
	}
	if r.Err() == nil {
		t.Error("divergence not reported")
	}
	if r.Matched() != 2 || r.Consulted() != 4 {
		t.Errorf("matched=%d consulted=%d, want 2/4", r.Matched(), r.Consulted())
	}

	// An entirely untraced link falls back to the coin, no divergence.
	r2 := NewReplay(ct)
	if !r2.Outcome(9, 8, 0, int(phy.KindData), true) {
		t.Error("untraced link ignored the fallback coin")
	}
	if r2.Err() != nil {
		t.Errorf("untraced link diverged: %v", r2.Err())
	}

	// Pre-channel drops before the queried seq are skipped silently.
	ct3 := NewCollector()
	ct3.Add(l, Event{Seq: 0, Kind: int(phy.KindData), Out: OutUnlocked})
	ct3.Add(l, Event{Seq: 1, Kind: int(phy.KindData), Out: OutDelivered})
	r3 := NewReplay(ct3)
	if r3.Outcome(1, 2, 1, int(phy.KindData), true) {
		t.Error("skip over a pre-channel drop broke the match")
	}
	if r3.Err() != nil {
		t.Errorf("skipped pre-channel drop counted as divergence: %v", r3.Err())
	}
}

// TestReplayLostMirrorsDraw: Lost must consume exactly one rng draw iff
// p > 0, keeping the stream bit-aligned with the stochastic channel it
// replaces.
func TestReplayLostMirrorsDraw(t *testing.T) {
	ct := NewCollector()
	ct.Add(Link{Src: 1, Dst: 2}, Event{Seq: 0, Kind: int(phy.KindData), Out: OutDelivered})
	ct.Add(Link{Src: 1, Dst: 2}, Event{Seq: 1, Kind: int(phy.KindData), Out: OutDelivered})
	r := NewReplay(ct)
	f := &phy.Frame{Src: 1, Dst: 2, Kind: phy.KindData, Seq: 0}

	rng := rand.New(rand.NewSource(99))
	mirror := rand.New(rand.NewSource(99))
	if r.Lost(f, 2, 0.5, rng) {
		t.Error("recorded delivery replayed as loss")
	}
	mirror.Float64() // the stochastic channel would have drawn once
	if rng.Float64() != mirror.Float64() {
		t.Error("Lost with p>0 did not consume exactly one draw")
	}

	f.Seq = 1
	if r.Lost(f, 2, 0, rng) {
		t.Error("recorded delivery replayed as loss")
	}
	if rng.Float64() != mirror.Float64() {
		t.Error("Lost with p=0 consumed a draw (the stochastic channel draws iff p>0)")
	}
}

// TestDiffDetects covers the three divergence classes: a changed event,
// a count mismatch, and a link present on one side only.
func TestDiffDetects(t *testing.T) {
	mk := func(events ...Event) *CellTrace {
		ct := NewCollector()
		for _, e := range events {
			ct.Add(Link{Src: 1, Dst: 2}, e)
		}
		return ct
	}
	base := Event{Seq: 0, Kind: int(phy.KindData), Out: OutDelivered}
	flipped := base
	flipped.Out = OutChannel

	if rep := Diff(Trace{0: mk(base)}, Trace{0: mk(base)}); !rep.Identical() {
		t.Fatal("identical traces diverge")
	}
	if rep := Diff(Trace{0: mk(base)}, Trace{0: mk(flipped)}); rep.Identical() {
		t.Fatal("flipped outcome not detected")
	}
	if rep := Diff(Trace{0: mk(base)}, Trace{0: mk(base, base)}); rep.Identical() {
		t.Fatal("event count mismatch not detected")
	}
	other := NewCollector()
	other.Add(Link{Src: 3, Dst: 4}, base)
	if rep := Diff(Trace{0: mk(base)}, Trace{0: other}); rep.Identical() {
		t.Fatal("link-set mismatch not detected")
	}
	if rep := Diff(Trace{0: mk(base)}, Trace{1: mk(base)}); rep.Identical() {
		t.Fatal("cell-set mismatch not detected")
	}
}
