// Package trace is the capture/replay subsystem: per-link delivery
// decisions recorded as first-class records and replayed through the
// PHY's loss-decision interface.
//
// Capture is a phy.Tracer that appends every delivery decision the
// medium makes (src, dst, seq, sim time, rate, frame bytes,
// delivered/lost + cause) to an in-memory collector. Collected events
// serialize through sink.Record — one "trace"-series record per
// directed link, in first-appearance order — so captured traces ride
// the ordinary JSONL stream and inherit the shard/merge/coord/steal/
// serve byte-identity contract for free.
//
// Replay is a phy.Channel built from a decoded trace: instead of
// drawing the Bernoulli channel-error process it returns the recorded
// outcome for each (src, dst, seq) decision, mirroring the rng draws
// the stochastic channel would have consumed so every other consumer
// of the stream (fade draws, MAC backoff) stays aligned. Divergence —
// a frame reaching the channel decision that the recording says never
// did — is counted and reported loudly through Err.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
)

// Series is the record series name trace records are emitted under.
const Series = "trace"

// Link identifies one directed link (or, for broadcast frames, one
// src->observer pair).
type Link struct {
	Src, Dst int
}

func (l Link) String() string { return fmt.Sprintf("%d->%d", l.Src, l.Dst) }

// Outcome codes, as stored in trace records. They mirror phy.LossCause
// with 0 = delivered.
const (
	OutDelivered = int(phy.CauseNone)
	OutSINR      = int(phy.CauseSINR)
	OutChannel   = int(phy.CauseChannel)
	OutUnlocked  = int(phy.CauseUnlocked)
)

func outName(out int) string { return phy.LossCause(out).String() }

// Event is one recorded per-link delivery decision. All fields fit in
// float64 without rounding (values stay far below 2^53), so an event
// round-trips the JSONL wire format exactly.
type Event struct {
	T     sim.Time
	Seq   int64
	Kind  int
	Rate  int
	Bytes int
	Out   int
}

// Collector accumulates decisions grouped per directed link, preserving
// both the per-link event order and the link first-appearance order.
// It implements phy.Tracer. Not safe for concurrent use; each simulated
// cell owns its own collector.
type Collector struct {
	order  []Link
	byLink map[Link][]Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byLink: make(map[Link][]Event)}
}

// Decide implements phy.Tracer.
func (c *Collector) Decide(d phy.Decision) {
	c.Add(Link{Src: d.Src, Dst: d.Dst}, Event{
		T:     d.T,
		Seq:   d.Seq,
		Kind:  int(d.Kind),
		Rate:  int(d.Rate),
		Bytes: d.Bytes,
		Out:   causeOut(d),
	})
}

func causeOut(d phy.Decision) int {
	if d.Delivered {
		return OutDelivered
	}
	return int(d.Cause)
}

// Add appends one event to a link's series.
func (c *Collector) Add(l Link, e Event) {
	if _, ok := c.byLink[l]; !ok {
		c.order = append(c.order, l)
	}
	c.byLink[l] = append(c.byLink[l], e)
}

// Links returns the collected links in first-appearance order.
func (c *Collector) Links() []Link { return c.order }

// Events returns the event series for one link, in decision order.
func (c *Collector) Events(l Link) []Event { return c.byLink[l] }

// CellTrace is one cell's decoded (or collected) trace: per-link event
// series in link order.
type CellTrace = Collector

// CellCapture is the per-cell capture handle the experiment engine
// hands to a running cell (exp.Options.Capture). It is a phy.Tracer —
// experiments that own a phy.Medium install it with Install — and an
// exp.Capture: after the cell runs, Records renders the collected
// events as "trace"-series records, one per link.
//
// A CellCapture may also carry a Replay; Install then replaces the
// medium's stochastic channel with the recorded trace, which is how
// `meshopt trace replay` re-runs a workload against its recording.
type CellCapture struct {
	col    *Collector
	replay *Replay
}

// NewCellCapture returns a capture with an empty collector.
func NewCellCapture() *CellCapture {
	return &CellCapture{col: NewCollector()}
}

// NewCellCaptureReplay returns a capture that also installs r as the
// medium's channel. r may be nil (plain capture).
func NewCellCaptureReplay(r *Replay) *CellCapture {
	return &CellCapture{col: NewCollector(), replay: r}
}

// Decide implements phy.Tracer.
func (c *CellCapture) Decide(d phy.Decision) { c.col.Decide(d) }

// Install attaches the capture to a medium: the tracer always, and the
// replay channel when one is carried.
func (c *CellCapture) Install(m *phy.Medium) {
	m.SetTracer(c)
	if c.replay != nil {
		m.SetChannel(c.replay)
	}
}

// Replay returns the carried replay, or nil.
func (c *CellCapture) Replay() *Replay { return c.replay }

// Collector returns the capture's collector (the freshly captured
// events).
func (c *CellCapture) Collector() *Collector { return c.col }

// Adopt copies an externally collected event series for one link into
// this capture. Experiments with a phase shared across cells (fig10's
// probe sim) collect once into a shared collector and each cell adopts
// only its own link's events, which keeps record placement independent
// of which cell happened to build the shared phase.
func (c *CellCapture) Adopt(l Link, events []Event) {
	for _, e := range events {
		c.col.Add(l, e)
	}
}

// Records implements exp.Capture: the collected events as one
// "trace"-series record per link, in first-appearance order. The
// engine stamps Scenario and Cell.
func (c *CellCapture) Records() []sink.Record {
	recs := make([]sink.Record, 0, len(c.col.order))
	for _, l := range c.col.order {
		events := c.col.byLink[l]
		n := len(events)
		seq := make([]float64, n)
		t := make([]float64, n)
		kind := make([]float64, n)
		rate := make([]float64, n)
		bytes := make([]float64, n)
		out := make([]float64, n)
		for i, e := range events {
			seq[i] = float64(e.Seq)
			t[i] = float64(e.T)
			kind[i] = float64(e.Kind)
			rate[i] = float64(e.Rate)
			bytes[i] = float64(e.Bytes)
			out[i] = float64(e.Out)
		}
		recs = append(recs, sink.Record{
			Series: Series,
			Fields: []sink.Field{
				sink.F("src", l.Src),
				sink.F("dst", l.Dst),
				sink.F("n", n),
				sink.F("seq", seq),
				sink.F("t", t),
				sink.F("kind", kind),
				sink.F("rate", rate),
				sink.F("bytes", bytes),
				sink.F("out", out),
			},
		})
	}
	return recs
}

// Trace is a decoded multi-cell trace: cell index -> that cell's
// per-link events.
type Trace map[int]*CellTrace

// Cells returns the trace's cell indices in ascending order.
func (tr Trace) Cells() []int {
	cells := make([]int, 0, len(tr))
	for c := range tr {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	return cells
}

// Events counts every recorded decision in the trace.
func (tr Trace) Events() int {
	n := 0
	for _, ct := range tr {
		for _, l := range ct.order {
			n += len(ct.byLink[l])
		}
	}
	return n
}

// Decode rebuilds a Trace from a record stream, keeping only
// "trace"-series records. Per-link event order and per-cell link order
// are preserved; the global cross-link decision interleaving is not
// (the replay queues and the diff are both per-link, so it is not
// needed).
func Decode(records []sink.Record) (Trace, error) {
	tr := Trace{}
	for _, rec := range records {
		if rec.Series != Series {
			continue
		}
		l := Link{Src: rec.Int("src"), Dst: rec.Int("dst")}
		n := rec.Int("n")
		seq := rec.Floats("seq")
		t := rec.Floats("t")
		kind := rec.Floats("kind")
		rate := rec.Floats("rate")
		bytes := rec.Floats("bytes")
		out := rec.Floats("out")
		if len(seq) != n || len(t) != n || len(kind) != n || len(rate) != n || len(bytes) != n || len(out) != n {
			return nil, fmt.Errorf("trace: cell %d link %s: array lengths disagree with n=%d", rec.Cell, l, n)
		}
		ct := tr[rec.Cell]
		if ct == nil {
			ct = NewCollector()
			tr[rec.Cell] = ct
		}
		for i := 0; i < n; i++ {
			ct.Add(l, Event{
				T:     sim.Time(t[i]),
				Seq:   int64(seq[i]),
				Kind:  int(kind[i]),
				Rate:  int(rate[i]),
				Bytes: int(bytes[i]),
				Out:   int(out[i]),
			})
		}
	}
	return tr, nil
}

// CaptureSet is a concurrency-safe registry of per-cell captures; the
// `trace` CLI's Options.Capture factories use it to keep a handle on
// every capture the engine hands out (cells run on parallel workers).
type CaptureSet struct {
	mu     sync.Mutex
	byCell map[int]*CellCapture
}

// NewCaptureSet returns an empty set.
func NewCaptureSet() *CaptureSet {
	return &CaptureSet{byCell: make(map[int]*CellCapture)}
}

// Add registers a cell's capture and returns it.
func (s *CaptureSet) Add(cell int, c *CellCapture) *CellCapture {
	s.mu.Lock()
	s.byCell[cell] = c
	s.mu.Unlock()
	return c
}

// Captures returns a snapshot of the registered captures, keyed by
// cell.
func (s *CaptureSet) Captures() map[int]*CellCapture {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*CellCapture, len(s.byCell))
	for cell, c := range s.byCell {
		out[cell] = c
	}
	return out
}

// Replays returns every carried replay, keyed by cell.
func (s *CaptureSet) Replays() map[int]*Replay {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*Replay, len(s.byCell))
	for cell, c := range s.byCell {
		if c.replay != nil {
			out[cell] = c.replay
		}
	}
	return out
}
