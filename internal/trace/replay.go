package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/phy"
)

// Replay is a phy.Channel backed by one cell's recorded trace: every
// channel-error decision returns the recorded outcome for that frame
// instead of a fresh Bernoulli draw.
//
// Two contracts make this exact:
//
//   - rng mirroring. The stochastic channel consumes one draw iff
//     p > 0, from the same stream that feeds the fade draws. Lost
//     performs the identical draw before consulting the trace, so the
//     stream stays bit-aligned whether or not a replay is installed.
//
//   - per-link cursors. Recorded events on one directed link occur in
//     seq order (a source serializes its transmissions). The cursor
//     skips recorded events whose seq precedes the queried frame —
//     those were dropped before the channel decision (SINR, unlocked)
//     and never produce a Lost call — and matches the queried frame by
//     exact (seq, kind). A frame with no recorded event (an overheard
//     unicast decode at a third party, which capture deliberately does
//     not trace) falls back to the mirrored draw, preserving the
//     stochastic behaviour without disturbing the queues.
//
// Divergence — a frame reaching the channel decision that the recording
// says was dropped earlier — is counted and reported by Err.
type Replay struct {
	q      map[Link][]Event
	cursor map[Link]int

	consulted int // Lost/Outcome calls
	matched   int // calls answered from the trace
	diverged  int
	firstDiag string
}

// NewReplay builds a replay channel from one cell's trace. The trace is
// read, never modified.
func NewReplay(ct *CellTrace) *Replay {
	r := &Replay{q: make(map[Link][]Event), cursor: make(map[Link]int)}
	if ct != nil {
		for _, l := range ct.order {
			r.q[l] = ct.byLink[l]
		}
	}
	return r
}

// Lost implements phy.Channel: mirror the stochastic draw, then answer
// from the recorded trace.
func (r *Replay) Lost(f *phy.Frame, dst int, p float64, rng *rand.Rand) bool {
	coin := false
	if p > 0 {
		coin = rng.Float64() < p
	}
	return r.Outcome(f.Src, dst, f.Seq, int(f.Kind), coin)
}

// Outcome answers one channel decision for (src, dst, seq, kind) from
// the trace, falling back to coin (the caller's own mirrored draw) for
// frames the trace does not cover. Broadcast dissemination's relay loop
// — which draws its coins outside phy — consults this directly.
func (r *Replay) Outcome(src, dst int, seq int64, kind int, coin bool) bool {
	r.consulted++
	l := Link{Src: src, Dst: dst}
	q, ok := r.q[l]
	if !ok {
		return coin
	}
	i := r.cursor[l]
	for i < len(q) && q[i].Seq < seq {
		i++ // dropped before the channel decision; no Lost call recorded
	}
	r.cursor[l] = i
	if i >= len(q) || q[i].Seq != seq || q[i].Kind != kind {
		return coin // untraced frame on a traced link
	}
	ev := q[i]
	r.cursor[l] = i + 1
	switch ev.Out {
	case OutDelivered:
		r.matched++
		return false
	case OutChannel:
		r.matched++
		return true
	default:
		// The recording says this frame never reached the channel
		// decision (dropped by SINR or never locked) — the replayed
		// execution has diverged from the recorded one.
		r.diverged++
		if r.firstDiag == "" {
			r.firstDiag = fmt.Sprintf("link %s seq %d: recorded outcome %q, but the frame reached the channel decision",
				l, seq, outName(ev.Out))
		}
		return coin
	}
}

// Matched reports how many channel decisions were answered from the
// trace.
func (r *Replay) Matched() int { return r.matched }

// Consulted reports how many channel decisions were made while this
// replay was installed.
func (r *Replay) Consulted() int { return r.consulted }

// Err reports divergence between the replayed execution and the
// recorded one: nil means every consulted decision was consistent with
// the trace.
func (r *Replay) Err() error {
	if r.diverged == 0 {
		return nil
	}
	return fmt.Errorf("trace: replay diverged on %d decision(s); first: %s", r.diverged, r.firstDiag)
}
