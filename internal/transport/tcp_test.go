package transport

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestSingleFlowFillsCleanLink(t *testing.T) {
	nw := topology.Chain(1, 2, 60, phy.Rate11)
	f := NewFlow(nw.Sim, nw.Node(0), nw.Node(1), 1)
	f.Start()
	nw.Sim.Run(10 * sim.Second)
	f.Stop()
	bps := f.GoodputBps()
	// TCP with reverse ACK airtime reaches a bit less than UDP maxUDP
	// (~6 Mb/s); anything above 4 Mb/s shows a healthy pipe.
	if bps < 4e6 {
		t.Fatalf("TCP goodput = %.2f Mb/s on a clean 11 Mb/s link", bps/1e6)
	}
	if f.Timeouts > 3 {
		t.Fatalf("%d timeouts on a clean link", f.Timeouts)
	}
}

func TestInOrderDelivery(t *testing.T) {
	nw := topology.Chain(2, 2, 60, phy.Rate11)
	nw.Medium.SetBER(0, 1, 1e-5) // some loss to force retransmissions
	f := NewFlow(nw.Sim, nw.Node(0), nw.Node(1), 1)
	f.Start()
	nw.Sim.Run(10 * sim.Second)
	f.Stop()
	if f.DeliveredSegs == 0 {
		t.Fatal("no progress")
	}
	// rcvNxt only advances in order; DeliveredSegs == rcvNxt.
	if f.rcvNxt != f.DeliveredSegs {
		t.Fatalf("delivered %d but rcvNxt %d", f.DeliveredSegs, f.rcvNxt)
	}
}

func TestLossTriggersRetransmitsButProgresses(t *testing.T) {
	nw := topology.Chain(3, 2, 60, phy.Rate11)
	nw.Medium.SetBER(0, 1, 2.5e-5) // ~9.5% residual pre-retry loss
	f := NewFlow(nw.Sim, nw.Node(0), nw.Node(1), 1)
	f.Start()
	nw.Sim.Run(15 * sim.Second)
	f.Stop()
	if f.GoodputBps() < 1e6 {
		t.Fatalf("goodput = %.2f Mb/s under moderate loss", f.GoodputBps()/1e6)
	}
}

func TestMultiHopFlow(t *testing.T) {
	nw := topology.Chain(4, 3, 70, phy.Rate11)
	f := NewFlow(nw.Sim, nw.Node(2), nw.Node(0), 1)
	f.Start()
	nw.Sim.Run(10 * sim.Second)
	f.Stop()
	// Two hops share the channel; also carries reverse ACKs.
	if f.GoodputBps() < 1.4e6 {
		t.Fatalf("2-hop TCP goodput = %.2f Mb/s", f.GoodputBps()/1e6)
	}
}

func TestShaperCapsTCP(t *testing.T) {
	nw := topology.Chain(5, 2, 60, phy.Rate11)
	f := NewFlow(nw.Sim, nw.Node(0), nw.Node(1), 1)
	sh := rate.NewShaper(nw.Sim, nw.Node(0), 1.5e6)
	f.SetShaper(sh)
	f.Start()
	nw.Sim.Run(10 * sim.Second)
	f.Stop()
	bps := f.GoodputBps()
	if bps > 1.7e6 {
		t.Fatalf("shaped TCP exceeded limit: %.2f Mb/s", bps/1e6)
	}
	if bps < 1.1e6 {
		t.Fatalf("shaped TCP collapsed: %.2f Mb/s", bps/1e6)
	}
}

func TestTwoFlowsShareCleanChannel(t *testing.T) {
	// Both flows to a common sink over one hop each; same collision
	// domain, everyone in CS range: both must make progress.
	nw := topology.Chain(6, 3, 70, phy.Rate11)
	f1 := NewFlow(nw.Sim, nw.Node(1), nw.Node(0), 1)
	f2 := NewFlow(nw.Sim, nw.Node(2), nw.Node(0), 2)
	// f2 crosses two hops via node 1.
	f1.Start()
	f2.Start()
	nw.Sim.Run(15 * sim.Second)
	f1.Stop()
	f2.Stop()
	if f1.GoodputBps() < 1e6 {
		t.Fatalf("1-hop flow starved: %.2f Mb/s", f1.GoodputBps()/1e6)
	}
	if f2.GoodputBps() == 0 {
		t.Fatal("2-hop flow made zero progress")
	}
}

// The Fig. 13 phenomenon: with the far node hidden from the gateway, the
// 2-hop upstream flow starves because its relayed data and the gateway's
// ACKs collide.
func TestHiddenTerminalStarvesTwoHopFlow(t *testing.T) {
	nw := topology.GatewayScenario(7, phy.Rate1)
	oneHop := NewFlow(nw.Sim, nw.Node(1), nw.Node(0), 1)
	twoHop := NewFlow(nw.Sim, nw.Node(2), nw.Node(0), 2)
	oneHop.Start()
	twoHop.Start()
	nw.Sim.Run(30 * sim.Second)
	oneHop.Stop()
	twoHop.Stop()
	b1, b2 := oneHop.GoodputBps(), twoHop.GoodputBps()
	if b1 < 0.3e6 {
		t.Fatalf("1-hop flow weak: %.3f Mb/s", b1/1e6)
	}
	if b2 > 0.35*b1 {
		t.Fatalf("expected starvation: 2-hop %.3f vs 1-hop %.3f Mb/s", b2/1e6, b1/1e6)
	}
}

func TestRTOGrowsAndRecovers(t *testing.T) {
	nw := topology.Chain(8, 2, 60, phy.Rate11)
	f := NewFlow(nw.Sim, nw.Node(0), nw.Node(1), 1)
	// Kill the link completely for a while.
	nw.Medium.SetBER(0, 1, 1)
	f.Start()
	nw.Sim.Run(5 * sim.Second)
	if f.Timeouts == 0 {
		t.Fatal("no timeouts on a dead link")
	}
	if f.DeliveredSegs != 0 {
		t.Fatal("segments delivered over a dead link")
	}
	// Heal the link; the flow must resume.
	nw.Medium.SetBER(0, 1, 0)
	before := f.DeliveredSegs
	nw.Sim.Run(nw.Sim.Now() + 20*sim.Second)
	f.Stop()
	if f.DeliveredSegs <= before {
		t.Fatal("flow did not recover after link healed")
	}
}
