// Package transport implements a miniature window-based TCP over the mesh
// network layer: slow start, AIMD congestion avoidance, duplicate-ACK fast
// retransmit, and Jacobson/Karels retransmission timeouts, with per-packet
// cumulative ACKs flowing back through the mesh.
//
// It reproduces the transport behaviours the paper's §6 evaluation depends
// on — notably upstream starvation of multi-hop flows when TCP ACKs
// collide with data (Shi et al.), and the stabilizing effect of
// network-layer rate limiting — without byte-level TCP fidelity.
package transport

import (
	"repro/internal/node"
	"repro/internal/rate"
	"repro/internal/sim"
)

// Segment sizes (bytes). MSS mirrors Ethernet-framed TCP; ACKBytes covers
// a TCP/IP ACK.
const (
	MSS      = 1460
	ACKBytes = 40
	// HeaderBytes is the IP+TCP header size, used by the paper's ACK
	// airtime scale factor.
	HeaderBytes = 52
)

// segment is the transport payload carried inside node packets.
type segment struct {
	flow *Flow
	ack  bool
	seq  int64 // data: segment index; ack: cumulative next expected
}

// Flow is a one-direction TCP connection between two mesh nodes.
type Flow struct {
	s    *sim.Sim
	src  *node.Node
	dst  *node.Node
	id   int
	open bool

	// Sender state.
	cwnd     float64
	ssthresh float64
	nextSeq  int64
	sndUna   int64
	dupAcks  int
	sentAt   map[int64]sim.Time
	srtt     float64
	rttvar   float64
	rto      sim.Time
	rtxTimer *sim.Timer
	shaper   *rate.Shaper

	// Receiver state.
	rcvNxt int64
	ooo    map[int64]bool

	// Stats.
	DeliveredSegs int64 // in-order segments at the receiver
	Retransmits   int64
	Timeouts      int64

	startedAt sim.Time
}

const (
	initialRTO = 1 * sim.Second
	minRTO     = 200 * sim.Millisecond
	maxRTO     = 8 * sim.Second
	maxCwnd    = 64
)

// NewFlow creates a TCP flow from src to dst with the given flow id.
// Routes between src and dst (both directions) must be installed.
func NewFlow(s *sim.Sim, src, dst *node.Node, id int) *Flow {
	f := &Flow{
		s: s, src: src, dst: dst, id: id,
		cwnd:     2,
		ssthresh: 32,
		rto:      initialRTO,
		sentAt:   make(map[int64]sim.Time),
		ooo:      make(map[int64]bool),
	}
	hookDeliver(dst, f, f.onData)
	hookDeliver(src, f, f.onAck)
	return f
}

// hookDeliver chains a per-flow handler into a node's delivery path.
func hookDeliver(n *node.Node, f *Flow, h func(*segment)) {
	prev := n.Deliver
	n.Deliver = func(p *node.Packet) {
		if seg, ok := p.Payload.(*segment); ok && seg.flow == f {
			h(seg)
			return
		}
		if prev != nil {
			prev(p)
		}
	}
}

// SetShaper routes the flow's data segments through a rate shaper — the
// paper's rate-control module applied to TCP traffic.
func (f *Flow) SetShaper(sh *rate.Shaper) { f.shaper = sh }

// Start opens the flow (backlogged bulk transfer).
func (f *Flow) Start() {
	f.open = true
	f.startedAt = f.s.Now()
	f.trySend()
}

// Stop closes the flow.
func (f *Flow) Stop() {
	f.open = false
	if f.rtxTimer != nil {
		f.rtxTimer.Stop()
	}
}

// GoodputBps returns receiver-side in-order goodput since Start.
func (f *Flow) GoodputBps() float64 {
	dur := (f.s.Now() - f.startedAt).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(f.DeliveredSegs) * MSS * 8 / dur
}

// Cwnd returns the current congestion window in segments.
func (f *Flow) Cwnd() float64 { return f.cwnd }

func (f *Flow) inFlight() int64 { return f.nextSeq - f.sndUna }

func (f *Flow) trySend() {
	if !f.open {
		return
	}
	for float64(f.inFlight()) < f.cwnd {
		f.transmit(f.nextSeq)
		f.nextSeq++
	}
	f.armRTX()
}

func (f *Flow) transmit(seq int64) {
	p := &node.Packet{
		FlowID:  f.id,
		Src:     f.src.ID(),
		Dst:     f.dst.ID(),
		Bytes:   MSS,
		Seq:     seq,
		SentAt:  f.s.Now(),
		Payload: &segment{flow: f, seq: seq},
	}
	if _, resend := f.sentAt[seq]; !resend {
		f.sentAt[seq] = f.s.Now()
	} else {
		delete(f.sentAt, seq) // Karn: no RTT sample from retransmits
	}
	if f.shaper != nil {
		f.shaper.Send(p)
		return
	}
	f.src.Send(p)
}

func (f *Flow) armRTX() {
	if f.rtxTimer != nil {
		f.rtxTimer.Stop()
	}
	if f.inFlight() == 0 {
		return
	}
	f.rtxTimer = f.s.After(f.rto, f.onTimeout)
}

func (f *Flow) onTimeout() {
	if !f.open || f.inFlight() == 0 {
		return
	}
	f.Timeouts++
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < 2 {
		f.ssthresh = 2
	}
	f.cwnd = 1
	f.dupAcks = 0
	f.rto *= 2
	if f.rto > maxRTO {
		f.rto = maxRTO
	}
	f.Retransmits++
	f.transmit(f.sndUna)
	f.armRTX()
}

// onData runs at the receiver: advance the cumulative pointer through any
// buffered out-of-order segments and return an ACK.
func (f *Flow) onData(seg *segment) {
	if seg.seq >= f.rcvNxt {
		if seg.seq == f.rcvNxt {
			f.rcvNxt++
			f.DeliveredSegs++
			for f.ooo[f.rcvNxt] {
				delete(f.ooo, f.rcvNxt)
				f.rcvNxt++
				f.DeliveredSegs++
			}
		} else {
			f.ooo[seg.seq] = true
		}
	}
	f.dst.Send(&node.Packet{
		FlowID:  f.id,
		Src:     f.dst.ID(),
		Dst:     f.src.ID(),
		Bytes:   ACKBytes,
		Seq:     f.rcvNxt,
		SentAt:  f.s.Now(),
		Payload: &segment{flow: f, ack: true, seq: f.rcvNxt},
	})
}

// onAck runs at the sender.
func (f *Flow) onAck(seg *segment) {
	if !f.open {
		return
	}
	ackNo := seg.seq
	switch {
	case ackNo > f.sndUna:
		// New data acknowledged.
		if t0, ok := f.sentAt[ackNo-1]; ok {
			f.updateRTT(f.s.Now() - t0)
		}
		for s := f.sndUna; s < ackNo; s++ {
			delete(f.sentAt, s)
		}
		f.sndUna = ackNo
		f.dupAcks = 0
		if f.cwnd < f.ssthresh {
			f.cwnd++
		} else {
			f.cwnd += 1 / f.cwnd
		}
		if f.cwnd > maxCwnd {
			f.cwnd = maxCwnd
		}
		f.armRTX()
		f.trySend()
	case ackNo == f.sndUna && f.inFlight() > 0:
		f.dupAcks++
		if f.dupAcks == 3 {
			// Fast retransmit.
			f.ssthresh = f.cwnd / 2
			if f.ssthresh < 2 {
				f.ssthresh = 2
			}
			f.cwnd = f.ssthresh
			f.Retransmits++
			f.transmit(f.sndUna)
			f.armRTX()
		}
	}
}

func (f *Flow) updateRTT(sample sim.Time) {
	r := sample.Seconds()
	if f.srtt == 0 {
		f.srtt = r
		f.rttvar = r / 2
	} else {
		delta := r - f.srtt
		if delta < 0 {
			delta = -delta
		}
		f.rttvar = 0.75*f.rttvar + 0.25*delta
		f.srtt = 0.875*f.srtt + 0.125*r
	}
	f.rto = sim.Time((f.srtt + 4*f.rttvar) * 1e9)
	if f.rto < minRTO {
		f.rto = minRTO
	}
	if f.rto > maxRTO {
		f.rto = maxRTO
	}
}
