// Package rate provides the network-layer traffic shaper of the paper's
// rate-control module (§6.1, the Click BandwidthShaper analogue): a token
// bucket that releases queued packets at a configured bit rate. Shapers
// sit between a traffic source (UDP generator or TCP sender) and the
// node's forwarding path, which is exactly where the paper applies the
// optimizer's output rates.
package rate

import (
	"repro/internal/node"
	"repro/internal/sim"
)

// DefaultBucketDepth is the default burst allowance, in packets' worth of
// bytes, granted when the shaper is idle.
const DefaultBucketDepth = 2

// Shaper is a token-bucket rate limiter in front of a node's Send.
type Shaper struct {
	s *sim.Sim
	n *node.Node

	rateBps  float64 // token fill rate (payload bits/s); <= 0 blocks
	depthPkt int     // bucket depth in packets of the current size

	tokens   float64 // bits
	lastFill sim.Time
	queue    []*node.Packet
	queueCap int
	timer    *sim.Timer

	// Dropped counts packets rejected by the shaper queue.
	Dropped int64
	// Sent counts packets released downstream.
	Sent int64
}

// NewShaper creates a shaper for n at rateBps payload bits per second.
func NewShaper(s *sim.Sim, n *node.Node, rateBps float64) *Shaper {
	return &Shaper{
		s: s, n: n,
		rateBps:  rateBps,
		depthPkt: DefaultBucketDepth,
		queueCap: 200,
		lastFill: s.Now(),
	}
}

// SetRate reconfigures the shaper; takes effect immediately.
func (sh *Shaper) SetRate(rateBps float64) {
	sh.fill()
	sh.rateBps = rateBps
	sh.drain()
}

// Rate returns the configured rate in bits/s.
func (sh *Shaper) Rate() float64 { return sh.rateBps }

// QueueLen returns the number of packets waiting for tokens.
func (sh *Shaper) QueueLen() int { return len(sh.queue) }

// Send shapes p toward its destination. It reports false when the shaper
// queue is full and the packet was dropped.
func (sh *Shaper) Send(p *node.Packet) bool {
	if len(sh.queue) >= sh.queueCap {
		sh.Dropped++
		return false
	}
	sh.queue = append(sh.queue, p)
	sh.drain()
	return true
}

func (sh *Shaper) fill() {
	now := sh.s.Now()
	if sh.rateBps > 0 {
		sh.tokens += sh.rateBps * (now - sh.lastFill).Seconds()
		if limit := float64(8 * sh.depthPkt * sh.headPacketBytes()); sh.tokens > limit && limit > 0 {
			sh.tokens = limit
		}
	}
	sh.lastFill = now
}

func (sh *Shaper) headPacketBytes() int {
	if len(sh.queue) == 0 {
		return 1500
	}
	return sh.queue[0].Bytes
}

func (sh *Shaper) drain() {
	sh.fill()
	for len(sh.queue) > 0 {
		p := sh.queue[0]
		need := float64(8 * p.Bytes)
		if sh.tokens < need {
			break
		}
		sh.tokens -= need
		sh.queue = sh.queue[1:]
		sh.Sent++
		sh.n.Send(p)
	}
	if len(sh.queue) > 0 && sh.rateBps > 0 {
		need := float64(8*sh.queue[0].Bytes) - sh.tokens
		wait := sim.Time(need / sh.rateBps * 1e9)
		if wait < sim.Microsecond {
			wait = sim.Microsecond
		}
		if sh.timer != nil {
			sh.timer.Stop()
		}
		sh.timer = sh.s.After(wait, sh.drain)
	}
}
