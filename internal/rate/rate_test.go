package rate

import (
	"testing"

	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func setup(t *testing.T, rateBps float64) (*topology.TwoLinkResult, *Shaper, *traffic.Sink) {
	t.Helper()
	nw := topology.TwoLink(1, topology.CS, phy.Rate11, phy.Rate11)
	nw.InstallDirectRoute(nw.Link1)
	sh := NewShaper(nw.Sim, nw.Node(0), rateBps)
	sink := traffic.NewSink(nw.Sim, nw.Node(1))
	return nw, sh, sink
}

func pkt(seq int64) *node.Packet {
	return &node.Packet{FlowID: 0, Src: 0, Dst: 1, Bytes: 1000, Seq: seq}
}

func TestShaperLimitsRate(t *testing.T) {
	nw, sh, sink := setup(t, 1e6)
	// Offer 4 Mb/s into a 1 Mb/s shaper for 4 s.
	interval := sim.Time(2 * sim.Millisecond) // 1000B/2ms = 4 Mb/s
	var seq int64
	var emit func()
	emit = func() {
		seq++
		sh.Send(pkt(seq))
		if nw.Sim.Now() < 4*sim.Second {
			nw.Sim.After(interval, emit)
		}
	}
	emit()
	nw.Sim.Run(5 * sim.Second)
	got := float64(sink.Bytes(0)) * 8 / 5
	if got > 1.1e6 || got < 0.85e6 {
		t.Fatalf("shaped throughput = %.2f Mb/s, want ~1", got/1e6)
	}
}

func TestShaperPassesUnderloadedTraffic(t *testing.T) {
	nw, sh, sink := setup(t, 5e6)
	for i := int64(1); i <= 50; i++ {
		i := i
		nw.Sim.At(sim.Time(i)*20*sim.Millisecond, func() { sh.Send(pkt(i)) })
	}
	nw.Sim.Run(2 * sim.Second)
	if sink.Packets(0) != 50 {
		t.Fatalf("delivered %d/50 under-rate packets", sink.Packets(0))
	}
	if sh.Dropped != 0 {
		t.Fatalf("dropped %d packets while under rate", sh.Dropped)
	}
}

func TestShaperQueueOverflowDrops(t *testing.T) {
	_, sh, _ := setup(t, 1) // essentially blocked
	for i := int64(0); i < 500; i++ {
		sh.Send(pkt(i))
	}
	if sh.Dropped == 0 {
		t.Fatal("expected drops from a blocked shaper")
	}
	if sh.QueueLen() > 200 {
		t.Fatalf("queue grew to %d beyond cap", sh.QueueLen())
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	nw, sh, sink := setup(t, 0.2e6)
	var seq int64
	var emit func()
	emit = func() {
		seq++
		sh.Send(pkt(seq))
		if nw.Sim.Now() < 6*sim.Second {
			nw.Sim.After(2*sim.Millisecond, emit)
		}
	}
	emit()
	nw.Sim.At(3*sim.Second, func() {
		sink.Reset()
		sh.SetRate(2e6)
	})
	nw.Sim.Run(6 * sim.Second)
	got := sink.ThroughputBps(0)
	if got < 1.6e6 || got > 2.3e6 {
		t.Fatalf("post-retune throughput = %.2f Mb/s, want ~2", got/1e6)
	}
}

func TestZeroRateBlocks(t *testing.T) {
	nw, sh, sink := setup(t, 0)
	for i := int64(0); i < 10; i++ {
		sh.Send(pkt(i))
	}
	nw.Sim.Run(sim.Second)
	if sink.Packets(0) != 0 {
		t.Fatal("zero-rate shaper leaked packets")
	}
	sh.SetRate(1e6)
	nw.Sim.Run(2 * sim.Second)
	if sink.Packets(0) != 10 {
		t.Fatalf("after unblocking got %d/10", sink.Packets(0))
	}
}
