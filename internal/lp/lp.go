// Package lp is a dense two-phase primal simplex solver for the small
// linear programs that arise in the paper's optimization framework: the
// feasibility-polytope membership tests, the maximum-aggregate-throughput
// objective, the max-min objective, and the linear oracle inside the
// Frank–Wolfe iterations for general alpha-fair utilities.
//
// Problems have at most a few hundred variables and constraints, so a
// dense tableau with Bland's anti-cycling rule is simple and fast enough.
// Callers that solve the same problem shape repeatedly (the feasibility
// region answers thousands of membership queries against one constraint
// matrix) mutate coefficients in place with SetRHS/SetCoef and reuse a
// Workspace so no tableau is reallocated per query.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// Problem is a linear program over n nonnegative variables:
//
//	maximize  c · x
//	subject to A_i · x (op_i) b_i,  x >= 0.
type Problem struct {
	n    int
	c    []float64
	rows [][]float64
	ops  []Op
	rhs  []float64
}

// NewProblem creates a problem with n variables and the given objective
// coefficients (padded with zeros if shorter than n).
func NewProblem(n int, objective []float64) *Problem {
	c := make([]float64, n)
	copy(c, objective)
	return &Problem{n: n, c: c}
}

// AddConstraint appends coef · x (op) rhs. Missing coefficients are zero.
func (p *Problem) AddConstraint(coef []float64, op Op, rhs float64) {
	row := make([]float64, p.n)
	copy(row, coef)
	p.rows = append(p.rows, row)
	p.ops = append(p.ops, op)
	p.rhs = append(p.rhs, rhs)
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetRHS replaces the right-hand side of constraint i. It lets a cached
// problem be re-aimed at a new query point without rebuilding its rows.
func (p *Problem) SetRHS(i int, rhs float64) { p.rhs[i] = rhs }

// SetCoef replaces one coefficient of constraint i.
func (p *Problem) SetCoef(i, j int, v float64) { p.rows[i][j] = v }

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Workspace holds the tableau and scratch slices of a solve. Reusing one
// across Solve calls on same-shaped problems eliminates nearly all
// per-solve allocation. The x slice returned by SolveWS aliases the
// workspace and is only valid until the next solve on it.
type Workspace struct {
	flat    []float64   // tableau backing array
	t       [][]float64 // tableau rows into flat
	basis   []int
	artCols []bool
	obj     []float64
	cb      []float64
	x       []float64
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Solve runs two-phase simplex and returns the optimal x and objective.
func Solve(p *Problem) (x []float64, value float64, err error) {
	return p.SolveWS(&Workspace{})
}

// SolveWS is Solve with a caller-owned workspace. The returned x aliases
// ws and is overwritten by the next solve that uses ws.
func (p *Problem) SolveWS(ws *Workspace) (x []float64, value float64, err error) {
	m := len(p.rows)
	if m == 0 {
		// Unconstrained: optimum is 0 unless some c_j > 0 (unbounded).
		for _, cj := range p.c {
			if cj > eps {
				return nil, 0, ErrUnbounded
			}
		}
		return make([]float64, p.n), 0, nil
	}

	// Count slack/artificial columns, accounting for the sign flip that
	// normalizes negative right-hand sides.
	nSlack, nArt := 0, 0
	for i := range p.rows {
		op := p.ops[i]
		if p.rhs[i] < 0 {
			op = flipOp(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	total := p.n + nSlack + nArt
	width := total + 1 // last column is rhs

	// Build the tableau directly into the workspace; rows with b < 0 are
	// negated in place of the old copy-and-flip pass.
	ws.flat = growF(ws.flat, m*width)
	if cap(ws.t) < m {
		ws.t = make([][]float64, m)
	}
	ws.t = ws.t[:m]
	t := ws.t
	for i := range t {
		t[i] = ws.flat[i*width : (i+1)*width]
	}
	ws.basis = growI(ws.basis, m)
	basis := ws.basis
	ws.artCols = growB(ws.artCols, total)
	artCols := ws.artCols

	si, ai := p.n, p.n+nSlack
	for i := range p.rows {
		row := t[i]
		b, op := p.rhs[i], p.ops[i]
		if b >= 0 {
			copy(row, p.rows[i])
		} else {
			for j, v := range p.rows[i] {
				row[j] = -v
			}
			b = -b
			op = flipOp(op)
		}
		row[total] = b
		switch op {
		case LE:
			row[si] = 1
			basis[i] = si
			si++
		case GE:
			row[si] = -1
			si++
			row[ai] = 1
			artCols[ai] = true
			basis[i] = ai
			ai++
		case EQ:
			row[ai] = 1
			artCols[ai] = true
			basis[i] = ai
			ai++
		}
	}

	ws.obj = growF(ws.obj, total)
	obj := ws.obj
	ws.cb = growF(ws.cb, m)

	if nArt > 0 {
		// Phase I: minimize sum of artificials == maximize -sum.
		for j := range obj {
			if artCols[j] {
				obj[j] = -1
			}
		}
		val, err := simplex(t, basis, obj, artCols, false, ws.cb)
		if err != nil {
			return nil, 0, err
		}
		if val < -1e-7 {
			return nil, 0, ErrInfeasible
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		for i, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < total && !pivoted; j++ {
				if !artCols[j] && math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
				}
			}
			// If no pivot exists the row is all-zero: redundant, fine.
		}
	}

	// Phase II: original objective, artificials barred.
	clear(obj)
	copy(obj, p.c)
	value, err = simplex(t, basis, obj, artCols, true, ws.cb)
	if err != nil {
		return nil, 0, err
	}
	ws.x = growF(ws.x, p.n)
	x = ws.x
	for i, b := range basis {
		if b < p.n {
			x[b] = t[i][width-1]
		}
	}
	return x, value, nil
}

func flipOp(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return op
}

// simplex maximizes obj over the current tableau in place. barArt bars
// artificial columns from entering the basis (phase II). cb is caller
// scratch of length len(t).
func simplex(t [][]float64, basis []int, obj []float64, artCols []bool, barArt bool, cb []float64) (float64, error) {
	m := len(t)
	total := len(t[0]) - 1
	// Reduced costs maintained implicitly: z_j - c_j computed per round
	// from the basis. For these problem sizes this is plenty fast.
	for iter := 0; iter < 20000; iter++ {
		// Compute simplex multipliers via c_B and current rows.
		// reduced[j] = obj[j] - sum_i cB[i] * t[i][j]
		for i, b := range basis {
			cb[i] = obj[b]
		}
		entering := -1
		for j := 0; j < total; j++ {
			if barArt && artCols[j] {
				continue
			}
			rc := obj[j]
			for i := 0; i < m; i++ {
				if cb[i] != 0 {
					rc -= cb[i] * t[i][j]
				}
			}
			// Bland's rule: first improving column.
			if rc > eps {
				entering = j
				break
			}
		}
		if entering == -1 {
			// Optimal: objective value = sum cB * rhs.
			val := 0.0
			for i := 0; i < m; i++ {
				val += cb[i] * t[i][total]
			}
			return val, nil
		}
		// Ratio test (Bland: smallest basis index tie-break).
		leave := -1
		var best float64
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				ratio := t[i][total] / t[i][entering]
				if leave == -1 || ratio < best-eps ||
					(math.Abs(ratio-best) <= eps && basis[i] < basis[leave]) {
					leave, best = i, ratio
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(t, basis, leave, entering)
	}
	return 0, fmt.Errorf("lp: iteration limit exceeded")
}

func pivot(t [][]float64, basis []int, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
