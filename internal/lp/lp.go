// Package lp is a dense two-phase primal simplex solver for the small
// linear programs that arise in the paper's optimization framework: the
// feasibility-polytope membership tests, the maximum-aggregate-throughput
// objective, the max-min objective, and the linear oracle inside the
// Frank–Wolfe iterations for general alpha-fair utilities.
//
// Problems have at most a few hundred variables and constraints, so a
// dense tableau with Bland's anti-cycling rule is simple and fast enough.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// Problem is a linear program over n nonnegative variables:
//
//	maximize  c · x
//	subject to A_i · x (op_i) b_i,  x >= 0.
type Problem struct {
	n    int
	c    []float64
	rows [][]float64
	ops  []Op
	rhs  []float64
}

// NewProblem creates a problem with n variables and the given objective
// coefficients (padded with zeros if shorter than n).
func NewProblem(n int, objective []float64) *Problem {
	c := make([]float64, n)
	copy(c, objective)
	return &Problem{n: n, c: c}
}

// AddConstraint appends coef · x (op) rhs. Missing coefficients are zero.
func (p *Problem) AddConstraint(coef []float64, op Op, rhs float64) {
	row := make([]float64, p.n)
	copy(row, coef)
	p.rows = append(p.rows, row)
	p.ops = append(p.ops, op)
	p.rhs = append(p.rhs, rhs)
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve runs two-phase simplex and returns the optimal x and objective.
func Solve(p *Problem) (x []float64, value float64, err error) {
	m := len(p.rows)
	if m == 0 {
		// Unconstrained: optimum is 0 unless some c_j > 0 (unbounded).
		for _, cj := range p.c {
			if cj > eps {
				return nil, 0, ErrUnbounded
			}
		}
		return make([]float64, p.n), 0, nil
	}

	// Normalize to b >= 0 and classify rows.
	type rowSpec struct {
		a  []float64
		op Op
		b  float64
	}
	specs := make([]rowSpec, m)
	for i := range p.rows {
		a := append([]float64(nil), p.rows[i]...)
		op, b := p.ops[i], p.rhs[i]
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		specs[i] = rowSpec{a, op, b}
	}

	nSlack, nArt := 0, 0
	for _, s := range specs {
		switch s.op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	total := p.n + nSlack + nArt
	// Tableau: m rows x (total+1) cols; last col is rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	si, ai := p.n, p.n+nSlack
	artCols := make([]bool, total)
	for i, s := range specs {
		row := make([]float64, total+1)
		copy(row, s.a)
		row[total] = s.b
		switch s.op {
		case LE:
			row[si] = 1
			basis[i] = si
			si++
		case GE:
			row[si] = -1
			si++
			row[ai] = 1
			artCols[ai] = true
			basis[i] = ai
			ai++
		case EQ:
			row[ai] = 1
			artCols[ai] = true
			basis[i] = ai
			ai++
		}
		t[i] = row
	}

	if nArt > 0 {
		// Phase I: minimize sum of artificials == maximize -sum.
		obj := make([]float64, total)
		for j := range obj {
			if artCols[j] {
				obj[j] = -1
			}
		}
		val, err := simplex(t, basis, obj, artCols, false)
		if err != nil {
			return nil, 0, err
		}
		if val < -1e-7 {
			return nil, 0, ErrInfeasible
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		for i, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < total && !pivoted; j++ {
				if !artCols[j] && math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
				}
			}
			// If no pivot exists the row is all-zero: redundant, fine.
		}
	}

	// Phase II: original objective, artificials barred.
	obj := make([]float64, total)
	copy(obj, p.c)
	value, err = simplex(t, basis, obj, artCols, true)
	if err != nil {
		return nil, 0, err
	}
	x = make([]float64, p.n)
	for i, b := range basis {
		if b < p.n {
			x[b] = t[i][len(t[i])-1]
		}
	}
	return x, value, nil
}

// simplex maximizes obj over the current tableau in place. barArt bars
// artificial columns from entering the basis (phase II).
func simplex(t [][]float64, basis []int, obj []float64, artCols []bool, barArt bool) (float64, error) {
	m := len(t)
	total := len(t[0]) - 1
	// Reduced costs maintained implicitly: z_j - c_j computed per round
	// from the basis. For these problem sizes this is plenty fast.
	for iter := 0; iter < 20000; iter++ {
		// Compute simplex multipliers via c_B and current rows.
		// reduced[j] = obj[j] - sum_i cB[i] * t[i][j]
		cb := make([]float64, m)
		for i, b := range basis {
			cb[i] = obj[b]
		}
		entering := -1
		var bestRC float64
		for j := 0; j < total; j++ {
			if barArt && artCols[j] {
				continue
			}
			rc := obj[j]
			for i := 0; i < m; i++ {
				if cb[i] != 0 {
					rc -= cb[i] * t[i][j]
				}
			}
			// Bland's rule: first improving column.
			if rc > eps {
				entering = j
				bestRC = rc
				break
			}
		}
		_ = bestRC
		if entering == -1 {
			// Optimal: objective value = sum cB * rhs.
			val := 0.0
			for i := 0; i < m; i++ {
				val += cb[i] * t[i][total]
			}
			return val, nil
		}
		// Ratio test (Bland: smallest basis index tie-break).
		leave := -1
		var best float64
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				ratio := t[i][total] / t[i][entering]
				if leave == -1 || ratio < best-eps ||
					(math.Abs(ratio-best) <= eps && basis[i] < basis[leave]) {
					leave, best = i, ratio
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(t, basis, leave, entering)
	}
	return 0, fmt.Errorf("lp: iteration limit exceeded")
}

func pivot(t [][]float64, basis []int, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
