package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x<=2, y<=3, x+y<=4 -> 4.
	p := NewProblem(2, []float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 2)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	p.AddConstraint([]float64{1, 1}, LE, 4)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 4, 1e-7) {
		t.Fatalf("value = %v, want 4", v)
	}
	if !approx(x[0]+x[1], 4, 1e-7) {
		t.Fatalf("x = %v", x)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max 2x+3y s.t. x+y=10, x<=4 -> x=4,y=6 -> 26.
	p := NewProblem(2, []float64{2, 3})
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum puts everything on y: x=0, y=10 -> 30. (x<=4 not binding.)
	if !approx(v, 30, 1e-7) || !approx(x[1], 10, 1e-7) {
		t.Fatalf("x=%v v=%v, want y=10 v=30", x, v)
	}
}

func TestGEConstraint(t *testing.T) {
	// max -x s.t. x >= 5 -> x=5, v=-5 (maximize -x == minimize x).
	p := NewProblem(1, []float64{-1})
	p.AddConstraint([]float64{1}, GE, 5)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 5, 1e-7) || !approx(v, -5, 1e-7) {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1, []float64{1})
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2, []float64{1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 1)
	if _, _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x <= 3 written as -x >= -3.
	p := NewProblem(1, []float64{1})
	p.AddConstraint([]float64{-1}, GE, -3)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 3, 1e-7) || !approx(x[0], 3, 1e-7) {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic degenerate instance; Bland's rule must terminate.
	p := NewProblem(4, []float64{0.75, -150, 0.02, -6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	_, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 0.05, 1e-7) {
		t.Fatalf("value = %v, want 0.05", v)
	}
}

func TestMaxMinStructure(t *testing.T) {
	// The max-min program used by the optimizer: max t s.t. y_s >= t,
	// y1+y2 <= 1. Optimum t = 0.5.
	// Variables: y1, y2, t.
	p := NewProblem(3, []float64{0, 0, 1})
	p.AddConstraint([]float64{1, 0, -1}, GE, 0)
	p.AddConstraint([]float64{0, 1, -1}, GE, 0)
	p.AddConstraint([]float64{1, 1, 0}, LE, 1)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 0.5, 1e-7) {
		t.Fatalf("max-min value = %v x=%v", v, x)
	}
}

func TestMixturePolytopeStructure(t *testing.T) {
	// The paper's constraint structure: y <= C alpha, sum alpha = 1.
	// Two links, extreme points (1,0) and (0,2) (time sharing).
	// max y1 + y2 -> pick alpha = (0,1): y = (0,2), value 2.
	// Vars: y1 y2 a1 a2.
	p := NewProblem(4, []float64{1, 1, 0, 0})
	p.AddConstraint([]float64{1, 0, -1, 0}, LE, 0)
	p.AddConstraint([]float64{0, 1, 0, -2}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 1}, EQ, 1)
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 2, 1e-7) {
		t.Fatalf("value = %v x=%v, want 2", v, x)
	}
}

// Random feasible LPs: simplex optimum must satisfy all constraints and
// weakly dominate a sample of random feasible points.
func TestPropertySimplexDominatesRandomFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()
		}
		p := NewProblem(n, c)
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() // nonnegative -> bounded
			}
			rhs[i] = 1 + rng.Float64()*5
			p.AddConstraint(rows[i], LE, rhs[i])
		}
		x, v, err := Solve(p)
		if err != nil {
			return false
		}
		// Verify feasibility of x.
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				if x[j] < -1e-9 {
					return false
				}
				dot += rows[i][j] * x[j]
			}
			if dot > rhs[i]+1e-6 {
				return false
			}
		}
		// Random feasible points must not beat the optimum.
		for trial := 0; trial < 30; trial++ {
			y := make([]float64, n)
			for j := range y {
				y[j] = rng.Float64() * 2
			}
			// Scale into feasibility.
			worst := 1.0
			for i := 0; i < m; i++ {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += rows[i][j] * y[j]
				}
				if dot > rhs[i] {
					if s := rhs[i] / dot; s < worst {
						worst = s
					}
				}
			}
			val := 0.0
			for j := 0; j < n; j++ {
				val += c[j] * y[j] * worst
			}
			if val > v+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	p := NewProblem(2, []float64{-1, -1})
	x, v, err := Solve(p)
	if err != nil || v != 0 || x[0] != 0 {
		t.Fatalf("x=%v v=%v err=%v", x, v, err)
	}
	p2 := NewProblem(1, []float64{1})
	if _, _, err := Solve(p2); err != ErrUnbounded {
		t.Fatal("want unbounded")
	}
}
