// Package routing implements the Srcr-style route computation used by the
// paper's system (§6.1): per-link ETX/ETT metrics derived from probe loss
// rates, Dijkstra shortest paths, and installation of next-hop forwarding
// state into nodes. The paper's only modification to Srcr — piggybacking
// channel-loss estimates on route updates — corresponds here to the
// metrics being fed straight from the probing subsystem.
package routing

import (
	"container/heap"
	"math"

	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/topology"
)

// LinkMetric carries the probing-derived quality of one directed link.
type LinkMetric struct {
	Link  topology.Link
	PData float64 // DATA-direction loss rate
	PAck  float64 // ACK-direction loss rate
	Rate  phy.Rate
}

// ETX is the expected transmission count 1/((1-pDATA)(1-pACK)).
func (m LinkMetric) ETX() float64 {
	d := (1 - m.PData) * (1 - m.PAck)
	if d <= 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// ETT is the expected transmission time: ETX scaled by the frame airtime
// at the link's rate (Draves et al.), in seconds.
func (m LinkMetric) ETT(payloadBytes int) float64 {
	return m.ETX() * phy.Airtime(m.Rate, payloadBytes).Seconds()
}

// Table is a routing table over a set of nodes.
type Table struct {
	n       int
	weight  [][]float64 // ETT weights; +Inf = no link
	nextHop [][]int     // nextHop[src][dst]
}

// BuildTable runs Dijkstra from every node over the given metrics.
// payloadBytes sets the ETT packet size (the paper uses the data size).
func BuildTable(numNodes int, metrics []LinkMetric, payloadBytes int) *Table {
	t := &Table{n: numNodes}
	t.weight = make([][]float64, numNodes)
	for i := range t.weight {
		t.weight[i] = make([]float64, numNodes)
		for j := range t.weight[i] {
			t.weight[i][j] = math.Inf(1)
		}
	}
	for _, m := range metrics {
		w := m.ETT(payloadBytes)
		if w < t.weight[m.Link.Src][m.Link.Dst] {
			t.weight[m.Link.Src][m.Link.Dst] = w
		}
	}
	t.nextHop = make([][]int, numNodes)
	for src := 0; src < numNodes; src++ {
		t.nextHop[src] = t.dijkstra(src)
	}
	return t
}

// dijkstra returns next hops from src toward every destination (-1 when
// unreachable).
func (t *Table) dijkstra(src int) []int {
	dist := make([]float64, t.n)
	prev := make([]int, t.n)
	done := make([]bool, t.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{}
	heap.Push(pq, distEntry{node: src, dist: 0})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if done[e.node] {
			continue
		}
		done[e.node] = true
		for v := 0; v < t.n; v++ {
			w := t.weight[e.node][v]
			if math.IsInf(w, 1) {
				continue
			}
			if nd := dist[e.node] + w; nd < dist[v] {
				dist[v] = nd
				prev[v] = e.node
				heap.Push(pq, distEntry{node: v, dist: nd})
			}
		}
	}
	// Walk predecessors back to find the first hop from src.
	next := make([]int, t.n)
	for dst := 0; dst < t.n; dst++ {
		if dst == src || prev[dst] == -1 {
			next[dst] = -1
			continue
		}
		hop := dst
		for prev[hop] != src {
			hop = prev[hop]
		}
		next[dst] = hop
	}
	return next
}

// NextHop returns the next hop from src toward dst (-1 if unreachable).
func (t *Table) NextHop(src, dst int) int {
	if src == dst {
		return src
	}
	return t.nextHop[src][dst]
}

// Path returns the full node path src..dst, or nil if unreachable.
func (t *Table) Path(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	path := []int{src}
	cur := src
	for cur != dst {
		nh := t.NextHop(cur, dst)
		if nh < 0 || len(path) > t.n {
			return nil
		}
		path = append(path, nh)
		cur = nh
	}
	return path
}

// PathLinks returns the directed links along the path src..dst.
func (t *Table) PathLinks(src, dst int) []topology.Link {
	p := t.Path(src, dst)
	if p == nil {
		return nil
	}
	links := make([]topology.Link, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		links = append(links, topology.Link{Src: p[i], Dst: p[i+1]})
	}
	return links
}

// Install writes the table's next hops into the nodes' forwarding state.
func (t *Table) Install(nodes []*node.Node) {
	for src, n := range nodes {
		n.ClearRoutes()
		for dst := 0; dst < t.n; dst++ {
			if dst == src {
				continue
			}
			if nh := t.NextHop(src, dst); nh >= 0 {
				n.SetRoute(dst, nh)
			}
		}
	}
}

type distEntry struct {
	node int
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
