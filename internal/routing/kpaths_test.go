package routing

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/topology"
)

func diamondMetrics() []LinkMetric {
	// 0 -> {1,2} -> 3, both branches clean.
	var out []LinkMetric
	for _, l := range []topology.Link{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 3},
		{Src: 0, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 1, Dst: 0}, {Src: 3, Dst: 1},
		{Src: 2, Dst: 0}, {Src: 3, Dst: 2},
	} {
		out = append(out, LinkMetric{Link: l, Rate: phy.Rate11})
	}
	return out
}

func TestKPathsDiamondFindsBothBranches(t *testing.T) {
	paths := KPaths(4, diamondMetrics(), 1470, 0, 3, 3)
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2: %v", len(paths), paths)
	}
	mids := map[int]bool{}
	for _, p := range paths {
		if len(p) != 2 {
			t.Fatalf("path %v has wrong length", p)
		}
		mids[p[0].Dst] = true
	}
	if !mids[1] || !mids[2] {
		t.Fatalf("branches = %v, want via 1 and via 2", mids)
	}
}

func TestKPathsOrderedByQuality(t *testing.T) {
	metrics := diamondMetrics()
	// Make the branch via 2 lossy so it ranks second.
	for i := range metrics {
		if metrics[i].Link == (topology.Link{Src: 0, Dst: 2}) {
			metrics[i].PData = 0.5
		}
	}
	paths := KPaths(4, metrics, 1470, 0, 3, 2)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0][0].Dst != 1 {
		t.Fatalf("best path goes via %d, want 1", paths[0][0].Dst)
	}
}

func TestKPathsSinglePathGraph(t *testing.T) {
	metrics := []LinkMetric{
		{Link: topology.Link{Src: 0, Dst: 1}, Rate: phy.Rate11},
		{Link: topology.Link{Src: 1, Dst: 2}, Rate: phy.Rate11},
	}
	paths := KPaths(3, metrics, 1470, 0, 2, 4)
	if len(paths) != 1 {
		t.Fatalf("chain should yield exactly one path, got %v", paths)
	}
}

func TestKPathsUnreachable(t *testing.T) {
	metrics := []LinkMetric{{Link: topology.Link{Src: 0, Dst: 1}, Rate: phy.Rate11}}
	if paths := KPaths(3, metrics, 1470, 0, 2, 2); paths != nil {
		t.Fatalf("unreachable destination yielded %v", paths)
	}
}

func TestKPathsSrcEqualsDst(t *testing.T) {
	paths := KPaths(4, diamondMetrics(), 1470, 1, 1, 2)
	if len(paths) != 1 || len(paths[0]) != 0 {
		t.Fatalf("self path = %v", paths)
	}
}
