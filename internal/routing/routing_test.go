package routing

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/topology"
)

func metric(src, dst int, p float64, r phy.Rate) LinkMetric {
	return LinkMetric{Link: topology.Link{Src: src, Dst: dst}, PData: p, Rate: r}
}

func TestETXCleanLink(t *testing.T) {
	m := metric(0, 1, 0, phy.Rate11)
	if m.ETX() != 1 {
		t.Fatalf("ETX = %v", m.ETX())
	}
}

func TestETXLossyBothDirections(t *testing.T) {
	m := LinkMetric{PData: 0.5, PAck: 0.5, Rate: phy.Rate11}
	if math.Abs(m.ETX()-4) > 1e-12 {
		t.Fatalf("ETX = %v, want 4", m.ETX())
	}
	if !math.IsInf(LinkMetric{PData: 1}.ETX(), 1) {
		t.Fatal("dead link must have infinite ETX")
	}
}

func TestETTPrefersFasterLink(t *testing.T) {
	slow := metric(0, 1, 0, phy.Rate1)
	fast := metric(0, 1, 0, phy.Rate11)
	if fast.ETT(1470) >= slow.ETT(1470) {
		t.Fatal("11 Mb/s ETT must beat 1 Mb/s")
	}
}

func TestDijkstraDirectVsRelay(t *testing.T) {
	// 0->2 direct is lossy (ETX 4); 0->1->2 clean. ETT should relay.
	metrics := []LinkMetric{
		metric(0, 2, 0.5, phy.Rate11), // ETX 2 one way
		metric(0, 1, 0, phy.Rate11),
		metric(1, 2, 0, phy.Rate11),
	}
	metrics[0].PAck = 0.5 // total ETX 4
	tab := BuildTable(3, metrics, 1470)
	if got := tab.NextHop(0, 2); got != 1 {
		t.Fatalf("next hop = %d, want relay via 1", got)
	}
	p := tab.Path(0, 2)
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("path = %v", p)
	}
}

func TestDijkstraPrefersDirectWhenClean(t *testing.T) {
	metrics := []LinkMetric{
		metric(0, 2, 0.05, phy.Rate11),
		metric(0, 1, 0, phy.Rate11),
		metric(1, 2, 0, phy.Rate11),
	}
	tab := BuildTable(3, metrics, 1470)
	if got := tab.NextHop(0, 2); got != 2 {
		t.Fatalf("next hop = %d, want direct", got)
	}
}

func TestUnreachable(t *testing.T) {
	tab := BuildTable(3, []LinkMetric{metric(0, 1, 0, phy.Rate11)}, 1470)
	if tab.NextHop(0, 2) != -1 {
		t.Fatal("unreachable destination must be -1")
	}
	if tab.Path(0, 2) != nil {
		t.Fatal("path to unreachable must be nil")
	}
}

func TestPathLinks(t *testing.T) {
	metrics := []LinkMetric{
		metric(0, 1, 0, phy.Rate11),
		metric(1, 2, 0, phy.Rate11),
		metric(2, 3, 0, phy.Rate11),
	}
	tab := BuildTable(4, metrics, 1470)
	links := tab.PathLinks(0, 3)
	want := []topology.Link{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	if len(links) != len(want) {
		t.Fatalf("links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links = %v, want %v", links, want)
		}
	}
}

func TestInstallIntoNodes(t *testing.T) {
	nw := topology.Chain(1, 4, 80, phy.Rate11)
	metrics := []LinkMetric{
		metric(0, 1, 0, phy.Rate11), metric(1, 0, 0, phy.Rate11),
		metric(1, 2, 0, phy.Rate11), metric(2, 1, 0, phy.Rate11),
		metric(2, 3, 0, phy.Rate11), metric(3, 2, 0, phy.Rate11),
	}
	tab := BuildTable(4, metrics, 1470)
	tab.Install(nw.Nodes)
	if nw.Node(0).NextHop(3) != 1 {
		t.Fatalf("installed next hop = %d", nw.Node(0).NextHop(3))
	}
	if nw.Node(3).NextHop(0) != 2 {
		t.Fatalf("reverse next hop = %d", nw.Node(3).NextHop(0))
	}
}

func TestETTAsymmetricLinksIndependent(t *testing.T) {
	// Forward clean, reverse lossy: routes may differ by direction.
	metrics := []LinkMetric{
		metric(0, 1, 0, phy.Rate11),
		metric(1, 0, 0.8, phy.Rate11),
		metric(1, 2, 0, phy.Rate11),
		metric(2, 1, 0, phy.Rate11),
		metric(0, 2, 0.1, phy.Rate11),
		metric(2, 0, 0, phy.Rate11),
	}
	tab := BuildTable(3, metrics, 1470)
	if tab.NextHop(2, 0) != 0 {
		t.Fatalf("2->0 should go direct (clean), got %d", tab.NextHop(2, 0))
	}
}
