package experiments

import (
	"fmt"
	"io"

	"repro/internal/core/feasibility"
	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig5Point is one sampled output-rate pair with its measured and
// modelled feasibility.
type Fig5Point struct {
	Y1, Y2     float64
	Measured   bool
	TwoPoint   bool
	ThreePoint bool
}

// Fig5Result reproduces the Fig. 5 IA example: the region fraction missed
// by the two-point model and recovered by the three-point model.
type Fig5Result struct {
	C11, C22, C31, C32 float64
	Points             []Fig5Point
	// MissedFraction is the share of measured-feasible points outside
	// the time-sharing region (the paper's worst case is ~40%).
	MissedFraction float64
	// RecoveredFraction is the share of those missed points the
	// three-point model recovers.
	RecoveredFraction float64
}

// fig5Cell is one grid-point injection cell. The extreme points are
// measured once in Cells and ride along so both the cell body and the
// reduction are pure functions of their inputs.
type fig5Cell struct {
	seed     int64
	sc       Scale
	y1, y2   float64
	in1, in2 float64    // loss-adjusted injection rates
	c        [4]float64 // C11, C22, C31, C32
}

// fig5Exp samples the feasibility region of an IA pair at 1 Mb/s. The
// extreme points are measured once (in Cells); every grid point is then
// an independent injection cell on its own copy of the two-link network
// (rebuilt from the same seed).
type fig5Exp struct{}

func (fig5Exp) Name() string { return "fig5" }
func (fig5Exp) Describe() string {
	return "three-point feasibility check on CS/IA/NF rate regions"
}

func (fig5Exp) Cells(seed int64, sc Scale) []exp.Cell {
	nw := topology.TwoLink(seed, topology.IA, phy.Rate1, phy.Rate1)
	solo1 := measure.MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, sc.PhaseDur)
	solo2 := measure.MaxUDP(nw.Network, nw.Link2, traffic.DefaultPayload, sc.PhaseDur)
	both := measure.Simultaneous(nw.Network, []topology.Link{nw.Link1, nw.Link2},
		traffic.DefaultPayload, sc.PhaseDur)
	c := [4]float64{solo1.ThroughputBps, solo2.ThroughputBps, both[0].ThroughputBps, both[1].ThroughputBps}
	n := sc.GridN
	var cells []exp.Cell
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			y1 := c[0] * float64(i) / float64(n)
			y2 := c[1] * float64(j) / float64(n)
			cells = append(cells, exp.Cell{Seed: seed, Data: fig5Cell{
				seed: seed, sc: sc,
				y1: y1, y2: y2,
				in1: y1 / (1 - solo1.LossRate), in2: y2 / (1 - solo2.LossRate),
				c: c,
			}})
		}
	}
	return cells
}

func (fig5Exp) RunCell(cell exp.Cell) sink.Record {
	d := cell.Data.(fig5Cell)
	two := feasibility.TwoLinkModel{C11: d.c[0], C22: d.c[1]}
	three := feasibility.TwoLinkModel{
		C11: d.c[0], C22: d.c[1],
		ThreePoint: true, C31: d.c[2], C32: d.c[3],
	}
	cnw := topology.TwoLink(d.seed, topology.IA, phy.Rate1, phy.Rate1)
	flows := []measure.Flow{
		{Src: cnw.Link1.Src, Dst: cnw.Link1.Dst},
		{Src: cnw.Link2.Src, Dst: cnw.Link2.Dst},
	}
	r := measure.InjectRates(cnw.Network, flows, []float64{d.in1, d.in2},
		traffic.DefaultPayload, d.sc.TrafficDur)
	return sink.Record{Fields: []sink.Field{
		sink.F("y1", d.y1),
		sink.F("y2", d.y2),
		sink.F("c11", d.c[0]),
		sink.F("c22", d.c[1]),
		sink.F("c31", d.c[2]),
		sink.F("c32", d.c[3]),
		sink.F("measured", r[0].OutputBps >= 0.98*d.y1 && r[1].OutputBps >= 0.98*d.y2),
		sink.F("twopoint", two.Feasible(d.y1, d.y2)),
		sink.F("threepoint", three.Feasible(d.y1, d.y2)),
	}}
}

func (fig5Exp) Reduce(recs <-chan sink.Record) exp.Result {
	var res Fig5Result
	var missed, recovered, feasible int
	for rec := range recs {
		if len(res.Points) == 0 {
			res.C11, res.C22 = rec.Float("c11"), rec.Float("c22")
			res.C31, res.C32 = rec.Float("c31"), rec.Float("c32")
		}
		pt := Fig5Point{
			Y1: rec.Float("y1"), Y2: rec.Float("y2"),
			Measured:   rec.Bool("measured"),
			TwoPoint:   rec.Bool("twopoint"),
			ThreePoint: rec.Bool("threepoint"),
		}
		res.Points = append(res.Points, pt)
		if pt.Measured {
			feasible++
			if !pt.TwoPoint {
				missed++
				if pt.ThreePoint {
					recovered++
				}
			}
		}
	}
	if feasible > 0 {
		res.MissedFraction = float64(missed) / float64(feasible)
	}
	if missed > 0 {
		res.RecoveredFraction = float64(recovered) / float64(missed)
	}
	return res
}

// RunFig5 samples the Fig. 5 feasibility region through the experiment
// engine.
func RunFig5(seed int64, sc Scale) Fig5Result {
	res, _ := exp.Run(fig5Exp{}, seed, sc, exp.Options{})
	return res.(Fig5Result)
}

// Print emits the extreme points and the missed/recovered fractions.
func (r Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: IA pair at 1 Mb/s, two-point vs three-point model")
	fmt.Fprintf(w, "primary points: (%.0f,0) (0,%.0f) kb/s; LIR point: (%.0f,%.0f)\n",
		r.C11/1e3, r.C22/1e3, r.C31/1e3, r.C32/1e3)
	fmt.Fprintf(w, "feasible points missed by time-sharing model: %.1f%%\n", 100*r.MissedFraction)
	fmt.Fprintf(w, "missed points recovered by three-point model: %.1f%%\n", 100*r.RecoveredFraction)
	fmt.Fprintln(w, "   y1(kbps)   y2(kbps) measured two-pt three-pt")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10.0f %10.0f %8v %7v %8v\n", p.Y1/1e3, p.Y2/1e3, p.Measured, p.TwoPoint, p.ThreePoint)
	}
}

// Fig6Row is the expected model error at one LIR threshold.
type Fig6Row struct {
	Threshold float64
	FP, FN    float64
}

// Fig6Result is the §4.4 threshold analysis fed by a measured LIR
// distribution.
type Fig6Result struct {
	Rows []Fig6Row
	// At095 is the operating point the paper reports (FP ~2%, FN ~13%).
	At095 feasibility.PairErrors
}

// fig6Exp is the §4.4 threshold sweep: it reuses fig3's cell enumeration
// and body (the measured LIR population is its input) and swaps the
// reduction for the threshold analysis.
type fig6Exp struct{ fig3Exp }

func (fig6Exp) Name() string { return "fig6" }
func (fig6Exp) Describe() string {
	return "LIR threshold sensitivity over the measured LIR population"
}

func (fig6Exp) Reduce(recs <-chan sink.Record) exp.Result {
	pop := fig3Gather(recs)
	lirs := append(append([]float64(nil), pop.LIR1...), pop.LIR11...)
	return RunFig6(lirs)
}

// RunFig6 sweeps LIR thresholds over a measured LIR population (the
// Fig. 3 LIRs when run as the registered fig6 experiment).
func RunFig6(lirs []float64) Fig6Result {
	var res Fig6Result
	for _, th := range []float64{0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99} {
		e := feasibility.ExpectedLIRErrors(lirs, th)
		res.Rows = append(res.Rows, Fig6Row{Threshold: th, FP: e.FP, FN: e.FN})
	}
	res.At095 = feasibility.ExpectedLIRErrors(lirs, 0.95)
	return res
}

// Print emits the threshold sweep.
func (r Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 / §4.4: expected FP/FN area errors vs LIR threshold")
	fmt.Fprintln(w, "threshold     FP      FN")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "   %.2f     %.3f   %.3f\n", row.Threshold, row.FP, row.FN)
	}
	fmt.Fprintf(w, "at 0.95: FP=%.3f FN=%.3f (paper: 0.02 / 0.133)\n", r.At095.FP, r.At095.FN)
}
