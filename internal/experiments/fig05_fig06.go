package experiments

import (
	"fmt"
	"io"

	"repro/internal/core/feasibility"
	"repro/internal/experiments/runner"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig5Point is one sampled output-rate pair with its measured and
// modelled feasibility.
type Fig5Point struct {
	Y1, Y2     float64
	Measured   bool
	TwoPoint   bool
	ThreePoint bool
}

// Fig5Result reproduces the Fig. 5 IA example: the region fraction missed
// by the two-point model and recovered by the three-point model.
type Fig5Result struct {
	C11, C22, C31, C32 float64
	Points             []Fig5Point
	// MissedFraction is the share of measured-feasible points outside
	// the time-sharing region (the paper's worst case is ~40%).
	MissedFraction float64
	// RecoveredFraction is the share of those missed points the
	// three-point model recovers.
	RecoveredFraction float64
}

// RunFig5 samples the feasibility region of an IA pair at 1 Mb/s. The
// extreme points are measured once; every grid point is then an
// independent injection cell on its own copy of the two-link network
// (rebuilt from the same seed), fanned out across the worker pool.
func RunFig5(seed int64, sc Scale) Fig5Result {
	nw := topology.TwoLink(seed, topology.IA, phy.Rate1, phy.Rate1)
	solo1 := measure.MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, sc.PhaseDur)
	solo2 := measure.MaxUDP(nw.Network, nw.Link2, traffic.DefaultPayload, sc.PhaseDur)
	both := measure.Simultaneous(nw.Network, []topology.Link{nw.Link1, nw.Link2},
		traffic.DefaultPayload, sc.PhaseDur)
	res := Fig5Result{
		C11: solo1.ThroughputBps, C22: solo2.ThroughputBps,
		C31: both[0].ThroughputBps, C32: both[1].ThroughputBps,
	}
	two := feasibility.TwoLinkModel{C11: res.C11, C22: res.C22}
	three := feasibility.TwoLinkModel{
		C11: res.C11, C22: res.C22,
		ThreePoint: true, C31: res.C31, C32: res.C32,
	}
	n := sc.GridN
	type gridCell struct{ y1, y2 float64 }
	var cells []gridCell
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			cells = append(cells, gridCell{
				y1: res.C11 * float64(i) / float64(n),
				y2: res.C22 * float64(j) / float64(n),
			})
		}
	}
	res.Points = runner.Map(cells, func(_ int, c gridCell) Fig5Point {
		cnw := topology.TwoLink(seed, topology.IA, phy.Rate1, phy.Rate1)
		flows := []measure.Flow{
			{Src: cnw.Link1.Src, Dst: cnw.Link1.Dst},
			{Src: cnw.Link2.Src, Dst: cnw.Link2.Dst},
		}
		in1 := c.y1 / (1 - solo1.LossRate)
		in2 := c.y2 / (1 - solo2.LossRate)
		r := measure.InjectRates(cnw.Network, flows, []float64{in1, in2},
			traffic.DefaultPayload, sc.TrafficDur)
		return Fig5Point{
			Y1: c.y1, Y2: c.y2,
			Measured:   r[0].OutputBps >= 0.98*c.y1 && r[1].OutputBps >= 0.98*c.y2,
			TwoPoint:   two.Feasible(c.y1, c.y2),
			ThreePoint: three.Feasible(c.y1, c.y2),
		}
	})
	var missed, recovered, feasible int
	for _, pt := range res.Points {
		if pt.Measured {
			feasible++
			if !pt.TwoPoint {
				missed++
				if pt.ThreePoint {
					recovered++
				}
			}
		}
	}
	if feasible > 0 {
		res.MissedFraction = float64(missed) / float64(feasible)
	}
	if missed > 0 {
		res.RecoveredFraction = float64(recovered) / float64(missed)
	}
	return res
}

// Print emits the extreme points and the missed/recovered fractions.
func (r Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: IA pair at 1 Mb/s, two-point vs three-point model")
	fmt.Fprintf(w, "primary points: (%.0f,0) (0,%.0f) kb/s; LIR point: (%.0f,%.0f)\n",
		r.C11/1e3, r.C22/1e3, r.C31/1e3, r.C32/1e3)
	fmt.Fprintf(w, "feasible points missed by time-sharing model: %.1f%%\n", 100*r.MissedFraction)
	fmt.Fprintf(w, "missed points recovered by three-point model: %.1f%%\n", 100*r.RecoveredFraction)
	fmt.Fprintln(w, "   y1(kbps)   y2(kbps) measured two-pt three-pt")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10.0f %10.0f %8v %7v %8v\n", p.Y1/1e3, p.Y2/1e3, p.Measured, p.TwoPoint, p.ThreePoint)
	}
}

// Fig6Row is the expected model error at one LIR threshold.
type Fig6Row struct {
	Threshold float64
	FP, FN    float64
}

// Fig6Result is the §4.4 threshold analysis fed by a measured LIR
// distribution.
type Fig6Result struct {
	Rows []Fig6Row
	// At095 is the operating point the paper reports (FP ~2%, FN ~13%).
	At095 feasibility.PairErrors
}

// RunFig6 sweeps LIR thresholds over the Fig. 3 LIR population.
func RunFig6(lirs []float64) Fig6Result {
	var res Fig6Result
	for _, th := range []float64{0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99} {
		e := feasibility.ExpectedLIRErrors(lirs, th)
		res.Rows = append(res.Rows, Fig6Row{Threshold: th, FP: e.FP, FN: e.FN})
	}
	res.At095 = feasibility.ExpectedLIRErrors(lirs, 0.95)
	return res
}

// Print emits the threshold sweep.
func (r Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 / §4.4: expected FP/FN area errors vs LIR threshold")
	fmt.Fprintln(w, "threshold     FP      FN")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "   %.2f     %.3f   %.3f\n", row.Threshold, row.FP, row.FN)
	}
	fmt.Fprintf(w, "at 0.95: FP=%.3f FN=%.3f (paper: 0.02 / 0.133)\n", r.At095.FP, r.At095.FN)
}
