package experiments

import (
	"fmt"
	"io"

	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig3Result holds the LIR populations of Fig. 3: the CDF of Link
// Interference Ratios across tested link pairs at 1 Mb/s and 11 Mb/s.
type Fig3Result struct {
	LIR1  []float64 // per-pair LIRs at 1 Mb/s
	LIR11 []float64 // per-pair LIRs at 11 Mb/s
}

// RunFig3 measures LIRs over sampled node-disjoint link pairs of the
// 18-node mesh at both data rates.
func RunFig3(seed int64, sc Scale) Fig3Result {
	var res Fig3Result
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		nw := topologyAtRate(seed, rate)
		pairs := SamplePairs(nw, rate, sc.Pairs, seed+int64(rate))
		for _, p := range pairs {
			nw.SetRate(p.L1, rate)
			nw.SetRate(p.L2, rate)
			r := measure.MeasureLIR(nw, p.L1, p.L2, traffic.DefaultPayload, sc.PhaseDur)
			if r.C11 <= 0 || r.C22 <= 0 {
				continue // dead link; the paper excludes such pairs too
			}
			lir := r.LIR()
			if lir > 1 {
				lir = 1 // measurement noise can nudge past 1
			}
			if rate == phy.Rate1 {
				res.LIR1 = append(res.LIR1, lir)
			} else {
				res.LIR11 = append(res.LIR11, lir)
			}
		}
	}
	return res
}

// Bimodality summarizes the two-mode structure the paper reports: the
// fraction of pairs below 0.7 (clearly interfering) and above 0.95
// (clearly independent).
func (r Fig3Result) Bimodality() (below07, above095 float64) {
	all := append(append([]float64(nil), r.LIR1...), r.LIR11...)
	if len(all) == 0 {
		return 0, 0
	}
	var lo, hi int
	for _, v := range all {
		if v < 0.7 {
			lo++
		}
		if v > 0.95 {
			hi++
		}
	}
	return float64(lo) / float64(len(all)), float64(hi) / float64(len(all))
}

// Print emits the two CDFs as the paper plots them.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: CDF of LIRs (%d pairs @1Mbps, %d pairs @11Mbps)\n",
		len(r.LIR1), len(r.LIR11))
	fmt.Fprintln(w, "-- 1 Mb/s: LIR  F(LIR)")
	fmt.Fprint(w, stats.NewCDF(r.LIR1).Format(20))
	fmt.Fprintln(w, "-- 11 Mb/s: LIR  F(LIR)")
	fmt.Fprint(w, stats.NewCDF(r.LIR11).Format(20))
	lo, hi := r.Bimodality()
	fmt.Fprintf(w, "mass below 0.7: %.2f   mass above 0.95: %.2f\n", lo, hi)
}

// topologyAtRate builds the 18-node mesh with every node defaulting to
// the given modulation.
func topologyAtRate(seed int64, rate phy.Rate) *topology.Network {
	nw := topology.Mesh18(seed)
	for _, n := range nw.Nodes {
		n.SetDefaultRate(rate)
	}
	return nw
}
