package experiments

import (
	"fmt"
	"io"

	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig3Result holds the LIR populations of Fig. 3: the CDF of Link
// Interference Ratios across tested link pairs at 1 Mb/s and 11 Mb/s.
type Fig3Result struct {
	LIR1  []float64 // per-pair LIRs at 1 Mb/s
	LIR11 []float64 // per-pair LIRs at 11 Mb/s
}

// fig3Cell is one independent measurement cell: a link pair at a rate.
type fig3Cell struct {
	seed int64
	sc   Scale
	rate phy.Rate
	pair PairSpec
}

// fig3Exp measures LIRs over sampled node-disjoint link pairs of the
// 18-node mesh at both data rates. Every pair is an independent cell —
// it rebuilds the mesh from the run seed and owns its simulator.
type fig3Exp struct{}

func (fig3Exp) Name() string { return "fig3" }
func (fig3Exp) Describe() string {
	return "pairwise LIR distributions at 1 and 11 Mb/s (bimodality of interference)"
}

func (fig3Exp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		nw := topologyAtRate(seed, rate)
		for _, p := range SamplePairs(nw, rate, sc.Pairs, seed+int64(rate)) {
			cells = append(cells, exp.Cell{Seed: seed, Data: fig3Cell{seed: seed, sc: sc, rate: rate, pair: p}})
		}
	}
	return cells
}

func (fig3Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig3Cell)
	nw := topologyAtRate(d.seed, d.rate)
	nw.SetRate(d.pair.L1, d.rate)
	nw.SetRate(d.pair.L2, d.rate)
	r := measure.MeasureLIR(nw, d.pair.L1, d.pair.L2, traffic.DefaultPayload, d.sc.PhaseDur)
	lir := -1.0 // dead link; the paper excludes such pairs too
	if r.C11 > 0 && r.C22 > 0 {
		lir = r.LIR()
		if lir > 1 {
			lir = 1 // measurement noise can nudge past 1
		}
	}
	return sink.Record{Fields: []sink.Field{
		sink.F("rate", int(d.rate)),
		sink.F("pair", d.pair.L1.String()+"|"+d.pair.L2.String()),
		sink.F("lir", lir),
	}}
}

func (fig3Exp) Reduce(recs <-chan sink.Record) exp.Result {
	return fig3Gather(recs)
}

// fig3Gather folds the record stream into the two per-rate populations;
// fig3 and fig6 share it.
func fig3Gather(recs <-chan sink.Record) Fig3Result {
	var res Fig3Result
	for rec := range recs {
		lir := rec.Float("lir")
		if lir < 0 {
			continue
		}
		if phy.Rate(rec.Int("rate")) == phy.Rate1 {
			res.LIR1 = append(res.LIR1, lir)
		} else {
			res.LIR11 = append(res.LIR11, lir)
		}
	}
	return res
}

// RunFig3 measures the Fig. 3 LIR populations through the experiment
// engine.
func RunFig3(seed int64, sc Scale) Fig3Result {
	res, _ := exp.Run(fig3Exp{}, seed, sc, exp.Options{})
	return res.(Fig3Result)
}

// Bimodality summarizes the two-mode structure the paper reports: the
// fraction of pairs below 0.7 (clearly interfering) and above 0.95
// (clearly independent).
func (r Fig3Result) Bimodality() (below07, above095 float64) {
	all := append(append([]float64(nil), r.LIR1...), r.LIR11...)
	if len(all) == 0 {
		return 0, 0
	}
	var lo, hi int
	for _, v := range all {
		if v < 0.7 {
			lo++
		}
		if v > 0.95 {
			hi++
		}
	}
	return float64(lo) / float64(len(all)), float64(hi) / float64(len(all))
}

// Print emits the two CDFs as the paper plots them.
func (r Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: CDF of LIRs (%d pairs @1Mbps, %d pairs @11Mbps)\n",
		len(r.LIR1), len(r.LIR11))
	fmt.Fprintln(w, "-- 1 Mb/s: LIR  F(LIR)")
	fmt.Fprint(w, stats.NewCDF(r.LIR1).Format(20))
	fmt.Fprintln(w, "-- 11 Mb/s: LIR  F(LIR)")
	fmt.Fprint(w, stats.NewCDF(r.LIR11).Format(20))
	lo, hi := r.Bimodality()
	fmt.Fprintf(w, "mass below 0.7: %.2f   mass above 0.95: %.2f\n", lo, hi)
}

// topologyAtRate builds the 18-node mesh with every node defaulting to
// the given modulation.
func topologyAtRate(seed int64, rate phy.Rate) *topology.Network {
	nw := topology.Mesh18(seed)
	for _, n := range nw.Nodes {
		n.SetDefaultRate(rate)
	}
	return nw
}
