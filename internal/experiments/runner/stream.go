package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stream runs fn(i, cells[i]) for every cell on the default worker pool
// and calls emit(i, result) in strictly increasing cell order as results
// become available, instead of gathering everything first. See StreamN.
func Stream[T, R any](cells []T, fn func(i int, cell T) R, emit func(i int, r R)) {
	StreamN(Workers(), cells, fn, emit)
}

// StreamN is Stream with an explicit worker count (n <= 0 means
// GOMAXPROCS). It is StreamCtx with a background context: the run cannot
// be cancelled and the error is statically nil.
func StreamN[T, R any](workers int, cells []T, fn func(i int, cell T) R, emit func(i int, r R)) {
	// The background context never cancels, so the error is always nil.
	_ = StreamCtx(context.Background(), workers, cells, fn, emit)
}

// StreamCtx is the cancellable core of the streaming fan-out. Cells
// execute on the pool exactly as in MapN, but each result is handed to
// emit on the calling goroutine, serialized, in cell index order, as
// soon as its index becomes the emission frontier. A result computed out
// of order is buffered only until every earlier cell has been emitted,
// so the reduction downstream of emit sees the same order a sequential
// run would produce: streamed output is bit-identical for any worker
// count.
//
// Cancelling ctx stops the run at the next cell boundary: no new cells
// are claimed, cells already executing finish, and emission drains to
// the longest gapless prefix reachable from completed cells. The emitted
// output is therefore always a byte-prefix of the full run's output —
// for any worker count and any cancellation point — which is what makes
// a cancelled run's partial stream checkpointable and resumable. The
// return value is nil when every cell was emitted (even if ctx was
// cancelled after the last claim) and ctx.Err() when the sweep was cut
// short.
//
// Memory is genuinely bounded by the reorder window, not the sweep: a
// worker must hold one of 4×workers tokens to claim a cell, and a
// token only returns to the pool when its result is emitted (or the run
// aborts). A straggling early cell therefore stalls the pool after at
// most 4×workers completed-but-unemitted results instead of letting the
// rest of the sweep pile up gathered in memory.
//
// A panic in any cell stops new cells from being claimed, suppresses
// emission from that cell onward (earlier cells still emit), and is
// re-raised on the calling goroutine after the pool drains. A panic in
// emit itself also propagates to the caller after the workers drain.
func StreamCtx[T, R any](ctx context.Context, workers int, cells []T, fn func(i int, cell T) R, emit func(i int, r R)) error {
	n := len(cells)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	fn = instrumentCell(ctx, fn)
	done := ctx.Done() // nil for background contexts: the case never fires
	if workers == 1 {
		for i, c := range cells {
			select {
			case <-done:
				countCancelled(n, i)
				return ctx.Err()
			default:
			}
			emit(i, fn(i, c))
		}
		return nil
	}

	type item struct {
		i  int
		r  R
		ok bool // false when the cell panicked
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicked  atomic.Value // first cell panic, re-raised by the caller
		abortOnce sync.Once
	)
	window := 4 * workers // reorder-buffer bound (completed, unemitted)
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	abort := make(chan struct{}) // closed when emission stops early
	results := make(chan item, window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// A token caps how far completed work may run ahead of
				// the emission frontier; abort unblocks a stalled pool
				// and cancellation stops claims at the cell boundary.
				select {
				case <-tokens:
				case <-abort:
					return
				case <-done:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var it item
				it.i = i
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Errorf("runner: cell %d panicked: %v", i, r))
						}
					}()
					it.r = fn(i, cells[i])
					it.ok = true
				}()
				results <- it
				if panicked.Load() != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: advance the frontier and emit in cell order,
	// returning one token per emitted result. If emit panics, abort the
	// pool and keep draining the channel in the background so no worker
	// is leaked blocking on a send.
	defer func() {
		if r := recover(); r != nil {
			abortOnce.Do(func() { close(abort) })
			go func() {
				for range results {
				}
			}()
			panic(r)
		}
	}()
	pending := make(map[int]R)
	frontier := 0
	for it := range results {
		if !it.ok {
			// The panicked cell's index stalls the frontier for good;
			// unblock any workers waiting on tokens and stop emitting.
			abortOnce.Do(func() { close(abort) })
			continue
		}
		pending[it.i] = it.r
		for {
			r, ready := pending[frontier]
			if !ready {
				break
			}
			delete(pending, frontier)
			emit(frontier, r)
			frontier++
			tokens <- struct{}{}
		}
	}
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	if frontier < n {
		// Cancelled mid-sweep: the emitted prefix is [0, frontier).
		countCancelled(n, int(next.Load()))
		return ctx.Err()
	}
	return nil
}
