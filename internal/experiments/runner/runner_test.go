package runner

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapGathersByIndex(t *testing.T) {
	cells := []int{6, 5, 4, 3, 2, 1}
	for _, workers := range []int{1, 2, 4, 16} {
		got := MapN(workers, cells, func(i, c int) int { return i * 10 * c / c })
		for i := range cells {
			if got[i] != i*10 {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], i*10)
			}
		}
	}
}

func TestMapEveryCellRunsExactlyOnce(t *testing.T) {
	const n = 200
	var counts [n]atomic.Int64
	cells := make([]int, n)
	MapN(8, cells, func(i, _ int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(nil, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty map returned %v", got)
	}
	got := Map([]string{"x"}, func(_ int, s string) string { return s + "y" })
	if len(got) != 1 || got[0] != "xy" {
		t.Fatalf("single-cell map returned %v", got)
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d with default pool", Workers())
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a cell did not propagate")
		}
		if !strings.Contains(r.(error).Error(), "boom") {
			t.Fatalf("panic payload %v lost the cause", r)
		}
	}()
	MapN(4, []int{0, 1, 2, 3}, func(i, _ int) int {
		if i == 2 {
			panic("boom")
		}
		return i
	})
}

// TestMapCtxCancelFillsGaplessPrefix: a cancelled gathering run leaves
// out[0:k] filled and the rest zero — never a gap — because cells are
// claimed sequentially and every claimed cell completes.
func TestMapCtxCancelFillsGaplessPrefix(t *testing.T) {
	const n = 300
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i + 1 // distinguishable from the zero value
	}
	for _, workers := range []int{1, 4, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		out, err := MapCtx(ctx, workers, cells, func(i, c int) int {
			if ran.Add(1) == 20 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return c
		})
		cancel()
		k := 0
		for k < n && out[k] != 0 {
			k++
		}
		for i := k; i < n; i++ {
			if out[i] != 0 {
				t.Fatalf("workers=%d: out has a gap: out[%d]=0 but out[%d]=%d", workers, k, i, out[i])
			}
		}
		if k == n {
			if err != nil {
				t.Fatalf("workers=%d: complete run returned %v", workers, err)
			}
		} else if err != context.Canceled {
			t.Fatalf("workers=%d: cut-short run (%d/%d cells) returned %v", workers, k, n, err)
		}
	}
}
