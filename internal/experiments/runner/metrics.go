package runner

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Pool metrics, registered in the process-wide registry. All of this is
// out-of-band: the counters and the wall-time histogram observe when a
// cell runs and how long it took, never what it produced, so the record
// stream is byte-identical with the registry enabled or disabled.
var (
	cellsStarted = obs.Default.Counter("meshopt_runner_cells_started_total",
		"Cells claimed by pool workers.")
	cellsCompleted = obs.Default.Counter("meshopt_runner_cells_completed_total",
		"Cells that ran to completion.")
	cellsCancelled = obs.Default.Counter("meshopt_runner_cells_cancelled_total",
		"Cells never claimed because the run was cancelled.")
	cellSeconds = obs.Default.Histogram("meshopt_runner_cell_seconds",
		"Wall time per cell.", obs.TimeBuckets())
)

// instrumentCell wraps a cell function with the pool metrics and — when
// ctx carries a trace span — a per-cell child span. The metrics check is
// per cell so a registry toggled mid-run settles at cell boundaries;
// with both disabled, the cost is one ctx.Value lookup per wrap site
// plus one atomic load per cell, and no allocations.
func instrumentCell[T, R any](ctx context.Context, fn func(i int, cell T) R) func(i int, cell T) R {
	parent := span.FromContext(ctx)
	return func(i int, cell T) R {
		traced := obs.Default.Enabled()
		if !traced && parent == nil {
			return fn(i, cell)
		}
		var sp *span.Span
		if parent != nil {
			sp = parent.Child("cell", span.Int("cell", i))
		}
		if traced {
			cellsStarted.Inc()
		}
		start := time.Now()
		r := fn(i, cell)
		if traced {
			cellSeconds.Observe(time.Since(start).Seconds())
			cellsCompleted.Inc()
		}
		sp.End()
		return r
	}
}

// countCancelled records cells that were never claimed when a run was
// cut short: total less the claimed count (the claim counter may
// overshoot by up to one per worker).
func countCancelled(total, claimed int) {
	if claimed > total {
		claimed = total
	}
	if total > claimed {
		cellsCancelled.Add(float64(total - claimed))
	}
}
