// Package runner is the parallel experiment engine: a deterministic
// worker-pool fan-out over independent simulation cells.
//
// Every figure of the paper's evaluation sweeps independent (seed,
// config, link-pair, probe-window) cells, each of which builds its own
// simulator and topology from a seed assigned before the fan-out starts.
// Map executes those cells across a pool of workers and gathers results
// by cell index, so the output of a run is bit-identical whatever the
// worker count: parallelism changes only the wall-clock, never the
// numbers.
//
// The contract a cell function must honour for that guarantee is the
// usual one for deterministic parallel sweeps:
//
//   - derive all randomness from the cell's own inputs (its index or a
//     pre-assigned seed), never from shared RNG state;
//   - build private simulator/medium/node state, never touching another
//     cell's;
//   - write only to its return value.
//
// All experiment code in internal/experiments follows this contract.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool size used by Map; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int64

// SetWorkers fixes the default pool size used by Map. n <= 0 restores
// the default of GOMAXPROCS. It returns the previous setting so callers
// (tests, benchmarks) can restore it.
func SetWorkers(n int) int {
	old := int(defaultWorkers.Swap(int64(n)))
	return old
}

// Workers returns the effective default pool size.
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i, cells[i]) for every cell on the default worker pool and
// returns the results indexed like cells. See MapN for the semantics.
func Map[T, R any](cells []T, fn func(i int, cell T) R) []R {
	return MapN(Workers(), cells, fn)
}

// MapN is Map with an explicit worker count (n <= 0 means GOMAXPROCS).
// It is MapCtx with a background context: the run cannot be cancelled
// and the error is statically nil.
func MapN[T, R any](workers int, cells []T, fn func(i int, cell T) R) []R {
	out, _ := MapCtx(context.Background(), workers, cells, fn)
	return out
}

// MapCtx is the cancellable core of the gathering fan-out. Cells are
// claimed from a shared counter so stragglers do not idle the pool, and
// each result lands in out[i] for cell i: the gathered slice is
// identical for any worker count. A panic in any cell is re-raised on
// the calling goroutine after the pool drains.
//
// Cancelling ctx stops the run at the next cell boundary: no new cells
// are claimed and cells already executing finish. Because cells are
// claimed from a sequential counter and every claimed cell completes,
// the filled entries of out always form a gapless prefix out[0:k]; the
// remaining entries are zero values. The return error is nil when every
// cell ran and ctx.Err() when the sweep was cut short.
func MapCtx[T, R any](ctx context.Context, workers int, cells []T, fn func(i int, cell T) R) ([]R, error) {
	out := make([]R, len(cells))
	if len(cells) == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	fn = instrumentCell(ctx, fn)
	done := ctx.Done() // nil for background contexts: the case never fires
	if workers == 1 {
		for i, c := range cells {
			select {
			case <-done:
				countCancelled(len(cells), i)
				return out, ctx.Err()
			default:
			}
			out[i] = fn(i, c)
		}
		return out, nil
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicked  atomic.Value // first cell panic, re-raised by the caller
		cancelled atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					cancelled.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Errorf("runner: cell %d panicked: %v", i, r))
						}
					}()
					out[i] = fn(i, cells[i])
				}()
				if panicked.Load() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	if cancelled.Load() && int(next.Load()) < len(cells) {
		// Cells [next, len) were never claimed; out[0:next] is filled.
		countCancelled(len(cells), int(next.Load()))
		return out, ctx.Err()
	}
	return out, nil
}
