package runner

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamEmitsInOrder checks the core contract: emit sees every cell
// exactly once, in index order, whatever the worker count and however
// skewed the per-cell runtimes are.
func TestStreamEmitsInOrder(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, workers := range []int{1, 2, 7, 16} {
		rng := rand.New(rand.NewSource(1))
		delays := make([]time.Duration, len(cells))
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
		}
		var got []int
		StreamN(workers, cells, func(i int, c int) int {
			time.Sleep(delays[i])
			return c * c
		}, func(i int, r int) {
			if r != i*i {
				t.Fatalf("workers=%d: emit(%d) got %d, want %d", workers, i, r, i*i)
			}
			got = append(got, i)
		})
		want := make([]int, len(cells))
		for i := range want {
			want[i] = i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: emission order %v", workers, got)
		}
	}
}

// TestStreamMatchesMap pins Stream's results to Map's for a pure cell
// function.
func TestStreamMatchesMap(t *testing.T) {
	cells := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	fn := func(i int, c float64) float64 { return c * float64(i+1) }
	want := MapN(4, cells, fn)
	got := make([]float64, len(cells))
	StreamN(4, cells, fn, func(i int, r float64) { got[i] = r })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stream %v != Map %v", got, want)
	}
}

// TestStreamPanicPropagates checks a cell panic reaches the caller and
// that cells before the panicked index still emit.
func TestStreamPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(error).Error(), "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	cells := make([]int, 50)
	var emitted atomic.Int64
	StreamN(4, cells, func(i int, _ int) int {
		if i == 25 {
			panic("boom")
		}
		return i
	}, func(i int, _ int) {
		if i >= 25 {
			t.Errorf("emit fired for cell %d past the panicked index", i)
		}
		emitted.Add(1)
	})
}

// TestStreamBackpressureBoundsReorderWindow: a straggling early cell
// must stall the pool once the reorder window fills, instead of letting
// the whole sweep complete and pile up unemitted.
func TestStreamBackpressureBoundsReorderWindow(t *testing.T) {
	const workers = 4
	cells := make([]int, 400)
	var maxClaimed atomic.Int64
	var emitted int
	StreamN(workers, cells, func(i int, _ int) int {
		for {
			cur := maxClaimed.Load()
			if int64(i) <= cur || maxClaimed.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		if i == 0 {
			// Straggle: without backpressure the other workers chew
			// through all 400 trivial cells during this sleep.
			time.Sleep(100 * time.Millisecond)
		}
		return i
	}, func(i int, r int) {
		if i == 0 {
			// Everything claimed so far ran ahead of a stalled frontier;
			// the token pool caps that at the reorder window plus the
			// workers' in-flight cells.
			if got, limit := maxClaimed.Load(), int64(4*workers+workers); got > limit {
				t.Errorf("claimed up to cell %d while cell 0 stalled (limit ~%d)", got, limit)
			}
		}
		emitted++
	})
	if emitted != len(cells) {
		t.Fatalf("emitted %d of %d after the frontier released", emitted, len(cells))
	}
}

// TestStreamEmptyAndSingle covers the degenerate shapes.
func TestStreamEmptyAndSingle(t *testing.T) {
	StreamN(4, nil, func(i int, c int) int { return c }, func(int, int) {
		t.Fatal("emit on empty cells")
	})
	var n int
	StreamN(4, []int{7}, func(i int, c int) int { return c }, func(i int, r int) {
		if i != 0 || r != 7 {
			t.Fatalf("got (%d,%d)", i, r)
		}
		n++
	})
	if n != 1 {
		t.Fatalf("emit count %d", n)
	}
}

// TestStreamCtxCancelEmitsGaplessPrefix: whatever the worker count and
// whenever the cancel lands, the emitted cells must be exactly
// [0, k) for some k — a byte-prefix of the full run's stream — with
// ctx.Err() returned iff the sweep was actually cut short.
func TestStreamCtxCancelEmitsGaplessPrefix(t *testing.T) {
	const n = 400
	cells := make([]int, n)
	for _, workers := range []int{1, 2, 7, 16} {
		ctx, cancel := context.WithCancel(context.Background())
		var got []int
		err := StreamCtx(ctx, workers, cells, func(i int, _ int) int {
			time.Sleep(20 * time.Microsecond)
			return i
		}, func(i int, r int) {
			if i == 10 {
				cancel()
			}
			got = append(got, i)
		})
		cancel()
		for i, g := range got {
			if g != i {
				t.Fatalf("workers=%d: emission %v is not a gapless prefix", workers, got)
			}
		}
		if len(got) <= 10 {
			t.Fatalf("workers=%d: cancelled before the triggering cell emitted (%d cells)", workers, len(got))
		}
		if len(got) == n {
			if err != nil {
				t.Fatalf("workers=%d: complete run returned %v", workers, err)
			}
		} else if err != context.Canceled {
			t.Fatalf("workers=%d: cut-short run (%d/%d cells) returned %v", workers, len(got), n, err)
		}
	}
}

// TestStreamCtxCancelRaced drives cancellation from a separate goroutine
// at pseudo-random points: the gapless-prefix property must hold for
// every interleaving (the race detector guards the rest).
func TestStreamCtxCancelRaced(t *testing.T) {
	cells := make([]int, 120)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(400)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		var got []int
		err := StreamCtx(ctx, 4, cells, func(i int, _ int) int {
			time.Sleep(10 * time.Microsecond)
			return i * 3
		}, func(i int, r int) {
			if r != i*3 {
				t.Errorf("trial %d: emit(%d) = %d", trial, i, r)
			}
			got = append(got, i)
		})
		cancel()
		for i, g := range got {
			if g != i {
				t.Fatalf("trial %d: emission %v is not a gapless prefix", trial, got)
			}
		}
		if (err == nil) != (len(got) == len(cells)) {
			t.Fatalf("trial %d: %d/%d cells emitted but err = %v", trial, len(got), len(cells), err)
		}
	}
}
