// Package experiments reproduces every figure of the paper's evaluation
// (Figs. 3-14) on the simulated mesh substrate. Each figure suite is an
// exp.Experiment — a deterministic cell enumeration, a private-state
// per-cell body, and a streaming reduction — registered in the exp
// registry (see register.go); the engine in internal/experiments/exp
// runs, streams, shards and merges them uniformly. The RunFigN functions
// are thin wrappers returning each figure's structured result (with a
// Print method emitting the series the paper plots); bench_test.go and
// cmd/meshopt drive the same registry. Scale parameters let benches run
// abbreviated versions while the CLI runs paper-scale ones.
package experiments

import (
	"math/rand"

	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Scale sets the fidelity/runtime trade-off of an experiment run; it
// lives in the exp package alongside the engine, aliased here for the
// many call sites that predate the unified API.
type Scale = exp.Scale

// Quick is the scale used by unit benches and tests: phases of a couple
// of simulated seconds, few repetitions.
func Quick() Scale { return exp.Quick() }

// Paper approximates the paper's measurement durations (kept shorter than
// the literal 30 s phases — the simulator's variance, unlike a testbed's,
// is purely statistical and converges faster).
func Paper() Scale { return exp.Paper() }

// PairSpec is a candidate link pair for pairwise experiments.
type PairSpec struct {
	L1, L2 topology.Link
}

// SamplePairs picks up to n node-disjoint link pairs from the mesh that
// are decodable at rate r, deterministically from seed.
func SamplePairs(nw *topology.Network, r phy.Rate, n int, seed int64) []PairSpec {
	links := nw.Links(r)
	rng := rand.New(rand.NewSource(seed))
	var out []PairSpec
	seen := map[[4]int]bool{}
	for attempts := 0; attempts < 50*n && len(out) < n; attempts++ {
		a := links[rng.Intn(len(links))]
		b := links[rng.Intn(len(links))]
		if a.Src == b.Src || a.Src == b.Dst || a.Dst == b.Src || a.Dst == b.Dst {
			continue
		}
		key := [4]int{a.Src, a.Dst, b.Src, b.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, PairSpec{L1: a, L2: b})
	}
	return out
}

// FlowConfig is one multi-hop, multi-flow validation scenario (§4.5): a
// mesh, a set of end-to-end flows, and the data rate in use.
type FlowConfig struct {
	Seed  int64
	Rate  phy.Rate
	Flows []measure.Flow
	// MaxHops bounds route lengths (the paper uses up to 4).
	MaxHops int
}

// GenerateConfigs produces n deterministic flow configurations over the
// 18-node mesh, alternating 1 Mb/s and 11 Mb/s and using 2-6 flows, as in
// the paper's network validation. Flow endpoints are drawn from node
// pairs connected (within 4 hops) over links decodable at the config's
// rate — the paper likewise picks scenarios that are actually routable.
func GenerateConfigs(seed int64, n int) []FlowConfig {
	rng := rand.New(rand.NewSource(seed))
	out := make([]FlowConfig, 0, n)
	for i := 0; i < n; i++ {
		rate := phy.Rate11
		if i%2 == 1 {
			rate = phy.Rate1
		}
		cfg := FlowConfig{
			Seed:    seed + int64(i)*101,
			Rate:    rate,
			MaxHops: 4,
		}
		nFlows := 2 + rng.Intn(5)
		nw := topology.Mesh18(cfg.Seed)
		hops := hopMatrix(nw, rate)
		nodes := len(nw.Nodes)
		seen := map[[2]int]bool{}
		for attempts := 0; len(cfg.Flows) < nFlows && attempts < 400; attempts++ {
			src, dst := rng.Intn(nodes), rng.Intn(nodes)
			if src == dst || seen[[2]int{src, dst}] {
				continue
			}
			if h := hops[src][dst]; h < 1 || h > cfg.MaxHops {
				continue
			}
			seen[[2]int{src, dst}] = true
			cfg.Flows = append(cfg.Flows, measure.Flow{Src: src, Dst: dst})
		}
		out = append(out, cfg)
	}
	return out
}

// hopMatrix computes min-hop distances over links decodable at rate r
// (BFS from every node; -1 = unreachable).
func hopMatrix(nw *topology.Network, r phy.Rate) [][]int {
	n := len(nw.Nodes)
	adj := make([][]int, n)
	for _, l := range nw.Links(r) {
		adj[l.Src] = append(adj[l.Src], l.Dst)
	}
	out := make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		out[src] = dist
	}
	return out
}

// Mesh builds the mesh for a config.
func (c FlowConfig) Mesh() *topology.Network { return topology.Mesh18(c.Seed) }

// probePeriodFor enforces a duty-cycle floor on probing: periods shorter
// than ~25 DATA-probe airtimes would congest the network with its own
// measurement traffic (especially at 1 Mb/s where a 1470-byte probe takes
// 12 ms on the air), corrupting the very losses being measured. The
// paper's 0.5 s period at 1-11 Mb/s respects this comfortably.
func probePeriodFor(r phy.Rate, sc Scale) sim.Time {
	floor := 40 * phy.Airtime(r, 1470)
	if sc.ProbePeriod > floor {
		return sc.ProbePeriod
	}
	return floor
}
