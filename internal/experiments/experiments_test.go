package experiments

import (
	"io"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// tinyScale trims Quick further so the whole figure suite stays fast in
// unit tests; benches use Quick and the CLI uses Paper.
func tinyScale() Scale {
	sc := Quick()
	sc.PhaseDur = 1500 * sim.Millisecond
	sc.Pairs = 6
	sc.Configs = 2
	sc.GridN = 4
	sc.ProbeWindow = 150
	sc.ProbePeriod = 30 * sim.Millisecond
	sc.TrafficDur = 4 * sim.Second
	return sc
}

func TestSamplePairsDisjointAndDeterministic(t *testing.T) {
	nw := topology.Mesh18(1)
	a := SamplePairs(nw, phy.Rate11, 10, 42)
	b := SamplePairs(nw, phy.Rate11, 10, 42)
	if len(a) == 0 {
		t.Fatal("no pairs sampled")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
		p := a[i]
		if p.L1.Src == p.L2.Src || p.L1.Dst == p.L2.Dst ||
			p.L1.Src == p.L2.Dst || p.L1.Dst == p.L2.Src {
			t.Fatalf("pair %v shares a node", p)
		}
	}
}

func TestGenerateConfigsShape(t *testing.T) {
	cfgs := GenerateConfigs(7, 6)
	if len(cfgs) != 6 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	sawRate1 := false
	for _, c := range cfgs {
		if len(c.Flows) < 2 || len(c.Flows) > 6 {
			t.Fatalf("config has %d flows", len(c.Flows))
		}
		if c.Rate == phy.Rate1 {
			sawRate1 = true
		}
	}
	if !sawRate1 {
		t.Fatal("no 1 Mb/s configs generated")
	}
}

func TestFig3LIRDistributionShape(t *testing.T) {
	sc := tinyScale()
	sc.Pairs = 8
	res := RunFig3(3, sc)
	if len(res.LIR1) < 4 || len(res.LIR11) < 4 {
		t.Fatalf("too few pairs measured: %d/%d", len(res.LIR1), len(res.LIR11))
	}
	for _, v := range append(res.LIR1, res.LIR11...) {
		if v < 0 || v > 1.0001 {
			t.Fatalf("LIR %v out of range", v)
		}
	}
	// The population must contain both interfering and independent
	// pairs (the paper's bimodality).
	lo, hi := res.Bimodality()
	if lo == 0 {
		t.Error("no clearly interfering pairs found")
	}
	if hi == 0 {
		t.Error("no clearly independent pairs found")
	}
	res.Print(io.Discard)
}

func TestFig4CSAccurateIAFNs(t *testing.T) {
	sc := tinyScale()
	res := RunFig4(5, sc)
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	by := res.ByClass()
	cs, ia := by[topology.CS], by[topology.IA]
	// CS pairs: model accurate -> small FP and FN.
	if cs[0].Mean > 0.15 {
		t.Errorf("CS FP mean %v too high", cs[0].Mean)
	}
	if cs[1].Mean > 0.25 {
		t.Errorf("CS FN mean %v too high", cs[1].Mean)
	}
	// FPs must stay low everywhere (conservative model).
	for _, c := range []topology.Class{topology.CS, topology.IA, topology.NF} {
		if by[c][0].Mean > 0.2 {
			t.Errorf("%v FP mean %v too high", c, by[c][0].Mean)
		}
	}
	// IA shows substantial FNs from capture.
	if ia[1].Mean < 0.05 {
		t.Errorf("IA FN mean %v suspiciously low (no capture?)", ia[1].Mean)
	}
	// The three-point model removes most IA/NF FNs.
	fn2, fn3 := res.ThreePointFNReduction()
	if fn3 > fn2*0.5+0.02 {
		t.Errorf("three-point model did not reduce FNs: %v -> %v", fn2, fn3)
	}
	res.Print(io.Discard)
}

func TestFig5CaptureRegionRecovered(t *testing.T) {
	sc := tinyScale()
	sc.GridN = 5
	res := RunFig5(3, sc)
	if res.MissedFraction < 0.1 {
		t.Fatalf("missed fraction %v too small for the IA example", res.MissedFraction)
	}
	if res.RecoveredFraction < 0.6 {
		t.Fatalf("three-point model recovered only %v", res.RecoveredFraction)
	}
	res.Print(io.Discard)
}

func TestFig6ThresholdMonotonicity(t *testing.T) {
	lirs := []float64{0.3, 0.45, 0.55, 0.6, 0.65, 0.8, 0.9, 0.96, 0.97, 0.99}
	res := RunFig6(lirs)
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].FN < res.Rows[i-1].FN-1e-12 {
			t.Fatalf("FN not nondecreasing in threshold: %+v", res.Rows)
		}
		if res.Rows[i].FP > res.Rows[i-1].FP+1e-12 {
			t.Fatalf("FP not nonincreasing in threshold: %+v", res.Rows)
		}
	}
	res.Print(io.Discard)
}

func TestNetValidationShape(t *testing.T) {
	sc := tinyScale()
	sc.Configs = 2
	res := RunNetValidation(11, sc)
	if len(res.LIRSamples) == 0 {
		t.Fatal("no validation samples")
	}
	// Over-estimation must be rare: most scale-1 points near or above
	// 0.8 of target (the paper's y=0.8x line).
	within, _ := r7(res)
	if within < 0.6 {
		t.Fatalf("only %.0f%% of points within 20%% of estimate", 100*within)
	}
	// Scaled runs must not increase achieved throughput dramatically
	// (no gross under-estimation).
	gain := res.Fig8ScaledGain()
	if g := gain.Quantile(0.5); g > 1.5 {
		t.Fatalf("median scaled gain %v indicates heavy under-estimation", g)
	}
	res.Print(io.Discard)
}

func r7(res NetValidationResult) (float64, float64) { return res.Fig7Stats() }

func TestFig9CasesDistinct(t *testing.T) {
	sc := tinyScale()
	sc.ProbeWindow = 400
	sc.ProbePeriod = 25 * sim.Millisecond
	res := RunFig9(2, sc)
	// Uniform case: measured p close to channel truth.
	if res.Uniform.P > res.Uniform.Truth+0.1 {
		t.Fatalf("uniform case has unexplained loss: p=%v truth=%v", res.Uniform.P, res.Uniform.Truth)
	}
	// Interfered case: collisions inflate p well above truth, and the
	// estimate stays much closer to truth than p is.
	c := res.Interfed
	if c.P < c.Truth+0.03 {
		t.Fatalf("interferer added no loss: p=%v truth=%v", c.P, c.Truth)
	}
	if est, raw := abs(c.Est.Pch-c.Truth), abs(c.P-c.Truth); est > raw {
		t.Fatalf("estimator (err %v) no better than raw loss (err %v)", est, raw)
	}
	res.Print(io.Discard)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig10ErrorsBounded(t *testing.T) {
	sc := tinyScale()
	sc.ProbeWindow = 300
	res := RunFig10(4, sc)
	if len(res.Errors) < 5 {
		t.Fatalf("only %d links scored", len(res.Errors))
	}
	if rmse := res.RMSEByS[sc.ProbeWindow]; rmse > 0.15 {
		t.Fatalf("full-window RMSE %v too high", rmse)
	}
	res.Print(io.Discard)
}

func TestFig11AdHocOvershootsOnline(t *testing.T) {
	sc := tinyScale()
	sc.Pairs = 6
	sc.ProbeWindow = 200
	res := RunFig11(6, sc)
	if len(res.Links) < 3 {
		t.Fatalf("only %d links measured", len(res.Links))
	}
	if res.OnlineRMSE >= res.AdHocRMSE {
		t.Fatalf("online estimator (RMSE %v) must beat Ad Hoc Probe (%v)",
			res.OnlineRMSE, res.AdHocRMSE)
	}
	res.Print(io.Discard)
}

func TestFig13StarvationAndRecovery(t *testing.T) {
	sc := tinyScale()
	sc.TrafficDur = 10 * sim.Second
	sc.Iterations = 1
	res := RunFig13(3, sc)
	no := res.PerRegime[NoRC]
	prop := res.PerRegime[RCProp]
	if no[0].Mean == 0 {
		t.Fatal("noRC 1-hop flow dead")
	}
	// Starvation without RC; revived under proportional fairness.
	if no[1].Mean > 0.4*no[0].Mean {
		t.Errorf("noRC did not starve the 2-hop flow: %v vs %v", no[1].Mean, no[0].Mean)
	}
	if prop[1].Mean < 2*no[1].Mean {
		t.Errorf("TCP-Prop did not revive the 2-hop flow: %v -> %v", no[1].Mean, prop[1].Mean)
	}
	res.Print(io.Discard)
}

func TestFig14SuiteMetrics(t *testing.T) {
	sc := tinyScale()
	sc.Configs = 2
	sc.Iterations = 2
	sc.TrafficDur = 6 * sim.Second
	res := RunFig14(9, sc)
	if len(res.RatioProp) == 0 {
		t.Fatal("no configs completed")
	}
	for _, v := range res.RatioProp {
		if v <= 0 {
			t.Fatalf("degenerate prop ratio %v", v)
		}
	}
	if len(res.Feasibility) == 0 || len(res.StabilityRC) == 0 {
		t.Fatal("missing feasibility/stability samples")
	}
	res.Print(io.Discard)
}
