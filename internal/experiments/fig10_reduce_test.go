package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario/sink"
)

// TestFig10ReduceGolden pins fig10's reduction — including the
// quantile record series it emits — against a canned record stream, so
// the CDF/quantile wiring cannot drift silently.
func TestFig10ReduceGolden(t *testing.T) {
	windows := []float64{100, 200}
	rec := func(link string, errs []float64) sink.Record {
		fields := []sink.Field{
			sink.F("link", link),
			sink.F("skipped", errs == nil),
			sink.F("windows", windows),
		}
		if errs != nil {
			fields = append(fields, sink.F("truth", 0.1), sink.F("errs", errs))
		}
		return sink.Record{Scenario: "fig10", Series: "cell", Fields: fields}
	}
	recs := []sink.Record{
		rec("0->1", []float64{0.01, -0.02}),
		rec("1->2", []float64{0.03, 0.04}),
		rec("2->3", nil), // skipped link: no trace
		rec("3->4", []float64{-0.05, 0.10}),
	}
	for i := range recs {
		recs[i].Cell = i
	}
	ch := make(chan sink.Record, len(recs))
	for _, r := range recs {
		ch <- r
	}
	close(ch)
	res := fig10Exp{}.Reduce(ch).(Fig10Result)

	wantCDF := []struct{ x, p float64 }{
		{0.02, 1.0 / 3}, {0.04, 2.0 / 3}, {0.10, 1},
	}
	if len(res.ErrCDF) != len(wantCDF) {
		t.Fatalf("got %d CDF records, want %d", len(res.ErrCDF), len(wantCDF))
	}
	for i, w := range wantCDF {
		r := res.ErrCDF[i]
		if r.Scenario != "fig10" || r.Series != "err_cdf" || r.Cell != i {
			t.Fatalf("CDF record %d not normalized: %+v", i, r)
		}
		if r.Float("x") != w.x || r.Float("p") != w.p {
			t.Fatalf("CDF point %d = (%v, %v), want (%v, %v)", i, r.Float("x"), r.Float("p"), w.x, w.p)
		}
	}

	wantQ := []struct{ q, v float64 }{
		{0.25, 0.02}, {0.5, 0.04}, {0.75, 0.10}, {0.9, 0.10}, {0.95, 0.10}, {0.99, 0.10},
	}
	if len(res.ErrQuantiles) != len(wantQ) {
		t.Fatalf("got %d quantile records, want %d", len(res.ErrQuantiles), len(wantQ))
	}
	for i, w := range wantQ {
		r := res.ErrQuantiles[i]
		if r.Scenario != "fig10" || r.Series != "err_quantile" || r.Cell != i {
			t.Fatalf("quantile record %d not normalized: %+v", i, r)
		}
		if r.Float("q") != w.q || r.Float("v") != w.v {
			t.Fatalf("quantile %d = (q=%v, v=%v), want (q=%v, v=%v)",
				i, r.Float("q"), r.Float("v"), w.q, w.v)
		}
	}

	var b strings.Builder
	res.Print(&b)
	golden := `Figure 10: channel-loss estimation accuracy (3 links)
(a) error CDF: median=0.040 p90=0.100
      0.0200  0.333
      0.0400  0.667
      0.1000  1.000
   q25 |err|=0.0200
   q50 |err|=0.0400
   q75 |err|=0.1000
   q90 |err|=0.1000
   q95 |err|=0.1000
   q99 |err|=0.1000
(b) RMSE vs probing window S:
   S= 100  RMSE=0.0342
   S= 200  RMSE=0.0632
`
	if b.String() != golden {
		t.Fatalf("Print output drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}
