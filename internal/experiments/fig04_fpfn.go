package experiments

import (
	"fmt"
	"io"

	"repro/internal/core/feasibility"
	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// PairOutcome is one two-link configuration's model accuracy.
type PairOutcome struct {
	Class      topology.Class
	Rates      [2]phy.Rate
	LIR        measure.LIRResult
	FP2, FN2   float64 // two-point (binary LIR) model errors
	FP3, FN3   float64 // three-point model errors
	Tested     int
	MissedArea float64 // fraction of measured-feasible points outside TS
}

// Fig4Result aggregates FP/FN error rates per topology class.
type Fig4Result struct {
	Outcomes []PairOutcome
}

// fig4RateCombos are the data-rate combinations of §4.3.1.
var fig4RateCombos = [][2]phy.Rate{
	{phy.Rate1, phy.Rate1},
	{phy.Rate11, phy.Rate11},
	{phy.Rate1, phy.Rate11},
}

// fig4Cell is one (class, rate combo, channel variant) configuration.
type fig4Cell struct {
	sc      Scale
	class   topology.Class
	combo   [2]phy.Rate
	variant int // 0 = clean channel, 1 = lossy
	seed    int64
}

// fig4Exp evaluates the binary-LIR two-point model (and the three-point
// extension) on the CS/IA/NF classes across rate combinations, with and
// without channel losses. Each configuration builds its own two-link
// network, so the 18 cells fan out across the worker pool.
type fig4Exp struct{}

func (fig4Exp) Name() string { return "fig4" }
func (fig4Exp) Describe() string {
	return "binary interference classifier false positives/negatives per class"
}

func (fig4Exp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for _, class := range []topology.Class{topology.CS, topology.IA, topology.NF} {
		for ci, combo := range fig4RateCombos {
			for variant := 0; variant < 2; variant++ { // clean / lossy channel
				cellSeed := seed + int64(ci)*7 + int64(class)*31 + int64(variant)*997
				cells = append(cells, exp.Cell{Seed: cellSeed, Data: fig4Cell{
					sc: sc, class: class, combo: combo, variant: variant, seed: cellSeed,
				}})
			}
		}
	}
	return cells
}

func (fig4Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig4Cell)
	nw := topology.TwoLink(d.seed, d.class, d.combo[0], d.combo[1])
	if d.variant == 1 {
		nw.Medium.SetBER(nw.Link1.Src, nw.Link1.Dst, 8e-6)
	}
	out := evalPair(nw, d.class, d.combo, d.sc)
	return sink.Record{Fields: []sink.Field{
		sink.F("class", int(out.Class)),
		sink.F("rate1", int(out.Rates[0])),
		sink.F("rate2", int(out.Rates[1])),
		sink.F("c11", out.LIR.C11),
		sink.F("c22", out.LIR.C22),
		sink.F("c31", out.LIR.C31),
		sink.F("c32", out.LIR.C32),
		sink.F("fp2", out.FP2),
		sink.F("fn2", out.FN2),
		sink.F("fp3", out.FP3),
		sink.F("fn3", out.FN3),
		sink.F("tested", out.Tested),
		sink.F("missed_area", out.MissedArea),
	}}
}

func (fig4Exp) Reduce(recs <-chan sink.Record) exp.Result {
	var res Fig4Result
	for rec := range recs {
		if rec.Int("tested") == 0 {
			continue
		}
		res.Outcomes = append(res.Outcomes, PairOutcome{
			Class: topology.Class(rec.Int("class")),
			Rates: [2]phy.Rate{phy.Rate(rec.Int("rate1")), phy.Rate(rec.Int("rate2"))},
			LIR: measure.LIRResult{
				C11: rec.Float("c11"), C22: rec.Float("c22"),
				C31: rec.Float("c31"), C32: rec.Float("c32"),
			},
			FP2: rec.Float("fp2"), FN2: rec.Float("fn2"),
			FP3: rec.Float("fp3"), FN3: rec.Float("fn3"),
			Tested:     rec.Int("tested"),
			MissedArea: rec.Float("missed_area"),
		})
	}
	return res
}

// RunFig4 evaluates the Fig. 4 model-accuracy suite through the
// experiment engine.
func RunFig4(seed int64, sc Scale) Fig4Result {
	res, _ := exp.Run(fig4Exp{}, seed, sc, exp.Options{})
	return res.(Fig4Result)
}

// evalPair runs the §4.3.1 methodology on one pair: measure the primaries
// and the LIR point, then grid-sample the independent region and compare
// model predictions with measured feasibility.
func evalPair(nw *topology.TwoLinkResult, class topology.Class, combo [2]phy.Rate, sc Scale) PairOutcome {
	out := PairOutcome{Class: class, Rates: combo}

	solo1 := measure.MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, sc.PhaseDur)
	solo2 := measure.MaxUDP(nw.Network, nw.Link2, traffic.DefaultPayload, sc.PhaseDur)
	both := measure.Simultaneous(nw.Network, []topology.Link{nw.Link1, nw.Link2},
		traffic.DefaultPayload, sc.PhaseDur)
	out.LIR = measure.LIRResult{
		C11: solo1.ThroughputBps, C22: solo2.ThroughputBps,
		C31: both[0].ThroughputBps, C32: both[1].ThroughputBps,
	}
	if out.LIR.C11 <= 0 || out.LIR.C22 <= 0 {
		return out
	}

	lir := out.LIR.LIR()
	two := feasibility.TwoLinkModel{
		C11: out.LIR.C11, C22: out.LIR.C22,
		Independent: lir >= LIRThreshold,
	}
	three := feasibility.TwoLinkModel{
		C11: out.LIR.C11, C22: out.LIR.C22,
		ThreePoint: true, C31: out.LIR.C31, C32: out.LIR.C32,
		Independent: lir >= LIRThreshold,
	}

	flows := []measure.Flow{{Src: nw.Link1.Src, Dst: nw.Link1.Dst}, {Src: nw.Link2.Src, Dst: nw.Link2.Dst}}
	var fp2, fn2, fp3, fn3, missed, feasTotal int
	n := sc.GridN
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			x1 := out.LIR.C11 * float64(i) / float64(n)
			x2 := out.LIR.C22 * float64(j) / float64(n)
			in1 := x1 / (1 - solo1.LossRate)
			in2 := x2 / (1 - solo2.LossRate)
			res := measure.InjectRates(nw.Network, flows, []float64{in1, in2},
				traffic.DefaultPayload, sc.TrafficDur)
			// Feasible if both outputs reach 98% of the loss-adjusted
			// target (the paper's 2% criterion).
			feas := res[0].OutputBps >= 0.98*x1 && res[1].OutputBps >= 0.98*x2
			p2 := two.Feasible(x1, x2)
			p3 := three.Feasible(x1, x2)
			out.Tested++
			if feas {
				feasTotal++
				if x1/out.LIR.C11+x2/out.LIR.C22 > 1.001 {
					missed++
				}
			}
			switch {
			case p2 && !feas:
				fp2++
			case !p2 && feas:
				fn2++
			}
			switch {
			case p3 && !feas:
				fp3++
			case !p3 && feas:
				fn3++
			}
		}
	}
	t := float64(out.Tested)
	out.FP2, out.FN2 = float64(fp2)/t, float64(fn2)/t
	out.FP3, out.FN3 = float64(fp3)/t, float64(fn3)/t
	if feasTotal > 0 {
		out.MissedArea = float64(missed) / float64(feasTotal)
	}
	return out
}

// ByClass groups FP/FN summaries per topology class for the two-point
// model (the bars of Fig. 4).
func (r Fig4Result) ByClass() map[topology.Class][2]stats.Summary {
	acc := map[topology.Class][2][]float64{}
	for _, o := range r.Outcomes {
		e := acc[o.Class]
		e[0] = append(e[0], o.FP2)
		e[1] = append(e[1], o.FN2)
		acc[o.Class] = e
	}
	out := map[topology.Class][2]stats.Summary{}
	for c, e := range acc {
		out[c] = [2]stats.Summary{stats.Summarize(e[0]), stats.Summarize(e[1])}
	}
	return out
}

// ThreePointFNReduction reports mean FN for the two- and three-point
// models over IA/NF pairs — the §4.3.2 claim that the third point removes
// almost all FNs.
func (r Fig4Result) ThreePointFNReduction() (fn2, fn3 float64) {
	var a, b []float64
	for _, o := range r.Outcomes {
		if o.Class == topology.IA || o.Class == topology.NF {
			a = append(a, o.FN2)
			b = append(b, o.FN3)
		}
	}
	return stats.Mean(a), stats.Mean(b)
}

// Print emits per-class FP/FN bars and the three-point comparison.
func (r Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: FP/FN of the binary-LIR two-point model (%d configs)\n", len(r.Outcomes))
	fmt.Fprintln(w, "class   FP(mean/min/max)          FN(mean/min/max)")
	by := r.ByClass()
	for _, c := range []topology.Class{topology.CS, topology.IA, topology.NF} {
		s := by[c]
		fmt.Fprintf(w, "%-6s  %.3f/%.3f/%.3f        %.3f/%.3f/%.3f\n", c,
			s[0].Mean, s[0].Min, s[0].Max, s[1].Mean, s[1].Min, s[1].Max)
	}
	fn2, fn3 := r.ThreePointFNReduction()
	fmt.Fprintf(w, "three-point model on IA/NF: FN %.3f -> %.3f\n", fn2, fn3)
}
