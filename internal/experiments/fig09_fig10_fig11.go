package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core/capacity"
	"repro/internal/experiments/runner"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig9Case is one channel-loss estimator example: the sliding-minimum
// curve, the measured loss rate, the true channel loss, and the estimate.
type Fig9Case struct {
	Name  string
	Curve []float64 // p_ch^(W) indexed by W
	P     float64   // measured loss rate
	Truth float64   // analytic channel loss (ground truth)
	Est   capacity.Estimate
}

// Fig9Result reproduces the two cases of Fig. 9.
type Fig9Result struct {
	Uniform  Fig9Case // p reached before S/2 (no interference)
	Interfed Fig9Case // collisions present, knee selection
}

// RunFig9 probes one lossy link twice: alone, then under a hidden
// interferer, and records the estimator's view of both traces.
func RunFig9(seed int64, sc Scale) Fig9Result {
	period := probePeriodFor(phy.Rate11, sc)
	run := func(name string, interfere bool) Fig9Case {
		nw := topology.TwoLink(seed, topology.IA, phy.Rate11, phy.Rate11)
		nw.Medium.SetBER(nw.Link1.Src, nw.Link1.Dst, 4e-6)
		rec := probe.NewRecorder(nw.Node(nw.Link1.Dst))
		pr := probe.NewProber(nw.Sim, nw.Node(nw.Link1.Src), phy.Rate11, traffic.DefaultPayload)
		pr.SetPeriod(period)
		pr.Start()
		if interfere {
			// Bursty hidden transmitter on link 2. Bursts must be
			// sparse relative to the estimator's maximum-curvature
			// window (~0.14 S) or no clean window exists for the
			// sliding minimum to find.
			burst := traffic.NewCBR(nw.Sim, nw.Node(nw.Link2.Src), 9, nw.Link2.Dst,
				traffic.DefaultPayload, 5e6)
			nw.InstallDirectRoute(nw.Link2)
			var cycle func()
			on := false
			cycle = func() {
				if on {
					burst.Stop()
					nw.Sim.After(sim.Time(80)*period, cycle)
				} else {
					burst.Start()
					nw.Sim.After(sim.Time(5)*period, cycle)
				}
				on = !on
			}
			cycle()
		}
		nw.Sim.Run(nw.Sim.Now() + sim.Time(sc.ProbeWindow+10)*period)
		pr.Stop()
		trace := rec.Trace(nw.Link1.Src, probe.ClassData, sc.ProbeWindow)
		return Fig9Case{
			Name:  name,
			Curve: capacity.SlidingMinCurve(trace, capacity.DefaultWmin),
			P:     trace.MeasuredLoss(),
			Truth: nw.Medium.FrameLossProb(nw.Link1.Src, nw.Link1.Dst, phy.Rate11, traffic.DefaultPayload+phy.MACHeaderBytes),
			Est:   capacity.EstimateChannelLoss(trace, capacity.DefaultWmin),
		}
	}
	cases := runner.Map([]bool{false, true}, func(_ int, interfere bool) Fig9Case {
		if interfere {
			return run("hidden interferer", true)
		}
		return run("no interference", false)
	})
	return Fig9Result{Uniform: cases[0], Interfed: cases[1]}
}

// Print emits both curves.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: channel-loss estimator cases")
	caseName := map[capacity.EstimateCase]string{
		capacity.CaseUniform: "uniform/median",
		capacity.CaseKnee:    "log-fit knee",
		capacity.CaseShort:   "short trace",
	}
	for _, c := range []Fig9Case{r.Uniform, r.Interfed} {
		fmt.Fprintf(w, "-- %s: p=%.3f truth=%.3f est=%.3f (%s, W*=%d)\n",
			c.Name, c.P, c.Truth, c.Est.Pch, caseName[c.Est.Case], c.Est.W)
		step := len(c.Curve) / 16
		if step == 0 {
			step = 1
		}
		for wdx := capacity.DefaultWmin; wdx < len(c.Curve); wdx += step {
			fmt.Fprintf(w, "   W=%4d p_ch(W)=%.4f\n", wdx, c.Curve[wdx])
		}
	}
}

// Fig10Result is the estimator accuracy study: the error CDF at the full
// probing window and the RMSE as the window shrinks.
type Fig10Result struct {
	Errors    []float64 // |est - truth| per link at full window
	RMSEByS   map[int]float64
	WindowSet []int
}

// fig10Sample is one probed link's loss trace plus its analytic truth.
type fig10Sample struct {
	trace capacity.LossTrace
	truth float64
}

// RunFig10 probes all mesh nodes simultaneously (collision-rich, as in
// the paper's second phase) and scores the estimator against the
// analytic channel loss of each sampled link. The two rates are
// independent simulation cells; estimator scoring then fans out per
// sampled link.
func RunFig10(seed int64, sc Scale) Fig10Result {
	res, _ := RunFig10Sink(seed, sc, nil)
	return res
}

// RunFig10Sink is RunFig10 with per-cell streaming: each scored sample's
// signed errors are written to snk (series "sample") as scoring cells
// complete, in deterministic cell order, and the RMSE/CDF reduction is
// folded incrementally over that stream instead of a gathered grid. The
// summary series ("rmse") follows once every sample has streamed. A nil
// snk just skips the records; the returned result is identical either
// way, for any worker-pool size.
func RunFig10Sink(seed int64, sc Scale, snk sink.Sink) (Fig10Result, error) {
	res := Fig10Result{RMSEByS: map[int]float64{}}
	for _, w := range []int{100, 200, 320, 640, 1280} {
		if w < sc.ProbeWindow {
			res.WindowSet = append(res.WindowSet, w)
		}
	}
	res.WindowSet = append(res.WindowSet, sc.ProbeWindow)

	perRate := runner.Map([]phy.Rate{phy.Rate1, phy.Rate11}, func(_ int, rate phy.Rate) []fig10Sample {
		nw := topologyAtRate(seed+int64(rate), rate)
		period := probePeriodFor(rate, sc)
		links := nw.Links(rate)
		if len(links) > sc.Pairs {
			links = links[:sc.Pairs]
		}
		recs := make([]*probe.Recorder, len(nw.Nodes))
		for i, n := range nw.Nodes {
			recs[i] = probe.NewRecorder(n)
			pr := probe.NewProber(nw.Sim, n, rate, traffic.DefaultPayload)
			pr.SetPeriod(period)
			pr.Start()
		}
		nw.Sim.Run(nw.Sim.Now() + sim.Time(sc.ProbeWindow+10)*period)
		var samples []fig10Sample
		for _, l := range links {
			tr := recs[l.Dst].Trace(l.Src, probe.ClassData, sc.ProbeWindow)
			if len(tr) < sc.ProbeWindow/2 {
				continue
			}
			truth := nw.Medium.FrameLossProb(l.Src, l.Dst, rate, traffic.DefaultPayload+phy.MACHeaderBytes)
			samples = append(samples, fig10Sample{trace: tr, truth: truth})
		}
		return samples
	})
	var samples []fig10Sample
	for _, s := range perRate {
		samples = append(samples, s...)
	}

	// Score every sample at every window in parallel. Each sample streams
	// to the sink and folds into the reduction as its cell completes; the
	// ordered emission (runner.Stream) keeps the float accumulation in
	// sample order, so the aggregate is independent of scheduling and the
	// per-sample grid never has to be held in memory.
	var sinkErr error
	emit := func(rec sink.Record) {
		if snk != nil && sinkErr == nil {
			sinkErr = snk.Write(rec)
		}
	}
	var windowKeys []string // per-window record keys, built once per run
	if snk != nil {
		for _, s := range res.WindowSet {
			windowKeys = append(windowKeys, fmt.Sprintf("err_S%d", s))
		}
	}
	se := make([]float64, len(res.WindowSet))
	runner.Stream(samples, func(_ int, smp fig10Sample) []float64 {
		errs := make([]float64, len(res.WindowSet))
		for wi, s := range res.WindowSet {
			tr := smp.trace
			if len(tr) > s {
				tr = tr[len(tr)-s:]
			}
			est := capacity.EstimateChannelLoss(tr, capacity.DefaultWmin)
			errs[wi] = est.Pch - smp.truth
		}
		return errs
	}, func(i int, errs []float64) {
		for wi, s := range res.WindowSet {
			se[wi] += errs[wi] * errs[wi]
			if s == sc.ProbeWindow {
				res.Errors = append(res.Errors, math.Abs(errs[wi]))
			}
		}
		if snk != nil {
			fields := make([]sink.Field, 0, len(res.WindowSet)+1)
			fields = append(fields, sink.F("truth", samples[i].truth))
			for wi := range res.WindowSet {
				fields = append(fields, sink.F(windowKeys[wi], errs[wi]))
			}
			emit(sink.Record{Scenario: "fig10", Series: "sample", Cell: i, Fields: fields})
		}
	})
	for wi, s := range res.WindowSet {
		if len(samples) > 0 {
			res.RMSEByS[s] = math.Sqrt(se[wi] / float64(len(samples)))
		}
		if snk != nil {
			emit(sink.Record{Scenario: "fig10", Series: "rmse", Cell: wi, Fields: []sink.Field{
				sink.F("S", s), sink.F("rmse", res.RMSEByS[s]),
			}})
		}
	}
	return res, sinkErr
}

// Print emits the error CDF and the RMSE-vs-S series.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: channel-loss estimation accuracy (%d links)\n", len(r.Errors))
	cdf := stats.NewCDF(r.Errors)
	fmt.Fprintf(w, "(a) error CDF: median=%.3f p90=%.3f\n", cdf.Quantile(0.5), cdf.Quantile(0.9))
	fmt.Fprint(w, cdf.Format(12))
	fmt.Fprintln(w, "(b) RMSE vs probing window S:")
	for _, s := range r.WindowSet {
		fmt.Fprintf(w, "   S=%4d  RMSE=%.4f\n", s, r.RMSEByS[s])
	}
}

// Fig11Link is one link's capacity estimates, normalized by nominal.
type Fig11Link struct {
	Link    topology.Link
	MaxUDP  float64
	Online  float64 // Eq. 6 fed by the online loss estimate
	AdHoc   float64 // Ad Hoc Probe estimate
	Nominal float64
}

// Fig11Result compares the online capacity estimator with Ad Hoc Probe
// against measured maxUDP throughput.
type Fig11Result struct {
	Links      []Fig11Link
	OnlineRMSE float64 // vs maxUDP, normalized
	AdHocRMSE  float64
}

// RunFig11 measures sampled links in two phases: solo maxUDP, then
// concurrent probing plus Ad Hoc Probe packet pairs under background
// interference. Every (rate, pair) is an independent cell on its own
// mesh instance.
func RunFig11(seed int64, sc Scale) Fig11Result {
	type fig11Cell struct {
		rate phy.Rate
		pair PairSpec
	}
	var cells []fig11Cell
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		nw := topologyAtRate(seed+int64(rate)*13, rate)
		for _, p := range SamplePairs(nw, rate, sc.Pairs/2+1, seed+int64(rate)) {
			cells = append(cells, fig11Cell{rate: rate, pair: p})
		}
	}
	links := runner.Map(cells, func(_ int, c fig11Cell) *Fig11Link {
		rate := c.rate
		nw := topologyAtRate(seed+int64(rate)*13, rate)
		period := probePeriodFor(rate, sc)
		l := c.pair.L1
		nw.SetRate(l, rate)
		nominal := capacity.NominalGoodput(rate, traffic.DefaultPayload)

		// Phase 1: solo maxUDP.
		solo := measure.MaxUDP(nw, l, traffic.DefaultPayload, sc.PhaseDur)
		if solo.ThroughputBps <= 0 {
			return nil
		}

		// Phase 2: probing + packet pairs under background traffic
		// on the second sampled link.
		rec := probe.NewRecorder(nw.Node(l.Dst))
		pr := probe.NewProber(nw.Sim, nw.Node(l.Src), rate, traffic.DefaultPayload)
		pr.SetPeriod(period)
		nw.InstallDirectRoute(c.pair.L2)
		bg := traffic.NewCBR(nw.Sim, nw.Node(c.pair.L2.Src), 99, c.pair.L2.Dst, traffic.DefaultPayload,
			0.3*capacity.NominalGoodput(rate, traffic.DefaultPayload))
		nw.InstallDirectRoute(l)
		ah := probe.NewAdHocProbe(nw.Sim, nw.Node(l.Src), l.Dst, traffic.DefaultPayload,
			200, 4*period)
		pr.Start()
		bg.Start()
		ah.Start(nw.Node(l.Dst))
		nw.Sim.Run(nw.Sim.Now() + sim.Time(sc.ProbeWindow+10)*period)
		pr.Stop()
		bg.Stop()
		ah.Stop()

		est, ok := rec.Estimate(l.Src, sc.ProbeWindow)
		if !ok {
			return nil
		}
		online := capacity.MaxUDP(est.Pl, rate, traffic.DefaultPayload)
		return &Fig11Link{
			Link:    l,
			MaxUDP:  solo.ThroughputBps,
			Online:  online,
			AdHoc:   ah.EstimateBps(),
			Nominal: nominal,
		}
	})
	var res Fig11Result
	var onlineN, adhocN, truthN []float64
	for _, l := range links {
		if l == nil {
			continue
		}
		res.Links = append(res.Links, *l)
		onlineN = append(onlineN, l.Online/l.Nominal)
		adhocN = append(adhocN, l.AdHoc/l.Nominal)
		truthN = append(truthN, l.MaxUDP/l.Nominal)
	}
	res.OnlineRMSE = stats.RMSE(onlineN, truthN)
	res.AdHocRMSE = stats.RMSE(adhocN, truthN)
	return res
}

// Print emits per-link normalized estimates as in Fig. 11.
func (r Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 11: capacity estimation vs Ad Hoc Probe (%d links)\n", len(r.Links))
	fmt.Fprintln(w, "link      maxUDP/nom  online/nom  adhoc/nom")
	for _, l := range r.Links {
		fmt.Fprintf(w, "%-8s   %8.3f   %8.3f   %8.3f\n",
			l.Link, l.MaxUDP/l.Nominal, l.Online/l.Nominal, l.AdHoc/l.Nominal)
	}
	fmt.Fprintf(w, "normalized RMSE vs maxUDP: online=%.3f adhoc=%.3f (paper: online ~0.12, adhoc far worse)\n",
		r.OnlineRMSE, r.AdHocRMSE)
}
