package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core/capacity"
	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fig9Case is one channel-loss estimator example: the sliding-minimum
// curve, the measured loss rate, the true channel loss, and the estimate.
type Fig9Case struct {
	Name  string
	Curve []float64 // p_ch^(W) indexed by W
	P     float64   // measured loss rate
	Truth float64   // analytic channel loss (ground truth)
	Est   capacity.Estimate
}

// Fig9Result reproduces the two cases of Fig. 9.
type Fig9Result struct {
	Uniform  Fig9Case // p reached before S/2 (no interference)
	Interfed Fig9Case // collisions present, knee selection
}

// fig9Cell is one estimator trace case.
type fig9Cell struct {
	seed      int64
	sc        Scale
	name      string
	interfere bool
}

// fig9Exp probes one lossy link twice: alone, then under a hidden
// interferer, and records the estimator's view of both traces.
type fig9Exp struct{}

func (fig9Exp) Name() string { return "fig9" }
func (fig9Exp) Describe() string {
	return "channel-loss estimator cases (sliding-minimum curve and knee)"
}

func (fig9Exp) Cells(seed int64, sc Scale) []exp.Cell {
	return []exp.Cell{
		{Seed: seed, Data: fig9Cell{seed: seed, sc: sc, name: "no interference", interfere: false}},
		{Seed: seed, Data: fig9Cell{seed: seed, sc: sc, name: "hidden interferer", interfere: true}},
	}
}

func (fig9Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig9Cell)
	period := probePeriodFor(phy.Rate11, d.sc)
	nw := topology.TwoLink(d.seed, topology.IA, phy.Rate11, phy.Rate11)
	nw.Medium.SetBER(nw.Link1.Src, nw.Link1.Dst, 4e-6)
	rec := probe.NewRecorder(nw.Node(nw.Link1.Dst))
	pr := probe.NewProber(nw.Sim, nw.Node(nw.Link1.Src), phy.Rate11, traffic.DefaultPayload)
	pr.SetPeriod(period)
	pr.Start()
	if d.interfere {
		// Bursty hidden transmitter on link 2. Bursts must be
		// sparse relative to the estimator's maximum-curvature
		// window (~0.14 S) or no clean window exists for the
		// sliding minimum to find.
		burst := traffic.NewCBR(nw.Sim, nw.Node(nw.Link2.Src), 9, nw.Link2.Dst,
			traffic.DefaultPayload, 5e6)
		nw.InstallDirectRoute(nw.Link2)
		var cycle func()
		on := false
		cycle = func() {
			if on {
				burst.Stop()
				nw.Sim.After(sim.Time(80)*period, cycle)
			} else {
				burst.Start()
				nw.Sim.After(sim.Time(5)*period, cycle)
			}
			on = !on
		}
		cycle()
	}
	nw.Sim.Run(nw.Sim.Now() + sim.Time(d.sc.ProbeWindow+10)*period)
	pr.Stop()
	trace := rec.Trace(nw.Link1.Src, probe.ClassData, d.sc.ProbeWindow)
	est := capacity.EstimateChannelLoss(trace, capacity.DefaultWmin)
	return sink.Record{Fields: []sink.Field{
		sink.F("name", d.name),
		sink.F("p", trace.MeasuredLoss()),
		sink.F("truth", nw.Medium.FrameLossProb(nw.Link1.Src, nw.Link1.Dst, phy.Rate11, traffic.DefaultPayload+phy.MACHeaderBytes)),
		sink.F("est_pch", est.Pch),
		sink.F("est_w", est.W),
		sink.F("est_case", int(est.Case)),
		sink.F("est_p", est.P),
		sink.F("curve", capacity.SlidingMinCurve(trace, capacity.DefaultWmin)),
	}}
}

func (fig9Exp) Reduce(recs <-chan sink.Record) exp.Result {
	var res Fig9Result
	for rec := range recs {
		cs := Fig9Case{
			Name:  rec.Text("name"),
			Curve: rec.Floats("curve"),
			P:     rec.Float("p"),
			Truth: rec.Float("truth"),
			Est: capacity.Estimate{
				Pch:  rec.Float("est_pch"),
				W:    rec.Int("est_w"),
				Case: capacity.EstimateCase(rec.Int("est_case")),
				P:    rec.Float("est_p"),
			},
		}
		if rec.Cell == 0 {
			res.Uniform = cs
		} else {
			res.Interfed = cs
		}
	}
	return res
}

// RunFig9 runs both estimator cases through the experiment engine.
func RunFig9(seed int64, sc Scale) Fig9Result {
	res, _ := exp.Run(fig9Exp{}, seed, sc, exp.Options{})
	return res.(Fig9Result)
}

// Print emits both curves.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: channel-loss estimator cases")
	caseName := map[capacity.EstimateCase]string{
		capacity.CaseUniform: "uniform/median",
		capacity.CaseKnee:    "log-fit knee",
		capacity.CaseShort:   "short trace",
	}
	for _, c := range []Fig9Case{r.Uniform, r.Interfed} {
		fmt.Fprintf(w, "-- %s: p=%.3f truth=%.3f est=%.3f (%s, W*=%d)\n",
			c.Name, c.P, c.Truth, c.Est.Pch, caseName[c.Est.Case], c.Est.W)
		step := len(c.Curve) / 16
		if step == 0 {
			step = 1
		}
		for wdx := capacity.DefaultWmin; wdx < len(c.Curve); wdx += step {
			fmt.Fprintf(w, "   W=%4d p_ch(W)=%.4f\n", wdx, c.Curve[wdx])
		}
	}
}

// Fig10Result is the estimator accuracy study: the error CDF at the full
// probing window and the RMSE as the window shrinks.
type Fig10Result struct {
	Errors    []float64 // |est - truth| per link at full window
	RMSEByS   map[int]float64
	WindowSet []int
	// ErrCDF and ErrQuantiles render the |err| distribution as
	// streamable record series (series "err_cdf" with x/p points,
	// series "err_quantile" with q/v pairs) — the richer reduction
	// series the record pipeline carries alongside the scalar summary.
	ErrCDF       []sink.Record
	ErrQuantiles []sink.Record
}

// fig10Quantiles is the quantile set Fig. 10's error distribution is
// reduced to.
var fig10Quantiles = []float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// fig10Sample is one probed link's loss trace plus its analytic truth.
type fig10Sample struct {
	trace capacity.LossTrace
	truth float64
}

// fig10Windows is the probing-window sweep for a scale.
func fig10Windows(sc Scale) []float64 {
	var out []float64
	for _, w := range []int{100, 200, 320, 640, 1280} {
		if w < sc.ProbeWindow {
			out = append(out, float64(w))
		}
	}
	return append(out, float64(sc.ProbeWindow))
}

// fig10Share is one rate's probing phase: all mesh nodes probe
// simultaneously (collision-rich, as in the paper's second phase) in one
// simulation whose traces every scoring cell of that rate reads. It is
// computed lazily, once per process, by whichever cell runs first — a
// pure function of (seed, scale, rate), so every worker, process and
// shard sees bit-identical samples (the same contract the shared
// gain-table cache relies on).
type fig10Share struct {
	once    sync.Once
	seed    int64
	sc      Scale
	rate    phy.Rate
	samples map[topology.Link]fig10Sample
	// events holds the shared phase's per-link delivery decisions when
	// the share was built with capture on. The share owns the collector
	// and each scoring cell adopts only its own link's events, so trace
	// record placement is independent of which cell happened to build
	// the shared simulation.
	events map[trace.Link][]trace.Event
}

// sample returns one link's probing trace, building the shared phase on
// first use. captured turns on decision capture for the build; the
// engine enables capture uniformly per run, so every caller passes the
// same value and the once.Do winner is immaterial.
func (s *fig10Share) sample(l topology.Link, captured bool) (fig10Sample, bool) {
	s.once.Do(func() { s.build(captured) })
	smp, ok := s.samples[l]
	return smp, ok
}

func (s *fig10Share) build(captured bool) {
	nw := topologyAtRate(s.seed+int64(s.rate), s.rate)
	var col *trace.Collector
	if captured {
		col = trace.NewCollector()
		nw.Medium.SetTracer(col)
	}
	period := probePeriodFor(s.rate, s.sc)
	links := fig10Links(nw, s.rate, s.sc)
	recs := make([]*probe.Recorder, len(nw.Nodes))
	for i, n := range nw.Nodes {
		recs[i] = probe.NewRecorder(n)
		pr := probe.NewProber(nw.Sim, n, s.rate, traffic.DefaultPayload)
		pr.SetPeriod(period)
		pr.Start()
	}
	nw.Sim.Run(nw.Sim.Now() + sim.Time(s.sc.ProbeWindow+10)*period)
	s.samples = map[topology.Link]fig10Sample{}
	for _, l := range links {
		tr := recs[l.Dst].Trace(l.Src, probe.ClassData, s.sc.ProbeWindow)
		if len(tr) < s.sc.ProbeWindow/2 {
			continue
		}
		truth := nw.Medium.FrameLossProb(l.Src, l.Dst, s.rate, traffic.DefaultPayload+phy.MACHeaderBytes)
		s.samples[l] = fig10Sample{trace: tr, truth: truth}
	}
	if col != nil {
		s.events = map[trace.Link][]trace.Event{}
		for _, l := range col.Links() {
			s.events[l] = col.Events(l)
		}
	}
}

// fig10Links is the deterministic per-rate link sample.
func fig10Links(nw *topology.Network, rate phy.Rate, sc Scale) []topology.Link {
	links := nw.Links(rate)
	if len(links) > sc.Pairs {
		links = links[:sc.Pairs]
	}
	return links
}

// fig10Cell scores one probed link at every window.
type fig10Cell struct {
	share   *fig10Share
	link    topology.Link
	windows []float64
}

// fig10Exp probes all mesh nodes simultaneously at both rates and scores
// the estimator against the analytic channel loss of each sampled link.
// Cells are (rate, link) scoring units sharing the per-rate probe phase.
type fig10Exp struct{}

func (fig10Exp) Name() string { return "fig10" }
func (fig10Exp) Describe() string {
	return "channel-loss estimation accuracy: error CDF and RMSE vs window"
}

func (fig10Exp) Cells(seed int64, sc Scale) []exp.Cell {
	windows := fig10Windows(sc)
	var perRate [][]exp.Cell
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		share := &fig10Share{seed: seed, sc: sc, rate: rate}
		nw := topologyAtRate(seed+int64(rate), rate)
		var cells []exp.Cell
		for _, l := range fig10Links(nw, rate, sc) {
			cells = append(cells, exp.Cell{Seed: seed + int64(rate), Data: fig10Cell{
				share: share, link: l, windows: windows,
			}})
		}
		perRate = append(perRate, cells)
	}
	// Interleave the rates so the earliest cells span both shares: the
	// two probe simulations then build concurrently even when the pool
	// is small (a rate-major order would park every worker on the first
	// rate's once.Do and serialize the heavy phase).
	var cells []exp.Cell
	for i := 0; len(cells) < len(perRate[0])+len(perRate[1]); i++ {
		for _, rc := range perRate {
			if i < len(rc) {
				cells = append(cells, rc[i])
			}
		}
	}
	return cells
}

func (fig10Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig10Cell)
	cc, _ := c.Capture.(*trace.CellCapture)
	smp, ok := d.share.sample(d.link, cc != nil)
	if cc != nil {
		lk := trace.Link{Src: d.link.Src, Dst: d.link.Dst}
		cc.Adopt(lk, d.share.events[lk])
	}
	fields := []sink.Field{
		sink.F("link", d.link.String()),
		sink.F("skipped", !ok),
		sink.F("windows", d.windows),
	}
	if !ok {
		return sink.Record{Fields: fields}
	}
	errs := make([]float64, len(d.windows))
	for wi, wf := range d.windows {
		s := int(wf)
		tr := smp.trace
		if len(tr) > s {
			tr = tr[len(tr)-s:]
		}
		est := capacity.EstimateChannelLoss(tr, capacity.DefaultWmin)
		errs[wi] = est.Pch - smp.truth
	}
	fields = append(fields, sink.F("truth", smp.truth), sink.F("errs", errs))
	return sink.Record{Fields: fields}
}

func (fig10Exp) Reduce(recs <-chan sink.Record) exp.Result {
	res := Fig10Result{RMSEByS: map[int]float64{}}
	var se []float64
	samples := 0
	for rec := range recs {
		if res.WindowSet == nil {
			for _, w := range rec.Floats("windows") {
				res.WindowSet = append(res.WindowSet, int(w))
			}
			se = make([]float64, len(res.WindowSet))
		}
		if rec.Bool("skipped") {
			continue
		}
		errs := rec.Floats("errs")
		samples++
		for wi := range res.WindowSet {
			se[wi] += errs[wi] * errs[wi]
		}
		res.Errors = append(res.Errors, math.Abs(errs[len(errs)-1]))
	}
	if samples > 0 {
		for wi, s := range res.WindowSet {
			res.RMSEByS[s] = math.Sqrt(se[wi] / float64(samples))
		}
		cdf := stats.NewCDF(res.Errors)
		res.ErrCDF = cdf.Series("fig10", "err_cdf", 16)
		res.ErrQuantiles = cdf.QuantileSeries("fig10", "err_quantile", fig10Quantiles)
	}
	return res
}

// RunFig10 runs the estimator accuracy suite through the experiment
// engine.
func RunFig10(seed int64, sc Scale) Fig10Result {
	res, _ := exp.Run(fig10Exp{}, seed, sc, exp.Options{})
	return res.(Fig10Result)
}

// Print emits the error CDF, its quantile series and the RMSE-vs-S
// series.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: channel-loss estimation accuracy (%d links)\n", len(r.Errors))
	cdf := stats.NewCDF(r.Errors)
	fmt.Fprintf(w, "(a) error CDF: median=%.3f p90=%.3f\n", cdf.Quantile(0.5), cdf.Quantile(0.9))
	fmt.Fprint(w, cdf.Format(12))
	for _, q := range r.ErrQuantiles {
		fmt.Fprintf(w, "   q%02.0f |err|=%.4f\n", q.Float("q")*100, q.Float("v"))
	}
	fmt.Fprintln(w, "(b) RMSE vs probing window S:")
	for _, s := range r.WindowSet {
		fmt.Fprintf(w, "   S=%4d  RMSE=%.4f\n", s, r.RMSEByS[s])
	}
}

// Fig11Link is one link's capacity estimates, normalized by nominal.
type Fig11Link struct {
	Link    topology.Link
	MaxUDP  float64
	Online  float64 // Eq. 6 fed by the online loss estimate
	AdHoc   float64 // Ad Hoc Probe estimate
	Nominal float64
}

// Fig11Result compares the online capacity estimator with Ad Hoc Probe
// against measured maxUDP throughput.
type Fig11Result struct {
	Links      []Fig11Link
	OnlineRMSE float64 // vs maxUDP, normalized
	AdHocRMSE  float64
}

// fig11Cell is one (rate, pair) measurement cell.
type fig11Cell struct {
	seed int64
	sc   Scale
	rate phy.Rate
	pair PairSpec
}

// fig11Exp measures sampled links in two phases: solo maxUDP, then
// concurrent probing plus Ad Hoc Probe packet pairs under background
// interference. Every (rate, pair) is an independent cell on its own
// mesh instance.
type fig11Exp struct{}

func (fig11Exp) Name() string { return "fig11" }
func (fig11Exp) Describe() string {
	return "online capacity estimation vs Ad Hoc Probe on sampled links"
}

func (fig11Exp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate11} {
		nw := topologyAtRate(seed+int64(rate)*13, rate)
		for _, p := range SamplePairs(nw, rate, sc.Pairs/2+1, seed+int64(rate)) {
			cells = append(cells, exp.Cell{Seed: seed + int64(rate)*13, Data: fig11Cell{
				seed: seed, sc: sc, rate: rate, pair: p,
			}})
		}
	}
	return cells
}

func (fig11Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig11Cell)
	rate := d.rate
	nw := topologyAtRate(d.seed+int64(rate)*13, rate)
	period := probePeriodFor(rate, d.sc)
	l := d.pair.L1
	nw.SetRate(l, rate)
	nominal := capacity.NominalGoodput(rate, traffic.DefaultPayload)
	dead := sink.Record{Fields: []sink.Field{sink.F("ok", false)}}

	// Phase 1: solo maxUDP.
	solo := measure.MaxUDP(nw, l, traffic.DefaultPayload, d.sc.PhaseDur)
	if solo.ThroughputBps <= 0 {
		return dead
	}

	// Phase 2: probing + packet pairs under background traffic
	// on the second sampled link.
	rec := probe.NewRecorder(nw.Node(l.Dst))
	pr := probe.NewProber(nw.Sim, nw.Node(l.Src), rate, traffic.DefaultPayload)
	pr.SetPeriod(period)
	nw.InstallDirectRoute(d.pair.L2)
	bg := traffic.NewCBR(nw.Sim, nw.Node(d.pair.L2.Src), 99, d.pair.L2.Dst, traffic.DefaultPayload,
		0.3*capacity.NominalGoodput(rate, traffic.DefaultPayload))
	nw.InstallDirectRoute(l)
	ah := probe.NewAdHocProbe(nw.Sim, nw.Node(l.Src), l.Dst, traffic.DefaultPayload,
		200, 4*period)
	pr.Start()
	bg.Start()
	ah.Start(nw.Node(l.Dst))
	nw.Sim.Run(nw.Sim.Now() + sim.Time(d.sc.ProbeWindow+10)*period)
	pr.Stop()
	bg.Stop()
	ah.Stop()

	est, ok := rec.Estimate(l.Src, d.sc.ProbeWindow)
	if !ok {
		return dead
	}
	online := capacity.MaxUDP(est.Pl, rate, traffic.DefaultPayload)
	return sink.Record{Fields: []sink.Field{
		sink.F("ok", true),
		sink.F("src", l.Src),
		sink.F("dst", l.Dst),
		sink.F("maxudp_bps", solo.ThroughputBps),
		sink.F("online_bps", online),
		sink.F("adhoc_bps", ah.EstimateBps()),
		sink.F("nominal_bps", nominal),
	}}
}

func (fig11Exp) Reduce(recs <-chan sink.Record) exp.Result {
	var res Fig11Result
	var onlineN, adhocN, truthN []float64
	for rec := range recs {
		if !rec.Bool("ok") {
			continue
		}
		l := Fig11Link{
			Link:    topology.Link{Src: rec.Int("src"), Dst: rec.Int("dst")},
			MaxUDP:  rec.Float("maxudp_bps"),
			Online:  rec.Float("online_bps"),
			AdHoc:   rec.Float("adhoc_bps"),
			Nominal: rec.Float("nominal_bps"),
		}
		res.Links = append(res.Links, l)
		onlineN = append(onlineN, l.Online/l.Nominal)
		adhocN = append(adhocN, l.AdHoc/l.Nominal)
		truthN = append(truthN, l.MaxUDP/l.Nominal)
	}
	res.OnlineRMSE = stats.RMSE(onlineN, truthN)
	res.AdHocRMSE = stats.RMSE(adhocN, truthN)
	return res
}

// RunFig11 runs the capacity-estimation comparison through the
// experiment engine.
func RunFig11(seed int64, sc Scale) Fig11Result {
	res, _ := exp.Run(fig11Exp{}, seed, sc, exp.Options{})
	return res.(Fig11Result)
}

// Print emits per-link normalized estimates as in Fig. 11.
func (r Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 11: capacity estimation vs Ad Hoc Probe (%d links)\n", len(r.Links))
	fmt.Fprintln(w, "link      maxUDP/nom  online/nom  adhoc/nom")
	for _, l := range r.Links {
		fmt.Fprintf(w, "%-8s   %8.3f   %8.3f   %8.3f\n",
			l.Link, l.MaxUDP/l.Nominal, l.Online/l.Nominal, l.AdHoc/l.Nominal)
	}
	fmt.Fprintf(w, "normalized RMSE vs maxUDP: online=%.3f adhoc=%.3f (paper: online ~0.12, adhoc far worse)\n",
		r.OnlineRMSE, r.AdHocRMSE)
}
