package experiments

import (
	"bytes"
	"io"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
)

// renderShard streams one shard of an experiment to JSONL under a pinned
// worker count.
func renderShard(t *testing.T, e exp.Experiment, seed int64, sc Scale, shard exp.Shard, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	withWorkers(workers, func() {
		s := sink.NewJSONL(&buf)
		if _, err := exp.Run(e, seed, sc, exp.Options{Sink: s, Shard: shard}); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return buf.Bytes()
}

// TestFig10ShardMergeByteIdentical is the cross-process determinism
// contract: 2-way and 3-way shards of Fig. 10 — each run with a
// different worker count — merge back to the byte-identical unsharded
// JSONL stream and the identical reduction.
func TestFig10ShardMergeByteIdentical(t *testing.T) {
	sc := detScale()
	full, fullRes := renderJSONL(t, fig10Exp{}, 4, sc, max(2, runtime.GOMAXPROCS(0)))
	if len(full) == 0 {
		t.Fatal("Fig10 streamed no records")
	}
	for _, k := range []int{2, 3} {
		var ins []io.Reader
		for i := 0; i < k; i++ {
			// Vary the pool size per shard: worker count must never
			// leak into the bytes.
			workers := 1 + (i % runtime.GOMAXPROCS(0))
			ins = append(ins, bytes.NewReader(renderShard(t, fig10Exp{}, 4, sc, exp.Shard{Index: i, Count: k}, workers)))
		}
		var merged bytes.Buffer
		res, err := exp.Merge(ins, &merged)
		if err != nil {
			t.Fatalf("k=%d: merge: %v", k, err)
		}
		if !bytes.Equal(merged.Bytes(), full) {
			t.Fatalf("k=%d: merged shards differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s",
				k, merged.Bytes(), full)
		}
		if !reflect.DeepEqual(res, fullRes) {
			t.Fatalf("k=%d: merged reduction differs:\nmerged: %+v\nfull:   %+v", k, res, fullRes)
		}
	}
}

// TestFig14ShardMergeByteIdentical covers the config-windowed reduction:
// fig14's per-config fold must come out identical when rebuilt from
// merged shard records.
func TestFig14ShardMergeByteIdentical(t *testing.T) {
	sc := detScale()
	sc.Configs = 2
	full, fullRes := renderJSONL(t, fig14Exp{}, 9, sc, max(2, runtime.GOMAXPROCS(0)))
	if len(full) == 0 {
		t.Fatal("Fig14 streamed no records")
	}
	const k = 2
	var ins []io.Reader
	for i := 0; i < k; i++ {
		ins = append(ins, bytes.NewReader(renderShard(t, fig14Exp{}, 9, sc, exp.Shard{Index: i, Count: k}, i+1)))
	}
	var merged bytes.Buffer
	res, err := exp.Merge(ins, &merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatalf("merged shards differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s", merged.Bytes(), full)
	}
	if !reflect.DeepEqual(res, fullRes) {
		t.Fatalf("merged reduction differs:\nmerged: %+v\nfull:   %+v", res, fullRes)
	}
}

// TestEveryExperimentRunsAndReduces sweeps the whole registry at a tiny
// scale: every registered figure suite must enumerate cells, stream
// records through the engine, and reduce to a printable result — the
// acceptance contract behind `meshopt fig <name>`.
func TestEveryExperimentRunsAndReduces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure suite")
	}
	sc := detScale()
	for _, name := range exp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, ok := exp.Find(name)
			if !ok {
				t.Fatalf("registry lost %q", name)
			}
			mem := sink.NewMemory()
			res, err := exp.Run(e, 4, sc, exp.Options{Sink: mem})
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				t.Fatal("nil result")
			}
			if len(mem.Records()) == 0 {
				t.Fatal("no records streamed")
			}
			// Cell numbering must be gapless and in order; multi-record
			// experiments (RecordStreamer) may repeat a cell number
			// across consecutive records.
			next := 0
			for i, rec := range mem.Records() {
				if rec.Scenario != name {
					t.Fatalf("record %d not normalized: %+v", i, rec)
				}
				if rec.Cell == next {
					next++
				} else if rec.Cell != next-1 {
					t.Fatalf("record %d out of cell order (want %d or %d): %+v", i, next-1, next, rec)
				}
			}
			res.Print(io.Discard)
		})
	}
}
