package experiments

import (
	"fmt"
	"io"

	"repro/internal/core/optimize"
	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ValidationScales are the Fig. 8 scaling factors.
var ValidationScales = []float64{1, 1.1, 1.2, 1.5}

// FlowSample is one (estimated, achieved) pair from a validation run.
type FlowSample struct {
	Config   int
	Scale    float64
	Target   float64
	Achieved float64
}

// NetValidationResult aggregates Figs. 7, 8 and 12 data: the same
// injection runs evaluated under the measured-LIR and two-hop conflict
// models.
type NetValidationResult struct {
	LIRSamples     []FlowSample
	TwoHopSamples  []FlowSample
	SkippedConfigs int
}

// netvalidCell is one configuration's validation workload.
type netvalidCell struct {
	sc  Scale
	cfg FlowConfig
}

// netvalidExp executes the §4.5 methodology over generated
// configurations: proportional-fair rates from the model under test are
// injected at each scaling factor and the achieved throughputs recorded.
// Each configuration prepares its own mesh and runs both conflict models
// on it, so configurations fan out as independent cells; the record
// stream carries each configuration's samples in configuration order.
// One experiment feeds Figs. 7, 8 and 12 (the aliases resolve here).
type netvalidExp struct{}

func (netvalidExp) Name() string { return "netvalid" }
func (netvalidExp) Describe() string {
	return "network validation behind Figs. 7/8/12: feasible-region over/under-estimation and the two-hop model comparison"
}

func (netvalidExp) Cells(seed int64, sc Scale) []exp.Cell {
	cfgs := GenerateConfigs(seed, sc.Configs)
	cells := make([]exp.Cell, len(cfgs))
	for i, cfg := range cfgs {
		cells[i] = exp.Cell{Seed: cfg.Seed, Data: netvalidCell{sc: sc, cfg: cfg}}
	}
	return cells
}

func (e netvalidExp) RunCell(c exp.Cell) sink.Record {
	return e.RunCellRecords(c)[0]
}

// RunCellRecords implements exp.RecordStreamer: the configuration's
// sample record followed by one "residual"-series record exposing the
// per-link loss-rate residuals — measured solo network-layer loss
// minus the channel model's frame loss probability on every used
// link. The residual series rides the stream for analysis; Reduce
// folds "cell" records alone.
func (netvalidExp) RunCellRecords(c exp.Cell) []sink.Record {
	d := c.Data.(netvalidCell)
	skipped := 0
	var lir, twoHop []FlowSample
	v, err := PrepareValidation(d.cfg, d.sc)
	if err != nil {
		skipped = 1
		v = nil
	} else {
		for _, model := range []string{"lir", "twohop"} {
			region := v.RegionLIR(LIRThreshold)
			if model == "twohop" {
				region = v.RegionTwoHop()
			}
			runs, err := v.OptimizeAndInject(region, optimize.ProportionalFair, ValidationScales, d.sc)
			if err != nil {
				skipped++
				continue
			}
			for _, run := range runs {
				for s := range run.Target {
					sample := FlowSample{
						Scale:  run.Scale,
						Target: run.Target[s], Achieved: run.Achieved[s],
					}
					if model == "lir" {
						lir = append(lir, sample)
					} else {
						twoHop = append(twoHop, sample)
					}
				}
			}
		}
	}
	fields := []sink.Field{sink.F("skipped", skipped)}
	for _, group := range []struct {
		prefix  string
		samples []FlowSample
	}{{"lir", lir}, {"twohop", twoHop}} {
		scales := make([]float64, len(group.samples))
		targets := make([]float64, len(group.samples))
		achieved := make([]float64, len(group.samples))
		for i, s := range group.samples {
			scales[i], targets[i], achieved[i] = s.Scale, s.Target, s.Achieved
		}
		fields = append(fields,
			sink.F(group.prefix+"_scale", scales),
			sink.F(group.prefix+"_target", targets),
			sink.F(group.prefix+"_achieved", achieved))
	}
	recs := []sink.Record{{Fields: fields}}
	if v != nil {
		recs = append(recs, residualRecord(v, d.cfg))
	}
	return recs
}

// residualRecord renders one prepared configuration's per-link
// loss-rate residuals: the offline-measured solo loss next to the
// channel model's frame loss probability, and their difference.
func residualRecord(v *NetValidation, cfg FlowConfig) sink.Record {
	n := len(v.Links)
	src := make([]float64, n)
	dst := make([]float64, n)
	measured := make([]float64, n)
	model := make([]float64, n)
	residual := make([]float64, n)
	for i, l := range v.Links {
		src[i], dst[i] = float64(l.Src), float64(l.Dst)
		measured[i] = v.Loss[i]
		model[i] = v.Net.Medium.FrameLossProb(l.Src, l.Dst, cfg.Rate, traffic.DefaultPayload)
		residual[i] = measured[i] - model[i]
	}
	return sink.Record{
		Series: "residual",
		Fields: []sink.Field{
			sink.F("links", n),
			sink.F("src", src),
			sink.F("dst", dst),
			sink.F("measured_loss", measured),
			sink.F("model_loss", model),
			sink.F("residual", residual),
		},
	}
}

func (netvalidExp) Reduce(recs <-chan sink.Record) exp.Result {
	var res NetValidationResult
	for rec := range recs {
		if rec.Series != "" && rec.Series != "cell" {
			continue // residual/trace series are analysis-only
		}
		res.SkippedConfigs += rec.Int("skipped")
		for _, group := range []struct {
			prefix string
			out    *[]FlowSample
		}{{"lir", &res.LIRSamples}, {"twohop", &res.TwoHopSamples}} {
			scales := rec.Floats(group.prefix + "_scale")
			targets := rec.Floats(group.prefix + "_target")
			achieved := rec.Floats(group.prefix + "_achieved")
			for i := range scales {
				*group.out = append(*group.out, FlowSample{
					Config: rec.Cell, Scale: scales[i],
					Target: targets[i], Achieved: achieved[i],
				})
			}
		}
	}
	return res
}

// RunNetValidation executes the shared Figs. 7/8/12 validation suite
// through the experiment engine.
func RunNetValidation(seed int64, sc Scale) NetValidationResult {
	res, _ := exp.Run(netvalidExp{}, seed, sc, exp.Options{})
	return res.(NetValidationResult)
}

// scaleSamples filters samples at a scaling factor.
func scaleSamples(all []FlowSample, scale float64) []FlowSample {
	var out []FlowSample
	for _, s := range all {
		if s.Scale == scale {
			out = append(out, s)
		}
	}
	return out
}

// ratios returns achieved/target for the given samples (clamped at 0
// targets).
func ratios(samples []FlowSample) []float64 {
	var out []float64
	for _, s := range samples {
		if s.Target <= 0 {
			continue
		}
		out = append(out, s.Achieved/s.Target)
	}
	return out
}

// Fig7Stats summarizes the over-estimation scatter at scale 1 under the
// measured-LIR model: the fraction of points within 20% of the estimate
// and the worst-case shortfall.
func (r NetValidationResult) Fig7Stats() (within20 float64, worstErr float64) {
	rs := ratios(scaleSamples(r.LIRSamples, 1))
	if len(rs) == 0 {
		return 0, 0
	}
	var ok int
	worst := 0.0
	for _, v := range rs {
		if v >= 0.8 {
			ok++
		}
		if err := 1 - v; err > worst {
			worst = err
		}
	}
	return float64(ok) / float64(len(rs)), worst
}

// Fig8UnderEstimation returns, per scaling factor, the CDF of
// achieved/target ratios (Fig. 8a) under the measured-LIR model.
func (r NetValidationResult) Fig8UnderEstimation() map[float64]*stats.CDF {
	out := map[float64]*stats.CDF{}
	for _, sc := range ValidationScales {
		out[sc] = stats.NewCDF(ratios(scaleSamples(r.LIRSamples, sc)))
	}
	return out
}

// Fig8ScaledGain returns the CDF of best-scaled achieved over unscaled
// achieved per flow (Fig. 8b): values near 1 mean the model left little
// capacity unused.
func (r NetValidationResult) Fig8ScaledGain() *stats.CDF {
	// Samples appear in the same flow order at every scale, so matching
	// by position within the scale group pairs scaled and unscaled runs.
	byScale := map[float64][]FlowSample{}
	for _, s := range r.LIRSamples {
		byScale[s.Scale] = append(byScale[s.Scale], s)
	}
	unscaled := byScale[1]
	var gains []float64
	for i, s := range unscaled {
		best := s.Achieved
		for _, sc := range ValidationScales[1:] {
			list := byScale[sc]
			if i < len(list) && list[i].Achieved > best {
				best = list[i].Achieved
			}
		}
		if s.Achieved > 0 {
			gains = append(gains, best/s.Achieved)
		}
	}
	return stats.NewCDF(gains)
}

// Fig12Compare returns the per-scale RMSE of achieved vs target for both
// conflict models (Fig. 12b) plus the scale-1 ratio CDFs (Fig. 12a).
func (r NetValidationResult) Fig12Compare() (lirRMSE, twoHopRMSE map[float64]float64, lirCDF, twoHopCDF *stats.CDF) {
	lirRMSE = map[float64]float64{}
	twoHopRMSE = map[float64]float64{}
	for _, sc := range ValidationScales {
		lirRMSE[sc] = normRMSE(scaleSamples(r.LIRSamples, sc))
		twoHopRMSE[sc] = normRMSE(scaleSamples(r.TwoHopSamples, sc))
	}
	lirCDF = stats.NewCDF(ratios(scaleSamples(r.LIRSamples, 1)))
	twoHopCDF = stats.NewCDF(ratios(scaleSamples(r.TwoHopSamples, 1)))
	return
}

// normRMSE is the RMSE of achieved/target ratios from 1.
func normRMSE(samples []FlowSample) float64 {
	rs := ratios(samples)
	ones := make([]float64, len(rs))
	for i := range ones {
		ones[i] = 1
	}
	return stats.RMSE(rs, ones)
}

// Print emits the three figures' series.
func (r NetValidationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figures 7/8/12: network validation (%d LIR samples, %d two-hop samples, %d skipped)\n",
		len(r.LIRSamples), len(r.TwoHopSamples), r.SkippedConfigs)

	within, worst := r.Fig7Stats()
	fmt.Fprintf(w, "Fig 7 (over-estimation, LIR model, scale 1): %.0f%% of points within 20%% of estimate; worst shortfall %.0f%%\n",
		100*within, 100*worst)
	fmt.Fprintln(w, "Fig 7 scatter: target(kbps) achieved(kbps)")
	for _, s := range scaleSamples(r.LIRSamples, 1) {
		fmt.Fprintf(w, "  %10.0f %10.0f\n", s.Target/1e3, s.Achieved/1e3)
	}

	fmt.Fprintln(w, "Fig 8a: CDF of achieved/target per scaling factor (LIR model)")
	for _, sc := range ValidationScales {
		cdf := r.Fig8UnderEstimation()[sc]
		fmt.Fprintf(w, " scale %.1f: median=%.3f p10=%.3f\n", sc, cdf.Quantile(0.5), cdf.Quantile(0.1))
	}
	gain := r.Fig8ScaledGain()
	fmt.Fprintf(w, "Fig 8b: scaled/unscaled achieved: median=%.3f p90=%.3f (paper: ~10%% mean, 20%% worst)\n",
		gain.Quantile(0.5), gain.Quantile(0.9))

	lirR, twoR, lirC, twoC := r.Fig12Compare()
	fmt.Fprintln(w, "Fig 12: LIR vs two-hop interference model")
	fmt.Fprintf(w, " scale-1 ratio median: LIR=%.3f two-hop=%.3f\n", lirC.Quantile(0.5), twoC.Quantile(0.5))
	for _, sc := range ValidationScales {
		fmt.Fprintf(w, " scale %.1f RMSE: LIR=%.3f two-hop=%.3f\n", sc, lirR[sc], twoR[sc])
	}
}
