package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
	"repro/internal/obs"
)

// TestRecordStreamUnchangedByObservability pins the out-of-band
// contract: the record stream is a pure function of (experiment, seed,
// scale), so enabling the metrics registry must not perturb a single
// byte of it — at 1, 2 or GOMAXPROCS workers, for both the fig10 sweep
// and the broadcast dissemination family. The metrics-off run is the
// reference; every metrics-on run must reproduce it exactly.
func TestRecordStreamUnchangedByObservability(t *testing.T) {
	t.Cleanup(func() { obs.Default.SetEnabled(true) })
	bsc := detScale()
	bsc.Iterations = 2 // 24 nodes, 2 reps: 24 cells
	cases := []struct {
		name string
		e    exp.Experiment
		sc   Scale
	}{
		{"fig10", fig10Exp{}, detScale()},
		{"broadcast", broadcast.Default(), bsc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs.Default.SetEnabled(false)
			ref, refRes := renderJSONL(t, tc.e, 4, tc.sc, 1)
			if len(ref) == 0 {
				t.Fatalf("%s streamed no records", tc.name)
			}
			obs.Default.SetEnabled(true)
			for _, workers := range []int{1, 2, max(2, runtime.GOMAXPROCS(0))} {
				got, res := renderJSONL(t, tc.e, 4, tc.sc, workers)
				if !bytes.Equal(got, ref) {
					t.Fatalf("%s stream at %d workers with metrics on differs from the metrics-off reference:\ngot:\n%s\nref:\n%s",
						tc.name, workers, got, ref)
				}
				if !resultEqual(res, refRes) {
					t.Fatalf("%s reduction at %d workers differs with metrics on", tc.name, workers)
				}
			}
			// The instrumented runs must actually have recorded: a silently
			// disabled registry would make this test vacuous.
			if v := counterValue(t, "meshopt_runner_cells_completed_total"); v <= 0 {
				t.Fatalf("meshopt_runner_cells_completed_total = %v after instrumented runs, want > 0", v)
			}
		})
	}
}

// counterValue reads an unlabelled counter's value from the default
// registry's snapshot.
func counterValue(t *testing.T, name string) float64 {
	t.Helper()
	for _, f := range obs.Default.Snapshot().Families {
		if f.Name == name {
			return f.Series[0].Value
		}
	}
	return 0
}

// resultEqual compares reductions via their printed form (exp.Result is
// an interface; the printed summary is its observable surface).
func resultEqual(a, b exp.Result) bool {
	var ba, bb bytes.Buffer
	a.Print(&ba)
	b.Print(&bb)
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}
