package experiments

import (
	"io"
	"testing"
)

func TestExhaustiveVsMISRegion(t *testing.T) {
	sc := tinyScale()
	res := RunExhaustive(5, sc)
	if res.Sampled == 0 || len(res.MeasuredPoints) != 7 {
		t.Fatalf("bad run: %d samples, %d points", res.Sampled, len(res.MeasuredPoints))
	}
	// The MIS construction must agree with the exhaustively measured
	// region on most of the space...
	if res.MISAgreement < 0.7 {
		t.Fatalf("agreement %.2f too low", res.MISAgreement)
	}
	// ...and err on the conservative side when it disagrees (the
	// paper's FNs-not-FPs property).
	if res.MISConservative < 0.7 {
		t.Fatalf("MIS region over-estimates: conservative fraction %.2f", res.MISConservative)
	}
	res.Print(io.Discard)
}
