package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
)

// toyResult is the toy experiment's reduction: the running sum of every
// cell's value, in order.
type toyResult struct {
	Sum   float64
	Cells int
}

func (r toyResult) Print(w io.Writer) { fmt.Fprintf(w, "toy: sum=%g over %d cells\n", r.Sum, r.Cells) }

// toyExp is a minimal experiment: cell i contributes seed*100 + i.
type toyExp struct{ n int }

func (toyExp) Name() string     { return "toy" }
func (toyExp) Describe() string { return "toy experiment for engine tests" }

func (t toyExp) Cells(seed int64, sc Scale) []Cell {
	cells := make([]Cell, t.n)
	for i := range cells {
		cells[i] = Cell{Seed: seed, Data: i}
	}
	return cells
}

func (toyExp) RunCell(c Cell) sink.Record {
	i := c.Data.(int)
	return sink.Record{Fields: []sink.Field{
		sink.F("v", float64(c.Seed)*100+float64(i)),
	}}
}

func (toyExp) Reduce(recs <-chan sink.Record) Result {
	var res toyResult
	for rec := range recs {
		res.Sum += rec.Float("v")
		res.Cells++
	}
	return res
}

func init() { Register(toyExp{n: 7}) }

func TestRunNormalizesAndOrdersRecords(t *testing.T) {
	mem := sink.NewMemory()
	res, err := Run(toyExp{n: 7}, 3, Quick(), Options{Sink: mem})
	if err != nil {
		t.Fatal(err)
	}
	recs := mem.Records()
	if len(recs) != 7 {
		t.Fatalf("got %d records, want 7", len(recs))
	}
	for i, rec := range recs {
		if rec.Scenario != "toy" || rec.Series != "cell" || rec.Cell != i {
			t.Fatalf("record %d not normalized: %+v", i, rec)
		}
	}
	want := toyResult{Sum: 300*7 + 21, Cells: 7}
	if res != want {
		t.Fatalf("reduced %+v, want %+v", res, want)
	}
}

func TestRunShardSelectsResidueClass(t *testing.T) {
	mem := sink.NewMemory()
	res, err := Run(toyExp{n: 7}, 3, Quick(), Options{Sink: mem, Shard: Shard{Index: 1, Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("sharded run returned a result: %+v", res)
	}
	var cells []int
	for _, rec := range mem.Records() {
		cells = append(cells, rec.Cell)
	}
	if !reflect.DeepEqual(cells, []int{1, 4}) {
		t.Fatalf("shard 1/3 of 7 cells ran %v, want [1 4]", cells)
	}
}

func TestRunFromCellResumesStreamSuffix(t *testing.T) {
	render := func(o Options) []byte {
		var buf bytes.Buffer
		s := sink.NewJSONL(&buf)
		o.Sink = s
		res, err := Run(toyExp{n: 7}, 3, Quick(), o)
		if err != nil {
			t.Fatal(err)
		}
		if o.FromCell > 0 && res != nil {
			t.Fatalf("resumed run returned a result: %+v", res)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	full := render(Options{})
	for _, from := range []int{1, 3, 6, 7} {
		suffix := render(Options{FromCell: from})
		lines := bytes.SplitAfter(full, []byte("\n"))
		want := bytes.Join(lines[from:], nil)
		if !bytes.Equal(suffix, want) {
			t.Fatalf("FromCell=%d streamed:\n%swant:\n%s", from, suffix, want)
		}
	}
}

func TestRunProgressCountsCellsInOrder(t *testing.T) {
	for _, o := range []Options{{}, {FromCell: 2}, {Shard: Shard{Index: 0, Count: 2}}} {
		var dones []int
		total := -1
		o.Progress = func(done, tot int) {
			dones = append(dones, done)
			total = tot
		}
		if _, err := Run(toyExp{n: 7}, 3, Quick(), o); err != nil {
			t.Fatal(err)
		}
		want := 7
		if o.FromCell > 0 {
			want = 5
		} else if o.Shard.Enabled() {
			want = 4 // cells 0, 2, 4, 6
		}
		if len(dones) != want || total != want {
			t.Fatalf("%+v: progress calls %v (total %d), want %d increments", o.Shard, dones, total, want)
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("progress out of order: %v", dones)
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	if s, err := ParseShard("2/5"); err != nil || s != (Shard{Index: 2, Count: 5}) {
		t.Fatalf("ParseShard(2/5) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "x", "3/2", "2/2", "-1/2", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// renderShards returns the full JSONL stream plus each of k shard
// streams.
func renderShards(t *testing.T, k int) (full []byte, shards [][]byte) {
	t.Helper()
	render := func(shard Shard) []byte {
		var buf bytes.Buffer
		s := sink.NewJSONL(&buf)
		if _, err := Run(toyExp{n: 7}, 3, Quick(), Options{Sink: s, Shard: shard}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	full = render(Shard{})
	for i := 0; i < k; i++ {
		shards = append(shards, render(Shard{Index: i, Count: k}))
	}
	return full, shards
}

func TestMergeReassemblesShards(t *testing.T) {
	for _, k := range []int{2, 3, 8, 9} { // 8 > cells: some empty shards; 9 ≡ shards of ≤1 cell
		full, shards := renderShards(t, k)
		var ins []io.Reader
		for _, s := range shards {
			ins = append(ins, bytes.NewReader(s))
		}
		var merged bytes.Buffer
		res, err := Merge(ins, &merged)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !bytes.Equal(merged.Bytes(), full) {
			t.Fatalf("k=%d: merged stream differs:\nmerged:\n%s\nfull:\n%s", k, merged.Bytes(), full)
		}
		if res != (toyResult{Sum: 300*7 + 21, Cells: 7}) {
			t.Fatalf("k=%d: merged reduction %+v", k, res)
		}
	}
}

func TestMergeDetectsMissingShard(t *testing.T) {
	_, shards := renderShards(t, 2)
	if _, err := Merge([]io.Reader{bytes.NewReader(shards[1])}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("merge of a lone odd shard: err = %v, want missing-shard error", err)
	}
}

func TestMergeRejectsDuplicateShard(t *testing.T) {
	_, shards := renderShards(t, 2)
	// The same shard twice: duplicated cells must not silently
	// double-count in the reduction.
	ins := []io.Reader{bytes.NewReader(shards[0]), bytes.NewReader(shards[0]), bytes.NewReader(shards[1])}
	if _, err := Merge(ins, io.Discard); err == nil || !strings.Contains(err.Error(), "duplicated") {
		t.Fatalf("merge with a duplicated shard: err = %v, want duplicate-shard error", err)
	}
}

func TestMergeUnknownScenarioSkipsReduction(t *testing.T) {
	in := strings.NewReader(`{"scenario":"nope","series":"cell","cell":0,"v":1}` + "\n")
	var out bytes.Buffer
	res, err := Merge([]io.Reader{in}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("unexpected reduction: %+v", res)
	}
	if !strings.Contains(out.String(), `"scenario":"nope"`) {
		t.Fatalf("merged stream lost the record: %s", out.String())
	}
}

func TestRegistryFindAliasesAndNames(t *testing.T) {
	if _, ok := Find("toy"); !ok {
		t.Fatal("toy not registered")
	}
	RegisterAlias("toy-alias", "toy")
	if e, ok := Find("toy-alias"); !ok || e.Name() != "toy" {
		t.Fatal("alias did not resolve")
	}
	found := false
	for _, n := range Names() {
		if n == "toy-alias" {
			t.Fatal("alias leaked into Names")
		}
		if n == "toy" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing toy")
	}
}

// TestRunContextCancelStreamsPrefix: cancelling Options.Context stops
// the fan-out at a cell boundary and leaves the sink holding a
// byte-identical gapless prefix of the full run's stream — a valid
// resume checkpoint — with the error wrapping the cancellation cause.
func TestRunContextCancelStreamsPrefix(t *testing.T) {
	old := runner.SetWorkers(2)
	defer runner.SetWorkers(old)
	e := toyExp{n: 100}

	render := func(o Options) ([]byte, error) {
		var buf bytes.Buffer
		s := sink.NewJSONL(&buf)
		o.Sink = s
		_, err := Run(e, 3, Quick(), o)
		if cerr := s.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		return buf.Bytes(), err
	}
	full, err := render(Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	part, err := render(Options{
		Context: ctx,
		Progress: func(done, total int) {
			if done == 5 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled after") {
		t.Fatalf("error %v lacks progress accounting", err)
	}
	if !bytes.HasPrefix(full, part) {
		t.Fatalf("partial stream is not a byte-prefix of the full stream:\npartial:\n%s", part)
	}
	if n := bytes.Count(part, []byte("\n")); n < 5 || n >= 100 {
		t.Fatalf("partial stream has %d records, want [5, 100)", n)
	}
}

// failSink errors on the Nth write.
type failSink struct {
	n, failAt int
}

var errSinkFull = errors.New("sink full")

func (s *failSink) Write(sink.Record) error {
	s.n++
	if s.n >= s.failAt {
		return errSinkFull
	}
	return nil
}

func (s *failSink) Close() error { return nil }

// countingExp instruments RunCell so the test can observe how many
// cells actually executed.
type countingExp struct {
	toyExp
	ran *atomic.Int64
}

func (e countingExp) RunCell(c Cell) sink.Record {
	e.ran.Add(1)
	return e.toyExp.RunCell(c)
}

// TestRunSinkErrorAbortsFanout: once a sink write fails, the engine
// stops claiming cells — it must not compute hundreds of cells whose
// records have nowhere to land — and reports the sink error.
func TestRunSinkErrorAbortsFanout(t *testing.T) {
	old := runner.SetWorkers(2)
	defer runner.SetWorkers(old)
	var ran atomic.Int64
	e := countingExp{toyExp: toyExp{n: 400}, ran: &ran}
	_, err := Run(e, 3, Quick(), Options{Sink: &failSink{failAt: 5}})
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if n := ran.Load(); n >= 400 {
		t.Fatalf("all %d cells ran despite the sink failing at record 5", n)
	}
}
