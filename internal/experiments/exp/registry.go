package exp

import (
	"fmt"
	"sync"
)

// The registry maps experiment names to implementations. Experiments
// register themselves at init (internal/experiments registers every
// figure suite); the CLI, the scenario engine and Merge resolve names
// through Find.
var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
	aliases  = map[string]string{}
	regOrder []string
)

// Register adds an experiment under its Name. Registering a duplicate or
// empty name is a programming error and panics at init time.
func Register(e Experiment) {
	name := e.Name()
	if name == "" {
		panic("exp: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("exp: experiment %q collides with an alias", name))
	}
	registry[name] = e
	regOrder = append(regOrder, name)
}

// RegisterAlias makes alias resolve to the experiment registered under
// name (e.g. fig7/fig8/fig12 all resolve to the shared network
// validation suite).
func RegisterAlias(alias, name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; !ok {
		panic(fmt.Sprintf("exp: alias %q for unregistered %q", alias, name))
	}
	if _, dup := registry[alias]; dup {
		panic(fmt.Sprintf("exp: alias %q collides with an experiment", alias))
	}
	aliases[alias] = name
}

// Find resolves a name or alias to its experiment.
func Find(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if target, ok := aliases[name]; ok {
		name = target
	}
	e, ok := registry[name]
	return e, ok
}

// Names lists registered experiment names in registration order
// (aliases excluded).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// Aliases returns the alias map (alias -> canonical name).
func Aliases() map[string]string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make(map[string]string, len(aliases))
	for a, n := range aliases {
		out[a] = n
	}
	return out
}
