package exp

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/scenario/sink"
)

// Merger is the incremental, residue-aware k-way merge behind the shard
// coordinator: shard i of k owns the cells whose index ≡ i (mod k), and
// each shard's record lines arrive — in that shard's own ascending cell
// order — through Push while other shards are still producing. Records
// are written to out and fed to the experiment's reduction strictly in
// global cell order as soon as the frontier cell's records are
// available, so a merged run streams results while late shards are
// still running.
//
// Lines are written verbatim, so the merged bytes are identical to what
// an unsharded run would have streamed — the same byte-identity contract
// Merge gives whole shard files. Lines that start with '#' (the
// coordinator's shard-file completion markers) and blank lines are
// ignored, which lets checkpointed shard files be replayed through Push
// unfiltered.
//
// A fast shard running ahead of the frontier is buffered in memory until
// the frontier reaches its cells; the buffer is bounded by how far
// shards diverge, not by the sweep (shards of one experiment do equal
// work per cell, so divergence stays small in practice).
//
// Merger is not safe for concurrent use; the coordinator serializes
// Push/CloseShard/Finish under one mutex.
type Merger struct {
	out       *bufio.Writer
	k         int
	e         Experiment
	multi     bool // e's cells may emit several records
	queues    [][]mergeLine
	last      []int // last cell pushed per shard, -1 before the first
	closed    []bool
	next      int // frontier: first cell not yet fully emitted
	nEmitted  int // records emitted for the frontier cell
	autoFlush bool
	reduceCh  chan sink.Record
	done      chan Result
	finished  bool
}

type mergeLine struct {
	cell int
	line []byte
	rec  sink.Record
}

// NewMerger returns a Merger for a k-shard run of experiment e. The
// reduction starts immediately when e is non-nil (a nil e merges and
// validates the stream without reducing — Finish then returns a nil
// Result).
func NewMerger(out io.Writer, shards int, e Experiment) *Merger {
	if out == nil {
		out = io.Discard
	}
	m := &Merger{
		out:    bufio.NewWriter(out),
		k:      shards,
		e:      e,
		queues: make([][]mergeLine, shards),
		last:   make([]int, shards),
		closed: make([]bool, shards),
	}
	for i := range m.last {
		m.last[i] = -1
	}
	if e != nil {
		_, m.multi = e.(RecordStreamer)
		m.reduceCh = make(chan sink.Record, 64)
		m.done = make(chan Result, 1)
		go func(e Experiment, ch <-chan sink.Record) { m.done <- e.Reduce(ch) }(e, m.reduceCh)
	}
	return m
}

// AutoFlush makes the merger flush its output after every drain that
// emitted records, so a consumer tailing the merged stream live (e.g. a
// serving layer's record endpoint) sees cells promptly instead of
// waiting for the final flush. Off by default: batch runs want the
// plain buffered write path.
func (m *Merger) AutoFlush(on bool) { m.autoFlush = on }

// Push hands the merger shard's next record line. The line is decoded,
// validated against the shard's residue class and stream order, and
// buffered until the frontier reaches its cell; any records the push
// unblocks are emitted before Push returns.
func (m *Merger) Push(shard int, line []byte) error {
	if shard < 0 || shard >= m.k {
		return fmt.Errorf("exp: merger: shard %d out of range 0..%d", shard, m.k-1)
	}
	if m.closed[shard] {
		return fmt.Errorf("exp: merger: push on closed shard %d", shard)
	}
	if len(line) == 0 || line[0] == '#' {
		return nil
	}
	rec, err := sink.DecodeJSONL(line)
	if err != nil {
		return fmt.Errorf("exp: merger: shard %d: %w", shard, err)
	}
	switch {
	case rec.Cell < 0:
		return fmt.Errorf("exp: merger: shard %d: negative cell %d", shard, rec.Cell)
	case rec.Cell%m.k != shard:
		return fmt.Errorf("exp: merger: shard %d produced cell %d (≡ %d mod %d) — wrong residue class",
			shard, rec.Cell, rec.Cell%m.k, m.k)
	case rec.Cell < m.last[shard]:
		return fmt.Errorf("exp: merger: shard %d: cell %d after cell %d — stream out of order",
			shard, rec.Cell, m.last[shard])
	case rec.Cell == m.last[shard] && !m.multi && m.e != nil:
		return fmt.Errorf("exp: merger: shard %d: cell %d repeated — %s cells emit exactly one record",
			shard, rec.Cell, m.e.Name())
	}
	m.queues[shard] = append(m.queues[shard], mergeLine{
		cell: rec.Cell,
		line: append([]byte(nil), line...), // callers reuse their scan buffer
		rec:  rec,
	})
	m.last[shard] = rec.Cell
	return m.drain()
}

// CloseShard marks a shard's stream complete, letting the frontier
// advance past the shard's final cell.
func (m *Merger) CloseShard(shard int) error {
	if shard < 0 || shard >= m.k {
		return fmt.Errorf("exp: merger: shard %d out of range 0..%d", shard, m.k-1)
	}
	m.closed[shard] = true
	return m.drain()
}

// drain emits records while the frontier cell's records are available,
// then honours AutoFlush (an empty-buffer Flush is a no-op, so flushing
// per drain costs nothing when no records moved).
func (m *Merger) drain() error {
	err := m.drainQueues()
	if m.autoFlush {
		if ferr := m.out.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// drainQueues emits records while the frontier cell's records are
// available. The frontier advances past a cell once its owning shard
// produces a later cell or closes its stream — which is also why every
// cell must emit at least one record: a silent cell would stall here as
// a gap.
func (m *Merger) drainQueues() error {
	for {
		j := m.next % m.k
		q := m.queues[j]
		if len(q) == 0 {
			if m.closed[j] && m.nEmitted > 0 {
				m.next++
				m.nEmitted = 0
				continue
			}
			return nil // waiting on the frontier shard (or done)
		}
		head := q[0]
		if head.cell == m.next {
			if err := m.emit(head); err != nil {
				return err
			}
			m.queues[j] = q[1:]
			m.nEmitted++
			continue
		}
		// head.cell > m.next (same residue class, stream order checked
		// in Push): the frontier cell's block is over.
		if m.nEmitted == 0 {
			return fmt.Errorf("exp: merger: shard %d skipped cell %d (next record is cell %d) — truncated shard stream?",
				j, m.next, head.cell)
		}
		m.next++
		m.nEmitted = 0
	}
}

func (m *Merger) emit(l mergeLine) error {
	if _, err := m.out.Write(l.line); err != nil {
		return err
	}
	if err := m.out.WriteByte('\n'); err != nil {
		return err
	}
	if m.reduceCh != nil {
		m.reduceCh <- l.rec
	}
	return nil
}

// Finish closes every shard, validates that exactly expectedCells cells
// were merged, flushes the output and returns the reduction. A shortfall
// names the first missing cell and its shard — with the coordinator
// validating every shard's completion marker before Finish, it indicates
// a worker that lied about completing.
func (m *Merger) Finish(expectedCells int) (Result, error) {
	for j := range m.closed {
		m.closed[j] = true
	}
	if err := m.drain(); err != nil {
		m.Abort()
		return nil, err
	}
	if m.next != expectedCells {
		m.Abort()
		return nil, fmt.Errorf("exp: merger: merged %d of %d cells; first missing cell %d (shard %d of %d)",
			m.next, expectedCells, m.next, m.next%m.k, m.k)
	}
	for j, q := range m.queues {
		if len(q) > 0 {
			m.Abort()
			return nil, fmt.Errorf("exp: merger: shard %d holds %d records beyond cell %d (cells run past the enumeration?)",
				j, len(q), expectedCells-1)
		}
	}
	if err := m.out.Flush(); err != nil {
		m.Abort()
		return nil, err
	}
	res := m.stopReduction()
	return res, nil
}

// Abort tears the merger down without validation: the reduction
// goroutine is stopped and its partial result discarded. Safe to call
// after Finish (it is then a no-op); the coordinator defers it so a
// failed run leaks nothing.
func (m *Merger) Abort() {
	m.stopReduction()
	m.out.Flush()
}

func (m *Merger) stopReduction() Result {
	if m.finished {
		return nil
	}
	m.finished = true
	if m.reduceCh == nil {
		return nil
	}
	close(m.reduceCh)
	res := <-m.done
	m.reduceCh = nil
	return res
}

// Frontier reports merge progress: the first cell not yet fully merged.
func (m *Merger) Frontier() int { return m.next }

// Last reports the highest cell a shard has pushed so far, -1 before
// its first record. The coordinator uses it to locate a stolen shard's
// merge frontier when suffix-dispatching the re-run.
func (m *Merger) Last(shard int) int { return m.last[shard] }
