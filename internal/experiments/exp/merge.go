package exp

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/scenario/sink"
)

// CellRange is an inclusive range of cell indices.
type CellRange struct{ First, Last int }

func (r CellRange) String() string {
	if r.First == r.Last {
		return fmt.Sprintf("%d", r.First)
	}
	return fmt.Sprintf("%d-%d", r.First, r.Last)
}

// GapError reports a merge whose combined inputs do not cover the cell
// enumeration: Missing lists the absent cell ranges and Cells is the
// enumeration size the inputs implied (one past the highest cell seen).
// When the missing set is exactly a union of residue classes — the
// signature of whole shard streams left out of the merge — the message
// names them, so the fix ("pass shard i/k too") is immediate.
type GapError struct {
	Missing []CellRange
	Cells   int
}

func (e *GapError) Error() string {
	var ranges []string
	n := 0
	for _, r := range e.Missing {
		ranges = append(ranges, r.String())
		n += r.Last - r.First + 1
	}
	msg := fmt.Sprintf("exp: merge: missing %d of %d cells (%s)", n, e.Cells, strings.Join(ranges, ", "))
	if mod, classes, ok := e.residueClasses(); ok {
		var cs []string
		for _, c := range classes {
			cs = append(cs, fmt.Sprintf("%d/%d", c, mod))
		}
		msg += fmt.Sprintf(" — exactly the residue class(es) %s: were those shard streams passed?", strings.Join(cs, ", "))
	}
	return msg
}

// residueClasses reports the smallest modulus under which the missing
// set is exactly a union of full residue classes of [0, Cells).
func (e *GapError) residueClasses() (mod int, classes []int, ok bool) {
	if e.Cells < 2 {
		return 0, nil, false
	}
	missing := make([]bool, e.Cells)
	for _, r := range e.Missing {
		for c := r.First; c <= r.Last && c < e.Cells; c++ {
			missing[c] = true
		}
	}
	maxMod := e.Cells
	if maxMod > 64 { // realistic shard counts; keeps the scan O(64·N)
		maxMod = 64
	}
	for m := 2; m <= maxMod; m++ {
		inClass := make([]bool, m)
		for c, miss := range missing {
			if miss {
				inClass[c%m] = true
			}
		}
		match, all := true, true
		for c, miss := range missing {
			if miss != inClass[c%m] {
				match = false
				break
			}
		}
		for _, in := range inClass {
			all = all && in
		}
		if match && !all { // every class missing would explain nothing
			for r, in := range inClass {
				if in {
					classes = append(classes, r)
				}
			}
			return m, classes, true
		}
	}
	return 0, nil, false
}

// Merge recombines shard record streams (JSONL, as written by sharded
// Run invocations) into the unsharded stream and its reduction.
//
// Lines are k-way merged by ascending cell index and written to out
// *verbatim*, so the merged bytes are identical to what an unsharded run
// would have streamed — the byte-identity contract holds across process
// boundaries without re-serialization. Lines starting with '#' (the
// coordinator's shard-file completion markers) and blank lines are
// skipped, so checkpointed shard files from a `meshopt coord` run
// directory merge as-is. In parallel, each line is decoded and fed to
// the Reduce of the experiment registered under the stream's scenario
// name; the returned Result is nil when the name resolves to no
// registered experiment (e.g. a declarative scenario stream).
//
// Merge validates the merged cell sequence. Cells must cover 0..max
// without gaps — a repeated cell is only legal when the stream's
// experiment emits several records per cell (RecordStreamer) or is
// unregistered. On a gap, Merge stops writing and reducing (out keeps
// its valid gapless prefix), keeps scanning to map the full extent of
// the damage, and returns a *GapError naming every missing cell range
// and, when they line up, the missing residue classes. Tail truncation
// (the final shard absent entirely) is undetectable here — only the
// coordinator, which enumerates the cells, can catch it.
func Merge(ins []io.Reader, out io.Writer) (Result, error) {
	if out == nil {
		out = io.Discard
	}
	type cursor struct {
		sc   *bufio.Scanner
		line []byte
		rec  sink.Record
		ok   bool
	}
	advance := func(c *cursor) error {
		for c.sc.Scan() {
			line := c.sc.Bytes()
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			rec, err := sink.DecodeJSONL(line)
			if err != nil {
				return err
			}
			c.line = append(c.line[:0], line...)
			c.rec = rec
			c.ok = true
			return nil
		}
		c.ok = false
		return c.sc.Err()
	}

	cursors := make([]*cursor, len(ins))
	for i, in := range ins {
		cursors[i] = &cursor{sc: sink.NewLineScanner(in)}
		if err := advance(cursors[i]); err != nil {
			return nil, fmt.Errorf("exp: merge: shard %d: %w", i, err)
		}
	}

	bw := bufio.NewWriter(out)
	var (
		reduceCh chan sink.Record
		done     chan Result
		started  bool
		multi    bool // the stream's experiment emits several records per cell
		curCell  = -1 // cell currently being copied
		curOwner = -1 // cursor the current cell's records come from
		nextCell int  // first cell not yet seen
		missing  []CellRange
	)
	finish := func() Result {
		if reduceCh == nil {
			return nil
		}
		close(reduceCh)
		reduceCh = nil
		return <-done
	}
	defer finish()

	for {
		// Pick the cursor holding the smallest cell index (ties break to
		// the earliest shard argument — disjoint residue classes never
		// tie, so this only matters for degenerate inputs).
		best := -1
		for i, c := range cursors {
			if c.ok && (best < 0 || c.rec.Cell < cursors[best].rec.Cell) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cursors[best]

		if !started {
			started = true
			if e, ok := Find(c.rec.Scenario); ok {
				_, multi = e.(RecordStreamer)
				reduceCh = make(chan sink.Record, 64)
				done = make(chan Result, 1)
				go func(e Experiment, ch <-chan sink.Record) { done <- e.Reduce(ch) }(e, reduceCh)
			} else {
				multi = true // unregistered streams may carry several records per cell
			}
		}
		switch {
		case c.rec.Cell == curCell:
			// Another record of the cell being copied. One cell's records
			// always live in one shard stream, so a repeat from a
			// *different* cursor means the same shard (or an overlapping
			// residue spec) was passed twice — and even within one
			// cursor a repeat is only legal for multi-record streams.
			// Either mistake would silently double-count in Reduce.
			if best != curOwner || !multi {
				return nil, fmt.Errorf("exp: merge: cell %d repeated — duplicated shard or overlapping residue spec?",
					c.rec.Cell)
			}
		case c.rec.Cell == nextCell:
			curCell, curOwner, nextCell = c.rec.Cell, best, c.rec.Cell+1
		case c.rec.Cell > nextCell:
			// A gap: a shard stream is missing or truncated. Keep
			// scanning to report the full missing set, but stop writing
			// (out keeps its gapless prefix) and abandon the reduction.
			missing = append(missing, CellRange{First: nextCell, Last: c.rec.Cell - 1})
			finish()
			curCell, curOwner, nextCell = c.rec.Cell, best, c.rec.Cell+1
		default: // c.rec.Cell < curCell: the merge already moved past it
			return nil, fmt.Errorf("exp: merge: cell %d after cell %d — duplicated shard or unsorted stream?",
				c.rec.Cell, curCell)
		}

		if len(missing) == 0 {
			if _, err := bw.Write(c.line); err != nil {
				return nil, err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return nil, err
			}
			if reduceCh != nil {
				reduceCh <- c.rec
			}
		}
		if err := advance(c); err != nil {
			return nil, fmt.Errorf("exp: merge: shard %d: %w", best, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		return nil, &GapError{Missing: missing, Cells: nextCell}
	}
	return finish(), nil
}
