package exp

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/scenario/sink"
)

// Merge recombines shard record streams (JSONL, as written by sharded
// Run invocations) into the unsharded stream and its reduction.
//
// Lines are k-way merged by ascending cell index and written to out
// *verbatim*, so the merged bytes are identical to what an unsharded run
// would have streamed — the byte-identity contract holds across process
// boundaries without re-serialization. In parallel, each line is decoded
// and fed to the Reduce of the experiment registered under the stream's
// scenario name; the returned Result is nil when the name resolves to no
// registered experiment (e.g. a declarative scenario stream).
//
// Merge validates that the merged cell sequence is gapless from cell 0
// (each record's cell equals the previous record's or follows it by
// one), which catches a missing or truncated shard before it silently
// corrupts a reduction.
func Merge(ins []io.Reader, out io.Writer) (Result, error) {
	if out == nil {
		out = io.Discard
	}
	type cursor struct {
		sc   *bufio.Scanner
		line []byte
		rec  sink.Record
		ok   bool
	}
	advance := func(c *cursor) error {
		for c.sc.Scan() {
			line := c.sc.Bytes()
			if len(line) == 0 {
				continue
			}
			rec, err := sink.DecodeJSONL(line)
			if err != nil {
				return err
			}
			c.line = append(c.line[:0], line...)
			c.rec = rec
			c.ok = true
			return nil
		}
		c.ok = false
		return c.sc.Err()
	}

	cursors := make([]*cursor, len(ins))
	for i, in := range ins {
		cursors[i] = &cursor{sc: sink.NewLineScanner(in)}
		if err := advance(cursors[i]); err != nil {
			return nil, fmt.Errorf("exp: merge: shard %d: %w", i, err)
		}
	}

	bw := bufio.NewWriter(out)
	var (
		reduceCh chan sink.Record
		done     chan Result
		started  bool
		nextCell int
	)
	finish := func() Result {
		if reduceCh == nil {
			return nil
		}
		close(reduceCh)
		reduceCh = nil
		return <-done
	}
	defer finish()

	for {
		// Pick the cursor holding the smallest cell index (ties break to
		// the earliest shard argument — disjoint residue classes never
		// tie, so this only matters for degenerate inputs).
		best := -1
		for i, c := range cursors {
			if c.ok && (best < 0 || c.rec.Cell < cursors[best].rec.Cell) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cursors[best]

		if !started {
			started = true
			if e, ok := Find(c.rec.Scenario); ok {
				reduceCh = make(chan sink.Record, 64)
				done = make(chan Result, 1)
				go func(e Experiment, ch <-chan sink.Record) { done <- e.Reduce(ch) }(e, reduceCh)
			}
		}
		// Experiment shard streams carry exactly one record per cell, so
		// a reduction demands a strictly gapless, duplicate-free cell
		// sequence — a repeated cell means the same shard (or an
		// overlapping residue spec) was passed twice and would silently
		// double-count in Reduce. Streams with no registered experiment
		// (e.g. a scenario's multi-record cells) only need the sequence
		// to stay contiguous.
		if c.rec.Cell != nextCell && (reduceCh != nil || c.rec.Cell != nextCell-1) {
			return nil, fmt.Errorf("exp: merge: cell %d follows cell %d — missing, truncated or duplicated shard?",
				c.rec.Cell, nextCell-1)
		}
		nextCell = c.rec.Cell + 1

		if _, err := bw.Write(c.line); err != nil {
			return nil, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return nil, err
		}
		if reduceCh != nil {
			reduceCh <- c.rec
		}
		if err := advance(c); err != nil {
			return nil, fmt.Errorf("exp: merge: shard %d: %w", best, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return finish(), nil
}
