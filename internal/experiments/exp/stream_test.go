package exp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario/sink"
)

// multiToy is a RecordStreamer experiment: cell i emits two records
// (series "a" and "b") plus values derived from the seed.
type multiToy struct{ n int }

func (multiToy) Name() string     { return "multitoy" }
func (multiToy) Describe() string { return "multi-record toy experiment" }

func (t multiToy) Cells(seed int64, sc Scale) []Cell {
	cells := make([]Cell, t.n)
	for i := range cells {
		cells[i] = Cell{Seed: seed, Data: i}
	}
	return cells
}

func (t multiToy) RunCell(c Cell) sink.Record { return t.RunCellRecords(c)[0] }

func (t multiToy) RunCellRecords(c Cell) []sink.Record {
	i := c.Data.(int)
	return []sink.Record{
		{Series: "a", Fields: []sink.Field{sink.F("v", float64(c.Seed)*10+float64(i))}},
		{Series: "b", Fields: []sink.Field{sink.F("w", float64(i))}},
	}
}

func (multiToy) Reduce(recs <-chan sink.Record) Result {
	var res toyResult
	for rec := range recs {
		if rec.Series == "a" {
			res.Sum += rec.Float("v")
			res.Cells++
		}
	}
	return res
}

func init() { Register(multiToy{n: 5}) }

func TestRunStreamsMultiRecordCells(t *testing.T) {
	mem := sink.NewMemory()
	res, err := Run(multiToy{n: 5}, 2, Quick(), Options{Sink: mem})
	if err != nil {
		t.Fatal(err)
	}
	recs := mem.Records()
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		wantSeries := "a"
		if i%2 == 1 {
			wantSeries = "b"
		}
		if rec.Scenario != "multitoy" || rec.Cell != i/2 || rec.Series != wantSeries {
			t.Fatalf("record %d not normalized: %+v", i, rec)
		}
	}
	if res != (toyResult{Sum: 20*5 + 10, Cells: 5}) {
		t.Fatalf("reduced %+v", res)
	}
}

func TestMergeMultiRecordShards(t *testing.T) {
	render := func(shard Shard) []byte {
		var buf bytes.Buffer
		s := sink.NewJSONL(&buf)
		if _, err := Run(multiToy{n: 5}, 2, Quick(), Options{Sink: s, Shard: shard}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return buf.Bytes()
	}
	full := render(Shard{})
	var merged bytes.Buffer
	res, err := Merge([]io.Reader{
		bytes.NewReader(render(Shard{Index: 0, Count: 2})),
		bytes.NewReader(render(Shard{Index: 1, Count: 2})),
	}, &merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatalf("merged multi-record stream differs:\n%s\nvs\n%s", merged.Bytes(), full)
	}
	if res != (toyResult{Sum: 20*5 + 10, Cells: 5}) {
		t.Fatalf("merged reduction %+v", res)
	}
}

func TestMergeRejectsDuplicateMultiRecordShard(t *testing.T) {
	render := func(shard Shard) []byte {
		var buf bytes.Buffer
		s := sink.NewJSONL(&buf)
		if _, err := Run(multiToy{n: 5}, 2, Quick(), Options{Sink: s, Shard: shard}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return buf.Bytes()
	}
	s0, s1 := render(Shard{Index: 0, Count: 2}), render(Shard{Index: 1, Count: 2})
	// The same shard twice: even though multi-record streams may repeat
	// a cell within one input, a repeat across inputs is a duplicated
	// shard and must not silently double-count.
	ins := []io.Reader{bytes.NewReader(s0), bytes.NewReader(s0), bytes.NewReader(s1)}
	if _, err := Merge(ins, io.Discard); err == nil || !strings.Contains(err.Error(), "duplicated") {
		t.Fatalf("merge with a duplicated multi-record shard: err = %v", err)
	}
}

func TestMergeNamesMissingResidueClasses(t *testing.T) {
	_, shards := renderShards(t, 3)
	// Only shard 1 of 3: cells 1 and 4 present. Cells 0, 2-3 are gaps
	// (5-6 are tail truncation, which only the coordinator — knowing
	// the enumeration — can catch); over the visible range 0..4 the
	// missing set is exactly residue classes 0 and 2 mod 3.
	_, err := Merge([]io.Reader{bytes.NewReader(shards[1])}, io.Discard)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("err = %v, want *GapError", err)
	}
	want := []CellRange{{0, 0}, {2, 3}}
	if !reflect.DeepEqual(gap.Missing, want) {
		t.Fatalf("missing = %v, want %v", gap.Missing, want)
	}
	for _, frag := range []string{"missing", "0/3", "2/3"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %q", err, frag)
		}
	}
}

func TestMergeSkipsMarkerLines(t *testing.T) {
	full, shards := renderShards(t, 2)
	withMarker := func(b []byte) io.Reader {
		return bytes.NewReader(append(b, []byte("#done records=4 sha256=feed\n")...))
	}
	var merged bytes.Buffer
	if _, err := Merge([]io.Reader{withMarker(shards[0]), withMarker(shards[1])}, &merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full) {
		t.Fatalf("marker lines leaked into the merge:\n%s", merged.Bytes())
	}
}

// pushAll feeds a rendered shard stream line-by-line into a Merger.
func pushAll(t *testing.T, m *Merger, shard int, stream []byte) {
	t.Helper()
	for _, line := range bytes.Split(stream, []byte{'\n'}) {
		if err := m.Push(shard, line); err != nil {
			t.Fatalf("push shard %d: %v", shard, err)
		}
	}
}

func TestMergerLiveMergeAnyArrivalOrder(t *testing.T) {
	full, shards := renderShards(t, 3)
	// Worst-case arrival: the last residue class streams first. The
	// merger must buffer it and still emit the global cell order.
	var out bytes.Buffer
	e, _ := Find("toy")
	m := NewMerger(&out, 3, e)
	for _, shard := range []int{2, 1, 0} {
		pushAll(t, m, shard, shards[shard])
		if err := m.CloseShard(shard); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Finish(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), full) {
		t.Fatalf("merged stream differs:\n%s\nvs\n%s", out.Bytes(), full)
	}
	if res != (toyResult{Sum: 300*7 + 21, Cells: 7}) {
		t.Fatalf("reduction %+v", res)
	}
}

func TestMergerStreamsFrontierBeforeLateShards(t *testing.T) {
	_, shards := renderShards(t, 2)
	var out bytes.Buffer
	m := NewMerger(&out, 2, nil)
	defer m.Abort()
	pushAll(t, m, 0, shards[0]) // cells 0,2,4,6 — only cell 0 can emit
	if err := m.CloseShard(0); err != nil {
		t.Fatal(err)
	}
	if m.Frontier() != 1 {
		t.Fatalf("frontier = %d before shard 1 arrived, want 1", m.Frontier())
	}
	if got := bytes.Count(out.Bytes(), []byte{'\n'}); got > 1 {
		// The merger's own bufio may hold emitted lines; it must not
		// have emitted beyond the frontier.
		t.Fatalf("emitted %d lines while the frontier shard is missing", got)
	}
}

func TestMergerRejectsWrongResidueAndDisorder(t *testing.T) {
	_, shards := renderShards(t, 2)
	m := NewMerger(io.Discard, 2, nil)
	defer m.Abort()
	lines := bytes.Split(bytes.TrimSpace(shards[0]), []byte{'\n'})
	if err := m.Push(1, lines[0]); err == nil || !strings.Contains(err.Error(), "residue") {
		t.Fatalf("wrong-residue push: err = %v", err)
	}
	if err := m.Push(0, lines[0]); err != nil { // cell 0 emits
		t.Fatal(err)
	}
	if err := m.Push(0, lines[2]); err != nil { // cell 4 buffers (frontier is 1)
		t.Fatal(err)
	}
	if err := m.Push(0, lines[1]); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order push: err = %v", err)
	}
}

func TestMergerFlagsFrontierShardSkippingItsCell(t *testing.T) {
	_, shards := renderShards(t, 2)
	m := NewMerger(io.Discard, 2, nil)
	defer m.Abort()
	lines := bytes.Split(bytes.TrimSpace(shards[0]), []byte{'\n'})
	// Shard 0 owns the frontier (cell 0) but opens with cell 2: a
	// truncated stream, flagged as soon as it is visible.
	if err := m.Push(0, lines[1]); err == nil || !strings.Contains(err.Error(), "skipped cell 0") {
		t.Fatalf("skip push: err = %v", err)
	}
}

func TestMergerFinishReportsMissingShard(t *testing.T) {
	_, shards := renderShards(t, 2)
	m := NewMerger(io.Discard, 2, nil)
	defer m.Abort()
	pushAll(t, m, 0, shards[0])
	if _, err := m.Finish(7); err == nil || !strings.Contains(err.Error(), "missing cell 1") {
		t.Fatalf("finish without shard 1: err = %v", err)
	}
}

func TestNamedScale(t *testing.T) {
	if sc, ok := NamedScale("quick"); !ok || sc != Quick() {
		t.Fatal("quick did not resolve")
	}
	if sc, ok := NamedScale("paper"); !ok || sc != Paper() {
		t.Fatal("paper did not resolve")
	}
	if _, ok := NamedScale("warp"); ok {
		t.Fatal("bogus scale resolved")
	}
}

// Ensure the duplicate-shard detection still fires for single-record
// experiments pushed through the Merger (same cell twice).
func TestMergerRejectsRepeatedCellForSingleRecordExperiment(t *testing.T) {
	_, shards := renderShards(t, 2)
	e, _ := Find("toy")
	m := NewMerger(io.Discard, 2, e)
	defer m.Abort()
	lines := bytes.Split(bytes.TrimSpace(shards[0]), []byte{'\n'})
	if err := m.Push(0, lines[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Push(0, lines[0]); err == nil || !strings.Contains(err.Error(), "repeated") {
		t.Fatalf("repeated cell push: err = %v", err)
	}
}
