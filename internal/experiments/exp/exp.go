// Package exp is the unified experiment abstraction: every figure of the
// paper's evaluation — and any workload shaped like one — is a sweep of
// independent simulation cells reduced to a result over an ordered record
// stream.
//
// An Experiment declares its cell enumeration (Cells: inputs plus
// pre-assigned seeds, computed before any fan-out), a deterministic
// private-state cell body (RunCell), and a streaming reduction (Reduce)
// that folds records in cell order. The engine (Run) owns everything
// else: fanning cells over the parallel worker pool, normalizing and
// streaming one record per cell to a sink in deterministic cell order,
// and feeding the same ordered stream to the reduction.
//
// Because the record stream is the *only* channel between cells and the
// reduction, a run can be split across processes: Run with a Shard
// executes one residue class of the cell enumeration and streams its
// records, and Merge recombines shard streams into the byte-identical
// unsharded stream and the same reduction. The engine's determinism
// contract therefore extends across process boundaries: for any worker
// count and any shard count, merged output is bit-identical to a
// single-process run.
//
// The contract a cell body must honour is the runner's usual one:
// derive all randomness from the cell's own inputs, build private
// simulator/medium/node state, and write only to its return value.
// Cells() itself must be a pure function of (seed, Scale) so every
// shard enumerates the identical cell list.
package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/experiments/runner"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
)

// Engine metrics, labelled by experiment name. Strictly out-of-band:
// they time and count cells, never inspect or alter their records, so
// the streamed bytes are identical with the registry on or off.
var (
	metRuns = obs.Default.CounterVec("meshopt_exp_runs_total",
		"Engine runs started.", "experiment")
	metCellSeconds = obs.Default.HistogramVec("meshopt_exp_cell_seconds",
		"Wall time per cell body (capture overhead excluded).", obs.TimeBuckets(), "experiment")
	metCaptureSeconds = obs.Default.CounterVec("meshopt_exp_capture_seconds_total",
		"Wall time spent collecting capture records.", "experiment")
	metCaptureRecords = obs.Default.CounterVec("meshopt_exp_capture_records_total",
		"Capture records appended to cell streams.", "experiment")
)

// Scale sets the fidelity/runtime trade-off of an experiment run.
type Scale struct {
	// PhaseDur is the duration of one activation/measurement phase
	// (the paper uses 30 s per phase).
	PhaseDur sim.Time
	// Pairs bounds how many link pairs Fig. 3/10/11-style sweeps visit.
	Pairs int
	// Configs bounds how many network configurations Figs. 7/8/12/14
	// evaluate.
	Configs int
	// Iterations is the per-configuration repeat count.
	Iterations int
	// GridN is the per-axis resolution of feasibility-region sampling.
	GridN int
	// ProbeWindow is the estimator window S in probes.
	ProbeWindow int
	// ProbePeriod is the probing period.
	ProbePeriod sim.Time
	// TrafficDur is the duration of TCP/UDP application phases.
	TrafficDur sim.Time
}

// Quick is the scale used by unit benches and tests: phases of a couple
// of simulated seconds, few repetitions.
func Quick() Scale {
	return Scale{
		PhaseDur:    2 * sim.Second,
		Pairs:       12,
		Configs:     3,
		Iterations:  2,
		GridN:       5,
		ProbeWindow: 200,
		ProbePeriod: 40 * sim.Millisecond,
		TrafficDur:  8 * sim.Second,
	}
}

// NamedScale resolves the scale names the CLI and the distributed worker
// protocol exchange ("quick", "paper"). Passing scales by name instead of
// by value keeps the cross-process contract trivial: both sides of a
// shard dispatch construct the identical Scale struct.
func NamedScale(name string) (Scale, bool) {
	switch name {
	case "quick":
		return Quick(), true
	case "paper":
		return Paper(), true
	}
	return Scale{}, false
}

// Paper approximates the paper's measurement durations (kept shorter than
// the literal 30 s phases — the simulator's variance, unlike a testbed's,
// is purely statistical and converges faster).
func Paper() Scale {
	return Scale{
		PhaseDur:    10 * sim.Second,
		Pairs:       141,
		Configs:     10,
		Iterations:  5,
		GridN:       8,
		ProbeWindow: 1280,
		ProbePeriod: 100 * sim.Millisecond,
		TrafficDur:  30 * sim.Second,
	}
}

// Cell is one independent simulation unit of an experiment: a seed
// assigned before the fan-out plus the experiment's own cell payload.
// Index is the cell's position in the experiment's enumeration; the
// engine assigns it, experiments never set it. Capture, when non-nil,
// is the engine-provided capture hook (Options.Capture) the cell body
// should attach to whatever it simulates; after the body returns, the
// engine appends the capture's records to the cell's stream.
type Cell struct {
	Index   int
	Seed    int64
	Data    any
	Capture Capture
}

// Capture is a per-cell capture handle: a cell body attaches it to its
// simulation (experiments decide how — e.g. installing it as a PHY
// tracer), and after the body returns the engine appends Records to the
// cell's record stream. The engine stamps Scenario and Cell; Series
// must be set by the capture (so reductions can filter capture series
// out).
//
// Determinism contract: Records must be a pure function of the cell's
// execution, so capture-enabled runs inherit the byte-identity
// guarantee — and the non-capture records of a capture-enabled run are
// byte-identical to a capture-off run.
type Capture interface {
	Records() []sink.Record
}

// Result is a reduced experiment outcome; every figure's result type
// satisfies it.
type Result interface {
	Print(w io.Writer)
}

// Experiment is one cell-streaming experiment. Implementations must keep
// the three methods deterministic: Cells a pure function of its inputs,
// RunCell private-state (per the runner contract), and Reduce a pure
// function of the ordered record stream — the stream is the only data
// that crosses a process boundary when a run is sharded, so anything the
// reduction needs must ride in the records.
type Experiment interface {
	// Name is the registry key and the Scenario stamped on every record.
	Name() string
	// Describe is the one-line description `meshopt list` shows.
	Describe() string
	// Cells enumerates the run's independent cells, seeds pre-assigned.
	Cells(seed int64, sc Scale) []Cell
	// RunCell executes one cell and returns its record. The engine
	// overwrites the record's Scenario and Cell and defaults its Series
	// to "cell", so implementations only populate Fields (and Series
	// when they want a non-default one). Experiments whose cells emit
	// several records implement RecordStreamer as well; the engine then
	// prefers RunCellRecords.
	RunCell(c Cell) sink.Record
	// Reduce folds the ordered record stream (one record per cell, in
	// cell order) into the experiment's result.
	Reduce(recs <-chan sink.Record) Result
}

// RecordStreamer is an optional Experiment extension for suites whose
// cells emit a variable number of records — e.g. a scenario sweep cell
// emits one row per link, flow and probe estimate. When an experiment
// implements it, the engine calls RunCellRecords instead of RunCell and
// streams every returned record (in slice order) under the cell's index.
//
// Every cell must emit at least one record: the shard/merge machinery
// validates cell coverage from the record stream alone, so a zero-record
// cell would be indistinguishable from a truncated shard. The engine
// panics on an empty return to keep that contract loud.
type RecordStreamer interface {
	RunCellRecords(c Cell) []sink.Record
}

// Shard selects one residue class of a cell enumeration: a run with
// Shard{i, k} executes exactly the cells whose index ≡ i (mod k). The
// zero value means unsharded.
type Shard struct {
	Index, Count int
}

// Enabled reports whether the shard selects a strict subset of cells.
func (s Shard) Enabled() bool { return s.Count > 0 }

func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses an "i/k" shard spec (0 <= i < k).
func ParseShard(spec string) (Shard, error) {
	var s Shard
	if _, err := fmt.Sscanf(spec, "%d/%d", &s.Index, &s.Count); err != nil {
		return Shard{}, fmt.Errorf("exp: shard %q: want i/k (e.g. 0/2)", spec)
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return Shard{}, fmt.Errorf("exp: shard %q: need 0 <= i < k", spec)
	}
	return s, nil
}

// Options tunes an engine run.
type Options struct {
	// Sink receives the streamed per-cell records; nil discards them.
	Sink sink.Sink
	// Shard restricts the run to one residue class of cells. A sharded
	// run streams records but skips the reduction (Run returns a nil
	// Result); Merge recombines shard streams and reduces.
	Shard Shard
	// FromCell skips cells with Index < FromCell — the resume path of a
	// serving layer whose checkpoint already holds the stream's prefix.
	// Like sharded runs, a resumed run streams records but skips the
	// reduction (the prefix records are not in this run's stream, so a
	// partial reduction would be wrong).
	FromCell int
	// Progress, when set, observes streaming progress: done counts the
	// cells this run has completed (their records already handed to the
	// sink) and total the cells this run will execute. It is called on
	// the streaming goroutine, serialized, in cell order.
	Progress func(done, total int)
	// Context, when set, makes the run cancellable: cancelling it stops
	// the fan-out at the next cell boundary instead of waiting out the
	// whole sweep. The records streamed before the cut are a gapless
	// cell-order prefix of the full run's stream — a valid, resumable
	// checkpoint — and Run returns an error wrapping ctx's cause. Nil
	// means the run cannot be cancelled.
	Context context.Context
	// Capture, when set, is called once per executing cell (on that
	// cell's worker goroutine, so the factory must be safe for
	// concurrent calls) and the returned capture rides the cell through
	// its body; its records are appended after the cell's own records.
	// Capture records are never fed to the reduction — Reduce sees
	// exactly the capture-off stream.
	Capture func(c Cell) Capture
}

// Run executes an experiment: enumerate cells, fan them over the worker
// pool, stream one normalized record per cell to the sink in cell order,
// and reduce the same stream. The returned Result is nil for sharded
// runs (a partial reduction would be meaningless); the error is the
// first sink write failure or the cancellation cause, if any.
//
// A sink write failure aborts the fan-out at the next cell boundary —
// there is no point computing cells whose records can no longer land
// anywhere — which is also what stops an in-process distributed worker
// promptly when its output pipe is closed from the coordinator side.
//
// Determinism: the record stream — and therefore the reduction — is
// bit-identical for any worker count, and the concatenation (by Merge)
// of all k shard streams is bit-identical to the unsharded stream. A
// cancelled run's stream is a bit-identical prefix of the full stream.
func Run(e Experiment, seed int64, sc Scale, o Options) (Result, error) {
	cells := e.Cells(seed, sc)
	for i := range cells {
		cells[i].Index = i
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// A private cancel lets the sink-error path abort the fan-out
	// without requiring the caller to have provided a context.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	// When the caller's context carries a trace span, the whole engine
	// run nests under an "exp.run" child and the fan-out's per-cell spans
	// nest under that. Untraced contexts leave runSpan nil and every span
	// call below no-ops.
	runSpan := span.FromContext(ctx).Child("exp.run",
		span.Str("experiment", e.Name()),
		span.Str("shard", o.Shard.String()),
		span.Int("from_cell", o.FromCell))
	defer runSpan.End()
	runCtx = span.NewContext(runCtx, runSpan)
	snk := o.Sink
	if snk == nil {
		snk = sink.Discard
	}
	streamer, multi := e.(RecordStreamer)
	// cellOut carries a cell's records plus the boundary between the
	// body's own records and the appended capture records — the latter
	// are streamed to the sink but never fed to the reduction.
	type cellOut struct {
		recs []sink.Record
		own  int
	}
	observing := obs.Default.Enabled()
	cellSeconds := metCellSeconds.With(e.Name())
	captureSeconds := metCaptureSeconds.With(e.Name())
	captureRecords := metCaptureRecords.With(e.Name())
	metRuns.With(e.Name()).Inc()
	runCell := func(_ int, c Cell) cellOut {
		if o.Capture != nil {
			c.Capture = o.Capture(c)
		}
		var bodyStart time.Time
		if observing {
			bodyStart = time.Now()
		}
		var recs []sink.Record
		if multi {
			recs = streamer.RunCellRecords(c)
			if len(recs) == 0 {
				panic(fmt.Sprintf("exp: %s cell %d emitted no records (RecordStreamer cells must emit at least one)",
					e.Name(), c.Index))
			}
		} else {
			recs = []sink.Record{e.RunCell(c)}
		}
		if observing {
			cellSeconds.Observe(time.Since(bodyStart).Seconds())
		}
		own := len(recs)
		if c.Capture != nil {
			var capStart time.Time
			if observing {
				capStart = time.Now()
			}
			recs = append(recs, c.Capture.Records()...)
			if observing {
				captureSeconds.Add(time.Since(capStart).Seconds())
				captureRecords.Add(float64(len(recs) - own))
			}
		}
		for i := range recs {
			recs[i].Scenario = e.Name()
			recs[i].Cell = c.Index
			if recs[i].Series == "" {
				recs[i].Series = "cell"
			}
		}
		return cellOut{recs: recs, own: own}
	}

	progress := o.Progress
	if progress == nil {
		progress = func(int, int) {}
	}

	if o.Shard.Enabled() || o.FromCell > 0 {
		var mine []Cell
		for _, c := range cells {
			if o.Shard.Enabled() && c.Index%o.Shard.Count != o.Shard.Index {
				continue
			}
			if c.Index < o.FromCell {
				continue
			}
			mine = append(mine, c)
		}
		var sinkErr error
		done := 0
		runErr := runner.StreamCtx(runCtx, runner.Workers(), mine, runCell, func(_ int, out cellOut) {
			for _, rec := range out.recs {
				if sinkErr == nil {
					if sinkErr = snk.Write(rec); sinkErr != nil {
						stop()
					}
				}
			}
			done++
			progress(done, len(mine))
		})
		if sinkErr != nil {
			return nil, sinkErr
		}
		if runErr != nil {
			return nil, fmt.Errorf("exp: %s cancelled after %d/%d cells: %w", e.Name(), done, len(mine), context.Cause(runCtx))
		}
		return nil, nil
	}

	// The reduction consumes the stream concurrently with the sink; both
	// see records in cell order. The deferred close keeps the reducer
	// goroutine from leaking if a cell panics mid-run.
	ch := make(chan sink.Record, 4*runner.Workers())
	done := make(chan Result, 1)
	go func() {
		reduceSpan := runSpan.Child("reduce")
		r := e.Reduce(ch)
		reduceSpan.End()
		done <- r
	}()
	closed := false
	closeCh := func() {
		if !closed {
			closed = true
			close(ch)
		}
	}
	defer closeCh()
	var sinkErr error
	cellsDone := 0
	runErr := runner.StreamCtx(runCtx, runner.Workers(), cells, runCell, func(_ int, out cellOut) {
		for i, rec := range out.recs {
			if sinkErr == nil {
				if sinkErr = snk.Write(rec); sinkErr != nil {
					stop()
				}
			}
			if i < out.own {
				ch <- rec
			}
		}
		cellsDone++
		progress(cellsDone, len(cells))
	})
	closeCh()
	res := <-done
	if sinkErr != nil {
		return nil, sinkErr
	}
	if runErr != nil {
		// A partial reduction would be wrong; only the streamed prefix
		// (a valid resume checkpoint) survives a cancelled run.
		return nil, fmt.Errorf("exp: %s cancelled after %d/%d cells: %w", e.Name(), cellsDone, len(cells), context.Cause(runCtx))
	}
	return res, nil
}
