package experiments

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
	"repro/internal/obs/span"
	"repro/internal/scenario/sink"
)

// renderTraced runs an experiment with a span recorder threaded through
// the context and returns the record bytes plus the canonical span
// tree.
func renderTraced(t *testing.T, e exp.Experiment, seed int64, sc Scale, workers int) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	rec := span.NewRecorder()
	root := rec.Root("test")
	withWorkers(workers, func() {
		s := sink.NewJSONL(&buf)
		_, err := exp.Run(e, seed, sc, exp.Options{
			Sink:    s,
			Context: span.NewContext(context.Background(), root),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	root.End()
	return buf.Bytes(), span.Tree(rec.Snapshot())
}

// TestRecordStreamUnchangedByTracing extends the out-of-band contract
// to span capture: threading a live span recorder through a run must
// not perturb a byte of the record stream — at 1, 2 or GOMAXPROCS
// workers, for both the fig10 sweep and the broadcast family. And the
// span *structure* (tree shape, names, attrs) must itself be
// deterministic: the same run traced at any worker count yields the
// same canonical tree; only durations may differ.
func TestRecordStreamUnchangedByTracing(t *testing.T) {
	bsc := detScale()
	bsc.Iterations = 2
	cases := []struct {
		name string
		e    exp.Experiment
		sc   Scale
	}{
		{"fig10", fig10Exp{}, detScale()},
		{"broadcast", broadcast.Default(), bsc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, _ := renderJSONL(t, tc.e, 4, tc.sc, 1)
			if len(ref) == 0 {
				t.Fatalf("%s streamed no records", tc.name)
			}
			var refTree string
			for _, workers := range []int{1, 2, max(2, runtime.GOMAXPROCS(0))} {
				got, tree := renderTraced(t, tc.e, 4, tc.sc, workers)
				if !bytes.Equal(got, ref) {
					t.Fatalf("%s stream at %d workers with tracing on differs from the untraced reference:\ngot:\n%s\nref:\n%s",
						tc.name, workers, got, ref)
				}
				if refTree == "" {
					refTree = tree
				} else if tree != refTree {
					t.Fatalf("%s span tree at %d workers differs from the 1-worker tree:\ngot:\n%s\nwant:\n%s",
						tc.name, workers, tree, refTree)
				}
			}
			// The capture must not be vacuous: the tree carries the run
			// and its per-cell spans.
			if !strings.Contains(refTree, "exp.run") {
				t.Fatalf("span tree has no exp.run span:\n%s", refTree)
			}
			cells := strings.Count(refTree, "cell{")
			records := bytes.Count(ref, []byte("\n"))
			if cells == 0 || records%cells != 0 {
				t.Fatalf("span tree has %d cell spans for %d records (want one span per cell):\n%s",
					cells, records, refTree)
			}
		})
	}
}
