package experiments

import (
	"fmt"
	"io"

	"repro/internal/core/feasibility"
	"repro/internal/experiments/exp"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ExhaustiveResult compares the paper's §3.2 offline alternative — using
// the measured output rates of every backlogged link-activation
// combination as secondary extreme points (O(2^L) measurements, needs
// downtime) — against the online MIS construction from primaries plus the
// binary conflict graph.
type ExhaustiveResult struct {
	Links []topology.Link
	// MeasuredPoints[k] is the measured output-rate vector of the k-th
	// nonempty activation combination.
	MeasuredPoints [][]float64
	// MISAgreement is the fraction of sampled rate vectors on which the
	// two regions agree.
	MISAgreement float64
	// MISConservative is the fraction of disagreements where the MIS
	// region is the smaller one (under-estimates, never over).
	MISConservative float64
	Sampled         int
}

// exhaustiveLinks are the chain links every activation combination
// draws from.
var exhaustiveLinks = []topology.Link{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}

// exhaustiveCell is one activation-mask measurement.
type exhaustiveCell struct {
	seed int64
	sc   Scale
	mask int
}

// exhaustiveExp measures every activation combination of the first three
// links of a mesh chain and compares the resulting measured-point region
// with the MIS region built from solo capacities and measured pairwise
// LIRs. Each activation combination is an independent cell on its own
// chain instance.
type exhaustiveExp struct{}

func (exhaustiveExp) Name() string { return "exhaustive" }
func (exhaustiveExp) Describe() string {
	return "O(2^L) measured feasibility region vs the online MIS construction (§3.2 offline alternative)"
}

func (exhaustiveExp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for mask := 1; mask < 1<<len(exhaustiveLinks); mask++ {
		cells = append(cells, exp.Cell{Seed: seed, Data: exhaustiveCell{seed: seed, sc: sc, mask: mask}})
	}
	return cells
}

func (exhaustiveExp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(exhaustiveCell)
	nw := topology.Chain(d.seed, 4, 70, phy.Rate11)
	var active []topology.Link
	for i := range exhaustiveLinks {
		if d.mask&(1<<i) != 0 {
			active = append(active, exhaustiveLinks[i])
		}
	}
	out := measure.Simultaneous(nw, active, traffic.DefaultPayload, d.sc.PhaseDur)
	point := make([]float64, len(exhaustiveLinks))
	ai := 0
	for i := range exhaustiveLinks {
		if d.mask&(1<<i) != 0 {
			point[i] = out[ai].ThroughputBps
			ai++
		}
	}
	return sink.Record{Fields: []sink.Field{
		sink.F("mask", d.mask),
		sink.F("point_bps", point),
	}}
}

func (exhaustiveExp) Reduce(recs <-chan sink.Record) exp.Result {
	links := exhaustiveLinks
	res := ExhaustiveResult{Links: links}
	byMask := map[int][]float64{}
	for rec := range recs {
		point := rec.Floats("point_bps")
		byMask[rec.Int("mask")] = point
		res.MeasuredPoints = append(res.MeasuredPoints, point)
	}
	if len(byMask) < 1<<len(links)-1 {
		return res
	}
	exhaustive := &feasibility.Region{Points: res.MeasuredPoints,
		Capacities: []float64{byMask[1][0], byMask[2][1], byMask[4][2]}}

	// The online-style construction: solo capacities + pairwise LIR.
	caps := exhaustive.Capacities
	lir := make([][]float64, len(links))
	for i := range lir {
		lir[i] = make([]float64, len(links))
		lir[i][i] = 1
	}
	pairMask := func(i, j int) int { return 1<<i | 1<<j }
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			p := byMask[pairMask(i, j)]
			l := (p[i] + p[j]) / (caps[i] + caps[j])
			lir[i][j], lir[j][i] = l, l
		}
	}
	v := &NetValidation{Caps: caps, LIR: lir}
	mis := v.RegionLIR(LIRThreshold)

	// Sample the capacity box and compare membership.
	const grid = 6
	agree, disagreeConservative, disagree := 0, 0, 0
	y := make([]float64, len(links))
	var visit func(d int)
	visit = func(d int) {
		if d == len(links) {
			res.Sampled++
			inEx := exhaustive.Contains(y)
			inMIS := mis.Contains(y)
			switch {
			case inEx == inMIS:
				agree++
			case inEx && !inMIS:
				disagree++
				disagreeConservative++
			default:
				disagree++
			}
			return
		}
		for k := 1; k <= grid; k++ {
			y[d] = caps[d] * float64(k) / grid
			visit(d + 1)
		}
	}
	visit(0)
	res.MISAgreement = float64(agree) / float64(res.Sampled)
	if disagree > 0 {
		res.MISConservative = float64(disagreeConservative) / float64(disagree)
	} else {
		res.MISConservative = 1
	}
	return res
}

// RunExhaustive runs the region comparison through the experiment
// engine.
func RunExhaustive(seed int64, sc Scale) ExhaustiveResult {
	res, _ := exp.Run(exhaustiveExp{}, seed, sc, exp.Options{})
	return res.(ExhaustiveResult)
}

// Print emits the comparison summary.
func (r ExhaustiveResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Exhaustive (2^L) measured region vs online MIS region, L=%d\n", len(r.Links))
	fmt.Fprintf(w, "agreement on %d sampled points: %.0f%%\n", r.Sampled, 100*r.MISAgreement)
	fmt.Fprintf(w, "disagreements where MIS is the conservative side: %.0f%%\n", 100*r.MISConservative)
	for i, p := range r.MeasuredPoints {
		fmt.Fprintf(w, "  combo %03b: %v kb/s\n", i+1, kbps(p))
	}
}

func kbps(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x / 1e3))
	}
	return out
}
