package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/experiments/exp"
	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
)

// detScale is a scale small enough to run a figure twice in a unit test.
func detScale() Scale {
	sc := Quick()
	sc.PhaseDur = 800 * sim.Millisecond
	sc.Pairs = 4
	sc.Configs = 1
	sc.Iterations = 1
	sc.GridN = 3
	sc.ProbeWindow = 100
	sc.ProbePeriod = 40 * sim.Millisecond
	sc.TrafficDur = 2 * sim.Second
	return sc
}

// withWorkers runs fn under a pinned worker-pool size.
func withWorkers(n int, fn func()) {
	old := runner.SetWorkers(n)
	defer runner.SetWorkers(old)
	fn()
}

// TestRunFig10DeterministicAcrossWorkerCounts is the engine's core
// guarantee: a figure's numbers depend only on the seed, never on how
// many workers executed its cells.
func TestRunFig10DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig10Result
	withWorkers(1, func() { seq = RunFig10(4, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig10(4, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig10 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunNetValidationDeterministicAcrossWorkerCounts covers the
// heaviest runner user: full §4.5 validation with routing, offline
// measurement and optimization per cell.
func TestRunNetValidationDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par NetValidationResult
	withWorkers(1, func() { seq = RunNetValidation(11, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunNetValidation(11, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("NetValidation differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// renderJSONL streams an experiment's records through the engine into a
// JSONL buffer under a pinned worker count, returning the bytes and the
// reduced result.
func renderJSONL(t *testing.T, e exp.Experiment, seed int64, sc Scale, workers int) ([]byte, exp.Result) {
	t.Helper()
	var buf bytes.Buffer
	var res exp.Result
	withWorkers(workers, func() {
		s := sink.NewJSONL(&buf)
		var err error
		res, err = exp.Run(e, seed, sc, exp.Options{Sink: s})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return buf.Bytes(), res
}

// TestFig10JSONLByteIdenticalAcrossWorkerCounts extends the engine
// guarantee to the streaming path: the JSONL record stream a figure
// emits as its cells complete is byte-identical between 1 worker and a
// full pool, because runner.Stream emits in cell order regardless of
// completion order.
func TestFig10JSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	seq, _ := renderJSONL(t, fig10Exp{}, 4, sc, 1)
	par, _ := renderJSONL(t, fig10Exp{}, 4, sc, max(2, runtime.GOMAXPROCS(0)))
	if len(seq) == 0 {
		t.Fatal("Fig10 streamed no records")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig10 JSONL differs between 1 worker and the full pool:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestFig14JSONLByteIdenticalAcrossWorkerCounts covers the streamed
// per-config reduction: cell records and the folded result must both be
// identical for any pool size.
func TestFig14JSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	sc.Configs = 2
	seq, seqRes := renderJSONL(t, fig14Exp{}, 9, sc, 1)
	par, parRes := renderJSONL(t, fig14Exp{}, 9, sc, max(2, runtime.GOMAXPROCS(0)))
	if len(seq) == 0 {
		t.Fatal("Fig14 streamed no records")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig14 JSONL differs between 1 worker and the full pool:\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("Fig14 reduction differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seqRes, parRes)
	}
}

// TestRunFig4DeterministicAcrossWorkerCounts adds a pairwise-model
// figure so all three cell shapes (mesh probe, validation, two-link
// grid) are pinned.
func TestRunFig4DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig4Result
	withWorkers(1, func() { seq = RunFig4(5, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig4(5, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig4 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}
