package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/experiments/runner"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
)

// detScale is a scale small enough to run a figure twice in a unit test.
func detScale() Scale {
	sc := Quick()
	sc.PhaseDur = 800 * sim.Millisecond
	sc.Pairs = 4
	sc.Configs = 1
	sc.Iterations = 1
	sc.GridN = 3
	sc.ProbeWindow = 100
	sc.ProbePeriod = 40 * sim.Millisecond
	sc.TrafficDur = 2 * sim.Second
	return sc
}

// withWorkers runs fn under a pinned worker-pool size.
func withWorkers(n int, fn func()) {
	old := runner.SetWorkers(n)
	defer runner.SetWorkers(old)
	fn()
}

// TestRunFig10DeterministicAcrossWorkerCounts is the engine's core
// guarantee: a figure's numbers depend only on the seed, never on how
// many workers executed its cells.
func TestRunFig10DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig10Result
	withWorkers(1, func() { seq = RunFig10(4, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig10(4, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig10 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunNetValidationDeterministicAcrossWorkerCounts covers the
// heaviest runner user: full §4.5 validation with routing, offline
// measurement and optimization per cell.
func TestRunNetValidationDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par NetValidationResult
	withWorkers(1, func() { seq = RunNetValidation(11, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunNetValidation(11, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("NetValidation differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig10JSONLByteIdenticalAcrossWorkerCounts extends the engine
// guarantee to the streaming path: the JSONL record stream a figure
// emits as its cells complete is byte-identical between 1 worker and a
// full pool, because runner.Stream emits in cell order regardless of
// completion order.
func TestFig10JSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	render := func(workers int) []byte {
		var buf bytes.Buffer
		withWorkers(workers, func() {
			s := sink.NewJSONL(&buf)
			if _, err := RunFig10Sink(4, sc, s); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
		return buf.Bytes()
	}
	seq := render(1)
	par := render(max(2, runtime.GOMAXPROCS(0)))
	if len(seq) == 0 {
		t.Fatal("Fig10 streamed no records")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig10 JSONL differs between 1 worker and the full pool:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestFig14JSONLByteIdenticalAcrossWorkerCounts covers the streamed
// per-config reduction: cell records and folded config aggregates must
// both stream identically for any pool size.
func TestFig14JSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	sc.Configs = 2
	render := func(workers int) []byte {
		var buf bytes.Buffer
		withWorkers(workers, func() {
			s := sink.NewJSONL(&buf)
			if _, err := RunFig14Sink(9, sc, s); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
		return buf.Bytes()
	}
	seq := render(1)
	par := render(max(2, runtime.GOMAXPROCS(0)))
	if len(seq) == 0 {
		t.Fatal("Fig14 streamed no records")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("Fig14 JSONL differs between 1 worker and the full pool:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestRunFig4DeterministicAcrossWorkerCounts adds a pairwise-model
// figure so all three cell shapes (mesh probe, validation, two-link
// grid) are pinned.
func TestRunFig4DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig4Result
	withWorkers(1, func() { seq = RunFig4(5, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig4(5, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig4 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}
