package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/experiments/runner"
	"repro/internal/sim"
)

// detScale is a scale small enough to run a figure twice in a unit test.
func detScale() Scale {
	sc := Quick()
	sc.PhaseDur = 800 * sim.Millisecond
	sc.Pairs = 4
	sc.Configs = 1
	sc.Iterations = 1
	sc.GridN = 3
	sc.ProbeWindow = 100
	sc.ProbePeriod = 40 * sim.Millisecond
	sc.TrafficDur = 2 * sim.Second
	return sc
}

// withWorkers runs fn under a pinned worker-pool size.
func withWorkers(n int, fn func()) {
	old := runner.SetWorkers(n)
	defer runner.SetWorkers(old)
	fn()
}

// TestRunFig10DeterministicAcrossWorkerCounts is the engine's core
// guarantee: a figure's numbers depend only on the seed, never on how
// many workers executed its cells.
func TestRunFig10DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig10Result
	withWorkers(1, func() { seq = RunFig10(4, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig10(4, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig10 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunNetValidationDeterministicAcrossWorkerCounts covers the
// heaviest runner user: full §4.5 validation with routing, offline
// measurement and optimization per cell.
func TestRunNetValidationDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par NetValidationResult
	withWorkers(1, func() { seq = RunNetValidation(11, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunNetValidation(11, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("NetValidation differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunFig4DeterministicAcrossWorkerCounts adds a pairwise-model
// figure so all three cell shapes (mesh probe, validation, two-link
// grid) are pinned.
func TestRunFig4DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	var seq, par Fig4Result
	withWorkers(1, func() { seq = RunFig4(5, sc) })
	withWorkers(max(2, runtime.GOMAXPROCS(0)), func() { par = RunFig4(5, sc) })
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig4 differs between 1 worker and the full pool:\nseq: %+v\npar: %+v", seq, par)
	}
}
